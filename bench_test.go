// Benchmark harness: one bench per paper table/figure (E01..E16, see
// the experiment index in README.md), ablation benches for the design choices the detection
// thresholds encode (A01..A04), and micro-benchmarks for the hot paths.
//
// Experiment benches measure the analysis step over a cached campaign
// (world generation and the measurement campaign run once); E02
// additionally measures a full crawl campaign per iteration since the
// crawl *is* that experiment. Ablation benches attach their findings as
// custom bench metrics (positives, false positives, ...), so `go test
// -bench` output doubles as the ablation table.
package cgn

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"cgn/internal/campaign"
	"cgn/internal/crawler"
	"cgn/internal/detect"
	"cgn/internal/dht"
	"cgn/internal/graph"
	"cgn/internal/internet"
	"cgn/internal/krpc"
	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/perf"
	"cgn/internal/props"
	"cgn/internal/report"
	"cgn/internal/simnet"
	"cgn/internal/survey"
)

var (
	fixOnce sync.Once
	fix     *report.Bundle
)

// fixture runs one full campaign over the Small scenario, shared by all
// experiment benches.
func fixture(b *testing.B) *report.Bundle {
	b.Helper()
	fixOnce.Do(func() {
		fix = report.Collect(internet.Build(internet.Small()))
	})
	return fix
}

func cgnTruthView(bu *report.Bundle) map[uint32]bool {
	u := detect.Union("all", bu.BTV, bu.CellV, bu.NonCellV)
	return u.Positive
}

// ---- Experiment benches: one per table/figure ----

func BenchmarkE01SurveyFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := survey.AggregateCorpus(survey.Corpus(int64(i)))
		if a.N != 75 {
			b.Fatal("bad corpus")
		}
	}
}

func BenchmarkE02CrawlTable2(b *testing.B) {
	// The crawl is the experiment: world build + swarm + crawl per
	// iteration.
	for i := 0; i < b.N; i++ {
		sc := internet.Small()
		sc.Seed = int64(i + 1)
		w := internet.Build(sc)
		ds := w.RunCrawl(internet.DefaultCrawlOptions())
		if len(ds.Queried) == 0 {
			b.Fatal("empty crawl")
		}
	}
}

func BenchmarkE03LeakTable3(b *testing.B) {
	bu := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := bu.E03(); len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkE04LeakGraphs(b *testing.B) {
	bu := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := detect.AnalyzeBitTorrent(bu.Crawl, bu.World.BTDetectConfig())
		if len(res.PerAS) == 0 {
			b.Fatal("no ASes")
		}
	}
}

func BenchmarkE05ClusterScatter(b *testing.B) {
	bu := fixture(b)
	b.ResetTimer()
	var positives int
	for i := 0; i < b.N; i++ {
		res := detect.AnalyzeBitTorrent(bu.Crawl, bu.World.BTDetectConfig())
		positives = len(res.PositiveASes())
	}
	b.ReportMetric(float64(positives), "positives")
}

func BenchmarkE06AddrTable4(b *testing.B) {
	bu := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.AnalyzeCellular(bu.Sessions, bu.World.Net.Global(), detect.NLConfig{})
	}
}

func BenchmarkE07NetalyzrScatter(b *testing.B) {
	bu := fixture(b)
	b.ResetTimer()
	var positives int
	for i := 0; i < b.N; i++ {
		res := detect.AnalyzeNonCellular(bu.Sessions, bu.World.Net.Global(), detect.NLConfig{})
		positives = len(res.PositiveASes())
	}
	b.ReportMetric(float64(positives), "positives")
}

func BenchmarkE08CoverageTable5(b *testing.B) {
	bu := fixture(b)
	pops := bu.World.DB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		union := detect.Union("u", bu.BTV, bu.NonCellV)
		_ = union.Against(pops.RoutedPopulation())
		_ = union.Against(pops.PBLPopulation())
		_ = union.Against(pops.APNICPopulation())
	}
}

func BenchmarkE09RegionFigure6(b *testing.B) {
	bu := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detect.ByRegion(bu.World.DB, bu.UnionV, bu.CellV)
	}
}

func BenchmarkE10InternalSpace(b *testing.B) {
	bu := fixture(b)
	cgnV := cgnTruthView(bu)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		props.AnalyzeInternalSpace(bu.Sessions, bu.BT, cgnV, bu.World.Net.Global(), bu.NonCell.TopCPEBlocks)
	}
}

func BenchmarkE11PortFigure8(b *testing.B) {
	bu := fixture(b)
	cgnV := cgnTruthView(bu)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		props.AnalyzePorts(bu.Sessions, cgnV, props.PortConfig{})
	}
}

func BenchmarkE12PortStrategies(b *testing.B) {
	bu := fixture(b)
	cgnV := cgnTruthView(bu)
	b.ResetTimer()
	var chunked int
	for i := 0; i < b.N; i++ {
		res := props.AnalyzePorts(bu.Sessions, cgnV, props.PortConfig{})
		chunked = len(res.ChunkASes())
	}
	b.ReportMetric(float64(chunked), "chunk_ases")
}

func BenchmarkE13TTLTable7(b *testing.B) {
	bu := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := props.AnalyzeTTLDetection(bu.Sessions)
		if q.Total() == 0 {
			b.Fatal("no TTL sessions")
		}
	}
}

func BenchmarkE14NATDistance(b *testing.B) {
	bu := fixture(b)
	cgnV := cgnTruthView(bu)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		props.AnalyzeDistance(bu.Sessions, cgnV)
	}
}

func BenchmarkE15Timeouts(b *testing.B) {
	bu := fixture(b)
	cgnV := cgnTruthView(bu)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		props.AnalyzeTimeouts(bu.Sessions, cgnV)
	}
}

func BenchmarkE16STUNTypes(b *testing.B) {
	bu := fixture(b)
	cgnV := cgnTruthView(bu)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		props.AnalyzeSTUN(bu.Sessions, cgnV)
	}
}

// ---- Ablation benches ----

// BenchmarkA01ClusterThreshold sweeps the 5x5 detection boundary and
// reports the false positives that lower thresholds admit.
func BenchmarkA01ClusterThreshold(b *testing.B) {
	bu := fixture(b)
	truth := bu.World.CGNTruth()
	for _, th := range []int{2, 3, 5, 8} {
		b.Run(benchName("threshold", th), func(b *testing.B) {
			var score detect.Score
			for i := 0; i < b.N; i++ {
				cfg := detect.BTConfig{MinLeakerIPs: th, MinInternalIPs: th, MinPeersQueried: 8}
				res := detect.AnalyzeBitTorrent(bu.Crawl, cfg)
				score = detect.BTView(res).ScoreAgainstTruth(truth)
			}
			b.ReportMetric(float64(score.TruePositive), "tp")
			b.ReportMetric(float64(score.FalsePositive), "fp")
		})
	}
}

// BenchmarkA02ValidationRate rebuilds the world with increasing shares of
// non-validating peers. Non-validating peers insert and re-propagate
// contacts they never verified, so tunnel-style noise spreads across
// ASes; the paper's §4.1 calibration argues the validation discipline
// plus the exclusive-leak filter keep this from polluting detection. The
// metrics report false positives with the filter on and off.
func BenchmarkA02ValidationRate(b *testing.B) {
	for _, frac := range []float64{0.0, 0.5, 1.0} {
		b.Run(benchName("nonvalidating_pct", int(frac*100)), func(b *testing.B) {
			var filtered, unfiltered detect.Score
			var leaks, excluded int
			for i := 0; i < b.N; i++ {
				sc := internet.Small()
				sc.NonValidatingFrac = frac
				sc.VPNPairs = 10                             // ample cross-AS noise to spread
				sc.BTPeers = internet.Span{Min: 28, Max: 40} // stable clusters
				// Guarantee eyeball CGN signal regardless of draw luck at
				// this world size.
				for r := range sc.EyeballCGNProb {
					sc.EyeballCGNProb[r] = 0.5
				}
				w := internet.Build(sc)
				ds := w.RunCrawl(internet.DefaultCrawlOptions())
				truth := w.CGNTruth()

				cfg := w.BTDetectConfig()
				res := detect.AnalyzeBitTorrent(ds, cfg)
				filtered = detect.BTView(res).ScoreAgainstTruth(truth)
				leaks = len(ds.Leaks)
				excluded = res.ExcludedVPN

				cfg.DisableVPNFilter = true
				raw := detect.AnalyzeBitTorrent(ds, cfg)
				unfiltered = detect.BTView(raw).ScoreAgainstTruth(truth)
			}
			b.ReportMetric(float64(filtered.TruePositive), "tp")
			b.ReportMetric(float64(filtered.FalsePositive), "fp_filtered")
			b.ReportMetric(float64(unfiltered.FalsePositive), "fp_unfiltered")
			b.ReportMetric(float64(leaks), "leak_records")
			b.ReportMetric(float64(excluded), "cross_as_leaked")
		})
	}
}

// BenchmarkA03DiversityCutoff sweeps the non-cellular /24-diversity
// factor.
func BenchmarkA03DiversityCutoff(b *testing.B) {
	bu := fixture(b)
	truth := bu.World.CGNTruth()
	for _, cutoff := range []float64{0.1, 0.25, 0.4, 0.6} {
		b.Run(benchName("cutoff_pct", int(cutoff*100)), func(b *testing.B) {
			var score detect.Score
			for i := 0; i < b.N; i++ {
				cfg := detect.NLConfig{DiversityFactor: cutoff}
				res := detect.AnalyzeNonCellular(bu.Sessions, bu.World.Net.Global(), cfg)
				score = detect.NonCellularView(res).ScoreAgainstTruth(truth)
			}
			b.ReportMetric(float64(score.TruePositive), "tp")
			b.ReportMetric(float64(score.FalsePositive), "fp")
		})
	}
}

// BenchmarkA04PortLeeway sweeps the port classifier leeway and reports
// how the session strategy mix shifts.
func BenchmarkA04PortLeeway(b *testing.B) {
	bu := fixture(b)
	cgnV := cgnTruthView(bu)
	for _, seqDiff := range []int{2, 50, 500} {
		b.Run(benchName("seqdiff", seqDiff), func(b *testing.B) {
			var sequential int
			for i := 0; i < b.N; i++ {
				cfg := props.PortConfig{SequentialMaxDiff: seqDiff}
				res := props.AnalyzePorts(bu.Sessions, cgnV, cfg)
				sequential = 0
				for _, as := range res.PerAS {
					sequential += as.Strategies[props.StrategySequential]
				}
			}
			b.ReportMetric(float64(sequential), "sequential_sessions")
		})
	}
}

// BenchmarkA05ChunkCapacity measures §7's implication directly: the
// concurrent flows one subscriber can hold through a chunk-allocating CGN,
// per chunk size (see examples/implications for the narrative version).
func BenchmarkA05ChunkCapacity(b *testing.B) {
	for _, chunk := range []int{512, 2048, 8192} {
		b.Run(benchName("chunk", chunk), func(b *testing.B) {
			var capacity int
			for i := 0; i < b.N; i++ {
				n := nat.New(nat.Config{
					Type:        nat.PortRestricted,
					PortAlloc:   nat.RandomChunk,
					ChunkSize:   chunk,
					Pooling:     nat.Paired,
					ExternalIPs: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.1")},
					Seed:        int64(i),
				})
				now := time.Unix(0, 0)
				src := netaddr.MustParseEndpoint("100.64.0.5:0")
				capacity = 0
				for port := 1; port <= 20000; port++ {
					src.Port = uint16(port)
					dst := netaddr.MustParseEndpoint("203.0.113.10:443")
					if _, v := n.TranslateOut(netaddr.FlowOf(netaddr.TCP, src, dst), now); v != nat.Ok {
						break
					}
					capacity++
				}
			}
			b.ReportMetric(float64(capacity), "concurrent_flows")
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// ---- Micro benches: hot paths ----
//
// Bodies live in internal/perf so cmd/benchjson can run the identical
// code via testing.Benchmark and emit the BENCH_<n>.json trajectory.

// BenchmarkForwardSteady measures steady-state packet forwarding over a
// built Small world: the compiled-path engine ("fast") against the
// reference walk kept as the slow path ("slow"). The fast/slow ratio is
// the forwarding engine's speedup; the fast sub-bench must report
// 0 allocs/op.
func BenchmarkForwardSteady(b *testing.B) {
	b.Run("fast", perf.ForwardSteadyFast)
	b.Run("slow", perf.ForwardSteadySlow)
}

func BenchmarkNATTranslateOut(b *testing.B) { perf.NATTranslateOut(b) }

func BenchmarkNATTranslateIn(b *testing.B) { perf.NATTranslateIn(b) }

func BenchmarkNATPortChurn(b *testing.B) { perf.NATPortChurn(b) }

// BenchmarkTrafficWeek measures the traffic engine end to end: one
// iteration is one simulated week of diurnal flow churn through four
// carrier-NAT realms on a four-worker realm pool (see perf.TrafficWeek).
func BenchmarkTrafficWeek(b *testing.B) { perf.TrafficWeek(b) }

// BenchmarkTrafficMetro measures the engine at ISP scale: one iteration
// drives a million-subscriber metro (16 realms × 65,536 subscribers)
// through one simulated day, realm-parallel (see perf.TrafficMetro).
func BenchmarkTrafficMetro(b *testing.B) { perf.TrafficMetro(b) }

// BenchmarkTrafficMetroSharded is the same metro day on the intra-realm
// sharded NAT engine — realm workers × per-realm lane shards (see
// perf.TrafficMetroSharded).
func BenchmarkTrafficMetroSharded(b *testing.B) { perf.TrafficMetroSharded(b) }

// BenchmarkTrafficMetroShardedMP4 pins GOMAXPROCS=4 for the sharded
// metro day — the multicore point of the perf trajectory (see
// perf.TrafficMetroShardedMP4).
func BenchmarkTrafficMetroShardedMP4(b *testing.B) { perf.TrafficMetroShardedMP4(b) }

// BenchmarkE17PortLoad measures the port-pressure analysis over the
// cached campaign's carrier NATs.
func BenchmarkE17PortLoad(b *testing.B) {
	bu := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := report.AnalyzePortLoad(bu.World)
		if pl.Pressure().Realms == 0 {
			b.Fatal("no CGN realms")
		}
	}
}

func BenchmarkBencodeDecode(b *testing.B) { perf.BencodeDecode(b) }

func BenchmarkKRPCParseFindNodeResponse(b *testing.B) { perf.KRPCParseFindNodeResponse(b) }

func BenchmarkSTUNParse(b *testing.B) { perf.STUNParse(b) }

func BenchmarkLPMLookup(b *testing.B) { perf.LPMLookup(b) }

func BenchmarkGraphComponents(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	type edge struct{ l, r int }
	edges := make([]edge, 2000)
	for i := range edges {
		edges[i] = edge{rng.Intn(300), rng.Intn(500)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graph.NewBipartite[int, int]()
		for _, e := range edges {
			g.AddEdge(e.l, e.r)
		}
		if len(g.Components()) == 0 {
			b.Fatal("no components")
		}
	}
}

func BenchmarkSimnetNAT444Walk(b *testing.B) { perf.SimnetNAT444Walk(b) }

func BenchmarkDHTFindNodeHandling(b *testing.B) {
	node := dht.NewNode(dht.Config{ID: krpc.NodeID{1}, Seed: 1},
		dht.SenderFunc(func(netaddr.Endpoint, []byte) {}))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 64; i++ {
		var c krpc.NodeInfo
		rng.Read(c.ID[:])
		c.EP = netaddr.EndpointOf(netaddr.Addr(rng.Uint32()|1), 6881)
		node.InsertContact(c)
	}
	var target krpc.NodeID
	rng.Read(target[:])
	query := krpc.EncodeFindNode([]byte("aa"), krpc.NodeID{2}, target)
	from := netaddr.MustParseEndpoint("198.51.100.9:6881")
	b.SetBytes(int64(len(query)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node.HandlePacket(from, query)
	}
}

// BenchmarkSweepSmall measures the campaign engine end to end: each
// iteration runs a full multi-world sweep (4 replicate worlds of the
// small scenario). The sub-benches vary only the worker count, so their
// ratio is the engine's parallel speedup on this machine; per-world
// outputs are byte-identical either way (the engine's determinism tests
// assert it).
func BenchmarkSweepSmall(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(benchName("workers", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sw, err := campaign.Run(campaign.Config{
					Scenarios:  []string{"small"},
					Replicates: 4,
					BaseSeed:   1,
					Workers:    workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(sw.Worlds) != 4 {
					b.Fatalf("sweep returned %d worlds, want 4", len(sw.Worlds))
				}
			}
		})
	}
}

func BenchmarkWorldBuildSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := internet.Small()
		sc.Seed = int64(i + 1)
		if w := internet.Build(sc); w.DB.Len() == 0 {
			b.Fatal("empty world")
		}
	}
}

func BenchmarkCrawlerLeakHarvest(b *testing.B) {
	// Standalone crawler against a single heavily-leaking node.
	net := simnet.New()
	rng := rand.New(rand.NewSource(3))
	global := net.Global()
	global.Announce(netaddr.MustParsePrefix("198.51.0.0/16"), 65001)
	host := net.NewHost("peer", net.Public(), netaddr.MustParseAddr("198.51.0.10"), 0, rng)
	sock := host.Open(netaddr.UDP, 6881)
	node := dht.NewNode(dht.Config{ID: krpc.NodeID{9}, Validate: true, Seed: 1},
		dht.SenderFunc(func(dst netaddr.Endpoint, p []byte) { sock.Send(dst, p) }))
	sock.OnRecv(node.HandlePacket)
	for i := 0; i < 32; i++ {
		var c krpc.NodeInfo
		rng.Read(c.ID[:])
		c.EP = netaddr.EndpointOf(netaddr.MustParseAddr("10.0.0.1")+netaddr.Addr(i), 6881)
		node.InsertContact(c)
	}
	crawlHost := net.NewHost("crawler", net.Public(), netaddr.MustParseAddr("203.0.113.9"), 0, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		crawlHost.Unbind(netaddr.UDP, 6881)
		cr := crawler.New(crawlHost, global, crawler.DefaultConfig())
		b.StartTimer()
		cr.Seed(netaddr.MustParseEndpoint("198.51.0.10:6881"))
		if ds := cr.Run(); len(ds.Leaks) == 0 {
			b.Fatal("no leaks")
		}
	}
}
