module cgn

go 1.24
