// natlab is a NAT behavior laboratory: it builds NAT444 cascades from
// every combination of CPE and CGN mapping types and verifies two of the
// paper's analytical assumptions (§6.5):
//
//  1. STUN through cascaded NATs reports the most RESTRICTIVE composite
//     behavior, and
//  2. therefore the most permissive session observed in an AS
//     lower-bounds the CGN's own mapping type.
//
// It also runs the TTL enumeration on each cascade to show both NATs are
// individually locatable regardless of type.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/netalyzr"
	"cgn/internal/simnet"
	"cgn/internal/stun"
)

func addr(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

// restrictiveness orders mapping types for the composite rule.
func restrictiveness(c stun.NATClass) int {
	switch c {
	case stun.ClassSymmetric:
		return 4
	case stun.ClassPortRestricted:
		return 3
	case stun.ClassAddressRestricted:
		return 2
	case stun.ClassFullCone:
		return 1
	}
	return 0
}

func natClassOf(t nat.MappingType) stun.NATClass {
	switch t {
	case nat.Symmetric:
		return stun.ClassSymmetric
	case nat.PortRestricted:
		return stun.ClassPortRestricted
	case nat.AddressRestricted:
		return stun.ClassAddressRestricted
	default:
		return stun.ClassFullCone
	}
}

func main() {
	types := []nat.MappingType{nat.FullCone, nat.AddressRestricted, nat.PortRestricted, nat.Symmetric}
	fmt.Println("CPE type \\ CGN type -> STUN composite (expected = more restrictive of the two)")
	mismatches := 0
	for _, cpeType := range types {
		for _, cgnType := range types {
			got := classify(cpeType, cgnType)
			want := natClassOf(cpeType)
			if restrictiveness(natClassOf(cgnType)) > restrictiveness(want) {
				want = natClassOf(cgnType)
			}
			marker := ""
			if got != want {
				marker = "  <-- UNEXPECTED"
				mismatches++
			}
			fmt.Printf("  %-24s + %-24s => %-24s%s\n", cpeType, cgnType, got, marker)
		}
	}
	if mismatches == 0 {
		fmt.Println("all 16 cascades match the most-restrictive composite rule")
	}

	// TTL enumeration locates both boxes in a NAT444 cascade.
	sess := enumerate(nat.PortRestricted, nat.Symmetric)
	fmt.Printf("\nTTL enumeration through CPE(65s)+CGN(35s): path %d hops\n", sess.TTLResult.PathLen)
	for _, ob := range sess.TTLResult.NATs {
		fmt.Printf("  stateful hop %d, mapping timeout in [%v, %v)\n", ob.Hop, ob.TimeoutLow, ob.TimeoutHigh)
	}

	// The simulator-side ground truth, for comparison: a diagnostic trace
	// with perfect visibility of every on-path device.
	dev, servers := build(nat.PortRestricted, nat.Symmetric)
	steps, _ := dev.Network().TracePath(dev, netaddr.UDP, 6000,
		netaddr.EndpointOf(servers.EchoHost.Addr(), netalyzr.EchoUDPPort))
	fmt.Println("\nground-truth path (simulator introspection):")
	for i, s := range steps {
		fmt.Printf("  %2d  %s\n", i+1, s)
	}
}

// build wires one NAT444 subscriber and returns the device plus servers.
func build(cpeType, cgnType nat.MappingType) (*simnet.Host, *netalyzr.Servers) {
	net := simnet.New()
	rng := rand.New(rand.NewSource(17))
	servers := netalyzr.DeployServers(net, netalyzr.DefaultServersConfig(), rng)
	net.Global().Announce(netaddr.MustParsePrefix("198.51.100.0/24"), 64900)

	isp := net.NewRealm("isp", 1)
	net.AttachNAT("cgn", isp, net.Public(), nat.Config{
		Type:             cgnType,
		PortAlloc:        nat.Random,
		Pooling:          nat.Paired,
		ExternalIPs:      []netaddr.Addr{addr("198.51.100.30")},
		UDPTimeout:       35 * time.Second,
		RefreshOnInbound: true,
		Seed:             2,
	}, 2, 1)

	lan := net.NewRealm("lan", 0)
	net.AttachNAT("cpe", lan, isp, nat.Config{
		Type:             cpeType,
		PortAlloc:        nat.Preservation,
		Pooling:          nat.Paired,
		ExternalIPs:      []netaddr.Addr{addr("10.55.0.2")},
		UDPTimeout:       65 * time.Second,
		RefreshOnInbound: true,
		Seed:             3,
	}, 0, 0)
	dev := net.NewHost("dev", lan, addr("192.168.1.2"), 0, rng)
	return dev, servers
}

func classify(cpeType, cgnType nat.MappingType) stun.NATClass {
	dev, servers := build(cpeType, cgnType)
	sess := netalyzr.RunSession(dev, servers, netalyzr.ClientConfig{ASN: 64900, RunSTUN: true})
	return sess.STUNResult.Class
}

func enumerate(cpeType, cgnType nat.MappingType) netalyzr.Session {
	dev, servers := build(cpeType, cgnType)
	return netalyzr.RunSession(dev, servers, netalyzr.ClientConfig{ASN: 64900, RunTTL: true})
}
