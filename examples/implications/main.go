// implications quantifies §7's warning: chunk-based port allocation and
// per-subscriber session caps directly bound "how much Internet" a
// subscriber gets. A modern web page opens dozens of concurrent TCP
// connections; at 512 ports per subscriber a handful of busy tabs — or
// one BitTorrent client — exhausts the budget and connections silently
// die at the CGN.
//
// The experiment drives real flows through the NAT engine: subscribers
// behind CGNs with decreasing chunk sizes (and one session-capped CGN)
// open parallel connections until the translator refuses.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/simnet"
)

func addr(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

// capacity measures how many concurrent flows one subscriber can hold
// open through the given CGN before translations start failing.
func capacity(cfg nat.Config, maxFlows int) int {
	net := simnet.New()
	rng := rand.New(rand.NewSource(1))
	server := net.NewHost("server", net.Public(), addr("203.0.113.10"), 1, rng)
	served := 0
	server.Bind(netaddr.TCP, 443, func(_, _ netaddr.Endpoint, _ netaddr.Proto, _ []byte) {
		served++
	})
	isp := net.NewRealm("isp", 1)
	net.AttachNAT("cgn", isp, net.Public(), cfg, 2, 1)
	sub := net.NewHost("sub", isp, addr("100.64.0.9"), 0, rng)

	dst := netaddr.EndpointOf(server.Addr(), 443)
	opened := 0
	for i := 0; i < maxFlows; i++ {
		res := sub.Send(netaddr.TCP, sub.EphemeralPort(), dst, []byte("GET"))
		if !res.Delivered() {
			break
		}
		opened++
	}
	return opened
}

func main() {
	pool := []netaddr.Addr{addr("198.51.100.40")}
	base := nat.Config{
		Type:        nat.PortRestricted,
		PortAlloc:   nat.RandomChunk,
		Pooling:     nat.Paired,
		ExternalIPs: pool,
		TCPTimeout:  2 * time.Hour, // flows stay alive for the whole test
		Seed:        7,
	}

	fmt.Println("concurrent TCP flows one subscriber can hold through the CGN")
	fmt.Println("(a busy browser session uses 50-100; the paper saw chunks as small as 512)")
	fmt.Println()
	for _, chunk := range []int{16384, 4096, 1024, 512} {
		cfg := base
		cfg.ChunkSize = chunk
		got := capacity(cfg, 20000)
		verdict := "comfortable"
		switch {
		case got < 100:
			verdict = "breaks under a single heavy page"
		case got < 1024:
			verdict = "fails under P2P or many tabs"
		}
		fmt.Printf("  chunk %5d ports -> %5d concurrent flows   [%s]\n", chunk, got, verdict)
		subsPerIP := 64512 / chunk
		fmt.Printf("               (ISP view: %3d subscribers share each public IP)\n", subsPerIP)
	}

	// The survey's other dimensioning lever: hard session caps.
	fmt.Println()
	for _, cap := range []int{0, 4096, 512} {
		cfg := base
		cfg.PortAlloc = nat.Random
		cfg.ChunkSize = 0
		cfg.MaxSessionsPerSubscriber = cap
		got := capacity(cfg, 20000)
		label := "uncapped"
		if cap > 0 {
			label = fmt.Sprintf("cap %d", cap)
		}
		fmt.Printf("  sessions %-9s -> %5d concurrent flows\n", label, got)
	}
}
