// btleak demonstrates the paper's core BitTorrent insight (§4.1, Fig 3)
// on a hand-built two-ISP topology: peers behind the same hairpinning CGN
// leak each other's internal endpoints to the DHT in dense clusters,
// while home-NAT ISPs only produce isolated per-household leaks.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"cgn/internal/btsim"
	"cgn/internal/crawler"
	"cgn/internal/detect"
	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/simnet"
)

func addr(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

func main() {
	net := simnet.New()
	rng := rand.New(rand.NewSource(3))
	swarm := btsim.NewSwarm(net, addr("203.0.113.1"), addr("203.0.113.2"), 3)
	crawlHost := net.NewHost("crawler", net.Public(), addr("203.0.113.3"), 1, rng)

	// AS 65001: CGN ISP. Pool of 8 public IPs, subscribers on 100.64/10,
	// hairpinning with the internal source preserved.
	net.Global().Announce(netaddr.MustParsePrefix("198.51.100.0/24"), 65001)
	isp := net.NewRealm("cgn-isp", 1)
	pool := make([]netaddr.Addr, 8)
	for i := range pool {
		pool[i] = addr("198.51.100.10") + netaddr.Addr(i)
	}
	net.AttachNAT("cgn", isp, net.Public(), nat.Config{
		Type:             nat.FullCone,
		PortAlloc:        nat.Random,
		Pooling:          nat.Paired,
		ExternalIPs:      pool,
		UDPTimeout:       2 * time.Minute,
		RefreshOnInbound: true,
		Hairpin:          nat.HairpinPreserveSource,
		Seed:             1,
	}, 2, 1)
	for i := 0; i < 20; i++ {
		h := net.NewHost(fmt.Sprintf("sub%d", i), isp, addr("100.64.0.10")+netaddr.Addr(i), 0, rng)
		swarm.AddPeer(h, 65001, "", true)
	}

	// AS 65002: home-NAT ISP. Six homes, two BitTorrent clients each,
	// CPEs holding public addresses.
	net.Global().Announce(netaddr.MustParsePrefix("198.51.102.0/24"), 65002)
	for home := 0; home < 6; home++ {
		lan := net.NewRealm(fmt.Sprintf("home%d", home), 0)
		net.AttachNAT(fmt.Sprintf("cpe%d", home), lan, net.Public(), nat.Config{
			Type:             nat.PortRestricted,
			PortAlloc:        nat.Preservation,
			Pooling:          nat.Paired,
			ExternalIPs:      []netaddr.Addr{addr("198.51.102.10") + netaddr.Addr(home)},
			UDPTimeout:       2 * time.Minute,
			RefreshOnInbound: true,
			Seed:             int64(home + 10),
		}, 0, 2)
		lanID := fmt.Sprintf("lan%d", home)
		for d := 0; d < 2; d++ {
			h := net.NewHost(fmt.Sprintf("h%d-%d", home, d), lan, addr("192.168.1.10")+netaddr.Addr(d), 0, rng)
			swarm.AddPeer(h, 65002, lanID, true)
		}
	}

	// Drive the swarm, then crawl.
	swarm.Bootstrap()
	swarm.SeedLANs()
	cr := crawler.New(crawlHost, net.Global(), crawler.DefaultConfig())
	swarm.Mingle(4, 3, btsim.ChatterConfig{
		LookupProb: 0.8, CrawlerEP: cr.Endpoint(), CrawlerPingProb: 1.0,
	})
	cr.Seed(swarm.BootstrapEP)
	ds := cr.Run()
	fmt.Printf("crawl: %d peers queried, %d leak records\n", len(ds.Queried), len(ds.Leaks))

	// Cluster per AS: the Figure 3 contrast.
	res := detect.AnalyzeBitTorrent(ds, detect.BTConfig{MinPeersQueried: 4})
	for _, asn := range []uint32{65001, 65002} {
		as := res.PerAS[asn]
		if as == nil {
			fmt.Printf("AS%d: nothing harvested\n", asn)
			continue
		}
		fmt.Printf("AS%d: CGN=%v\n", asn, as.CGN)
		for _, r := range netaddr.ReservedRanges {
			if cs, ok := as.Clusters[r]; ok && cs.LeakerIPs > 0 {
				shape := "isolated (home NAT pattern)"
				if cs.Positive(res.Cfg) {
					shape = "clustered (CGN pooling pattern)"
				}
				fmt.Printf("  %-5s largest cluster %2d leaker IPs x %2d internal IPs  -> %s\n",
					r, cs.LeakerIPs, cs.InternalIPs, shape)
			}
		}
	}
}
