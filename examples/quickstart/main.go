// Quickstart: generate a small synthetic Internet, run both of the
// paper's detection methods against it, and compare the verdicts with the
// generator's ground truth — the whole pipeline in ~30 lines.
package main

import (
	"fmt"

	"cgn/internal/detect"
	"cgn/internal/internet"
)

func main() {
	// Build a world: ASes with ground-truth CGN deployments, subscriber
	// topologies, a BitTorrent swarm and Netalyzr vantage points.
	world := internet.Build(internet.Small())
	fmt.Printf("world: %d ASes, %d true CGN deployments\n",
		world.DB.Len(), len(world.CGNTruth()))

	// Method 1 (§4.1): crawl the BitTorrent DHT and cluster the leaked
	// internal peers per AS.
	dataset := world.RunCrawl(internet.DefaultCrawlOptions())
	bt := detect.AnalyzeBitTorrent(dataset, world.BTDetectConfig())
	fmt.Printf("BitTorrent: %d ASes covered, %d CGN-positive\n",
		len(bt.CoveredASes()), len(bt.PositiveASes()))

	// Method 2 (§4.2): run Netalyzr-style sessions from subscriber
	// devices and apply the cellular and NAT444 heuristics.
	sessions := world.RunNetalyzr()
	cellular := detect.AnalyzeCellular(sessions, world.Net.Global(), detect.NLConfig{})
	noncell := detect.AnalyzeNonCellular(sessions, world.Net.Global(), detect.NLConfig{})
	fmt.Printf("Netalyzr: cellular %d/%d positive, non-cellular %d/%d positive\n",
		len(cellular.PositiveASes()), len(cellular.CoveredASes()),
		len(noncell.PositiveASes()), len(noncell.CoveredASes()))

	// Union the methods and score against ground truth — the evaluation
	// the paper could only do by manual spot checks.
	union := detect.Union("BitTorrent ∪ Netalyzr",
		detect.BTView(bt), detect.CellularView(cellular), detect.NonCellularView(noncell))
	score := union.ScoreAgainstTruth(world.CGNTruth())
	fmt.Printf("combined: precision=%.2f recall=%.2f (tp=%d fp=%d fn=%d)\n",
		score.Precision(), score.Recall(),
		score.TruePositive, score.FalsePositive, score.FalseNegative)
}
