// cellular walks through the paper's cellular findings on one hand-built
// carrier: direct CGN detection from the device address (§4.2), NAT
// distance and mapping timeout via TTL enumeration (§6.3–6.4), STUN
// mapping type (§6.5), and the port allocation of ten TCP flows (§6.2).
package main

import (
	"fmt"
	"math/rand"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/netalyzr"
	"cgn/internal/props"
	"cgn/internal/simnet"
)

func addr(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

func main() {
	net := simnet.New()
	rng := rand.New(rand.NewSource(9))
	servers := netalyzr.DeployServers(net, netalyzr.DefaultServersConfig(), rng)

	// A cellular carrier: CGN five router-hops into the network,
	// chunk-based random port allocation (2K chunks), symmetric
	// mappings, 40-second UDP timeout — a restrictive deployment of the
	// kind §7 warns about.
	net.Global().Announce(netaddr.MustParsePrefix("198.51.100.0/24"), 64800)
	carrier := net.NewRealm("carrier", 1)
	pool := make([]netaddr.Addr, 4)
	for i := range pool {
		pool[i] = addr("198.51.100.20") + netaddr.Addr(i)
	}
	net.AttachNAT("cgn", carrier, net.Public(), nat.Config{
		Type:             nat.Symmetric,
		PortAlloc:        nat.RandomChunk,
		ChunkSize:        2048,
		Pooling:          nat.Paired,
		ExternalIPs:      pool,
		UDPTimeout:       40 * time.Second,
		RefreshOnInbound: true,
		Seed:             5,
	}, 4, 1)

	// Run full sessions from a handful of handsets.
	var sessions []netalyzr.Session
	for i := 0; i < 25; i++ {
		dev := net.NewHost(fmt.Sprintf("phone%d", i), carrier,
			addr("100.64.0.0")+netaddr.Addr(100+i*307), 0, rng)
		sessions = append(sessions, netalyzr.RunSession(dev, servers, netalyzr.ClientConfig{
			ASN: 64800, Cellular: true, RunSTUN: true, RunTTL: i < 5,
		}))
	}

	first := sessions[0]
	fmt.Printf("device address: %v (%v)\n", first.IPdev, netaddr.ClassifyRange(first.IPdev))
	fmt.Printf("public address: %v -> carrier NAT confirmed: %v\n",
		first.IPpub, first.IPdev != first.IPpub)
	fmt.Printf("STUN mapping type: %v\n", first.STUNResult.Class)

	for _, s := range sessions[:5] {
		if !s.TTLRan {
			continue
		}
		for _, ob := range s.TTLResult.NATs {
			fmt.Printf("TTL enumeration: NAT at hop %d, timeout in [%v, %v)\n",
				ob.Hop, ob.TimeoutLow, ob.TimeoutHigh)
		}
		break
	}

	// Port allocation across the whole AS.
	cgnASes := map[uint32]bool{64800: true}
	ports := props.AnalyzePorts(sessions, cgnASes, props.PortConfig{})
	as := ports.PerAS[64800]
	fmt.Printf("port strategy sessions: %v\n", as.Strategies)
	if as.ChunkDetected {
		fmt.Printf("chunk-based allocation detected, estimated chunk size %d ports\n", as.ChunkSize)
		fmt.Printf("=> at 2K ports per subscriber, one public IP serves at most %d subscribers\n",
			64512/as.ChunkSize)
	}
}
