// Package cgn reproduces "A Multi-perspective Analysis of Carrier-Grade
// NAT Deployment" (Richter et al., ACM IMC 2016) as a Go library: a
// behavioral NAT engine, a deterministic packet-level network simulator,
// wire-level BitTorrent DHT / STUN / UPnP implementations, the paper's two
// CGN detection pipelines, and a benchmark harness that regenerates every
// table and figure of the evaluation.
//
// Beyond the single-campaign driver, internal/campaign sweeps the
// pipeline across many scenario/seed worlds in parallel and aggregates
// ground-truth precision/recall into distributions with confidence
// intervals (cgnsim -sweep).
//
// See README.md for the library tour, CLI usage (including sweep mode)
// and the experiment index. This root package holds only documentation
// and the benchmark harness (bench_test.go); the implementation lives
// under internal/.
package cgn
