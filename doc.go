// Package cgn reproduces "A Multi-perspective Analysis of Carrier-Grade
// NAT Deployment" (Richter et al., ACM IMC 2016) as a Go library: a
// behavioral NAT engine, a deterministic packet-level network simulator,
// wire-level BitTorrent DHT / STUN / UPnP implementations, the paper's two
// CGN detection pipelines, and a benchmark harness that regenerates every
// table and figure of the evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// This root package holds only documentation and the benchmark harness
// (bench_test.go); the implementation lives under internal/.
package cgn
