package graph_test

import (
	"fmt"

	"cgn/internal/graph"
)

// The Figure 3 contrast in miniature: home NATs leak isolated pairs,
// CGN pooling links many public addresses to one shared internal
// population.
func ExampleBipartite_Largest() {
	home := graph.NewBipartite[string, string]()
	home.AddEdge("pub1", "int-a")
	home.AddEdge("pub2", "int-b")

	cgnlike := graph.NewBipartite[string, string]()
	for _, pub := range []string{"pool1", "pool2", "pool3"} {
		for _, internal := range []string{"sub-x", "sub-y"} {
			cgnlike.AddEdge(pub, internal)
		}
	}
	h := home.Largest()
	c := cgnlike.Largest()
	fmt.Printf("home: largest cluster %dx%d of %d components\n", len(h.Left), len(h.Right), len(home.Components()))
	fmt.Printf("cgn:  largest cluster %dx%d of %d components\n", len(c.Left), len(c.Right), len(cgnlike.Components()))
	// Output:
	// home: largest cluster 1x1 of 2 components
	// cgn:  largest cluster 3x2 of 1 components
}
