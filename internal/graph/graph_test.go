package graph

import (
	"math/rand"
	"testing"
)

func TestEmptyGraph(t *testing.T) {
	b := NewBipartite[string, int]()
	if len(b.Components()) != 0 {
		t.Error("empty graph should have no components")
	}
	lg := b.Largest()
	if lg.Size() != 0 {
		t.Error("largest of empty graph should be empty")
	}
}

func TestSingleEdge(t *testing.T) {
	b := NewBipartite[string, int]()
	b.AddEdge("a", 1)
	comps := b.Components()
	if len(comps) != 1 {
		t.Fatalf("components = %d", len(comps))
	}
	if len(comps[0].Left) != 1 || len(comps[0].Right) != 1 {
		t.Errorf("component = %+v", comps[0])
	}
}

func TestIsolatedVsClustered(t *testing.T) {
	// The Figure 3 contrast: isolated home leaks (each leaker leaks its
	// own internal peer) vs a CGN cluster (leakers share internal peers).
	iso := NewBipartite[string, string]()
	iso.AddEdge("pub1", "int1")
	iso.AddEdge("pub2", "int2")
	iso.AddEdge("pub3", "int3")
	if got := len(iso.Components()); got != 3 {
		t.Errorf("isolated graph components = %d, want 3", got)
	}
	if lg := iso.Largest(); len(lg.Left) != 1 || len(lg.Right) != 1 {
		t.Errorf("isolated largest = %d x %d, want 1 x 1", len(lg.Left), len(lg.Right))
	}

	cgn := NewBipartite[string, string]()
	for _, pub := range []string{"pub1", "pub2", "pub3"} {
		for _, internal := range []string{"int1", "int2", "int3", "int4"} {
			cgn.AddEdge(pub, internal)
		}
	}
	if got := len(cgn.Components()); got != 1 {
		t.Errorf("clustered graph components = %d, want 1", got)
	}
	if lg := cgn.Largest(); len(lg.Left) != 3 || len(lg.Right) != 4 {
		t.Errorf("clustered largest = %d x %d, want 3 x 4", len(lg.Left), len(lg.Right))
	}
}

func TestChainMerging(t *testing.T) {
	// pub1-int1, pub2-int1: shared internal peer joins the components.
	b := NewBipartite[string, string]()
	b.AddEdge("pub1", "int1")
	b.AddEdge("pub2", "int1")
	b.AddEdge("pub2", "int2")
	b.AddEdge("pub3", "int3") // separate
	comps := b.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0].Left) != 2 || len(comps[0].Right) != 2 {
		t.Errorf("largest = %+v", comps[0])
	}
}

func TestDuplicateEdges(t *testing.T) {
	b := NewBipartite[string, string]()
	b.AddEdge("pub1", "int1")
	b.AddEdge("pub1", "int1")
	if b.NumLeft() != 1 || b.NumRight() != 1 {
		t.Errorf("vertices = %d x %d", b.NumLeft(), b.NumRight())
	}
	if b.NumEdges() != 2 {
		t.Errorf("edges = %d", b.NumEdges())
	}
	if lg := b.Largest(); len(lg.Left) != 1 || len(lg.Right) != 1 {
		t.Errorf("largest = %+v", lg)
	}
}

func TestComponentsSorted(t *testing.T) {
	b := NewBipartite[int, int]()
	// Component A: 1 left, 1 right. Component B: 3 lefts, 2 rights.
	b.AddEdge(1, 100)
	for l := 10; l < 13; l++ {
		b.AddEdge(l, 200)
	}
	b.AddEdge(12, 201)
	comps := b.Components()
	if len(comps[0].Left) != 3 {
		t.Errorf("components not sorted by size: %+v", comps)
	}
}

// Property test: components partition the vertex set, and every edge's
// endpoints share a component.
func TestComponentsPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		b := NewBipartite[int, int]()
		type edge struct{ l, r int }
		var edges []edge
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			e := edge{rng.Intn(12), rng.Intn(12)}
			edges = append(edges, e)
			b.AddEdge(e.l, e.r)
		}
		comps := b.Components()
		leftSeen, rightSeen := map[int]int{}, map[int]int{}
		for ci, c := range comps {
			for _, l := range c.Left {
				if _, dup := leftSeen[l]; dup {
					t.Fatal("left vertex in two components")
				}
				leftSeen[l] = ci
			}
			for _, r := range c.Right {
				if _, dup := rightSeen[r]; dup {
					t.Fatal("right vertex in two components")
				}
				rightSeen[r] = ci
			}
		}
		if len(leftSeen) != b.NumLeft() || len(rightSeen) != b.NumRight() {
			t.Fatal("components lose vertices")
		}
		for _, e := range edges {
			if leftSeen[e.l] != rightSeen[e.r] {
				t.Fatalf("edge (%d,%d) spans components", e.l, e.r)
			}
		}
	}
}
