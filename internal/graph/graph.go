// Package graph provides the bipartite leak-graph machinery behind the
// paper's BitTorrent clustering (§4.1, Figures 3 and 4): vertices are
// public leaker IPs on one side and internal peer IPs on the other, an
// edge means "this public peer leaked contact information for this
// internal peer", and connected components reveal NAT pooling — many
// public addresses sharing one internal population.
package graph

import "sort"

// Bipartite is an undirected bipartite graph with comparable vertex types
// for the left (public) and right (internal) sides.
type Bipartite[L comparable, R comparable] struct {
	leftIdx  map[L]int
	rightIdx map[R]int
	lefts    []L
	rights   []R
	dsu      []int // union-find over left vertices then right vertices
	edges    int
}

// NewBipartite returns an empty graph.
func NewBipartite[L comparable, R comparable]() *Bipartite[L, R] {
	return &Bipartite[L, R]{
		leftIdx:  make(map[L]int),
		rightIdx: make(map[R]int),
	}
}

// AddEdge inserts the edge (l, r), creating vertices as needed.
// Duplicate edges are harmless.
func (b *Bipartite[L, R]) AddEdge(l L, r R) {
	li, ok := b.leftIdx[l]
	if !ok {
		li = len(b.dsu)
		b.leftIdx[l] = li
		b.lefts = append(b.lefts, l)
		b.dsu = append(b.dsu, li)
	}
	ri, ok := b.rightIdx[r]
	if !ok {
		ri = len(b.dsu)
		b.rightIdx[r] = ri
		b.rights = append(b.rights, r)
		b.dsu = append(b.dsu, ri)
	}
	b.union(li, ri)
	b.edges++
}

// NumLeft and NumRight return vertex counts; NumEdges counts AddEdge calls.
func (b *Bipartite[L, R]) NumLeft() int { return len(b.lefts) }

// NumRight returns the right-side vertex count.
func (b *Bipartite[L, R]) NumRight() int { return len(b.rights) }

// NumEdges returns the number of AddEdge calls (duplicates included).
func (b *Bipartite[L, R]) NumEdges() int { return b.edges }

func (b *Bipartite[L, R]) find(x int) int {
	for b.dsu[x] != x {
		b.dsu[x] = b.dsu[b.dsu[x]]
		x = b.dsu[x]
	}
	return x
}

func (b *Bipartite[L, R]) union(x, y int) {
	rx, ry := b.find(x), b.find(y)
	if rx != ry {
		b.dsu[ry] = rx
	}
}

// Component is one connected cluster.
type Component[L comparable, R comparable] struct {
	Left  []L
	Right []R
}

// Size returns the total vertex count.
func (c Component[L, R]) Size() int { return len(c.Left) + len(c.Right) }

// Components returns all connected clusters, largest first (by left
// size, then right size). Within a component, vertex order follows
// insertion order, keeping output deterministic.
func (b *Bipartite[L, R]) Components() []Component[L, R] {
	byRoot := make(map[int]*Component[L, R])
	for _, l := range b.lefts {
		root := b.find(b.leftIdx[l])
		c := byRoot[root]
		if c == nil {
			c = &Component[L, R]{}
			byRoot[root] = c
		}
		c.Left = append(c.Left, l)
	}
	for _, r := range b.rights {
		root := b.find(b.rightIdx[r])
		c := byRoot[root]
		if c == nil {
			c = &Component[L, R]{}
			byRoot[root] = c
		}
		c.Right = append(c.Right, r)
	}
	out := make([]Component[L, R], 0, len(byRoot))
	for _, c := range byRoot {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Left) != len(out[j].Left) {
			return len(out[i].Left) > len(out[j].Left)
		}
		return len(out[i].Right) > len(out[j].Right)
	})
	return out
}

// Largest returns the biggest connected cluster (zero value when empty).
func (b *Bipartite[L, R]) Largest() Component[L, R] {
	comps := b.Components()
	if len(comps) == 0 {
		return Component[L, R]{}
	}
	return comps[0]
}
