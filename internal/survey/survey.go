// Package survey encodes the paper's operator survey (§2, Figure 1): 75
// ISP responses on IPv4 scarcity, address markets, CGN and IPv6
// deployment, and operational concerns. The corpus is synthesized to
// match every marginal the paper reports; the aggregation code computes
// those marginals back, which is what Figure 1 and the §2 statistics
// regenerate from.
package survey

import (
	"fmt"
	"math/rand"

	"cgn/internal/stats"
)

// CGNStatus is a respondent's CGN deployment state (Fig 1a).
type CGNStatus uint8

// CGN deployment answers.
const (
	CGNDeployed CGNStatus = iota
	CGNConsidering
	CGNNoPlans
)

// String names the answer.
func (s CGNStatus) String() string {
	switch s {
	case CGNDeployed:
		return "yes, already deployed"
	case CGNConsidering:
		return "considering deployment"
	case CGNNoPlans:
		return "no plans to deploy"
	default:
		return fmt.Sprintf("CGNStatus(%d)", s)
	}
}

// IPv6Status is a respondent's IPv6 deployment state (Fig 1b).
type IPv6Status uint8

// IPv6 deployment answers.
const (
	IPv6MostSubscribers IPv6Status = iota
	IPv6SomeSubscribers
	IPv6PlansSoon
	IPv6NoPlans
)

// String names the answer.
func (s IPv6Status) String() string {
	switch s {
	case IPv6MostSubscribers:
		return "yes, most/all subscribers"
	case IPv6SomeSubscribers:
		return "yes, some subscribers"
	case IPv6PlansSoon:
		return "plans to deploy soon"
	case IPv6NoPlans:
		return "no plans to deploy"
	default:
		return fmt.Sprintf("IPv6Status(%d)", s)
	}
}

// Response is one ISP's answers.
type Response struct {
	// ID anonymizes the respondent.
	ID int
	// Cellular marks mobile operators.
	Cellular bool
	// FacesScarcity / ScarcityLooming: current and expected IPv4
	// shortage.
	FacesScarcity   bool
	ScarcityLooming bool
	// FacesInternalScarcity: shortage of internal (private) space, the
	// §2 / §6.1 observation.
	FacesInternalScarcity bool
	// BoughtAddresses / ConsideredBuying: IPv4 market activity.
	BoughtAddresses  bool
	ConsideredBuying bool
	// Market concerns (among those considering buying).
	ConcernPrice, ConcernPollution, ConcernOwnership bool
	// CGN and IPv6 deployment status.
	CGN  CGNStatus
	IPv6 IPv6Status
	// MaxSessionsPerCustomer, when non-zero, is the reported per-
	// subscriber session cap (the survey saw values down to 512).
	MaxSessionsPerCustomer int
}

// Corpus returns the 75-response corpus. The synthesis is deterministic:
// counts are fixed to reproduce the paper's marginals exactly; the rng
// only shuffles which respondent carries which combination.
func Corpus(seed int64) []Response {
	rng := rand.New(rand.NewSource(seed))
	const n = 75
	out := make([]Response, n)
	for i := range out {
		out[i].ID = i + 1
	}
	// 28/75 ≈ 38% deployed, 9/75 = 12% considering, 38/75 = 50% no plans.
	assign(rng, out, func(r *Response, v CGNStatus) { r.CGN = v },
		pairs[CGNStatus](CGNDeployed, 28, CGNConsidering, 9, CGNNoPlans, 38))
	// IPv6: 32% most/all (24), 35% some (26), 11% soon (8), 22% none (17).
	assign(rng, out, func(r *Response, v IPv6Status) { r.IPv6 = v },
		pairs[IPv6Status](IPv6MostSubscribers, 24, IPv6SomeSubscribers, 26, IPv6PlansSoon, 8, IPv6NoPlans, 17))
	// >40% face scarcity (31), another 10% looming (8).
	assign(rng, out, func(r *Response, v bool) { r.FacesScarcity = v }, pairs[bool](true, 31, false, 44))
	assign(rng, out, func(r *Response, v bool) { r.ScarcityLooming = v }, pairs[bool](true, 8, false, 67))
	// Three ISPs report internal address scarcity.
	assign(rng, out, func(r *Response, v bool) { r.FacesInternalScarcity = v }, pairs[bool](true, 3, false, 72))
	// Three bought addresses; 15 considered buying.
	assign(rng, out, func(r *Response, v bool) { r.BoughtAddresses = v }, pairs[bool](true, 3, false, 72))
	assign(rng, out, func(r *Response, v bool) { r.ConsideredBuying = v }, pairs[bool](true, 15, false, 60))
	// Market concerns: 60% price (45), 44% pollution (33), 42% ownership (32).
	assign(rng, out, func(r *Response, v bool) { r.ConcernPrice = v }, pairs[bool](true, 45, false, 30))
	assign(rng, out, func(r *Response, v bool) { r.ConcernPollution = v }, pairs[bool](true, 33, false, 42))
	assign(rng, out, func(r *Response, v bool) { r.ConcernOwnership = v }, pairs[bool](true, 32, false, 43))
	// A quarter of respondents are cellular operators.
	assign(rng, out, func(r *Response, v bool) { r.Cellular = v }, pairs[bool](true, 19, false, 56))
	// Session caps among deployers: from 1:1 NAT (0 = uncapped) to 512.
	caps := []int{512, 1024, 2048, 4096, 0}
	for i := range out {
		if out[i].CGN == CGNDeployed {
			out[i].MaxSessionsPerCustomer = caps[rng.Intn(len(caps))]
		}
	}
	return out
}

// kv carries one value with its target count.
type kv[T any] struct {
	v T
	n int
}

func pairs[T any](args ...any) []kv[T] {
	if len(args)%2 != 0 {
		panic("survey: pairs needs value/count pairs")
	}
	out := make([]kv[T], 0, len(args)/2)
	for i := 0; i < len(args); i += 2 {
		out = append(out, kv[T]{v: args[i].(T), n: args[i+1].(int)})
	}
	return out
}

// assign distributes values over a shuffled respondent order so the
// marginals are exact but combinations vary with the seed.
func assign[T any](rng *rand.Rand, rs []Response, set func(*Response, T), vals []kv[T]) {
	order := rng.Perm(len(rs))
	i := 0
	for _, kv := range vals {
		for j := 0; j < kv.n; j++ {
			set(&rs[order[i]], kv.v)
			i++
		}
	}
	if i != len(rs) {
		panic(fmt.Sprintf("survey: counts sum to %d, want %d", i, len(rs)))
	}
}

// Aggregate holds the Figure 1 and §2 statistics.
type Aggregate struct {
	N          int
	CGN        stats.Freq[CGNStatus]
	IPv6       stats.Freq[IPv6Status]
	Scarcity   int
	Looming    int
	InternalSc int
	Bought     int
	Considered int
	// Concern percentages are relative to all respondents, as reported.
	ConcernPrice, ConcernPollution, ConcernOwnership int
}

// Aggregate computes the marginals of a corpus.
func AggregateCorpus(rs []Response) Aggregate {
	a := Aggregate{
		N:    len(rs),
		CGN:  stats.Freq[CGNStatus]{},
		IPv6: stats.Freq[IPv6Status]{},
	}
	for _, r := range rs {
		a.CGN.Add(r.CGN)
		a.IPv6.Add(r.IPv6)
		if r.FacesScarcity {
			a.Scarcity++
		}
		if r.ScarcityLooming {
			a.Looming++
		}
		if r.FacesInternalScarcity {
			a.InternalSc++
		}
		if r.BoughtAddresses {
			a.Bought++
		}
		if r.ConsideredBuying {
			a.Considered++
		}
		if r.ConcernPrice {
			a.ConcernPrice++
		}
		if r.ConcernPollution {
			a.ConcernPollution++
		}
		if r.ConcernOwnership {
			a.ConcernOwnership++
		}
	}
	return a
}
