package survey

import "testing"

func TestCorpusSize(t *testing.T) {
	rs := Corpus(1)
	if len(rs) != 75 {
		t.Fatalf("corpus size = %d, want 75", len(rs))
	}
	for i, r := range rs {
		if r.ID != i+1 {
			t.Errorf("response %d has ID %d", i, r.ID)
		}
	}
}

func TestFigure1Marginals(t *testing.T) {
	a := AggregateCorpus(Corpus(42))
	// Fig 1(a): 38% deployed, 12% considering, 50% no plans.
	if a.CGN[CGNDeployed] != 28 || a.CGN[CGNConsidering] != 9 || a.CGN[CGNNoPlans] != 38 {
		t.Errorf("CGN marginals = %v", a.CGN)
	}
	// Fig 1(b): 32/35/11/22.
	if a.IPv6[IPv6MostSubscribers] != 24 || a.IPv6[IPv6SomeSubscribers] != 26 ||
		a.IPv6[IPv6PlansSoon] != 8 || a.IPv6[IPv6NoPlans] != 17 {
		t.Errorf("IPv6 marginals = %v", a.IPv6)
	}
	// §2 statistics.
	if a.Scarcity != 31 || a.Looming != 8 || a.InternalSc != 3 {
		t.Errorf("scarcity = %d/%d/%d", a.Scarcity, a.Looming, a.InternalSc)
	}
	if a.Bought != 3 || a.Considered != 15 {
		t.Errorf("market = %d bought, %d considered", a.Bought, a.Considered)
	}
	if a.ConcernPrice != 45 || a.ConcernPollution != 33 || a.ConcernOwnership != 32 {
		t.Errorf("concerns = %d/%d/%d", a.ConcernPrice, a.ConcernPollution, a.ConcernOwnership)
	}
}

func TestMarginalsStableAcrossSeeds(t *testing.T) {
	a1 := AggregateCorpus(Corpus(1))
	a2 := AggregateCorpus(Corpus(99))
	if a1.CGN[CGNDeployed] != a2.CGN[CGNDeployed] || a1.Scarcity != a2.Scarcity {
		t.Error("marginals must be seed-independent")
	}
	// But the individual assignments should differ.
	r1, r2 := Corpus(1), Corpus(99)
	same := true
	for i := range r1 {
		if r1[i].CGN != r2[i].CGN {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should shuffle assignments")
	}
}

func TestSessionCapsOnlyForDeployers(t *testing.T) {
	for _, r := range Corpus(7) {
		if r.CGN != CGNDeployed && r.MaxSessionsPerCustomer != 0 {
			t.Errorf("non-deployer %d has session cap %d", r.ID, r.MaxSessionsPerCustomer)
		}
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []CGNStatus{CGNDeployed, CGNConsidering, CGNNoPlans} {
		if s.String() == "" {
			t.Error("CGNStatus must render")
		}
	}
	for _, s := range []IPv6Status{IPv6MostSubscribers, IPv6SomeSubscribers, IPv6PlansSoon, IPv6NoPlans} {
		if s.String() == "" {
			t.Error("IPv6Status must render")
		}
	}
}
