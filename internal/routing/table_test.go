package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cgn/internal/netaddr"
)

func p(s string) netaddr.Prefix { return netaddr.MustParsePrefix(s) }
func a(s string) netaddr.Addr   { return netaddr.MustParseAddr(s) }

func TestLookupLongestMatch(t *testing.T) {
	tb := NewTable[string]()
	tb.Insert(p("10.0.0.0/8"), "eight")
	tb.Insert(p("10.1.0.0/16"), "sixteen")
	tb.Insert(p("10.1.2.0/24"), "twentyfour")

	cases := []struct {
		addr string
		want string
	}{
		{"10.1.2.3", "twentyfour"},
		{"10.1.3.1", "sixteen"},
		{"10.2.0.1", "eight"},
	}
	for _, c := range cases {
		got, ok := tb.Lookup(a(c.addr))
		if !ok || got != c.want {
			t.Errorf("Lookup(%s) = %q, %v; want %q", c.addr, got, ok, c.want)
		}
	}
	if _, ok := tb.Lookup(a("11.0.0.1")); ok {
		t.Error("Lookup outside any prefix should miss")
	}
}

func TestLookupPrefix(t *testing.T) {
	tb := NewTable[int]()
	tb.Insert(p("192.168.0.0/16"), 1)
	tb.Insert(p("192.168.4.0/22"), 2)
	pre, v, ok := tb.LookupPrefix(a("192.168.5.9"))
	if !ok || v != 2 || pre.String() != "192.168.4.0/22" {
		t.Errorf("LookupPrefix = %v, %d, %v", pre, v, ok)
	}
}

func TestDefaultRoute(t *testing.T) {
	tb := NewTable[string]()
	tb.Insert(p("0.0.0.0/0"), "default")
	tb.Insert(p("10.0.0.0/8"), "ten")
	if got, _ := tb.Lookup(a("8.8.8.8")); got != "default" {
		t.Errorf("default route lookup = %q", got)
	}
	if got, _ := tb.Lookup(a("10.9.9.9")); got != "ten" {
		t.Errorf("specific beats default: got %q", got)
	}
}

func TestHostRoute(t *testing.T) {
	tb := NewTable[int]()
	tb.Insert(p("203.0.113.7/32"), 42)
	if v, ok := tb.Lookup(a("203.0.113.7")); !ok || v != 42 {
		t.Error("host route must match its own address")
	}
	if _, ok := tb.Lookup(a("203.0.113.8")); ok {
		t.Error("host route must not match neighbours")
	}
}

func TestInsertReplace(t *testing.T) {
	tb := NewTable[int]()
	tb.Insert(p("10.0.0.0/8"), 1)
	tb.Insert(p("10.0.0.0/8"), 2)
	if tb.Len() != 1 {
		t.Errorf("Len = %d after replace, want 1", tb.Len())
	}
	if v, _ := tb.Lookup(a("10.0.0.1")); v != 2 {
		t.Errorf("value after replace = %d", v)
	}
}

func TestRemove(t *testing.T) {
	tb := NewTable[int]()
	tb.Insert(p("10.0.0.0/8"), 1)
	tb.Insert(p("10.1.0.0/16"), 2)
	if !tb.Remove(p("10.1.0.0/16")) {
		t.Fatal("Remove returned false for installed prefix")
	}
	if tb.Remove(p("10.1.0.0/16")) {
		t.Error("second Remove should return false")
	}
	if v, ok := tb.Lookup(a("10.1.2.3")); !ok || v != 1 {
		t.Errorf("after remove, Lookup = %d, %v; want fallthrough to /8", v, ok)
	}
	if tb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tb.Len())
	}
}

func TestRemoveAbsent(t *testing.T) {
	tb := NewTable[int]()
	if tb.Remove(p("10.0.0.0/8")) {
		t.Error("Remove on empty table should be false")
	}
	tb.Insert(p("10.0.0.0/8"), 1)
	if tb.Remove(p("10.0.0.0/16")) {
		t.Error("Remove of non-installed longer prefix should be false")
	}
}

func TestWalkOrderAndPrefixes(t *testing.T) {
	tb := NewTable[int]()
	ins := []string{"10.0.0.0/8", "9.0.0.0/8", "10.1.0.0/16", "0.0.0.0/0"}
	for i, s := range ins {
		tb.Insert(p(s), i)
	}
	got := tb.Prefixes()
	want := []string{"0.0.0.0/0", "9.0.0.0/8", "10.0.0.0/8", "10.1.0.0/16"}
	if len(got) != len(want) {
		t.Fatalf("Prefixes len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i] {
			t.Errorf("Prefixes[%d] = %v, want %s", i, got[i], want[i])
		}
	}
}

func TestWalkEarlyStop(t *testing.T) {
	tb := NewTable[int]()
	tb.Insert(p("1.0.0.0/8"), 1)
	tb.Insert(p("2.0.0.0/8"), 2)
	n := 0
	tb.Walk(func(netaddr.Prefix, int) bool {
		n++
		return false
	})
	if n != 1 {
		t.Errorf("Walk visited %d entries after early stop, want 1", n)
	}
}

// Property: for random prefix sets, Lookup agrees with a brute-force scan.
func TestLookupMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type entry struct {
		pre netaddr.Prefix
		val int
	}
	for trial := 0; trial < 50; trial++ {
		tb := NewTable[int]()
		entries := make(map[netaddr.Prefix]int)
		for i := 0; i < 60; i++ {
			pre := netaddr.PrefixFrom(netaddr.Addr(rng.Uint32()), rng.Intn(33))
			entries[pre] = i
			tb.Insert(pre, i)
		}
		var list []entry
		for pre, v := range entries {
			list = append(list, entry{pre, v})
		}
		for i := 0; i < 200; i++ {
			addr := netaddr.Addr(rng.Uint32())
			bestBits, bestVal, found := -1, 0, false
			for _, e := range list {
				if e.pre.Contains(addr) && e.pre.Bits() > bestBits {
					bestBits, bestVal, found = e.pre.Bits(), e.val, true
				}
			}
			got, ok := tb.Lookup(addr)
			if ok != found || (found && got != bestVal) {
				t.Fatalf("trial %d: Lookup(%v) = %d,%v; brute force %d,%v",
					trial, addr, got, ok, bestVal, found)
			}
		}
	}
}

func TestGlobalRouted(t *testing.T) {
	g := NewGlobal()
	g.Announce(p("203.0.0.0/16"), 65001)
	if !g.Routed(a("203.0.113.5")) {
		t.Error("announced address should be routed")
	}
	if g.Routed(a("25.1.1.1")) {
		t.Error("unannounced public space should be unrouted")
	}
	// Reserved space is never routed even if someone announces it.
	g.Announce(p("10.0.0.0/8"), 65002)
	if g.Routed(a("10.1.1.1")) {
		t.Error("reserved space must never count as routed")
	}
	asn, ok := g.OriginAS(a("203.0.1.1"))
	if !ok || asn != 65001 {
		t.Errorf("OriginAS = %d, %v", asn, ok)
	}
	if _, ok := g.OriginAS(a("10.0.0.1")); ok {
		t.Error("OriginAS must refuse reserved space")
	}
	if g.NumPrefixes() != 2 {
		t.Errorf("NumPrefixes = %d", g.NumPrefixes())
	}
	if !g.Withdraw(p("203.0.0.0/16")) || g.Routed(a("203.0.113.5")) {
		t.Error("withdrawn prefix must become unrouted")
	}
}

func TestSortPrefixes(t *testing.T) {
	ps := []netaddr.Prefix{p("10.0.0.0/16"), p("9.0.0.0/8"), p("10.0.0.0/8")}
	SortPrefixes(ps)
	want := []string{"9.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16"}
	for i := range want {
		if ps[i].String() != want[i] {
			t.Errorf("sorted[%d] = %v, want %s", i, ps[i], want[i])
		}
	}
}

// Property: inserting then looking up the canonical address of any prefix
// finds a value.
func TestInsertLookupProperty(t *testing.T) {
	f := func(addr uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw % 33)
		tb := NewTable[bool]()
		pre := netaddr.PrefixFrom(netaddr.Addr(addr), bits)
		tb.Insert(pre, true)
		_, ok := tb.Lookup(pre.Addr())
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
