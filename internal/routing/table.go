// Package routing implements a longest-prefix-match routing table over the
// netaddr types. The repository uses it in two roles: as the simulated
// global BGP table (deciding whether an address is "routed" in the §4.2
// sense) and as per-ISP internal routing inside the network simulator.
package routing

import (
	"fmt"
	"sort"
	"strings"

	"cgn/internal/netaddr"
)

// Table is a longest-prefix-match table mapping prefixes to opaque values.
// The zero value... is not usable; call NewTable. Table is not safe for
// concurrent mutation; the simulator builds tables once and then only reads.
type Table[V any] struct {
	root *node[V]
	size int
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// NewTable returns an empty table.
func NewTable[V any]() *Table[V] {
	return &Table[V]{root: &node[V]{}}
}

// Len returns the number of installed prefixes.
func (t *Table[V]) Len() int { return t.size }

// Insert installs or replaces the value for an exact prefix.
func (t *Table[V]) Insert(p netaddr.Prefix, v V) {
	n := t.root
	a := uint32(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		bit := (a >> (31 - uint(i))) & 1
		if n.child[bit] == nil {
			n.child[bit] = &node[V]{}
		}
		n = n.child[bit]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = v, true
}

// Lookup returns the value of the longest installed prefix containing a.
func (t *Table[V]) Lookup(a netaddr.Addr) (V, bool) {
	var (
		best  V
		found bool
	)
	n := t.root
	u := uint32(a)
	for i := 0; ; i++ {
		if n.set {
			best, found = n.val, true
		}
		if i == 32 {
			break
		}
		bit := (u >> (31 - uint(i))) & 1
		if n.child[bit] == nil {
			break
		}
		n = n.child[bit]
	}
	return best, found
}

// LookupPrefix returns the longest installed prefix containing a along with
// its value.
func (t *Table[V]) LookupPrefix(a netaddr.Addr) (netaddr.Prefix, V, bool) {
	var (
		bestP netaddr.Prefix
		bestV V
		found bool
	)
	n := t.root
	u := uint32(a)
	for i := 0; ; i++ {
		if n.set {
			bestP = netaddr.PrefixFrom(a, i)
			bestV, found = n.val, true
		}
		if i == 32 {
			break
		}
		bit := (u >> (31 - uint(i))) & 1
		if n.child[bit] == nil {
			break
		}
		n = n.child[bit]
	}
	return bestP, bestV, found
}

// Contains reports whether some installed prefix covers a.
func (t *Table[V]) Contains(a netaddr.Addr) bool {
	_, ok := t.Lookup(a)
	return ok
}

// Remove deletes the exact prefix p. It reports whether p was present.
// Interior nodes are not pruned; tables in this repository are built once
// and reused, so transient garbage from removal is irrelevant.
func (t *Table[V]) Remove(p netaddr.Prefix) bool {
	n := t.root
	a := uint32(p.Addr())
	for i := 0; i < p.Bits(); i++ {
		bit := (a >> (31 - uint(i))) & 1
		if n.child[bit] == nil {
			return false
		}
		n = n.child[bit]
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Walk visits every installed prefix in address order, shortest prefix
// first among equal addresses. The walk stops if fn returns false.
func (t *Table[V]) Walk(fn func(p netaddr.Prefix, v V) bool) {
	var rec func(n *node[V], addr uint32, depth int) bool
	rec = func(n *node[V], addr uint32, depth int) bool {
		if n == nil {
			return true
		}
		if n.set {
			if !fn(netaddr.PrefixFrom(netaddr.Addr(addr), depth), n.val) {
				return false
			}
		}
		if depth == 32 {
			return true
		}
		if !rec(n.child[0], addr, depth+1) {
			return false
		}
		return rec(n.child[1], addr|1<<(31-uint(depth)), depth+1)
	}
	rec(t.root, 0, 0)
}

// Prefixes returns all installed prefixes in walk order.
func (t *Table[V]) Prefixes() []netaddr.Prefix {
	out := make([]netaddr.Prefix, 0, t.size)
	t.Walk(func(p netaddr.Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	return out
}

// String renders the table for debugging.
func (t *Table[V]) String() string {
	var b strings.Builder
	t.Walk(func(p netaddr.Prefix, v V) bool {
		fmt.Fprintf(&b, "%v -> %v\n", p, v)
		return true
	})
	return b.String()
}

// Global is the simulated global routing table: the set of prefixes
// announced into "BGP" by the generated Internet, each mapped to its origin
// AS number. It answers the "is this address routed" question from §4.2.
type Global struct {
	t *Table[uint32]
}

// NewGlobal returns an empty global table.
func NewGlobal() *Global { return &Global{t: NewTable[uint32]()} }

// Announce installs prefix p as originated by asn.
func (g *Global) Announce(p netaddr.Prefix, asn uint32) { g.t.Insert(p, asn) }

// Withdraw removes an announced prefix.
func (g *Global) Withdraw(p netaddr.Prefix) bool { return g.t.Remove(p) }

// Routed reports whether a is covered by any announced prefix. Reserved
// addresses are never routed, matching their intended use; the paper notes
// some ASes internally use routable-but-unrouted space (e.g. 25.0.0.0/8),
// which this model captures by simply not announcing those blocks.
func (g *Global) Routed(a netaddr.Addr) bool {
	if netaddr.IsReserved(a) {
		return false
	}
	return g.t.Contains(a)
}

// OriginAS returns the AS number originating the longest matching prefix.
func (g *Global) OriginAS(a netaddr.Addr) (uint32, bool) {
	if netaddr.IsReserved(a) {
		return 0, false
	}
	return g.t.Lookup(a)
}

// NumPrefixes returns the number of announced prefixes.
func (g *Global) NumPrefixes() int { return g.t.Len() }

// Walk visits every announced prefix with its origin AS in address order.
// Dataset exporters use it to snapshot the table alongside measurement
// data, so offline analysis can answer routability questions.
func (g *Global) Walk(fn func(p netaddr.Prefix, asn uint32) bool) {
	g.t.Walk(fn)
}

// SortPrefixes orders prefixes by address then length; a convenience for
// deterministic report output.
func SortPrefixes(ps []netaddr.Prefix) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Addr() != ps[j].Addr() {
			return ps[i].Addr() < ps[j].Addr()
		}
		return ps[i].Bits() < ps[j].Bits()
	})
}
