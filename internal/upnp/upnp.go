// Package upnp models the sliver of UPnP IGD that Netalyzr uses (§4.2):
// asking the local gateway for its external IP address
// (GetExternalIPAddress) and its device model string. The paper derives
// IPcpe — the CPE router's WAN address — and the router model of Fig 8(b)
// from exactly these two answers.
//
// The wire format is a deliberately small text protocol rather than full
// SSDP/SOAP: one request line, one response line. What matters for the
// reproduction is the information flow (the gateway reveals its WAN
// address to LAN clients), not XML framing.
package upnp

import (
	"fmt"
	"strconv"
	"strings"

	"cgn/internal/netaddr"
)

// Port is the UDP port gateways listen on (SSDP's well-known port).
const Port = 1900

// requestLine is the discovery request payload.
const requestLine = "upnp-igd? GetExternalIPAddress"

// Request returns the query payload a client sends to its gateway.
func Request() []byte { return []byte(requestLine) }

// IsRequest reports whether payload is a UPnP query.
func IsRequest(payload []byte) bool { return string(payload) == requestLine }

// Info is a gateway's answer.
type Info struct {
	// ExternalIP is the gateway's WAN address — the paper's IPcpe.
	ExternalIP netaddr.Addr
	// Model is the device model string, used to group CPE behavior in
	// Fig 8(b).
	Model string
}

// Encode renders the gateway response.
func (i Info) Encode() []byte {
	return []byte(fmt.Sprintf("upnp-igd! ext=%s model=%q", i.ExternalIP, i.Model))
}

// ParseResponse parses a gateway response.
func ParseResponse(payload []byte) (Info, bool) {
	s := string(payload)
	if !strings.HasPrefix(s, "upnp-igd! ext=") {
		return Info{}, false
	}
	s = strings.TrimPrefix(s, "upnp-igd! ext=")
	sp := strings.IndexByte(s, ' ')
	if sp < 0 {
		return Info{}, false
	}
	addr, err := netaddr.ParseAddr(s[:sp])
	if err != nil {
		return Info{}, false
	}
	rest := s[sp+1:]
	if !strings.HasPrefix(rest, "model=") {
		return Info{}, false
	}
	model, err := strconv.Unquote(strings.TrimPrefix(rest, "model="))
	if err != nil {
		return Info{}, false
	}
	return Info{ExternalIP: addr, Model: model}, true
}

// Responder answers UPnP queries on behalf of a gateway. Bind its Handle
// method to the gateway host's UPnP port.
type Responder struct {
	// Info is the advertised gateway state.
	Info Info
	// Enabled mirrors real deployments where only some CPEs answer UPnP;
	// the paper could resolve IPcpe for roughly 40% of sessions.
	Enabled bool
	// Send transmits the response datagram.
	Send func(dst netaddr.Endpoint, payload []byte)
}

// Handle processes one inbound datagram.
func (r *Responder) Handle(from netaddr.Endpoint, payload []byte) {
	if !r.Enabled || !IsRequest(payload) || r.Send == nil {
		return
	}
	r.Send(from, r.Info.Encode())
}
