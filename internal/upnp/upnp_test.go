package upnp

import (
	"testing"

	"cgn/internal/netaddr"
)

func TestRequestRecognition(t *testing.T) {
	if !IsRequest(Request()) {
		t.Error("Request() not recognized by IsRequest")
	}
	if IsRequest([]byte("something else")) {
		t.Error("foreign payload recognized as request")
	}
}

func TestInfoRoundTrip(t *testing.T) {
	in := Info{
		ExternalIP: netaddr.MustParseAddr("100.64.7.9"),
		Model:      `Speedport W 724V "rev B"`,
	}
	out, ok := ParseResponse(in.Encode())
	if !ok {
		t.Fatal("ParseResponse failed")
	}
	if out != in {
		t.Errorf("round trip = %+v, want %+v (embedded quotes must survive)", out, in)
	}
}

func TestInfoRoundTripSimpleModel(t *testing.T) {
	in := Info{ExternalIP: netaddr.MustParseAddr("203.0.113.4"), Model: "FritzBox 7490"}
	out, ok := ParseResponse(in.Encode())
	if !ok || out != in {
		t.Errorf("round trip = %+v, %v; want %+v", out, ok, in)
	}
}

func TestParseResponseRejects(t *testing.T) {
	bad := []string{
		"",
		"upnp-igd!",
		"upnp-igd! ext=1.2.3.4",           // no model
		"upnp-igd! ext=bogus model=\"x\"", // bad address
		"upnp-igd! ext=1.2.3.4 model=x",   // unquoted model
		"totally unrelated",
	}
	for _, s := range bad {
		if _, ok := ParseResponse([]byte(s)); ok {
			t.Errorf("ParseResponse(%q) accepted", s)
		}
	}
}

func TestResponder(t *testing.T) {
	var sentTo netaddr.Endpoint
	var sent []byte
	r := &Responder{
		Info:    Info{ExternalIP: netaddr.MustParseAddr("198.51.100.3"), Model: "TestBox"},
		Enabled: true,
		Send: func(dst netaddr.Endpoint, payload []byte) {
			sentTo, sent = dst, payload
		},
	}
	client := netaddr.MustParseEndpoint("192.168.1.10:5555")
	r.Handle(client, Request())
	if sentTo != client {
		t.Errorf("response sent to %v", sentTo)
	}
	info, ok := ParseResponse(sent)
	if !ok || info.ExternalIP != r.Info.ExternalIP || info.Model != "TestBox" {
		t.Errorf("response = %+v, %v", info, ok)
	}
}

func TestResponderDisabled(t *testing.T) {
	r := &Responder{
		Info:    Info{ExternalIP: netaddr.MustParseAddr("198.51.100.3"), Model: "X"},
		Enabled: false,
		Send: func(netaddr.Endpoint, []byte) {
			t.Error("disabled responder must stay silent")
		},
	}
	r.Handle(netaddr.MustParseEndpoint("192.168.1.10:5555"), Request())
}

func TestResponderIgnoresGarbage(t *testing.T) {
	r := &Responder{
		Info:    Info{ExternalIP: netaddr.MustParseAddr("198.51.100.3"), Model: "X"},
		Enabled: true,
		Send: func(netaddr.Endpoint, []byte) {
			t.Error("responder must ignore non-UPnP payloads")
		},
	}
	r.Handle(netaddr.MustParseEndpoint("192.168.1.10:5555"), []byte("GET / HTTP/1.1"))
}
