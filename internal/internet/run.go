package internet

import (
	"cgn/internal/btsim"
	"cgn/internal/crawler"
	"cgn/internal/detect"
	"cgn/internal/netalyzr"
)

// CrawlOptions tune the measurement campaign.
type CrawlOptions struct {
	// MingleRounds interleaves swarm participation (BEP-5 announces),
	// tracker locality seeding and chatter; two passes minimum so
	// restricted-NAT hairpin paths open up.
	MingleRounds int
	// LocalityK is the per-peer tracker-contact count per round.
	LocalityK int
	// LocalTorrentsPerAS and GlobalTorrents shape swarm membership;
	// GlobalJoinProb is the per-peer join probability for each global
	// torrent.
	LocalTorrentsPerAS int
	GlobalTorrents     int
	GlobalJoinProb     float64
	// LookupProb and CrawlerPingProb drive the background chatter.
	LookupProb      float64
	CrawlerPingProb float64
	// Crawler is the crawler configuration.
	Crawler crawler.Config
}

// DefaultCrawlOptions returns the standard campaign parameters.
func DefaultCrawlOptions() CrawlOptions {
	return CrawlOptions{
		MingleRounds:       3,
		LocalityK:          3,
		LocalTorrentsPerAS: 2,
		GlobalTorrents:     4,
		GlobalJoinProb:     0.2,
		LookupProb:         0.5,
		CrawlerPingProb:    0.5,
		Crawler:            crawler.DefaultConfig(),
	}
}

// RunCrawl drives the full BitTorrent campaign: bootstrap, LAN discovery,
// swarm participation, chatter and the crawl itself.
func (w *World) RunCrawl(opt CrawlOptions) *crawler.Dataset {
	w.Swarm.Bootstrap()
	w.Swarm.SeedLANs()
	w.Swarm.AssignTorrents(opt.LocalTorrentsPerAS, opt.GlobalTorrents, opt.GlobalJoinProb)
	cr := crawler.New(w.CrawlerHost, w.Net.Global(), opt.Crawler)
	w.Swarm.Mingle(opt.LocalityK, opt.MingleRounds, btsim.ChatterConfig{
		LookupProb:      opt.LookupProb,
		CrawlerEP:       cr.Endpoint(),
		CrawlerPingProb: opt.CrawlerPingProb,
	})
	cr.Seed(w.Swarm.BootstrapEP)
	return cr.Run()
}

// BTDetectConfig returns detection thresholds scaled to the generated
// world: per-AS peer populations are tens, not the thousands of the real
// DHT, so the crawl-depth bar scales down while the cluster boundary (the
// paper's 5x5) stays untouched.
func (w *World) BTDetectConfig() detect.BTConfig {
	return detect.BTConfig{MinPeersQueried: 8}
}

// RunNetalyzr executes one session per provisioned vantage point.
func (w *World) RunNetalyzr() []netalyzr.Session {
	sessions := make([]netalyzr.Session, 0, len(w.clients))
	for _, c := range w.clients {
		cfg := netalyzr.ClientConfig{
			ASN:      c.asn,
			Cellular: c.cellular,
			Gateway:  c.gateway,
			RunSTUN:  w.rng.Float64() < w.Scenario.STUNFrac,
			RunTTL:   w.rng.Float64() < w.Scenario.TTLFrac,
		}
		sessions = append(sessions, netalyzr.RunSession(c.host, w.Servers, cfg))
	}
	return sessions
}
