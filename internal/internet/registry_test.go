package internet

import (
	"strings"
	"testing"
	"time"

	"cgn/internal/asdb"
)

// TestRegisteredScenariosValidate: every scenario the registry serves
// must pass its own validation.
func TestRegisteredScenariosValidate(t *testing.T) {
	for _, name := range Names() {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %q does not validate: %v", name, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("definitely-not-registered"); err == nil {
		t.Error("Lookup of unknown scenario succeeded")
	}
}

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	for _, want := range []string{
		"paper", "small", "large", "cellular-heavy", "nat444-dense", "sparse-cgn",
		"port-starved", "mobile-churn", "enterprise-block", "p2p-dense",
		"diurnal-week", "mobile-churn-week",
	} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %q before %q", names[i-1], names[i])
		}
	}
}

// TestValidateRejections drives Validate through each failure class.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		errPart string
	}{
		{"no regions", func(sc *Scenario) { sc.Regions = nil }, "no regions"},
		{"negative eyeball count", func(sc *Scenario) {
			sc.Regions[asdb.ARIN] = RegionMix{Eyeball: -1}
		}, "negative AS counts"},
		{"negative transit", func(sc *Scenario) { sc.Transit = -2 }, "negative transit"},
		{"negative vpn pairs", func(sc *Scenario) { sc.VPNPairs = -1 }, "VPNPairs"},
		{"probability above one", func(sc *Scenario) {
			sc.EyeballCGNProb[asdb.RIPE] = 1.5
		}, "outside [0,1]"},
		{"negative probability", func(sc *Scenario) {
			sc.CellularCGNProb[asdb.APNIC] = -0.1
		}, "outside [0,1]"},
		{"fraction above one", func(sc *Scenario) { sc.BareFrac = 1.2 }, "BareFrac"},
		{"negative fraction", func(sc *Scenario) { sc.ChunkASFrac = -0.5 }, "ChunkASFrac"},
		{"hairpin fractions exceed one", func(sc *Scenario) {
			sc.HairpinPreserveFrac = 0.7
			sc.HairpinTranslateFrac = 0.7
		}, "hairpin fractions"},
		{"inverted span", func(sc *Scenario) {
			sc.BTPeers = Span{Min: 10, Max: 2}
		}, "BTPeers"},
		{"negative span", func(sc *Scenario) {
			sc.NLSessions = Span{Min: -1, Max: 4}
		}, "NLSessions"},
		{"one-port span", func(sc *Scenario) { sc.CGNPortSpan = 1 }, "CGNPortSpan"},
		{"oversized port span", func(sc *Scenario) { sc.CGNPortSpan = 70000 }, "CGNPortSpan"},
		{"negative quota", func(sc *Scenario) { sc.CGNPortQuota = -1 }, "CGNPortQuota"},
		{"negative timeout", func(sc *Scenario) { sc.CGNUDPTimeout = -time.Second }, "CGNUDPTimeout"},
		{"zero-min pool", func(sc *Scenario) {
			sc.CGNPoolSize = Span{Min: 0, Max: 3}
		}, "CGNPoolSize"},
		{"negative traffic ticks", func(sc *Scenario) {
			sc.Traffic.Ticks = -1
		}, "Traffic profile"},
		{"traffic amp above one", func(sc *Scenario) {
			sc.Traffic.Ticks = 10
			sc.Traffic.DiurnalAmp = 2
		}, "DiurnalAmp"},
	}
	for _, c := range cases {
		sc := Small()
		c.mutate(&sc)
		err := sc.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.errPart)
		}
	}
}
