package internet

import (
	"fmt"
	"sort"
	"time"

	"cgn/internal/asdb"
	"cgn/internal/nat"
	"cgn/internal/traffic"
)

// builders maps scenario names to their constructors. Registered at init
// and read-only afterwards, so concurrent Lookup calls are safe.
var builders = map[string]func() Scenario{
	"paper":             Paper,
	"small":             Small,
	"large":             Large,
	"cellular-heavy":    CellularHeavy,
	"nat444-dense":      NAT444Dense,
	"sparse-cgn":        SparseCGN,
	"port-starved":      PortStarved,
	"mobile-churn":      MobileChurn,
	"enterprise-block":  EnterpriseBlock,
	"p2p-dense":         P2PDense,
	"diurnal-week":      DiurnalWeek,
	"mobile-churn-week": MobileChurnWeek,
	"flood-attack":      FloodAttack,
	"flood-defended":    FloodDefended,
	"pool-outage":       PoolOutage,
}

// Lookup resolves a scenario by registry name.
func Lookup(name string) (Scenario, error) {
	b, ok := builders[name]
	if !ok {
		return Scenario{}, fmt.Errorf("internet: unknown scenario %q (known: %v)", name, Names())
	}
	return b(), nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CellularHeavy returns a mobile-carrier-dominated world: few eyeball
// ASes, many cellular ones, near-universal cellular CGN and a larger
// share of carriers deploying routable space internally (the Figure 7(b)
// tail). It stresses the Netalyzr address-classification pipeline, which
// is the only method that covers cellular networks.
func CellularHeavy() Scenario {
	sc := Small()
	sc.Regions = map[asdb.RIR]RegionMix{
		asdb.AFRINIC: {Eyeball: 1, Cellular: 4},
		asdb.APNIC:   {Eyeball: 2, Cellular: 6},
		asdb.ARIN:    {Eyeball: 1, Cellular: 5},
		asdb.LACNIC:  {Eyeball: 1, Cellular: 4},
		asdb.RIPE:    {Eyeball: 2, Cellular: 6},
	}
	for r := range sc.CellularCGNProb {
		sc.CellularCGNProb[r] = 0.95
	}
	sc.NLCellSessions = Span{10, 18}
	sc.RoutableInternalFrac = 0.30
	sc.CellPublicMixFrac = 0.40
	return sc
}

// NAT444Dense returns an eyeball world where CGN deployment is the rule,
// not the exception: most subscribers sit behind a home NAT *and* a
// carrier NAT (the NAT444 topology), with stacked home NATs more common
// than in the paper world. It stresses the BitTorrent leak detector —
// hairpinned internal endpoints are its only signal — and the top-block
// filter that separates CPE LANs from CGN realms.
func NAT444Dense() Scenario {
	sc := Small()
	sc.Regions = map[asdb.RIR]RegionMix{
		asdb.AFRINIC: {Eyeball: 3, Cellular: 1},
		asdb.APNIC:   {Eyeball: 5, Cellular: 1},
		asdb.ARIN:    {Eyeball: 4, Cellular: 1},
		asdb.LACNIC:  {Eyeball: 3, Cellular: 1},
		asdb.RIPE:    {Eyeball: 5, Cellular: 1},
	}
	for r := range sc.EyeballCGNProb {
		sc.EyeballCGNProb[r] = 0.60
	}
	// NAT444 proper: subscribers keep their home NAT, so bare (bridged)
	// attachment is rare and double NATs are common.
	sc.BareFrac = 0.15
	sc.DoubleNATFrac = 0.15
	sc.MixedRealmFrac = 0.65
	sc.BTPeers = Span{24, 40}
	return sc
}

// SparseCGN returns a world where CGN is rare everywhere — the hardest
// regime for precision, since nearly every AS is a potential false
// positive and VPN-style leak noise is as loud as the real signal.
func SparseCGN() Scenario {
	sc := Small()
	for r := range sc.EyeballCGNProb {
		sc.EyeballCGNProb[r] = 0.05
	}
	for r := range sc.CellularCGNProb {
		sc.CellularCGNProb[r] = 0.30
	}
	sc.VPNPairs = 4
	return sc
}

// PortStarved returns a world of under-provisioned CGNs: most eyeball
// ASes deploy CGN, but every realm squeezes its subscribers through one
// or two external IPs, a few hundred allocatable ports per IP and a tight
// per-subscriber quota. This is the §6.2 saturation regime — port
// utilization rides the ceiling and allocation failures (both space and
// quota exhaustion) become a first-class outcome E17 can plot.
func PortStarved() Scenario {
	sc := Small()
	for r := range sc.EyeballCGNProb {
		sc.EyeballCGNProb[r] = 0.7
	}
	sc.ChunkASFrac = 0 // pure port-space pressure, no block allocators
	sc.BTPeers = Span{24, 40}
	sc.CGNPoolSize = Span{1, 2}
	sc.CGNPortSpan = 512
	sc.CGNPortQuota = 16
	return sc
}

// MobileChurn returns a cellular world tuned for mapping churn: the
// carrier mix of CellularHeavy with aggressively short CGN idle timeouts
// and small pools, so mappings expire and ports recycle constantly
// ("Tracking the Big NAT" measures exactly this regime on real carriers).
// It stresses the expiry path — heap-based Sweep — and the recycling
// consistency of the port allocator.
func MobileChurn() Scenario {
	sc := CellularHeavy()
	sc.NLCellSessions = Span{14, 24}
	sc.CGNUDPTimeout = 15 * time.Second
	sc.CGNPoolSize = Span{1, 1}
	sc.CGNPortSpan = 1024
	sc.CGNPortQuota = 8
	return sc
}

// EnterpriseBlock returns a world where block allocation is the rule:
// every CGN AS assigns fixed per-subscriber chunks (§6.2 / Fig 8c) out of
// a deliberately narrow port space on a single external IP. Capacity is
// then quantized — an IP holds only span/chunk subscribers — so late
// subscribers exhaust the chunk table outright, the provisioning
// trade-off the paper derives (64 users per IP at 1K chunks).
func EnterpriseBlock() Scenario {
	sc := Small()
	for r := range sc.EyeballCGNProb {
		sc.EyeballCGNProb[r] = 0.5
	}
	sc.ChunkASFrac = 1.0
	sc.BTPeers = Span{20, 32}
	sc.CGNPoolSize = Span{1, 1}
	sc.CGNPortSpan = 16384
	return sc
}

// P2PDense returns a forwarding-heavy world: most eyeball ASes deploy
// CGN, swarms are large and concentrated behind carrier NATs (many bare
// peers, frequent two-client homes) and source-preserving hairpinning is
// near-universal, so the campaign is dominated by peer-to-peer packet
// forwarding — long ascents through deep CGNs, hairpin turns, intra-realm
// chatter — rather than by analysis. It exists to stress the
// compiled-path forwarding engine; the sweep smoke and the cross-worker
// digest test include it so cached-path determinism is witnessed under
// parallelism.
func P2PDense() Scenario {
	sc := Small()
	sc.Regions = map[asdb.RIR]RegionMix{
		asdb.AFRINIC: {Eyeball: 2, Cellular: 1},
		asdb.APNIC:   {Eyeball: 4, Cellular: 1},
		asdb.ARIN:    {Eyeball: 3, Cellular: 1},
		asdb.LACNIC:  {Eyeball: 2, Cellular: 1},
		asdb.RIPE:    {Eyeball: 4, Cellular: 1},
	}
	for r := range sc.EyeballCGNProb {
		sc.EyeballCGNProb[r] = 0.8
	}
	sc.LowVantageFrac = 0.1
	sc.BTPeers = Span{40, 64}
	sc.BareFrac = 0.60
	sc.HomePeerPairFrac = 0.50
	sc.HairpinPreserveFrac = 0.85
	sc.HairpinTranslateFrac = 0.10
	sc.MixedRealmFrac = 0.50
	return sc
}

// DiurnalWeek returns an eyeball-CGN world driven through a simulated
// week of subscriber traffic: seven diurnal periods of flow churn with a
// pronounced day/night swing and a heavy-hitter tail. It is the E18
// reference scenario — per-subscriber concurrent port usage sampled over
// time reproduces Figure 8's shape (max ≫ 99th percentile ≫ median) —
// and, because the traffic engine's output is folded into every report
// digest, the cross-worker determinism witness for the engine itself.
func DiurnalWeek() Scenario {
	sc := Small()
	for r := range sc.EyeballCGNProb {
		sc.EyeballCGNProb[r] = 0.6
	}
	sc.BTPeers = Span{24, 40}
	sc.Traffic = traffic.Profile{
		Ticks:         7 * 288,
		DayTicks:      288,
		DiurnalAmp:    0.7,
		HeavyFrac:     0.06,
		LightFrac:     0.50,
		FlowsPerTick:  0.8,
		HeavyMult:     12,
		FlowHoldTicks: 4,
	}
	return sc
}

// MobileChurnWeek is the churn variant of mobile-churn: the same
// aggressively short carrier timeouts, tiny pools and tight quotas, now
// driven through a simulated week of diurnal traffic. With a 15 s idle
// timeout under a 30 s tick every unrefreshed mapping dies between
// ticks, so the expiry schedule and the port recycler run at full churn while
// heavy hitters slam into the per-subscriber quota — the regime
// "Tracking the Big NAT" measures on real carriers.
func MobileChurnWeek() Scenario {
	sc := MobileChurn()
	sc.Traffic = traffic.Profile{
		Ticks:         7 * 288,
		DayTicks:      288,
		DiurnalAmp:    0.5,
		HeavyFrac:     0.08,
		LightFrac:     0.40,
		FlowsPerTick:  0.8,
		HeavyMult:     10,
		FlowHoldTicks: 3,
	}
	return sc
}

// FloodAttack returns the undefended adversarial world: tight CGN port
// provisioning (the PortStarved regime) with a fifth of every realm's
// subscribers running a port-allocation flood and an external scanner
// tickling the inbound filter. No heavy-hitter class — rate separation
// between legitimate users and flooders is what the defended variant's
// limiter discriminates on — and no defenses, so the flood's collateral
// damage on legitimate subscribers (E19's undefended column) is maximal.
func FloodAttack() Scenario {
	sc := Small()
	for r := range sc.EyeballCGNProb {
		sc.EyeballCGNProb[r] = 0.6
	}
	sc.BTPeers = Span{24, 40}
	sc.CGNPoolSize = Span{1, 1}
	sc.CGNPortSpan = 256
	// Pinned above the 30 s tick: drawn carrier timeouts can undercut
	// the tick, which would turn every legitimate refresh into a fresh
	// allocation and charge it against the defended cells' token
	// buckets — the defense would then hurt the users it protects.
	sc.CGNUDPTimeout = 65 * time.Second
	sc.Traffic = traffic.Profile{
		Ticks:                288,
		DayTicks:             288,
		DiurnalAmp:           0.5,
		LightFrac:            0.45,
		AttackerFrac:         0.2,
		AttackerFlowsPerTick: 12,
		ScannerProbesPerTick: 2,
	}
	return sc
}

// FloodDefended is FloodAttack with both defenses armed: a
// per-subscriber token-bucket allocation limiter pitched above the
// legitimate rate ceiling but far under the flood, and oldest-idle
// eviction instead of refusal on port exhaustion. E19's defended columns
// show the legitimate failure rate recovering against FloodAttack's.
func FloodDefended() Scenario {
	sc := FloodAttack()
	sc.CGNAllocRatePerSec = 0.06
	sc.CGNAllocBurst = 8
	sc.CGNEviction = nat.EvictOldestIdle
	return sc
}

// PoolOutage returns the infrastructure-fault world: widely deployed
// eyeball CGN squeezed through small external pools and a narrow port
// span, driven through a diurnal day of traffic while the E22 fault
// schedule takes half of every pool dark mid-run and reboots the
// engines in a separate cell. With only a handful of lanes per realm
// and little port headroom, losing lanes translates directly into
// allocation failures — the degradation-and-recovery curve E22 plots —
// and restoring them shows the failure rate falling back to baseline.
func PoolOutage() Scenario {
	sc := Small()
	for r := range sc.EyeballCGNProb {
		sc.EyeballCGNProb[r] = 0.6
	}
	sc.BTPeers = Span{24, 40}
	sc.CGNPoolSize = Span{2, 4}
	sc.CGNPortSpan = 256
	// Pinned above the 30 s tick (see FloodAttack): a drawn timeout
	// under the tick would turn every refresh into a fresh allocation
	// and drown the fault signal in expiry churn.
	sc.CGNUDPTimeout = 65 * time.Second
	sc.Traffic = traffic.Profile{
		Ticks:      288,
		DayTicks:   288,
		DiurnalAmp: 0.5,
		HeavyFrac:  0.05,
		LightFrac:  0.45,
	}
	sc.Faults = FaultSpec{
		LaneFracs:   []float64{0.25, 0.5},
		OutageFracs: []float64{1.0 / 12, 1.0 / 4},
		Restart:     true,
	}
	return sc
}

// frac01 names one [0,1] fraction field for validation.
type frac01 struct {
	name string
	v    float64
}

// Validate checks that the scenario's parameters are internally
// consistent: population counts non-negative, probabilities and fractions
// inside [0,1], spans ordered. A Scenario built by hand (CLI flags,
// config files, sweep generators) should be validated before Build, which
// panics or silently misbehaves on nonsense inputs.
func (sc Scenario) Validate() error {
	if len(sc.Regions) == 0 {
		return fmt.Errorf("internet: scenario has no regions")
	}
	for region, mix := range sc.Regions {
		if mix.Eyeball < 0 || mix.Cellular < 0 {
			return fmt.Errorf("internet: region %s has negative AS counts (%d eyeball, %d cellular)",
				region, mix.Eyeball, mix.Cellular)
		}
	}
	if sc.Transit < 0 || sc.Content < 0 {
		return fmt.Errorf("internet: negative transit (%d) or content (%d) count", sc.Transit, sc.Content)
	}
	if sc.VPNPairs < 0 {
		return fmt.Errorf("internet: negative VPNPairs %d", sc.VPNPairs)
	}
	for name, probs := range map[string]map[asdb.RIR]float64{
		"EyeballCGNProb":  sc.EyeballCGNProb,
		"CellularCGNProb": sc.CellularCGNProb,
	} {
		for region, p := range probs {
			if p < 0 || p > 1 {
				return fmt.Errorf("internet: %s[%s] = %v outside [0,1]", name, region, p)
			}
		}
	}
	for _, f := range []frac01{
		{"LowVantageFrac", sc.LowVantageFrac},
		{"BareFrac", sc.BareFrac},
		{"HomePeerPairFrac", sc.HomePeerPairFrac},
		{"STUNFrac", sc.STUNFrac},
		{"TTLFrac", sc.TTLFrac},
		{"UPnPFrac", sc.UPnPFrac},
		{"DoubleNATFrac", sc.DoubleNATFrac},
		{"MixedRealmFrac", sc.MixedRealmFrac},
		{"HairpinPreserveFrac", sc.HairpinPreserveFrac},
		{"HairpinTranslateFrac", sc.HairpinTranslateFrac},
		{"RoutableInternalFrac", sc.RoutableInternalFrac},
		{"CellPublicMixFrac", sc.CellPublicMixFrac},
		{"ChunkASFrac", sc.ChunkASFrac},
		{"NonValidatingFrac", sc.NonValidatingFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("internet: %s = %v outside [0,1]", f.name, f.v)
		}
	}
	if s := sc.HairpinPreserveFrac + sc.HairpinTranslateFrac; s > 1 {
		return fmt.Errorf("internet: hairpin fractions sum to %v > 1", s)
	}
	for _, s := range []struct {
		name string
		span Span
	}{
		{"BTPeers", sc.BTPeers},
		{"BTPeersLow", sc.BTPeersLow},
		{"NLSessions", sc.NLSessions},
		{"NLCellSessions", sc.NLCellSessions},
		{"NLSessionsLow", sc.NLSessionsLow},
	} {
		if s.span.Min < 0 || s.span.Max < s.span.Min {
			return fmt.Errorf("internet: span %s = [%d,%d] is not ordered and non-negative",
				s.name, s.span.Min, s.span.Max)
		}
	}
	// The NAT engine needs at least two allocatable ports (PortLo < PortHi)
	// and its range tops out at [1024, 65535].
	if sc.CGNPortSpan != 0 && (sc.CGNPortSpan < 2 || sc.CGNPortSpan > 64512) {
		return fmt.Errorf("internet: CGNPortSpan = %d, want 0 or within [2, 64512]", sc.CGNPortSpan)
	}
	if sc.CGNPortQuota < 0 {
		return fmt.Errorf("internet: negative CGNPortQuota %d", sc.CGNPortQuota)
	}
	if sc.CGNUDPTimeout < 0 {
		return fmt.Errorf("internet: negative CGNUDPTimeout %v", sc.CGNUDPTimeout)
	}
	if sc.CGNAllocRatePerSec < 0 {
		return fmt.Errorf("internet: negative CGNAllocRatePerSec %v", sc.CGNAllocRatePerSec)
	}
	if sc.CGNAllocBurst < 0 {
		return fmt.Errorf("internet: negative CGNAllocBurst %d", sc.CGNAllocBurst)
	}
	if sc.CGNEviction != nat.EvictNone && sc.CGNEviction != nat.EvictOldestIdle {
		return fmt.Errorf("internet: unknown CGNEviction policy %d", sc.CGNEviction)
	}
	if ps := sc.CGNPoolSize; ps != (Span{}) && (ps.Min < 1 || ps.Max < ps.Min) {
		return fmt.Errorf("internet: CGNPoolSize = [%d,%d], want a positive ordered span",
			ps.Min, ps.Max)
	}
	if err := sc.Traffic.Validate(); err != nil {
		return fmt.Errorf("internet: Traffic profile: %w", err)
	}
	if err := sc.Observation.validate(); err != nil {
		return err
	}
	if err := sc.Faults.validate(); err != nil {
		return err
	}
	return nil
}

// validate checks the E22 fault spec.
func (f FaultSpec) validate() error {
	start := f.StartFrac
	if start == 0 {
		start = 0.25
	}
	if f.StartFrac < 0 || f.StartFrac >= 1 {
		return fmt.Errorf("internet: Faults.StartFrac = %v outside [0,1)", f.StartFrac)
	}
	last := 0.0
	for _, lf := range f.LaneFracs {
		if lf <= 0 || lf > 1 {
			return fmt.Errorf("internet: Faults.LaneFracs entry %v outside (0,1]", lf)
		}
		if lf <= last {
			return fmt.Errorf("internet: Faults.LaneFracs must ascend, got %v", f.LaneFracs)
		}
		last = lf
	}
	last = 0.0
	for _, of := range f.OutageFracs {
		if of <= 0 || start+of >= 1 {
			return fmt.Errorf("internet: Faults.OutageFracs entry %v: outage [%v, %v) leaves no post-restore run to observe recovery in", of, start, start+of)
		}
		if of <= last {
			return fmt.Errorf("internet: Faults.OutageFracs must ascend, got %v", f.OutageFracs)
		}
		last = of
	}
	if f.PortSpan != 0 && (f.PortSpan < 2 || f.PortSpan > 64512) {
		return fmt.Errorf("internet: Faults.PortSpan = %d, want 0 or within [2, 64512]", f.PortSpan)
	}
	return nil
}

// validate checks the E21 observation spec.
func (o ObservationSpec) validate() error {
	if o.Days < 0 {
		return fmt.Errorf("internet: Observation.Days = %d, want >= 0", o.Days)
	}
	if o.DayTicks < 0 || o.SubscribersPerRealm < 0 || o.LatentCarriers < 0 || o.ThresholdPer < 0 {
		return fmt.Errorf("internet: negative Observation field (DayTicks %d, SubscribersPerRealm %d, LatentCarriers %d, ThresholdPer %d)",
			o.DayTicks, o.SubscribersPerRealm, o.LatentCarriers, o.ThresholdPer)
	}
	last := 0
	for _, w := range o.Windows {
		if w <= last {
			return fmt.Errorf("internet: Observation.Windows must be positive and ascending, got %v", o.Windows)
		}
		last = w
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"VantageProb", o.VantageProb}, {"NoiseProb", o.NoiseProb}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("internet: Observation.%s = %v outside [0,1]", p.name, p.v)
		}
	}
	return nil
}
