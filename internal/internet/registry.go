package internet

import (
	"fmt"
	"sort"

	"cgn/internal/asdb"
)

// builders maps scenario names to their constructors. Registered at init
// and read-only afterwards, so concurrent Lookup calls are safe.
var builders = map[string]func() Scenario{
	"paper":          Paper,
	"small":          Small,
	"large":          Large,
	"cellular-heavy": CellularHeavy,
	"nat444-dense":   NAT444Dense,
	"sparse-cgn":     SparseCGN,
}

// Lookup resolves a scenario by registry name.
func Lookup(name string) (Scenario, error) {
	b, ok := builders[name]
	if !ok {
		return Scenario{}, fmt.Errorf("internet: unknown scenario %q (known: %v)", name, Names())
	}
	return b(), nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// CellularHeavy returns a mobile-carrier-dominated world: few eyeball
// ASes, many cellular ones, near-universal cellular CGN and a larger
// share of carriers deploying routable space internally (the Figure 7(b)
// tail). It stresses the Netalyzr address-classification pipeline, which
// is the only method that covers cellular networks.
func CellularHeavy() Scenario {
	sc := Small()
	sc.Regions = map[asdb.RIR]RegionMix{
		asdb.AFRINIC: {Eyeball: 1, Cellular: 4},
		asdb.APNIC:   {Eyeball: 2, Cellular: 6},
		asdb.ARIN:    {Eyeball: 1, Cellular: 5},
		asdb.LACNIC:  {Eyeball: 1, Cellular: 4},
		asdb.RIPE:    {Eyeball: 2, Cellular: 6},
	}
	for r := range sc.CellularCGNProb {
		sc.CellularCGNProb[r] = 0.95
	}
	sc.NLCellSessions = Span{10, 18}
	sc.RoutableInternalFrac = 0.30
	sc.CellPublicMixFrac = 0.40
	return sc
}

// NAT444Dense returns an eyeball world where CGN deployment is the rule,
// not the exception: most subscribers sit behind a home NAT *and* a
// carrier NAT (the NAT444 topology), with stacked home NATs more common
// than in the paper world. It stresses the BitTorrent leak detector —
// hairpinned internal endpoints are its only signal — and the top-block
// filter that separates CPE LANs from CGN realms.
func NAT444Dense() Scenario {
	sc := Small()
	sc.Regions = map[asdb.RIR]RegionMix{
		asdb.AFRINIC: {Eyeball: 3, Cellular: 1},
		asdb.APNIC:   {Eyeball: 5, Cellular: 1},
		asdb.ARIN:    {Eyeball: 4, Cellular: 1},
		asdb.LACNIC:  {Eyeball: 3, Cellular: 1},
		asdb.RIPE:    {Eyeball: 5, Cellular: 1},
	}
	for r := range sc.EyeballCGNProb {
		sc.EyeballCGNProb[r] = 0.60
	}
	// NAT444 proper: subscribers keep their home NAT, so bare (bridged)
	// attachment is rare and double NATs are common.
	sc.BareFrac = 0.15
	sc.DoubleNATFrac = 0.15
	sc.MixedRealmFrac = 0.65
	sc.BTPeers = Span{24, 40}
	return sc
}

// SparseCGN returns a world where CGN is rare everywhere — the hardest
// regime for precision, since nearly every AS is a potential false
// positive and VPN-style leak noise is as loud as the real signal.
func SparseCGN() Scenario {
	sc := Small()
	for r := range sc.EyeballCGNProb {
		sc.EyeballCGNProb[r] = 0.05
	}
	for r := range sc.CellularCGNProb {
		sc.CellularCGNProb[r] = 0.30
	}
	sc.VPNPairs = 4
	return sc
}

// frac01 names one [0,1] fraction field for validation.
type frac01 struct {
	name string
	v    float64
}

// Validate checks that the scenario's parameters are internally
// consistent: population counts non-negative, probabilities and fractions
// inside [0,1], spans ordered. A Scenario built by hand (CLI flags,
// config files, sweep generators) should be validated before Build, which
// panics or silently misbehaves on nonsense inputs.
func (sc Scenario) Validate() error {
	if len(sc.Regions) == 0 {
		return fmt.Errorf("internet: scenario has no regions")
	}
	for region, mix := range sc.Regions {
		if mix.Eyeball < 0 || mix.Cellular < 0 {
			return fmt.Errorf("internet: region %s has negative AS counts (%d eyeball, %d cellular)",
				region, mix.Eyeball, mix.Cellular)
		}
	}
	if sc.Transit < 0 || sc.Content < 0 {
		return fmt.Errorf("internet: negative transit (%d) or content (%d) count", sc.Transit, sc.Content)
	}
	if sc.VPNPairs < 0 {
		return fmt.Errorf("internet: negative VPNPairs %d", sc.VPNPairs)
	}
	for name, probs := range map[string]map[asdb.RIR]float64{
		"EyeballCGNProb":  sc.EyeballCGNProb,
		"CellularCGNProb": sc.CellularCGNProb,
	} {
		for region, p := range probs {
			if p < 0 || p > 1 {
				return fmt.Errorf("internet: %s[%s] = %v outside [0,1]", name, region, p)
			}
		}
	}
	for _, f := range []frac01{
		{"LowVantageFrac", sc.LowVantageFrac},
		{"BareFrac", sc.BareFrac},
		{"HomePeerPairFrac", sc.HomePeerPairFrac},
		{"STUNFrac", sc.STUNFrac},
		{"TTLFrac", sc.TTLFrac},
		{"UPnPFrac", sc.UPnPFrac},
		{"DoubleNATFrac", sc.DoubleNATFrac},
		{"MixedRealmFrac", sc.MixedRealmFrac},
		{"HairpinPreserveFrac", sc.HairpinPreserveFrac},
		{"HairpinTranslateFrac", sc.HairpinTranslateFrac},
		{"RoutableInternalFrac", sc.RoutableInternalFrac},
		{"CellPublicMixFrac", sc.CellPublicMixFrac},
		{"ChunkASFrac", sc.ChunkASFrac},
		{"NonValidatingFrac", sc.NonValidatingFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("internet: %s = %v outside [0,1]", f.name, f.v)
		}
	}
	if s := sc.HairpinPreserveFrac + sc.HairpinTranslateFrac; s > 1 {
		return fmt.Errorf("internet: hairpin fractions sum to %v > 1", s)
	}
	for _, s := range []struct {
		name string
		span Span
	}{
		{"BTPeers", sc.BTPeers},
		{"BTPeersLow", sc.BTPeersLow},
		{"NLSessions", sc.NLSessions},
		{"NLCellSessions", sc.NLCellSessions},
		{"NLSessionsLow", sc.NLSessionsLow},
	} {
		if s.span.Min < 0 || s.span.Max < s.span.Min {
			return fmt.Errorf("internet: span %s = [%d,%d] is not ordered and non-negative",
				s.name, s.span.Min, s.span.Max)
		}
	}
	return nil
}
