package internet

import (
	"testing"

	"cgn/internal/detect"
	"cgn/internal/netaddr"
	"cgn/internal/props"
)

func TestBuildSmallWorld(t *testing.T) {
	w := Build(Small())
	if w.DB.Len() == 0 {
		t.Fatal("no ASes generated")
	}
	// Every eyeball/cellular AS has a truth record.
	eyeballs := 0
	for _, as := range w.DB.All() {
		if t, ok := w.Truth[as.ASN]; ok {
			if t.CGN && len(t.MappingTypes) == 0 {
				panic("CGN truth without configs")
			}
			eyeballs++
		}
	}
	if eyeballs == 0 {
		t.Fatal("no truth records")
	}
	if len(w.Swarm.Peers) == 0 {
		t.Fatal("no BitTorrent peers")
	}
	if w.NumClients() == 0 {
		t.Fatal("no Netalyzr vantage points")
	}
}

func TestBuildDeterministic(t *testing.T) {
	w1 := Build(Small())
	w2 := Build(Small())
	if len(w1.Swarm.Peers) != len(w2.Swarm.Peers) || w1.NumClients() != w2.NumClients() {
		t.Error("same seed must build the same world")
	}
	t1, t2 := w1.CGNTruth(), w2.CGNTruth()
	if len(t1) != len(t2) {
		t.Error("truth differs across identical builds")
	}
	for asn := range t1 {
		if !t2[asn] {
			t.Errorf("AS%d CGN truth differs", asn)
		}
	}
}

func TestWorldPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	w := Build(Small())
	truth := w.CGNTruth()
	if len(truth) == 0 {
		t.Fatal("world has no CGN deployments; scenario too small")
	}

	// BitTorrent campaign.
	ds := w.RunCrawl(DefaultCrawlOptions())
	if len(ds.Queried) == 0 || len(ds.Learned) == 0 {
		t.Fatalf("crawl empty: %d queried, %d learned", len(ds.Queried), len(ds.Learned))
	}
	bt := detect.AnalyzeBitTorrent(ds, w.BTDetectConfig())

	// Netalyzr campaign.
	sessions := w.RunNetalyzr()
	if len(sessions) == 0 {
		t.Fatal("no sessions")
	}
	cell := detect.AnalyzeCellular(sessions, w.Net.Global(), detect.NLConfig{})
	noncell := detect.AnalyzeNonCellular(sessions, w.Net.Global(), detect.NLConfig{})

	// Sanity: the union should find CGNs with decent precision against
	// ground truth.
	union := detect.Union("union", detect.BTView(bt), detect.CellularView(cell), detect.NonCellularView(noncell))
	score := union.ScoreAgainstTruth(truth)
	if score.TruePositive == 0 {
		t.Error("no true positives: detection pipeline found nothing")
	}
	if p := score.Precision(); p < 0.8 {
		t.Errorf("precision = %.2f, want >= 0.8 (fp=%d)", p, score.FalsePositive)
	}

	// Cellular detection should be strong: most cellular CGN ASes show
	// translated devices directly.
	cellScore := detect.CellularView(cell).ScoreAgainstTruth(truth)
	if cellScore.TruePositive == 0 {
		t.Error("cellular pipeline found nothing")
	}

	// Property analyses run without panicking and produce plausible
	// populations.
	cgnView := union.Positive
	ports := props.AnalyzePorts(sessions, cgnView, props.PortConfig{})
	if len(ports.PerAS) == 0 {
		t.Error("no port aggregates for CGN ASes")
	}
	timeouts := props.AnalyzeTimeouts(sessions, cgnView)
	if len(timeouts.CPEPerSession) == 0 {
		t.Error("no CPE timeout samples")
	}
	dist := props.AnalyzeDistance(sessions, cgnView)
	if len(dist.PerClass) == 0 {
		t.Error("no distance distributions")
	}
	quad := props.AnalyzeTTLDetection(sessions)
	if quad.Total() == 0 {
		t.Error("no TTL quadrant samples")
	}
	space := props.AnalyzeInternalSpace(sessions, bt, cgnView, w.Net.Global(), noncell.TopCPEBlocks)
	if space.CellularUse.Total() == 0 {
		t.Error("no cellular internal-space classifications")
	}
}

// The generator's intended CGN distances must match what the simulator
// actually builds: trace a bare subscriber's path and find the CGN at
// exactly one of the truth-recorded hop positions.
func TestTruthDistancesMatchTopology(t *testing.T) {
	w := Build(Small())
	echo := w.Servers.EchoHost
	checked := 0
	for _, p := range w.Swarm.Peers {
		if p.LanID != "" {
			continue
		}
		truth := w.Truth[p.ASN]
		if truth == nil || !truth.CGN {
			continue
		}
		steps, res := w.Net.TracePath(p.Host, netaddr.UDP, 6999,
			netaddr.EndpointOf(echo.Addr(), 7077))
		if !res.Delivered() {
			t.Fatalf("trace from AS%d failed: %+v", p.ASN, res)
		}
		natHop := 0
		for i, s := range steps {
			if len(s) > 4 && s[:4] == "nat:" {
				natHop = i + 1
				break
			}
		}
		if natHop == 0 {
			t.Fatalf("AS%d bare subscriber path has no NAT: %v", p.ASN, steps)
		}
		ok := false
		for _, d := range truth.CGNDistance {
			if d == natHop {
				ok = true
			}
		}
		if !ok {
			t.Errorf("AS%d: CGN at hop %d, truth says %v (path %v)",
				p.ASN, natHop, truth.CGNDistance, steps)
		}
		checked++
		if checked >= 10 {
			break
		}
	}
	if checked == 0 {
		t.Skip("no bare CGN subscribers in this draw")
	}
}

func TestVPNNoiseInjected(t *testing.T) {
	sc := Small()
	sc.VPNPairs = 2
	w := Build(sc)
	// The injected contacts live in peers' tables as reserved-range
	// endpoints in 10.88.0.0/16.
	found := 0
	for _, p := range w.Swarm.Peers {
		for _, c := range p.Node.Contacts() {
			if netaddr.PrefixFrom(netaddr.MustParseAddr("10.88.0.0"), 16).Contains(c.EP.Addr) {
				found++
			}
		}
	}
	if found < 2 {
		t.Errorf("VPN contacts found = %d, want >= 2", found)
	}
}

func TestAllocatorDistinct(t *testing.T) {
	a := newAllocator(netaddr.MustParsePrefix("10.0.0.0/16"))
	seen := map[netaddr.Addr]bool{}
	blocks := map[netaddr.Prefix]bool{}
	for i := 0; i < 500; i++ {
		addr := a.next()
		if seen[addr] {
			t.Fatalf("duplicate address %v", addr)
		}
		seen[addr] = true
		blocks[addr.Block24()] = true
	}
	// The prime stride should spread allocations over many /24s (500
	// draws from a /16 must not pile into a handful of blocks).
	if len(blocks) < 64 {
		t.Errorf("addresses concentrated in %d /24s, want spread", len(blocks))
	}
}

func TestSpanDraw(t *testing.T) {
	w := Build(Small())
	s := Span{3, 3}
	if got := s.draw(w.rng); got != 3 {
		t.Errorf("degenerate span draw = %d", got)
	}
	s = Span{1, 5}
	for i := 0; i < 50; i++ {
		if v := s.draw(w.rng); v < 1 || v > 5 {
			t.Fatalf("draw %d out of range", v)
		}
	}
}
