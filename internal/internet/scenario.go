// Package internet generates synthetic Internets: an AS-level population
// with RIR regions and eyeball/cellular classes, per-AS ground-truth CGN
// deployments drawn from the marginals the paper reports, packet-level
// topology (home LANs, ISP-internal realms, NAT devices on path), a
// BitTorrent swarm and Netalyzr vantage points. The detection pipelines
// then run against this world exactly as they ran against the real
// Internet — and, unlike the paper, can be scored against ground truth.
package internet

import (
	"time"

	"cgn/internal/asdb"
	"cgn/internal/nat"
	"cgn/internal/traffic"
)

// RegionMix sets one region's AS counts.
type RegionMix struct {
	Eyeball  int
	Cellular int
}

// Span is an inclusive [Min,Max] integer draw.
type Span struct {
	Min, Max int
}

func (s Span) draw(r intner) int {
	if s.Max <= s.Min {
		return s.Min
	}
	return s.Min + r.Intn(s.Max-s.Min+1)
}

type intner interface{ Intn(int) int }

// Scenario parameterizes world generation.
type Scenario struct {
	Seed int64

	// Regions sets eyeball/cellular AS counts per RIR; Transit and
	// Content pad the routed-AS population.
	Regions map[asdb.RIR]RegionMix
	Transit int
	Content int

	// EyeballCGNProb / CellularCGNProb are ground-truth deployment
	// probabilities per region (§5 / Figure 6 shapes).
	EyeballCGNProb  map[asdb.RIR]float64
	CellularCGNProb map[asdb.RIR]float64

	// LowVantageFrac of eyeball ASes get almost no vantage points,
	// reproducing the paper's ~60% eyeball coverage.
	LowVantageFrac float64

	// BTPeers is the BitTorrent peer count per well-covered eyeball AS;
	// BTPeersLow applies to low-vantage ASes.
	BTPeers    Span
	BTPeersLow Span
	// BareFrac is the share of CGN-ISP BitTorrent peers attached without
	// a home NAT (modem/bridge mode) — the population whose internal
	// endpoints spread via hairpinning.
	BareFrac float64
	// HomePeerPairFrac is the share of homes hosting two BitTorrent
	// clients (the LAN-multicast leak source).
	HomePeerPairFrac float64

	// NLSessions / NLCellSessions are Netalyzr session counts per
	// non-cellular / cellular AS; NLSessionsLow for low-vantage ASes.
	NLSessions     Span
	NLCellSessions Span
	NLSessionsLow  Span
	// STUNFrac / TTLFrac select which sessions run the heavier subtests.
	STUNFrac, TTLFrac float64
	// UPnPFrac is the share of CPEs answering UPnP (the paper resolved
	// IPcpe for ~40% of sessions).
	UPnPFrac float64
	// DoubleNATFrac is the share of homes with a second, stacked home
	// NAT (exercises the top-block filter).
	DoubleNATFrac float64

	// MixedRealmFrac is the share of CGN ASes with two independently
	// configured CGN realms (distributed deployments -> mixed per-AS
	// port strategies, Fig 9's right side).
	MixedRealmFrac float64
	// HairpinPreserveFrac / HairpinTranslateFrac set CGN hairpin modes
	// (the rest hairpin off). Source-preserving hairpinning gates the
	// BitTorrent leak signal.
	HairpinPreserveFrac  float64
	HairpinTranslateFrac float64

	// RoutableInternalFrac of cellular CGNs use routable space
	// internally (Fig 7b).
	RoutableInternalFrac float64
	// CellPublicMixFrac of cellular CGN ASes assign a share of devices
	// public addresses ("mixed" assignment, §4.2).
	CellPublicMixFrac float64

	// ChunkASFrac of CGN ASes use chunk-based random port allocation.
	ChunkASFrac float64

	// VPNPairs injects cross-AS leaked internal contacts (VPN noise the
	// exclusive-leak filter must remove).
	VPNPairs int

	// NonValidatingFrac is the share of BitTorrent peers violating the
	// BEP-5 validation discipline (the paper measured ~1.3%); the A02
	// ablation sweeps it to show why the discipline matters.
	NonValidatingFrac float64

	// Port-provisioning knobs (§6.2 and the E17 port-pressure analysis).
	// All default to zero, which preserves the historical per-realm draws.

	// CGNPortSpan, when positive, narrows every CGN realm's allocatable
	// external port range to [1024, 1024+CGNPortSpan-1], modeling
	// under-provisioned deployments that saturate under load.
	CGNPortSpan int
	// CGNPortQuota, when positive, caps the external ports each
	// subscriber may hold on a CGN realm (per-subscriber block
	// provisioning; exceeding it yields nat.DropPortQuota).
	CGNPortQuota int
	// CGNPoolSize, when non-zero, overrides the external-IP pool size
	// draw per CGN realm. Small pools push the customers-per-external-IP
	// ratio up — the multiplexing axis of Figure 8.
	CGNPoolSize Span
	// CGNUDPTimeout, when positive, pins every CGN realm's UDP mapping
	// timeout instead of drawing it, modeling aggressive idle-timeout
	// configurations ("Tracking the Big NAT" reports timeouts down to
	// tens of seconds on mobile carriers) that maximize mapping churn.
	CGNUDPTimeout time.Duration

	// Defense knobs (the E19 attack x defense matrix). All default to
	// zero — no rate limiter, refuse on allocation failure — which is
	// the undefended deployment every prior scenario modeled.

	// CGNAllocRatePerSec, when positive, arms every CGN realm's
	// per-subscriber token-bucket allocation rate limiter
	// (nat.Config.AllocRatePerSec); CGNAllocBurst sets the bucket depth
	// (0 takes the engine default).
	CGNAllocRatePerSec float64
	CGNAllocBurst      int
	// CGNEviction selects what a CGN realm does when port allocation
	// fails: refuse the flow (nat.EvictNone, the default) or evict the
	// oldest idle mapping and retry (nat.EvictOldestIdle).
	CGNEviction nat.EvictionPolicy

	// Traffic parameterizes the time-driven subscriber load engine
	// behind the E18 temporal analysis (§6.2 Figure 8): diurnal flow
	// arrivals, heavy-hitter mix, tick count. The zero profile disables
	// the engine; see traffic.Profile for the knobs and their defaults.
	Traffic traffic.Profile

	// Observation parameterizes the E21 longitudinal detection
	// experiment: the fleet engine replays the world's carrier NATs —
	// plus latent carriers that may deploy CGN mid-run — over months of
	// virtual time, and a windowed observer scores detection
	// precision/recall as a function of how long it watched. The zero
	// spec (Days == 0) disables the experiment.
	Observation ObservationSpec

	// Faults parameterizes the E22 fault-injection experiment: the
	// traffic engine replays the carrier NATs under scheduled pool
	// outages and engine restarts and measures the degradation-and-
	// recovery curve. The zero spec disables the experiment.
	Faults FaultSpec
}

// FaultSpec parameterizes the E22 fault-injection experiment. Each
// (LaneFrac, OutageFrac) pair of the severity grid becomes one replay
// cell: a scheduled outage takes that fraction of every realm's
// external pool dark for that fraction of the run, subscribers fail
// over to the surviving pool IPs, and the lanes restore. The replay is
// a fresh replica of every carrier NAT with its own seed stream — like
// E18 and E19 — so enabling it perturbs no other experiment. It always
// runs on the intra-realm sharded NAT engine (the pool lane is the
// fault's unit), whatever engine the E18 knob selects.
type FaultSpec struct {
	// LaneFracs are the pool fractions each severity column takes dark,
	// ascending; empty disables E22 (so does an empty OutageFracs).
	LaneFracs []float64
	// OutageFracs are the outage durations as fractions of the run,
	// ascending. StartFrac + OutageFrac must leave room for recovery to
	// be observed, so each must stay under 1 - StartFrac.
	OutageFracs []float64
	// StartFrac is the outage onset as a fraction of the run; 0 takes
	// the default 0.25.
	StartFrac float64
	// Restart adds one cell that reboots every realm's whole NAT engine
	// at the onset tick — all mapping state lost, flows re-establish
	// through the refresh fallback — with no lane outage.
	Restart bool
	// PortSpan, when positive, narrows every replayed realm's external
	// port range to [1024, 1024+PortSpan-1] for the fault replay only,
	// so the surviving pool runs near capacity and degradation is
	// measurable instead of absorbed by provisioning headroom. 0 keeps
	// each realm's own span.
	PortSpan int
}

// Enabled reports whether the scenario runs the fault-injection
// experiment.
func (f FaultSpec) Enabled() bool { return len(f.LaneFracs) > 0 && len(f.OutageFracs) > 0 }

// ObservationSpec parameterizes the E21 longitudinal observation
// experiment (internal/fleet). Deployment is a process, not a snapshot:
// carriers enable CGN mid-run, re-provision pools and churn
// subscribers, and the paper's longitudinal measurements ("Tracking the
// Big NAT") show detection confidence growing with observation
// duration. The spec sets the virtual horizon and the observer's
// sampling model; zero-valued fields other than Days take the fleet
// engine's defaults.
type ObservationSpec struct {
	// Days is the virtual horizon; 0 disables E21 entirely.
	Days int
	// DayTicks is the fleet tick resolution per virtual day (default
	// 48 — coarser than E18's 288, since the longitudinal experiment
	// trades intra-day detail for months of span).
	DayTicks int
	// SubscribersPerRealm caps the replayed population per carrier
	// (default 16), keeping months of virtual time affordable inside a
	// campaign.
	SubscribersPerRealm int
	// LatentCarriers is the number of carriers without day-zero CGN
	// observed alongside the world's real deployments — the timeline
	// enables CGN on most of them mid-run (late onset), the rest stay
	// ground-truth negatives. 0 draws a default from the world size.
	LatentCarriers int
	// Windows are the observation durations (days, ascending) to score;
	// empty takes the fleet default ladder.
	Windows []int
	// VantageProb / NoiseProb are the per-day probabilities of a true
	// evidence sample from a CGN-active carrier and of a spurious
	// positive; ThresholdPer scales the detector's evidence threshold
	// (declare CGN at >= max(1, W/ThresholdPer) positive days in the
	// last W). Zero means the fleet default.
	VantageProb  float64
	NoiseProb    float64
	ThresholdPer int
}

// Enabled reports whether the scenario runs the longitudinal
// observation experiment.
func (o ObservationSpec) Enabled() bool { return o.Days > 0 }

// ApplyPortOverrides narrows the scenario's CGN port provisioning: a
// nonzero span or quota replaces the scenario's own setting. Both the
// cgnsim flags and the campaign sweep config funnel through here so the
// two modes cannot drift.
func (s *Scenario) ApplyPortOverrides(span, quota int) {
	if span != 0 {
		s.CGNPortSpan = span
	}
	if quota != 0 {
		s.CGNPortQuota = quota
	}
}

// Paper returns the default scenario: a scaled-down Internet whose
// marginals track the paper's findings. Roughly 400 ASes, 10k BitTorrent
// peers and 6k Netalyzr sessions — small enough to run in seconds, large
// enough for every table and figure to have signal.
func Paper() Scenario {
	return Scenario{
		Seed: 1,
		Regions: map[asdb.RIR]RegionMix{
			asdb.AFRINIC: {Eyeball: 40, Cellular: 12},
			asdb.APNIC:   {Eyeball: 52, Cellular: 14},
			asdb.ARIN:    {Eyeball: 48, Cellular: 12},
			asdb.LACNIC:  {Eyeball: 44, Cellular: 12},
			asdb.RIPE:    {Eyeball: 56, Cellular: 14},
		},
		Transit: 80,
		Content: 24,
		EyeballCGNProb: map[asdb.RIR]float64{
			asdb.AFRINIC: 0.09,
			asdb.APNIC:   0.28,
			asdb.ARIN:    0.12,
			asdb.LACNIC:  0.13,
			asdb.RIPE:    0.27,
		},
		CellularCGNProb: map[asdb.RIR]float64{
			asdb.AFRINIC: 0.67,
			asdb.APNIC:   0.95,
			asdb.ARIN:    0.92,
			asdb.LACNIC:  0.92,
			asdb.RIPE:    0.95,
		},
		LowVantageFrac:       0.35,
		BTPeers:              Span{32, 72},
		BTPeersLow:           Span{0, 6},
		BareFrac:             0.45,
		HomePeerPairFrac:     0.30,
		NLSessions:           Span{14, 36},
		NLCellSessions:       Span{6, 16},
		NLSessionsLow:        Span{0, 6},
		STUNFrac:             0.6,
		TTLFrac:              0.5,
		UPnPFrac:             0.75,
		DoubleNATFrac:        0.06,
		MixedRealmFrac:       0.55,
		HairpinPreserveFrac:  0.70,
		HairpinTranslateFrac: 0.20,
		RoutableInternalFrac: 0.10,
		CellPublicMixFrac:    0.35,
		ChunkASFrac:          0.10,
		VPNPairs:             3,
		NonValidatingFrac:    0.013,
		// One diurnal period of subscriber traffic so the temporal E18
		// analysis has signal on every default campaign; the week-long
		// runs live in the diurnal-week / mobile-churn-week scenarios.
		Traffic: traffic.Profile{
			Ticks:      288,
			DayTicks:   288,
			DiurnalAmp: 0.5,
			HeavyFrac:  0.05,
			LightFrac:  0.45,
		},
		// Eight weeks of longitudinal observation so the E21
		// duration-vs-recall curve has its full window ladder.
		Observation: ObservationSpec{Days: 56},
		// A pool-outage severity grid plus an engine-restart cell so the
		// E22 degradation-and-recovery curves have signal on every
		// default campaign. The replay narrows the port span (replica
		// NATs only — E17/E18 see the scenario's own provisioning) so
		// losing lanes actually pressures the survivors.
		Faults: FaultSpec{
			LaneFracs:   []float64{0.25, 0.5},
			OutageFracs: []float64{1.0 / 12, 1.0 / 4},
			Restart:     true,
			PortSpan:    384,
		},
	}
}

// Large returns a stress-scale scenario: roughly three times the Paper
// world. Campaigns take tens of seconds; useful for benchmarking the
// pipelines at depth and for tighter statistics on rare configurations
// (routable-internal carriers, chunked allocators).
func Large() Scenario {
	sc := Paper()
	sc.Regions = map[asdb.RIR]RegionMix{
		asdb.AFRINIC: {Eyeball: 120, Cellular: 36},
		asdb.APNIC:   {Eyeball: 156, Cellular: 42},
		asdb.ARIN:    {Eyeball: 144, Cellular: 36},
		asdb.LACNIC:  {Eyeball: 132, Cellular: 36},
		asdb.RIPE:    {Eyeball: 168, Cellular: 42},
	}
	sc.Transit = 240
	sc.Content = 72
	sc.VPNPairs = 9
	return sc
}

// Small returns a fast scenario for tests: a handful of ASes per class.
func Small() Scenario {
	sc := Paper()
	sc.Regions = map[asdb.RIR]RegionMix{
		asdb.AFRINIC: {Eyeball: 2, Cellular: 1},
		asdb.APNIC:   {Eyeball: 4, Cellular: 2},
		asdb.ARIN:    {Eyeball: 3, Cellular: 1},
		asdb.LACNIC:  {Eyeball: 2, Cellular: 1},
		asdb.RIPE:    {Eyeball: 4, Cellular: 2},
	}
	sc.Transit = 4
	sc.Content = 2
	sc.LowVantageFrac = 0.2
	sc.BTPeers = Span{16, 24}
	sc.NLSessions = Span{10, 16}
	sc.NLCellSessions = Span{5, 8}
	sc.VPNPairs = 1
	// The fault grid is Paper's headline; test worlds (and everything
	// derived from Small) stay fault-free so E22 only runs where a
	// scenario schedules it explicitly.
	sc.Faults = FaultSpec{}
	return sc
}

// Truth is the ground-truth record for one AS.
type Truth struct {
	ASN      uint32
	Cellular bool
	CGN      bool
	// Realms counts independent CGN realms (distributed deployments).
	Realms int
	// Ranges lists the internal ranges in use; RoutableInternal marks
	// cellular ASes using public space internally.
	Ranges           []string
	RoutableInternal bool
	// PortAllocs, MappingTypes, Poolings, Timeouts: one entry per realm.
	PortAllocs   []nat.PortAlloc
	MappingTypes []nat.MappingType
	Poolings     []nat.Pooling
	Timeouts     []time.Duration
	// ChunkSize is set when PortAllocs includes RandomChunk.
	ChunkSize int
	// HairpinModes per realm.
	HairpinModes []nat.HairpinMode
	// CGNDistance is the intended NAT distance from a bare subscriber.
	CGNDistance []int
}
