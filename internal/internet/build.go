package internet

import (
	"fmt"
	"math/rand"
	"time"

	"cgn/internal/asdb"
	"cgn/internal/btsim"
	"cgn/internal/krpc"
	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/netalyzr"
	"cgn/internal/simnet"
)

// World is a generated Internet ready for measurement campaigns.
type World struct {
	Scenario Scenario
	Net      *simnet.Network
	DB       *asdb.DB
	Swarm    *btsim.Swarm
	Servers  *netalyzr.Servers
	// Truth maps ASN to ground truth.
	Truth map[uint32]*Truth
	// CGNs lists every carrier NAT device in deterministic build order;
	// the E17 port-pressure analysis reads their PortStats after the
	// campaign.
	CGNs []CGNDevice
	// CrawlerHost is a public host reserved for the DHT crawler.
	CrawlerHost *simnet.Host

	clients []clientSpec
	rng     *rand.Rand
	nextASN uint32
	next16  uint32
}

// CGNDevice labels one deployed carrier NAT with its AS context.
type CGNDevice struct {
	ASN      uint32
	Cellular bool
	// Realm is the realm index within the AS (distributed deployments
	// run several).
	Realm int
	Dev   *simnet.NATDev
}

// clientSpec is one provisioned Netalyzr vantage point.
type clientSpec struct {
	host     *simnet.Host
	asn      uint32
	cellular bool
	gateway  netaddr.Addr
}

// CGNTruth returns the set of truly CGN-deploying ASNs.
func (w *World) CGNTruth() map[uint32]bool {
	out := make(map[uint32]bool)
	for asn, t := range w.Truth {
		if t.CGN {
			out[asn] = true
		}
	}
	return out
}

// NumClients returns the provisioned Netalyzr vantage point count.
func (w *World) NumClients() int { return len(w.clients) }

// cpeModel describes one home-router product's behavior.
type cpeModel struct {
	name    string
	alloc   nat.PortAlloc
	mapping nat.MappingType
	timeout time.Duration
	weight  float64
}

// Timeouts above the TTL test's 200 s ceiling (FritzBox, LinkSys,
// GamerHub: ~35% of deployments) reproduce the paper's Table 7 blind
// spot: translation evident from the address mismatch, but no expiry
// observable within the test budget.
var cpeModels = []cpeModel{
	{"AcmeBox 9000", nat.Preservation, nat.PortRestricted, 65 * time.Second, 0.28},
	{"FritzBox 7490", nat.Preservation, nat.PortRestricted, 300 * time.Second, 0.20},
	{"Speedport W724V", nat.Preservation, nat.FullCone, 120 * time.Second, 0.14},
	{"OpenWRT One", nat.Preservation, nat.AddressRestricted, 65 * time.Second, 0.12},
	{"LinkSys E1200", nat.Preservation, nat.FullCone, 300 * time.Second, 0.10},
	{"GamerHub Pro", nat.Preservation, nat.FullCone, 600 * time.Second, 0.05},
	{"CheapRouter X", nat.Sequential, nat.PortRestricted, 30 * time.Second, 0.05},
	{"BudgetLink 10", nat.Random, nat.PortRestricted, 65 * time.Second, 0.03},
	{"EnterpriseGW 5", nat.Random, nat.Symmetric, 65 * time.Second, 0.03},
}

// lanPool is the distribution of CPE default LAN subnets; the top blocks
// become the §4.2 top-10 filter's catch.
var lanPool = []struct {
	prefix string
	weight float64
}{
	{"192.168.0.0/24", 0.30},
	{"192.168.1.0/24", 0.28},
	{"192.168.178.0/24", 0.12},
	{"192.168.2.0/24", 0.08},
	{"10.0.0.0/24", 0.12},
	{"192.168.100.0/24", 0.05},
	{"172.16.0.0/24", 0.05},
}

// routableInternalBlocks are the Figure 7(b) candidates: public space some
// cellular carriers deploy internally. 1.0.0.0/8 is announced by another
// network in the generated world (the "routed mismatch" case).
var routableInternalBlocks = []string{
	"25.0.0.0/8", "1.0.0.0/8", "21.0.0.0/8", "22.0.0.0/8", "26.0.0.0/8", "51.0.0.0/8",
}

// Build generates a world from the scenario.
func Build(sc Scenario) *World {
	w := &World{
		Scenario: sc,
		Net:      simnet.New(),
		DB:       asdb.NewDB(),
		Truth:    make(map[uint32]*Truth),
		rng:      rand.New(rand.NewSource(sc.Seed)),
		nextASN:  64500,
	}
	w.Servers = netalyzr.DeployServers(w.Net, netalyzr.DefaultServersConfig(), w.rng)
	w.Swarm = btsim.NewSwarm(w.Net, netaddr.MustParseAddr("203.0.113.1"), netaddr.MustParseAddr("203.0.113.2"), sc.Seed^0x5117)
	w.CrawlerHost = w.Net.NewHost("crawler", w.Net.Public(), netaddr.MustParseAddr("203.0.113.3"), 1, w.rng)

	// 1.0.0.0/8 is routed by a content network so that internal use of it
	// classifies as "routed mismatch".
	oneSlash8 := w.addAS(asdb.Content, asdb.APNIC)
	w.Net.Global().Announce(netaddr.MustParsePrefix("1.0.0.0/8"), oneSlash8.ASN)

	for _, region := range asdb.RIRs {
		mix := sc.Regions[region]
		for i := 0; i < mix.Eyeball; i++ {
			w.buildEyeball(region)
		}
		for i := 0; i < mix.Cellular; i++ {
			w.buildCellular(region)
		}
	}
	for i := 0; i < sc.Transit; i++ {
		w.addAS(asdb.Transit, asdb.RIRs[w.rng.Intn(len(asdb.RIRs))])
	}
	for i := 0; i < sc.Content; i++ {
		w.addAS(asdb.Content, asdb.RIRs[w.rng.Intn(len(asdb.RIRs))])
	}
	w.injectVPNNoise()
	// Topology is final: precompile forwarding routes from every realm
	// toward the measurement fleet and the swarm infrastructure — the
	// destinations every subscriber talks to — so the campaign's first
	// packets already replay cached paths. Purely a warm-up; lazy
	// compilation would produce identical routes.
	srv := w.Servers.Config
	w.Net.PrecompileRoutes(
		srv.EchoAddr, srv.STUNPrimaryIP, srv.STUNAlternateIP, srv.ProbeAddr,
		w.Swarm.BootstrapEP.Addr, w.Swarm.TrackerEP().Addr, w.CrawlerHost.Addr(),
	)
	return w
}

// addAS registers an AS with a routed /16 allocation.
func (w *World) addAS(kind asdb.Kind, region asdb.RIR) *asdb.AS {
	w.nextASN++
	asn := w.nextASN
	alloc := w.allocPrefix16()
	as := &asdb.AS{
		ASN:         asn,
		Name:        fmt.Sprintf("%s-%s-%d", kind, region, asn),
		Region:      region,
		Kind:        kind,
		Allocations: []netaddr.Prefix{alloc},
	}
	if kind == asdb.Eyeball || kind == asdb.Cellular {
		if w.rng.Float64() < 0.95 {
			as.PBLEndUserAddrs = 2048 * (1 + w.rng.Intn(20))
		}
		if w.rng.Float64() < 0.88 {
			as.APNICSamples = 1000 + w.rng.Intn(100000)
		}
	}
	w.DB.Add(as)
	w.Net.Global().Announce(alloc, asn)
	return as
}

// allocPrefix16 hands out sequential /16s from 20.0.0.0 upward — space
// that collides with nothing else in the generated world.
func (w *World) allocPrefix16() netaddr.Prefix {
	base := netaddr.MustParseAddr("20.0.0.0")
	p := netaddr.PrefixFrom(base+netaddr.Addr(w.next16<<16), 16)
	w.next16++
	return p
}

// addrAllocator hands out distinct addresses from a prefix with a large
// prime stride, so consecutive subscribers land in different /24s (the
// address diversity CGN assignment pools exhibit at scale).
type addrAllocator struct {
	p    netaddr.Prefix
	i    uint64
	used map[netaddr.Addr]bool
}

func newAllocator(p netaddr.Prefix) *addrAllocator {
	return &addrAllocator{p: p, used: make(map[netaddr.Addr]bool)}
}

func (a *addrAllocator) next() netaddr.Addr {
	const stride = 4099 // prime, larger than a /20
	for {
		a.i++
		addr := a.p.Nth((a.i * stride) % a.p.NumAddrs())
		if addr == a.p.Addr() { // skip the network address
			continue
		}
		if !a.used[addr] {
			a.used[addr] = true
			return addr
		}
	}
}

// nextSameBlock allocates sequential addresses (same /24 density), for
// public CPE pools of non-CGN ISPs.
func (a *addrAllocator) nextSequential() netaddr.Addr {
	for {
		a.i++
		addr := a.p.Nth(a.i % a.p.NumAddrs())
		if !a.used[addr] {
			a.used[addr] = true
			return addr
		}
	}
}

// cgnRealm is one deployed CGN instance.
type cgnRealm struct {
	realm *simnet.Realm
	alloc *addrAllocator
}

// pick draws an index from a weight table.
func pick(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, v := range weights {
		total += v
	}
	x := rng.Float64() * total
	for i, v := range weights {
		x -= v
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

func (w *World) pickCPEModel() cpeModel {
	weights := make([]float64, len(cpeModels))
	for i, m := range cpeModels {
		weights[i] = m.weight
	}
	return cpeModels[pick(w.rng, weights)]
}

func (w *World) pickLAN() netaddr.Prefix {
	weights := make([]float64, len(lanPool))
	for i, l := range lanPool {
		weights[i] = l.weight
	}
	return netaddr.MustParsePrefix(lanPool[pick(w.rng, weights)].prefix)
}

// drawInternalRange picks the reserved block a CGN realm assigns from.
func (w *World) drawInternalRange() netaddr.Prefix {
	switch pick(w.rng, []float64{0.48, 0.32, 0.13, 0.07}) {
	case 0:
		return netaddr.MustParsePrefix("10.0.0.0/8")
	case 1:
		return netaddr.MustParsePrefix("100.64.0.0/10")
	case 2:
		return netaddr.MustParsePrefix("172.16.0.0/12")
	default:
		// CGNs in 192X are rare and small (Fig 4); use the upper half so
		// home LAN pools (192.168.0/1/...) don't collide.
		return netaddr.MustParsePrefix("192.168.128.0/17")
	}
}

func (w *World) drawCGNTimeout(cellular bool) time.Duration {
	if cellular {
		choices := []time.Duration{30, 45, 65, 65, 90, 120, 180, 300}
		return choices[w.rng.Intn(len(choices))] * time.Second
	}
	choices := []time.Duration{10, 20, 35, 35, 35, 50, 65, 100, 300}
	return choices[w.rng.Intn(len(choices))] * time.Second
}

func (w *World) drawCGNMapping(cellular bool) nat.MappingType {
	if cellular {
		// Bimodal (§6.5): many symmetric, a solid share of full cone.
		switch pick(w.rng, []float64{0.40, 0.25, 0.15, 0.20}) {
		case 0:
			return nat.Symmetric
		case 1:
			return nat.PortRestricted
		case 2:
			return nat.AddressRestricted
		default:
			return nat.FullCone
		}
	}
	switch pick(w.rng, []float64{0.11, 0.40, 0.20, 0.29}) {
	case 0:
		return nat.Symmetric
	case 1:
		return nat.PortRestricted
	case 2:
		return nat.AddressRestricted
	default:
		return nat.FullCone
	}
}

func (w *World) drawPortAlloc(cellular bool) nat.PortAlloc {
	if cellular {
		switch pick(w.rng, []float64{0.28, 0.26, 0.46}) {
		case 0:
			return nat.Preservation
		case 1:
			return nat.Sequential
		default:
			return nat.Random
		}
	}
	switch pick(w.rng, []float64{0.41, 0.22, 0.37}) {
	case 0:
		return nat.Preservation
	case 1:
		return nat.Sequential
	default:
		return nat.Random
	}
}

func (w *World) drawHairpin() nat.HairpinMode {
	x := w.rng.Float64()
	switch {
	case x < w.Scenario.HairpinPreserveFrac:
		return nat.HairpinPreserveSource
	case x < w.Scenario.HairpinPreserveFrac+w.Scenario.HairpinTranslateFrac:
		return nat.HairpinTranslate
	default:
		return nat.HairpinOff
	}
}

var chunkSizes = []int{512, 1024, 2048, 4096, 8192, 16384}

// buildCGNRealms provisions the internal realm(s), CGN devices and truth
// records for one CGN-deploying AS.
func (w *World) buildCGNRealms(as *asdb.AS, truth *Truth, pubAlloc *addrAllocator, cellular bool) []*cgnRealm {
	sc := w.Scenario
	nRealms := 1
	chunked := w.rng.Float64() < sc.ChunkASFrac
	if !chunked && w.rng.Float64() < sc.MixedRealmFrac {
		nRealms = 2
	}
	truth.Realms = nRealms
	if chunked {
		truth.ChunkSize = chunkSizes[w.rng.Intn(len(chunkSizes))]
		// A chunk wider than half a narrowed port span leaves no aligned
		// chunk inside [1024, 1024+span): the first base multiple already
		// overruns the top of the range and every subscriber would get
		// DropNoPorts before holding a single port. Halving preserves the
		// power-of-two invariant and keeps the realm allocatable.
		if span := sc.CGNPortSpan; span > 0 {
			for truth.ChunkSize > span/2 && truth.ChunkSize > 1 {
				truth.ChunkSize /= 2
			}
		}
	}

	routable := false
	if cellular && w.rng.Float64() < sc.RoutableInternalFrac {
		routable = true
		truth.RoutableInternal = true
	}

	var realms []*cgnRealm
	rangesSeen := map[string]bool{}
	var firstRange netaddr.Prefix
	for i := 0; i < nRealms; i++ {
		var internal netaddr.Prefix
		switch {
		case routable:
			internal = netaddr.MustParsePrefix(routableInternalBlocks[w.rng.Intn(len(routableInternalBlocks))])
			// Carve a /16 out of the /8 so different ASes don't share
			// allocators (addresses never leave the realm anyway).
			internal = internal.Subnet(16, uint64(w.rng.Intn(200)))
		case i > 0 && w.rng.Float64() < 0.55:
			// Distributed CGNs usually share one internal addressing
			// plan; only ~20% of ASes end up with multiple ranges
			// (Fig 7a).
			internal = firstRange
		default:
			internal = w.drawInternalRange()
		}
		if i == 0 {
			firstRange = internal
		}
		if !rangesSeen[internal.String()] {
			rangesSeen[internal.String()] = true
			truth.Ranges = append(truth.Ranges, internal.String())
		}

		// Pool: enough addresses that pooling is visible (>= 6), unless
		// the scenario pins the pool size to raise multiplexing pressure.
		var poolSize int
		if sc.CGNPoolSize != (Span{}) {
			poolSize = sc.CGNPoolSize.draw(w.rng)
		} else {
			poolSize = 6 + w.rng.Intn(6)
		}
		pool := make([]netaddr.Addr, poolSize)
		for p := range pool {
			pool[p] = pubAlloc.next()
		}
		alloc := nat.Preservation
		if chunked {
			alloc = nat.RandomChunk
		} else {
			alloc = w.drawPortAlloc(cellular)
		}
		mapping := w.drawCGNMapping(cellular)
		// Per-realm arbitrary pooling at 0.35 yields ~21% of ASes
		// classified arbitrary (the paper's figure): distributed
		// deployments dilute per-AS session shares below the 60% bar
		// unless both realms pool arbitrarily.
		pooling := nat.Paired
		if w.rng.Float64() < 0.35 {
			pooling = nat.Arbitrary
		}
		timeout := sc.CGNUDPTimeout
		if timeout == 0 {
			timeout = w.drawCGNTimeout(cellular)
		}
		hairpin := w.drawHairpin()

		var distance int
		if cellular {
			// Cellular CGNs sit 1..12 hops out, median around 3 (§6.4).
			distance = 1 + pick(w.rng, []float64{0.18, 0.22, 0.18, 0.12, 0.08, 0.06, 0.05, 0.04, 0.03, 0.02, 0.01, 0.01})
		} else {
			// Non-cellular CGNs sit 2..6 hops from the subscriber.
			distance = 2 + pick(w.rng, []float64{0.25, 0.30, 0.25, 0.12, 0.08})
		}

		realm := w.Net.NewRealm(fmt.Sprintf("as%d-internal-%d", as.ASN, i), 1)
		cfg := nat.Config{
			Type:                   mapping,
			PortAlloc:              alloc,
			ChunkSize:              truth.ChunkSize,
			Pooling:                pooling,
			ExternalIPs:            pool,
			UDPTimeout:             timeout,
			TCPTimeout:             2 * time.Hour,
			RefreshOnInbound:       true,
			Hairpin:                hairpin,
			PortQuotaPerSubscriber: sc.CGNPortQuota,
			AllocRatePerSec:        sc.CGNAllocRatePerSec,
			AllocBurst:             sc.CGNAllocBurst,
			Eviction:               sc.CGNEviction,
			Seed:                   w.rng.Int63(),
		}
		if sc.CGNPortSpan > 0 {
			cfg.PortLo = 1024
			cfg.PortHi = uint16(1024 + sc.CGNPortSpan - 1)
		}
		// innerHops positions the CGN `distance` hops from a bare
		// subscriber (the NAT itself is one hop).
		dev := w.Net.AttachNAT(fmt.Sprintf("as%d-cgn%d", as.ASN, i), realm, w.Net.Public(), cfg, distance-1, 1)
		w.CGNs = append(w.CGNs, CGNDevice{ASN: as.ASN, Cellular: cellular, Realm: i, Dev: dev})

		truth.PortAllocs = append(truth.PortAllocs, alloc)
		truth.MappingTypes = append(truth.MappingTypes, mapping)
		truth.Poolings = append(truth.Poolings, pooling)
		truth.Timeouts = append(truth.Timeouts, timeout)
		truth.HairpinModes = append(truth.HairpinModes, hairpin)
		truth.CGNDistance = append(truth.CGNDistance, distance)

		realms = append(realms, &cgnRealm{realm: realm, alloc: newAllocator(internal)})
	}
	return realms
}

// newHome provisions one home network: a CPE NAT between a fresh LAN and
// the parent realm, with a UPnP gateway host. It returns the LAN realm
// and the gateway address (zero when no usable gateway).
func (w *World) newHome(asn uint32, idx int, parent *simnet.Realm, wan netaddr.Addr) (*simnet.Realm, netaddr.Addr) {
	model := w.pickCPEModel()
	lanNet := w.pickLAN()
	lan := w.Net.NewRealm(fmt.Sprintf("as%d-home%d", asn, idx), 0)
	w.Net.AttachNAT(fmt.Sprintf("as%d-cpe%d", asn, idx), lan, parent, nat.Config{
		Type:             model.mapping,
		PortAlloc:        model.alloc,
		Pooling:          nat.Paired,
		ExternalIPs:      []netaddr.Addr{wan},
		UDPTimeout:       model.timeout,
		TCPTimeout:       2 * time.Hour,
		RefreshOnInbound: true,
		Hairpin:          nat.HairpinTranslate,
		Seed:             w.rng.Int63(),
	}, 0, 0)
	gwAddr := lanNet.Nth(1)
	netalyzr.GatewayHost(w.Net, lan, gwAddr, wan, model.name,
		w.rng.Float64() < w.Scenario.UPnPFrac, w.rng)
	return lan, gwAddr
}

// homeDevice attaches a subscriber device inside a LAN.
func (w *World) homeDevice(lan *simnet.Realm, n int) *simnet.Host {
	// Device addresses follow the gateway: .10, .11, ...
	gw := lan.Hosts()[0]
	base := gw.Addr() - 1 // LAN network address
	return w.Net.NewHost(fmt.Sprintf("dev-%s-%d", lan.Name(), n), lan, base+netaddr.Addr(10+n), 0, w.rng)
}

// buildEyeball provisions one eyeball AS: ground truth, topology,
// BitTorrent peers and Netalyzr vantage points.
func (w *World) buildEyeball(region asdb.RIR) {
	sc := w.Scenario
	as := w.addAS(asdb.Eyeball, region)
	truth := &Truth{ASN: as.ASN}
	w.Truth[as.ASN] = truth
	pubAlloc := newAllocator(as.Allocations[0])

	isCGN := w.rng.Float64() < sc.EyeballCGNProb[region]
	truth.CGN = isCGN
	lowVantage := w.rng.Float64() < sc.LowVantageFrac

	var realms []*cgnRealm
	if isCGN {
		realms = w.buildCGNRealms(as, truth, pubAlloc, false)
	}
	pickRealm := func() *cgnRealm { return realms[w.rng.Intn(len(realms))] }

	// BitTorrent population.
	peers := sc.BTPeers.draw(w.rng)
	if lowVantage {
		peers = sc.BTPeersLow.draw(w.rng)
	}
	homeIdx := 0
	for i := 0; i < peers; i++ {
		if isCGN && w.rng.Float64() < sc.BareFrac {
			// Bare subscriber on the ISP-internal realm.
			cr := pickRealm()
			h := w.Net.NewHost(fmt.Sprintf("as%d-bare%d", as.ASN, i), cr.realm, cr.alloc.next(), 0, w.rng)
			w.Swarm.AddPeer(h, as.ASN, "", w.validateDraw())
			continue
		}
		// Homed subscriber: CPE WAN is internal (CGN) or public.
		var lan *simnet.Realm
		if isCGN {
			cr := pickRealm()
			lan, _ = w.newHome(as.ASN, homeIdx, cr.realm, cr.alloc.next())
		} else {
			lan, _ = w.newHome(as.ASN, homeIdx, w.Net.Public(), pubAlloc.nextSequential())
		}
		homeIdx++
		lanID := fmt.Sprintf("as%d-lan%d", as.ASN, homeIdx)
		w.Swarm.AddPeer(w.homeDevice(lan, 0), as.ASN, lanID, w.validateDraw())
		if w.rng.Float64() < sc.HomePeerPairFrac {
			w.Swarm.AddPeer(w.homeDevice(lan, 1), as.ASN, lanID, w.validateDraw())
			i++
		}
	}

	// Netalyzr vantage points: fresh homes (and a few bare devices in
	// CGN ASes).
	sessions := sc.NLSessions.draw(w.rng)
	if lowVantage {
		sessions = sc.NLSessionsLow.draw(w.rng)
	}
	if truth.ChunkSize != 0 {
		// Chunk detection needs >= 20 random-translation sessions.
		if sessions < 26 {
			sessions = 26
		}
	}
	for i := 0; i < sessions; i++ {
		if isCGN && w.rng.Float64() < 0.15 {
			cr := pickRealm()
			h := w.Net.NewHost(fmt.Sprintf("as%d-nlbare%d", as.ASN, i), cr.realm, cr.alloc.next(), 0, w.rng)
			w.clients = append(w.clients, clientSpec{host: h, asn: as.ASN})
			continue
		}
		var lan *simnet.Realm
		var gw netaddr.Addr
		if isCGN {
			cr := pickRealm()
			lan, gw = w.newHome(as.ASN, 1000+i, cr.realm, cr.alloc.next())
		} else {
			lan, gw = w.newHome(as.ASN, 1000+i, w.Net.Public(), pubAlloc.nextSequential())
		}
		dev := w.homeDevice(lan, 0)
		if w.rng.Float64() < sc.DoubleNATFrac {
			// Stacked home NAT: a second router behind the first; its
			// WAN address comes from the outer LAN pool.
			innerWAN := dev.Addr() + 100
			innerLan, innerGw := w.newHomeNested(as.ASN, i, lan, innerWAN)
			dev = w.homeDevice(innerLan, 0)
			gw = innerGw
		}
		w.clients = append(w.clients, clientSpec{host: dev, asn: as.ASN, gateway: gw})
	}
}

// newHomeNested builds the inner router of a double-NAT home.
func (w *World) newHomeNested(asn uint32, idx int, outer *simnet.Realm, wan netaddr.Addr) (*simnet.Realm, netaddr.Addr) {
	model := w.pickCPEModel()
	lan := w.Net.NewRealm(fmt.Sprintf("as%d-nested%d", asn, idx), 0)
	w.Net.AttachNAT(fmt.Sprintf("as%d-nestedcpe%d", asn, idx), lan, outer, nat.Config{
		Type:             model.mapping,
		PortAlloc:        model.alloc,
		Pooling:          nat.Paired,
		ExternalIPs:      []netaddr.Addr{wan},
		UDPTimeout:       model.timeout,
		RefreshOnInbound: true,
		Hairpin:          nat.HairpinTranslate,
		Seed:             w.rng.Int63(),
	}, 0, 0)
	// The nested LAN uses a different common block than its parent
	// cannot be guaranteed, so draw independently; collisions with the
	// outer realm are fine (separate realms).
	gwAddr := w.pickLAN().Nth(1)
	netalyzr.GatewayHost(w.Net, lan, gwAddr, wan, model.name,
		w.rng.Float64() < w.Scenario.UPnPFrac, w.rng)
	return lan, gwAddr
}

func (w *World) validateDraw() bool {
	// A configurable share of peers violate the validation discipline
	// (§4.1 measured ~1.3% in the wild).
	return w.rng.Float64() >= w.Scenario.NonValidatingFrac
}

// buildCellular provisions one cellular AS.
func (w *World) buildCellular(region asdb.RIR) {
	sc := w.Scenario
	as := w.addAS(asdb.Cellular, region)
	truth := &Truth{ASN: as.ASN, Cellular: true}
	w.Truth[as.ASN] = truth
	pubAlloc := newAllocator(as.Allocations[0])

	isCGN := w.rng.Float64() < sc.CellularCGNProb[region]
	truth.CGN = isCGN

	var realms []*cgnRealm
	publicFrac := 0.0
	if isCGN {
		realms = w.buildCGNRealms(as, truth, pubAlloc, true)
		if w.rng.Float64() < sc.CellPublicMixFrac {
			publicFrac = 0.1 + 0.4*w.rng.Float64()
		}
	}

	sessions := sc.NLCellSessions.draw(w.rng)
	if truth.ChunkSize != 0 && sessions < 26 {
		sessions = 26
	}
	for i := 0; i < sessions; i++ {
		var h *simnet.Host
		if !isCGN || w.rng.Float64() < publicFrac {
			// Public assignment: the device sits on the public realm.
			h = w.Net.NewHost(fmt.Sprintf("as%d-cellpub%d", as.ASN, i),
				w.Net.Public(), pubAlloc.next(), 2, w.rng)
		} else {
			cr := realms[w.rng.Intn(len(realms))]
			h = w.Net.NewHost(fmt.Sprintf("as%d-cell%d", as.ASN, i),
				cr.realm, cr.alloc.next(), 0, w.rng)
		}
		w.clients = append(w.clients, clientSpec{host: h, asn: as.ASN, cellular: true})
	}
}

// injectVPNNoise plants cross-AS leaked internal contacts: pairs of
// non-validating peers in different ASes that "know" the same internal
// endpoint through a tunnel no packet in this world can explain.
func (w *World) injectVPNNoise() {
	if w.Scenario.VPNPairs == 0 || len(w.Swarm.Peers) < 2 {
		return
	}
	for i := 0; i < w.Scenario.VPNPairs; i++ {
		a := w.Swarm.Peers[w.rng.Intn(len(w.Swarm.Peers))]
		var b *btsim.Peer
		for tries := 0; tries < 50; tries++ {
			cand := w.Swarm.Peers[w.rng.Intn(len(w.Swarm.Peers))]
			if cand.ASN != a.ASN {
				b = cand
				break
			}
		}
		if b == nil {
			return
		}
		var id krpc.NodeID
		w.rng.Read(id[:])
		shared := krpc.NodeInfo{
			ID: id,
			EP: netaddr.EndpointOf(netaddr.MustParseAddr("10.88.0.1")+netaddr.Addr(i), 6881),
		}
		a.Node.InsertContact(shared)
		b.Node.InsertContact(shared)
	}
}
