package internet_test

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"testing"

	"cgn/internal/internet"
	"cgn/internal/netaddr"
	"cgn/internal/simnet"
)

// campaignDigest runs the full measurement campaign (DHT crawl plus
// Netalyzr sessions — every packet type the reproduction sends) over a
// world and digests everything the forwarding engine influences: the
// crawl dataset, the sessions, the network-wide metric counters and the
// complete NAT state of every device. The downstream analyses are pure
// functions of these inputs, so two worlds with equal digests produce
// byte-identical reports.
func campaignDigest(w *internet.World) string {
	ds := w.RunCrawl(internet.DefaultCrawlOptions())
	sessions := w.RunNetalyzr()

	h := sha256.New()
	// %+v prints maps in sorted key order and every type below is a
	// value type, so the rendering is deterministic.
	fmt.Fprintf(h, "crawl %+v\n", *ds)
	fmt.Fprintf(h, "sessions %+v\n", sessions)
	stateDigestInto(h, w)
	return hex.EncodeToString(h.Sum(nil))
}

// probeDigest exercises the forwarding engine directly, without the
// (expensive) full campaign: from a deterministic sample of hosts across
// every realm it sends full-TTL packets, sweeps TTLs across the NAT
// boundaries, and records traces toward the echo server, then digests
// every Result, every trace and the complete network and NAT state.
func probeDigest(w *internet.World) string {
	srv := w.Servers.Config
	echo := netaddr.EndpointOf(srv.EchoAddr, 7)

	h := sha256.New()
	probe := func(host *simnet.Host) {
		if host == nil {
			return
		}
		res := host.Send(netaddr.UDP, 41000, echo, nil)
		fmt.Fprintf(h, "send %s %+v\n", host.Name(), res)
		for _, ttl := range []int{1, 3, 5, 9} {
			res := host.SendTTL(netaddr.UDP, 41001, echo, ttl, nil)
			fmt.Fprintf(h, "ttl %s %d %+v\n", host.Name(), ttl, res)
		}
		steps, res := host.Network().TracePath(host, netaddr.UDP, 41002, echo)
		fmt.Fprintf(h, "trace %s %v %+v\n", host.Name(), steps, res)
	}
	realms := w.Net.Realms()
	for i, r := range realms {
		// Sample at most ~128 realms evenly so heavy worlds stay cheap.
		if len(realms) > 128 && i%(len(realms)/128+1) != 0 {
			continue
		}
		if hosts := r.Hosts(); len(hosts) > 0 {
			probe(hosts[len(hosts)-1])
		}
	}
	probe(w.CrawlerHost)
	stateDigestInto(h, w)
	return hex.EncodeToString(h.Sum(nil))
}

// stateDigestInto writes the network metrics and every NAT's state
// digest into h.
func stateDigestInto(h interface{ Write([]byte) (int, error) }, w *internet.World) {
	fmt.Fprintf(h, "netmetrics %+v\n", w.Net.Metrics.Snapshot())
	for _, d := range w.Net.Devices() {
		fmt.Fprintf(h, "dev %s %s %+v\n", d.Name, d.NAT.StateDigest(), d.NAT.Metrics.Snapshot())
	}
}

// TestFastSlowDifferentialAllScenarios pins the compiled-path forwarding
// engine to the reference walk across every registry scenario: the same
// seed must produce identical Results, traces, metrics and NAT state
// whether packets replay cached routes or walk the topology per hop.
// The small-class scenarios compare digests of the complete measurement
// campaign; the heavy worlds (paper, large) compare a deterministic
// forwarding probe matrix instead, which covers the same packet classes
// at a fraction of the cost. large additionally sits behind -short.
func TestFastSlowDifferentialAllScenarios(t *testing.T) {
	probeOnly := map[string]bool{"paper": true, "large": true}
	for _, name := range internet.Names() {
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name == "large" {
				t.Skip("skipping the large world in -short mode")
			}
			t.Parallel()
			sc, err := internet.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			sc.Seed = 7

			fast := internet.Build(sc)
			if !fast.Net.FastPathEnabled() {
				t.Fatal("fast path should be on by default")
			}
			slow := internet.Build(sc)
			slow.Net.SetFastPath(false)

			digest := campaignDigest
			if probeOnly[name] {
				digest = probeDigest
			}
			fd, sd := digest(fast), digest(slow)
			if fd != sd {
				t.Errorf("scenario %s: digests diverge between engines\n fast: %s\n slow: %s",
					name, fd, sd)
			}
			// The two worlds must be structurally identical too —
			// otherwise the digests compare different topologies and a
			// forwarding bug could hide behind a build difference.
			if f, s := fast.Net.Metrics.Snapshot(), slow.Net.Metrics.Snapshot(); !reflect.DeepEqual(f, s) {
				t.Errorf("scenario %s: network metrics diverge:\n fast: %v\n slow: %v", name, f, s)
			}
			if len(fast.Net.Devices()) != len(slow.Net.Devices()) {
				t.Errorf("scenario %s: device counts differ: %d vs %d",
					name, len(fast.Net.Devices()), len(slow.Net.Devices()))
			}
		})
	}
}
