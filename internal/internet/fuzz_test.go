package internet

import (
	"testing"
	"time"

	"cgn/internal/asdb"
	"cgn/internal/nat"
	"cgn/internal/traffic"
)

// FuzzScenarioValidate fuzzes the scenario surface the CLIs and sweep
// generators expose: population counts, vantage spans, port-provisioning
// knobs and the traffic profile. The contract under test is two-sided —
// Validate must reject nonsense (negative spans, fractions outside
// [0,1], inverted pools), and any scenario Validate accepts must Build
// without panicking (and, when its traffic profile is enabled, drive the
// traffic engine without panicking). The seed corpus is every registry
// scenario, so the fuzzer starts from each shape the repository ships.
func FuzzScenarioValidate(f *testing.F) {
	add := func(sc Scenario) {
		f.Add(
			sc.Regions[asdb.ARIN].Eyeball, sc.Regions[asdb.ARIN].Cellular,
			sc.BTPeers.Min, sc.BTPeers.Max,
			sc.NLSessions.Min, sc.NLSessions.Max,
			sc.LowVantageFrac, sc.BareFrac,
			sc.HairpinPreserveFrac, sc.HairpinTranslateFrac, sc.ChunkASFrac,
			sc.CGNPortSpan, sc.CGNPortQuota,
			sc.CGNPoolSize.Min, sc.CGNPoolSize.Max, int64(sc.CGNUDPTimeout),
			sc.Traffic.Ticks, sc.Traffic.DayTicks, int64(sc.Traffic.TickStep),
			sc.Traffic.DiurnalAmp, sc.Traffic.HeavyFrac, sc.Traffic.LightFrac,
			sc.Traffic.AttackerFrac, sc.Traffic.AttackerFlowsPerTick,
			sc.Traffic.ScannerProbesPerTick,
			sc.CGNAllocRatePerSec, sc.CGNAllocBurst, int(sc.CGNEviction),
		)
	}
	for _, name := range Names() {
		sc, err := Lookup(name)
		if err != nil {
			f.Fatal(err)
		}
		add(sc)
	}

	f.Fuzz(func(t *testing.T,
		eyeball, cellular, btMin, btMax, nlMin, nlMax int,
		lowVantage, bareFrac, hairpinP, hairpinT, chunkFrac float64,
		portSpan, portQuota, poolMin, poolMax int, udpTimeout int64,
		tticks, tday int, tstep int64, tamp, theavy, tlight float64,
		atkFrac, atkFlows, scanProbes float64,
		allocRate float64, allocBurst, eviction int) {

		sc := Small()
		// One fuzzed region; zero-count regions are valid and must build
		// into an (empty) world without panicking.
		sc.Regions = map[asdb.RIR]RegionMix{asdb.ARIN: {Eyeball: eyeball, Cellular: cellular}}
		sc.Transit, sc.Content, sc.VPNPairs = 1, 1, 1
		sc.BTPeers = Span{btMin, btMax}
		sc.NLSessions = Span{nlMin, nlMax}
		sc.LowVantageFrac = lowVantage
		sc.BareFrac = bareFrac
		sc.HairpinPreserveFrac = hairpinP
		sc.HairpinTranslateFrac = hairpinT
		sc.ChunkASFrac = chunkFrac
		sc.CGNPortSpan = portSpan
		sc.CGNPortQuota = portQuota
		sc.CGNPoolSize = Span{poolMin, poolMax}
		sc.CGNUDPTimeout = time.Duration(udpTimeout)
		sc.Traffic = traffic.Profile{
			Ticks: tticks, DayTicks: tday, TickStep: time.Duration(tstep),
			DiurnalAmp: tamp, HeavyFrac: theavy, LightFrac: tlight,
			AttackerFrac: atkFrac, AttackerFlowsPerTick: atkFlows,
			ScannerProbesPerTick: scanProbes,
		}
		sc.CGNAllocRatePerSec = allocRate
		sc.CGNAllocBurst = allocBurst
		sc.CGNEviction = nat.EvictionPolicy(eviction)

		if err := sc.Validate(); err != nil {
			return // rejected: the contract is satisfied
		}
		// Validate accepted: Build must not panic. Bound the world size so
		// the fuzzer spends its budget on shapes, not on giant campaigns.
		if eyeball > 4 || cellular > 4 || btMax > 48 || nlMax > 32 {
			t.Skip("valid but too large for a fuzz iteration")
		}
		w := Build(sc)
		if w == nil {
			t.Fatal("Build returned nil for a validated scenario")
		}
		// An enabled traffic profile must drive the engine without
		// panicking; clamp the simulated span, not the shape.
		if p := sc.Traffic; p.Enabled() {
			if p.Ticks > 6 {
				p.Ticks = 6
			}
			realms := make([]traffic.RealmSpec, 0, 2)
			for _, d := range w.CGNs {
				if len(realms) == 2 {
					break
				}
				realms = append(realms, traffic.RealmSpec{
					ID: "fuzz", NAT: d.Dev.NAT.Config(), Subscribers: 4,
				})
			}
			traffic.Run(traffic.Config{Seed: 1, Profile: p, Realms: realms})
		}
	})
}
