package props

import (
	"sort"
	"time"

	"cgn/internal/detect"
	"cgn/internal/netaddr"
	"cgn/internal/netalyzr"
	"cgn/internal/routing"
	"cgn/internal/stats"
	"cgn/internal/stun"
)

// NetClass buckets a session the way Figures 11–13 group their
// populations.
type NetClass uint8

// Session network classes.
const (
	NonCellularNoCGN NetClass = iota
	NonCellularCGN
	CellularCGN
	CellularNoCGN
)

// String names the class as in the figures.
func (c NetClass) String() string {
	switch c {
	case NonCellularNoCGN:
		return "non-cellular no CGN"
	case NonCellularCGN:
		return "non-cellular CGN"
	case CellularCGN:
		return "cellular CGN"
	case CellularNoCGN:
		return "cellular no CGN"
	default:
		return "class(?)"
	}
}

// ClassOf buckets one session given the combined CGN verdict.
func ClassOf(s netalyzr.Session, cgnASes map[uint32]bool) NetClass {
	switch {
	case s.Cellular && cgnASes[s.ASN]:
		return CellularCGN
	case s.Cellular:
		return CellularNoCGN
	case cgnASes[s.ASN]:
		return NonCellularCGN
	default:
		return NonCellularNoCGN
	}
}

// MinSessionsPerNetwork is the §6.3 filter: at least three sessions from
// a (AS, class) combination before it enters the property analyses.
const MinSessionsPerNetwork = 3

// FilterNetworks drops sessions from (AS, class) groups with fewer than
// min sessions, mirroring §6.3's filtering.
func FilterNetworks(sessions []netalyzr.Session, cgnASes map[uint32]bool, min int) []netalyzr.Session {
	type groupKey struct {
		asn uint32
		cls NetClass
	}
	counts := map[groupKey]int{}
	for _, s := range sessions {
		counts[groupKey{s.ASN, ClassOf(s, cgnASes)}]++
	}
	var out []netalyzr.Session
	for _, s := range sessions {
		if counts[groupKey{s.ASN, ClassOf(s, cgnASes)}] >= min {
			out = append(out, s)
		}
	}
	return out
}

// DistanceResult holds Figure 11: per AS class, the distribution of the
// most distant NAT hop.
type DistanceResult struct {
	// PerClass maps class -> hop bucket (1..9, 10 means ">=10") -> AS
	// count.
	PerClass map[NetClass]stats.Freq[int]
	// ASCount counts ASes per class.
	ASCount map[NetClass]int
}

// DistanceBucketMax caps Figure 11's x-axis; larger distances fold into
// the ">=10" bucket.
const DistanceBucketMax = 10

// AnalyzeDistance computes Figure 11 from TTL-enumeration sessions. An
// AS is represented by the mode of its sessions' most-distant-NAT
// observations (the same per-AS aggregation §6.5 uses for timeouts):
// taking the maximum instead would let a single double-NAT household
// relabel a whole home-ISP as a two-hop network.
func AnalyzeDistance(sessions []netalyzr.Session, cgnASes map[uint32]bool) *DistanceResult {
	type asKey struct {
		asn uint32
		cls NetClass
	}
	dists := map[asKey][]float64{}
	for _, s := range sessions {
		if !s.TTLRan || len(s.TTLResult.NATs) == 0 {
			continue
		}
		k := asKey{s.ASN, ClassOf(s, cgnASes)}
		dists[k] = append(dists[k], float64(s.TTLResult.MostDistantNAT()))
	}
	res := &DistanceResult{
		PerClass: map[NetClass]stats.Freq[int]{},
		ASCount:  map[NetClass]int{},
	}
	for k, ds := range dists {
		sort.Float64s(ds)
		mode, _ := stats.Mode(ds)
		d := int(mode)
		if res.PerClass[k.cls] == nil {
			res.PerClass[k.cls] = stats.Freq[int]{}
		}
		if d > DistanceBucketMax {
			d = DistanceBucketMax
		}
		res.PerClass[k.cls].Add(d)
		res.ASCount[k.cls]++
	}
	return res
}

// CGNMinHops is the §6.5 rule for attributing a measured timeout to the
// CGN rather than the CPE in NAT444 paths: the NAT must sit at least
// three hops from the client.
const CGNMinHops = 3

// TimeoutResult holds Figure 12's samples.
type TimeoutResult struct {
	// CellularPerAS and NonCellularPerAS hold one value per CGN AS: the
	// mode of its sessions' CGN timeout estimates (seconds).
	CellularPerAS    []float64
	NonCellularPerAS []float64
	// CPEPerSession holds per-session CPE (hop 1) timeout estimates.
	CPEPerSession []float64
}

// estimate returns the midpoint of a timeout bracket in seconds.
func estimate(lo, hi time.Duration) float64 {
	return (lo + hi).Seconds() / 2
}

// AnalyzeTimeouts computes Figure 12 from TTL-enumeration sessions.
func AnalyzeTimeouts(sessions []netalyzr.Session, cgnASes map[uint32]bool) *TimeoutResult {
	res := &TimeoutResult{}
	perAS := map[uint32][]float64{}
	perASCell := map[uint32]bool{}
	for _, s := range sessions {
		if !s.TTLRan {
			continue
		}
		cls := ClassOf(s, cgnASes)
		for _, ob := range s.TTLResult.NATs {
			est := estimate(ob.TimeoutLow, ob.TimeoutHigh)
			// CPE sample: first-hop NATs on non-cellular paths.
			if !s.Cellular && ob.Hop == 1 {
				res.CPEPerSession = append(res.CPEPerSession, est)
			}
			// CGN sample: in CGN-positive ASes, NATs at >= CGNMinHops
			// (cellular paths have no CPE, so hop >= 1 suffices there).
			isCGNNAT := (cls == CellularCGN && ob.Hop >= 1) ||
				(cls == NonCellularCGN && ob.Hop >= CGNMinHops)
			if isCGNNAT {
				perAS[s.ASN] = append(perAS[s.ASN], est)
				perASCell[s.ASN] = s.Cellular
			}
		}
	}
	asns := make([]uint32, 0, len(perAS))
	for asn := range perAS {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		vals := append([]float64(nil), perAS[asn]...)
		sort.Float64s(vals)
		mode, _ := stats.Mode(vals)
		if perASCell[asn] {
			res.CellularPerAS = append(res.CellularPerAS, mode)
		} else {
			res.NonCellularPerAS = append(res.NonCellularPerAS, mode)
		}
	}
	return res
}

// TTLQuadrants is Table 7: sessions bucketed by whether the enumeration
// found an expired mapping and whether the addresses mismatched.
type TTLQuadrants struct {
	DetectedMismatch   int // NAT found, address mismatch (CGN detected)
	DetectedMatch      int // stateful middlebox without translation
	UndetectedMismatch int // translation evident but no expiry observed
	UndetectedMatch    int // nothing: no NAT at all
}

// Total returns the session count.
func (q TTLQuadrants) Total() int {
	return q.DetectedMismatch + q.DetectedMatch + q.UndetectedMismatch + q.UndetectedMatch
}

// AnalyzeTTLDetection computes Table 7.
func AnalyzeTTLDetection(sessions []netalyzr.Session) TTLQuadrants {
	var q TTLQuadrants
	for _, s := range sessions {
		if !s.TTLRan {
			continue
		}
		detected := len(s.TTLResult.NATs) > 0
		switch {
		case detected && s.TTLResult.Mismatch:
			q.DetectedMismatch++
		case detected && !s.TTLResult.Mismatch:
			q.DetectedMatch++
		case !detected && s.TTLResult.Mismatch:
			q.UndetectedMismatch++
		default:
			q.UndetectedMatch++
		}
	}
	return q
}

// STUNResult holds Figure 13.
type STUNResult struct {
	// CPESessions tallies session-level classes over non-cellular no-CGN
	// sessions: Figure 13(a).
	CPESessions stats.Freq[stun.NATClass]
	// CellularASes and NonCellularASes tally the most permissive class
	// per CGN AS: Figure 13(b).
	CellularASes    stats.Freq[stun.NATClass]
	NonCellularASes stats.Freq[stun.NATClass]
}

// permissiveness orders NAT classes for the "most permissive" rule; the
// composite of cascaded NATs shows the most restrictive behavior, so the
// most permissive session observed lower-bounds the CGN's own behavior.
func permissiveness(c stun.NATClass) int {
	switch c {
	case stun.ClassSymmetric:
		return 1
	case stun.ClassPortRestricted:
		return 2
	case stun.ClassAddressRestricted:
		return 3
	case stun.ClassFullCone:
		return 4
	default:
		return 0
	}
}

// AnalyzeSTUN computes Figure 13 from STUN sessions.
func AnalyzeSTUN(sessions []netalyzr.Session, cgnASes map[uint32]bool) *STUNResult {
	res := &STUNResult{
		CPESessions:     stats.Freq[stun.NATClass]{},
		CellularASes:    stats.Freq[stun.NATClass]{},
		NonCellularASes: stats.Freq[stun.NATClass]{},
	}
	best := map[uint32]stun.NATClass{}
	cellular := map[uint32]bool{}
	for _, s := range sessions {
		if !s.STUNRan {
			continue
		}
		cls := ClassOf(s, cgnASes)
		c := s.STUNResult.Class
		if cls == NonCellularNoCGN && c.IsNAT() {
			res.CPESessions.Add(c)
		}
		if cls == CellularCGN || cls == NonCellularCGN {
			if !c.IsNAT() {
				continue
			}
			if prev, ok := best[s.ASN]; !ok || permissiveness(c) > permissiveness(prev) {
				best[s.ASN] = c
			}
			cellular[s.ASN] = s.Cellular
		}
	}
	for asn, c := range best {
		if cellular[asn] {
			res.CellularASes.Add(c)
		} else {
			res.NonCellularASes.Add(c)
		}
	}
	return res
}

// InternalSpaceResult holds Figure 7.
type InternalSpaceResult struct {
	// CellularUse and NonCellularUse tally Figure 7(a): per CGN AS, the
	// internal address category in use.
	CellularUse    stats.Freq[InternalUse]
	NonCellularUse stats.Freq[InternalUse]
	// RoutableASes lists ASes observed using routable space internally,
	// with the /8 blocks involved: Figure 7(b).
	RoutableASes []RoutableUse
}

// RoutableUse is one Figure 7(b) row.
type RoutableUse struct {
	ASN uint32
	// Blocks lists the /8s seen as internal addresses.
	Blocks []netaddr.Prefix
	// Routed reports whether any of the blocks is actually routed by
	// another network (the gravest case the paper highlights).
	Routed bool
}

// AnalyzeInternalSpace computes Figure 7 by combining the BitTorrent
// cluster ranges with the Netalyzr device/CPE addresses of CGN ASes.
// topCPEBlocks (the detection funnel's common home-assignment /24s,
// §4.2) filters stacked home NATs out of the IPcpe evidence: an inner
// router's WAN address in 192.168.0.0/24 says nothing about the ISP's
// internal addressing plan. Pass nil to skip the filter.
func AnalyzeInternalSpace(sessions []netalyzr.Session, bt *detect.BTResult,
	cgnASes map[uint32]bool, global *routing.Global,
	topCPEBlocks []netaddr.Prefix) *InternalSpaceResult {

	res := &InternalSpaceResult{
		CellularUse:    stats.Freq[InternalUse]{},
		NonCellularUse: stats.Freq[InternalUse]{},
	}
	uses := map[uint32]map[InternalUse]bool{}
	routableBlocks := map[uint32]map[netaddr.Prefix]bool{}
	routedFlag := map[uint32]bool{}
	cellular := map[uint32]bool{}

	record := func(asn uint32, u InternalUse) {
		if uses[asn] == nil {
			uses[asn] = map[InternalUse]bool{}
		}
		uses[asn][u] = true
	}
	recordAddr := func(asn uint32, a netaddr.Addr, pub netaddr.Addr) {
		if r, ok := rangeUse(netaddr.ClassifyRange(a)); ok {
			record(asn, r)
			return
		}
		// Public-looking internal address: routable space used
		// internally (translation proven by pub mismatch upstream).
		cat := netaddr.Categorize(a, global.Routed(a), pub)
		if cat == netaddr.CatUnrouted || cat == netaddr.CatRoutedMismatch {
			record(asn, UseRoutable)
			if routableBlocks[asn] == nil {
				routableBlocks[asn] = map[netaddr.Prefix]bool{}
			}
			routableBlocks[asn][netaddr.PrefixFrom(a, 8)] = true
			if cat == netaddr.CatRoutedMismatch {
				routedFlag[asn] = true
			}
		}
	}

	inTopBlocks := func(a netaddr.Addr) bool {
		blk := a.Block24()
		for _, p := range topCPEBlocks {
			if p == blk {
				return true
			}
		}
		return false
	}
	for _, s := range sessions {
		if !cgnASes[s.ASN] {
			continue
		}
		cellular[s.ASN] = s.Cellular
		if s.Cellular {
			recordAddr(s.ASN, s.IPdev, s.IPpub)
		} else if s.HasCPE && !inTopBlocks(s.IPcpe) {
			recordAddr(s.ASN, s.IPcpe, s.IPpub)
		}
	}
	if bt != nil {
		for asn, as := range bt.PerAS {
			if !as.CGN || !cgnASes[asn] {
				continue
			}
			for _, r := range as.CGNRanges {
				if u, ok := rangeUse(r); ok {
					record(asn, u)
				}
			}
		}
	}

	asns := make([]uint32, 0, len(uses))
	for asn := range uses {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		set := uses[asn]
		var u InternalUse
		switch {
		case set[UseRoutable]:
			u = UseRoutable
		case len(set) > 1:
			u = UseMultiple
		default:
			for only := range set {
				u = only
			}
		}
		if cellular[asn] {
			res.CellularUse.Add(u)
		} else {
			res.NonCellularUse.Add(u)
		}
		if set[UseRoutable] {
			var blocks []netaddr.Prefix
			for p := range routableBlocks[asn] {
				blocks = append(blocks, p)
			}
			routing.SortPrefixes(blocks)
			res.RoutableASes = append(res.RoutableASes, RoutableUse{
				ASN: asn, Blocks: blocks, Routed: routedFlag[asn],
			})
		}
	}
	return res
}
