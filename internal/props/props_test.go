package props

import (
	"testing"
	"time"

	"cgn/internal/netaddr"
	"cgn/internal/netalyzr"
	"cgn/internal/routing"
	"cgn/internal/stun"
	"cgn/internal/ttlprobe"
)

func addr(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

func flows(pairs ...[2]uint16) []netalyzr.FlowObs {
	out := make([]netalyzr.FlowObs, len(pairs))
	for i, p := range pairs {
		out[i] = netalyzr.FlowObs{
			LocalPort: p[0],
			Observed:  netaddr.EndpointOf(addr("198.51.100.1"), p[1]),
		}
	}
	return out
}

func TestClassifyPreservation(t *testing.T) {
	// 3 of 10 preserved (>= 20%).
	var ps [][2]uint16
	for i := uint16(0); i < 10; i++ {
		local := 40000 + i
		obs := local
		if i >= 3 {
			obs = 12345 + 3000*i // clearly not sequential either
		}
		ps = append(ps, [2]uint16{local, obs})
	}
	got, ok := ClassifySessionPorts(flows(ps...), PortConfig{})
	if !ok || got != StrategyPreservation {
		t.Errorf("= %v, %v; want preservation", got, ok)
	}
}

func TestClassifySequential(t *testing.T) {
	var ps [][2]uint16
	for i := uint16(0); i < 10; i++ {
		ps = append(ps, [2]uint16{40000 + i, 20000 + 7*i})
	}
	got, ok := ClassifySessionPorts(flows(ps...), PortConfig{})
	if !ok || got != StrategySequential {
		t.Errorf("= %v, %v; want sequential", got, ok)
	}
}

func TestClassifyRandom(t *testing.T) {
	ps := [][2]uint16{{40000, 5000}, {40001, 61000}, {40002, 22000}, {40003, 48000}, {40004, 9000}}
	got, ok := ClassifySessionPorts(flows(ps...), PortConfig{})
	if !ok || got != StrategyRandom {
		t.Errorf("= %v, %v; want random", got, ok)
	}
}

func TestClassifyTooFewFlows(t *testing.T) {
	if _, ok := ClassifySessionPorts(flows([2]uint16{1, 1}), PortConfig{}); ok {
		t.Error("single flow should not classify")
	}
}

func TestPortSpan(t *testing.T) {
	if got := PortSpan(flows([2]uint16{1, 5000}, [2]uint16{2, 8000}, [2]uint16{3, 6000})); got != 3000 {
		t.Errorf("span = %d", got)
	}
	if PortSpan(nil) != 0 {
		t.Error("empty span should be 0")
	}
}

// chunkSession fabricates a random-translation session confined to
// [base, base+width).
func chunkSession(asn uint32, base, width uint16, cellular bool) netalyzr.Session {
	s := netalyzr.Session{ASN: asn, Cellular: cellular}
	offsets := []uint16{0, 7, 3, 9, 1, 8, 2, 6, 4, 5}
	for i, off := range offsets {
		port := base + uint16(uint32(off)*uint32(width-1)/9)
		s.Flows = append(s.Flows, netalyzr.FlowObs{
			LocalPort: 40000 + uint16(i),
			Observed:  netaddr.EndpointOf(addr("198.51.100.2"), port),
		})
	}
	return s
}

func TestChunkDetection(t *testing.T) {
	cgn := map[uint32]bool{42: true, 43: true}
	var sessions []netalyzr.Session
	// AS 42: 25 sessions confined to 4K-aligned chunks.
	for i := 0; i < 25; i++ {
		sessions = append(sessions, chunkSession(42, uint16(4096*(i%8+2)), 4096, false))
	}
	// AS 43: 25 random sessions over the whole space.
	for i := 0; i < 25; i++ {
		sessions = append(sessions, chunkSession(43, 1024, 60000, false))
	}
	res := AnalyzePorts(sessions, cgn, PortConfig{})
	as42 := res.PerAS[42]
	if as42 == nil || !as42.ChunkDetected {
		t.Fatalf("AS42 = %+v, want chunk detected", as42)
	}
	if as42.ChunkSize != 4096 {
		t.Errorf("chunk size = %d, want 4096", as42.ChunkSize)
	}
	if res.PerAS[43].ChunkDetected {
		t.Error("AS43 (full-space random) must not be chunk-detected")
	}
	if got := res.ChunkASes(); len(got) != 1 || got[0].ASN != 42 {
		t.Errorf("ChunkASes = %v", got)
	}
}

func TestAnalyzePortsHistogramsAndModels(t *testing.T) {
	cgn := map[uint32]bool{1: true}
	var sessions []netalyzr.Session
	// CGN AS: translated full-space sessions.
	for i := 0; i < 5; i++ {
		sessions = append(sessions, chunkSession(1, 1024, 60000, false))
	}
	// Non-CGN AS with preserving CPE.
	for i := 0; i < 4; i++ {
		var ps [][2]uint16
		for j := uint16(0); j < 10; j++ {
			ps = append(ps, [2]uint16{41000 + j, 41000 + j})
		}
		s := netalyzr.Session{ASN: 2, Flows: flows(ps...), HasCPE: true, CPEModel: "AcmeBox"}
		sessions = append(sessions, s)
	}
	res := AnalyzePorts(sessions, cgn, PortConfig{})
	if res.HistTranslated.Total != 50 {
		t.Errorf("translated samples = %d, want 50", res.HistTranslated.Total)
	}
	if res.HistPreserved.Total != 40 {
		t.Errorf("preserved samples = %d, want 40", res.HistPreserved.Total)
	}
	// Preserved ports concentrate in the OS ephemeral band.
	if res.HistPreserved.Bins[41000*64/65536] == 0 {
		t.Error("preserved histogram missing the ephemeral band")
	}
	ms := res.CPEModels["AcmeBox"]
	if ms == nil || ms.Sessions != 4 || ms.Preserving != 4 {
		t.Errorf("model stat = %+v", ms)
	}
	// Non-CGN ASes don't enter PerAS.
	if _, ok := res.PerAS[2]; ok {
		t.Error("non-CGN AS must not be aggregated")
	}
}

func TestDominantAndPure(t *testing.T) {
	as := &ASPorts{Strategies: map[PortStrategy]int{StrategyRandom: 5, StrategySequential: 2}}
	if as.Dominant() != StrategyRandom {
		t.Error("dominant should be random")
	}
	if as.Pure() {
		t.Error("mixed AS is not pure")
	}
	pure := &ASPorts{Strategies: map[PortStrategy]int{StrategyPreservation: 3}}
	if !pure.Pure() || pure.Dominant() != StrategyPreservation {
		t.Error("pure AS misclassified")
	}
}

func TestDominantShares(t *testing.T) {
	res := &PortResult{PerAS: map[uint32]*ASPorts{
		1: {ASN: 1, Cellular: true, Strategies: map[PortStrategy]int{StrategyRandom: 3}},
		2: {ASN: 2, Cellular: false, Strategies: map[PortStrategy]int{StrategySequential: 3}},
		3: {ASN: 3, Cellular: true, Strategies: map[PortStrategy]int{StrategyRandom: 1, StrategyPreservation: 4}},
	}}
	cell := res.DominantShares(true)
	if cell[StrategyRandom] != 1 || cell[StrategyPreservation] != 1 {
		t.Errorf("cellular shares = %v", cell)
	}
	non := res.DominantShares(false)
	if non[StrategySequential] != 1 {
		t.Errorf("non-cellular shares = %v", non)
	}
}

func TestArbitraryPoolingFrac(t *testing.T) {
	as := &ASPorts{Sessions: 10, MultiIPSessions: 7}
	if as.ArbitraryPoolingFrac() != 0.7 {
		t.Errorf("frac = %v", as.ArbitraryPoolingFrac())
	}
	if (&ASPorts{}).ArbitraryPoolingFrac() != 0 {
		t.Error("empty AS should report 0")
	}
}

func ttlSession(asn uint32, cellular bool, mismatch bool, nats ...ttlprobe.NATObservation) netalyzr.Session {
	return netalyzr.Session{
		ASN: asn, Cellular: cellular, TTLRan: true,
		TTLResult: ttlprobe.Result{Mismatch: mismatch, NATs: nats, PathLen: 10},
	}
}

func nat(hop int, lo, hi time.Duration) ttlprobe.NATObservation {
	return ttlprobe.NATObservation{Hop: hop, TimeoutLow: lo, TimeoutHigh: hi}
}

func TestAnalyzeDistance(t *testing.T) {
	cgn := map[uint32]bool{1: true, 2: true}
	sessions := []netalyzr.Session{
		ttlSession(1, true, true, nat(3, 0, 10), nat(12, 0, 10)),
		ttlSession(2, false, true, nat(1, 0, 10), nat(4, 0, 10)),
		ttlSession(3, false, true, nat(1, 0, 10)),
	}
	res := AnalyzeDistance(sessions, cgn)
	if res.PerClass[CellularCGN][DistanceBucketMax] != 1 {
		t.Errorf("cellular >=10 bucket = %v", res.PerClass[CellularCGN])
	}
	if res.PerClass[NonCellularCGN][4] != 1 {
		t.Errorf("non-cellular CGN buckets = %v", res.PerClass[NonCellularCGN])
	}
	if res.PerClass[NonCellularNoCGN][1] != 1 {
		t.Errorf("no-CGN buckets = %v", res.PerClass[NonCellularNoCGN])
	}
	if res.ASCount[CellularCGN] != 1 || res.ASCount[NonCellularNoCGN] != 1 {
		t.Errorf("AS counts = %v", res.ASCount)
	}
}

func TestAnalyzeTimeouts(t *testing.T) {
	cgn := map[uint32]bool{1: true, 2: true}
	sessions := []netalyzr.Session{
		// Cellular CGN AS 1: NAT at hop 3, timeout bracket [60,70).
		ttlSession(1, true, true, nat(3, 60*time.Second, 70*time.Second)),
		ttlSession(1, true, true, nat(3, 60*time.Second, 70*time.Second)),
		// Non-cellular CGN AS 2: CPE at hop 1 (65s), CGN at hop 4 (30s).
		ttlSession(2, false, true,
			nat(1, 60*time.Second, 70*time.Second),
			nat(4, 30*time.Second, 40*time.Second)),
		// Non-CGN AS 3: CPE only; contributes only to the CPE boxplot.
		ttlSession(3, false, false, nat(1, 60*time.Second, 70*time.Second)),
	}
	res := AnalyzeTimeouts(sessions, cgn)
	if len(res.CellularPerAS) != 1 || res.CellularPerAS[0] != 65 {
		t.Errorf("cellular per-AS = %v", res.CellularPerAS)
	}
	if len(res.NonCellularPerAS) != 1 || res.NonCellularPerAS[0] != 35 {
		t.Errorf("non-cellular per-AS = %v", res.NonCellularPerAS)
	}
	if len(res.CPEPerSession) != 2 {
		t.Errorf("CPE samples = %v", res.CPEPerSession)
	}
}

func TestAnalyzeTTLDetection(t *testing.T) {
	sessions := []netalyzr.Session{
		ttlSession(1, false, true, nat(1, 0, 10)),  // detected + mismatch
		ttlSession(1, false, true),                 // mismatch only
		ttlSession(2, false, false, nat(1, 0, 10)), // stateful, no translation
		ttlSession(3, false, false),                // nothing
		{ASN: 4},                                   // TTL never ran: ignored
	}
	q := AnalyzeTTLDetection(sessions)
	if q.DetectedMismatch != 1 || q.UndetectedMismatch != 1 ||
		q.DetectedMatch != 1 || q.UndetectedMatch != 1 || q.Total() != 4 {
		t.Errorf("quadrants = %+v", q)
	}
}

func stunSession(asn uint32, cellular bool, class stun.NATClass) netalyzr.Session {
	return netalyzr.Session{
		ASN: asn, Cellular: cellular, STUNRan: true,
		STUNResult: stun.Result{Class: class},
	}
}

func TestAnalyzeSTUN(t *testing.T) {
	cgn := map[uint32]bool{1: true, 2: true}
	sessions := []netalyzr.Session{
		// CGN AS 1 (cellular): symmetric and full cone sessions -> most
		// permissive is full cone.
		stunSession(1, true, stun.ClassSymmetric),
		stunSession(1, true, stun.ClassFullCone),
		// CGN AS 2 (non-cellular): symmetric only.
		stunSession(2, false, stun.ClassSymmetric),
		// Non-CGN AS 3: CPE sessions.
		stunSession(3, false, stun.ClassPortRestricted),
		stunSession(3, false, stun.ClassPortRestricted),
		stunSession(3, false, stun.ClassOpen), // not a NAT: excluded
	}
	res := AnalyzeSTUN(sessions, cgn)
	if res.CellularASes[stun.ClassFullCone] != 1 || res.CellularASes.Total() != 1 {
		t.Errorf("cellular ASes = %v", res.CellularASes)
	}
	if res.NonCellularASes[stun.ClassSymmetric] != 1 {
		t.Errorf("non-cellular ASes = %v", res.NonCellularASes)
	}
	if res.CPESessions[stun.ClassPortRestricted] != 2 || res.CPESessions.Total() != 2 {
		t.Errorf("CPE sessions = %v", res.CPESessions)
	}
}

func TestFilterNetworks(t *testing.T) {
	cgn := map[uint32]bool{}
	var sessions []netalyzr.Session
	for i := 0; i < 3; i++ {
		sessions = append(sessions, netalyzr.Session{ASN: 1})
	}
	sessions = append(sessions, netalyzr.Session{ASN: 2}) // only 1 session
	got := FilterNetworks(sessions, cgn, MinSessionsPerNetwork)
	if len(got) != 3 {
		t.Errorf("filtered = %d sessions, want 3", len(got))
	}
}

func TestAnalyzeInternalSpace(t *testing.T) {
	g := routing.NewGlobal()
	g.Announce(netaddr.MustParsePrefix("198.51.100.0/24"), 500)
	g.Announce(netaddr.MustParsePrefix("1.0.0.0/8"), 900)

	cgn := map[uint32]bool{1: true, 2: true, 3: true, 4: true}
	sessions := []netalyzr.Session{
		// AS 1 cellular: 100X internal.
		{ASN: 1, Cellular: true, IPdev: addr("100.64.0.9"), IPpub: addr("198.51.100.1")},
		// AS 2 cellular: unrouted 25/8 internal.
		{ASN: 2, Cellular: true, IPdev: addr("25.0.0.9"), IPpub: addr("198.51.100.2")},
		// AS 3 cellular: routed-elsewhere 1/8 internal.
		{ASN: 3, Cellular: true, IPdev: addr("1.0.0.9"), IPpub: addr("198.51.100.3")},
		// AS 4 non-cellular: CPE in 10X and 100X -> multiple.
		{ASN: 4, HasCPE: true, IPcpe: addr("10.1.2.3"), IPpub: addr("198.51.100.4")},
		{ASN: 4, HasCPE: true, IPcpe: addr("100.64.9.9"), IPpub: addr("198.51.100.4")},
	}
	res := AnalyzeInternalSpace(sessions, nil, cgn, g, []netaddr.Prefix{netaddr.MustParsePrefix("192.168.0.0/24")})
	if res.CellularUse[Use100] != 1 {
		t.Errorf("cellular 100X = %d", res.CellularUse[Use100])
	}
	if res.CellularUse[UseRoutable] != 2 {
		t.Errorf("cellular routable = %d", res.CellularUse[UseRoutable])
	}
	if res.NonCellularUse[UseMultiple] != 1 {
		t.Errorf("non-cellular multiple = %d", res.NonCellularUse[UseMultiple])
	}
	if len(res.RoutableASes) != 2 {
		t.Fatalf("routable ASes = %+v", res.RoutableASes)
	}
	// AS 3's block is actually routed by AS 900.
	for _, ru := range res.RoutableASes {
		if ru.ASN == 3 && !ru.Routed {
			t.Error("AS3 should be flagged as using routed space")
		}
		if ru.ASN == 2 && ru.Routed {
			t.Error("AS2 uses unrouted space")
		}
	}
}

func TestChunkExample(t *testing.T) {
	sessions := []netalyzr.Session{
		chunkSession(7, 8192, 4096, false),
		chunkSession(7, 20480, 4096, false),
		chunkSession(8, 1024, 60000, false),
	}
	bands := ChunkExample(sessions, 7)
	if len(bands) != 2 {
		t.Fatalf("bands = %d", len(bands))
	}
	for _, b := range bands {
		if int(b.Hi)-int(b.Lo) >= 4096 {
			t.Errorf("band [%d,%d] exceeds chunk", b.Lo, b.Hi)
		}
	}
}

func TestStringers(t *testing.T) {
	for _, s := range []PortStrategy{StrategyPreservation, StrategySequential, StrategyRandom} {
		if s.String() == "" {
			t.Error("strategy must render")
		}
	}
	for _, u := range []InternalUse{Use192, Use172, Use10, Use100, UseMultiple, UseRoutable} {
		if u.String() == "" {
			t.Error("use must render")
		}
	}
	for _, c := range []NetClass{NonCellularNoCGN, NonCellularCGN, CellularCGN, CellularNoCGN} {
		if c.String() == "" {
			t.Error("class must render")
		}
	}
}
