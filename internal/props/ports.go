// Package props implements the CGN property analyses of §6: port and IP
// address allocation (Fig 8, Fig 9, Table 6), pooling behavior, internal
// address space usage (Fig 7), topological properties (Fig 11), mapping
// timeouts (Fig 12), flow mapping types (Fig 13) and the TTL-enumeration
// detection quadrants (Table 7).
package props

import (
	"sort"

	"cgn/internal/netaddr"
	"cgn/internal/netalyzr"
	"cgn/internal/stats"
)

// PortStrategy is a session-level port allocation classification.
type PortStrategy uint8

// Session port strategies (§6.2).
const (
	// StrategyPreservation: at least PreservationMinFrac of the flows
	// kept their local source port.
	StrategyPreservation PortStrategy = iota
	// StrategySequential: consecutive observed ports differ by less than
	// SequentialMaxDiff.
	StrategySequential
	// StrategyRandom: anything else.
	StrategyRandom
)

// String names the strategy as in Figure 9.
func (p PortStrategy) String() string {
	switch p {
	case StrategyPreservation:
		return "preservation"
	case StrategySequential:
		return "sequential"
	case StrategyRandom:
		return "random"
	default:
		return "strategy(?)"
	}
}

// Classifier leeway from §6.2, footnote 12.
const (
	// PreservationMinFrac: fraction of preserved ports that already
	// counts as preservation (collisions force fallbacks).
	PreservationMinFrac = 0.20
	// SequentialMaxDiff: allowed gap between subsequent allocations
	// (other subscribers allocate in between).
	SequentialMaxDiff = 50
	// ChunkMinSessions and ChunkMaxSpan gate chunk-based allocation
	// detection: at least 20 random-translation sessions, each confined
	// to a port span below 16K.
	ChunkMinSessions = 20
	ChunkMaxSpan     = 16384
)

// PortConfig allows the ablation benches to sweep the classifier leeway;
// zero values take the paper's constants.
type PortConfig struct {
	PreservationMinFrac float64
	SequentialMaxDiff   int
	ChunkMinSessions    int
	ChunkMaxSpan        int
}

func (c PortConfig) withDefaults() PortConfig {
	if c.PreservationMinFrac == 0 {
		c.PreservationMinFrac = PreservationMinFrac
	}
	if c.SequentialMaxDiff == 0 {
		c.SequentialMaxDiff = SequentialMaxDiff
	}
	if c.ChunkMinSessions == 0 {
		c.ChunkMinSessions = ChunkMinSessions
	}
	if c.ChunkMaxSpan == 0 {
		c.ChunkMaxSpan = ChunkMaxSpan
	}
	return c
}

// ClassifySessionPorts classifies one session's flows. ok is false when
// the session has too few flows to judge.
func ClassifySessionPorts(flows []netalyzr.FlowObs, cfg PortConfig) (PortStrategy, bool) {
	cfg = cfg.withDefaults()
	if len(flows) < 2 {
		return 0, false
	}
	preserved := 0
	for _, f := range flows {
		if f.Observed.Port == f.LocalPort {
			preserved++
		}
	}
	if float64(preserved) >= cfg.PreservationMinFrac*float64(len(flows)) {
		return StrategyPreservation, true
	}
	sequential := true
	for i := 1; i < len(flows); i++ {
		d := int(flows[i].Observed.Port) - int(flows[i-1].Observed.Port)
		if d < 0 {
			d = -d
		}
		if d >= cfg.SequentialMaxDiff {
			sequential = false
			break
		}
	}
	if sequential {
		return StrategySequential, true
	}
	return StrategyRandom, true
}

// PortSpan returns the observed port range width of a session.
func PortSpan(flows []netalyzr.FlowObs) int {
	if len(flows) == 0 {
		return 0
	}
	lo, hi := flows[0].Observed.Port, flows[0].Observed.Port
	for _, f := range flows[1:] {
		if f.Observed.Port < lo {
			lo = f.Observed.Port
		}
		if f.Observed.Port > hi {
			hi = f.Observed.Port
		}
	}
	return int(hi) - int(lo)
}

// ASPorts aggregates one AS's port behavior.
type ASPorts struct {
	ASN      uint32
	Cellular bool
	// Strategies tallies session classifications.
	Strategies stats.Freq[PortStrategy]
	// RandomSpans collects port spans of random-translation sessions for
	// chunk detection.
	RandomSpans []int
	// ChunkDetected and ChunkSize report chunk-based allocation.
	ChunkDetected bool
	ChunkSize     int
	// MultiIPSessions counts sessions observing >1 external IP; Sessions
	// counts all classified sessions.
	Sessions        int
	MultiIPSessions int
}

// Dominant returns the AS's plurality strategy.
func (a *ASPorts) Dominant() PortStrategy {
	best, bestN := StrategyPreservation, -1
	for _, s := range []PortStrategy{StrategyPreservation, StrategySequential, StrategyRandom} {
		if n := a.Strategies[s]; n > bestN {
			best, bestN = s, n
		}
	}
	return best
}

// Pure reports whether all sessions agree on one strategy (the left side
// of Figure 9).
func (a *ASPorts) Pure() bool {
	nonZero := 0
	for _, n := range a.Strategies {
		if n > 0 {
			nonZero++
		}
	}
	return nonZero == 1
}

// ArbitraryPoolingFrac is the session share that saw multiple external
// IPs; above PoolingArbitraryFrac the AS pools arbitrarily (§6.2).
func (a *ASPorts) ArbitraryPoolingFrac() float64 {
	if a.Sessions == 0 {
		return 0
	}
	return float64(a.MultiIPSessions) / float64(a.Sessions)
}

// PoolingArbitraryFrac is the §6.2 arbitrary-pooling session threshold.
const PoolingArbitraryFrac = 0.6

// PortResult is the full §6.2 analysis.
type PortResult struct {
	Cfg PortConfig
	// PerAS holds aggregates for CGN-positive ASes only (the population
	// Figures 8/9 and Table 6 describe).
	PerAS map[uint32]*ASPorts
	// HistPreserved and HistTranslated are the Figure 8(a) histograms of
	// server-observed source ports: OS-chosen (preserved) vs
	// CGN-renumbered.
	HistPreserved, HistTranslated *stats.Histogram
	// CPEModels maps router model to (sessions, port-preserving
	// sessions) over non-CGN sessions: Figure 8(b).
	CPEModels map[string]*ModelStat
}

// ModelStat is one Figure 8(b) point.
type ModelStat struct {
	Sessions   int
	Preserving int
}

// AnalyzePorts runs the §6.2 pipeline. cgnASes is the combined detection
// verdict (BitTorrent ∪ Netalyzr).
func AnalyzePorts(sessions []netalyzr.Session, cgnASes map[uint32]bool, cfg PortConfig) *PortResult {
	cfg = cfg.withDefaults()
	res := &PortResult{
		Cfg:            cfg,
		PerAS:          make(map[uint32]*ASPorts),
		HistPreserved:  stats.NewHistogram(0, 65536, 64),
		HistTranslated: stats.NewHistogram(0, 65536, 64),
		CPEModels:      make(map[string]*ModelStat),
	}
	for _, s := range sessions {
		strat, ok := ClassifySessionPorts(s.Flows, cfg)
		if !ok {
			continue
		}
		isCGN := cgnASes[s.ASN]
		// Figure 8(a): the port population by translation status.
		for _, f := range s.Flows {
			if strat == StrategyPreservation {
				res.HistPreserved.Add(float64(f.Observed.Port))
			} else if isCGN {
				res.HistTranslated.Add(float64(f.Observed.Port))
			}
		}
		// Figure 8(b): CPE models in non-CGN sessions.
		if !isCGN && s.HasCPE && s.CPEModel != "" {
			ms := res.CPEModels[s.CPEModel]
			if ms == nil {
				ms = &ModelStat{}
				res.CPEModels[s.CPEModel] = ms
			}
			ms.Sessions++
			if strat == StrategyPreservation {
				ms.Preserving++
			}
		}
		if !isCGN {
			continue
		}
		as := res.PerAS[s.ASN]
		if as == nil {
			as = &ASPorts{ASN: s.ASN, Cellular: s.Cellular, Strategies: stats.Freq[PortStrategy]{}}
			res.PerAS[s.ASN] = as
		}
		as.Sessions++
		as.Strategies.Add(strat)
		if len(s.ExternalIPs()) > 1 {
			as.MultiIPSessions++
		}
		if strat == StrategyRandom {
			as.RandomSpans = append(as.RandomSpans, PortSpan(s.Flows))
		}
	}
	// Chunk detection per AS.
	for _, as := range res.PerAS {
		if len(as.RandomSpans) < cfg.ChunkMinSessions {
			continue
		}
		maxSpan := 0
		within := true
		for _, span := range as.RandomSpans {
			if span >= cfg.ChunkMaxSpan {
				within = false
				break
			}
			if span > maxSpan {
				maxSpan = span
			}
		}
		if within {
			as.ChunkDetected = true
			as.ChunkSize = nextPow2(maxSpan)
		}
	}
	return res
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ChunkASes returns chunk-detected ASes sorted by ASN (Table 6 rows).
func (r *PortResult) ChunkASes() []*ASPorts {
	var out []*ASPorts
	for _, as := range r.PerAS {
		if as.ChunkDetected {
			out = append(out, as)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ASN < out[j].ASN })
	return out
}

// DominantShares tallies Table 6's dominant-strategy distribution for one
// population (cellular or not).
func (r *PortResult) DominantShares(cellular bool) stats.Freq[PortStrategy] {
	f := stats.Freq[PortStrategy]{}
	for _, as := range r.PerAS {
		if as.Cellular == cellular {
			f.Add(as.Dominant())
		}
	}
	return f
}

// ChunkExample extracts per-session observed port bands for one AS — the
// Figure 8(c) visualization data.
func ChunkExample(sessions []netalyzr.Session, asn uint32) []PortBand {
	var out []PortBand
	for _, s := range sessions {
		if s.ASN != asn || len(s.Flows) == 0 {
			continue
		}
		lo, hi := s.Flows[0].Observed.Port, s.Flows[0].Observed.Port
		for _, f := range s.Flows[1:] {
			if f.Observed.Port < lo {
				lo = f.Observed.Port
			}
			if f.Observed.Port > hi {
				hi = f.Observed.Port
			}
		}
		out = append(out, PortBand{Lo: lo, Hi: hi})
	}
	return out
}

// PortBand is one session's observed port range.
type PortBand struct {
	Lo, Hi uint16
}

// InternalUse classifies one CGN AS's internal address space for
// Figure 7(a).
type InternalUse uint8

// Internal address space categories of Figure 7(a).
const (
	Use192 InternalUse = iota
	Use172
	Use10
	Use100
	UseMultiple
	UseRoutable
)

// String names the category.
func (u InternalUse) String() string {
	switch u {
	case Use192:
		return "192X"
	case Use172:
		return "172X"
	case Use10:
		return "10X"
	case Use100:
		return "100X"
	case UseMultiple:
		return "multiple"
	case UseRoutable:
		return "private & routable"
	default:
		return "use(?)"
	}
}

// rangeUse maps a reserved range to its use category.
func rangeUse(r netaddr.Range) (InternalUse, bool) {
	switch r {
	case netaddr.Range192:
		return Use192, true
	case netaddr.Range172:
		return Use172, true
	case netaddr.Range10:
		return Use10, true
	case netaddr.Range100:
		return Use100, true
	default:
		return 0, false
	}
}
