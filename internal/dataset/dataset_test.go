package dataset

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"cgn/internal/crawler"
	"cgn/internal/detect"
	"cgn/internal/internet"
	"cgn/internal/krpc"
	"cgn/internal/netaddr"
	"cgn/internal/routing"
)

func sampleCrawl() *crawler.Dataset {
	ds := crawler.NewDataset()
	mk := func(ep string, b byte) crawler.PeerKey {
		var id krpc.NodeID
		for i := range id {
			id[i] = b
		}
		return crawler.PeerKey{EP: netaddr.MustParseEndpoint(ep), ID: id}
	}
	q1 := mk("198.51.100.1:6881", 1)
	q2 := mk("198.51.100.2:51413", 2)
	internal := mk("10.0.0.9:6881", 3)
	ds.Queried[q1] = true
	ds.QueriedASN[q1] = 65001
	ds.Queried[q2] = true
	ds.QueriedASN[q2] = 65002
	ds.Learned[q1] = true
	ds.Learned[q2] = true
	ds.Learned[internal] = true
	ds.PingResponded[q1] = true
	ds.Leaks = append(ds.Leaks, crawler.LeakRecord{Leaker: q1, LeakerASN: 65001, Internal: internal})
	return ds
}

func TestCrawlRoundTrip(t *testing.T) {
	in := sampleCrawl()
	b, err := MarshalCrawl(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalCrawl(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Queried, out.Queried) ||
		!reflect.DeepEqual(in.QueriedASN, out.QueriedASN) ||
		!reflect.DeepEqual(in.Learned, out.Learned) ||
		!reflect.DeepEqual(in.PingResponded, out.PingResponded) ||
		!reflect.DeepEqual(in.Leaks, out.Leaks) {
		t.Error("crawl dataset round trip mismatch")
	}
}

func TestCrawlMarshalDeterministic(t *testing.T) {
	b1, _ := MarshalCrawl(sampleCrawl())
	b2, _ := MarshalCrawl(sampleCrawl())
	if !bytes.Equal(b1, b2) {
		t.Error("marshaling must be deterministic")
	}
}

func TestCrawlSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crawl.json")
	in := sampleCrawl()
	if err := SaveCrawl(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := LoadCrawl(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Queried) != len(in.Queried) || len(out.Leaks) != len(in.Leaks) {
		t.Error("save/load lost records")
	}
}

func TestCrawlRejectsBadInput(t *testing.T) {
	if _, err := UnmarshalCrawl([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := UnmarshalCrawl([]byte(`{"queried":[{"ep":"1.2.3.4:5","id":"zz"}]}`)); err == nil {
		t.Error("bad hex id accepted")
	}
	if _, err := UnmarshalCrawl([]byte(`{"queried":[{"ep":"1.2.3.4:5","id":"aabb"}]}`)); err == nil {
		t.Error("short id accepted")
	}
}

// The real proof: a crawl survives the disk and the detection pipeline
// produces identical verdicts on the reloaded copy.
func TestAnalysisIdenticalAfterRoundTrip(t *testing.T) {
	w := internet.Build(internet.Small())
	ds := w.RunCrawl(internet.DefaultCrawlOptions())

	b, err := MarshalCrawl(ds)
	if err != nil {
		t.Fatal(err)
	}
	ds2, err := UnmarshalCrawl(b)
	if err != nil {
		t.Fatal(err)
	}
	r1 := detect.AnalyzeBitTorrent(ds, w.BTDetectConfig())
	r2 := detect.AnalyzeBitTorrent(ds2, w.BTDetectConfig())
	if !reflect.DeepEqual(r1.PositiveASes(), r2.PositiveASes()) {
		t.Error("verdicts differ after persistence round trip")
	}
	if !reflect.DeepEqual(r1.CoveredASes(), r2.CoveredASes()) {
		t.Error("coverage differs after persistence round trip")
	}
}

func TestSessionsRoundTrip(t *testing.T) {
	w := internet.Build(internet.Small())
	sessions := w.RunNetalyzr()
	if len(sessions) == 0 {
		t.Fatal("no sessions")
	}
	b, err := MarshalSessions(sessions)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalSessions(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sessions, out) {
		t.Error("sessions round trip mismatch")
	}
	// Reloaded sessions must drive the detection identically.
	r1 := detect.AnalyzeCellular(sessions, w.Net.Global(), detect.NLConfig{})
	r2 := detect.AnalyzeCellular(out, w.Net.Global(), detect.NLConfig{})
	if !reflect.DeepEqual(r1.PositiveASes(), r2.PositiveASes()) {
		t.Error("cellular verdicts differ after persistence")
	}
}

func TestRoutesRoundTrip(t *testing.T) {
	g := routing.NewGlobal()
	g.Announce(netaddr.MustParsePrefix("198.51.100.0/24"), 65001)
	g.Announce(netaddr.MustParsePrefix("20.0.0.0/16"), 65002)
	b, err := MarshalRoutes(g)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalRoutes(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumPrefixes() != 2 {
		t.Errorf("prefixes = %d", out.NumPrefixes())
	}
	if asn, ok := out.OriginAS(netaddr.MustParseAddr("198.51.100.7")); !ok || asn != 65001 {
		t.Errorf("OriginAS after round trip = %d, %v", asn, ok)
	}
	if !out.Routed(netaddr.MustParseAddr("20.0.5.5")) {
		t.Error("routed flag lost")
	}
	if out.Routed(netaddr.MustParseAddr("25.0.0.1")) {
		t.Error("unannounced space became routed")
	}
}

func TestRoutesSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "routes.json")
	g := routing.NewGlobal()
	g.Announce(netaddr.MustParsePrefix("1.0.0.0/8"), 900)
	if err := SaveRoutes(path, g); err != nil {
		t.Fatal(err)
	}
	out, err := LoadRoutes(path)
	if err != nil || out.NumPrefixes() != 1 {
		t.Fatalf("load = %v, %v", out, err)
	}
}

func TestSessionsSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.json")
	w := internet.Build(internet.Small())
	sessions := w.RunNetalyzr()[:3]
	if err := SaveSessions(path, sessions); err != nil {
		t.Fatal(err)
	}
	out, err := LoadSessions(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("loaded %d sessions", len(out))
	}
}
