// Package dataset persists measurement campaigns as JSON, so crawls and
// session batteries can be captured once (cmd/dhtcrawl -o, cmd/netalyzr
// -o) and re-analyzed offline — the separation between collection and
// analysis the paper's own workflow had.
package dataset

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"cgn/internal/crawler"
	"cgn/internal/krpc"
	"cgn/internal/netaddr"
	"cgn/internal/netalyzr"
	"cgn/internal/routing"
)

// peerJSON serializes a crawler.PeerKey.
type peerJSON struct {
	EP netaddr.Endpoint `json:"ep"`
	ID string           `json:"id"`
	// ASN annotates queried peers; zero elsewhere.
	ASN uint32 `json:"asn,omitempty"`
}

func toPeerJSON(k crawler.PeerKey, asn uint32) peerJSON {
	return peerJSON{EP: k.EP, ID: hex.EncodeToString(k.ID[:]), ASN: asn}
}

func (p peerJSON) key() (crawler.PeerKey, error) {
	raw, err := hex.DecodeString(p.ID)
	if err != nil {
		return crawler.PeerKey{}, fmt.Errorf("dataset: bad node id %q: %v", p.ID, err)
	}
	id, ok := krpc.NodeIDFromBytes(raw)
	if !ok {
		return crawler.PeerKey{}, fmt.Errorf("dataset: bad node id length in %q", p.ID)
	}
	return crawler.PeerKey{EP: p.EP, ID: id}, nil
}

// leakJSON serializes one crawler.LeakRecord.
type leakJSON struct {
	Leaker   peerJSON `json:"leaker"`
	ASN      uint32   `json:"asn"`
	Internal peerJSON `json:"internal"`
}

// crawlJSON is the on-disk form of a crawl dataset.
type crawlJSON struct {
	Queried       []peerJSON `json:"queried"`
	Learned       []peerJSON `json:"learned"`
	PingResponded []peerJSON `json:"ping_responded"`
	Leaks         []leakJSON `json:"leaks"`
}

func sortedPeers(set map[crawler.PeerKey]bool, asn map[crawler.PeerKey]uint32) []peerJSON {
	out := make([]peerJSON, 0, len(set))
	for k := range set {
		var a uint32
		if asn != nil {
			a = asn[k]
		}
		out = append(out, toPeerJSON(k, a))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EP != out[j].EP {
			return out[i].EP.String() < out[j].EP.String()
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// MarshalCrawl renders a crawl dataset as deterministic JSON.
func MarshalCrawl(ds *crawler.Dataset) ([]byte, error) {
	cj := crawlJSON{
		Queried:       sortedPeers(ds.Queried, ds.QueriedASN),
		Learned:       sortedPeers(ds.Learned, nil),
		PingResponded: sortedPeers(ds.PingResponded, nil),
	}
	for _, l := range ds.Leaks {
		cj.Leaks = append(cj.Leaks, leakJSON{
			Leaker:   toPeerJSON(l.Leaker, 0),
			ASN:      l.LeakerASN,
			Internal: toPeerJSON(l.Internal, 0),
		})
	}
	return json.MarshalIndent(cj, "", " ")
}

// UnmarshalCrawl parses a crawl dataset from JSON.
func UnmarshalCrawl(data []byte) (*crawler.Dataset, error) {
	var cj crawlJSON
	if err := json.Unmarshal(data, &cj); err != nil {
		return nil, fmt.Errorf("dataset: %v", err)
	}
	ds := crawler.NewDataset()
	for _, p := range cj.Queried {
		k, err := p.key()
		if err != nil {
			return nil, err
		}
		ds.Queried[k] = true
		ds.QueriedASN[k] = p.ASN
	}
	for _, p := range cj.Learned {
		k, err := p.key()
		if err != nil {
			return nil, err
		}
		ds.Learned[k] = true
	}
	for _, p := range cj.PingResponded {
		k, err := p.key()
		if err != nil {
			return nil, err
		}
		ds.PingResponded[k] = true
	}
	for _, l := range cj.Leaks {
		leaker, err := l.Leaker.key()
		if err != nil {
			return nil, err
		}
		internal, err := l.Internal.key()
		if err != nil {
			return nil, err
		}
		ds.Leaks = append(ds.Leaks, crawler.LeakRecord{
			Leaker: leaker, LeakerASN: l.ASN, Internal: internal,
		})
	}
	return ds, nil
}

// SaveCrawl writes a crawl dataset to path.
func SaveCrawl(path string, ds *crawler.Dataset) error {
	b, err := MarshalCrawl(ds)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadCrawl reads a crawl dataset from path.
func LoadCrawl(path string) (*crawler.Dataset, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalCrawl(b)
}

// MarshalSessions renders Netalyzr sessions as JSON. Session and its
// nested types are fully exported, so plain encoding applies; the netaddr
// text marshalers keep addresses human-readable.
func MarshalSessions(sessions []netalyzr.Session) ([]byte, error) {
	return json.MarshalIndent(sessions, "", " ")
}

// UnmarshalSessions parses a session batch from JSON.
func UnmarshalSessions(data []byte) ([]netalyzr.Session, error) {
	var out []netalyzr.Session
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("dataset: %v", err)
	}
	return out, nil
}

// SaveSessions writes a session batch to path.
func SaveSessions(path string, sessions []netalyzr.Session) error {
	b, err := MarshalSessions(sessions)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadSessions reads a session batch from path.
func LoadSessions(path string) ([]netalyzr.Session, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalSessions(b)
}

// routeJSON is one announced prefix.
type routeJSON struct {
	Prefix netaddr.Prefix `json:"prefix"`
	ASN    uint32         `json:"asn"`
}

// MarshalRoutes snapshots a global routing table (deterministic order).
func MarshalRoutes(g *routing.Global) ([]byte, error) {
	var routes []routeJSON
	g.Walk(func(p netaddr.Prefix, asn uint32) bool {
		routes = append(routes, routeJSON{Prefix: p, ASN: asn})
		return true
	})
	return json.MarshalIndent(routes, "", " ")
}

// UnmarshalRoutes rebuilds a global routing table from a snapshot.
func UnmarshalRoutes(data []byte) (*routing.Global, error) {
	var routes []routeJSON
	if err := json.Unmarshal(data, &routes); err != nil {
		return nil, fmt.Errorf("dataset: %v", err)
	}
	g := routing.NewGlobal()
	for _, r := range routes {
		g.Announce(r.Prefix, r.ASN)
	}
	return g, nil
}

// SaveRoutes writes a routing snapshot to path.
func SaveRoutes(path string, g *routing.Global) error {
	b, err := MarshalRoutes(g)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// LoadRoutes reads a routing snapshot from path.
func LoadRoutes(path string) (*routing.Global, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return UnmarshalRoutes(b)
}
