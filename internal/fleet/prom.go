package fleet

import (
	"fmt"
	"io"
	"strings"

	"cgn/internal/nat"
)

// RealmMetrics is one carrier's instantaneous observability view.
type RealmMetrics struct {
	ID          string
	Cellular    bool
	Enabled     bool
	Subscribers int
	// Port-space occupancy of the live engine (zero while disabled).
	InUse, Capacity int
	Util            float64
	Live            int
	// Cumulative over the run, spanning engine re-provisionings.
	Created, Expired, Refreshes, Failures uint64
	// QuotaDrops counts allocations refused by the per-subscriber port
	// quota; RateLimited counts token-bucket refusals; Evictions counts
	// idle mappings reclaimed by the evict-oldest-idle policy.
	QuotaDrops  uint64
	RateLimited uint64
	Evictions   uint64
	// LanesDown counts the carrier's pool lanes currently dark to a
	// fault-injection outage (always zero in the legacy universe).
	LanesDown int
}

// MetricsSnapshot is the simulation's instantaneous observability
// view, taken between day steps — what cgnsimd's /metrics endpoint
// serves.
type MetricsSnapshot struct {
	Day           int
	Days          int
	TicksPerDay   int
	Subscribers   int
	Carriers      int
	ActiveCGN     int
	EventsApplied int
	Created       uint64
	Expired       uint64
	Refreshes     uint64
	Failures      uint64
	// LanesDown is the fleet-wide count of pool lanes currently dark;
	// FaultsInjected counts applied fault events, indexed lane-down,
	// lane-up, restart.
	LanesDown      int
	FaultsInjected [3]uint64
	Realms         []RealmMetrics
}

// Metrics captures the current observability snapshot. Call between
// day steps (Sim is not concurrent-safe); the snapshot itself is a
// plain value, safe to serve from any goroutine afterwards.
func (s *Sim) Metrics() MetricsSnapshot {
	m := MetricsSnapshot{
		Day:            s.day,
		Days:           s.cfg.Days,
		TicksPerDay:    s.cfg.Profile.DayTicks,
		Carriers:       len(s.realms),
		EventsApplied:  s.applied,
		FaultsInjected: s.faultsInjected,
	}
	for _, r := range s.realms {
		rm := RealmMetrics{
			ID:          r.spec.ID,
			Cellular:    r.spec.Cellular,
			Enabled:     r.enabled,
			Subscribers: r.activeSubscribers(),
			Created:     r.created,
			Expired:     r.expired,
			Refreshes:   r.refreshes,
			Failures:    r.failures(),
		}
		if r.eng != nil {
			ps := r.eng.PortStats()
			rm.InUse, rm.Capacity = ps.InUse, ps.Capacity
			if udpCapacity := ps.Capacity / 2; udpCapacity > 0 {
				rm.Util = float64(ps.InUse) / float64(udpCapacity)
			}
			rm.Live = r.eng.NumMappings()
			rm.QuotaDrops = ps.QuotaDrops
			rm.RateLimited = ps.RateLimited
			rm.Evictions = ps.Evictions
			if sn, ok := r.eng.(*nat.Sharded); ok {
				rm.LanesDown = sn.LanesDown()
			}
			m.ActiveCGN++
		}
		m.LanesDown += rm.LanesDown
		m.Subscribers += rm.Subscribers
		m.Created += rm.Created
		m.Expired += rm.Expired
		m.Refreshes += rm.Refreshes
		m.Failures += rm.Failures
		m.Realms = append(m.Realms, rm)
	}
	return m
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE preambles, one family per
// series, realm-labelled where per-carrier. Hand-written on net/http —
// no client library, per the repository's zero-dependency rule.
func WritePrometheus(w io.Writer, m MetricsSnapshot) {
	gauge := func(name, help string, write func()) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		write()
	}
	counter := func(name, help string, write func()) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		write()
	}
	gauge("cgnsimd_virtual_day", "Virtual days completed by the fleet simulation.", func() {
		fmt.Fprintf(w, "cgnsimd_virtual_day %d\n", m.Day)
	})
	gauge("cgnsimd_virtual_horizon_days", "Configured virtual horizon in days.", func() {
		fmt.Fprintf(w, "cgnsimd_virtual_horizon_days %d\n", m.Days)
	})
	gauge("cgnsimd_subscribers", "Active subscribers across the fleet.", func() {
		fmt.Fprintf(w, "cgnsimd_subscribers %d\n", m.Subscribers)
	})
	gauge("cgnsimd_carriers", "Carriers in the fleet.", func() {
		fmt.Fprintf(w, "cgnsimd_carriers %d\n", m.Carriers)
	})
	gauge("cgnsimd_carriers_cgn_active", "Carriers currently running CGN.", func() {
		fmt.Fprintf(w, "cgnsimd_carriers_cgn_active %d\n", m.ActiveCGN)
	})
	counter("cgnsimd_timeline_events_applied_total", "Scripted fleet events applied so far.", func() {
		fmt.Fprintf(w, "cgnsimd_timeline_events_applied_total %d\n", m.EventsApplied)
	})
	gauge("cgnsimd_lanes_down", "Pool lanes currently dark to a fault-injection outage, fleet-wide.", func() {
		fmt.Fprintf(w, "cgnsimd_lanes_down %d\n", m.LanesDown)
	})
	counter("cgnsimd_faults_injected_total", "Fault events applied so far, by kind.", func() {
		for k, kind := range []string{"lane-down", "lane-up", "restart"} {
			fmt.Fprintf(w, "cgnsimd_faults_injected_total{kind=%q} %d\n", kind, m.FaultsInjected[k])
		}
	})
	gauge("cgnsimd_carrier_cgn_enabled", "Whether the carrier currently runs CGN (1) or not (0).", func() {
		for i := range m.Realms {
			r := &m.Realms[i]
			v := 0
			if r.Enabled {
				v = 1
			}
			fmt.Fprintf(w, "cgnsimd_carrier_cgn_enabled{realm=%q} %d\n", promLabel(r.ID), v)
		}
	})
	gauge("cgnsimd_port_inuse", "External ports currently allocated, per realm.", func() {
		for i := range m.Realms {
			r := &m.Realms[i]
			fmt.Fprintf(w, "cgnsimd_port_inuse{realm=%q} %d\n", promLabel(r.ID), r.InUse)
		}
	})
	gauge("cgnsimd_port_capacity", "External port capacity (both protocols), per realm.", func() {
		for i := range m.Realms {
			r := &m.Realms[i]
			fmt.Fprintf(w, "cgnsimd_port_capacity{realm=%q} %d\n", promLabel(r.ID), r.Capacity)
		}
	})
	gauge("cgnsimd_port_utilization", "Instantaneous UDP port-space utilization, per realm.", func() {
		for i := range m.Realms {
			r := &m.Realms[i]
			fmt.Fprintf(w, "cgnsimd_port_utilization{realm=%q} %g\n", promLabel(r.ID), r.Util)
		}
	})
	gauge("cgnsimd_mappings_live", "Live NAT mappings, per realm.", func() {
		for i := range m.Realms {
			r := &m.Realms[i]
			fmt.Fprintf(w, "cgnsimd_mappings_live{realm=%q} %d\n", promLabel(r.ID), r.Live)
		}
	})
	counter("cgnsimd_mappings_created_total", "NAT mappings created over the run, per realm.", func() {
		for i := range m.Realms {
			r := &m.Realms[i]
			fmt.Fprintf(w, "cgnsimd_mappings_created_total{realm=%q} %d\n", promLabel(r.ID), r.Created)
		}
	})
	counter("cgnsimd_mappings_expired_total", "NAT mappings expired over the run, per realm.", func() {
		for i := range m.Realms {
			r := &m.Realms[i]
			fmt.Fprintf(w, "cgnsimd_mappings_expired_total{realm=%q} %d\n", promLabel(r.ID), r.Expired)
		}
	})
	counter("cgnsimd_refreshes_total", "Successful mapping keepalives, per realm.", func() {
		for i := range m.Realms {
			r := &m.Realms[i]
			fmt.Fprintf(w, "cgnsimd_refreshes_total{realm=%q} %d\n", promLabel(r.ID), r.Refreshes)
		}
	})
	counter("cgnsimd_allocation_failures_total", "Port allocation failures (space plus quota), per realm.", func() {
		for i := range m.Realms {
			r := &m.Realms[i]
			fmt.Fprintf(w, "cgnsimd_allocation_failures_total{realm=%q} %d\n", promLabel(r.ID), r.Failures)
		}
	})
	// Historical note: quota refusals were exported as
	// cgnsimd_quota_evictions_total before the eviction policy existed —
	// a misnomer, since a quota drop refuses the allocation and evicts
	// nothing. The family below carries the refusal count under its
	// correct name; cgnsimd_quota_evictions_total now reports actual
	// evictions (EvictOldestIdle reclamations).
	counter("cgnsimd_quota_refusals_total", "Allocations refused by the per-subscriber port quota, per realm.", func() {
		for i := range m.Realms {
			r := &m.Realms[i]
			fmt.Fprintf(w, "cgnsimd_quota_refusals_total{realm=%q} %d\n", promLabel(r.ID), r.QuotaDrops)
		}
	})
	counter("cgnsimd_rate_limited_total", "Allocations refused by the per-subscriber token-bucket rate limiter, per realm.", func() {
		for i := range m.Realms {
			r := &m.Realms[i]
			fmt.Fprintf(w, "cgnsimd_rate_limited_total{realm=%q} %d\n", promLabel(r.ID), r.RateLimited)
		}
	})
	counter("cgnsimd_quota_evictions_total", "Idle mappings evicted to make room for new allocations (EvictOldestIdle policy), per realm.", func() {
		for i := range m.Realms {
			r := &m.Realms[i]
			fmt.Fprintf(w, "cgnsimd_quota_evictions_total{realm=%q} %d\n", promLabel(r.ID), r.Evictions)
		}
	})
	gauge("cgnsimd_subscribers_by_realm", "Active subscribers, per realm.", func() {
		for i := range m.Realms {
			r := &m.Realms[i]
			fmt.Fprintf(w, "cgnsimd_subscribers_by_realm{realm=%q} %d\n", promLabel(r.ID), r.Subscribers)
		}
	})
}

// promLabel sanitizes a realm ID for use inside a quoted label value
// (the %q verb handles quotes and backslashes; newlines never occur in
// realm IDs, but strip them anyway).
func promLabel(id string) string {
	return strings.NewReplacer("\n", " ", "\r", " ").Replace(id)
}
