// Package fleet is the longitudinal simulation engine behind cgnsimd:
// months of virtual time over an *evolving* carrier fleet. Where
// internal/traffic replays a fixed realm set over a fixed span, fleet
// drives a scripted — deterministic, seeded — event timeline: carriers
// enable or disable CGN mid-run, pools get re-provisioned, subscriber
// populations grow and churn. This is the longitudinal axis "Tracking
// the Big NAT across Europe and the U.S." (Mandalari et al.) measures:
// CGN deployment is not a snapshot, and detection confidence is a
// function of how long you watch.
//
// The engine follows the repository's determinism discipline. Virtual
// time only — the clock is the Unix epoch plus tick × TickStep, never
// the wall. One seed, one config, one Result, byte-identical at any
// Workers value (realms accumulate privately and merge in input order)
// and at any Shards value >= 1 (the intra-realm sharded NAT is
// shard-count-invariant by construction; Shards == 0 selects the legacy
// single-table engine, a distinct universe as everywhere else in the
// repository). Memory is bounded regardless of virtual duration:
// per-tick series are never kept, aggregation is windowed into
// fixed-size day rings sized by the longest observation window, and
// histograms are dense over bounded port counts.
//
// State is checkpointable at day boundaries: Checkpoint captures realm
// populations, live flows, RNG positions, histograms, rings and the
// complete NAT state (via nat.Snapshot), and Resume continues
// byte-identically — the restored run's per-realm StateDigests and E21
// detection output match an uninterrupted run exactly. cgnsimd writes
// these checkpoints atomically on a virtual-time cadence and on
// SIGTERM.
package fleet

import (
	"fmt"
	"sort"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/traffic"
)

// CarrierSpec describes one carrier in the fleet at day zero.
type CarrierSpec struct {
	// ID labels the carrier in results and metrics (e.g. "AS64512/0").
	ID       string
	Cellular bool
	// NAT is the carrier's CGN template. ExternalIPs sets the initial
	// pool; re-provisioning events replace the pool wholesale. Ignored
	// while the carrier has CGN disabled.
	NAT nat.Config
	// Subscribers is the initial population size.
	Subscribers int
	// CGNEnabled is the day-zero deployment state. Carriers that start
	// disabled and are never enabled by the timeline are the ground-truth
	// negatives of the E21 detection scoring.
	CGNEnabled bool
}

// EventKind enumerates timeline events.
type EventKind uint8

// Timeline event kinds, in within-day application order.
const (
	// EventDisable turns the carrier's CGN off: the NAT and every live
	// mapping disappear (subscribers go back to public addressing).
	EventDisable EventKind = iota
	// EventReprovision replaces the carrier's external pool with Arg
	// fresh IPs. Real re-provisionings reset bindings; so does this —
	// the carrier gets a fresh NAT with a fresh allocation stream.
	EventReprovision
	// EventEnable turns the carrier's CGN on with its current pool.
	EventEnable
	// EventGrow adds Arg subscribers to the population.
	EventGrow
	// EventChurn deactivates the Arg longest-standing active subscribers
	// and adds Arg fresh ones — subscriber turnover at constant size.
	EventChurn
	// EventLaneDown takes one pool IP (sharded-engine lane Arg, wrapped
	// modulo the pool size) offline: its mappings drop and its
	// subscribers re-pin to surviving lanes by the deterministic
	// failover hash. Requires the sharded universe (Shards >= 1) — the
	// lane is the fault's unit. The engine keeps at least one lane up;
	// a no-op on disabled carriers.
	EventLaneDown
	// EventLaneUp restores lane Arg; its subscribers route home again.
	// Failover-era mappings stay live on the lanes that carried them and
	// idle out normally.
	EventLaneUp
	// EventRestart restarts the carrier's whole NAT engine: all mapping
	// state is lost (no expiry hooks — a crash, not a timeout), live
	// flows re-establish through the refresh fallback, and lanes that
	// were down stay down. Works in both engine universes.
	EventRestart
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EventDisable:
		return "disable-cgn"
	case EventReprovision:
		return "reprovision"
	case EventEnable:
		return "enable-cgn"
	case EventGrow:
		return "grow"
	case EventChurn:
		return "churn"
	case EventLaneDown:
		return "lane-down"
	case EventLaneUp:
		return "lane-up"
	case EventRestart:
		return "restart"
	default:
		return fmt.Sprintf("EventKind(%d)", k)
	}
}

// Event is one scripted fleet change, applied at the start of virtual
// day Day (before any of that day's ticks).
type Event struct {
	Day     int
	Carrier int
	Kind    EventKind
	// Arg is the kind's parameter: pool size for EventReprovision,
	// subscriber count for EventGrow/EventChurn, unused otherwise.
	Arg int
}

// Timeline is the scripted event sequence, sorted by (Day, Carrier,
// Kind, Arg). Sorting is part of the determinism contract: events of
// one day apply in this order whatever order they were scripted in.
type Timeline struct {
	Events []Event
}

// sorted returns the events in canonical application order.
func (tl Timeline) sorted() []Event {
	out := make([]Event, len(tl.Events))
	copy(out, tl.Events)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Day != b.Day {
			return a.Day < b.Day
		}
		if a.Carrier != b.Carrier {
			return a.Carrier < b.Carrier
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Arg < b.Arg
	})
	return out
}

// ObservationConfig parameterizes the E21 detection scoring: how a
// longitudinal observer — a vantage point portfolio in the Mandalari
// et al. sense — accumulates per-carrier evidence day by day, and how
// the detector thresholds it per observation window.
type ObservationConfig struct {
	// Windows are the observation durations to score, in virtual days,
	// ascending. Windows are end-anchored: a W-day window is the run's
	// last W days, so every window describes the same observer stopping
	// at the same moment after having watched for W days. Windows longer
	// than the run are skipped. Defaults to 1,3,7,14,28,56.
	Windows []int
	// VantageProb is the per-day probability that a CGN-active carrier
	// (enabled, with at least one mapping created that day) yields a
	// positive evidence sample — the chance the observer's vantage
	// points land behind the CGN and the tests run that day.
	// Defaults to 0.35.
	VantageProb float64
	// NoiseProb is the per-day probability of a spurious positive sample
	// for any carrier (measurement artifacts, transient middleboxes).
	// This is what makes short windows imprecise. Defaults to 0.02.
	NoiseProb float64
	// ThresholdPer sets the detector's evidence threshold: a carrier is
	// declared CGN over window W when it has at least
	// max(1, W/ThresholdPer) positive days in the last W. Scaling the
	// threshold with the window keeps precision roughly flat while
	// recall grows with duration — the paper's longitudinal finding.
	// Defaults to 14.
	ThresholdPer int
}

// WithDefaults fills unset fields.
func (o ObservationConfig) WithDefaults() ObservationConfig {
	if len(o.Windows) == 0 {
		o.Windows = []int{1, 3, 7, 14, 28, 56}
	}
	if o.VantageProb == 0 {
		o.VantageProb = 0.35
	}
	if o.NoiseProb == 0 {
		o.NoiseProb = 0.02
	}
	if o.ThresholdPer == 0 {
		o.ThresholdPer = 14
	}
	return o
}

// Validate checks the observation parameters.
func (o ObservationConfig) Validate() error {
	d := o.WithDefaults()
	last := 0
	for _, w := range d.Windows {
		if w <= last {
			return fmt.Errorf("fleet: observation windows must be positive and ascending, got %v", d.Windows)
		}
		last = w
	}
	if d.VantageProb < 0 || d.VantageProb > 1 {
		return fmt.Errorf("fleet: VantageProb = %v outside [0,1]", d.VantageProb)
	}
	if d.NoiseProb < 0 || d.NoiseProb > 1 {
		return fmt.Errorf("fleet: NoiseProb = %v outside [0,1]", d.NoiseProb)
	}
	if d.ThresholdPer < 1 {
		return fmt.Errorf("fleet: ThresholdPer = %d, need >= 1", d.ThresholdPer)
	}
	return nil
}

// Config parameterizes a fleet run.
type Config struct {
	// Seed drives every random draw: subscriber classes, flow arrivals,
	// observation sampling. Each realm mixes its index into the seed so
	// realms stay independent.
	Seed int64
	// Days is the virtual horizon in days (one day = Profile.DayTicks
	// ticks).
	Days int
	// Profile shapes per-tick load, exactly as in internal/traffic.
	// Profile.Ticks is ignored — Days rules the horizon.
	Profile traffic.Profile
	// Carriers is the day-zero fleet.
	Carriers []CarrierSpec
	// Timeline is the scripted evolution. ScriptTimeline generates one;
	// an empty timeline runs a static fleet.
	Timeline Timeline
	// Obs parameterizes the E21 detection scoring.
	Obs ObservationConfig
	// Workers is the realm worker-pool size; 0 or 1 steps realms
	// sequentially. Results are byte-identical at any value.
	Workers int
	// Shards selects each realm's NAT engine, like traffic.Config.Shards:
	// 0 is the legacy single-table engine, >= 1 the intra-realm sharded
	// engine (identical at any shard count >= 1, a distinct universe
	// from 0). Fleet drives sharded engines through the facade, so the
	// count never affects results — only the engine family does.
	Shards int
}

// withDefaults normalizes the config for execution and signatures.
func (c Config) withDefaults() Config {
	p := c.Profile
	p.Ticks = 1 // force Enabled so WithDefaults fills the rest
	p = p.WithDefaults()
	p.Ticks = c.Days * p.DayTicks
	c.Profile = p
	c.Obs = c.Obs.WithDefaults()
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Days < 1 {
		return fmt.Errorf("fleet: Days = %d, need at least 1", c.Days)
	}
	if len(c.Carriers) == 0 {
		return fmt.Errorf("fleet: no carriers configured")
	}
	d := c.withDefaults()
	if err := d.Profile.Validate(); err != nil {
		return err
	}
	if err := c.Obs.Validate(); err != nil {
		return err
	}
	for i, spec := range c.Carriers {
		if spec.Subscribers < 0 {
			return fmt.Errorf("fleet: carrier %d (%s): negative subscriber count", i, spec.ID)
		}
		if spec.Subscribers > maxSubscribers {
			return fmt.Errorf("fleet: carrier %d (%s): %d subscribers exceeds the %d cap", i, spec.ID, spec.Subscribers, maxSubscribers)
		}
	}
	for _, ev := range c.Timeline.Events {
		if ev.Carrier < 0 || ev.Carrier >= len(c.Carriers) {
			return fmt.Errorf("fleet: event %v on day %d names carrier %d of %d", ev.Kind, ev.Day, ev.Carrier, len(c.Carriers))
		}
		if ev.Day < 0 || ev.Day >= c.Days {
			return fmt.Errorf("fleet: event %v for carrier %d on day %d outside [0,%d)", ev.Kind, ev.Carrier, ev.Day, c.Days)
		}
		switch ev.Kind {
		case EventReprovision:
			if ev.Arg < 1 {
				return fmt.Errorf("fleet: reprovision to %d external IPs", ev.Arg)
			}
		case EventGrow, EventChurn:
			if ev.Arg < 0 {
				return fmt.Errorf("fleet: %v by %d", ev.Kind, ev.Arg)
			}
		case EventLaneDown, EventLaneUp:
			if c.Shards < 1 {
				return fmt.Errorf("fleet: %v event requires the sharded engine (Shards >= 1): the lane is the fault's unit", ev.Kind)
			}
			if ev.Arg < 0 {
				return fmt.Errorf("fleet: %v names negative lane %d", ev.Kind, ev.Arg)
			}
		case EventEnable, EventDisable, EventRestart:
		default:
			return fmt.Errorf("fleet: unknown event kind %d", ev.Kind)
		}
	}
	return nil
}

// maxSubscribers bounds one realm's population: addresses are dense
// above the realm base, and the cap keeps growth events from colliding
// with neighboring address blocks.
const maxSubscribers = 1 << 20

// ScriptTimeline generates a deterministic evolution script for the
// given fleet: disabled carriers mostly enable CGN mid-run (the
// late-onset deployments longitudinal observation exists to catch),
// a few enabled carriers disable or re-provision, populations grow,
// and cellular carriers churn subscribers monthly.
func ScriptTimeline(seed int64, carriers []CarrierSpec, days int) Timeline {
	fr := traffic.NewFastRand(uint64(seed) ^ 0xF1EE7F1EE7)
	var tl Timeline
	add := func(day, carrier int, kind EventKind, arg int) {
		if day < 1 {
			day = 1
		}
		if day >= days {
			day = days - 1
		}
		if day < 1 {
			return // single-day runs have no room for evolution
		}
		tl.Events = append(tl.Events, Event{Day: day, Carrier: carrier, Kind: kind, Arg: arg})
	}
	for i, spec := range carriers {
		if !spec.CGNEnabled {
			// 3 in 4 late-onset carriers deploy CGN somewhere in the
			// middle half of the run.
			if fr.Float64() < 0.75 {
				day := days/4 + int(fr.Intn(uint32(max(1, days/2))))
				add(day, i, EventEnable, 0)
			}
			continue
		}
		switch x := fr.Float64(); {
		case x < 0.10:
			// A few carriers retire their CGN mid-run.
			add(days/3+int(fr.Intn(uint32(max(1, days/2)))), i, EventDisable, 0)
		case x < 0.30:
			// Pool re-provisioning: grow or shrink the pool by one around
			// its current size (never below one IP).
			size := len(spec.NAT.ExternalIPs)
			newSize := max(1, size-1+int(fr.Intn(3)))
			add(days/4+int(fr.Intn(uint32(max(1, days/2)))), i, EventReprovision, newSize)
		}
		if spec.Subscribers > 0 && fr.Float64() < 0.5 {
			// Organic growth: +10–30% somewhere in the run.
			growth := spec.Subscribers * int(10+fr.Intn(21)) / 100
			if growth > 0 {
				add(1+int(fr.Intn(uint32(max(1, days-1)))), i, EventGrow, growth)
			}
		}
		if spec.Cellular && spec.Subscribers >= 20 {
			// Monthly churn of ~5% for cellular carriers.
			for day := 30; day < days; day += 30 {
				add(day, i, EventChurn, spec.Subscribers/20)
			}
		}
	}
	return tl
}

// ScriptFaults generates a deterministic fault schedule for the given
// fleet at the given severity in [0, 1]: at severity s, roughly s of the
// multi-IP carriers suffer one pool outage (a lane dark for up to an
// eighth of the run, then restored) and s/2 of all carriers suffer one
// engine restart. Zero severity is the zero timeline. The schedule is
// additive — merge its events into the main timeline — and requires the
// sharded universe, like the lane events it emits.
func ScriptFaults(seed int64, carriers []CarrierSpec, days int, severity float64) Timeline {
	if severity <= 0 || days < 2 {
		return Timeline{}
	}
	if severity > 1 {
		severity = 1
	}
	fr := traffic.NewFastRand(uint64(seed) ^ 0xFA017FA017)
	var tl Timeline
	for i, spec := range carriers {
		if pool := len(spec.NAT.ExternalIPs); pool > 1 && fr.Float64() < severity {
			day := 1 + int(fr.Intn(uint32(max(1, days-1))))
			dur := 1 + int(fr.Intn(uint32(max(1, days/8))))
			lane := int(fr.Intn(uint32(pool)))
			tl.Events = append(tl.Events, Event{Day: day, Carrier: i, Kind: EventLaneDown, Arg: lane})
			if end := day + dur; end < days {
				tl.Events = append(tl.Events, Event{Day: end, Carrier: i, Kind: EventLaneUp, Arg: lane})
			}
		}
		if fr.Float64() < severity*0.5 {
			day := 1 + int(fr.Intn(uint32(max(1, days-1))))
			tl.Events = append(tl.Events, Event{Day: day, Carrier: i, Kind: EventRestart})
		}
	}
	return tl
}

// SyntheticFleet builds a deterministic self-contained carrier fleet —
// the cgnsimd daemon's default world, needing no scenario machinery. A
// third of the carriers are cellular; allocation policies, pool sizes,
// timeouts and quotas cycle through representative shapes; roughly a
// quarter start with CGN disabled (the late-onset candidates).
func SyntheticFleet(seed int64, carriers, subscribers int) []CarrierSpec {
	fr := traffic.NewFastRand(uint64(seed) ^ 0x5F1EE7)
	specs := make([]CarrierSpec, carriers)
	allocs := []nat.PortAlloc{nat.Preservation, nat.Sequential, nat.Random, nat.RandomChunk}
	types := []nat.MappingType{nat.PortRestricted, nat.Symmetric, nat.FullCone, nat.AddressRestricted}
	for i := range specs {
		poolSize := 1 + int(fr.Intn(3))
		cfg := nat.Config{
			Name:        fmt.Sprintf("carrier%02d", i),
			Type:        types[i%len(types)],
			PortAlloc:   allocs[i%len(allocs)],
			ChunkSize:   128,
			Pooling:     nat.Paired,
			ExternalIPs: carrierPool(i, poolSize),
			PortLo:      2048,
			PortHi:      2048 + 4095,
			UDPTimeout:  time.Duration(60+int(fr.Intn(120))) * time.Second,
			Seed:        seed + int64(i)*7919,
		}
		if i%3 == 0 {
			cfg.PortQuotaPerSubscriber = 96
		}
		specs[i] = CarrierSpec{
			ID:          cfg.Name,
			Cellular:    i%3 == 1,
			NAT:         cfg,
			Subscribers: subscribers,
			CGNEnabled:  fr.Float64() >= 0.25,
		}
	}
	return specs
}

// carrierPool returns carrier i's external pool: size addresses in a
// per-carrier 198.18.x/24 block (benchmark space, never routed).
func carrierPool(carrier, size int) []netaddr.Addr {
	base := netaddr.MustParseAddr("198.18.0.1") + netaddr.Addr(uint32(carrier)<<8)
	pool := make([]netaddr.Addr, size)
	for k := range pool {
		pool[k] = base + netaddr.Addr(k)
	}
	return pool
}
