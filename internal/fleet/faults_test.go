// Fault-injection coverage for the fleet layer: resume determinism
// across lane-outage and restart boundaries, the checkpoint retention
// ring's corruption fallback, the retry-with-backoff writer, the fault
// timeline generator, and the metrics surface.
package fleet

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// faultedConfig is testConfig plus a fault schedule: carrier 0 (pool
// pinned to 3 IPs) loses a lane on day 3, restarts mid-outage on day 5
// and restores the lane on day 7; carrier 1 (pool pinned to 2 IPs)
// loses a lane on day 2 — a flag its day-3 re-provisioning implicitly
// clears, so the day-8 restore is a no-op.
func faultedConfig(workers, shards int) Config {
	cfg := testConfig(workers, shards)
	cfg.Carriers[0].NAT.ExternalIPs = carrierPool(0, 3)
	cfg.Carriers[1].NAT.ExternalIPs = carrierPool(1, 2)
	cfg.Timeline.Events = append(cfg.Timeline.Events,
		Event{Day: 3, Carrier: 0, Kind: EventLaneDown, Arg: 1},
		Event{Day: 5, Carrier: 0, Kind: EventRestart},
		Event{Day: 7, Carrier: 0, Kind: EventLaneUp, Arg: 1},
		Event{Day: 2, Carrier: 1, Kind: EventLaneDown, Arg: 0},
		Event{Day: 8, Carrier: 1, Kind: EventLaneUp, Arg: 0},
	)
	return cfg
}

// TestFaultedResumeDeterminism extends the resume pin to active faults:
// cuts landing inside an outage window (day 4), between the mid-outage
// restart and the restore (day 6) and after recovery (day 8) must all
// resume byte-identically — across worker and shard counts, with the
// checkpoint round-tripped through the file codec.
func TestFaultedResumeDeterminism(t *testing.T) {
	ref, err := Run(faultedConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Created == 0 || ref.EventsApplied != 12 {
		t.Fatalf("degenerate faulted reference run: %+v", ref)
	}
	// The schedule must actually perturb the world: the faulted run's
	// carrier-0 state diverges from the fault-free run's.
	calm, err := Run(testConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if calm.Realms[0].Digest == ref.Realms[0].Digest {
		t.Fatal("fault schedule left carrier 0 byte-identical to the calm run")
	}
	for _, cut := range []int{2, 4, 6, 8} {
		s, err := New(faultedConfig(3, 2))
		if err != nil {
			t.Fatal(err)
		}
		for s.Day() < cut {
			s.StepDay()
		}
		data, err := s.Checkpoint().encode()
		if err != nil {
			t.Fatal(err)
		}
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			t.Fatal(err)
		}
		resumed, err := Resume(faultedConfig(2, 3), ck)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for !resumed.Done() {
			resumed.StepDay()
		}
		if got := resumed.Result(); !reflect.DeepEqual(got, ref) {
			t.Fatalf("cut %d: faulted resume diverged:\n got %+v\nwant %+v", cut, got, ref)
		}
		if got, want := resumed.FaultsInjected(), ([3]uint64{2, 2, 1}); got != want {
			t.Fatalf("cut %d: FaultsInjected = %v, want %v", cut, got, want)
		}
	}
}

// TestFaultMetricsSurface pins the observability: mid-outage the
// snapshot reports dark lanes and applied fault events, and the
// Prometheus exposition carries the new families.
func TestFaultMetricsSurface(t *testing.T) {
	s, err := New(faultedConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for s.Day() < 4 { // carrier 0's lane 1 and carrier 1's lane 0 are down
		s.StepDay()
	}
	m := s.Metrics()
	if m.LanesDown < 1 {
		t.Fatalf("mid-outage snapshot reports %d lanes down", m.LanesDown)
	}
	if m.FaultsInjected[0] < 1 {
		t.Fatalf("no lane-down events counted: %v", m.FaultsInjected)
	}
	if s.LanesDown() != m.LanesDown {
		t.Fatalf("Sim.LanesDown %d != snapshot %d", s.LanesDown(), m.LanesDown)
	}
	var buf bytes.Buffer
	WritePrometheus(&buf, m)
	out := buf.String()
	for _, want := range []string{
		"cgnsimd_lanes_down ",
		`cgnsimd_faults_injected_total{kind="lane-down"} `,
		`cgnsimd_faults_injected_total{kind="lane-up"} `,
		`cgnsimd_faults_injected_total{kind="restart"} `,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing series %q", want)
		}
	}
}

// TestCheckpointRing pins rotation and newest-valid fallback: the ring
// holds exactly keep generations, LoadCheckpointNewest returns the
// newest, a missing live path falls back to .1, and any single-
// generation damage — byte flips or prefix truncation anywhere — never
// panics and falls back to the newest generation that still validates.
func TestCheckpointRing(t *testing.T) {
	cfg := Config{
		Seed:     3,
		Days:     6,
		Profile:  testConfig(1, 0).Profile,
		Carriers: SyntheticFleet(3, 2, 10),
		Obs:      ObservationConfig{Windows: []int{1, 2}},
	}
	cfg.Profile.DayTicks = 24
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.ckpt")
	const keep = 3
	var days []int
	for i := 0; i < 5; i++ {
		s.StepDay()
		if err := SaveCheckpointRing(path, s.Checkpoint(), keep); err != nil {
			t.Fatal(err)
		}
		days = append(days, s.Day())
	}
	for i := 0; i < keep; i++ {
		if _, err := os.Stat(ringPath(path, i)); err != nil {
			t.Fatalf("generation %d missing: %v", i, err)
		}
	}
	if _, err := os.Stat(ringPath(path, keep)); err == nil {
		t.Fatalf("generation %d survived past the ring", keep)
	}
	ck, gen, err := LoadCheckpointNewest(path)
	if err != nil || gen != 0 || ck.Day != days[len(days)-1] {
		t.Fatalf("newest = day %d gen %d err %v, want day %d gen 0", ck.Day, gen, err, days[len(days)-1])
	}

	// Crash window: the live path vanished between shift and write.
	data0, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	ck, gen, err = LoadCheckpointNewest(path)
	if err != nil || gen != 1 || ck.Day != days[len(days)-2] {
		t.Fatalf("after losing the live path: day %d gen %d err %v, want day %d gen 1", ck.Day, gen, err, days[len(days)-2])
	}
	if err := os.WriteFile(path, data0, 0o644); err != nil {
		t.Fatal(err)
	}

	// Property sweep: damage every generation in several ways; resume
	// must always land on the newest generation that validates, and an
	// all-damaged ring must error, never panic.
	damage := []struct {
		name  string
		apply func([]byte) []byte
	}{
		{"flip-header", func(b []byte) []byte { c := append([]byte(nil), b...); c[2] ^= 0x10; return c }},
		{"flip-body", func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)/2] ^= 0x01; return c }},
		{"flip-trailer", func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-3] ^= 0x80; return c }},
		{"truncate-short", func(b []byte) []byte { return append([]byte(nil), b[:5]...) }},
		{"truncate-body", func(b []byte) []byte { return append([]byte(nil), b[:len(b)*2/3]...) }},
		{"truncate-tail", func(b []byte) []byte { return append([]byte(nil), b[:len(b)-7]...) }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	pristine := make([][]byte, keep)
	for i := range pristine {
		if pristine[i], err = os.ReadFile(ringPath(path, i)); err != nil {
			t.Fatal(err)
		}
	}
	restore := func() {
		for i, b := range pristine {
			if err := os.WriteFile(ringPath(path, i), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, d := range damage {
		for bad := 0; bad < keep; bad++ {
			restore()
			if err := os.WriteFile(ringPath(path, bad), d.apply(pristine[bad]), 0o644); err != nil {
				t.Fatal(err)
			}
			wantGen := 0
			if bad == 0 {
				wantGen = 1
			}
			ck, gen, err := LoadCheckpointNewest(path)
			if err != nil {
				t.Fatalf("%s on gen %d: fallback failed: %v", d.name, bad, err)
			}
			if gen != wantGen || ck.Day != days[len(days)-1-wantGen] {
				t.Fatalf("%s on gen %d: landed on gen %d day %d, want gen %d day %d",
					d.name, bad, gen, ck.Day, wantGen, days[len(days)-1-wantGen])
			}
			if _, err := Resume(cfg, ck); err != nil {
				t.Fatalf("%s on gen %d: fallback checkpoint did not resume: %v", d.name, bad, err)
			}
		}
	}
	// Every generation damaged: a clean error.
	for i := 0; i < keep; i++ {
		if err := os.WriteFile(ringPath(path, i), damage[i%len(damage)].apply(pristine[i]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := LoadCheckpointNewest(path); err == nil {
		t.Fatal("fully damaged ring loaded")
	}
}

// TestSaveCheckpointRetry pins the virtual-backoff writer: injected
// failures retry with accounted (never slept) exponential backoff, the
// outcome is deterministic in the policy seed, success after retries is
// reachable, and exhausting the attempts surfaces the last error.
func TestSaveCheckpointRetry(t *testing.T) {
	_, data := smallCheckpoint(t)
	ck, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.ckpt")

	// No injection: first attempt lands.
	out, err := SaveCheckpointRetry(path, ck, RetryPolicy{Keep: 2, MaxAttempts: 3, BackoffBase: time.Second, Seed: 1})
	if err != nil || out.Attempts != 1 || out.Retries != 0 || out.Injected != 0 || out.VirtualBackoff != 0 {
		t.Fatalf("clean save: %+v, %v", out, err)
	}
	if _, _, err := LoadCheckpointNewest(path); err != nil {
		t.Fatal(err)
	}

	// Certain injection: every attempt fails, backoff doubles, and the
	// outcome repeats exactly under the same seed.
	pol := RetryPolicy{Keep: 2, MaxAttempts: 3, BackoffBase: time.Second, Seed: 5, Key: 9, FailProb: 1}
	out, err = SaveCheckpointRetry(path, ck, pol)
	if err == nil || out.Attempts != 3 || out.Retries != 2 || out.Injected != 3 {
		t.Fatalf("injected failure: %+v, %v", out, err)
	}
	if out.VirtualBackoff < 3*time.Second {
		t.Fatalf("backoff %v below the 1s+2s exponential floor", out.VirtualBackoff)
	}
	again, err2 := SaveCheckpointRetry(path, ck, pol)
	if err2 == nil || again != out {
		t.Fatalf("retry outcome not deterministic: %+v vs %+v", again, out)
	}

	// Partial injection: some seed recovers after at least one retry.
	recovered := false
	for seed := int64(0); seed < 64 && !recovered; seed++ {
		out, err := SaveCheckpointRetry(path, ck, RetryPolicy{Keep: 2, MaxAttempts: 4, BackoffBase: time.Second, Seed: seed, FailProb: 0.5})
		if err == nil && out.Retries > 0 {
			if out.Injected != out.Retries || out.Attempts != out.Retries+1 {
				t.Fatalf("inconsistent recovery outcome: %+v", out)
			}
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("no seed in [0,64) recovered after a retry at FailProb 0.5")
	}

	// Real filesystem failure exhausts attempts too.
	out, err = SaveCheckpointRetry(filepath.Join(path, "not-a-dir", "x.ckpt"), ck, RetryPolicy{MaxAttempts: 2})
	if err == nil || out.Attempts != 2 || out.Injected != 0 {
		t.Fatalf("filesystem failure: %+v, %v", out, err)
	}
}

// TestScriptFaults pins the generator: deterministic, zero at zero
// severity, valid against a sharded config at full severity, and
// refused by Validate in the legacy universe.
func TestScriptFaults(t *testing.T) {
	specs := SyntheticFleet(11, 12, 20)
	a := ScriptFaults(99, specs, 60, 1)
	if !reflect.DeepEqual(a, ScriptFaults(99, specs, 60, 1)) {
		t.Fatal("ScriptFaults not deterministic")
	}
	if len(a.Events) == 0 {
		t.Fatal("full-severity schedule is empty")
	}
	if len(ScriptFaults(99, specs, 60, 0).Events) != 0 {
		t.Fatal("zero severity scheduled faults")
	}
	var downs, restarts int
	for _, ev := range a.Events {
		switch ev.Kind {
		case EventLaneDown:
			downs++
		case EventRestart:
			restarts++
		}
	}
	if downs == 0 || restarts == 0 {
		t.Fatalf("schedule lacks variety: %d lane-downs, %d restarts", downs, restarts)
	}
	cfg := Config{Seed: 99, Days: 60, Carriers: specs, Timeline: a, Shards: 1}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 0
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "sharded engine") {
		t.Fatalf("legacy universe accepted lane events: %v", err)
	}
}
