package fleet

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"cgn/internal/nat"
	"cgn/internal/traffic"
)

// testFleet is a five-carrier fleet exercising every timeline event
// kind: growth and churn on carrier 0, re-provisioning and a disable on
// carrier 1, a late-onset enable on carrier 2, a disable/re-enable
// cycle on carrier 3, and carrier 4 as a never-CGN ground-truth
// negative.
func testFleet() ([]CarrierSpec, Timeline) {
	specs := SyntheticFleet(42, 5, 30)
	specs[0].CGNEnabled = true
	specs[1].CGNEnabled = true
	specs[2].CGNEnabled = false
	specs[3].CGNEnabled = true
	specs[4].CGNEnabled = false
	tl := Timeline{Events: []Event{
		{Day: 2, Carrier: 0, Kind: EventGrow, Arg: 10},
		{Day: 4, Carrier: 0, Kind: EventChurn, Arg: 5},
		{Day: 3, Carrier: 1, Kind: EventReprovision, Arg: 2},
		{Day: 7, Carrier: 1, Kind: EventDisable},
		{Day: 2, Carrier: 2, Kind: EventEnable},
		{Day: 3, Carrier: 3, Kind: EventDisable},
		{Day: 6, Carrier: 3, Kind: EventEnable},
	}}
	return specs, tl
}

func testConfig(workers, shards int) Config {
	specs, tl := testFleet()
	return Config{
		Seed:     7,
		Days:     10,
		Profile:  traffic.Profile{DayTicks: 96},
		Carriers: specs,
		Timeline: tl,
		Obs:      ObservationConfig{Windows: []int{1, 2, 3, 5, 8}},
		Workers:  workers,
		Shards:   shards,
	}
}

// TestResumeDeterminism is the PR's core acceptance pin: killing the
// run at any day boundary and resuming from the serialized checkpoint
// — across worker counts AND shard counts — yields a Result (per-realm
// StateDigests, E21 window scores, every counter and histogram stat)
// byte-identical to the uninterrupted run.
func TestResumeDeterminism(t *testing.T) {
	for _, universe := range []struct {
		name                       string
		refShards, ckShards, reSha int
	}{
		// Legacy single-table universe (Shards == 0 everywhere).
		{"legacy", 0, 0, 0},
		// Sharded universe: reference at 1 shard, checkpoint taken at 2,
		// resumed at 3 — the engine is shard-count-invariant, so all
		// three must agree.
		{"sharded", 1, 2, 3},
	} {
		t.Run(universe.name, func(t *testing.T) {
			ref, err := Run(testConfig(1, universe.refShards))
			if err != nil {
				t.Fatal(err)
			}
			if ref.Created == 0 || ref.EventsApplied != 7 {
				t.Fatalf("degenerate reference run: %+v", ref)
			}
			for _, cut := range []int{1, 5, 9} {
				s, err := New(testConfig(3, universe.ckShards))
				if err != nil {
					t.Fatal(err)
				}
				for s.Day() < cut {
					s.StepDay()
				}
				// Round-trip the checkpoint through the file codec, as the
				// daemon would across a kill.
				data, err := s.Checkpoint().encode()
				if err != nil {
					t.Fatal(err)
				}
				ck, err := DecodeCheckpoint(data)
				if err != nil {
					t.Fatal(err)
				}
				resumed, err := Resume(testConfig(2, universe.reSha), ck)
				if err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				for !resumed.Done() {
					resumed.StepDay()
				}
				got := resumed.Result()
				if !reflect.DeepEqual(got, ref) {
					for i := range ref.Realms {
						if got.Realms[i] != ref.Realms[i] {
							t.Errorf("cut %d realm %d diverged:\n got %+v\nwant %+v", cut, i, got.Realms[i], ref.Realms[i])
						}
					}
					t.Fatalf("cut %d: resumed result differs from uninterrupted run:\n got %+v\nwant %+v", cut, got, ref)
				}
			}
		})
	}
}

// defendedConfig arms the allocation defenses on every carrier — a
// tight token bucket plus evict-oldest-idle over a squeezed port space —
// so checkpoint cuts cross live bucket levels and eviction state.
func defendedConfig(workers, shards int) Config {
	cfg := testConfig(workers, shards)
	for i := range cfg.Carriers {
		nc := &cfg.Carriers[i].NAT
		nc.PortLo, nc.PortHi = 2048, 2048+63
		nc.AllocRatePerSec = 0.02
		nc.AllocBurst = 4
		nc.Eviction = nat.EvictOldestIdle
	}
	return cfg
}

// TestResumeDeterminismDefended extends the resume pin to the defense
// machinery: with the token bucket and eviction policy active, a cut
// must serialize bucket levels and the eviction counters such that the
// resumed run stays byte-identical to the uninterrupted one — in both
// engine universes. The reference run must actually exercise both
// defenses, or the pin proves nothing.
func TestResumeDeterminismDefended(t *testing.T) {
	for _, universe := range []struct {
		name                          string
		refShards, ckShards, reShards int
	}{
		{"legacy", 0, 0, 0},
		{"sharded", 1, 2, 1},
	} {
		t.Run(universe.name, func(t *testing.T) {
			refSim, err := New(defendedConfig(1, universe.refShards))
			if err != nil {
				t.Fatal(err)
			}
			for !refSim.Done() {
				refSim.StepDay()
			}
			var rateLimited, evictions uint64
			for _, r := range refSim.Metrics().Realms {
				rateLimited += r.RateLimited
				evictions += r.Evictions
			}
			if rateLimited == 0 || evictions == 0 {
				t.Fatalf("defenses idle in reference run: rate-limited %d, evictions %d", rateLimited, evictions)
			}
			ref := refSim.Result()
			for _, cut := range []int{2, 6} {
				s, err := New(defendedConfig(2, universe.ckShards))
				if err != nil {
					t.Fatal(err)
				}
				for s.Day() < cut {
					s.StepDay()
				}
				data, err := s.Checkpoint().encode()
				if err != nil {
					t.Fatal(err)
				}
				ck, err := DecodeCheckpoint(data)
				if err != nil {
					t.Fatal(err)
				}
				resumed, err := Resume(defendedConfig(3, universe.reShards), ck)
				if err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
				for !resumed.Done() {
					resumed.StepDay()
				}
				if got := resumed.Result(); !reflect.DeepEqual(got, ref) {
					t.Fatalf("cut %d: defended resume diverged:\n got %+v\nwant %+v", cut, got, ref)
				}
			}
		})
	}
}

// TestResumeAtHorizon checks the boundary case: a checkpoint taken when
// the run is already done resumes to a completed sim with the same
// result.
func TestResumeAtHorizon(t *testing.T) {
	s, err := New(testConfig(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		s.StepDay()
	}
	resumed, err := Resume(testConfig(1, 0), s.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Done() {
		t.Fatalf("resumed sim at day %d not done", resumed.Day())
	}
	if !reflect.DeepEqual(resumed.Result(), s.Result()) {
		t.Fatal("horizon resume changed the result")
	}
}

// smallCheckpoint runs a tiny sim a couple of days and returns its
// checkpoint bytes plus the config.
func smallCheckpoint(t *testing.T) (Config, []byte) {
	t.Helper()
	cfg := Config{
		Seed:     3,
		Days:     4,
		Profile:  traffic.Profile{DayTicks: 24},
		Carriers: SyntheticFleet(3, 2, 10),
		Obs:      ObservationConfig{Windows: []int{1, 2}},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.StepDay()
	s.StepDay()
	data, err := s.Checkpoint().encode()
	if err != nil {
		t.Fatal(err)
	}
	return cfg, data
}

// TestCheckpointCodecRejectsDamage pins the codec's failure mode:
// truncated, corrupted, mislabelled or version-skewed bytes produce a
// descriptive error — never a panic, never a silently wrong state.
func TestCheckpointCodecRejectsDamage(t *testing.T) {
	_, data := smallCheckpoint(t)
	if _, err := DecodeCheckpoint(data); err != nil {
		t.Fatalf("intact checkpoint rejected: %v", err)
	}
	// Truncation at every kind of boundary: inside the magic, inside
	// the header, inside the body, inside the checksum trailer.
	for _, n := range []int{0, 4, 11, 40, len(data) / 2, len(data) - 33, len(data) - 1} {
		if n >= len(data) {
			continue
		}
		if _, err := DecodeCheckpoint(data[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	// Single-byte corruption in the magic, the version, the body and
	// the trailer.
	for _, pos := range []int{0, 9, len(data) / 2, len(data) - 5} {
		bad := append([]byte(nil), data...)
		bad[pos] ^= 0x40
		if _, err := DecodeCheckpoint(bad); err == nil {
			t.Errorf("corruption at byte %d accepted", pos)
		}
	}
	// Version skew: patch the version field and recompute the checksum
	// so only the version mismatches.
	skew := append([]byte(nil), data...)
	skew[11] = checkpointVersion + 1
	sum := sha256.Sum256(skew[:len(skew)-32])
	copy(skew[len(skew)-32:], sum[:])
	_, err := DecodeCheckpoint(skew)
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("version skew not rejected as such: %v", err)
	}
}

// TestCheckpointFileRoundTrip exercises Save/Load against a real file.
func TestCheckpointFileRoundTrip(t *testing.T) {
	cfg, data := smallCheckpoint(t)
	ck, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fleet.ckpt")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, ck) {
		t.Fatal("checkpoint changed across file round-trip")
	}
	if _, err := Resume(cfg, loaded); err != nil {
		t.Fatal(err)
	}
}

// TestAtomicWriteCrash simulates a crash mid-write: the destination
// must keep its previous contents and the directory must hold no
// partial or temporary files afterwards.
func TestAtomicWriteCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fleet.ckpt")
	if err := os.WriteFile(path, []byte("previous checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	err := writeFileAtomic(path, func(w io.Writer) error {
		if _, err := w.Write([]byte("half a checkp")); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("injected error lost: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "previous checkpoint" {
		t.Fatalf("destination disturbed by failed write: %q, %v", got, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "fleet.ckpt" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory not clean after simulated crash: %v", names)
	}
}

// TestResumeRejectsMismatch pins config-signature enforcement and
// structural validation at resume time.
func TestResumeRejectsMismatch(t *testing.T) {
	cfg, data := smallCheckpoint(t)
	ck, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed++
	if _, err := Resume(other, ck); err == nil {
		t.Error("seed change accepted")
	}
	sharded := cfg
	sharded.Shards = 2
	if _, err := Resume(sharded, ck); err == nil {
		t.Error("engine-universe change accepted")
	}
	tampered := *ck
	tampered.Day = cfg.Days + 1
	tampered.Sig = cfg.signature()
	if _, err := Resume(cfg, &tampered); err == nil {
		t.Error("out-of-range day accepted")
	}
	tampered = *ck
	tampered.EventsApplied += 3
	if _, err := Resume(cfg, &tampered); err == nil {
		t.Error("event-count mismatch accepted")
	}
}

// TestBoundedAggregation pins the windowed-aggregation memory
// contract: tripling the virtual horizon must not grow the
// duration-facing accumulator state (observation rings and sample
// histograms) beyond the slack a longer run's slightly taller
// histogram tail may add.
func TestBoundedAggregation(t *testing.T) {
	footprint := func(days int) int {
		cfg := Config{
			Seed:     5,
			Days:     days,
			Profile:  traffic.Profile{DayTicks: 48},
			Carriers: SyntheticFleet(5, 3, 25),
			Obs:      ObservationConfig{Windows: []int{1, 3, 6}},
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for !s.Done() {
			s.StepDay()
		}
		return s.aggregationFootprint()
	}
	short, long := footprint(8), footprint(24)
	if long > short+16 {
		t.Fatalf("aggregation state grew with duration: %d elements over 8 days, %d over 24", short, long)
	}
}

// TestPrometheusExposition validates the /metrics payload shape: every
// sample line parses as <name>{labels} <value>, every family has HELP
// and TYPE preambles, and the key series carry live data.
func TestPrometheusExposition(t *testing.T) {
	s, err := New(testConfig(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	for s.Day() < 3 {
		s.StepDay()
	}
	var buf bytes.Buffer
	WritePrometheus(&buf, s.Metrics())
	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 || (parts[3] != "gauge" && parts[3] != "counter") {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !typed[name] {
			t.Fatalf("series %q has no preceding TYPE", name)
		}
	}
	out := buf.String()
	for _, want := range []string{
		"cgnsimd_virtual_day 3",
		"cgnsimd_port_utilization{realm=",
		"cgnsimd_mappings_created_total{realm=",
		"cgnsimd_quota_refusals_total{realm=",
		"cgnsimd_rate_limited_total{realm=",
		"cgnsimd_quota_evictions_total{realm=",
		"cgnsimd_carrier_cgn_enabled{realm=",
		"cgnsimd_timeline_events_applied_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing series %q", want)
		}
	}
	m := s.Metrics()
	if m.Created == 0 || m.Subscribers == 0 {
		t.Fatalf("metrics snapshot carries no live data: %+v", m)
	}
}

// TestScriptTimeline pins the generator: deterministic, valid against
// the fleet, and actually evolving (some enables on late-onset
// carriers).
func TestScriptTimeline(t *testing.T) {
	specs := SyntheticFleet(11, 12, 20)
	a := ScriptTimeline(99, specs, 60)
	b := ScriptTimeline(99, specs, 60)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("ScriptTimeline not deterministic")
	}
	if len(a.Events) == 0 {
		t.Fatal("ScriptTimeline produced no events")
	}
	cfg := Config{
		Seed:     99,
		Days:     60,
		Carriers: specs,
		Timeline: a,
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	enables := 0
	for _, ev := range a.Events {
		if ev.Kind == EventEnable {
			enables++
		}
	}
	if enables == 0 {
		t.Error("no late-onset CGN enables scripted")
	}
}

// TestConfigValidate spot-checks rejection paths.
func TestConfigValidate(t *testing.T) {
	specs, tl := testFleet()
	good := Config{Seed: 1, Days: 10, Carriers: specs, Timeline: tl}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Config){
		"no days":          func(c *Config) { c.Days = 0 },
		"no carriers":      func(c *Config) { c.Carriers = nil },
		"event day beyond": func(c *Config) { c.Timeline.Events = []Event{{Day: 99, Carrier: 0, Kind: EventEnable}} },
		"event bad realm":  func(c *Config) { c.Timeline.Events = []Event{{Day: 1, Carrier: 77, Kind: EventEnable}} },
		"bad reprovision":  func(c *Config) { c.Timeline.Events = []Event{{Day: 1, Carrier: 0, Kind: EventReprovision, Arg: 0}} },
		"bad windows":      func(c *Config) { c.Obs.Windows = []int{5, 3} },
		"bad vantage":      func(c *Config) { c.Obs.VantageProb = 1.5 },
	} {
		c := good
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestWindowMath unit-tests the detector arithmetic.
func TestWindowMath(t *testing.T) {
	obs := ObservationConfig{}.WithDefaults()
	if got := obs.threshold(1); got != 1 {
		t.Errorf("threshold(1) = %d", got)
	}
	if got := obs.threshold(28); got != 2 {
		t.Errorf("threshold(28) = %d", got)
	}
	ring := []bool{true, false, true, false} // days 4,5,6,7 at ring len 4
	if n, any := lastDays(ring, 8, 2); n != 1 || !any {
		t.Errorf("lastDays(...,8,2) = %d,%v", n, any)
	}
	if n, _ := lastDays(ring, 8, 4); n != 2 {
		t.Errorf("lastDays(...,8,4) = %d", n)
	}
}
