package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/traffic"
)

// Checkpoint file format: an 8-byte magic, a big-endian uint32 format
// version, the gob-encoded Checkpoint body, and a SHA-256 trailer over
// everything before it. The trailer turns truncation and bit rot into
// clean load errors instead of gob panics or — worse — silently wrong
// state; the version gates decoding across incompatible layouts; the
// magic keeps cgnsimd from gobbling arbitrary files handed to -resume.
// Version history: 1 was the original layout; 2 added the sharded
// universe's per-lane arrival-stream state (RealmCkpt.FrLanes/DstSeqs)
// when arrival generation moved onto per-lane streams; 3 added the
// allocation-defense state to nat.Snapshot subscriber records (token
// bucket level and refill timestamp) when the per-subscriber rate
// limiter and eviction policies landed — a version-2 checkpoint would
// decode but restore every bucket full, diverging from the run it was
// cut from; 4 added the sharded pool's lane-outage flags
// (RealmCkpt.LanesDown) when fault injection landed — a version-3
// checkpoint would decode but restore every lane up, diverging from a
// run cut mid-outage.
const (
	checkpointMagic   = "CGNFLEET"
	checkpointVersion = 4
)

// Checkpoint is the serialized fleet state at a day boundary. Together
// with the (unserialized) Config it fully determines the rest of the
// run: Resume continues byte-identically — per-realm StateDigests and
// E21 output match an uninterrupted run exactly, at any Workers value
// and any shard count within the same engine universe.
type Checkpoint struct {
	// Sig fingerprints the determinism-relevant configuration; Resume
	// refuses a checkpoint taken under a different one. Workers and the
	// shard count are excluded — they never affect results — but the
	// engine universe (legacy vs sharded) is included, because it does.
	Sig string
	// Day is the next virtual day to run (== days completed).
	Day           int
	EventsApplied int
	Realms        []RealmCkpt
}

// HistState is a serialized traffic.Hist.
type HistState struct {
	Counts []uint64
	N      uint64
}

// SubCkpt is one subscriber: the address is derived from the index, the
// live-mapping count from the restored engine, so only identity
// survives serialization.
type SubCkpt struct {
	Class  uint8
	Active bool
}

// FlowCkpt is one live flow, in per-subscriber FIFO order. The mapping
// handle is deliberately absent: every checkpointed flow refreshed its
// mapping on the day's last tick, so the restored engine resolves the
// same mapping by key (RefForFlow) — and if two flows share a key they
// resolve to the same mapping in both runs.
type FlowCkpt struct {
	Sub       int32
	F         netaddr.Flow
	TicksLeft int32
}

// RealmCkpt is one carrier's serialized state.
type RealmCkpt struct {
	Enabled   bool
	Provision int
	PoolSize  int
	Epoch     int

	Subs  []SubCkpt
	Flows []FlowCkpt

	Fr     uint64
	DstSeq uint64

	// FrLanes and DstSeqs are the sharded universe's per-lane arrival
	// streams and destination sequences, in lane order — set exactly
	// when EngineLanes is, one entry per lane. The legacy universe
	// leaves them nil (it draws arrivals from Fr/DstSeq).
	FrLanes []uint64
	DstSeqs []uint64

	// LanesDown flags the sharded pool's lanes currently dark to a
	// fault-injection outage, in lane order — nil when every lane is up
	// (always, in the legacy universe). A down lane holds no mappings,
	// so restore reapplies the flag without dropping anything.
	LanesDown []bool

	Created    uint64
	Expired    uint64
	Refreshes  uint64
	FailFolded uint64
	PeakUtil   float64

	ClassHists [3]HistState
	AllHist    HistState

	EvRing, EnRing []bool

	// Exactly one of Engine (legacy universe) and EngineLanes (sharded
	// universe) is set for an enabled carrier; both are nil when
	// disabled.
	Engine      *nat.Snapshot
	EngineLanes []*nat.Snapshot
}

// signature fingerprints the parts of the configuration that determine
// results. Workers is execution-only; the shard count collapses to the
// engine-universe bit.
func (c Config) signature() string {
	d := c.withDefaults()
	sharded := d.Shards > 0
	d.Workers = 0
	d.Shards = 0
	sum := sha256.Sum256([]byte(fmt.Sprintf("cgn fleet v%d sharded=%v %#v", checkpointVersion, sharded, d)))
	return hex.EncodeToString(sum[:8])
}

// Checkpoint captures the simulation's complete state. Sim steps whole
// days, so every capture is at a day boundary — the granularity the
// restore contract is defined at.
func (s *Sim) Checkpoint() *Checkpoint {
	ck := &Checkpoint{
		Sig:           s.cfg.signature(),
		Day:           s.day,
		EventsApplied: s.applied,
	}
	for _, r := range s.realms {
		rc := RealmCkpt{
			Enabled:    r.enabled,
			Provision:  r.provision,
			PoolSize:   r.poolSize,
			Epoch:      r.epoch,
			Fr:         uint64(r.fr),
			DstSeq:     r.dstSeq,
			Created:    r.created,
			Expired:    r.expired,
			Refreshes:  r.refreshes,
			FailFolded: r.failFolded,
			PeakUtil:   r.peakUtil,
			AllHist:    histState(&r.allHist),
			EvRing:     append([]bool(nil), r.evRing...),
			EnRing:     append([]bool(nil), r.enRing...),
		}
		for c := range r.classHists {
			rc.ClassHists[c] = histState(&r.classHists[c])
		}
		rc.Subs = make([]SubCkpt, len(r.subs))
		for j := range r.subs {
			rc.Subs[j] = SubCkpt{Class: uint8(r.subs[j].class), Active: r.subs[j].active}
			for idx := r.subs[j].head; idx >= 0; idx = r.arena[idx].next {
				nd := &r.arena[idx]
				rc.Flows = append(rc.Flows, FlowCkpt{Sub: int32(j), F: nd.f, TicksLeft: nd.ticksLeft})
			}
		}
		switch e := r.eng.(type) {
		case *nat.NAT:
			rc.Engine = e.Snapshot()
		case *nat.Sharded:
			rc.EngineLanes = e.Snapshot()
			rc.LanesDown = e.DownLanes()
			rc.FrLanes = make([]uint64, len(r.frLanes))
			for l := range r.frLanes {
				rc.FrLanes[l] = uint64(r.frLanes[l])
			}
			rc.DstSeqs = append([]uint64(nil), r.dstSeqs...)
		}
		ck.Realms = append(ck.Realms, rc)
	}
	return ck
}

func histState(h *traffic.Hist) HistState {
	counts, n := h.State()
	return HistState{Counts: counts, N: n}
}

// Resume rebuilds a simulation from a checkpoint taken under the same
// configuration. Workers and the shard count may differ from the
// checkpointing process's — only the engine universe must match.
func Resume(cfg Config, ck *Checkpoint) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := cfg.withDefaults()
	if sig := cfg.signature(); ck.Sig != sig {
		return nil, fmt.Errorf("fleet: checkpoint config signature %s does not match this configuration (%s); resume needs the run's exact fleet, timeline, profile, seed and engine universe", ck.Sig, sig)
	}
	if ck.Day < 0 || ck.Day > d.Days {
		return nil, fmt.Errorf("fleet: checkpoint day %d outside horizon [0,%d]", ck.Day, d.Days)
	}
	if len(ck.Realms) != len(d.Carriers) {
		return nil, fmt.Errorf("fleet: checkpoint has %d realms, configuration %d", len(ck.Realms), len(d.Carriers))
	}
	s := &Sim{cfg: d, events: d.Timeline.sorted(), day: ck.Day}
	for s.evIdx < len(s.events) && s.events[s.evIdx].Day < ck.Day {
		s.evIdx++
	}
	s.applied = s.evIdx
	if s.applied != ck.EventsApplied {
		return nil, fmt.Errorf("fleet: checkpoint records %d applied events, timeline implies %d by day %d", ck.EventsApplied, s.applied, ck.Day)
	}
	for _, ev := range s.events[:s.evIdx] {
		s.countFault(ev)
	}
	ringLen := d.Obs.Windows[len(d.Obs.Windows)-1]
	if ringLen > d.Days {
		ringLen = d.Days
	}
	for i := range ck.Realms {
		rc := &ck.Realms[i]
		if len(rc.EvRing) != ringLen || len(rc.EnRing) != ringLen {
			return nil, fmt.Errorf("fleet: realm %d observation rings have %d/%d days, configuration implies %d", i, len(rc.EvRing), len(rc.EnRing), ringLen)
		}
		r := &realmSim{
			idx:        i,
			spec:       d.Carriers[i],
			enabled:    rc.Enabled,
			provision:  rc.Provision,
			poolSize:   rc.PoolSize,
			epoch:      rc.Epoch,
			freeHead:   -1,
			fr:         traffic.NewFastRand(rc.Fr),
			dstSeq:     rc.DstSeq,
			created:    rc.Created,
			expired:    rc.Expired,
			refreshes:  rc.Refreshes,
			failFolded: rc.FailFolded,
			peakUtil:   rc.PeakUtil,
			allHist:    traffic.HistFromState(rc.AllHist.Counts, rc.AllHist.N),
			evRing:     append([]bool(nil), rc.EvRing...),
			enRing:     append([]bool(nil), rc.EnRing...),
		}
		for c := range r.classHists {
			r.classHists[c] = traffic.HistFromState(rc.ClassHists[c].Counts, rc.ClassHists[c].N)
		}
		if len(rc.Subs) > maxSubscribers {
			return nil, fmt.Errorf("fleet: realm %d has %d subscribers, exceeding the %d cap", i, len(rc.Subs), maxSubscribers)
		}
		r.subs = make([]fleetSub, len(rc.Subs))
		for j, sc := range rc.Subs {
			if sc.Class > uint8(traffic.Heavy) {
				return nil, fmt.Errorf("fleet: realm %d subscriber %d has unknown class %d", i, j, sc.Class)
			}
			r.subs[j] = fleetSub{class: traffic.Class(sc.Class), active: sc.Active, head: -1, tail: -1}
		}
		if rc.Enabled {
			ecfg := r.engineConfig()
			switch {
			case d.Shards > 0 && rc.EngineLanes != nil:
				eng, err := nat.NewShardedFromSnapshot(ecfg, d.Shards, rc.EngineLanes)
				if err != nil {
					return nil, fmt.Errorf("fleet: realm %d: %w", i, err)
				}
				if lanes := eng.NumLanes(); len(rc.FrLanes) != lanes || len(rc.DstSeqs) != lanes {
					return nil, fmt.Errorf("fleet: realm %d carries %d/%d per-lane arrival streams, engine has %d lanes", i, len(rc.FrLanes), len(rc.DstSeqs), lanes)
				}
				r.frLanes = make([]traffic.FastRand, len(rc.FrLanes))
				for l, s := range rc.FrLanes {
					r.frLanes[l] = traffic.NewFastRand(s)
				}
				r.dstSeqs = append([]uint64(nil), rc.DstSeqs...)
				if rc.LanesDown != nil {
					if len(rc.LanesDown) != eng.NumLanes() {
						return nil, fmt.Errorf("fleet: realm %d carries %d lane-outage flags, engine has %d lanes", i, len(rc.LanesDown), eng.NumLanes())
					}
					// Reapply outage flags before hooks: a down lane
					// checkpointed empty, so nothing drops here.
					for l, dn := range rc.LanesDown {
						if dn {
							eng.SetLaneDown(l)
						}
					}
				}
				r.eng = eng
			case d.Shards <= 0 && rc.Engine != nil:
				eng, err := nat.NewFromSnapshot(ecfg, rc.Engine)
				if err != nil {
					return nil, fmt.Errorf("fleet: realm %d: %w", i, err)
				}
				r.eng = eng
			case rc.Engine == nil && rc.EngineLanes == nil:
				return nil, fmt.Errorf("fleet: realm %d enabled but has no engine state", i)
			default:
				return nil, fmt.Errorf("fleet: realm %d checkpointed in a different engine universe (legacy vs sharded); Shards must stay on the same side of zero", i)
			}
			for j := range r.subs {
				r.subs[j].live = int32(r.eng.Sessions(subAddr(j)))
			}
		} else if rc.Engine != nil || rc.EngineLanes != nil || len(rc.Flows) != 0 || len(rc.FrLanes) != 0 || rc.LanesDown != nil {
			return nil, fmt.Errorf("fleet: realm %d disabled but carries engine or flow state", i)
		}
		r.rebuildLC()
		if r.eng != nil {
			r.installHooks()
		}
		// Relink live flows in their serialized (per-subscriber FIFO)
		// order. A flow whose key resolves to no live mapping gets a
		// stale handle; the next tick's refresh falls back to the full
		// translation path exactly as the uninterrupted run would.
		for fi, fc := range rc.Flows {
			if int(fc.Sub) < 0 || int(fc.Sub) >= len(r.subs) {
				return nil, fmt.Errorf("fleet: realm %d flow %d names subscriber %d of %d", i, fi, fc.Sub, len(r.subs))
			}
			sub := &r.subs[fc.Sub]
			nd := flowNode{f: fc.F, ticksLeft: fc.TicksLeft, next: -1}
			nd.ref, _ = r.eng.RefForFlow(fc.F)
			r.arena = append(r.arena, nd)
			ni := int32(len(r.arena) - 1)
			if sub.tail >= 0 {
				r.arena[sub.tail].next = ni
			} else {
				sub.head = ni
			}
			sub.tail = ni
		}
		s.realms = append(s.realms, r)
	}
	return s, nil
}

// encode renders the checkpoint in the file format.
func (ck *Checkpoint) encode() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(checkpointMagic)
	var ver [4]byte
	binary.BigEndian.PutUint32(ver[:], checkpointVersion)
	buf.Write(ver[:])
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		return nil, fmt.Errorf("fleet: checkpoint encode: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

// DecodeCheckpoint parses checkpoint bytes, rejecting — with an error,
// never a panic — anything that is not a complete, intact checkpoint
// this build can read.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	header := len(checkpointMagic) + 4
	if len(data) < header+sha256.Size {
		return nil, errors.New("fleet: checkpoint truncated (shorter than header and checksum)")
	}
	if string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, errors.New("fleet: not a cgnsimd checkpoint (bad magic)")
	}
	body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], trailer) {
		return nil, errors.New("fleet: checkpoint corrupt (checksum mismatch — truncated or damaged file)")
	}
	ver := binary.BigEndian.Uint32(data[len(checkpointMagic):header])
	if ver != checkpointVersion {
		return nil, fmt.Errorf("fleet: checkpoint format version %d; this build reads version %d", ver, checkpointVersion)
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(body[header:])).Decode(&ck); err != nil {
		return nil, fmt.Errorf("fleet: checkpoint decode: %w", err)
	}
	return &ck, nil
}

// SaveCheckpoint writes the checkpoint to path atomically: a temp file
// in the destination directory, then rename. A crash mid-write leaves
// the previous checkpoint (if any) untouched and no partial file under
// the destination name.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	data, err := ck.encode()
	if err != nil {
		return err
	}
	return writeFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ck, err := DecodeCheckpoint(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ck, nil
}

// writeFileAtomic writes via a temp file in path's directory and
// renames into place, fsyncing before the rename and fsyncing the
// parent directory after it — without the latter a power cut can lose
// the rename itself and leave the directory pointing at the old file
// (or nothing). On any failure — including mid-write — the temp file is
// removed and the destination is left exactly as it was.
func writeFileAtomic(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that cannot sync directories (some network mounts) make
// this a no-op rather than an error — the rename itself succeeded.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, errors.ErrUnsupported) {
		return err
	}
	return nil
}

// ringPath is retention generation i's file name: the live path for the
// newest, path.1, path.2, … for the older generations.
func ringPath(path string, i int) string {
	if i == 0 {
		return path
	}
	return fmt.Sprintf("%s.%d", path, i)
}

// SaveCheckpointRing writes the checkpoint to path, first rotating the
// existing generations one slot up (path → path.1 → … → path.keep-1,
// the oldest falling off) so the newest keep generations survive. Each
// shift is a rename in one directory — atomic on POSIX — and the final
// write is SaveCheckpoint's temp+fsync+rename, so a crash at any point
// leaves every surviving generation intact; at worst the live path is
// missing and the newest state sits at path.1, which
// LoadCheckpointNewest handles.
func SaveCheckpointRing(path string, ck *Checkpoint, keep int) error {
	if keep < 1 {
		keep = 1
	}
	for i := keep - 1; i >= 1; i-- {
		if err := os.Rename(ringPath(path, i-1), ringPath(path, i)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
	}
	return SaveCheckpoint(path, ck)
}

// LoadCheckpointNewest scans the retention ring at path — path, path.1,
// path.2, … — and returns the newest generation that decodes and
// validates, with its ring index. A missing or damaged generation falls
// back to the next older one; the live path itself may be missing (the
// crash window between the ring shift and the fresh write) without
// ending the scan, but past it the first missing file does.
func LoadCheckpointNewest(path string) (*Checkpoint, int, error) {
	var firstErr error
	for i := 0; ; i++ {
		ck, err := LoadCheckpoint(ringPath(path, i))
		if err == nil {
			return ck, i, nil
		}
		if errors.Is(err, os.ErrNotExist) {
			if i == 0 {
				continue
			}
			break
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("fleet: no checkpoint found at %s", path)
	}
	return nil, 0, firstErr
}

// RetryPolicy parameterizes SaveCheckpointRetry: how many generations
// to retain, how often to retry a failed write, and the virtual-time
// backoff between attempts. FailProb injects deterministic write
// failures before the file is touched — the fault-drill knob behind
// cgnsimd's -fault-checkpoint-fail — drawn from a stream seeded by
// (Seed, Key) so every save has its own reproducible sequence.
type RetryPolicy struct {
	// Keep is the retention-ring depth; < 1 means 1 (no older
	// generations).
	Keep int
	// MaxAttempts bounds total write attempts; < 1 means 1 (no
	// retries).
	MaxAttempts int
	// BackoffBase is the virtual backoff before the first retry,
	// doubling each further retry, plus seeded jitter of up to half the
	// step. Virtual: it is accounted, never slept.
	BackoffBase time.Duration
	// Seed and Key seed the jitter and injection stream; Key
	// discriminates saves (cgnsimd passes the virtual day).
	Seed int64
	Key  uint64
	// FailProb is the per-attempt injected-failure probability in
	// [0, 1]; zero disables injection.
	FailProb float64
}

// RetryOutcome reports what SaveCheckpointRetry did.
type RetryOutcome struct {
	// Attempts counts write attempts made (>= 1); Retries counts the
	// re-attempts among them.
	Attempts, Retries int
	// VirtualBackoff is the total backoff accounted between attempts.
	VirtualBackoff time.Duration
	// Injected counts attempts failed by FailProb rather than the
	// filesystem.
	Injected int
}

// errInjectedWrite marks a FailProb-drawn failure.
var errInjectedWrite = errors.New("fleet: injected checkpoint write failure")

// SaveCheckpointRetry writes the checkpoint through the retention ring,
// retrying failed attempts with exponential backoff in virtual time —
// the simulation clock never waits on the wall, so the backoff is
// accounted in the outcome instead of slept. Returns the outcome along
// with the last error when every attempt failed.
func SaveCheckpointRetry(path string, ck *Checkpoint, pol RetryPolicy) (RetryOutcome, error) {
	keep, attempts := pol.Keep, pol.MaxAttempts
	if keep < 1 {
		keep = 1
	}
	if attempts < 1 {
		attempts = 1
	}
	fr := traffic.NewFastRand(uint64(pol.Seed)*0x9E3779B97F4A7C15 ^ (pol.Key+1)*0xD1B54A32D192ED03)
	var out RetryOutcome
	var lastErr error
	for a := 1; a <= attempts; a++ {
		out.Attempts = a
		var err error
		if pol.FailProb > 0 && fr.Float64() < pol.FailProb {
			out.Injected++
			err = errInjectedWrite
		} else {
			err = SaveCheckpointRing(path, ck, keep)
		}
		if err == nil {
			return out, nil
		}
		lastErr = err
		if a < attempts {
			out.Retries++
			if step := pol.BackoffBase << (a - 1); step > 0 {
				jitterMs := uint32(1)
				if half := step / 2 / time.Millisecond; half > 0 {
					if half > 60_000 {
						half = 60_000
					}
					jitterMs += uint32(half)
				}
				out.VirtualBackoff += step + time.Duration(fr.Intn(jitterMs))*time.Millisecond
			}
		}
	}
	return out, lastErr
}
