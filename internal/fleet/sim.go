package fleet

import (
	"fmt"
	"math"
	"sync"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/traffic"
)

// engine is the per-realm NAT surface the fleet drives — satisfied by
// both *nat.NAT (the legacy single-table engine, Shards == 0) and
// *nat.Sharded (the pool-partitioned engine, Shards >= 1). Fleet calls
// it sequentially within a realm, so the shard count is an execution
// detail that never shows in results.
type engine interface {
	TranslateOutRef(f netaddr.Flow, now time.Time) (netaddr.Flow, nat.MappingRef, nat.Verdict)
	Refresh(r nat.MappingRef, dst netaddr.Endpoint, now time.Time) bool
	RefForFlow(f netaddr.Flow) (nat.MappingRef, bool)
	Sweep(now time.Time) int
	SetMappingHooks(onCreate, onExpire func(m *nat.Mapping))
	PortStats() nat.PortStats
	StateDigest() string
	NumMappings() int
	Sessions(a netaddr.Addr) int
}

// newEngine builds a realm engine in the configured universe.
func newEngine(cfg nat.Config, shards int) engine {
	if shards <= 0 {
		return nat.New(cfg)
	}
	return nat.NewSharded(cfg, shards)
}

// fleetSub is one subscriber of a realm. The address is derived — realm
// base plus index — and never stored. Churned-out subscribers stay in
// the slice (indices are stable identities) with active cleared; their
// remaining mappings idle out on their own.
type fleetSub struct {
	class      traffic.Class
	active     bool
	head, tail int32
	live       int32
}

// flowNode is one live flow in the realm arena, linked per subscriber
// in arrival (FIFO) order and recycled through the freelist — the same
// shape as the traffic engine's arena, so steady-state ticks never
// allocate.
type flowNode struct {
	f         netaddr.Flow
	ref       nat.MappingRef
	ticksLeft int32
	next      int32
}

// fleetSubBase anchors each realm's dense internal address block; the
// addresses are synthetic (they never leave the realm's private NAT) so
// every realm reuses the same block.
var fleetSubBase = netaddr.MustParseAddr("10.64.0.1")

// realmSim is one carrier's live state. Everything in here is owned by
// exactly one worker during a day step; cross-realm aggregation happens
// only at result time, in realm input order.
type realmSim struct {
	idx  int
	spec CarrierSpec

	enabled bool
	// provision counts pool re-provisionings (0 = the day-zero pool);
	// poolSize is the current pool's size. epoch counts engine builds —
	// every enable or re-provision starts a fresh allocation stream.
	provision, poolSize, epoch int
	eng                        engine

	subs      []fleetSub
	classSubs [3]int // active subscribers per class
	arena     []flowNode
	freeHead  int32
	fr        traffic.FastRand
	dstSeq    uint64

	// Sharded-universe arrival state: one draw stream and destination
	// sequence per lane of the sharded engine (nil in the legacy
	// universe), plus the per-lane, per-class active-subscriber lists
	// the skip-sampling decode walks. The streams are seeded from the
	// realm stream at provisioning and checkpointed, so resume
	// continues the exact draw sequences.
	frLanes  []traffic.FastRand
	dstSeqs  []uint64
	laneSubs [][3][]int32

	lc         *traffic.LiveCounts
	classHists [3]traffic.Hist
	allHist    traffic.Hist

	// Cumulative run counters. created/expired are hook-fed and span
	// engine teardowns; failFolded holds failures of torn-down engines
	// (the live engine's count is added on read).
	created, expired, refreshes, failFolded uint64
	dayBaseCreated                          uint64
	peakUtil                                float64

	// Windowed observation state: fixed-size day rings (length = the
	// longest observation window, clamped to the horizon) holding the
	// per-day evidence and enablement bits E21 scores from. This is the
	// entirety of the per-day record — bounded however long the run.
	evRing, enRing []bool
}

// failures returns the realm's cumulative allocation-failure count.
func (r *realmSim) failures() uint64 {
	f := r.failFolded
	if r.eng != nil {
		f += r.eng.PortStats().Failures()
	}
	return f
}

// subAddr is subscriber j's derived internal address.
func subAddr(j int) netaddr.Addr { return fleetSubBase + netaddr.Addr(uint32(j)) }

// engineSeedMix is the odd constant mixed with the engine epoch so each
// provisioned engine draws an independent allocation stream.
const engineSeedMix = 0x3C6EF372FE94F82B

// engineConfig is the realm's current NAT configuration — a pure
// function of the spec and the provisioning history, so restore can
// rebuild it without serializing it.
func (r *realmSim) engineConfig() nat.Config {
	cfg := r.spec.NAT
	if r.provision > 0 {
		cfg.ExternalIPs = reprovisionPool(r.idx, r.spec, r.provision, r.poolSize)
	}
	cfg.Seed = r.spec.NAT.Seed + int64(r.epoch)*engineSeedMix
	return cfg
}

// reprovisionPool is provisioning round p's fresh external block: real
// re-provisionings move the pool to new addresses, so each round shifts
// 64 addresses up from the carrier's original block.
func reprovisionPool(idx int, spec CarrierSpec, p, size int) []netaddr.Addr {
	var base netaddr.Addr
	if len(spec.NAT.ExternalIPs) > 0 {
		base = spec.NAT.ExternalIPs[0]
	} else {
		base = netaddr.MustParseAddr("198.19.0.1") + netaddr.Addr(uint32(idx)<<8)
	}
	base += netaddr.Addr(uint32(p) << 6)
	pool := make([]netaddr.Addr, size)
	for k := range pool {
		pool[k] = base + netaddr.Addr(k)
	}
	return pool
}

// installHooks wires the engine's mapping lifecycle into the realm's
// incremental live counts and cumulative counters. Inactive (churned)
// subscribers are excluded from sampling but their expiries still
// count.
func (r *realmSim) installHooks() {
	r.eng.SetMappingHooks(
		func(m *nat.Mapping) {
			r.created++
			if j := uint32(m.Int.Addr - fleetSubBase); j < uint32(len(r.subs)) {
				sub := &r.subs[j]
				if sub.active {
					r.lc.Move(sub.class, sub.live, sub.live+1)
				}
				sub.live++
			}
		},
		func(m *nat.Mapping) {
			r.expired++
			if j := uint32(m.Int.Addr - fleetSubBase); j < uint32(len(r.subs)) {
				sub := &r.subs[j]
				if sub.active {
					r.lc.Move(sub.class, sub.live, sub.live-1)
				}
				sub.live--
			}
		},
	)
}

// rebuildLC reconstructs the live-count buckets after any membership
// change: active subscribers enter at their current live value,
// inactive ones drop out of sampling.
func (r *realmSim) rebuildLC() {
	r.classSubs = [3]int{}
	for j := range r.subs {
		if r.subs[j].active {
			r.classSubs[r.subs[j].class]++
		}
	}
	r.lc = traffic.NewLiveCounts(r.classSubs)
	for j := range r.subs {
		sub := &r.subs[j]
		if sub.active && sub.live > 0 {
			r.lc.Move(sub.class, 0, sub.live)
		}
	}
	r.rebuildLaneSubs()
}

// rebuildLaneSubs reconstructs the sharded universe's per-lane,
// per-class subscriber lists (ascending by index — the skip-sampling
// decode order), keyed by each subscriber's *active* lane so pool
// outages move the displaced onto their failover lane's arrival stream.
// A no-op holding nil lists when the realm runs the legacy engine or is
// disabled.
func (r *realmSim) rebuildLaneSubs() {
	sn, ok := r.eng.(*nat.Sharded)
	if !ok {
		r.laneSubs = nil
		return
	}
	lanes := sn.NumLanes()
	if len(r.laneSubs) != lanes {
		r.laneSubs = make([][3][]int32, lanes)
	} else {
		for l := range r.laneSubs {
			for c := range r.laneSubs[l] {
				r.laneSubs[l][c] = r.laneSubs[l][c][:0]
			}
		}
	}
	for j := range r.subs {
		if !r.subs[j].active {
			continue
		}
		l := sn.ActiveLaneFor(subAddr(j))
		c := r.subs[j].class
		r.laneSubs[l][c] = append(r.laneSubs[l][c], int32(j))
	}
}

// teardown discards the realm's engine: counters fold into the realm's
// cumulative totals, every flow dies (there is no NAT to hold its
// mapping), and live counts reset. Used by disable and re-provision
// events.
func (r *realmSim) teardown() {
	if r.eng == nil {
		return
	}
	r.failFolded += r.eng.PortStats().Failures()
	r.eng = nil
	r.frLanes, r.dstSeqs = nil, nil
	r.arena = r.arena[:0]
	r.freeHead = -1
	for j := range r.subs {
		r.subs[j].head, r.subs[j].tail, r.subs[j].live = -1, -1, 0
	}
	r.rebuildLC()
}

// provisionEngine builds and wires a fresh engine for the realm's
// current configuration. In the sharded universe it also seeds the
// per-lane arrival streams from the realm stream — a fixed draw count
// per provisioning, in lane order, so the sequence is deterministic and
// survives checkpointing through the serialized realm stream.
func (r *realmSim) provisionEngine(shards int) {
	r.epoch++
	r.eng = newEngine(r.engineConfig(), shards)
	r.installHooks()
	if sn, ok := r.eng.(*nat.Sharded); ok {
		lanes := sn.NumLanes()
		r.frLanes = make([]traffic.FastRand, lanes)
		for l := range r.frLanes {
			r.frLanes[l] = traffic.NewFastRand(r.fr.Next())
		}
		r.dstSeqs = make([]uint64, lanes)
		r.rebuildLaneSubs()
	}
}

// addSubscribers appends n fresh active subscribers, drawing classes
// from the realm stream exactly as day-zero population build does.
func (r *realmSim) addSubscribers(n int, p traffic.Profile) {
	for k := 0; k < n; k++ {
		class := traffic.Median
		switch x := r.fr.Float64(); {
		case x < p.HeavyFrac:
			class = traffic.Heavy
		case x < p.HeavyFrac+p.LightFrac:
			class = traffic.Light
		}
		r.subs = append(r.subs, fleetSub{class: class, active: true, head: -1, tail: -1})
	}
}

// apply executes one timeline event on the realm.
func (r *realmSim) apply(ev Event, p traffic.Profile, shards int) {
	switch ev.Kind {
	case EventDisable:
		if r.enabled {
			r.teardown()
			r.enabled = false
		}
	case EventEnable:
		if !r.enabled {
			r.provisionEngine(shards)
			r.enabled = true
		}
	case EventReprovision:
		r.provision++
		r.poolSize = ev.Arg
		if r.enabled {
			r.teardown()
			r.provisionEngine(shards)
		}
	case EventGrow:
		r.addSubscribers(ev.Arg, p)
		r.rebuildLC()
	case EventChurn:
		// Deactivate the Arg longest-standing actives (lowest indices)
		// and add as many fresh subscribers. Their flows die now; their
		// mappings idle out like any abandoned binding.
		left := ev.Arg
		for j := range r.subs {
			if left == 0 {
				break
			}
			sub := &r.subs[j]
			if !sub.active {
				continue
			}
			sub.active = false
			for idx := sub.head; idx >= 0; {
				next := r.arena[idx].next
				r.arena[idx].next = r.freeHead
				r.freeHead = int32(idx)
				idx = next
			}
			sub.head, sub.tail = -1, -1
			left--
		}
		r.addSubscribers(ev.Arg, p)
		r.rebuildLC()
	case EventLaneDown:
		// A pool IP goes dark: its mappings drop (expiry hooks keep the
		// live counts honest) and its subscribers re-pin to survivors.
		// The engine refuses to down the last standing lane, and a
		// disabled or legacy-engine carrier has no lanes to lose.
		if sn, ok := r.eng.(*nat.Sharded); ok {
			sn.SetLaneDown(ev.Arg % sn.NumLanes())
			r.rebuildLaneSubs()
		}
	case EventLaneUp:
		if sn, ok := r.eng.(*nat.Sharded); ok {
			sn.SetLaneUp(ev.Arg % sn.NumLanes())
			r.rebuildLaneSubs()
		}
	case EventRestart:
		// The engine crashes and comes back empty: failures fold into
		// the cumulative counters, every mapping is lost without expiry
		// hooks (a crash, not a timeout), and lanes that were down stay
		// down. Flows survive in the arena with stale handles — the next
		// tick's refresh falls back to the full translation path, the
		// same re-establishment machinery resume uses.
		if r.eng != nil {
			r.failFolded += r.eng.PortStats().Failures()
			var downs []bool
			if sn, ok := r.eng.(*nat.Sharded); ok {
				downs = sn.DownLanes()
			}
			for j := range r.subs {
				r.subs[j].live = 0
			}
			for idx := range r.arena {
				r.arena[idx].ref = nat.MappingRef{}
			}
			r.provisionEngine(shards)
			if sn, ok := r.eng.(*nat.Sharded); ok {
				for l, dn := range downs {
					if dn {
						sn.SetLaneDown(l)
					}
				}
			}
			r.rebuildLC()
		}
	}
}

// activeSubscribers counts the realm's current population.
func (r *realmSim) activeSubscribers() int {
	return r.classSubs[0] + r.classSubs[1] + r.classSubs[2]
}

// runDay drives the realm through one virtual day: the same
// refresh/arrive/sample tick the traffic engine runs, against the
// realm's live engine, then the day's observation bits into the rings.
// The two engine universes have distinct tick bodies: the legacy one
// gates every subscriber on the realm stream (byte-identical to every
// prior release), the sharded one skip-samples arrivals on per-lane
// streams like the sharded traffic engine.
func (r *realmSim) runDay(day int, p traffic.Profile, obs ObservationConfig, seed int64) {
	r.dayBaseCreated = r.created
	if r.eng != nil {
		if _, ok := r.eng.(*nat.Sharded); ok {
			r.runDaySharded(day, p)
		} else {
			r.runDayLegacy(day, p)
		}
	}
	// The day's observation bits. A CGN-active day (enabled, traffic
	// actually translated) is seen with VantageProb — the chance the
	// observer's vantage points sit behind this CGN and measure today —
	// and any day can yield a spurious positive with NoiseProb.
	if n := len(r.evRing); n > 0 {
		active := r.enabled && r.created > r.dayBaseCreated
		ev := active && hash01(seed, r.idx, day, vantageSalt) < obs.VantageProb
		ev = ev || hash01(seed, r.idx, day, noiseSalt) < obs.NoiseProb
		r.evRing[day%n] = ev
		r.enRing[day%n] = r.enabled
	}
}

// runDayLegacy is the legacy universe's day: one Poisson gate per
// subscriber per tick on the realm's private draw stream — the draw
// sequence every Shards == 0 golden depends on, kept verbatim.
func (r *realmSim) runDayLegacy(day int, p traffic.Profile) {
	var rates [3]float64
	for c := 0; c < 3; c++ {
		rates[c] = p.FlowsPerTick * traffic.ClassRate(p, traffic.Class(c))
	}
	holdSpan := uint32(2*p.FlowHoldTicks - 1)
	epoch := time.Unix(0, 0)
	for t := day * p.DayTicks; t < (day+1)*p.DayTicks; t++ {
		now := epoch.Add(time.Duration(t) * p.TickStep)
		r.eng.Sweep(now)
		df := traffic.DiurnalFactor(p, t)
		var expNegLambda [3]float64
		for c := range rates {
			expNegLambda[c] = math.Exp(-(rates[c] * df))
		}
		for j := range r.subs {
			sub := &r.subs[j]
			if !sub.active {
				continue
			}
			addr := subAddr(j)
			r.refreshFlows(sub, now)
			// Poisson arrivals under the diurnal curve, one gate per
			// subscriber, from the realm's private draw stream.
			k := 0
			if rates[sub.class]*df > 0 {
				k = r.fr.Poisson(expNegLambda[sub.class])
			}
			for ; k > 0; k-- {
				r.dstSeq++
				f := netaddr.FlowOf(netaddr.UDP,
					netaddr.EndpointOf(addr, uint16(1024+r.fr.Intn(64512))),
					netaddr.EndpointOf(trafficDstBase+netaddr.Addr(uint32(r.dstSeq)), uint16(443+(r.dstSeq>>32))))
				hold := 1 + r.fr.Intn(holdSpan)
				r.openFlow(sub, f, int32(hold), now)
			}
		}
		r.sampleTick()
	}
}

// runDaySharded is the sharded universe's day: arrivals decode by
// geometric skip-sampling over the per-lane, per-class subscriber lists
// on per-lane streams — tick cost scales with arrivals and live flows,
// not population, and the draw sequences are lane-confined exactly like
// the sharded traffic engine's (fleet drives a realm sequentially, so
// shard count still never shows in results).
func (r *realmSim) runDaySharded(day int, p traffic.Profile) {
	var rates [3]float64
	for c := 0; c < 3; c++ {
		rates[c] = p.FlowsPerTick * traffic.ClassRate(p, traffic.Class(c))
	}
	holdSpan := uint32(2*p.FlowHoldTicks - 1)
	epoch := time.Unix(0, 0)
	for t := day * p.DayTicks; t < (day+1)*p.DayTicks; t++ {
		now := epoch.Add(time.Duration(t) * p.TickStep)
		r.eng.Sweep(now)
		df := traffic.DiurnalFactor(p, t)
		var lambda, expNeg [3]float64
		for c := range rates {
			lambda[c] = rates[c] * df
			expNeg[c] = math.Exp(-lambda[c])
		}
		for j := range r.subs {
			sub := &r.subs[j]
			if !sub.active || sub.head < 0 {
				continue
			}
			r.refreshFlows(sub, now)
		}
		for l := range r.laneSubs {
			fr := &r.frLanes[l]
			for c := 0; c < 3; c++ {
				if lambda[c] <= 0 {
					continue
				}
				list := r.laneSubs[l][c]
				traffic.ForEachArrival(fr, len(list), lambda[c], expNeg[c], func(i, k int) {
					j := list[i]
					sub := &r.subs[j]
					addr := subAddr(int(j))
					for ; k > 0; k-- {
						r.dstSeqs[l]++
						seq := r.dstSeqs[l]
						f := netaddr.FlowOf(netaddr.UDP,
							netaddr.EndpointOf(addr, uint16(1024+fr.Intn(64512))),
							netaddr.EndpointOf(trafficDstBase+netaddr.Addr(uint32(seq)), uint16(443+(seq>>32))))
						hold := 1 + fr.Intn(holdSpan)
						r.openFlow(sub, f, int32(hold), now)
					}
				})
			}
		}
		r.sampleTick()
	}
}

// refreshFlows walks one subscriber's flow list: live flows refresh
// their mappings (stale handles fall back to the full translation
// path), and flows that expire or can get no mapping die back to the
// freelist.
func (r *realmSim) refreshFlows(sub *fleetSub, now time.Time) {
	prev := int32(-1)
	for idx := sub.head; idx >= 0; {
		nd := &r.arena[idx]
		next := nd.next
		ok := r.eng.Refresh(nd.ref, nd.f.Dst, now)
		if !ok {
			var v nat.Verdict
			_, nd.ref, v = r.eng.TranslateOutRef(nd.f, now)
			ok = v == nat.Ok
		}
		if ok {
			r.refreshes++
		}
		nd.ticksLeft--
		if nd.ticksLeft > 0 && ok {
			prev = idx
		} else {
			if prev >= 0 {
				r.arena[prev].next = next
			} else {
				sub.head = next
			}
			if next < 0 {
				sub.tail = prev
			}
			nd.next = r.freeHead
			r.freeHead = idx
		}
		idx = next
	}
}

// openFlow translates a fresh flow and, on success, links it onto the
// subscriber's list from the arena freelist.
func (r *realmSim) openFlow(sub *fleetSub, f netaddr.Flow, hold int32, now time.Time) {
	if _, ref, v := r.eng.TranslateOutRef(f, now); v == nat.Ok {
		var ni int32
		if r.freeHead >= 0 {
			ni = r.freeHead
			r.freeHead = r.arena[ni].next
		} else {
			r.arena = append(r.arena, flowNode{})
			ni = int32(len(r.arena) - 1)
		}
		r.arena[ni] = flowNode{f: f, ref: ref, ticksLeft: hold, next: -1}
		if sub.tail >= 0 {
			r.arena[sub.tail].next = ni
		} else {
			sub.head = ni
		}
		sub.tail = ni
	}
}

// sampleTick records the tick's concurrent-port distribution sample and
// utilization peak.
func (r *realmSim) sampleTick() {
	r.lc.Fold(&r.classHists, &r.allHist)
	ps := r.eng.PortStats()
	if udpCapacity := ps.Capacity / 2; udpCapacity > 0 {
		if u := float64(ps.InUse) / float64(udpCapacity); u > r.peakUtil {
			r.peakUtil = u
		}
	}
}

// trafficDstBase mirrors the traffic engine's synthetic remote space.
var trafficDstBase = netaddr.MustParseAddr("8.0.0.0")

// Observation sampling salts.
const (
	vantageSalt = 0xA5A5_5A5A_0F0F_F0F0
	noiseSalt   = 0x0123_4567_89AB_CDEF
)

// hash01 maps (seed, realm, day, salt) to a uniform [0,1) variate — a
// pure function, so observation sampling is independent of execution
// order and of checkpoint placement.
func hash01(seed int64, realm, day int, salt uint64) float64 {
	x := uint64(seed) ^ salt
	x ^= uint64(realm+1) * 0x9E3779B97F4A7C15
	x ^= uint64(day+1) * 0xBF58476D1CE4E5B9
	fr := traffic.NewFastRand(x)
	return fr.Float64()
}

// realmSeedMix is the odd constant mixing a realm's index into the run
// seed (a distinct stream family from the traffic engine's).
const realmSeedMix = -0x7EE3_62F5_A2B7_91E3

// Sim is a running fleet simulation, stepped a day at a time.
type Sim struct {
	cfg     Config // normalized: defaults applied
	rawObs  ObservationConfig
	day     int
	events  []Event
	evIdx   int
	applied int
	realms  []*realmSim
	// faultsInjected counts applied fault events by kind — lane-down,
	// lane-up, restart — for the daemon's metrics surface. Recomputed
	// from the timeline on resume, so it never needs serializing.
	faultsInjected [3]uint64
}

// countFault tallies ev if it is a fault kind.
func (s *Sim) countFault(ev Event) {
	switch ev.Kind {
	case EventLaneDown:
		s.faultsInjected[0]++
	case EventLaneUp:
		s.faultsInjected[1]++
	case EventRestart:
		s.faultsInjected[2]++
	}
}

// FaultsInjected reports the applied fault-event counts, indexed
// lane-down, lane-up, restart.
func (s *Sim) FaultsInjected() [3]uint64 { return s.faultsInjected }

// LanesDown reports the fleet-wide count of pool lanes currently dark.
func (s *Sim) LanesDown() int {
	total := 0
	for _, r := range s.realms {
		if sn, ok := r.eng.(*nat.Sharded); ok {
			total += sn.LanesDown()
		}
	}
	return total
}

// New builds a fleet simulation at day zero.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := cfg.withDefaults()
	s := &Sim{cfg: d, events: d.Timeline.sorted()}
	ringLen := d.Obs.Windows[len(d.Obs.Windows)-1]
	if ringLen > d.Days {
		ringLen = d.Days
	}
	for i, spec := range d.Carriers {
		r := &realmSim{
			idx:      i,
			spec:     spec,
			poolSize: len(spec.NAT.ExternalIPs),
			freeHead: -1,
			fr:       traffic.NewFastRand(uint64(d.Seed + int64(i+1)*realmSeedMix)),
			evRing:   make([]bool, ringLen),
			enRing:   make([]bool, ringLen),
		}
		r.addSubscribers(spec.Subscribers, d.Profile)
		r.rebuildLC()
		if spec.CGNEnabled {
			r.provisionEngine(d.Shards)
			r.enabled = true
		}
		s.realms = append(s.realms, r)
	}
	return s, nil
}

// Day reports the next virtual day to run (== days completed).
func (s *Sim) Day() int { return s.day }

// Done reports whether the horizon is reached.
func (s *Sim) Done() bool { return s.day >= s.cfg.Days }

// StepDay applies the day's scripted events and runs its ticks across
// the realm worker pool. Realms accumulate privately, so results are
// identical at any Workers value.
func (s *Sim) StepDay() {
	if s.Done() {
		return
	}
	for s.evIdx < len(s.events) && s.events[s.evIdx].Day == s.day {
		ev := s.events[s.evIdx]
		s.realms[ev.Carrier].apply(ev, s.cfg.Profile, s.cfg.Shards)
		s.countFault(ev)
		s.evIdx++
		s.applied++
	}
	workers := s.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(s.realms) {
		workers = len(s.realms)
	}
	if workers <= 1 {
		for _, r := range s.realms {
			r.runDay(s.day, s.cfg.Profile, s.cfg.Obs, s.cfg.Seed)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					s.realms[i].runDay(s.day, s.cfg.Profile, s.cfg.Obs, s.cfg.Seed)
				}
			}()
		}
		for i := range s.realms {
			next <- i
		}
		close(next)
		wg.Wait()
	}
	s.day++
}

// Run executes a whole fleet simulation.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for !s.Done() {
		s.StepDay()
	}
	return s.Result(), nil
}

// aggregationFootprint reports the total element count of every
// duration-facing accumulator — the observation rings and the sample
// histograms. The bounded-memory test pins this to be independent of
// the virtual horizon.
func (s *Sim) aggregationFootprint() int {
	total := 0
	for _, r := range s.realms {
		total += len(r.evRing) + len(r.enRing)
		for c := range r.classHists {
			counts, _ := r.classHists[c].State()
			total += len(counts)
		}
		counts, _ := r.allHist.State()
		total += len(counts)
	}
	return total
}

// RealmResult is one carrier's outcome.
type RealmResult struct {
	ID          string
	Cellular    bool
	EnabledEnd  bool
	Subscribers int
	Created     uint64
	Expired     uint64
	Refreshes   uint64
	Failures    uint64
	PeakUtil    float64
	// Digest is the realm engine's full state digest ("disabled" when
	// the carrier ends the run without CGN) — the resume determinism
	// anchor.
	Digest string
}

// WindowScore is E21's detection outcome for one observation window:
// confusion counts and derived rates for a detector that watched the
// fleet for the run's last Days days.
type WindowScore struct {
	Days      int
	Threshold int
	TP, FP    int
	FN, TN    int
	Precision float64
	Recall    float64
	F1        float64
}

// Result is the aggregate outcome of a fleet run.
type Result struct {
	Days           int
	Carriers       int
	SubscribersEnd int
	EventsApplied  int
	Realms         []RealmResult
	ByClass        [3]traffic.ClassStat
	All            traffic.ClassStat
	PeakUtil       float64
	Created        uint64
	Expired        uint64
	Refreshes      uint64
	Failures       uint64
	// Windows is the E21 dataset: detection quality as a function of
	// observation duration, ascending.
	Windows []WindowScore
}

// Result aggregates the realms in input order.
func (s *Sim) Result() *Result {
	res := &Result{
		Days:          s.day,
		Carriers:      len(s.realms),
		EventsApplied: s.applied,
	}
	var classHists [3]traffic.Hist
	var allHist traffic.Hist
	for _, r := range s.realms {
		rr := RealmResult{
			ID:          r.spec.ID,
			Cellular:    r.spec.Cellular,
			EnabledEnd:  r.enabled,
			Subscribers: r.activeSubscribers(),
			Created:     r.created,
			Expired:     r.expired,
			Refreshes:   r.refreshes,
			Failures:    r.failures(),
			PeakUtil:    r.peakUtil,
			Digest:      "disabled",
		}
		if r.eng != nil {
			rr.Digest = r.eng.StateDigest()
		}
		res.Realms = append(res.Realms, rr)
		res.SubscribersEnd += rr.Subscribers
		res.Created += rr.Created
		res.Expired += rr.Expired
		res.Refreshes += rr.Refreshes
		res.Failures += rr.Failures
		if rr.PeakUtil > res.PeakUtil {
			res.PeakUtil = rr.PeakUtil
		}
		for c := range classHists {
			res.ByClass[c].Subscribers += r.classSubs[c]
			classHists[c].Merge(&r.classHists[c])
		}
		allHist.Merge(&r.allHist)
	}
	for c := range classHists {
		h := &classHists[c]
		res.ByClass[c].Class = traffic.Class(c)
		res.ByClass[c].Samples = h.Count()
		res.ByClass[c].Median = h.Quantile(0.5)
		res.ByClass[c].P99 = h.Quantile(0.99)
		res.ByClass[c].Max = h.Max()
	}
	res.All = traffic.ClassStat{
		Subscribers: res.SubscribersEnd,
		Samples:     allHist.Count(),
		Median:      allHist.Quantile(0.5),
		P99:         allHist.Quantile(0.99),
		Max:         allHist.Max(),
	}
	res.Windows = s.scoreWindows()
	return res
}

// String summarizes an event count mismatch in errors.
func (s *Sim) String() string {
	return fmt.Sprintf("fleet.Sim{day %d/%d, %d carriers}", s.day, s.cfg.Days, len(s.realms))
}
