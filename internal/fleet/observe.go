package fleet

// E21 — detection precision/recall as a function of observation
// duration. The longitudinal observer accumulates one evidence bit per
// carrier per day (runDay writes it into the realm's fixed-size ring:
// CGN-active days are seen with VantageProb, any day can produce a
// spurious positive with NoiseProb). The detector then declares a
// carrier CGN over window W when at least max(1, W/ThresholdPer) of the
// last W days were positive; ground truth for the same window is
// whether the carrier actually ran CGN on any of those days. Scoring
// the same run at several window lengths reproduces the paper's
// longitudinal finding: recall climbs with observation duration while
// the scaled threshold keeps precision roughly flat — a snapshot
// measurement misses deployments a patient observer catches.

// threshold is the detector's positive-day requirement for window w.
func (o ObservationConfig) threshold(w int) int {
	t := w / o.ThresholdPer
	if t < 1 {
		t = 1
	}
	return t
}

// lastDays reads a day ring backward: counting from the run's final
// day, it reports how many of the last w entries are set and whether
// any is. days is the number of completed days (ring entries written).
func lastDays(ring []bool, days, w int) (count int, any bool) {
	n := len(ring)
	if w > days {
		w = days
	}
	for k := 1; k <= w; k++ {
		if ring[(days-k)%n] {
			count++
			any = true
		}
	}
	return count, any
}

// scoreWindows scores every configured observation window against the
// completed days, skipping windows longer than the run.
func (s *Sim) scoreWindows() []WindowScore {
	obs := s.cfg.Obs
	var out []WindowScore
	for _, w := range obs.Windows {
		if w > s.day {
			continue
		}
		ws := WindowScore{Days: w, Threshold: obs.threshold(w)}
		for _, r := range s.realms {
			positives, _ := lastDays(r.evRing, s.day, w)
			detected := positives >= ws.Threshold
			_, truth := lastDays(r.enRing, s.day, w)
			switch {
			case detected && truth:
				ws.TP++
			case detected && !truth:
				ws.FP++
			case !detected && truth:
				ws.FN++
			default:
				ws.TN++
			}
		}
		if ws.TP+ws.FP > 0 {
			ws.Precision = float64(ws.TP) / float64(ws.TP+ws.FP)
		}
		if ws.TP+ws.FN > 0 {
			ws.Recall = float64(ws.TP) / float64(ws.TP+ws.FN)
		}
		if ws.Precision+ws.Recall > 0 {
			ws.F1 = 2 * ws.Precision * ws.Recall / (ws.Precision + ws.Recall)
		}
		out = append(out, ws)
	}
	return out
}
