// Package ttlprobe implements the TTL-driven NAT enumeration test of §6.3
// (Figure 10): a coordinated client/server experiment that locates
// stateful middleboxes on the path and measures their mapping timeouts by
// selectively letting state expire at one hop while TTL-limited keepalives
// from both endpoints keep every other hop alive.
//
// Hop/TTL conventions (documented because off-by-ones are the whole game):
// hop j is the j-th TTL decrement on the client-to-server path; a packet
// sent with TTL=t is processed by hops 1..t and dies at hop t — and a NAT
// at hop t still refreshes its mapping for the dying packet (state is
// touched on receipt, before the TTL check; see simnet). Therefore:
//
//   - client keepalives with ttlc = j-1 keep hops 1..j-1 alive, not j;
//   - server keepalives with ttls = n-j keep hops j+1..n alive, not j,
//     where n is the total client-to-server hop count.
//
// After an idle period tidle, the server sends a full-TTL probe. If the
// probe does not arrive, hop j held (now expired) state: it is a NAT with
// mapping timeout < tidle.
package ttlprobe

import (
	"fmt"
	"strings"
	"time"

	"cgn/internal/netaddr"
	"cgn/internal/simnet"
)

// ServerPort is the probe server's well-known port.
const ServerPort = 4380

// Wire protocol verbs. INIT opens a session (response: "OK <observed
// external endpoint>"); KEEP is a keepalive in either direction; PROBE is
// the server's post-idle reachability probe; ECHO requests an immediate
// reply (path length measurement).
const (
	verbInit  = "INIT"
	verbOK    = "OK"
	verbKeep  = "KEEP"
	verbProbe = "PROBE"
	verbEcho  = "ECHO"
)

// Server is the server half of the experiment. In the real system the
// client steers the server over a TCP control channel; here the
// orchestrating Client invokes the control methods directly, which models
// that side channel without packets.
type Server struct {
	sock *simnet.Socket
}

// NewServer binds the probe server on host at ServerPort.
func NewServer(host *simnet.Host) *Server {
	s := &Server{sock: host.Open(netaddr.UDP, ServerPort)}
	s.sock.OnRecv(func(from netaddr.Endpoint, payload []byte) {
		verb, _, ok := splitVerb(payload)
		if !ok {
			return
		}
		switch verb {
		case verbInit:
			// Report the observed (post-translation) source back.
			s.sock.Send(from, []byte(verbOK+" "+from.String()))
		case verbEcho:
			s.sock.Send(from, []byte(verbOK+" "+from.String()))
		case verbKeep:
			// Client keepalive: no response needed.
		}
	})
	return s
}

// Endpoint returns the server's service endpoint.
func (s *Server) Endpoint() netaddr.Endpoint { return s.sock.LocalEndpoint() }

// SendKeepalive emits a TTL-limited keepalive toward a session's external
// endpoint (control-channel operation).
func (s *Server) SendKeepalive(ext netaddr.Endpoint, ttl int) {
	s.sock.SendTTL(ext, ttl, []byte(verbKeep))
}

// SendProbe emits the full-TTL reachability probe (control-channel
// operation).
func (s *Server) SendProbe(ext netaddr.Endpoint) {
	s.sock.Send(ext, []byte(verbProbe))
}

func splitVerb(payload []byte) (verb, rest string, ok bool) {
	s := string(payload)
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i], s[i+1:], true
	}
	return s, "", s != ""
}

// Config parameterizes an enumeration run.
type Config struct {
	// MaxIdle is the longest idle period tested; NATs with larger
	// timeouts go unnoticed (the paper uses 200 s and reports the
	// resulting blind spot in Table 7).
	MaxIdle time.Duration
	// Step is the timeout measurement granularity (paper: 10 s).
	Step time.Duration
	// KeepaliveEvery is the keepalive cadence during idling.
	KeepaliveEvery time.Duration
	// MaxHop bounds the per-hop scan.
	MaxHop int
	// ConfirmFailures re-runs a failed reachability experiment this many
	// times and only accepts the failure if every run fails — the
	// unstable-path filtering §6.3 describes. Zero trusts single runs
	// (fine on a loss-free network).
	ConfirmFailures int
	// EchoRetries re-sends path-length probes on silence.
	EchoRetries int
}

// DefaultConfig mirrors the deployed Netalyzr test parameters.
func DefaultConfig() Config {
	return Config{
		MaxIdle:        200 * time.Second,
		Step:           10 * time.Second,
		KeepaliveEvery: 10 * time.Second,
		MaxHop:         16,
	}
}

// NATObservation is one discovered stateful hop.
type NATObservation struct {
	// Hop is the middlebox's distance from the client in TTL decrements.
	Hop int
	// TimeoutLow and TimeoutHigh bracket the measured mapping timeout:
	// the state survived TimeoutLow of idling but not TimeoutHigh.
	TimeoutLow, TimeoutHigh time.Duration
}

// Result is the outcome of one enumeration session.
type Result struct {
	// PathLen is the smallest TTL that reaches the server. With R
	// decrementing elements (routers and NATs) on the path this is R+1,
	// since the packet must still be alive when delivered.
	PathLen int
	// External is the server-observed client endpoint.
	External netaddr.Endpoint
	// Mismatch reports that External differs from the client's local
	// address — NAT evidence even when no expiry is observed (Table 7).
	Mismatch bool
	// NATs lists discovered stateful hops in path order.
	NATs []NATObservation
	// Experiments counts reachability experiments performed.
	Experiments int
}

// MostDistantNAT returns the farthest stateful hop (Figure 11), or 0.
func (r Result) MostDistantNAT() int {
	if len(r.NATs) == 0 {
		return 0
	}
	return r.NATs[len(r.NATs)-1].Hop
}

// Client drives enumeration sessions from a subscriber host.
type Client struct {
	host   *simnet.Host
	server *Server
	cfg    Config
	clock  *simnet.Clock
}

// NewClient builds a client on host talking to server.
func NewClient(host *simnet.Host, server *Server, cfg Config) *Client {
	return &Client{host: host, server: server, cfg: cfg, clock: host.Network().Clock()}
}

// MeasurePathLength finds the smallest TTL that reaches the server, using
// only endpoint-visible evidence (did the echo reply arrive?). It returns
// 0 if even TTL 64 fails.
func (c *Client) MeasurePathLength() int {
	lo, hi := 1, simnet.DefaultTTL // invariant: hi works (checked first), lo-1 fails
	if !c.echo(simnet.DefaultTTL) {
		return 0
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if c.echo(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// echo sends an ECHO with the given TTL on a fresh flow and reports
// whether the reply arrived, retrying on silence per EchoRetries.
func (c *Client) echo(ttl int) bool {
	sock := c.host.Open(netaddr.UDP, 0)
	defer sock.Close()
	got := false
	sock.OnRecv(func(_ netaddr.Endpoint, payload []byte) {
		verb, _, _ := splitVerb(payload)
		if verb == verbOK {
			got = true
		}
	})
	for attempt := 0; attempt <= c.cfg.EchoRetries && !got; attempt++ {
		sock.SendTTL(c.server.Endpoint(), ttl, []byte(verbEcho))
	}
	return got
}

// session is one reachability experiment's flow state.
type session struct {
	sock     *simnet.Socket
	external netaddr.Endpoint
	probed   bool
}

// open starts a fresh flow and learns its external endpoint, retrying the
// INIT on silence per EchoRetries.
func (c *Client) open() (*session, bool) {
	s := &session{sock: c.host.Open(netaddr.UDP, 0)}
	s.sock.OnRecv(func(_ netaddr.Endpoint, payload []byte) {
		verb, rest, _ := splitVerb(payload)
		switch verb {
		case verbOK:
			if ep, err := netaddr.ParseEndpoint(rest); err == nil {
				s.external = ep
			}
		case verbProbe:
			s.probed = true
		}
	})
	for attempt := 0; attempt <= c.cfg.EchoRetries && s.external.IsZero(); attempt++ {
		s.sock.Send(c.server.Endpoint(), []byte(verbInit))
	}
	if s.external.IsZero() {
		s.sock.Close()
		return nil, false
	}
	return s, true
}

// confirmedExperiment runs an experiment and, when it reports
// unreachable, re-runs it per ConfirmFailures: a NAT expiry is
// deterministic, random loss is not, so repetition separates the two.
func (c *Client) confirmedExperiment(ttlc, ttls int, tidle time.Duration) (reachable, ok bool) {
	for attempt := 0; ; attempt++ {
		reachable, ok = c.experiment(ttlc, ttls, tidle)
		if !ok || reachable || attempt >= c.cfg.ConfirmFailures {
			return reachable, ok
		}
	}
}

// experiment runs one reachability experiment per Figure 10: does the
// server still reach the client after tidle of idling, when client
// keepalives use ttlc and server keepalives use ttls?
func (c *Client) experiment(ttlc, ttls int, tidle time.Duration) (reachable, ok bool) {
	s, opened := c.open()
	if !opened {
		return false, false
	}
	defer s.sock.Close()
	for elapsed := time.Duration(0); elapsed < tidle; elapsed += c.cfg.KeepaliveEvery {
		step := c.cfg.KeepaliveEvery
		if remaining := tidle - elapsed; remaining < step {
			step = remaining
		}
		c.clock.Advance(step)
		if ttlc > 0 {
			s.sock.SendTTL(c.server.Endpoint(), ttlc, []byte(verbKeep))
		}
		if ttls > 0 {
			c.server.SendKeepalive(s.external, ttls)
		}
	}
	s.probed = false
	c.server.SendProbe(s.external)
	return s.probed, true
}

// Enumerate performs the full per-hop scan, classifying each hop as
// stateful (NAT) or not and bracketing NAT timeouts by binary search.
func (c *Client) Enumerate() (Result, error) {
	var res Result
	res.PathLen = c.MeasurePathLength()
	if res.PathLen == 0 {
		return res, fmt.Errorf("ttlprobe: server unreachable")
	}
	s, ok := c.open()
	if !ok {
		return res, fmt.Errorf("ttlprobe: session setup failed")
	}
	res.External = s.external
	res.Mismatch = s.external.Addr != c.host.Addr()
	s.sock.Close()

	// hops is the number of TTL-decrementing elements on the path.
	hops := res.PathLen - 1
	maxHop := hops
	if maxHop > c.cfg.MaxHop {
		maxHop = c.cfg.MaxHop
	}
	for j := 1; j <= maxHop; j++ {
		// Client keepalives die at hop j-1 (refreshing 1..j-1); server
		// keepalives die at client-hop j+1 (refreshing j+1..hops).
		ttlc, ttls := j-1, hops-j
		// First: does state at hop j survive the maximum idle period?
		reachable, ok := c.confirmedExperiment(ttlc, ttls, c.cfg.MaxIdle)
		res.Experiments++
		if !ok {
			return res, fmt.Errorf("ttlprobe: experiment setup failed at hop %d", j)
		}
		if reachable {
			continue // not a NAT, or timeout beyond MaxIdle
		}
		// Hop j is stateful: bracket its timeout. Invariant: state
		// survives idling `lo` but not `hi`.
		lo, hi := time.Duration(0), c.cfg.MaxIdle
		for hi-lo > c.cfg.Step {
			mid := lo + (hi-lo)/2
			mid = mid.Round(c.cfg.Step)
			if mid <= lo {
				mid = lo + c.cfg.Step
			}
			if mid >= hi {
				break
			}
			reachable, ok = c.confirmedExperiment(ttlc, ttls, mid)
			res.Experiments++
			if !ok {
				return res, fmt.Errorf("ttlprobe: experiment setup failed at hop %d", j)
			}
			if reachable {
				lo = mid
			} else {
				hi = mid
			}
		}
		res.NATs = append(res.NATs, NATObservation{Hop: j, TimeoutLow: lo, TimeoutHigh: hi})
	}
	return res, nil
}
