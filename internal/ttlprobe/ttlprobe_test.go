package ttlprobe

import (
	"math/rand"
	"testing"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/simnet"
)

func addr(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

// lab is a NAT444 test topology with known ground truth:
//
//	client C (LAN) - CPE(hop 1, timeout 65s) - 2 routers - CGN(hop 4,
//	timeout 40s) - 1 router - public - server (+2 server hops)
//
// and a cellular client B - 2 routers - CGN(hop 3).
type lab struct {
	net    *simnet.Network
	server *Server
	c, b   *simnet.Host
	public *simnet.Host
	cgnDev *simnet.NATDev
	cpeDev *simnet.NATDev
}

func buildLab(t *testing.T, cgnTimeout, cpeTimeout time.Duration) *lab {
	t.Helper()
	l := &lab{net: simnet.New()}
	rng := rand.New(rand.NewSource(2))
	pub := l.net.Public()

	srvHost := l.net.NewHost("probe-server", pub, addr("203.0.113.10"), 2, rng)
	l.server = NewServer(srvHost)

	isp := l.net.NewRealm("isp", 1)
	l.net.AttachNAT("cgn", isp, pub, nat.Config{
		Type:             nat.PortRestricted,
		PortAlloc:        nat.Random,
		Pooling:          nat.Paired,
		ExternalIPs:      []netaddr.Addr{addr("198.51.100.50")},
		UDPTimeout:       cgnTimeout,
		RefreshOnInbound: true,
		Seed:             3,
	}, 2, 1)
	l.cgnDev = isp.Up()
	l.b = l.net.NewHost("B", isp, addr("100.64.0.2"), 0, rng)

	lan := l.net.NewRealm("lanC", 0)
	l.net.AttachNAT("cpe", lan, isp, nat.Config{
		Type:             nat.PortRestricted,
		PortAlloc:        nat.Preservation,
		Pooling:          nat.Paired,
		ExternalIPs:      []netaddr.Addr{addr("100.64.0.100")},
		UDPTimeout:       cpeTimeout,
		RefreshOnInbound: true,
		Seed:             4,
	}, 0, 0)
	l.cpeDev = lan.Up()
	l.c = l.net.NewHost("C", lan, addr("192.168.1.2"), 0, rng)

	l.public = l.net.NewHost("P", pub, addr("203.0.113.99"), 0, rng)
	return l
}

func TestMeasurePathLength(t *testing.T) {
	l := buildLab(t, 40*time.Second, 65*time.Second)
	// Cellular B: 2 routers + CGN + 1 router + 2 server hops = 6
	// decrements, so the minimum working TTL is 7.
	cb := NewClient(l.b, l.server, DefaultConfig())
	if got := cb.MeasurePathLength(); got != 7 {
		t.Errorf("B path length = %d, want 7", got)
	}
	// NAT444 C: CPE(1) + 2 routers + CGN(4) + 1 router + 2 server = 7
	// decrements -> minimum TTL 8.
	cc := NewClient(l.c, l.server, DefaultConfig())
	if got := cc.MeasurePathLength(); got != 8 {
		t.Errorf("C path length = %d, want 8", got)
	}
	// Public client: only the server's 2 access-hop routers decrement,
	// so the minimum TTL is 3.
	cp := NewClient(l.public, l.server, DefaultConfig())
	if got := cp.MeasurePathLength(); got != 3 {
		t.Errorf("public path length = %d, want 3", got)
	}
}

func TestEnumerateNAT444(t *testing.T) {
	l := buildLab(t, 40*time.Second, 65*time.Second)
	client := NewClient(l.c, l.server, DefaultConfig())
	res, err := client.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Mismatch {
		t.Error("NAT444 client must observe an address mismatch")
	}
	if res.External.Addr != addr("198.51.100.50") {
		t.Errorf("external = %v, want CGN pool address", res.External)
	}
	if len(res.NATs) != 2 {
		t.Fatalf("found %d NATs (%+v), want 2", len(res.NATs), res.NATs)
	}
	cpe, cgn := res.NATs[0], res.NATs[1]
	if cpe.Hop != 1 {
		t.Errorf("CPE hop = %d, want 1", cpe.Hop)
	}
	if cgn.Hop != 4 {
		t.Errorf("CGN hop = %d, want 4", cgn.Hop)
	}
	// Timeout brackets must contain the ground truth.
	if !(cpe.TimeoutLow <= 65*time.Second && 65*time.Second < cpe.TimeoutHigh) {
		t.Errorf("CPE timeout bracket [%v, %v) misses 65s", cpe.TimeoutLow, cpe.TimeoutHigh)
	}
	if !(cgn.TimeoutLow <= 40*time.Second && 40*time.Second < cgn.TimeoutHigh) {
		t.Errorf("CGN timeout bracket [%v, %v) misses 40s", cgn.TimeoutLow, cgn.TimeoutHigh)
	}
	// Bracket precision: one step.
	if cgn.TimeoutHigh-cgn.TimeoutLow > 10*time.Second {
		t.Errorf("CGN bracket wider than step: [%v, %v)", cgn.TimeoutLow, cgn.TimeoutHigh)
	}
	if res.MostDistantNAT() != 4 {
		t.Errorf("MostDistantNAT = %d, want 4", res.MostDistantNAT())
	}
}

func TestEnumerateCellular(t *testing.T) {
	l := buildLab(t, 30*time.Second, 65*time.Second)
	client := NewClient(l.b, l.server, DefaultConfig())
	res, err := client.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NATs) != 1 {
		t.Fatalf("found %d NATs (%+v), want 1", len(res.NATs), res.NATs)
	}
	if res.NATs[0].Hop != 3 {
		t.Errorf("CGN hop = %d, want 3", res.NATs[0].Hop)
	}
	if !(res.NATs[0].TimeoutLow <= 30*time.Second && 30*time.Second < res.NATs[0].TimeoutHigh) {
		t.Errorf("timeout bracket [%v, %v) misses 30s", res.NATs[0].TimeoutLow, res.NATs[0].TimeoutHigh)
	}
}

func TestEnumeratePublicClientFindsNothing(t *testing.T) {
	l := buildLab(t, 40*time.Second, 65*time.Second)
	client := NewClient(l.public, l.server, DefaultConfig())
	res, err := client.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatch {
		t.Error("public client must not observe a mismatch")
	}
	if len(res.NATs) != 0 {
		t.Errorf("public client found NATs: %+v", res.NATs)
	}
}

func TestLongTimeoutGoesUnnoticed(t *testing.T) {
	// CGN timeout 300 s > MaxIdle 200 s: the paper's blind spot. The CPE
	// (65 s) is still found; the mismatch still betrays translation.
	l := buildLab(t, 300*time.Second, 65*time.Second)
	client := NewClient(l.c, l.server, DefaultConfig())
	res, err := client.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NATs) != 1 || res.NATs[0].Hop != 1 {
		t.Fatalf("NATs = %+v, want only the CPE at hop 1", res.NATs)
	}
	if !res.Mismatch {
		t.Error("mismatch must still be observed")
	}
}

func TestShortTimeoutBracketsAtStep(t *testing.T) {
	l := buildLab(t, 10*time.Second, 65*time.Second)
	client := NewClient(l.b, l.server, DefaultConfig())
	res, err := client.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NATs) != 1 {
		t.Fatalf("NATs = %+v", res.NATs)
	}
	ob := res.NATs[0]
	if !(ob.TimeoutLow <= 10*time.Second && 10*time.Second < ob.TimeoutHigh) {
		t.Errorf("bracket [%v, %v) misses 10s", ob.TimeoutLow, ob.TimeoutHigh)
	}
}

func TestExperimentCountBounded(t *testing.T) {
	l := buildLab(t, 40*time.Second, 65*time.Second)
	client := NewClient(l.c, l.server, DefaultConfig())
	res, err := client.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	// Path length 7 -> 6 scanned hops; each non-NAT costs 1 experiment,
	// each NAT costs 1 + ~log2(20) more. The paper quotes ~60 per
	// session; ours must stay well under that.
	if res.Experiments > 30 {
		t.Errorf("experiments = %d, want a bounded scan", res.Experiments)
	}
}

func TestMostDistantNATEmpty(t *testing.T) {
	var r Result
	if r.MostDistantNAT() != 0 {
		t.Error("empty result should report 0")
	}
}

// Under per-hop packet loss, failure confirmation (the §6.3 unstable-path
// filtering) keeps the enumeration correct: the same NATs, the same
// timeout brackets, no phantom stateful hops from lost probes.
func TestEnumerateUnderPacketLoss(t *testing.T) {
	l := buildLab(t, 40*time.Second, 65*time.Second)
	l.net.SetLoss(0.02, 99)
	cfg := DefaultConfig()
	cfg.ConfirmFailures = 2
	cfg.EchoRetries = 4
	client := NewClient(l.c, l.server, cfg)
	res, err := client.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NATs) != 2 {
		t.Fatalf("found %d NATs (%+v), want 2 despite loss", len(res.NATs), res.NATs)
	}
	if res.NATs[0].Hop != 1 || res.NATs[1].Hop != 4 {
		t.Errorf("hops = %d, %d; want 1 and 4", res.NATs[0].Hop, res.NATs[1].Hop)
	}
	cgn := res.NATs[1]
	if !(cgn.TimeoutLow <= 40*time.Second && 40*time.Second < cgn.TimeoutHigh) {
		t.Errorf("CGN bracket [%v, %v) misses 40s under loss", cgn.TimeoutLow, cgn.TimeoutHigh)
	}
}

// Without confirmation, loss can fabricate stateful hops; this guards the
// knob's documented value rather than a hard guarantee (a lucky seed may
// pass), so it only checks that confirmation never makes things worse.
func TestConfirmationNeverAddsNATs(t *testing.T) {
	base := buildLab(t, 40*time.Second, 65*time.Second)
	baseRes, err := NewClient(base.c, base.server, DefaultConfig()).Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	lossy := buildLab(t, 40*time.Second, 65*time.Second)
	lossy.net.SetLoss(0.02, 7)
	cfg := DefaultConfig()
	cfg.ConfirmFailures = 3
	cfg.EchoRetries = 4
	lossyRes, err := NewClient(lossy.c, lossy.server, cfg).Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if len(lossyRes.NATs) > len(baseRes.NATs) {
		t.Errorf("confirmation admitted phantom NATs: %d vs %d", len(lossyRes.NATs), len(baseRes.NATs))
	}
}
