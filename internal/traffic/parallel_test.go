// Parallel-vs-sequential byte-identity: the engine's determinism
// contract says Config.Workers is purely a resource knob. This test
// drives every registry scenario with a traffic profile through the
// engine at workers=1 and workers=N over real generated worlds and
// asserts deeply identical Results and identical per-realm NAT state
// digests at the final tick.
//
// The test lives in package traffic_test because it builds worlds:
// internet imports traffic (Scenario.Traffic), so an in-package test
// could not import internet back.
package traffic_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"cgn/internal/internet"
	"cgn/internal/nat"
	"cgn/internal/traffic"
)

// trafficScenarios returns every registry scenario whose profile
// enables the engine.
func trafficScenarios(t *testing.T) []string {
	t.Helper()
	var names []string
	for _, name := range internet.Names() {
		sc, err := internet.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if sc.Traffic.Enabled() {
			names = append(names, name)
		}
	}
	return names
}

func TestRegistryHasTrafficScenarios(t *testing.T) {
	names := trafficScenarios(t)
	want := map[string]bool{"diurnal-week": false, "mobile-churn-week": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("registry scenario %q lost its traffic profile (coverage of this test shrank)", n)
		}
	}
}

// TestParallelMatchesSequential is the workers=1 vs workers=N
// differential over every registry traffic scenario.
func TestParallelMatchesSequential(t *testing.T) {
	for _, name := range trafficScenarios(t) {
		t.Run(name, func(t *testing.T) {
			sc, err := internet.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			sc.Seed = 5
			w := internet.Build(sc)
			// The same realm specs the E18 replay derives from the world.
			specs := make([]traffic.RealmSpec, 0, len(w.CGNs))
			for _, d := range w.CGNs {
				specs = append(specs, traffic.RealmSpec{
					ID:          fmt.Sprintf("AS%d/%d", d.ASN, d.Realm),
					Cellular:    d.Cellular,
					NAT:         d.Dev.NAT.Config(),
					Subscribers: d.Dev.NAT.PortStats().Subscribers,
				})
			}
			if len(specs) == 0 {
				t.Fatalf("scenario %q built a world without carrier NATs", name)
			}

			lastTick := sc.Traffic.WithDefaults().Ticks - 1
			run := func(workers int) (*traffic.Result, map[string]string) {
				var mu sync.Mutex
				digests := make(map[string]string)
				res := traffic.Run(traffic.Config{
					Seed:    sc.Seed ^ 0x7AFF1C0DE,
					Profile: sc.Traffic,
					Realms:  specs,
					Workers: workers,
					Observer: func(realm traffic.RealmSpec, tick int, _ time.Time, n nat.View) {
						if tick != lastTick {
							return
						}
						d := n.StateDigest()
						mu.Lock()
						digests[realm.ID] = d
						mu.Unlock()
					},
				})
				return res, digests
			}

			seqRes, seqDig := run(1)
			parRes, parDig := run(4)

			if !reflect.DeepEqual(seqRes, parRes) {
				t.Errorf("workers=1 vs workers=4 Results differ:\n%+v\nvs\n%+v", seqRes, parRes)
			}
			if len(seqDig) != len(seqRes.Realms) {
				t.Fatalf("digest observer saw %d realms, result has %d (realm IDs must be unique)",
					len(seqDig), len(seqRes.Realms))
			}
			if !reflect.DeepEqual(seqDig, parDig) {
				t.Errorf("workers=1 vs workers=4 NAT state digests differ:\n%v\nvs\n%v", seqDig, parDig)
			}
			// Some scenarios (e.g. sparse-cgn) can build worlds whose
			// carrier NATs saw no subscribers at this seed; the identity
			// check above still holds, but only loaded runs must have
			// driven flows.
			if len(seqRes.Realms) > 0 && seqRes.Created == 0 {
				t.Fatalf("scenario %q loaded %d realms but drove no flows", name, len(seqRes.Realms))
			}
		})
	}
}
