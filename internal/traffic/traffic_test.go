package traffic

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
)

// weekProfile is the diurnal-week shape at test scale.
func weekProfile() Profile {
	return Profile{
		Ticks:         2 * 96,
		DayTicks:      96,
		DiurnalAmp:    0.7,
		HeavyFrac:     0.06,
		LightFrac:     0.50,
		FlowsPerTick:  0.8,
		HeavyMult:     12,
		FlowHoldTicks: 4,
	}
}

func testRealms(n, subs int) []RealmSpec {
	realms := make([]RealmSpec, n)
	for i := range realms {
		realms[i] = RealmSpec{
			ID:       "test-realm",
			Cellular: i%2 == 1,
			NAT: nat.Config{
				Type:        nat.Symmetric,
				PortAlloc:   nat.Random,
				Pooling:     nat.Paired,
				ExternalIPs: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.1") + netaddr.Addr(i)},
				UDPTimeout:  65 * time.Second,
				Seed:        int64(i + 1),
			},
			Subscribers: subs,
		}
	}
	return realms
}

// TestRunDeterministic is the engine's core guarantee: the same (seed,
// profile, realm set) produces a deeply identical Result on every run.
func TestRunDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Profile: weekProfile(), Realms: testRealms(3, 24)}
	a := Run(cfg)
	b := Run(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config produced different results:\n%+v\nvs\n%+v", a, b)
	}
	if a.Created == 0 || a.Subscribers != 3*24 {
		t.Fatalf("run produced no load: %+v", a)
	}
}

// TestFigure8Ordering: with a heavy-hitter tail, the per-subscriber
// concurrent-port distribution must reproduce the paper's Figure 8 shape
// — max well above the 99th percentile, which sits well above the median.
func TestFigure8Ordering(t *testing.T) {
	res := Run(Config{Seed: 7, Profile: weekProfile(), Realms: testRealms(2, 48)})
	all := res.All
	if !(all.Max > all.P99 && all.P99 > all.Median && all.Median > 0) {
		t.Fatalf("Figure 8 ordering violated: max=%d p99=%d median=%d", all.Max, all.P99, all.Median)
	}
	if all.Max < 2*all.P99 && all.P99 < 2*all.Median {
		t.Errorf("distribution tail too flat for Fig 8: max=%d p99=%d median=%d", all.Max, all.P99, all.Median)
	}
	// The class split is the mechanism: heavy hitters must dominate the
	// median class, which must dominate the light class.
	heavy, median, light := res.ByClass[Heavy], res.ByClass[Median], res.ByClass[Light]
	if !(heavy.Median > median.Median && median.Median > light.Median) {
		t.Errorf("class medians not ordered: heavy=%d median=%d light=%d",
			heavy.Median, median.Median, light.Median)
	}
}

// TestDiurnalModulation: with a strong day curve, mean utilization
// around the daily peak must exceed the trough.
func TestDiurnalModulation(t *testing.T) {
	p := weekProfile()
	p.Ticks = p.DayTicks // one period
	p.DiurnalAmp = 0.9
	res := Run(Config{Seed: 3, Profile: p, Realms: testRealms(2, 32)})
	mean := func(lo, hi int) float64 {
		s := 0.0
		for t := lo; t < hi; t++ {
			s += res.MeanUtil[t]
		}
		return s / float64(hi-lo)
	}
	day := p.DayTicks
	trough := mean(0, day/6)
	peak := mean(day/2-day/12, day/2+day/12)
	if peak <= trough {
		t.Fatalf("no diurnal swing: trough %.6f, peak %.6f", trough, peak)
	}
	if res.PeakTick < day/4 || res.PeakTick > 3*day/4 {
		t.Errorf("peak tick %d not in the middle of the day (day = %d ticks)", res.PeakTick, day)
	}
}

// TestDiurnalFactorShape pins the curve's endpoints and symmetry.
func TestDiurnalFactorShape(t *testing.T) {
	p := Profile{DayTicks: 100, DiurnalAmp: 0.5}
	if f := DiurnalFactor(p, 0); f > 0.51 {
		t.Errorf("tick 0 should be the trough, factor %v", f)
	}
	if f := DiurnalFactor(p, 50); f < 1.49 {
		t.Errorf("mid-day should be the peak, factor %v", f)
	}
	if f := DiurnalFactor(p, 100); f > 0.51 {
		t.Errorf("next day's tick 0 should be the trough again, factor %v", f)
	}
	if f := DiurnalFactor(Profile{DayTicks: 100}, 50); f != 1 {
		t.Errorf("zero amplitude must not modulate, factor %v", f)
	}
}

// TestDisabledProfile: the zero profile runs no time and says so.
func TestDisabledProfile(t *testing.T) {
	res := Run(Config{Seed: 1, Realms: testRealms(2, 8)})
	if res.Enabled() {
		t.Fatal("disabled profile reports Enabled")
	}
	if res.Created != 0 || len(res.MeanUtil) != 0 {
		t.Fatalf("disabled run did work: %+v", res)
	}
	// Enabled profile over zero subscribers is equally inert.
	res = Run(Config{Seed: 1, Profile: weekProfile(), Realms: testRealms(2, 0)})
	if res.Enabled() || res.Created != 0 {
		t.Fatalf("subscriber-less run did work: %+v", res)
	}
}

// TestExpiryDrainsMappings: after the run, created minus expired must
// equal the mappings still live in the final tick's tables — the engine
// must not leak mappings past their timeout.
func TestExpiryDrainsMappings(t *testing.T) {
	p := weekProfile()
	p.Ticks = 64
	p.DayTicks = 32
	var lastLive int
	res := Run(Config{
		Seed: 9, Profile: p, Realms: testRealms(1, 16),
		Observer: func(_ RealmSpec, tick int, _ time.Time, n nat.View) {
			if tick == p.Ticks-1 {
				lastLive = n.NumMappings()
			}
		},
	})
	if res.Created == 0 {
		t.Fatal("no mappings created")
	}
	if got := res.Created - res.Expired; got != uint64(lastLive) {
		t.Errorf("created-expired = %d but %d mappings live at the final tick", got, lastLive)
	}
}

// TestProfileValidate drives Validate through each failure class and
// confirms defaults leave a valid profile valid.
func TestProfileValidate(t *testing.T) {
	if err := (Profile{}).Validate(); err != nil {
		t.Errorf("zero profile must validate: %v", err)
	}
	if err := weekProfile().Validate(); err != nil {
		t.Errorf("week profile must validate: %v", err)
	}
	if err := weekProfile().WithDefaults().Validate(); err != nil {
		t.Errorf("defaulted profile must validate: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Profile)
		errPart string
	}{
		{"negative ticks", func(p *Profile) { p.Ticks = -1 }, "Ticks"},
		{"negative day ticks", func(p *Profile) { p.DayTicks = -5 }, "DayTicks"},
		{"negative tick step", func(p *Profile) { p.TickStep = -time.Second }, "TickStep"},
		{"amp above one", func(p *Profile) { p.DiurnalAmp = 1.5 }, "DiurnalAmp"},
		{"negative heavy frac", func(p *Profile) { p.HeavyFrac = -0.1 }, "HeavyFrac"},
		{"light frac above one", func(p *Profile) { p.LightFrac = 1.2 }, "LightFrac"},
		{"class fractions exceed one", func(p *Profile) { p.HeavyFrac, p.LightFrac = 0.6, 0.6 }, "class fractions"},
		{"negative rate", func(p *Profile) { p.FlowsPerTick = -1 }, "FlowsPerTick"},
		{"sub-median heavy mult", func(p *Profile) { p.HeavyMult = 0.5 }, "HeavyMult"},
		{"negative hold", func(p *Profile) { p.FlowHoldTicks = -2 }, "FlowHoldTicks"},
	}
	for _, c := range cases {
		p := weekProfile()
		c.mutate(&p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.errPart) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.errPart)
		}
	}
}

// TestHistMerge: merging per-realm histograms must be indistinguishable
// from accumulating every sample into one histogram — the property the
// parallel engine's ordered merge rests on.
func TestHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, all Hist
	for i := 0; i < 4096; i++ {
		v := rng.Intn(200)
		if rng.Intn(2) == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		all.Add(v)
	}
	a.Merge(&b)
	if a.n != all.n {
		t.Fatalf("merged n = %d, want %d", a.n, all.n)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := a.Quantile(q), all.Quantile(q); got != want {
			t.Errorf("quantile(%v) = %d after merge, want %d", q, got, want)
		}
	}
	if got, want := a.Max(), all.Max(); got != want {
		t.Errorf("max = %d after merge, want %d", got, want)
	}
	for v := 0; v < 200; v++ {
		var got, want uint64
		if v < len(a.counts) {
			got = a.counts[v]
		}
		if v < len(all.counts) {
			want = all.counts[v]
		}
		if got != want {
			t.Fatalf("counts[%d] = %d after merge, want %d", v, got, want)
		}
	}

	// Merging into an empty histogram and merging an empty one are both
	// exact.
	var empty, dst Hist
	dst.Merge(&all)
	dst.Merge(&empty)
	if dst.n != all.n || dst.Quantile(0.5) != all.Quantile(0.5) || dst.Max() != all.Max() {
		t.Errorf("empty-merge changed the histogram: %+v vs %+v", dst, all)
	}
}

// TestHistGeometricGrowth: a rising maximum must cost O(log max)
// reallocations, not one per new peak.
func TestHistGeometricGrowth(t *testing.T) {
	var h Hist
	grows := 0
	prevLen := 0
	for v := 0; v <= 4096; v++ {
		h.Add(v)
		if len(h.counts) != prevLen {
			grows++
			prevLen = len(h.counts)
		}
	}
	if grows > 16 {
		t.Errorf("counts reallocated %d times for max 4096; growth is not geometric", grows)
	}
	if got := h.Max(); got != 4096 {
		t.Errorf("max = %d, want 4096", got)
	}
	if h.n != 4097 {
		t.Errorf("n = %d, want 4097", h.n)
	}
}

// TestHistQuantiles pins the histogram's percentile arithmetic.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("median of 1..100 = %d, want 50", got)
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Errorf("p99 of 1..100 = %d, want 99", got)
	}
	if got := h.Max(); got != 100 {
		t.Errorf("max of 1..100 = %d, want 100", got)
	}
	var empty Hist
	if empty.Quantile(0.5) != 0 || empty.Max() != 0 {
		t.Error("empty histogram must report zeros")
	}
}
