// Shard-count byte-identity: the sharded engine's determinism contract
// says Config.Shards (>= 1) is purely a resource knob — subscribers pin
// to lanes by address hash and every lane is driven in the same order
// whatever shard drives it, so Results and per-realm NAT state digests
// are identical at any shard count. This test is the differential: every
// registry traffic scenario plus a synthetic multi-lane realm set, run
// at shards=1 against shards=N (and against workers x shards), asserting
// deeply equal Results and identical final-tick digests.
//
// Lives in package traffic_test for the same reason as parallel_test.go:
// it builds registry worlds, and internet imports traffic.
package traffic_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"cgn/internal/internet"
	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/traffic"
)

// runShardedDiff runs the spec set at the given workers/shards and
// returns the Result plus per-realm final-tick state digests.
func runShardedDiff(profile traffic.Profile, seed int64, specs []traffic.RealmSpec, workers, shards int) (*traffic.Result, map[string]string) {
	lastTick := profile.WithDefaults().Ticks - 1
	var mu sync.Mutex
	digests := make(map[string]string)
	res := traffic.Run(traffic.Config{
		Seed:    seed,
		Profile: profile,
		Realms:  specs,
		Workers: workers,
		Shards:  shards,
		Observer: func(realm traffic.RealmSpec, tick int, _ time.Time, n nat.View) {
			if tick != lastTick {
				return
			}
			d := n.StateDigest()
			mu.Lock()
			digests[realm.ID] = d
			mu.Unlock()
		},
	})
	return res, digests
}

// TestShardedShardCountInvariance is the shards=1 vs shards=N
// differential over every registry traffic scenario.
func TestShardedShardCountInvariance(t *testing.T) {
	for _, name := range trafficScenarios(t) {
		t.Run(name, func(t *testing.T) {
			sc, err := internet.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			sc.Seed = 5
			w := internet.Build(sc)
			specs := make([]traffic.RealmSpec, 0, len(w.CGNs))
			for _, d := range w.CGNs {
				specs = append(specs, traffic.RealmSpec{
					ID:          fmt.Sprintf("AS%d/%d", d.ASN, d.Realm),
					Cellular:    d.Cellular,
					NAT:         d.Dev.NAT.Config(),
					Subscribers: d.Dev.NAT.PortStats().Subscribers,
				})
			}
			if len(specs) == 0 {
				t.Fatalf("scenario %q built a world without carrier NATs", name)
			}

			oneRes, oneDig := runShardedDiff(sc.Traffic, sc.Seed^0x7AFF1C0DE, specs, 1, 1)
			nRes, nDig := runShardedDiff(sc.Traffic, sc.Seed^0x7AFF1C0DE, specs, 1, 4)

			if !reflect.DeepEqual(oneRes, nRes) {
				t.Errorf("shards=1 vs shards=4 Results differ:\n%+v\nvs\n%+v", oneRes, nRes)
			}
			if !reflect.DeepEqual(oneDig, nDig) {
				t.Errorf("shards=1 vs shards=4 NAT state digests differ:\n%v\nvs\n%v", oneDig, nDig)
			}
			if len(oneRes.Realms) > 0 && oneRes.Created == 0 {
				t.Fatalf("scenario %q loaded %d realms but drove no flows", name, len(oneRes.Realms))
			}
		})
	}
}

// multiLaneSpecs builds realms whose pools actually split into several
// lanes — registry worlds are often single-IP, which clamps to one
// shard and would not exercise cross-lane scheduling.
func multiLaneSpecs() []traffic.RealmSpec {
	mkIPs := func(first string, n int) []netaddr.Addr {
		base := netaddr.MustParseAddr(first)
		ips := make([]netaddr.Addr, n)
		for i := range ips {
			ips[i] = base + netaddr.Addr(i)
		}
		return ips
	}
	return []traffic.RealmSpec{
		{
			ID: "multi/sym-random",
			NAT: nat.Config{
				Type:        nat.Symmetric,
				PortAlloc:   nat.Random,
				Pooling:     nat.Paired,
				ExternalIPs: mkIPs("198.51.100.1", 4),
				UDPTimeout:  40 * time.Second,
				PortLo:      1024,
				PortHi:      4095,
				Seed:        11,
			},
			Subscribers: 600,
		},
		{
			ID:       "multi/cone-seq-quota",
			Cellular: true,
			NAT: nat.Config{
				Type:                   nat.PortRestricted,
				PortAlloc:              nat.Sequential,
				Pooling:                nat.Paired,
				ExternalIPs:            mkIPs("203.0.113.16", 5),
				UDPTimeout:             25 * time.Second,
				PortQuotaPerSubscriber: 6,
				PortLo:                 1024,
				PortHi:                 2047,
				Seed:                   12,
			},
			Subscribers: 400,
		},
		{
			ID: "multi/chunk",
			NAT: nat.Config{
				Type:        nat.Symmetric,
				PortAlloc:   nat.RandomChunk,
				ChunkSize:   256,
				Pooling:     nat.Paired,
				ExternalIPs: mkIPs("192.0.2.32", 3),
				UDPTimeout:  30 * time.Second,
				PortLo:      1024,
				PortHi:      8191,
				Seed:        13,
			},
			Subscribers: 300,
		},
	}
}

// TestShardedMultiLaneInvariance drives synthetic multi-lane realms at
// every meaningful shard count (1 through beyond the pool size, which
// clamps) and across worker counts, asserting identical Results and
// digests throughout.
func TestShardedMultiLaneInvariance(t *testing.T) {
	profile := traffic.Profile{
		Ticks:         40,
		DayTicks:      24,
		TickStep:      15 * time.Second,
		DiurnalAmp:    0.6,
		HeavyFrac:     0.05,
		LightFrac:     0.5,
		FlowsPerTick:  0.8,
		HeavyMult:     6,
		FlowHoldTicks: 3,
	}
	specs := multiLaneSpecs()

	baseRes, baseDig := runShardedDiff(profile, 99, specs, 1, 1)
	if baseRes.Created == 0 {
		t.Fatal("baseline sharded run drove no flows")
	}
	if len(baseDig) != len(specs) {
		t.Fatalf("observer collected %d digests, want %d", len(baseDig), len(specs))
	}
	for _, tc := range []struct{ workers, shards int }{
		{1, 2}, {1, 3}, {1, 5}, {1, 16}, {3, 4}, {4, 2},
	} {
		res, dig := runShardedDiff(profile, 99, specs, tc.workers, tc.shards)
		if !reflect.DeepEqual(baseRes, res) {
			t.Errorf("workers=%d shards=%d: Result differs from shards=1 baseline:\n%+v\nvs\n%+v",
				tc.workers, tc.shards, baseRes, res)
		}
		if !reflect.DeepEqual(baseDig, dig) {
			t.Errorf("workers=%d shards=%d: digests differ from shards=1 baseline:\n%v\nvs\n%v",
				tc.workers, tc.shards, baseDig, dig)
		}
	}
}

// TestShardedEngineDistinctUniverse pins the design decision that the
// sharded engine is its own deterministic universe: it must produce a
// valid, loaded result, but nothing forces it to equal the legacy
// engine's (per-lane RNG streams and hash-pinned pooling differ by
// construction). What IS shared: population size, realm set, and the
// conservation invariants checked elsewhere. A future change that
// accidentally routes Shards>=1 through the legacy engine would trip
// the digest comparison below.
func TestShardedEngineDistinctUniverse(t *testing.T) {
	profile := traffic.Profile{
		Ticks:         20,
		DayTicks:      12,
		TickStep:      20 * time.Second,
		HeavyFrac:     0.05,
		LightFrac:     0.5,
		FlowsPerTick:  1.2,
		HeavyMult:     5,
		FlowHoldTicks: 2,
	}
	specs := multiLaneSpecs()[:1]
	legacy, legacyDig := runShardedDiff(profile, 42, specs, 1, 0)
	sharded, shardedDig := runShardedDiff(profile, 42, specs, 1, 1)
	if legacy.Subscribers != sharded.Subscribers {
		t.Fatalf("population diverged: legacy %d, sharded %d", legacy.Subscribers, sharded.Subscribers)
	}
	if sharded.Created == 0 {
		t.Fatal("sharded engine drove no flows")
	}
	if reflect.DeepEqual(legacyDig, shardedDig) {
		t.Fatal("legacy and sharded digests are identical — Shards>=1 appears to run the legacy engine (one engine, two universes)")
	}
}
