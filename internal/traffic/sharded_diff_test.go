// Shard-count byte-identity: the sharded engine's determinism contract
// says Config.Shards (>= 1) is purely a resource knob — subscribers pin
// to lanes by address hash and every lane is driven in the same order
// whatever shard drives it, so Results and per-realm NAT state digests
// are identical at any shard count. This test is the differential: every
// registry traffic scenario plus a synthetic multi-lane realm set, run
// at shards=1 against shards=N (and against workers x shards), asserting
// deeply equal Results and identical final-tick digests.
//
// Lives in package traffic_test for the same reason as parallel_test.go:
// it builds registry worlds, and internet imports traffic.
package traffic_test

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"cgn/internal/internet"
	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/traffic"
)

// runShardedDiff runs the spec set at the given workers/shards and
// returns the Result plus per-realm final-tick state digests.
func runShardedDiff(profile traffic.Profile, seed int64, specs []traffic.RealmSpec, workers, shards int) (*traffic.Result, map[string]string) {
	lastTick := profile.WithDefaults().Ticks - 1
	var mu sync.Mutex
	digests := make(map[string]string)
	res := traffic.Run(traffic.Config{
		Seed:    seed,
		Profile: profile,
		Realms:  specs,
		Workers: workers,
		Shards:  shards,
		Observer: func(realm traffic.RealmSpec, tick int, _ time.Time, n nat.View) {
			if tick != lastTick {
				return
			}
			d := n.StateDigest()
			mu.Lock()
			digests[realm.ID] = d
			mu.Unlock()
		},
	})
	return res, digests
}

// TestShardedShardCountInvariance is the workers × shards differential
// over every registry traffic scenario: the full shards {1,2,3,5,16} ×
// workers {1,3,4} grid against the workers=1 shards=1 baseline. With the
// single-phase tick loop every arrival draw comes from a per-lane
// stream, so invariance here pins exactly the property that makes the
// persistent-worker barrier safe: no draw order depends on which shard
// or worker runs a lane.
func TestShardedShardCountInvariance(t *testing.T) {
	for _, name := range trafficScenarios(t) {
		t.Run(name, func(t *testing.T) {
			sc, err := internet.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			sc.Seed = 5
			w := internet.Build(sc)
			specs := make([]traffic.RealmSpec, 0, len(w.CGNs))
			for _, d := range w.CGNs {
				specs = append(specs, traffic.RealmSpec{
					ID:          fmt.Sprintf("AS%d/%d", d.ASN, d.Realm),
					Cellular:    d.Cellular,
					NAT:         d.Dev.NAT.Config(),
					Subscribers: d.Dev.NAT.PortStats().Subscribers,
				})
			}
			if len(specs) == 0 {
				t.Fatalf("scenario %q built a world without carrier NATs", name)
			}

			baseRes, baseDig := runShardedDiff(sc.Traffic, sc.Seed^0x7AFF1C0DE, specs, 1, 1)
			if len(baseRes.Realms) > 0 && baseRes.Created == 0 {
				t.Fatalf("scenario %q loaded %d realms but drove no flows", name, len(baseRes.Realms))
			}
			for _, workers := range []int{1, 3, 4} {
				for _, shards := range []int{1, 2, 3, 5, 16} {
					if workers == 1 && shards == 1 {
						continue
					}
					res, dig := runShardedDiff(sc.Traffic, sc.Seed^0x7AFF1C0DE, specs, workers, shards)
					if !reflect.DeepEqual(baseRes, res) {
						t.Errorf("workers=%d shards=%d: Result differs from baseline:\n%+v\nvs\n%+v",
							workers, shards, baseRes, res)
					}
					if !reflect.DeepEqual(baseDig, dig) {
						t.Errorf("workers=%d shards=%d: NAT state digests differ from baseline:\n%v\nvs\n%v",
							workers, shards, baseDig, dig)
					}
				}
			}
		})
	}
}

// directGateArrivals is the transparent reference decoder for the
// skip-sampling differential: it visits all n subscriber positions one
// by one — the O(n) per-subscriber gating shape the old driver phase
// had — while consuming the stream exactly as ForEachArrival's
// geometric jumps do (one exponential gap draw per arrival run, one
// conditional flow-count draw per arrival). Same stream in, same
// arrival set out, or the jump arithmetic is wrong.
func directGateArrivals(r *traffic.FastRand, n int, lambda, expNegLambda float64, emit func(i, k int)) {
	if n <= 0 || lambda <= 0 {
		return
	}
	invLambda := 1 / lambda
	gap := -1 // subscribers still to skip before the next arrival; -1 = undrawn
	for i := 0; i < n; i++ {
		if gap < 0 {
			g := -math.Log(r.OpenFloat64()) * invLambda
			if g >= float64(n-i) {
				return
			}
			gap = int(g)
		}
		if gap == 0 {
			emit(i, r.PoissonGE1(lambda, expNegLambda))
			gap = -1
		} else {
			gap--
		}
	}
}

// TestSkipSamplingMatchesDirectGating is the skip-sampling equivalence
// differential: over a sweep of population sizes and per-subscriber
// rates, the geometric decoder and the per-subscriber reference walk fed
// the same per-lane stream must emit identical arrival sets and leave
// the stream in the same state. A statistical guard then checks the
// decoded arrival frequency against the analytic p = 1 - exp(-lambda),
// so the pair cannot drift together into a wrong distribution.
func TestSkipSamplingMatchesDirectGating(t *testing.T) {
	type arrival struct{ i, k int }
	for _, n := range []int{0, 1, 7, 100, 4096} {
		for _, lambda := range []float64{0, 0.01, 0.2, 1.0, 2.5} {
			expNeg := math.Exp(-lambda)
			fa := traffic.NewFastRand(uint64(n)*0x9E37 + math.Float64bits(lambda))
			fb := fa
			var fast, direct []arrival
			var arrivals, flows int
			const trials = 200
			for trial := 0; trial < trials; trial++ {
				fast, direct = fast[:0], direct[:0]
				traffic.ForEachArrival(&fa, n, lambda, expNeg, func(i, k int) {
					fast = append(fast, arrival{i, k})
				})
				directGateArrivals(&fb, n, lambda, expNeg, func(i, k int) {
					direct = append(direct, arrival{i, k})
				})
				if !reflect.DeepEqual(fast, direct) {
					t.Fatalf("n=%d lambda=%g trial %d: arrival sets diverge\nskip-sampled %v\ndirect-gated %v",
						n, lambda, trial, fast, direct)
				}
				if fa != fb {
					t.Fatalf("n=%d lambda=%g trial %d: stream states diverge after identical arrival sets", n, lambda, trial)
				}
				for _, a := range fast {
					if a.i < 0 || a.i >= n {
						t.Fatalf("n=%d lambda=%g: arrival position %d out of range", n, lambda, a.i)
					}
					if a.k < 1 {
						t.Fatalf("n=%d lambda=%g: arrival with %d flows (conditioned >= 1)", n, lambda, a.k)
					}
					arrivals++
					flows += a.k
				}
			}
			if n == 0 || lambda == 0 {
				if arrivals != 0 {
					t.Fatalf("n=%d lambda=%g: %d arrivals from an empty process", n, lambda, arrivals)
				}
				continue
			}
			// Mean arrivals per trial is Binomial(n, p): check within 6
			// sigma so the test never flakes but a broken decoder (wrong
			// p, off-by-one jumps) still trips it.
			p := 1 - expNeg
			want := float64(trials) * float64(n) * p
			sigma := math.Sqrt(float64(trials) * float64(n) * p * (1 - p))
			if diff := math.Abs(float64(arrivals) - want); diff > 6*sigma+1 {
				t.Errorf("n=%d lambda=%g: %d arrivals over %d trials, want %.1f ± %.1f",
					n, lambda, arrivals, trials, want, 6*sigma)
			}
			// Flow volume: unconditional mean is n·lambda per trial.
			wantFlows := float64(trials) * float64(n) * lambda
			if n >= 100 && math.Abs(float64(flows)-wantFlows) > 0.1*wantFlows {
				t.Errorf("n=%d lambda=%g: %d flows over %d trials, want ~%.0f",
					n, lambda, flows, trials, wantFlows)
			}
		}
	}
}

// multiLaneSpecs builds realms whose pools actually split into several
// lanes — registry worlds are often single-IP, which clamps to one
// shard and would not exercise cross-lane scheduling.
func multiLaneSpecs() []traffic.RealmSpec {
	mkIPs := func(first string, n int) []netaddr.Addr {
		base := netaddr.MustParseAddr(first)
		ips := make([]netaddr.Addr, n)
		for i := range ips {
			ips[i] = base + netaddr.Addr(i)
		}
		return ips
	}
	return []traffic.RealmSpec{
		{
			ID: "multi/sym-random",
			NAT: nat.Config{
				Type:        nat.Symmetric,
				PortAlloc:   nat.Random,
				Pooling:     nat.Paired,
				ExternalIPs: mkIPs("198.51.100.1", 4),
				UDPTimeout:  40 * time.Second,
				PortLo:      1024,
				PortHi:      4095,
				Seed:        11,
			},
			Subscribers: 600,
		},
		{
			ID:       "multi/cone-seq-quota",
			Cellular: true,
			NAT: nat.Config{
				Type:                   nat.PortRestricted,
				PortAlloc:              nat.Sequential,
				Pooling:                nat.Paired,
				ExternalIPs:            mkIPs("203.0.113.16", 5),
				UDPTimeout:             25 * time.Second,
				PortQuotaPerSubscriber: 6,
				PortLo:                 1024,
				PortHi:                 2047,
				Seed:                   12,
			},
			Subscribers: 400,
		},
		{
			ID: "multi/chunk",
			NAT: nat.Config{
				Type:        nat.Symmetric,
				PortAlloc:   nat.RandomChunk,
				ChunkSize:   256,
				Pooling:     nat.Paired,
				ExternalIPs: mkIPs("192.0.2.32", 3),
				UDPTimeout:  30 * time.Second,
				PortLo:      1024,
				PortHi:      8191,
				Seed:        13,
			},
			Subscribers: 300,
		},
	}
}

// TestShardedMultiLaneInvariance drives synthetic multi-lane realms at
// every meaningful shard count (1 through beyond the pool size, which
// clamps) and across worker counts, asserting identical Results and
// digests throughout.
func TestShardedMultiLaneInvariance(t *testing.T) {
	profile := traffic.Profile{
		Ticks:         40,
		DayTicks:      24,
		TickStep:      15 * time.Second,
		DiurnalAmp:    0.6,
		HeavyFrac:     0.05,
		LightFrac:     0.5,
		FlowsPerTick:  0.8,
		HeavyMult:     6,
		FlowHoldTicks: 3,
	}
	specs := multiLaneSpecs()

	baseRes, baseDig := runShardedDiff(profile, 99, specs, 1, 1)
	if baseRes.Created == 0 {
		t.Fatal("baseline sharded run drove no flows")
	}
	if len(baseDig) != len(specs) {
		t.Fatalf("observer collected %d digests, want %d", len(baseDig), len(specs))
	}
	for _, tc := range []struct{ workers, shards int }{
		{1, 2}, {1, 3}, {1, 5}, {1, 16}, {3, 4}, {4, 2},
	} {
		res, dig := runShardedDiff(profile, 99, specs, tc.workers, tc.shards)
		if !reflect.DeepEqual(baseRes, res) {
			t.Errorf("workers=%d shards=%d: Result differs from shards=1 baseline:\n%+v\nvs\n%+v",
				tc.workers, tc.shards, baseRes, res)
		}
		if !reflect.DeepEqual(baseDig, dig) {
			t.Errorf("workers=%d shards=%d: digests differ from shards=1 baseline:\n%v\nvs\n%v",
				tc.workers, tc.shards, baseDig, dig)
		}
	}
}

// TestShardedEngineDistinctUniverse pins the design decision that the
// sharded engine is its own deterministic universe: it must produce a
// valid, loaded result, but nothing forces it to equal the legacy
// engine's (per-lane RNG streams and hash-pinned pooling differ by
// construction). What IS shared: population size, realm set, and the
// conservation invariants checked elsewhere. A future change that
// accidentally routes Shards>=1 through the legacy engine would trip
// the digest comparison below.
func TestShardedEngineDistinctUniverse(t *testing.T) {
	profile := traffic.Profile{
		Ticks:         20,
		DayTicks:      12,
		TickStep:      20 * time.Second,
		HeavyFrac:     0.05,
		LightFrac:     0.5,
		FlowsPerTick:  1.2,
		HeavyMult:     5,
		FlowHoldTicks: 2,
	}
	specs := multiLaneSpecs()[:1]
	legacy, legacyDig := runShardedDiff(profile, 42, specs, 1, 0)
	sharded, shardedDig := runShardedDiff(profile, 42, specs, 1, 1)
	if legacy.Subscribers != sharded.Subscribers {
		t.Fatalf("population diverged: legacy %d, sharded %d", legacy.Subscribers, sharded.Subscribers)
	}
	if sharded.Created == 0 {
		t.Fatal("sharded engine drove no flows")
	}
	if reflect.DeepEqual(legacyDig, shardedDig) {
		t.Fatal("legacy and sharded digests are identical — Shards>=1 appears to run the legacy engine (one engine, two universes)")
	}
}
