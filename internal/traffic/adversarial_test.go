package traffic

import (
	"reflect"
	"testing"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
)

// stressRealms builds realms with a deliberately tight port space so a
// flooder population can actually exhaust it within a short test run:
// one external IP (one lane when sharded), span ports per protocol.
func stressRealms(n, subs int, span uint16, defend func(*nat.Config)) []RealmSpec {
	realms := make([]RealmSpec, n)
	for i := range realms {
		cfg := nat.Config{
			Type:        nat.Symmetric,
			PortAlloc:   nat.Random,
			Pooling:     nat.Paired,
			ExternalIPs: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.1") + netaddr.Addr(i)},
			PortLo:      1024,
			PortHi:      1024 + span - 1,
			UDPTimeout:  65 * time.Second,
			Seed:        int64(i + 1),
		}
		if defend != nil {
			defend(&cfg)
		}
		realms[i] = RealmSpec{ID: "stress-realm", NAT: cfg, Subscribers: subs}
	}
	return realms
}

// attackProfile floods a quarter of the population at 10 flows/tick.
// HeavyFrac is zeroed: a rate-based defense can only separate attackers
// from legitimate users when the legitimate rate ceiling sits below the
// flood rate, and 12x heavy hitters straddle it.
func attackProfile() Profile {
	p := weekProfile()
	p.Ticks = 96
	p.HeavyFrac = 0
	p.AttackerFrac = 0.25
	p.AttackerFlowsPerTick = 10
	p.ScannerProbesPerTick = 2
	return p
}

// TestAdversarialZeroWhenDisabled is the zero-attacker property: a
// profile without adversarial knobs yields an Adversarial block that is
// exactly the zero value — every collateral metric zero — on both
// engines. (Byte-identity of the rest of the Result to pre-adversarial
// builds is pinned separately by the report goldens.)
func TestAdversarialZeroWhenDisabled(t *testing.T) {
	for _, shards := range []int{0, 2} {
		res := Run(Config{Seed: 42, Profile: weekProfile(), Realms: testRealms(2, 24), Shards: shards})
		if res.Adversarial != (AdversarialStats{}) {
			t.Fatalf("shards=%d: adversarial stats nonzero without attackers: %+v", shards, res.Adversarial)
		}
		if got := res.ByClass[0].Subscribers + res.ByClass[1].Subscribers + res.ByClass[2].Subscribers; got != res.Subscribers {
			t.Fatalf("shards=%d: class census %d != population %d without attackers", shards, got, res.Subscribers)
		}
	}
}

// TestAdversarialFloodCollateral is E19's core claim at engine level: an
// undefended flood starves legitimate subscribers, and the per-subscriber
// token-bucket rate limiter claws the damage back — on both engines.
func TestAdversarialFloodCollateral(t *testing.T) {
	p := attackProfile()
	for _, shards := range []int{0, 1} {
		undefended := Run(Config{Seed: 11, Profile: p, Realms: stressRealms(2, 16, 96, nil), Shards: shards})
		a := undefended.Adversarial
		if !a.Enabled || a.Attackers != 2*4 {
			t.Fatalf("shards=%d: attackers not designated: %+v", shards, a)
		}
		if a.AttackerAttempts == 0 || a.LegitAttempts == 0 {
			t.Fatalf("shards=%d: no load offered: %+v", shards, a)
		}
		if a.LegitFailures == 0 || a.NoPorts == 0 {
			t.Fatalf("shards=%d: undefended flood caused no legit collateral: %+v", shards, a)
		}
		if a.AttackerPorts.P99 <= undefended.All.P99 {
			t.Errorf("shards=%d: attacker p99 %d not above legit p99 %d",
				shards, a.AttackerPorts.P99, undefended.All.P99)
		}
		if a.ScannerProbes == 0 || a.ScannerBlocked == 0 {
			t.Errorf("shards=%d: scanner idle: probes=%d blocked=%d",
				shards, a.ScannerProbes, a.ScannerBlocked)
		}

		// 0.06/s ≈ 1.8 allocations/tick: above the legit median peak
		// (0.8 × 1.7 diurnal), far under the 10/tick flood — the rate
		// separation the defense needs to discriminate.
		defended := Run(Config{Seed: 11, Profile: p, Realms: stressRealms(2, 16, 96, func(c *nat.Config) {
			c.AllocRatePerSec = 0.06
			c.AllocBurst = 8
		}), Shards: shards})
		d := defended.Adversarial
		if d.RateLimited == 0 {
			t.Fatalf("shards=%d: token bucket never fired: %+v", shards, d)
		}
		if d.LegitFailRate() >= a.LegitFailRate() {
			t.Errorf("shards=%d: defense did not reduce legit failure rate: %.4f (defended) vs %.4f (undefended)",
				shards, d.LegitFailRate(), a.LegitFailRate())
		}
		if d.AttackerFailRate() <= a.AttackerFailRate() {
			t.Errorf("shards=%d: defense did not starve attackers: %.4f (defended) vs %.4f (undefended)",
				shards, d.AttackerFailRate(), a.AttackerFailRate())
		}
	}
}

// TestAdversarialEviction: under EvictOldestIdle the NAT reclaims idle
// (flood-parked) mappings instead of refusing, so evictions replace a
// chunk of the hard failures.
func TestAdversarialEviction(t *testing.T) {
	p := attackProfile()
	for _, shards := range []int{0, 1} {
		res := Run(Config{Seed: 13, Profile: p, Realms: stressRealms(1, 16, 96, func(c *nat.Config) {
			c.Eviction = nat.EvictOldestIdle
		}), Shards: shards})
		a := res.Adversarial
		if a.Evictions == 0 {
			t.Fatalf("shards=%d: eviction policy never evicted: %+v", shards, a)
		}
	}
}

// TestAdversarialShardedInvariance: with flood, scanner and both defenses
// live, the sharded engine's Result stays byte-identical at any
// workers × shards split — and under -race this is also the concurrency
// exercise over the token-bucket and eviction paths.
func TestAdversarialShardedInvariance(t *testing.T) {
	p := attackProfile()
	realms := func() []RealmSpec {
		r := stressRealms(3, 24, 128, func(c *nat.Config) {
			c.AllocRatePerSec = 0.02
			c.AllocBurst = 8
			c.Eviction = nat.EvictOldestIdle
		})
		// A multi-lane pool so shard counts above 1 mean something.
		for i := range r {
			base := r[i].NAT.ExternalIPs[0]
			r[i].NAT.ExternalIPs = []netaddr.Addr{base, base + 64, base + 128, base + 192}
		}
		return r
	}
	ref := Run(Config{Seed: 17, Profile: p, Realms: realms(), Shards: 1, Workers: 1})
	if !ref.Adversarial.Enabled || ref.Adversarial.AttackerAttempts == 0 {
		t.Fatalf("reference run offered no adversarial load: %+v", ref.Adversarial)
	}
	for _, c := range []struct{ workers, shards int }{{1, 3}, {4, 2}, {3, 4}} {
		got := Run(Config{Seed: 17, Profile: p, Realms: realms(), Shards: c.shards, Workers: c.workers})
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d shards=%d: result differs from workers=1 shards=1\nref: %+v\ngot: %+v",
				c.workers, c.shards, ref.Adversarial, got.Adversarial)
		}
	}
}
