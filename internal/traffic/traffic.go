package traffic

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
)

// Class is a subscriber's flow-rate class. The §6.2 distribution is
// heavy-tailed: most subscribers hold a handful of concurrent ports
// while a small heavy-hitter population drives the peaks far above the
// median (Figure 8).
type Class uint8

// Subscriber rate classes.
const (
	Light Class = iota
	Median
	Heavy
	numClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Light:
		return "light"
	case Median:
		return "median"
	case Heavy:
		return "heavy"
	default:
		return "class?"
	}
}

// RealmSpec describes one CGN realm the engine should load: the NAT
// configuration to replay (a fresh NAT is built from it, so the engine
// never mutates campaign state) and the subscriber population behind it.
type RealmSpec struct {
	// ID labels the realm in results (e.g. "AS64512/0").
	ID       string
	Cellular bool
	// NAT is the realm's carrier NAT configuration. Config.Seed makes
	// the replica's random choices match the deployed device's.
	NAT nat.Config
	// Subscribers is the internal population size.
	Subscribers int
}

// Config parameterizes one engine run.
type Config struct {
	// Seed drives every random draw (subscriber classes, arrivals, flow
	// lifetimes, source ports). Realm index is mixed in so realms stay
	// independent of their order-neighbors' draw counts.
	Seed    int64
	Profile Profile
	Realms  []RealmSpec
	// Workers is the realm worker-pool size; 0 or 1 runs every realm on
	// the calling goroutine. Each realm draws from its own RNG stream
	// and accumulates into private state that Run merges in realm input
	// order, so Result is byte-identical at any worker count.
	Workers int
	// Shards selects the NAT engine. 0 (the default) drives each realm
	// on the single sequential engine, byte-identical to every prior
	// release. >= 1 drives each realm on the intra-realm sharded engine
	// (nat.NewSharded): the realm's external pool splits into per-IP
	// lanes, lanes group into shards, and one goroutine drives each
	// shard between per-tick barriers. The result is identical at ANY
	// Shards value — the count only sets how many goroutines split the
	// realm (clamped per realm to its external pool size) — but the
	// sharded engine is its own deterministic universe, distinct from
	// Shards == 0 (see nat.NewSharded). Total concurrency is
	// Workers x Shards goroutines.
	Shards int
	// Faults is the seeded virtual-time fault schedule: pool-IP outages
	// and engine restarts. Requires the sharded engine (Shards >= 1) —
	// the lane is the outage's unit — and Run panics on a plan that
	// fails validation, like nat.New on an unusable Config. The zero
	// plan is exactly the pre-fault engine.
	Faults FaultPlan
	// Observer, when set, is called after every realm tick with a
	// read-only view of the realm's NAT (the sequential engine or the
	// sharded facade, per Shards). Test hooks only — with Workers > 1
	// the observer is called concurrently from worker goroutines (never
	// concurrently for the same realm), and always between shard
	// barriers, never while shard workers run.
	Observer func(realm RealmSpec, tick int, now time.Time, n nat.View)
}

// ClassStat summarizes the per-subscriber concurrent-port distribution
// of one rate class over every (subscriber, tick) sample.
type ClassStat struct {
	Class       Class
	Subscribers int
	Samples     uint64
	// Median, P99 and Max are concurrent external ports held by one
	// subscriber at one sampling instant.
	Median, P99, Max int
}

// RealmStat is one realm's outcome over the run.
type RealmStat struct {
	ID          string
	Cellular    bool
	Subscribers int
	// PeakUtil is the realm's highest instantaneous port-space
	// utilization: ports in use over the UDP share of the capacity (the
	// engine generates UDP flows only).
	PeakUtil float64
	// Created / Expired count mappings over the run; Failures are
	// allocation failures (port-space plus quota exhaustion).
	Created, Expired, Failures uint64
}

// Result is the aggregate outcome of one engine run — the E18 dataset.
type Result struct {
	// Profile echoes the run's profile with defaults applied.
	Profile Profile
	// Realms lists per-realm outcomes in input order (realms without
	// subscribers are skipped).
	Realms []RealmStat
	// Subscribers is the total driven population.
	Subscribers int
	// ByClass and All summarize per-subscriber concurrent port usage
	// over every (subscriber, tick) sample.
	ByClass [3]ClassStat
	All     ClassStat
	// MeanUtil[t] is the mean instantaneous port-space utilization
	// across realms at tick t; PeakTick is the argmax.
	MeanUtil []float64
	PeakUtil float64
	PeakTick int
	// Flow accounting over all realms.
	Created, Expired, Refreshes, Failures uint64
	// Adversarial is the E19 collateral-damage dataset; entirely zero
	// (Enabled false) unless the profile offers adversarial load.
	Adversarial AdversarialStats
	// Degradation is the E22 fault-injection dataset; entirely zero
	// (Enabled false) unless the config schedules faults.
	Degradation DegradationStats
}

// AdversarialStats is the E19 dataset: what adversarial load does to the
// legitimate population, with both sides' books kept separately. With
// adversaries enabled, Result.ByClass / Result.All cover the legitimate
// subscribers only — attackers are censused here instead.
type AdversarialStats struct {
	// Enabled mirrors Profile.AttacksEnabled(); when false every other
	// field is exactly zero.
	Enabled bool
	// Attackers is the flooder population summed over realms.
	Attackers int
	// LegitAttempts counts legitimate new-flow allocation attempts
	// (refreshes and their fallback re-creations excluded) and
	// LegitFailures the ones the NAT refused for any reason — the ratio
	// is the collateral-damage headline E19 reports.
	LegitAttempts, LegitFailures uint64
	// AttackerAttempts / AttackerFailures keep the same books for flood
	// flows: a well-tuned defense starves these, not the legit column.
	AttackerAttempts, AttackerFailures uint64
	// ScannerProbes counts inbound scanner probes offered and
	// ScannerBlocked how many the NAT's inbound filtering dropped.
	ScannerProbes, ScannerBlocked uint64
	// Defense and exhaustion counters summed over realms: quota
	// refusals, port-space exhaustion, token-bucket rate-limit drops and
	// idle-mapping evictions (both sides' traffic combined — the NAT
	// does not know who is evil).
	QuotaDrops, NoPorts, RateLimited, Evictions uint64
	// AttackerPorts summarizes attacker concurrent-port samples, the
	// counterpart of Result.All for the flooder population; p99
	// inflation shows up as the gap between the two.
	AttackerPorts ClassStat
}

// LegitFailRate is LegitFailures over LegitAttempts (0 when idle).
func (a AdversarialStats) LegitFailRate() float64 {
	if a.LegitAttempts == 0 {
		return 0
	}
	return float64(a.LegitFailures) / float64(a.LegitAttempts)
}

// AttackerFailRate is AttackerFailures over AttackerAttempts.
func (a AdversarialStats) AttackerFailRate() float64 {
	if a.AttackerAttempts == 0 {
		return 0
	}
	return float64(a.AttackerFailures) / float64(a.AttackerAttempts)
}

// Enabled reports whether the run simulated any time.
func (r *Result) Enabled() bool { return r.Profile.Enabled() && len(r.Realms) > 0 }

// flowNode is one live subscriber flow in a realm's arena. Nodes are
// linked per subscriber in arrival (FIFO) order — the order allocation
// retries hit the NAT in, which the determinism contract pins — and
// recycled through the arena freelist, so steady-state ticks never
// allocate. ref is the flow's mapping handle: while ticksLeft > 0 the
// flow refreshes the mapping through it every tick.
type flowNode struct {
	f         netaddr.Flow
	ref       nat.MappingRef
	ticksLeft int32
	next      int32
}

// subscriber is one internal endpoint population member. head/tail
// index the subscriber's flow list in the realm arena (-1 when empty);
// live is the incrementally maintained live-mapping count — what
// nat.Sessions would report — fed by the NAT's create/expire hooks.
type subscriber struct {
	addr       netaddr.Addr
	class      Class
	head, tail int32
	live       int32
	// attacker marks a flooder: it offers no legitimate flows and its
	// live count samples into the adversarial histogram, not the class
	// buckets.
	attacker bool
}

// Hist is an exact integer histogram of concurrent-port samples; counts
// are small (bounded by quota or port space), so percentiles come from a
// dense array walk.
type Hist struct {
	counts []uint64
	n      uint64
}

func (h *Hist) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.counts) {
		h.grow(v + 1)
	}
	h.counts[v]++
	h.n++
}

// AddN records k samples of value v at once — the bulk form the
// live-count fold uses. Equivalent to k calls of add(v).
func (h *Hist) AddN(v int, k uint64) {
	if k == 0 {
		return
	}
	if v < 0 {
		v = 0
	}
	if v >= len(h.counts) {
		h.grow(v + 1)
	}
	h.counts[v] += k
	h.n += k
}

// grow widens counts to at least size, doubling capacity so a slowly
// rising maximum costs O(log max) reallocations rather than one per new
// peak. Values beyond the previous length stay zero, so nothing
// observable changes.
func (h *Hist) grow(size int) {
	newLen := 2 * len(h.counts)
	if newLen < size {
		newLen = size
	}
	grown := make([]uint64, newLen)
	copy(grown, h.counts)
	h.counts = grown
}

// Merge folds o into h. The parallel engine accumulates one Hist set per
// realm and merges them in realm input order; counts are plain sums, so
// the merged histogram is identical to one filled by a single
// sequential run.
func (h *Hist) Merge(o *Hist) {
	if len(o.counts) > len(h.counts) {
		h.grow(len(o.counts))
	}
	for v, c := range o.counts {
		h.counts[v] += c
	}
	h.n += o.n
}

// Quantile returns the smallest value whose cumulative count reaches
// rank ceil(q*n); 0 on an empty histogram.
func (h *Hist) Quantile(q float64) int {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for v, c := range h.counts {
		cum += c
		if cum >= rank {
			return v
		}
	}
	return len(h.counts) - 1
}

func (h *Hist) Max() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return 0
}

// subscriberBase anchors the dense synthetic 10.64/16-style internal
// address block both engines place subscribers in; dstBase anchors the
// synthetic remote-destination space.
var (
	subscriberBase = netaddr.MustParseAddr("10.64.0.1")
	dstBase        = netaddr.MustParseAddr("8.0.0.0")
	// atkDstBase anchors the flood flows' synthetic destination space
	// (disjoint from dstBase so attack traffic reads distinctly in
	// digests); scannerAddr is the external scanner's source.
	atkDstBase  = netaddr.MustParseAddr("6.0.0.0")
	scannerAddr = netaddr.MustParseAddr("203.0.113.7")
)

// atkSeedMix derives the adversarial RNG stream's per-realm seed. It
// differs from the realm-stream constant, and the adversarial stream is
// never drawn from the realm RNG, so enabling attacks perturbs no
// legitimate draw — a zero-attacker run is byte-identical to one built
// before the knobs existed.
const atkSeedMix int64 = 0x6A09E667F3BCC909

// attackerCount returns how many of a realm's n subscribers the profile
// designates as flooders: the leading int(AttackerFrac·n) by subscriber
// index. Designation by index costs no random draw.
func attackerCount(p Profile, n int) int {
	if p.AttackerFrac <= 0 || p.AttackerFlowsPerTick <= 0 {
		return 0
	}
	k := int(p.AttackerFrac * float64(n))
	if k > n {
		k = n
	}
	return k
}

// markAttackers flags the leading numAtk subscribers and removes them
// from the legitimate class census. They keep their class draw — the
// shared draw sequence must not shift — but every legitimate statistic
// (class subscriber counts, live-count buckets, histograms) excludes
// them from here on.
func markAttackers(subs []subscriber, numAtk int, classSubs *[3]int) {
	for j := 0; j < numAtk; j++ {
		subs[j].attacker = true
		classSubs[subs[j].class]--
	}
}

// LiveCounts tracks, per class, how many tracked subscribers currently
// hold exactly v live mappings. The NAT's create/expire hooks move
// subscribers between buckets as mappings come and go, and the per-tick
// sampling fold adds each bucket's population to the histograms in one
// addN — the same sample multiset the per-subscriber loop would record,
// for O(distinct values) work per tick instead of O(subscribers).
type LiveCounts struct {
	cnt [3][]uint64
}

func NewLiveCounts(classSubs [3]int) *LiveCounts {
	lc := &LiveCounts{}
	for c := range lc.cnt {
		lc.cnt[c] = make([]uint64, 8)
		lc.cnt[c][0] = uint64(classSubs[c])
	}
	return lc
}

// Move shifts one class-c subscriber from bucket from to bucket to.
// Hooks only ever move by one, so after the doubling grow, to is always
// in range.
func (lc *LiveCounts) Move(c Class, from, to int32) {
	s := lc.cnt[c]
	s[from]--
	if int(to) >= len(s) {
		grown := make([]uint64, 2*len(s))
		copy(grown, s)
		lc.cnt[c] = grown
		s = grown
	}
	s[to]++
}

// Fold samples every tracked subscriber once — at its current bucket
// value — into the class and aggregate histograms.
func (lc *LiveCounts) Fold(classHists *[3]Hist, all *Hist) {
	for c := range lc.cnt {
		for v, k := range lc.cnt[c] {
			if k != 0 {
				classHists[c].AddN(v, k)
				all.AddN(v, k)
			}
		}
	}
}

// buildSubscribers draws the realm population: one class draw per
// subscriber in address order — the draw sequence both engines share —
// over dense synthetic internal addresses above base (synthetic because
// they never leave the engine; dense so RandomChunk's chunk table and
// the hooks' address-to-index subtraction both work).
func buildSubscribers(rng *rand.Rand, p Profile, spec RealmSpec, base netaddr.Addr, classSubs *[3]int) []subscriber {
	subs := make([]subscriber, spec.Subscribers)
	for j := range subs {
		class := Median
		switch x := rng.Float64(); {
		case x < p.HeavyFrac:
			class = Heavy
		case x < p.HeavyFrac+p.LightFrac:
			class = Light
		}
		subs[j] = subscriber{
			addr:  base + netaddr.Addr(j),
			class: class,
			head:  -1,
			tail:  -1,
		}
		classSubs[class]++
	}
	return subs
}

// DiurnalFactor modulates arrival rates over the day: trough (1-Amp) at
// tick 0 of each period, peak (1+Amp) mid-period.
func DiurnalFactor(p Profile, tick int) float64 {
	if p.DiurnalAmp == 0 || p.DayTicks == 0 {
		return 1
	}
	frac := float64(tick%p.DayTicks) / float64(p.DayTicks)
	f := 1 + p.DiurnalAmp*math.Sin(2*math.Pi*frac-math.Pi/2)
	if f < 0 {
		f = 0
	}
	return f
}

// poisson draws a Poisson variate by Knuth's method; arrival rates are
// small (a few flows per tick even for heavy hitters at peak), so the
// loop stays short. expNegLambda is exp(-λ), hoisted by the caller: λ
// takes one value per rate class per tick, so the engine computes the
// exponential three times per tick instead of once per subscriber. The
// draw sequence is identical to computing it inline.
func poisson(rng *rand.Rand, expNegLambda float64) int {
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= expNegLambda {
			return k
		}
		k++
		if k >= 1024 { // unreachable at sane rates; bounds a corrupt profile
			return k
		}
	}
}

// ClassRate is the per-class multiplier on the median arrival rate.
func ClassRate(p Profile, c Class) float64 {
	switch c {
	case Light:
		return 0.2
	case Heavy:
		return p.HeavyMult
	default:
		return 1
	}
}

// realmOut is one realm's private accumulator set. The parallel engine
// gives every realm its own and merges them in realm input order, which
// reproduces the sequential engine's accumulation order exactly —
// including the float-addition order into MeanUtil — so Result is
// byte-identical at any worker count.
type realmOut struct {
	stat       RealmStat
	classSubs  [3]int
	classHists [3]Hist
	allHist    Hist
	// util[t] is this realm's instantaneous port-space utilization at
	// tick t (the realm's addend into Result.MeanUtil).
	util      []float64
	refreshes uint64
	adv       advAccum
	// degA/degF are the realm's per-tick legitimate allocation series
	// and disrupted/faultEvents its fault-transition books; nil/zero
	// unless the config schedules faults.
	degA, degF  []uint64
	disrupted   uint64
	faultEvents int
}

// advAccum is the adversarial accumulator — per realm in the legacy
// engine, per shard in the sharded one (merged in shard order, then in
// realm order). All zero when the profile offers no adversaries.
type advAccum struct {
	attackers                                   int
	legitAttempts, legitFailures                uint64
	attackerAttempts, attackerFailures          uint64
	scannerProbes, scannerBlocked               uint64
	quotaDrops, noPorts, rateLimited, evictions uint64
	attackerHist                                Hist
}

func (a *advAccum) merge(o *advAccum) {
	a.attackers += o.attackers
	a.legitAttempts += o.legitAttempts
	a.legitFailures += o.legitFailures
	a.attackerAttempts += o.attackerAttempts
	a.attackerFailures += o.attackerFailures
	a.scannerProbes += o.scannerProbes
	a.scannerBlocked += o.scannerBlocked
	a.quotaDrops += o.quotaDrops
	a.noPorts += o.noPorts
	a.rateLimited += o.rateLimited
	a.evictions += o.evictions
	a.attackerHist.Merge(&o.attackerHist)
}

// Run executes the engine: every realm on the worker pool (input order
// when Workers <= 1), every tick in virtual time, deterministically. The
// virtual clock starts at the Unix epoch like the simnet clock; wall
// time is never read.
func Run(cfg Config) *Result {
	p := cfg.Profile.WithDefaults()
	res := &Result{Profile: p}
	if !p.Enabled() {
		return res
	}
	if cfg.Faults.Enabled() {
		if cfg.Shards <= 0 {
			panic("traffic: fault injection requires the sharded engine (Config.Shards >= 1): the lane is the outage's unit")
		}
		if err := cfg.Faults.Validate(p.Ticks); err != nil {
			panic("traffic: " + err.Error())
		}
	}
	// Realms without subscribers are skipped entirely (they appear
	// nowhere in the result, not even as zero rows).
	type job struct {
		idx  int // index into cfg.Realms: the RNG stream and merge position
		spec RealmSpec
	}
	var jobs []job
	for i, spec := range cfg.Realms {
		if spec.Subscribers > 0 {
			jobs = append(jobs, job{idx: i, spec: spec})
		}
	}
	if len(jobs) == 0 {
		return res
	}

	outs := make([]*realmOut, len(jobs))
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	run := runRealm
	if cfg.Shards > 0 {
		run = runRealmSharded
	}
	if workers == 1 {
		for ji, jb := range jobs {
			outs[ji] = run(cfg, p, jb.spec, jb.idx)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ji := range next {
					outs[ji] = run(cfg, p, jobs[ji].spec, jobs[ji].idx)
				}
			}()
		}
		for ji := range jobs {
			next <- ji
		}
		close(next)
		wg.Wait()
	}

	// Ordered merge: realm input order, whatever order the workers
	// finished in.
	res.MeanUtil = make([]float64, p.Ticks)
	var classHists [3]Hist
	var allHist Hist
	var adv advAccum
	if cfg.Faults.Enabled() {
		res.Degradation.Enabled = true
		res.Degradation.Attempts = make([]uint64, p.Ticks)
		res.Degradation.Failures = make([]uint64, p.Ticks)
	}
	for _, o := range outs {
		res.Realms = append(res.Realms, o.stat)
		res.Subscribers += o.stat.Subscribers
		res.Created += o.stat.Created
		res.Expired += o.stat.Expired
		res.Failures += o.stat.Failures
		res.Refreshes += o.refreshes
		for c := range classHists {
			res.ByClass[c].Subscribers += o.classSubs[c]
			classHists[c].Merge(&o.classHists[c])
		}
		allHist.Merge(&o.allHist)
		adv.merge(&o.adv)
		if o.degA != nil {
			for t := range o.degA {
				res.Degradation.Attempts[t] += o.degA[t]
				res.Degradation.Failures[t] += o.degF[t]
			}
			res.Degradation.Disrupted += o.disrupted
			res.Degradation.FaultEvents += o.faultEvents
		}
		for t, u := range o.util {
			res.MeanUtil[t] += u
		}
	}
	loaded := len(outs)
	for t := range res.MeanUtil {
		res.MeanUtil[t] /= float64(loaded)
		if res.MeanUtil[t] > res.PeakUtil {
			res.PeakUtil = res.MeanUtil[t]
			res.PeakTick = t
		}
	}
	for c := Class(0); c < numClasses; c++ {
		h := &classHists[c]
		res.ByClass[c].Class = c
		res.ByClass[c].Samples = h.n
		res.ByClass[c].Median = h.Quantile(0.5)
		res.ByClass[c].P99 = h.Quantile(0.99)
		res.ByClass[c].Max = h.Max()
	}
	res.All = ClassStat{
		Samples: allHist.n,
		Median:  allHist.Quantile(0.5),
		P99:     allHist.Quantile(0.99),
		Max:     allHist.Max(),
	}
	// All covers the tracked (legitimate) population — identical to
	// res.Subscribers except when adversaries carve attackers out.
	res.All.Subscribers = res.ByClass[0].Subscribers +
		res.ByClass[1].Subscribers + res.ByClass[2].Subscribers
	if p.AttacksEnabled() {
		res.Adversarial = AdversarialStats{
			Enabled:          true,
			Attackers:        adv.attackers,
			LegitAttempts:    adv.legitAttempts,
			LegitFailures:    adv.legitFailures,
			AttackerAttempts: adv.attackerAttempts,
			AttackerFailures: adv.attackerFailures,
			ScannerProbes:    adv.scannerProbes,
			ScannerBlocked:   adv.scannerBlocked,
			QuotaDrops:       adv.quotaDrops,
			NoPorts:          adv.noPorts,
			RateLimited:      adv.rateLimited,
			Evictions:        adv.evictions,
			AttackerPorts: ClassStat{
				Subscribers: adv.attackers,
				Samples:     adv.attackerHist.n,
				Median:      adv.attackerHist.Quantile(0.5),
				P99:         adv.attackerHist.Quantile(0.99),
				Max:         adv.attackerHist.Max(),
			},
		}
	}
	return res
}

// runRealm drives one realm through every tick against a fresh NAT
// replica built from the realm's configuration, accumulating into the
// realm's private realmOut.
func runRealm(cfg Config, p Profile, spec RealmSpec, realmIdx int) *realmOut {
	// Mix the realm index into the seed with a 64-bit odd constant so
	// realms draw independent streams whatever their order.
	rng := rand.New(rand.NewSource(cfg.Seed + int64(realmIdx+1)*-0x61c8864680b583eb))
	n := nat.New(spec.NAT)
	out := &realmOut{
		stat: RealmStat{ID: spec.ID, Cellular: spec.Cellular, Subscribers: spec.Subscribers},
		util: make([]float64, p.Ticks),
	}

	// Per-class arrival rates, shared by subscriber init and the
	// per-tick λ hoist below so both see bit-identical values.
	var rates [3]float64
	for c := Class(0); c < numClasses; c++ {
		rates[c] = p.FlowsPerTick * ClassRate(p, c)
	}

	base := subscriberBase
	subs := buildSubscribers(rng, p, spec, base, &out.classSubs)
	numAtk := attackerCount(p, len(subs))
	markAttackers(subs, numAtk, &out.classSubs)

	// Incremental per-subscriber live-port counts: instead of probing
	// nat.Sessions for every subscriber every tick, the NAT's mapping
	// hooks maintain subscriber.live and the class-keyed bucket counts
	// the per-tick sampling fold reads. Subscriber addresses are dense
	// above base, so a hook resolves the owner with one subtraction.
	// Attackers keep their live count but stay out of the class buckets;
	// the adversarial pass samples them into its own histogram.
	lc := NewLiveCounts(out.classSubs)
	n.SetMappingHooks(
		func(m *nat.Mapping) {
			if j := uint32(m.Int.Addr - base); j < uint32(len(subs)) {
				sub := &subs[j]
				if !sub.attacker {
					lc.Move(sub.class, sub.live, sub.live+1)
				}
				sub.live++
			}
		},
		func(m *nat.Mapping) {
			if j := uint32(m.Int.Addr - base); j < uint32(len(subs)) {
				sub := &subs[j]
				if !sub.attacker {
					lc.Move(sub.class, sub.live, sub.live-1)
				}
				sub.live--
			}
		},
	)

	// Adversarial state, touched only when the profile offers attacks:
	// the flood/scanner RNG is its own stream (atkSeedMix), so the
	// legitimate draw sequence above and below never shifts.
	attacks := p.AttacksEnabled()
	var (
		adv                     *advAccum
		atkRng                  *rand.Rand
		expNegFlood, expNegScan float64
		atkSeq                  uint64
		scanLo, scanSpan        int
	)
	if attacks {
		adv = &out.adv
		adv.attackers = numAtk
		atkRng = rand.New(rand.NewSource(cfg.Seed + int64(realmIdx+1)*atkSeedMix))
		expNegFlood = math.Exp(-p.AttackerFlowsPerTick)
		expNegScan = math.Exp(-p.ScannerProbesPerTick)
		eff := n.Config()
		scanLo = int(eff.PortLo)
		scanSpan = int(eff.PortHi) - int(eff.PortLo) + 1
	}

	// The realm flow arena: all subscribers' flow lists live in one
	// slice, dead nodes chain through the freelist. Steady-state ticks
	// therefore allocate nothing — the arena grows to the realm's peak
	// concurrent flow count and is recycled from then on.
	arena := make([]flowNode, 0, 4*spec.Subscribers)
	freeHead := int32(-1)

	epoch := time.Unix(0, 0)
	var dstSeq uint64
	for t := 0; t < p.Ticks; t++ {
		now := epoch.Add(time.Duration(t) * p.TickStep)
		n.Sweep(now)
		df := DiurnalFactor(p, t)
		// λ = rate·df takes one value per class per tick; hoist the
		// exponential Knuth's method needs out of the subscriber loop.
		var expNegLambda [3]float64
		for c := range rates {
			expNegLambda[c] = math.Exp(-(rates[c] * df))
		}

		for j := range subs {
			sub := &subs[j]
			// Refresh live flows through their mapping handles. A stale
			// handle (the mapping idled out, or its struct was dropped)
			// falls back to the full translation path, which re-creates
			// the mapping exactly as the packet would; if even that
			// fails (port space or quota now exhausted) the flow dies.
			prev := int32(-1)
			for idx := sub.head; idx >= 0; {
				nd := &arena[idx]
				next := nd.next
				ok := n.Refresh(nd.ref, nd.f.Dst, now)
				if !ok {
					var v nat.Verdict
					_, nd.ref, v = n.TranslateOutRef(nd.f, now)
					ok = v == nat.Ok
				}
				if ok {
					out.refreshes++
				}
				nd.ticksLeft--
				if nd.ticksLeft > 0 && ok {
					prev = idx
				} else {
					// Unlink and recycle the node.
					if prev >= 0 {
						arena[prev].next = next
					} else {
						sub.head = next
					}
					if next < 0 {
						sub.tail = prev
					}
					nd.next = freeHead
					freeHead = idx
				}
				idx = next
			}

			// New flow arrivals under the diurnal curve. Each flow gets
			// a fresh source port (distinct mappings on cone NATs) and a
			// fresh destination (distinct mappings on symmetric NATs).
			// Attackers draw nothing here — their flood runs on its own
			// stream after the legitimate pass.
			k := 0
			if !sub.attacker && rates[sub.class]*df > 0 {
				k = poisson(rng, expNegLambda[sub.class])
			}
			for ; k > 0; k-- {
				dstSeq++
				// The destination address carries the low 32 bits of the
				// sequence and the port the next 16, so 5-tuples stay
				// distinct for 2^48 flows per realm; below 2^32 the
				// address alone varies and the port is exactly 443.
				f := netaddr.FlowOf(netaddr.UDP,
					netaddr.EndpointOf(sub.addr, uint16(1024+rng.Intn(64512))),
					netaddr.EndpointOf(dstBase+netaddr.Addr(uint32(dstSeq)), uint16(443+(dstSeq>>32))))
				hold := 1 + rng.Intn(2*p.FlowHoldTicks-1)
				_, ref, v := n.TranslateOutRef(f, now)
				if adv != nil {
					adv.legitAttempts++
					if v != nat.Ok {
						adv.legitFailures++
					}
				}
				if v == nat.Ok {
					var ni int32
					if freeHead >= 0 {
						ni = freeHead
						freeHead = arena[ni].next
					} else {
						arena = append(arena, flowNode{})
						ni = int32(len(arena) - 1)
					}
					arena[ni] = flowNode{f: f, ref: ref, ticksLeft: int32(hold), next: -1}
					if sub.tail >= 0 {
						arena[sub.tail].next = ni
					} else {
						sub.head = ni
					}
					sub.tail = ni
				}
			}
		}

		// Adversarial pass, after the legitimate one (the order the
		// sharded engine also fixes per lane). Flood flows burn a fresh
		// source port and destination each and are never refreshed:
		// occupancy is sustained by rate × idle timeout alone, the
		// mapping-table exhaustion attack's signature. Scanner probes
		// tickle inbound filtering across the pool's port range.
		if attacks {
			for j := 0; j < numAtk; j++ {
				sub := &subs[j]
				for k := poisson(atkRng, expNegFlood); k > 0; k-- {
					atkSeq++
					f := netaddr.FlowOf(netaddr.UDP,
						netaddr.EndpointOf(sub.addr, uint16(1024+atkRng.Intn(64512))),
						netaddr.EndpointOf(atkDstBase+netaddr.Addr(uint32(atkSeq)), uint16(9+(atkSeq>>32))))
					adv.attackerAttempts++
					if _, v := n.TranslateOut(f, now); v != nat.Ok {
						adv.attackerFailures++
					}
				}
			}
			if p.ScannerProbesPerTick > 0 {
				for _, ip := range n.Config().ExternalIPs {
					for k := poisson(atkRng, expNegScan); k > 0; k-- {
						probe := netaddr.FlowOf(netaddr.UDP,
							netaddr.EndpointOf(scannerAddr, uint16(1024+atkRng.Intn(64512))),
							netaddr.EndpointOf(ip, uint16(scanLo+atkRng.Intn(scanSpan))))
						adv.scannerProbes++
						if _, v := n.TranslateIn(probe, now); v != nat.Ok {
							adv.scannerBlocked++
						}
					}
				}
			}
			// Attacker concurrent-port samples: the population is tiny
			// (a fraction of the realm), so a direct walk beats keeping
			// a second bucket set coherent.
			for j := 0; j < numAtk; j++ {
				adv.attackerHist.Add(int(subs[j].live))
			}
		}

		// Sample: one per-subscriber concurrent-port sample each (the
		// hook-maintained live-count buckets, folded in bulk) and the
		// realm's instantaneous port-space utilization.
		lc.Fold(&out.classHists, &out.allHist)
		// The engine generates UDP flows only, so utilization divides by
		// the UDP share of the capacity (PortStats counts UDP and TCP
		// segments); against the full dual-protocol capacity a fully
		// exhausted realm would misreport as 50%.
		ps := n.PortStats()
		if udpCapacity := ps.Capacity / 2; udpCapacity > 0 {
			u := float64(ps.InUse) / float64(udpCapacity)
			out.util[t] = u
			if u > out.stat.PeakUtil {
				out.stat.PeakUtil = u
			}
		}
		if cfg.Observer != nil {
			cfg.Observer(spec, t, now, n)
		}
	}

	final := n.PortStats()
	out.stat.Created = final.Allocs
	out.stat.Failures = final.Failures()
	out.stat.Expired = n.Metrics.Counter("mappings_expired").Value()
	if attacks {
		out.adv.quotaDrops = final.QuotaDrops
		out.adv.noPorts = final.NoPorts
		out.adv.rateLimited = final.RateLimited
		out.adv.evictions = final.Evictions
	}
	return out
}
