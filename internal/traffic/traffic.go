package traffic

import (
	"math"
	"math/rand"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
)

// Class is a subscriber's flow-rate class. The §6.2 distribution is
// heavy-tailed: most subscribers hold a handful of concurrent ports
// while a small heavy-hitter population drives the peaks far above the
// median (Figure 8).
type Class uint8

// Subscriber rate classes.
const (
	Light Class = iota
	Median
	Heavy
	numClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Light:
		return "light"
	case Median:
		return "median"
	case Heavy:
		return "heavy"
	default:
		return "class?"
	}
}

// RealmSpec describes one CGN realm the engine should load: the NAT
// configuration to replay (a fresh NAT is built from it, so the engine
// never mutates campaign state) and the subscriber population behind it.
type RealmSpec struct {
	// ID labels the realm in results (e.g. "AS64512/0").
	ID       string
	Cellular bool
	// NAT is the realm's carrier NAT configuration. Config.Seed makes
	// the replica's random choices match the deployed device's.
	NAT nat.Config
	// Subscribers is the internal population size.
	Subscribers int
}

// Config parameterizes one engine run.
type Config struct {
	// Seed drives every random draw (subscriber classes, arrivals, flow
	// lifetimes, source ports). Realm index is mixed in so realms stay
	// independent of their order-neighbors' draw counts.
	Seed    int64
	Profile Profile
	Realms  []RealmSpec
	// Observer, when set, is called after every realm tick with the
	// realm's NAT. Test hooks only — observers must treat the NAT as
	// read-only.
	Observer func(realm RealmSpec, tick int, now time.Time, n *nat.NAT)
}

// ClassStat summarizes the per-subscriber concurrent-port distribution
// of one rate class over every (subscriber, tick) sample.
type ClassStat struct {
	Class       Class
	Subscribers int
	Samples     uint64
	// Median, P99 and Max are concurrent external ports held by one
	// subscriber at one sampling instant.
	Median, P99, Max int
}

// RealmStat is one realm's outcome over the run.
type RealmStat struct {
	ID          string
	Cellular    bool
	Subscribers int
	// PeakUtil is the realm's highest instantaneous port-space
	// utilization: ports in use over the UDP share of the capacity (the
	// engine generates UDP flows only).
	PeakUtil float64
	// Created / Expired count mappings over the run; Failures are
	// allocation failures (port-space plus quota exhaustion).
	Created, Expired, Failures uint64
}

// Result is the aggregate outcome of one engine run — the E18 dataset.
type Result struct {
	// Profile echoes the run's profile with defaults applied.
	Profile Profile
	// Realms lists per-realm outcomes in input order (realms without
	// subscribers are skipped).
	Realms []RealmStat
	// Subscribers is the total driven population.
	Subscribers int
	// ByClass and All summarize per-subscriber concurrent port usage
	// over every (subscriber, tick) sample.
	ByClass [3]ClassStat
	All     ClassStat
	// MeanUtil[t] is the mean instantaneous port-space utilization
	// across realms at tick t; PeakTick is the argmax.
	MeanUtil []float64
	PeakUtil float64
	PeakTick int
	// Flow accounting over all realms.
	Created, Expired, Refreshes, Failures uint64
}

// Enabled reports whether the run simulated any time.
func (r *Result) Enabled() bool { return r.Profile.Enabled() && len(r.Realms) > 0 }

// flow is one live subscriber flow; while ticksLeft > 0 it refreshes its
// mapping every tick.
type flow struct {
	f         netaddr.Flow
	ticksLeft int
}

// subscriber is one internal endpoint population member.
type subscriber struct {
	addr  netaddr.Addr
	class Class
	rate  float64
	flows []flow
}

// hist is an exact integer histogram of concurrent-port samples; counts
// are small (bounded by quota or port space), so percentiles come from a
// dense array walk.
type hist struct {
	counts []uint64
	n      uint64
}

func (h *hist) add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.counts) {
		grown := make([]uint64, v+1)
		copy(grown, h.counts)
		h.counts = grown
	}
	h.counts[v]++
	h.n++
}

// quantile returns the smallest value whose cumulative count reaches
// rank ceil(q*n); 0 on an empty histogram.
func (h *hist) quantile(q float64) int {
	if h.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var cum uint64
	for v, c := range h.counts {
		cum += c
		if cum >= rank {
			return v
		}
	}
	return len(h.counts) - 1
}

func (h *hist) max() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return 0
}

// diurnalFactor modulates arrival rates over the day: trough (1-Amp) at
// tick 0 of each period, peak (1+Amp) mid-period.
func diurnalFactor(p Profile, tick int) float64 {
	if p.DiurnalAmp == 0 || p.DayTicks == 0 {
		return 1
	}
	frac := float64(tick%p.DayTicks) / float64(p.DayTicks)
	f := 1 + p.DiurnalAmp*math.Sin(2*math.Pi*frac-math.Pi/2)
	if f < 0 {
		f = 0
	}
	return f
}

// poisson draws a Poisson variate by Knuth's method; arrival rates are
// small (a few flows per tick even for heavy hitters at peak), so the
// loop stays short.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k >= 1024 { // unreachable at sane rates; bounds a corrupt profile
			return k
		}
	}
}

// classRate is the per-class multiplier on the median arrival rate.
func classRate(p Profile, c Class) float64 {
	switch c {
	case Light:
		return 0.2
	case Heavy:
		return p.HeavyMult
	default:
		return 1
	}
}

// Run executes the engine: every realm in input order, every tick in
// virtual time, deterministically. The virtual clock starts at the Unix
// epoch like the simnet clock; wall time is never read.
func Run(cfg Config) *Result {
	p := cfg.Profile.WithDefaults()
	res := &Result{Profile: p}
	if !p.Enabled() {
		return res
	}
	res.MeanUtil = make([]float64, p.Ticks)
	var classHists [3]hist
	var allHist hist

	loaded := 0
	for i, spec := range cfg.Realms {
		if spec.Subscribers <= 0 {
			continue
		}
		loaded++
		// Mix the realm index into the seed with a 64-bit odd constant
		// so realms draw independent streams whatever their order.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(i+1)*-0x61c8864680b583eb))
		st := runRealm(cfg, p, spec, i, rng, &classHists, &allHist, res)
		res.Realms = append(res.Realms, st)
		res.Subscribers += spec.Subscribers
		res.Created += st.Created
		res.Expired += st.Expired
		res.Failures += st.Failures
	}
	if loaded == 0 {
		res.MeanUtil = nil
		return res
	}
	for t := range res.MeanUtil {
		res.MeanUtil[t] /= float64(loaded)
		if res.MeanUtil[t] > res.PeakUtil {
			res.PeakUtil = res.MeanUtil[t]
			res.PeakTick = t
		}
	}
	for c := Class(0); c < numClasses; c++ {
		h := &classHists[c]
		res.ByClass[c].Class = c
		res.ByClass[c].Samples = h.n
		res.ByClass[c].Median = h.quantile(0.5)
		res.ByClass[c].P99 = h.quantile(0.99)
		res.ByClass[c].Max = h.max()
	}
	res.All = ClassStat{
		Samples: allHist.n,
		Median:  allHist.quantile(0.5),
		P99:     allHist.quantile(0.99),
		Max:     allHist.max(),
	}
	res.All.Subscribers = res.Subscribers
	return res
}

// runRealm drives one realm through every tick against a fresh NAT
// replica built from the realm's configuration.
func runRealm(cfg Config, p Profile, spec RealmSpec, realmIdx int, rng *rand.Rand,
	classHists *[3]hist, allHist *hist, res *Result) RealmStat {

	n := nat.New(spec.NAT)
	st := RealmStat{ID: spec.ID, Cellular: spec.Cellular, Subscribers: spec.Subscribers}

	// Subscriber internal addresses are synthetic (they never leave the
	// engine): a dense 10.64/16-style block works for every allocator,
	// including RandomChunk's per-subscriber chunk table.
	base := netaddr.MustParseAddr("10.64.0.1")
	subs := make([]subscriber, spec.Subscribers)
	for j := range subs {
		class := Median
		switch x := rng.Float64(); {
		case x < p.HeavyFrac:
			class = Heavy
		case x < p.HeavyFrac+p.LightFrac:
			class = Light
		}
		subs[j] = subscriber{
			addr:  base + netaddr.Addr(j),
			class: class,
			rate:  p.FlowsPerTick * classRate(p, class),
		}
		res.ByClass[class].Subscribers++
	}

	epoch := time.Unix(0, 0)
	var dstSeq uint32
	for t := 0; t < p.Ticks; t++ {
		now := epoch.Add(time.Duration(t) * p.TickStep)
		n.Sweep(now)
		df := diurnalFactor(p, t)

		for j := range subs {
			sub := &subs[j]
			// Refresh live flows; a refresh that fails to re-allocate
			// (the mapping idled out and the port space or quota is now
			// exhausted) kills the flow.
			keep := sub.flows[:0]
			for _, fl := range sub.flows {
				_, v := n.TranslateOut(fl.f, now)
				if v == nat.Ok {
					res.Refreshes++
				}
				fl.ticksLeft--
				if fl.ticksLeft > 0 && v == nat.Ok {
					keep = append(keep, fl)
				}
			}
			sub.flows = keep

			// New flow arrivals under the diurnal curve. Each flow gets
			// a fresh source port (distinct mappings on cone NATs) and a
			// fresh destination (distinct mappings on symmetric NATs).
			for k := poisson(rng, sub.rate*df); k > 0; k-- {
				dstSeq++
				f := netaddr.FlowOf(netaddr.UDP,
					netaddr.EndpointOf(sub.addr, uint16(1024+rng.Intn(64512))),
					netaddr.EndpointOf(netaddr.MustParseAddr("8.0.0.0")+netaddr.Addr(dstSeq), 443))
				hold := 1 + rng.Intn(2*p.FlowHoldTicks-1)
				if _, v := n.TranslateOut(f, now); v == nat.Ok {
					sub.flows = append(sub.flows, flow{f: f, ticksLeft: hold})
				}
			}
		}

		// Sample: per-subscriber concurrent ports (live mappings, i.e.
		// held external ports) and the realm's instantaneous port-space
		// utilization.
		for j := range subs {
			c := n.Sessions(subs[j].addr)
			classHists[subs[j].class].add(c)
			allHist.add(c)
		}
		// The engine generates UDP flows only, so utilization divides by
		// the UDP share of the capacity (PortStats counts UDP and TCP
		// segments); against the full dual-protocol capacity a fully
		// exhausted realm would misreport as 50%.
		ps := n.PortStats()
		if udpCapacity := ps.Capacity / 2; udpCapacity > 0 {
			u := float64(ps.InUse) / float64(udpCapacity)
			res.MeanUtil[t] += u
			if u > st.PeakUtil {
				st.PeakUtil = u
			}
		}
		if cfg.Observer != nil {
			cfg.Observer(spec, t, now, n)
		}
	}

	final := n.PortStats()
	st.Created = final.Allocs
	st.Failures = final.Failures()
	st.Expired = n.Metrics.Counter("mappings_expired").Value()
	return st
}
