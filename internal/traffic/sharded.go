package traffic

import (
	"math"
	"math/rand"
	"sync"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
)

// The intra-realm sharded engine. One realm's work splits across the
// lanes of a nat.Sharded — one lane per external pool IP, subscribers
// pinned to lanes by address hash — and lanes group into shards, each
// driven by its own goroutine. Every tick has two phases:
//
//  1. Driver phase (sequential, calling goroutine): draw the tick's
//     flow arrivals from the realm RNG — Poisson gate, source port,
//     hold time, destination sequence — in ascending subscriber order,
//     exactly the sequence the legacy engine draws, and buffer each
//     arrival on its subscriber's shard. Arrival draws never read NAT
//     state, so drawing before the NAT moves is safe.
//  2. Shard phase (parallel): each shard sweeps its lanes in ascending
//     lane order, refreshes its subscribers' live flows in ascending
//     subscriber order, applies its buffered arrivals in driver order,
//     and folds its live-count buckets into its private histograms.
//
// A barrier separates the phases; aggregation (utilization, Observer)
// runs after it. Determinism at any shard count follows from lane
// confinement: every operation on lane l happens in a fixed order —
// sweep, then l's subscribers' refreshes ascending, then l's arrivals
// ascending — whatever shard drives it, and all RNG a lane consumes is
// its own stream. Shard-private accumulators merge in shard-index
// order, and all merged quantities are integers, so the merged realm
// output is identical at any shard count too.
type shardState struct {
	// lanes this shard owns (ascending); subIdx lists the realm indices
	// of the subscribers those lanes own (ascending).
	lanes     []int
	subIdx    []int32
	classSubs [3]int
	lc        *LiveCounts
	// Private accumulators, merged in shard-index order after the run.
	classHists [3]Hist
	allHist    Hist
	refreshes  uint64
	// pend buffers the driver phase's arrivals for this shard's
	// subscribers, in draw (ascending-subscriber) order.
	pend []arrival
	// active lists the shard's subscribers currently holding live flows,
	// ascending — the refresh loop's worklist, so a tick's cost scales
	// with flow-holding subscribers, not population. fresh collects the
	// tick's empty-to-nonempty transitions (ascending, pend order);
	// scratch is the merge buffer the two swap through.
	active, fresh, scratch []int32
	// The shard flow arena: the shard's subscribers' flow lists live in
	// one slice, dead nodes chain through the freelist, exactly like the
	// legacy engine's realm arena (head/tail in subscriber index into
	// the owning shard's arena — well defined, a subscriber has exactly
	// one).
	arena    []flowNode
	freeHead int32
}

// arrival is one driver-phase flow draw awaiting its shard.
type arrival struct {
	j    int32
	hold int32
	f    netaddr.Flow
}

// FastRand is the sharded driver's arrival-draw stream: a SplitMix64
// generator, statistically sound for simulation draws at a fraction of
// math/rand's per-draw cost — the driver phase is the engine's serial
// section, and it draws one Poisson gate per subscriber per tick. The
// sharded engine is its own deterministic universe (see Config.Shards),
// so its draw stream only has to be deterministic, not match the legacy
// engine's generator.
type FastRand uint64

func (r *FastRand) Next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ z>>31
}

// Float64 returns a uniform variate in [0, 1).
func (r *FastRand) Float64() float64 {
	return float64(r.Next()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform variate in [0, n) by Lemire's multiply-shift.
func (r *FastRand) Intn(n uint32) uint32 {
	return uint32(uint64(uint32(r.Next())) * uint64(n) >> 32)
}

// Poisson draws a Poisson variate by Knuth's method, like the package
// poisson but on the fast stream.
func (r *FastRand) Poisson(expNegLambda float64) int {
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= expNegLambda {
			return k
		}
		k++
		if k >= 1024 { // unreachable at sane rates; bounds a corrupt profile
			return k
		}
	}
}

// runRealmSharded drives one realm through every tick against a fresh
// sharded NAT built from the realm's configuration. Same signature and
// accumulator contract as runRealm; engine selection happens in Run.
func runRealmSharded(cfg Config, p Profile, spec RealmSpec, realmIdx int) *realmOut {
	// Same realm-stream seed mix as the legacy engine: the realm RNG
	// serves only traffic draws (classes, arrivals); the lanes draw
	// allocation randomness from their own per-lane streams.
	rng := rand.New(rand.NewSource(cfg.Seed + int64(realmIdx+1)*-0x61c8864680b583eb))
	sn := nat.NewSharded(spec.NAT, cfg.Shards)
	S := sn.NumShards()
	out := &realmOut{
		stat: RealmStat{ID: spec.ID, Cellular: spec.Cellular, Subscribers: spec.Subscribers},
		util: make([]float64, p.Ticks),
	}

	var rates [3]float64
	for c := Class(0); c < numClasses; c++ {
		rates[c] = p.FlowsPerTick * ClassRate(p, c)
	}

	base := subscriberBase
	subs := buildSubscribers(rng, p, spec, base, &out.classSubs)
	// Dense class array for the driver loop: one byte per subscriber, so
	// the per-tick gate scan streams through population-sized cache
	// lines instead of subscriber structs.
	classOf := make([]Class, len(subs))
	for j := range subs {
		classOf[j] = subs[j].class
	}

	// Partition: lane l belongs to shard l % S; a subscriber belongs to
	// its lane's shard. laneOf memoizes the address hash.
	shards := make([]*shardState, S)
	for s := range shards {
		shards[s] = &shardState{freeHead: -1}
	}
	for l := 0; l < sn.NumLanes(); l++ {
		st := shards[sn.ShardOf(l)]
		st.lanes = append(st.lanes, l)
	}
	laneOf := make([]int32, len(subs))
	for j := range subs {
		l := sn.LaneFor(subs[j].addr)
		laneOf[j] = int32(l)
		st := shards[sn.ShardOf(l)]
		st.subIdx = append(st.subIdx, int32(j))
		st.classSubs[subs[j].class]++
	}
	for _, st := range shards {
		st.lc = NewLiveCounts(st.classSubs)
		st.arena = make([]flowNode, 0, 4*len(st.subIdx))
	}

	// Per-lane mapping hooks maintain the owning shard's live-count
	// buckets. A hook fires on the goroutine driving its lane, and a
	// lane's mappings belong to subscribers of that lane's shard, so the
	// buckets stay shard-confined.
	for l := 0; l < sn.NumLanes(); l++ {
		st := shards[sn.ShardOf(l)]
		sn.Lane(l).SetMappingHooks(
			func(m *nat.Mapping) {
				if j := uint32(m.Int.Addr - base); j < uint32(len(subs)) {
					sub := &subs[j]
					st.lc.Move(sub.class, sub.live, sub.live+1)
					sub.live++
				}
			},
			func(m *nat.Mapping) {
				if j := uint32(m.Int.Addr - base); j < uint32(len(subs)) {
					sub := &subs[j]
					st.lc.Move(sub.class, sub.live, sub.live-1)
					sub.live--
				}
			},
		)
	}

	// shardTick is one shard's slice of a tick: sweep owned lanes,
	// refresh owned subscribers' flows, apply buffered arrivals, fold
	// the sampling buckets.
	shardTick := func(st *shardState, now time.Time) {
		for _, l := range st.lanes {
			sn.Lane(l).Sweep(now)
		}
		// Refresh pass over the active worklist, compacting out
		// subscribers whose last flow died.
		act := st.active
		w := 0
		for _, ji := range act {
			sub := &subs[ji]
			ln := sn.Lane(int(laneOf[ji]))
			prev := int32(-1)
			for idx := sub.head; idx >= 0; {
				nd := &st.arena[idx]
				next := nd.next
				ok := ln.Refresh(nd.ref, nd.f.Dst, now)
				if !ok {
					var v nat.Verdict
					_, nd.ref, v = ln.TranslateOutRef(nd.f, now)
					ok = v == nat.Ok
				}
				if ok {
					st.refreshes++
				}
				nd.ticksLeft--
				if nd.ticksLeft > 0 && ok {
					prev = idx
				} else {
					if prev >= 0 {
						st.arena[prev].next = next
					} else {
						sub.head = next
					}
					if next < 0 {
						sub.tail = prev
					}
					nd.next = st.freeHead
					st.freeHead = idx
				}
				idx = next
			}
			if sub.head >= 0 {
				act[w] = ji
				w++
			}
		}
		st.active = act[:w]
		for _, a := range st.pend {
			sub := &subs[a.j]
			ln := sn.Lane(int(laneOf[a.j]))
			if _, ref, v := ln.TranslateOutRef(a.f, now); v == nat.Ok {
				var ni int32
				if st.freeHead >= 0 {
					ni = st.freeHead
					st.freeHead = st.arena[ni].next
				} else {
					st.arena = append(st.arena, flowNode{})
					ni = int32(len(st.arena) - 1)
				}
				st.arena[ni] = flowNode{f: a.f, ref: ref, ticksLeft: a.hold, next: -1}
				if sub.tail >= 0 {
					st.arena[sub.tail].next = ni
				} else {
					sub.head = ni
					// Empty-to-nonempty: enters next tick's worklist.
					// pend is ascending by subscriber and a list refills
					// at most once per tick, so fresh stays sorted and
					// duplicate-free.
					st.fresh = append(st.fresh, a.j)
				}
				sub.tail = ni
			}
		}
		st.pend = st.pend[:0]
		// Merge the newly active (both lists ascending, disjoint).
		if len(st.fresh) > 0 {
			sc := st.scratch[:0]
			i, k := 0, 0
			for i < len(st.active) && k < len(st.fresh) {
				if st.active[i] < st.fresh[k] {
					sc = append(sc, st.active[i])
					i++
				} else {
					sc = append(sc, st.fresh[k])
					k++
				}
			}
			sc = append(sc, st.active[i:]...)
			sc = append(sc, st.fresh[k:]...)
			st.active, st.scratch = sc, st.active[:0]
			st.fresh = st.fresh[:0]
		}
		st.lc.Fold(&st.classHists, &st.allHist)
	}

	// The arrival-draw stream, seeded once from the realm RNG so realms
	// stay decorrelated; hold spans 1..2*FlowHoldTicks-1 like the legacy
	// engine's draw.
	fr := FastRand(rng.Uint64())
	holdSpan := uint32(2*p.FlowHoldTicks - 1)
	epoch := time.Unix(0, 0)
	var dstSeq uint64
	for t := 0; t < p.Ticks; t++ {
		now := epoch.Add(time.Duration(t) * p.TickStep)
		df := DiurnalFactor(p, t)
		var expNegLambda [3]float64
		var gated [3]bool
		for c := range rates {
			expNegLambda[c] = math.Exp(-(rates[c] * df))
			gated[c] = rates[c]*df > 0
		}

		// Driver phase: one Poisson gate per subscriber in ascending
		// order, then per-flow source-port and hold draws — the legacy
		// engine's draw sequence, on the fast stream, over the dense
		// class array.
		for j, cl := range classOf {
			if !gated[cl] {
				continue
			}
			k := fr.Poisson(expNegLambda[cl])
			for ; k > 0; k-- {
				dstSeq++
				f := netaddr.FlowOf(netaddr.UDP,
					netaddr.EndpointOf(base+netaddr.Addr(j), uint16(1024+fr.Intn(64512))),
					netaddr.EndpointOf(dstBase+netaddr.Addr(uint32(dstSeq)), uint16(443+(dstSeq>>32))))
				hold := 1 + fr.Intn(holdSpan)
				st := shards[sn.ShardOf(int(laneOf[j]))]
				st.pend = append(st.pend, arrival{j: int32(j), hold: int32(hold), f: f})
			}
		}

		// Shard phase: shard 0 on the calling goroutine, the rest on
		// their own; the WaitGroup is the tick barrier.
		if S == 1 {
			shardTick(shards[0], now)
		} else {
			var wg sync.WaitGroup
			for s := 1; s < S; s++ {
				wg.Add(1)
				go func(st *shardState) {
					defer wg.Done()
					shardTick(st, now)
				}(shards[s])
			}
			shardTick(shards[0], now)
			wg.Wait()
		}

		// Aggregation, after the barrier. See runRealm for the UDP
		// capacity share.
		ps := sn.PortStats()
		if udpCapacity := ps.Capacity / 2; udpCapacity > 0 {
			u := float64(ps.InUse) / float64(udpCapacity)
			out.util[t] = u
			if u > out.stat.PeakUtil {
				out.stat.PeakUtil = u
			}
		}
		if cfg.Observer != nil {
			cfg.Observer(spec, t, now, sn)
		}
	}

	final := sn.PortStats()
	out.stat.Created = final.Allocs
	out.stat.Failures = final.Failures()
	out.stat.Expired = sn.CounterTotal("mappings_expired")
	// Shard-private accumulators merge in shard-index order; every
	// merged quantity is an integer count, so the fold is order-proof
	// anyway.
	for _, st := range shards {
		out.refreshes += st.refreshes
		for c := range out.classHists {
			out.classHists[c].Merge(&st.classHists[c])
		}
		out.allHist.Merge(&st.allHist)
	}
	return out
}
