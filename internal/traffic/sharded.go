package traffic

import (
	"math"
	"math/rand"
	"slices"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
)

// The intra-realm sharded engine. One realm's work splits across the
// lanes of a nat.Sharded — one lane per external pool IP, subscribers
// pinned to lanes by address hash — and lanes group into shards, each
// driven by a persistent worker goroutine. A tick is a single parallel
// phase: every shard, over its owned lanes in ascending lane order,
// sweeps the lane, refreshes its live flows, draws the tick's arrivals
// from the lane's own RNG stream and applies them immediately, then
// folds its sampling buckets and port occupancy. There is no serial
// driver section — arrival generation is lane-confined, so nothing has
// to be drawn centrally or handed across shards.
//
// Arrivals are decoded by geometric skip-sampling (ForEachArrival): for
// each (lane, class) the decoder jumps straight from arriving subscriber
// to arriving subscriber, so a tick costs O(arrivals + live flows), not
// O(population) — at light per-subscriber rates (the common case) that
// is an order of magnitude fewer draws than one Poisson gate per
// subscriber.
//
// Determinism at any shard count follows from lane confinement: every
// operation on lane l — sweep, refreshes of l's subscribers ascending,
// l's arrival decode per class ascending — happens in a fixed order
// whatever shard drives it, and all RNG a lane consumes is its own
// stream, seeded in lane order from the realm RNG before the run.
// Shard-private accumulators merge in shard-index order, and all merged
// quantities are integers, so the merged realm output is identical at
// any shard count too.
type shardState struct {
	// lanes this shard owns (ascending); nsubs counts the subscribers
	// those lanes own and classSubs splits them by rate class.
	lanes     []int
	nsubs     int
	classSubs [3]int
	lc        *LiveCounts
	// Private accumulators, merged in shard-index order after the run.
	classHists [3]Hist
	allHist    Hist
	refreshes  uint64
	// inUse is the shard's per-tick port-occupancy fold over its owned
	// lanes; the driver sums the S values after the barrier instead of
	// assembling a full PortStats every tick.
	inUse int
	// active lists the shard's subscribers currently holding live flows,
	// ascending — the refresh loop's worklist, so a tick's cost scales
	// with flow-holding subscribers, not population. fresh collects the
	// tick's empty-to-nonempty transitions (sorted before the merge —
	// the per-lane, per-class arrival passes emit them out of global
	// subscriber order); scratch is the merge buffer the two swap
	// through.
	active, fresh, scratch []int32
	// The shard flow arena: the shard's subscribers' flow lists live in
	// one slice, dead nodes chain through the freelist, exactly like the
	// legacy engine's realm arena (head/tail in subscriber index into
	// the owning shard's arena — well defined, a subscriber has exactly
	// one).
	arena    []flowNode
	freeHead int32
	// emit is the shard's arrival sink, allocated once at setup and
	// parameterized through curLane/curList/curLn/curFr so the per-tick
	// decode passes allocate nothing. atkEmit is its adversarial twin:
	// flood flows through the same decoder, but fire-and-forget (no
	// arena node, never refreshed).
	curLane int
	curList []int32
	curLn   *nat.NAT
	curFr   *FastRand
	emit    func(i, k int)
	atkEmit func(i, k int)
	// adv is the shard's adversarial accumulator, merged in shard-index
	// order after the run; zero when the profile offers no adversaries.
	adv advAccum
	// degA/degF are the shard's per-tick legitimate allocation
	// attempt/failure series — the E22 degradation curve's raw counts —
	// allocated only when the config schedules faults, so a fault-free
	// run carries no extra state.
	degA, degF []uint64
}

// FastRand is the sharded engine's arrival-draw stream: a SplitMix64
// generator, statistically sound for simulation draws at a fraction of
// math/rand's per-draw cost. Each lane owns one, so arrival draws are
// lane-confined and byte-identical at any shards × workers split. The
// sharded engine is its own deterministic universe (see Config.Shards),
// so its draw stream only has to be deterministic, not match the legacy
// engine's generator.
type FastRand uint64

func (r *FastRand) Next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	return z ^ z>>31
}

// Float64 returns a uniform variate in [0, 1).
func (r *FastRand) Float64() float64 {
	return float64(r.Next()>>11) * (1.0 / (1 << 53))
}

// OpenFloat64 returns a uniform variate in (0, 1] — the zero-excluding
// form the skip-sampling decoder feeds to log.
func (r *FastRand) OpenFloat64() float64 {
	return float64(r.Next()>>11+1) * (1.0 / (1 << 53))
}

// Intn returns a uniform variate in [0, n) by Lemire's multiply-shift.
func (r *FastRand) Intn(n uint32) uint32 {
	return uint32(uint64(uint32(r.Next())) * uint64(n) >> 32)
}

// Poisson draws a Poisson variate by Knuth's method, like the package
// poisson but on the fast stream.
func (r *FastRand) Poisson(expNegLambda float64) int {
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= expNegLambda {
			return k
		}
		k++
		if k >= 1024 { // unreachable at sane rates; bounds a corrupt profile
			return k
		}
	}
}

// PoissonGE1 draws a Poisson(lambda) variate conditioned on being >= 1,
// by inversion on one uniform: the target is uniform on
// (exp(-lambda), 1] — the CDF mass above zero — and the walk adds terms
// of the Poisson pmf until the cumulative reaches it. Skip-sampling uses
// it for the flow count at a subscriber the geometric jump selected:
// selection already conditioned on "at least one arrival".
func (r *FastRand) PoissonGE1(lambda, expNegLambda float64) int {
	target := expNegLambda + r.OpenFloat64()*(1-expNegLambda)
	k := 0
	p := expNegLambda
	cum := p
	for cum < target && k < 1024 {
		k++
		p *= lambda / float64(k)
		cum += p
	}
	if k == 0 { // only reachable when 1-expNegLambda underflows to 0
		k = 1
	}
	return k
}

// ForEachArrival decodes one (lane, class, tick) arrival set by
// geometric skip-sampling over a list of n subscribers, calling
// emit(i, k) for each arriving position i (ascending) with its flow
// count k >= 1.
//
// The arrival process is: each subscriber independently receives
// Poisson(lambda) flows this tick, so it arrives (>= 1 flow) with
// probability p = 1 - exp(-lambda). Instead of gating all n subscribers,
// the decoder draws the geometric gap to the next arriving one —
// floor(log(u)/log(1-p)) failures before a success, and log(1-p) is
// exactly -lambda — then the conditional flow count at that position.
// Cost is O(arrivals + 1) draws, never worse than per-subscriber gating,
// and the emitted multiset follows the exact same distribution.
//
// n == 0 or lambda <= 0 consumes no draws. This decode IS the sharded
// universe's arrival process (always on, no rate threshold); the
// differential test pins its jump arithmetic against a transparent
// per-subscriber walk over the same stream.
func ForEachArrival(r *FastRand, n int, lambda, expNegLambda float64, emit func(i, k int)) {
	if n <= 0 || lambda <= 0 {
		return
	}
	invLambda := 1 / lambda
	for i := 0; i < n; {
		g := -math.Log(r.OpenFloat64()) * invLambda
		if g >= float64(n-i) {
			return
		}
		i += int(g)
		emit(i, r.PoissonGE1(lambda, expNegLambda))
		i++
	}
}

// runRealmSharded drives one realm through every tick against a fresh
// sharded NAT built from the realm's configuration. Same signature and
// accumulator contract as runRealm; engine selection happens in Run.
func runRealmSharded(cfg Config, p Profile, spec RealmSpec, realmIdx int) *realmOut {
	// Same realm-stream seed mix as the legacy engine: the realm RNG
	// serves the class draws and seeds the per-lane arrival streams; the
	// lanes draw allocation randomness from their own per-lane streams.
	rng := rand.New(rand.NewSource(cfg.Seed + int64(realmIdx+1)*-0x61c8864680b583eb))
	sn := nat.NewSharded(spec.NAT, cfg.Shards)
	S := sn.NumShards()
	out := &realmOut{
		stat: RealmStat{ID: spec.ID, Cellular: spec.Cellular, Subscribers: spec.Subscribers},
		util: make([]float64, p.Ticks),
	}

	// The compiled fault schedule: per-tick transitions the driver
	// applies serially between barriers. nil (and zero per-tick cost)
	// when the plan is empty.
	faulty := cfg.Faults.Enabled()
	var bounds map[int]*faultBoundary
	if faulty {
		bounds = cfg.Faults.boundaries(sn.NumLanes(), faultSalt(cfg.Seed, realmIdx))
		out.degA = make([]uint64, p.Ticks)
		out.degF = make([]uint64, p.Ticks)
	}

	var rates [3]float64
	for c := Class(0); c < numClasses; c++ {
		rates[c] = p.FlowsPerTick * ClassRate(p, c)
	}

	base := subscriberBase
	subs := buildSubscribers(rng, p, spec, base, &out.classSubs)
	numAtk := attackerCount(p, len(subs))
	markAttackers(subs, numAtk, &out.classSubs)
	attacks := p.AttacksEnabled()

	// Partition: lane l belongs to shard l % S; a subscriber belongs to
	// its lane's shard. laneOf memoizes the subscriber's current ACTIVE
	// lane — the address hash always, until a fault boundary re-pins
	// displaced subscribers to failover lanes. laneSubs lists each
	// lane's subscribers per class, ascending — the skip-sampling
	// decode's index space. Attackers land in laneAtk instead: they
	// receive no legitimate arrivals and stay out of the class census.
	shards := make([]*shardState, S)
	for s := range shards {
		shards[s] = &shardState{freeHead: -1}
	}
	for l := 0; l < sn.NumLanes(); l++ {
		st := shards[sn.ShardOf(l)]
		st.lanes = append(st.lanes, l)
	}
	laneOf := make([]int32, len(subs))
	laneSubs := make([][numClasses][]int32, sn.NumLanes())
	laneAtk := make([][]int32, sn.NumLanes())
	for j := range subs {
		l := sn.LaneFor(subs[j].addr)
		laneOf[j] = int32(l)
		if subs[j].attacker {
			laneAtk[l] = append(laneAtk[l], int32(j))
			continue
		}
		laneSubs[l][subs[j].class] = append(laneSubs[l][subs[j].class], int32(j))
		st := shards[sn.ShardOf(l)]
		st.nsubs++
		st.classSubs[subs[j].class]++
	}
	for _, st := range shards {
		st.lc = NewLiveCounts(st.classSubs)
		st.arena = make([]flowNode, 0, 4*st.nsubs)
		if faulty {
			st.degA = make([]uint64, p.Ticks)
			st.degF = make([]uint64, p.Ticks)
		}
	}

	// Per-lane mapping hooks maintain the owning shard's live-count
	// buckets. A hook fires on the goroutine driving its lane, and a
	// lane's mappings belong to subscribers of that lane's shard (the
	// fault-boundary re-pin pass keeps that invariant: a subscriber's
	// mappings never outlive a move off their lane), so the buckets stay
	// shard-confined. installHooks is a func because an engine restart
	// replaces sn wholesale and must re-arm the fresh lanes.
	installHooks := func() {
		for l := 0; l < sn.NumLanes(); l++ {
			st := shards[sn.ShardOf(l)]
			sn.Lane(l).SetMappingHooks(
				func(m *nat.Mapping) {
					if j := uint32(m.Int.Addr - base); j < uint32(len(subs)) {
						sub := &subs[j]
						if !sub.attacker {
							st.lc.Move(sub.class, sub.live, sub.live+1)
						}
						sub.live++
					}
				},
				func(m *nat.Mapping) {
					if j := uint32(m.Int.Addr - base); j < uint32(len(subs)) {
						sub := &subs[j]
						if !sub.attacker {
							st.lc.Move(sub.class, sub.live, sub.live-1)
						}
						sub.live--
					}
				},
			)
		}
	}
	installHooks()

	// Per-lane arrival streams, seeded from the realm RNG in lane order
	// — a fixed count of draws, independent of the shard partition —
	// plus a per-lane destination sequence. Destination collisions
	// across lanes are harmless (source addresses differ across lanes,
	// so 5-tuples stay distinct); within a lane the counter keeps them
	// distinct.
	frLane := make([]FastRand, sn.NumLanes())
	for l := range frLane {
		frLane[l] = FastRand(rng.Uint64())
	}
	dstSeq := make([]uint64, sn.NumLanes())
	holdSpan := uint32(2*p.FlowHoldTicks - 1)

	// Per-lane adversarial streams and flood destination sequences,
	// seeded only when the profile offers attacks — a disabled profile
	// consumes no extra realm-RNG draw, keeping zero-attacker runs
	// byte-identical to pre-adversarial builds. Flood rates are not
	// diurnal, so their λ terms hoist out of the tick loop entirely.
	var (
		atkFrLane               []FastRand
		atkSeqLane              []uint64
		floodLambda             float64
		expNegFlood, expNegScan float64
		scanLo, scanSpan        uint32
	)
	if attacks {
		atkFrLane = make([]FastRand, sn.NumLanes())
		for l := range atkFrLane {
			atkFrLane[l] = FastRand(rng.Uint64())
		}
		atkSeqLane = make([]uint64, sn.NumLanes())
		floodLambda = p.AttackerFlowsPerTick
		expNegFlood = math.Exp(-floodLambda)
		expNegScan = math.Exp(-p.ScannerProbesPerTick)
		eff := sn.Config()
		scanLo = uint32(eff.PortLo)
		scanSpan = uint32(eff.PortHi) - uint32(eff.PortLo) + 1
	}

	// Per-tick inputs: written by the driver goroutine before the start
	// barrier, read by shard workers after it (the channel send/receive
	// orders the accesses).
	var (
		curNow               time.Time
		curTick              int
		curLambda, curExpNeg [3]float64
	)

	// One arrival sink per shard, allocated once: ForEachArrival calls
	// it for every arriving subscriber of the pass set up in the cur*
	// fields. Hold spans 1..2*FlowHoldTicks-1 like the legacy engine's
	// draw.
	for _, st := range shards {
		st.atkEmit = func(i, k int) {
			sub := &subs[st.curList[i]]
			fr := st.curFr
			st.adv.attackerAttempts += uint64(k)
			for ; k > 0; k-- {
				atkSeqLane[st.curLane]++
				seq := atkSeqLane[st.curLane]
				f := netaddr.FlowOf(netaddr.UDP,
					netaddr.EndpointOf(sub.addr, uint16(1024+fr.Intn(64512))),
					netaddr.EndpointOf(atkDstBase+netaddr.Addr(uint32(seq)), uint16(9+(seq>>32))))
				if _, v := st.curLn.TranslateOut(f, curNow); v != nat.Ok {
					st.adv.attackerFailures++
				}
			}
		}
		st.emit = func(i, k int) {
			j := st.curList[i]
			sub := &subs[j]
			fr := st.curFr
			for ; k > 0; k-- {
				dstSeq[st.curLane]++
				seq := dstSeq[st.curLane]
				f := netaddr.FlowOf(netaddr.UDP,
					netaddr.EndpointOf(sub.addr, uint16(1024+fr.Intn(64512))),
					netaddr.EndpointOf(dstBase+netaddr.Addr(uint32(seq)), uint16(443+(seq>>32))))
				hold := 1 + fr.Intn(holdSpan)
				_, ref, v := st.curLn.TranslateOutRef(f, curNow)
				if attacks {
					st.adv.legitAttempts++
					if v != nat.Ok {
						st.adv.legitFailures++
					}
				}
				if st.degA != nil {
					st.degA[curTick]++
					if v != nat.Ok {
						st.degF[curTick]++
					}
				}
				if v == nat.Ok {
					var ni int32
					if st.freeHead >= 0 {
						ni = st.freeHead
						st.freeHead = st.arena[ni].next
					} else {
						st.arena = append(st.arena, flowNode{})
						ni = int32(len(st.arena) - 1)
					}
					st.arena[ni] = flowNode{f: f, ref: ref, ticksLeft: int32(hold), next: -1}
					if sub.tail >= 0 {
						st.arena[sub.tail].next = ni
					} else {
						sub.head = ni
						// Empty-to-nonempty: enters next tick's worklist.
						st.fresh = append(st.fresh, j)
					}
					sub.tail = ni
				}
			}
		}
	}

	// shardTick is one shard's whole tick: sweep owned lanes, refresh
	// owned subscribers' flows, decode and apply the tick's arrivals
	// lane by lane, fold the sampling buckets and port occupancy.
	shardTick := func(st *shardState) {
		now := curNow
		for _, l := range st.lanes {
			sn.Lane(l).Sweep(now)
		}
		// Refresh pass over the active worklist, compacting out
		// subscribers whose last flow died.
		act := st.active
		w := 0
		for _, ji := range act {
			sub := &subs[ji]
			ln := sn.Lane(int(laneOf[ji]))
			prev := int32(-1)
			for idx := sub.head; idx >= 0; {
				nd := &st.arena[idx]
				next := nd.next
				ok := ln.Refresh(nd.ref, nd.f.Dst, now)
				if !ok {
					var v nat.Verdict
					_, nd.ref, v = ln.TranslateOutRef(nd.f, now)
					ok = v == nat.Ok
					// A re-establishment is a legitimate allocation
					// attempt — during an outage this is exactly where
					// displaced flows hit the surviving lanes.
					if st.degA != nil {
						st.degA[curTick]++
						if !ok {
							st.degF[curTick]++
						}
					}
				}
				if ok {
					st.refreshes++
				}
				nd.ticksLeft--
				if nd.ticksLeft > 0 && ok {
					prev = idx
				} else {
					if prev >= 0 {
						st.arena[prev].next = next
					} else {
						sub.head = next
					}
					if next < 0 {
						sub.tail = prev
					}
					nd.next = st.freeHead
					st.freeHead = idx
				}
				idx = next
			}
			if sub.head >= 0 {
				act[w] = ji
				w++
			}
		}
		st.active = act[:w]
		// Arrivals: per owned lane ascending, per class ascending,
		// skip-sampled on the lane's stream and applied immediately —
		// the single-phase replacement for the old sequential driver.
		// The adversarial pass rides the same per-lane order, after the
		// legitimate classes (matching the legacy engine), on the
		// lane's own attack stream.
		for _, l := range st.lanes {
			st.curLane = l
			st.curLn = sn.Lane(l)
			st.curFr = &frLane[l]
			for c := Class(0); c < numClasses; c++ {
				if curLambda[c] <= 0 {
					continue
				}
				list := laneSubs[l][c]
				if len(list) == 0 {
					continue
				}
				st.curList = list
				ForEachArrival(st.curFr, len(list), curLambda[c], curExpNeg[c], st.emit)
			}
			if attacks {
				fr := &atkFrLane[l]
				st.curFr = fr
				if list := laneAtk[l]; len(list) > 0 && floodLambda > 0 {
					st.curList = list
					ForEachArrival(fr, len(list), floodLambda, expNegFlood, st.atkEmit)
				}
				// Scanner probes against this lane's external IP — the
				// lane-confined slice of the pool-wide sweep.
				if p.ScannerProbesPerTick > 0 {
					ip := sn.Config().ExternalIPs[l]
					for k := fr.Poisson(expNegScan); k > 0; k-- {
						probe := netaddr.FlowOf(netaddr.UDP,
							netaddr.EndpointOf(scannerAddr, uint16(1024+fr.Intn(64512))),
							netaddr.EndpointOf(ip, uint16(scanLo+fr.Intn(scanSpan))))
						st.adv.scannerProbes++
						if _, v := st.curLn.TranslateIn(probe, now); v != nat.Ok {
							st.adv.scannerBlocked++
						}
					}
				}
			}
		}
		// Merge the newly active. The per-lane, per-class passes emit
		// fresh out of global subscriber order, so sort first; entries
		// are unique (a subscriber goes empty-to-nonempty at most once a
		// tick) and disjoint from active.
		if len(st.fresh) > 0 {
			slices.Sort(st.fresh)
			sc := st.scratch[:0]
			i, k := 0, 0
			for i < len(st.active) && k < len(st.fresh) {
				if st.active[i] < st.fresh[k] {
					sc = append(sc, st.active[i])
					i++
				} else {
					sc = append(sc, st.fresh[k])
					k++
				}
			}
			sc = append(sc, st.active[i:]...)
			sc = append(sc, st.fresh[k:]...)
			st.active, st.scratch = sc, st.active[:0]
			st.fresh = st.fresh[:0]
		}
		st.lc.Fold(&st.classHists, &st.allHist)
		if attacks {
			// Attacker concurrent-port samples: walked directly — the
			// population is a small fraction of the shard, and its live
			// counts are hook-maintained like everyone else's.
			for _, l := range st.lanes {
				for _, j := range laneAtk[l] {
					st.adv.attackerHist.Add(int(subs[j].live))
				}
			}
		}
		inUse := 0
		for _, l := range st.lanes {
			inUse += sn.Lane(l).InUsePorts()
		}
		st.inUse = inUse
	}

	// applyFaults applies one tick's fault transitions. It runs on the
	// driver goroutine with every shard worker idle (before the start
	// barrier), so it may touch all lanes and all shard state — the same
	// license the aggregation phase has. Order: restorations, new
	// outages, restart, then one re-pin/repartition pass that restores
	// the two invariants the parallel phase rests on: a subscriber's
	// mappings live only on its active lane, and a subscriber is driven
	// by the shard owning that lane.
	applyFaults := func(fb *faultBoundary) {
		for _, l := range fb.ups {
			if sn.LaneDown(l) {
				sn.SetLaneUp(l)
				out.faultEvents++
			}
		}
		for _, l := range fb.downs {
			if d, ok := sn.SetLaneDown(l); ok {
				out.disrupted += uint64(d)
				out.faultEvents++
			}
		}
		if fb.restart {
			// The whole box reboots: every mapping is gone, but an
			// outage in progress survives the reboot (the pool IPs are
			// dark whatever the box does). Live flows keep their arena
			// nodes and re-establish through the refresh fallback; their
			// old refs must be cleared, not left dangling into the
			// discarded engine (a non-dead orphan would "refresh"
			// against a table that no longer owns it).
			out.disrupted += uint64(sn.NumMappings())
			out.faultEvents++
			downs := sn.DownLanes()
			sn = nat.NewSharded(spec.NAT, cfg.Shards)
			for l, d := range downs {
				if d {
					sn.SetLaneDown(l)
				}
			}
			installHooks()
			for j := range subs {
				subs[j].live = 0
			}
			for _, st := range shards {
				for i := range st.arena {
					st.arena[i].ref = nat.MappingRef{}
				}
			}
		}
		// Re-pin: compute every subscriber's new active lane, then drop
		// any mapping stranded on a lane its owner moved off (counted as
		// disrupted — the CGN re-homing the subscriber tears down its
		// old bindings). Lanes going down already dropped theirs.
		newLane := make([]int32, len(subs))
		for j := range subs {
			newLane[j] = int32(sn.ActiveLaneFor(subs[j].addr))
		}
		for l := 0; l < sn.NumLanes(); l++ {
			if sn.LaneDown(l) {
				continue
			}
			ll := int32(l)
			out.disrupted += uint64(sn.Lane(l).DropMatching(func(m *nat.Mapping) bool {
				j := uint32(m.Int.Addr - base)
				return j < uint32(len(subs)) && newLane[j] != ll
			}))
		}
		// Repartition wholesale: rebuild the per-lane subscriber lists,
		// the per-shard census, and — for subscribers changing shards —
		// move their flow chains into the new owner's arena. Everything
		// is rebuilt in ascending subscriber order from scratch, so the
		// result depends only on the new lane assignment, not on which
		// shard previously held what.
		for l := range laneSubs {
			for c := range laneSubs[l] {
				laneSubs[l][c] = laneSubs[l][c][:0]
			}
			laneAtk[l] = laneAtk[l][:0]
		}
		type rebuilt struct {
			arena  []flowNode
			active []int32
		}
		nw := make([]rebuilt, S)
		for s, st := range shards {
			st.nsubs, st.classSubs = 0, [3]int{}
			nw[s].arena = make([]flowNode, 0, cap(st.arena))
			nw[s].active = make([]int32, 0, cap(st.active))
		}
		for j := range subs {
			sub := &subs[j]
			oldSt := shards[sn.ShardOf(int(laneOf[j]))]
			l := int(newLane[j])
			// A subscriber changing lanes leaves dead mappings behind
			// (dropped above, or with the dark lane) — but the arena refs
			// still point into the old lane's slab. The dead/gen guard
			// would reject them anyway; clearing them here keeps the next
			// parallel phase from dereferencing another shard's slab
			// memory at all (the refresh fallback is identical either
			// way: a zero ref reports stale exactly like a dead one).
			moved := newLane[j] != laneOf[j]
			laneOf[j] = newLane[j]
			if sub.attacker {
				laneAtk[l] = append(laneAtk[l], int32(j))
			} else {
				laneSubs[l][sub.class] = append(laneSubs[l][sub.class], int32(j))
				st := shards[sn.ShardOf(l)]
				st.nsubs++
				st.classSubs[sub.class]++
			}
			if sub.head >= 0 {
				ns := sn.ShardOf(l)
				a := nw[ns].arena
				head, tail := int32(-1), int32(-1)
				for idx := sub.head; idx >= 0; idx = oldSt.arena[idx].next {
					nd := oldSt.arena[idx]
					if moved {
						nd.ref = nat.MappingRef{}
					}
					a = append(a, flowNode{f: nd.f, ref: nd.ref, ticksLeft: nd.ticksLeft, next: -1})
					ni := int32(len(a) - 1)
					if tail >= 0 {
						a[tail].next = ni
					} else {
						head = ni
					}
					tail = ni
				}
				nw[ns].arena = a
				sub.head, sub.tail = head, tail
				nw[ns].active = append(nw[ns].active, int32(j))
			}
		}
		for s, st := range shards {
			st.arena, st.freeHead = nw[s].arena, -1
			st.active = nw[s].active
			st.fresh, st.scratch = st.fresh[:0], st.scratch[:0]
			st.lc = NewLiveCounts(st.classSubs)
		}
		for j := range subs {
			sub := &subs[j]
			if !sub.attacker && sub.live > 0 {
				shards[sn.ShardOf(int(laneOf[j]))].lc.Rebucket(sub.class, sub.live)
			}
		}
	}

	// Persistent shard workers: S-1 goroutines spawned once for the
	// whole realm run. Each tick the driver publishes the tick inputs,
	// releases every worker through its start channel, runs shard 0
	// itself, then collects the done signals — a reusable two-phase
	// barrier in place of per-tick goroutine spawns and WaitGroups. The
	// channels are buffered so the driver never blocks on the fan-out.
	type shardWorker struct {
		start chan struct{}
		done  chan struct{}
	}
	var workers []shardWorker
	if S > 1 {
		workers = make([]shardWorker, S-1)
		for i := range workers {
			workers[i] = shardWorker{start: make(chan struct{}, 1), done: make(chan struct{}, 1)}
			go func(st *shardState, w *shardWorker) {
				for range w.start {
					shardTick(st)
					w.done <- struct{}{}
				}
			}(shards[i+1], &workers[i])
		}
	}

	// Pool capacity is immutable; hoist it so per-tick aggregation is a
	// sum of S integers instead of a full PortStats assembly.
	capacity := sn.PortStats().Capacity
	epoch := time.Unix(0, 0)
	for t := 0; t < p.Ticks; t++ {
		if fb := bounds[t]; fb != nil {
			applyFaults(fb)
		}
		curNow = epoch.Add(time.Duration(t) * p.TickStep)
		curTick = t
		df := DiurnalFactor(p, t)
		for c := range rates {
			curLambda[c] = rates[c] * df
			curExpNeg[c] = math.Exp(-curLambda[c])
		}
		for i := range workers {
			workers[i].start <- struct{}{}
		}
		shardTick(shards[0])
		for i := range workers {
			<-workers[i].done
		}

		// Aggregation, after the barrier. See runRealm for the UDP
		// capacity share.
		inUse := 0
		for _, st := range shards {
			inUse += st.inUse
		}
		if udpCapacity := capacity / 2; udpCapacity > 0 {
			u := float64(inUse) / float64(udpCapacity)
			out.util[t] = u
			if u > out.stat.PeakUtil {
				out.stat.PeakUtil = u
			}
		}
		if cfg.Observer != nil {
			cfg.Observer(spec, t, curNow, sn)
		}
	}
	for i := range workers {
		close(workers[i].start)
	}

	final := sn.PortStats()
	out.stat.Created = final.Allocs
	out.stat.Failures = final.Failures()
	out.stat.Expired = sn.CounterTotal("mappings_expired")
	// Shard-private accumulators merge in shard-index order; every
	// merged quantity is an integer count, so the fold is order-proof
	// anyway.
	for _, st := range shards {
		out.refreshes += st.refreshes
		for c := range out.classHists {
			out.classHists[c].Merge(&st.classHists[c])
		}
		out.allHist.Merge(&st.allHist)
		out.adv.merge(&st.adv)
		if faulty {
			for t := range st.degA {
				out.degA[t] += st.degA[t]
				out.degF[t] += st.degF[t]
			}
		}
	}
	if attacks {
		out.adv.attackers = numAtk
		out.adv.quotaDrops = final.QuotaDrops
		out.adv.noPorts = final.NoPorts
		out.adv.rateLimited = final.RateLimited
		out.adv.evictions = final.Evictions
	}
	return out
}
