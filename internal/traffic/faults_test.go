// Fault-injection differentials: a faulted run is byte-identical at any
// workers × shards split, a zero-fault plan leaves the Result's
// degradation dataset exactly zero, and the degradation curve recovers
// after the pool is restored. Lives in package traffic_test like the
// other differentials (shared helpers build multi-lane realm sets).
package traffic_test

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/traffic"
)

// runFaulted runs the spec set under the given fault plan and returns
// the Result plus per-realm final-tick state digests.
func runFaulted(profile traffic.Profile, seed int64, specs []traffic.RealmSpec, plan traffic.FaultPlan, workers, shards int) (*traffic.Result, map[string]string) {
	lastTick := profile.WithDefaults().Ticks - 1
	digests := make(map[string]string)
	var mu sync.Mutex
	res := traffic.Run(traffic.Config{
		Seed:    seed,
		Profile: profile,
		Realms:  specs,
		Workers: workers,
		Shards:  shards,
		Faults:  plan,
		Observer: func(realm traffic.RealmSpec, tick int, _ time.Time, n nat.View) {
			if tick != lastTick {
				return
			}
			d := n.StateDigest()
			mu.Lock()
			digests[realm.ID] = d
			mu.Unlock()
		},
	})
	return res, digests
}

func faultPlanForTests() traffic.FaultPlan {
	return traffic.FaultPlan{
		Outages: []traffic.Outage{
			{Start: 8, Ticks: 10, LaneFrac: 0.5},
			{Start: 26, Ticks: 6, LaneFrac: 0.34},
		},
		Restarts: []int{20},
	}
}

// TestFaultedRunInvariance is the workers × shards differential under an
// active fault schedule — two pool outages and an engine restart, with
// boundaries landing inside and outside outage windows — asserting
// deeply equal Results (including the degradation series) and identical
// final-tick digests against the workers=1 shards=1 baseline.
func TestFaultedRunInvariance(t *testing.T) {
	profile := traffic.Profile{
		Ticks:         40,
		DayTicks:      24,
		TickStep:      15 * time.Second,
		DiurnalAmp:    0.6,
		HeavyFrac:     0.05,
		LightFrac:     0.5,
		FlowsPerTick:  0.8,
		HeavyMult:     6,
		FlowHoldTicks: 3,
	}
	specs := multiLaneSpecs()
	plan := faultPlanForTests()

	baseRes, baseDig := runFaulted(profile, 99, specs, plan, 1, 1)
	if baseRes.Created == 0 {
		t.Fatal("faulted baseline drove no flows")
	}
	d := baseRes.Degradation
	if !d.Enabled || d.Disrupted == 0 || d.FaultEvents == 0 {
		t.Fatalf("degradation dataset not populated: %+v", d)
	}
	if len(d.Attempts) != profile.Ticks || len(d.Failures) != profile.Ticks {
		t.Fatalf("degradation series length %d/%d, want %d", len(d.Attempts), len(d.Failures), profile.Ticks)
	}
	var attempts uint64
	for _, a := range d.Attempts {
		attempts += a
	}
	if attempts == 0 {
		t.Fatal("degradation series recorded no allocation attempts")
	}
	for _, tc := range []struct{ workers, shards int }{
		{1, 2}, {1, 3}, {1, 5}, {1, 16}, {3, 4}, {4, 2},
	} {
		res, dig := runFaulted(profile, 99, specs, plan, tc.workers, tc.shards)
		if !reflect.DeepEqual(baseRes, res) {
			t.Errorf("workers=%d shards=%d: faulted Result differs from baseline:\n%+v\nvs\n%+v",
				tc.workers, tc.shards, baseRes, res)
		}
		if !reflect.DeepEqual(baseDig, dig) {
			t.Errorf("workers=%d shards=%d: faulted digests differ from baseline:\n%v\nvs\n%v",
				tc.workers, tc.shards, baseDig, dig)
		}
	}
}

// TestZeroFaultPlanZeroDataset pins the zero-fault contract's visible
// half: without a schedule the degradation dataset is exactly zero (the
// byte-identity of everything else to pre-feature builds is pinned by
// the shard-invariance differentials and the experiment goldens).
func TestZeroFaultPlanZeroDataset(t *testing.T) {
	profile := traffic.Profile{
		Ticks:         10,
		TickStep:      15 * time.Second,
		FlowsPerTick:  0.5,
		FlowHoldTicks: 2,
	}
	res, _ := runFaulted(profile, 7, multiLaneSpecs()[:1], traffic.FaultPlan{}, 1, 2)
	if !reflect.DeepEqual(res.Degradation, traffic.DegradationStats{}) {
		t.Fatalf("zero-fault run produced a nonzero degradation dataset: %+v", res.Degradation)
	}
}

// TestDegradationRecoveryCurve drives a tightly provisioned pool through
// a half-pool outage and checks the E22 headline shape: the legitimate
// failure rate is elevated during the outage and returns to (near) the
// pre-outage baseline after restoration, and fault transitions disrupt
// live flows.
func TestDegradationRecoveryCurve(t *testing.T) {
	mkIPs := func(first string, n int) []netaddr.Addr {
		base := netaddr.MustParseAddr(first)
		ips := make([]netaddr.Addr, n)
		for i := range ips {
			ips[i] = base + netaddr.Addr(i)
		}
		return ips
	}
	specs := []traffic.RealmSpec{{
		ID: "tight/outage",
		NAT: nat.Config{
			Type:        nat.PortRestricted,
			PortAlloc:   nat.Random,
			Pooling:     nat.Paired,
			ExternalIPs: mkIPs("198.51.100.64", 4),
			UDPTimeout:  45 * time.Second,
			PortLo:      1024,
			PortHi:      1279,
			Seed:        21,
		},
		Subscribers: 500,
	}}
	profile := traffic.Profile{
		Ticks:         90,
		TickStep:      15 * time.Second,
		HeavyFrac:     0.05,
		LightFrac:     0.4,
		FlowsPerTick:  1.0,
		HeavyMult:     6,
		FlowHoldTicks: 4,
	}
	const start, dur = 30, 25
	plan := traffic.FaultPlan{Outages: []traffic.Outage{{Start: start, Ticks: dur, LaneFrac: 0.5}}}
	res, _ := runFaulted(profile, 3, specs, plan, 1, 2)
	d := res.Degradation
	if d.Disrupted == 0 {
		t.Fatal("a half-pool outage disrupted no live flows")
	}
	rate := func(lo, hi int) float64 {
		var a, f uint64
		for t := lo; t < hi; t++ {
			a += d.Attempts[t]
			f += d.Failures[t]
		}
		if a == 0 {
			return 0
		}
		return float64(f) / float64(a)
	}
	// Skip the warmup; compare steady-state before, during, after.
	before := rate(15, start)
	during := rate(start, start+dur)
	after := rate(start+dur+15, profile.Ticks)
	if during <= before {
		t.Errorf("failure rate did not rise during the outage: before %.4f during %.4f", before, during)
	}
	if after >= during {
		t.Errorf("failure rate did not recover after restoration: during %.4f after %.4f", during, after)
	}
}

// TestFaultPlanValidate covers the rejection surface.
func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan traffic.FaultPlan
		want string
	}{
		{"start-negative", traffic.FaultPlan{Outages: []traffic.Outage{{Start: -1, Ticks: 2, LaneFrac: 0.5}}}, "start tick"},
		{"start-beyond", traffic.FaultPlan{Outages: []traffic.Outage{{Start: 50, Ticks: 2, LaneFrac: 0.5}}}, "start tick"},
		{"zero-duration", traffic.FaultPlan{Outages: []traffic.Outage{{Start: 1, Ticks: 0, LaneFrac: 0.5}}}, "duration"},
		{"frac-zero", traffic.FaultPlan{Outages: []traffic.Outage{{Start: 1, Ticks: 2, LaneFrac: 0}}}, "lane fraction"},
		{"frac-above-one", traffic.FaultPlan{Outages: []traffic.Outage{{Start: 1, Ticks: 2, LaneFrac: 1.5}}}, "lane fraction"},
		{"overlap", traffic.FaultPlan{Outages: []traffic.Outage{
			{Start: 1, Ticks: 10, LaneFrac: 0.5}, {Start: 5, Ticks: 2, LaneFrac: 0.5},
		}}, "non-overlapping"},
		{"restart-beyond", traffic.FaultPlan{Restarts: []int{50}}, "restart"},
		{"restart-order", traffic.FaultPlan{Restarts: []int{5, 5}}, "ascending"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(40)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	ok := faultPlanForTests()
	if err := ok.Validate(40); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if ok.Enabled() == false || (traffic.FaultPlan{}).Enabled() {
		t.Error("Enabled() misreports")
	}
}

// TestFaultsRequireShardedEngine pins the refusal: a fault plan on the
// legacy engine (Shards == 0) panics rather than silently ignoring the
// schedule.
func TestFaultsRequireShardedEngine(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Run accepted a fault plan with Shards == 0")
		}
	}()
	traffic.Run(traffic.Config{
		Seed:    1,
		Profile: traffic.Profile{Ticks: 4, TickStep: time.Second, FlowsPerTick: 0.1, FlowHoldTicks: 1},
		Realms:  multiLaneSpecs()[:1],
		Faults:  traffic.FaultPlan{Restarts: []int{1}},
	})
}
