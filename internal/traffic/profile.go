// Package traffic is the time-driven subscriber load engine: a
// deterministic discrete-event simulation that drives per-subscriber
// flow arrivals through the NAT engine over simulated days. Every world
// the generator builds is a snapshot — mappings are created once and
// port pressure is measured at a single instant — but the paper's §6.2
// analysis is temporal: per-subscriber concurrent port usage sampled
// over a week of flow data (Figure 8), with peaks far above the median.
// This package opens that axis.
//
// Each subscriber draws a flow-rate class (light / median / heavy-hitter)
// whose arrival rate is modulated by a diurnal curve; flows open NAT
// mappings, refresh them every tick while they live (through the NAT's
// O(1) mapping-handle fast path), and then idle out through the expiry
// schedule as the virtual clock advances in fixed ticks. The engine
// follows the simnet clock discipline — virtual time only, advanced tick
// by tick, never read from the wall clock — so a (seed, profile, realm
// set) triple always produces the identical Result, whatever machine or
// goroutine runs it.
//
// The engine scales to million-subscriber populations two ways. Realms
// are embarrassingly parallel: each draws from its own seeded RNG
// stream and accumulates into private histograms, utilization series and
// counters, which Run merges in realm input order — reproducing the
// sequential accumulation order exactly, float additions included — so
// Result is byte-identical at any Config.Workers value. And the per-realm
// hot loop is allocation-lean: flows live in a per-realm arena recycled
// through a freelist, per-subscriber concurrent-port counts are
// maintained incrementally from the NAT's mapping create/expire hooks
// rather than recounted per tick, and steady-state ticks allocate
// nothing.
package traffic

import (
	"fmt"
	"time"
)

// Profile parameterizes the load the engine offers. The zero value
// disables the engine (Ticks == 0); a scenario that wants temporal
// analysis sets Ticks and inherits defaults for everything it leaves
// zero.
type Profile struct {
	// Ticks is the total simulated tick count; 0 disables the engine.
	Ticks int
	// DayTicks is the diurnal period in ticks. The generated worlds are
	// ~3 orders of magnitude smaller than the Internet and their time
	// scale compresses the same way: a "day" of DayTicks ticks at
	// TickStep each is a few simulated hours, which keeps the 10–300 s
	// mapping timeouts churning within a day exactly as real timeouts
	// churn within a real one. Defaults to 288.
	DayTicks int
	// TickStep is the virtual time each tick advances. Defaults to 30 s
	// — under most CGN idle timeouts, so per-tick refreshes genuinely
	// keep mappings alive rather than recreating them.
	TickStep time.Duration
	// DiurnalAmp in [0,1] scales the day curve: arrival rates swing
	// between (1-Amp) at the daily trough and (1+Amp) at the peak.
	DiurnalAmp float64
	// HeavyFrac and LightFrac split subscribers into rate classes:
	// HeavyFrac are heavy hitters, LightFrac are light, the rest run the
	// median rate. HeavyFrac + LightFrac must not exceed 1.
	HeavyFrac float64
	LightFrac float64
	// FlowsPerTick is the mean new-flow arrival rate per tick for a
	// median subscriber at diurnal factor 1. Defaults to 0.6.
	FlowsPerTick float64
	// HeavyMult multiplies the median rate for heavy hitters (light
	// subscribers run at a fixed fifth of the median). Defaults to 10 —
	// the Figure 8 separation of max ≫ 99th percentile ≫ median comes
	// from this tail. Values below 1 are rejected: a "heavy" class
	// slower than the median inverts every percentile the analysis
	// reports.
	HeavyMult float64
	// FlowHoldTicks is the mean flow lifetime in ticks; lifetimes are
	// drawn uniformly from [1, 2·FlowHoldTicks−1], so no flow outlives
	// twice the mean. While a flow lives it refreshes its mapping every
	// tick; afterwards the mapping idles out via the NAT's timeout.
	// Defaults to 3.
	FlowHoldTicks int

	// AttackerFrac in [0,1] turns the leading fraction of each realm's
	// subscribers into malicious port-allocation flooders (the ReDAN
	// mapping-table exhaustion attack): designation is by subscriber
	// index, so it perturbs no random draw, and at 0 the engine is
	// byte-identical to a profile without the field. Attackers replace
	// their legitimate traffic with flood flows and are excluded from
	// the legitimate class statistics; their collateral damage on the
	// rest of the population is what Result.Adversarial measures.
	AttackerFrac float64
	// AttackerFlowsPerTick is the mean flood flows one attacker opens
	// per tick — each on a fresh source port, so each demands a fresh
	// external port, and none is ever refreshed (the flood sustains
	// occupancy by rate x timeout, like the real attack). Not diurnally
	// modulated: bots do not sleep. Defaults to 40 when AttackerFrac is
	// set.
	AttackerFlowsPerTick float64
	// ScannerProbesPerTick is the mean inbound probes per external pool
	// IP per tick from an external scanner sweeping the NAT's port
	// range — the inbound-filtering tickle. 0 disables the scanner.
	ScannerProbesPerTick float64
}

// AttacksEnabled reports whether the profile offers any adversarial
// load (flooders or scanners).
func (p Profile) AttacksEnabled() bool {
	return (p.AttackerFrac > 0 && p.AttackerFlowsPerTick > 0) || p.ScannerProbesPerTick > 0
}

// Enabled reports whether the profile asks for any simulated time.
func (p Profile) Enabled() bool { return p.Ticks > 0 }

// WithDefaults fills unset fields with the documented defaults. A
// disabled profile is returned unchanged.
func (p Profile) WithDefaults() Profile {
	if !p.Enabled() {
		return p
	}
	if p.DayTicks == 0 {
		p.DayTicks = 288
	}
	if p.TickStep == 0 {
		p.TickStep = 30 * time.Second
	}
	if p.FlowsPerTick == 0 {
		p.FlowsPerTick = 0.6
	}
	if p.HeavyMult == 0 {
		p.HeavyMult = 10
	}
	if p.FlowHoldTicks == 0 {
		p.FlowHoldTicks = 3
	}
	if p.AttackerFrac > 0 && p.AttackerFlowsPerTick == 0 {
		p.AttackerFlowsPerTick = 40
	}
	return p
}

// Validate checks the profile's internal consistency. The zero
// (disabled) profile is valid; an enabled one must have sane ticks,
// fractions inside [0,1] and a non-inverted class split.
func (p Profile) Validate() error {
	if p.Ticks < 0 {
		return fmt.Errorf("traffic: negative Ticks %d", p.Ticks)
	}
	if p.DayTicks < 0 {
		return fmt.Errorf("traffic: negative DayTicks %d", p.DayTicks)
	}
	if p.TickStep < 0 {
		return fmt.Errorf("traffic: negative TickStep %v", p.TickStep)
	}
	if p.DiurnalAmp < 0 || p.DiurnalAmp > 1 {
		return fmt.Errorf("traffic: DiurnalAmp = %v outside [0,1]", p.DiurnalAmp)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"HeavyFrac", p.HeavyFrac},
		{"LightFrac", p.LightFrac},
		{"AttackerFrac", p.AttackerFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("traffic: %s = %v outside [0,1]", f.name, f.v)
		}
	}
	if s := p.HeavyFrac + p.LightFrac; s > 1 {
		return fmt.Errorf("traffic: class fractions sum to %v > 1", s)
	}
	if p.FlowsPerTick < 0 {
		return fmt.Errorf("traffic: negative FlowsPerTick %v", p.FlowsPerTick)
	}
	if p.HeavyMult < 0 || (p.HeavyMult > 0 && p.HeavyMult < 1) {
		return fmt.Errorf("traffic: HeavyMult = %v, want 0 (default) or >= 1", p.HeavyMult)
	}
	if p.FlowHoldTicks < 0 {
		return fmt.Errorf("traffic: negative FlowHoldTicks %d", p.FlowHoldTicks)
	}
	if p.AttackerFlowsPerTick < 0 {
		return fmt.Errorf("traffic: negative AttackerFlowsPerTick %v", p.AttackerFlowsPerTick)
	}
	if p.ScannerProbesPerTick < 0 {
		return fmt.Errorf("traffic: negative ScannerProbesPerTick %v", p.ScannerProbesPerTick)
	}
	return nil
}

// Days returns the simulated span in diurnal periods.
func (p Profile) Days() float64 {
	d := p.WithDefaults()
	if d.DayTicks == 0 {
		return 0
	}
	return float64(d.Ticks) / float64(d.DayTicks)
}
