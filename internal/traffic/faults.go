package traffic

import (
	"fmt"
	"math"
	"sort"
)

// FaultPlan is the engine's seeded virtual-time fault schedule: pool-IP
// outages (sharded-engine lanes going dark, their mappings dropped and
// their subscribers re-pinned to survivors by a deterministic failover
// hash) and whole-engine restarts (all mapping state lost; live flows
// re-establish through the refresh fallback). Faults require the sharded
// engine — the lane is the outage's unit — so Run refuses a plan with
// Config.Shards == 0. A zero plan is exactly the pre-fault engine: no
// extra draws, no extra state, byte-identical results.
//
// The schedule is part of the deterministic universe: which lanes an
// outage takes is a pure function of the seed, the realm and the pool
// size, so results stay byte-identical at any Workers × Shards split.
type FaultPlan struct {
	// Outages lists pool-IP outage windows, ascending and
	// non-overlapping by tick.
	Outages []Outage
	// Restarts lists ticks at which the realm's whole NAT engine
	// restarts (applied before the tick runs), strictly ascending. A
	// restart preserves any outage in progress: lanes down stay down.
	Restarts []int
}

// Outage is one pool-outage window.
type Outage struct {
	// Start is the tick the lanes go dark (applied before the tick
	// runs).
	Start int
	// Ticks is the outage duration; the lanes restore before tick
	// Start+Ticks. An end beyond the run's horizon leaves them down for
	// the rest of the run.
	Ticks int
	// LaneFrac is the fraction of the external pool taken down, rounded
	// up to whole lanes and clamped so at least one lane survives (a
	// single-lane pool therefore cannot lose anything — a carrier with
	// its whole pool dark is a disabled carrier, not a degraded one).
	LaneFrac float64
}

// Enabled reports whether the plan schedules any fault.
func (f FaultPlan) Enabled() bool { return len(f.Outages) > 0 || len(f.Restarts) > 0 }

// Validate checks the plan against a run of the given tick count.
func (f FaultPlan) Validate(ticks int) error {
	end := 0
	for i, o := range f.Outages {
		if o.Start < 0 || o.Start >= ticks {
			return fmt.Errorf("fault outage %d: start tick %d outside run of %d ticks", i, o.Start, ticks)
		}
		if o.Ticks < 1 {
			return fmt.Errorf("fault outage %d: duration %d ticks, want >= 1", i, o.Ticks)
		}
		if o.LaneFrac <= 0 || o.LaneFrac > 1 {
			return fmt.Errorf("fault outage %d: lane fraction %v outside (0, 1]", i, o.LaneFrac)
		}
		if o.Start < end {
			return fmt.Errorf("fault outage %d: starts at tick %d inside the previous window (ends %d); outages must be ascending and non-overlapping", i, o.Start, end)
		}
		end = o.Start + o.Ticks
	}
	prev := -1
	for i, rt := range f.Restarts {
		if rt < 0 || rt >= ticks {
			return fmt.Errorf("fault restart %d: tick %d outside run of %d ticks", i, rt, ticks)
		}
		if rt <= prev {
			return fmt.Errorf("fault restart %d: tick %d not strictly ascending", i, rt)
		}
		prev = rt
	}
	return nil
}

// DegradationStats is the E22 dataset: the run's per-tick legitimate
// allocation time series, the flow-disruption count, and how many fault
// transitions applied. Entirely zero (Enabled false) unless the config
// schedules faults.
type DegradationStats struct {
	// Enabled mirrors Config.Faults.Enabled(); when false every other
	// field is exactly zero.
	Enabled bool
	// Attempts[t] / Failures[t] count legitimate allocation attempts
	// (new flows plus refresh-fallback re-establishments) and refusals
	// at tick t, summed over realms — the degradation-and-recovery
	// curve's raw series.
	Attempts, Failures []uint64
	// Disrupted counts live mappings torn down by fault transitions:
	// dropped with their lane, lost to an engine restart, or re-homed
	// when their owner's failover pin moved.
	Disrupted uint64
	// FaultEvents counts applied fault transitions (lane-down, lane-up,
	// restart) summed over realms.
	FaultEvents int
}

// FailRate returns Failures[t] over Attempts[t] (0 when idle).
func (d DegradationStats) FailRate(t int) float64 {
	if t < 0 || t >= len(d.Attempts) || d.Attempts[t] == 0 {
		return 0
	}
	return float64(d.Failures[t]) / float64(d.Attempts[t])
}

// faultMix is the schedule's hash finalizer (SplitMix64's, like
// FastRand's output stage): victim ranking must be a pure function of
// seed, realm and lane, independent of every execution parameter.
func faultMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	return x ^ x>>31
}

// faultSalt derives the per-realm schedule salt from the run seed.
func faultSalt(seed int64, realmIdx int) uint64 {
	return faultMix(uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(realmIdx+1)*0xD1B54A32D192ED03)
}

// victims picks the outage's lane set: the top ceil(LaneFrac·lanes)
// lanes ranked by a salted hash — deterministic, spread across the pool
// rather than always the low lane indexes — clamped so at least one
// lane survives. Returned ascending.
func (o Outage) victims(lanes int, salt uint64) []int {
	if lanes <= 1 {
		return nil
	}
	k := int(math.Ceil(o.LaneFrac * float64(lanes)))
	if k > lanes-1 {
		k = lanes - 1
	}
	if k < 1 {
		k = 1
	}
	type scored struct {
		score uint64
		lane  int
	}
	sc := make([]scored, lanes)
	for l := range sc {
		sc[l] = scored{faultMix(salt ^ uint64(l+1)*0x9E3779B97F4A7C15), l}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return sc[i].lane < sc[j].lane
	})
	v := make([]int, k)
	for i := 0; i < k; i++ {
		v[i] = sc[i].lane
	}
	sort.Ints(v)
	return v
}

// faultBoundary is the set of fault transitions applied before one tick
// runs, in the documented order: restorations, then new outages, then
// the restart, then the re-pin/repartition pass.
type faultBoundary struct {
	ups, downs []int
	restart    bool
}

// boundaries compiles the plan into per-tick transitions for a pool of
// the given lane count. A restoration landing past the horizon is
// simply never reached.
func (f FaultPlan) boundaries(lanes int, salt uint64) map[int]*faultBoundary {
	b := make(map[int]*faultBoundary)
	at := func(t int) *faultBoundary {
		fb := b[t]
		if fb == nil {
			fb = &faultBoundary{}
			b[t] = fb
		}
		return fb
	}
	for oi, o := range f.Outages {
		v := o.victims(lanes, salt^faultMix(uint64(oi+1)*0xBF58476D1CE4E5B9))
		if len(v) == 0 {
			continue
		}
		at(o.Start).downs = append(at(o.Start).downs, v...)
		at(o.Start + o.Ticks).ups = append(at(o.Start+o.Ticks).ups, v...)
	}
	for _, rt := range f.Restarts {
		at(rt).restart = true
	}
	return b
}

// Rebucket moves one class-c subscriber from bucket 0 to bucket v,
// growing as far as needed — unlike Move's single doubling (sized for
// hooks' ±1 steps), the fault-boundary census rebuild jumps a
// subscriber straight to its live count.
func (lc *LiveCounts) Rebucket(c Class, v int32) {
	s := lc.cnt[c]
	s[0]--
	for int(v) >= len(s) {
		grown := make([]uint64, 2*len(s))
		copy(grown, s)
		lc.cnt[c] = grown
		s = grown
	}
	s[v]++
}
