package traffic

import (
	"math/rand"
	"testing"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
)

// TestEngineInvariantsRandomized is the property test for the traffic
// engine: randomized profiles and NAT configurations are driven through
// the engine while an observer recounts the NAT's state from scratch —
// the naive reference model, a full-table walk — and diffs it against
// the engine's incremental counters at every tick. The invariants:
//
//  1. Free-port conservation: every live mapping holds exactly one
//     external port, so the port space's in-use counter equals the
//     mapping-table size, and the peak never exceeds capacity.
//  2. No mapping survives past LastActive+timeout: after the tick's
//     Sweep, every mapping's deadline is still in the future.
//  3. The per-subscriber quota is never exceeded mid-run, and the
//     incremental per-subscriber session counters match a recount.
func TestEngineInvariantsRandomized(t *testing.T) {
	metaRng := rand.New(rand.NewSource(0xC61))
	allocs := []nat.PortAlloc{nat.Preservation, nat.Sequential, nat.Random, nat.RandomChunk}
	types := []nat.MappingType{nat.Symmetric, nat.PortRestricted, nat.AddressRestricted, nat.FullCone}

	for trial := 0; trial < 12; trial++ {
		profile := Profile{
			Ticks:         24 + metaRng.Intn(40),
			DayTicks:      16 + metaRng.Intn(32),
			TickStep:      time.Duration(10+metaRng.Intn(50)) * time.Second,
			DiurnalAmp:    metaRng.Float64(),
			HeavyFrac:     0.1 * metaRng.Float64(),
			LightFrac:     0.5 * metaRng.Float64(),
			FlowsPerTick:  0.2 + metaRng.Float64(),
			HeavyMult:     1 + 12*metaRng.Float64(),
			FlowHoldTicks: 1 + metaRng.Intn(5),
		}
		if err := profile.Validate(); err != nil {
			t.Fatalf("trial %d: generated profile invalid: %v", trial, err)
		}
		quota := 0
		if metaRng.Intn(2) == 0 {
			quota = 4 + metaRng.Intn(12)
		}
		cfg := nat.Config{
			Type:                   types[metaRng.Intn(len(types))],
			PortAlloc:              allocs[metaRng.Intn(len(allocs))],
			ChunkSize:              512,
			Pooling:                nat.Paired,
			ExternalIPs:            []netaddr.Addr{netaddr.MustParseAddr("198.51.100.7")},
			UDPTimeout:             time.Duration(15+metaRng.Intn(90)) * time.Second,
			PortQuotaPerSubscriber: quota,
			PortLo:                 1024,
			PortHi:                 uint16(2047 + metaRng.Intn(8192)),
			Seed:                   metaRng.Int63(),
		}
		spec := RealmSpec{ID: "prop", NAT: cfg, Subscribers: 8 + metaRng.Intn(24)}

		checked := 0
		observer := func(realm RealmSpec, tick int, now time.Time, n nat.View) {
			checked++
			// Naive reference model: recount everything from a full
			// mapping-table walk.
			perSub := map[netaddr.Addr]int{}
			total := 0
			timeout := n.Config().UDPTimeout
			n.ForEachMapping(func(m *nat.Mapping) {
				total++
				perSub[m.Int.Addr]++
				if deadline := m.LastActiveNano() + int64(timeout); now.UnixNano() > deadline {
					t.Fatalf("trial %d tick %d: mapping %v->%v survived past LastActive+timeout (deadline %d, now %v)",
						trial, tick, m.Int, m.Ext, deadline, now)
				}
			})

			st := n.PortStats()
			if total != n.NumMappings() {
				t.Fatalf("trial %d tick %d: table walk found %d mappings, NumMappings says %d",
					trial, tick, total, n.NumMappings())
			}
			if st.InUse != total {
				t.Fatalf("trial %d tick %d: port space holds %d ports but table holds %d mappings (free-port conservation)",
					trial, tick, st.InUse, total)
			}
			if st.Peak > st.Capacity {
				t.Fatalf("trial %d tick %d: peak %d exceeds capacity %d", trial, tick, st.Peak, st.Capacity)
			}

			recount := 0
			for addr, want := range perSub {
				recount += want
				if got := n.Sessions(addr); got != want {
					t.Fatalf("trial %d tick %d: Sessions(%v) = %d, recount says %d",
						trial, tick, addr, got, want)
				}
				if q := realm.NAT.PortQuotaPerSubscriber; q > 0 && want > q {
					t.Fatalf("trial %d tick %d: subscriber %v holds %d ports, quota %d",
						trial, tick, addr, want, q)
				}
			}
			if recount != total {
				t.Fatalf("trial %d tick %d: per-subscriber recount %d != total %d", trial, tick, recount, total)
			}
		}

		res := Run(Config{Seed: metaRng.Int63(), Profile: profile, Realms: []RealmSpec{spec}, Observer: observer})
		if checked != profile.Ticks {
			t.Fatalf("trial %d: observer ran %d times, want %d", trial, checked, profile.Ticks)
		}
		if res.Created == 0 {
			t.Fatalf("trial %d: run created no mappings", trial)
		}
		if quota > 0 && res.All.Max > quota {
			t.Fatalf("trial %d: sampled concurrent ports %d exceed quota %d", trial, res.All.Max, quota)
		}
	}
}
