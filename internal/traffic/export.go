package traffic

// Exported state accessors for the engine's reusable building blocks.
// The fleet engine (internal/fleet) drives months of virtual time over
// an evolving carrier population on top of this package's primitives —
// Hist, LiveCounts, FastRand, the diurnal curve and the class rates —
// and checkpoints mid-run, which needs histogram and RNG state to be
// serializable. Everything here is a plain copy in or out; none of it
// is on a hot path.

// Count returns the number of samples recorded.
func (h *Hist) Count() uint64 { return h.n }

// State returns a copy of the histogram's dense bucket counts (index =
// sample value) and its sample count, trimmed of the trailing zero
// buckets growth leaves behind.
func (h *Hist) State() ([]uint64, uint64) {
	top := len(h.counts)
	for top > 0 && h.counts[top-1] == 0 {
		top--
	}
	out := make([]uint64, top)
	copy(out, h.counts)
	return out, h.n
}

// HistFromState rebuilds a histogram from State output. It is the
// identity round-trip: quantiles, max and future merges behave exactly
// as on the original.
func HistFromState(counts []uint64, n uint64) Hist {
	h := Hist{n: n}
	if len(counts) > 0 {
		h.counts = make([]uint64, len(counts))
		copy(h.counts, counts)
	}
	return h
}

// NewFastRand returns a fast draw stream seeded at s. FastRand's whole
// state is its uint64 value, so serializing one is a cast: save
// uint64(r), restore FastRand(saved).
func NewFastRand(s uint64) FastRand { return FastRand(s) }
