// Package btsim drives a population of BitTorrent DHT clients across the
// simulated Internet: bootstrap, tracker-style swarm locality, LAN peer
// discovery, and background chatter. Its job is to reproduce — at packet
// level, through the real NAT devices on path — the conditions the
// paper's crawler exploits (§4.1):
//
//   - peers behind the same home NAT learn each other's 192.168.x
//     endpoints via local (multicast) peer discovery;
//   - peers behind the same CGN learn each other's internal endpoints
//     when the CGN hairpins with the internal source left in place;
//   - peers validate contacts with their own pings before propagating
//     them, so only genuinely reachable internal endpoints spread;
//   - peers that have contacted the crawler become crawlable through
//     their own NAT mappings.
package btsim

import (
	"math/rand"
	"sort"

	"cgn/internal/dht"
	"cgn/internal/krpc"
	"cgn/internal/netaddr"
	"cgn/internal/simnet"
)

// DHTPort is the conventional BitTorrent port peers bind.
const DHTPort = 6881

// Peer is one simulated BitTorrent client.
type Peer struct {
	Host *simnet.Host
	Sock *simnet.Socket
	Node *dht.Node
	// ASN is the peer's network, the unit of swarm locality.
	ASN uint32
	// LanID groups peers sharing a multicast domain (same home LAN);
	// empty for peers without LAN neighbors.
	LanID string
	// Torrents are the swarms this peer participates in (BEP-5
	// get_peers/announce_peer discovery).
	Torrents []krpc.NodeID
}

// LocalEndpoint returns the peer's own (internal) view of its endpoint.
func (p *Peer) LocalEndpoint() netaddr.Endpoint { return p.Sock.LocalEndpoint() }

// Swarm is the full client population plus supporting infrastructure.
type Swarm struct {
	net *simnet.Network

	// BootstrapEP is the public bootstrap node every client knows.
	BootstrapEP netaddr.Endpoint
	bootstrap   *dht.Node

	// tracker records the external endpoint each peer announces from,
	// which is how swarm locality distributes same-ISP contacts.
	trackerSock *simnet.Socket
	announced   map[krpc.NodeID]netaddr.Endpoint

	Peers []*Peer
	rng   *rand.Rand
}

// NewSwarm deploys the bootstrap node and tracker on the public realm.
func NewSwarm(n *simnet.Network, bootstrapAddr, trackerAddr netaddr.Addr, seed int64) *Swarm {
	rng := rand.New(rand.NewSource(seed))
	s := &Swarm{
		net:       n,
		announced: make(map[krpc.NodeID]netaddr.Endpoint),
		rng:       rng,
	}
	bootHost := n.NewHost("dht-bootstrap", n.Public(), bootstrapAddr, 1, rng)
	bootSock := bootHost.Open(netaddr.UDP, DHTPort)
	var bootID krpc.NodeID
	rng.Read(bootID[:])
	s.bootstrap = dht.NewNode(dht.Config{ID: bootID, Validate: true, Seed: rng.Int63()},
		sockSender{bootSock})
	bootSock.OnRecv(s.bootstrap.HandlePacket)
	s.BootstrapEP = bootSock.LocalEndpoint()

	trackHost := n.NewHost("tracker", n.Public(), trackerAddr, 1, rng)
	s.trackerSock = trackHost.Open(netaddr.UDP, DHTPort)
	s.trackerSock.OnRecv(func(from netaddr.Endpoint, payload []byte) {
		// Any well-formed ping doubles as a tracker announce: the tracker
		// records the peer's external endpoint and confirms.
		m, err := krpc.Parse(payload)
		if err != nil || m.Kind != krpc.Query {
			return
		}
		s.announced[m.ID] = from
		s.trackerSock.Send(from, krpc.EncodePingResponse(m.TID, m.ID))
	})
	return s
}

type sockSender struct{ sock *simnet.Socket }

func (ss sockSender) Send(dst netaddr.Endpoint, payload []byte) { ss.sock.Send(dst, payload) }

// TrackerEP returns the tracker's endpoint.
func (s *Swarm) TrackerEP() netaddr.Endpoint { return s.trackerSock.LocalEndpoint() }

// AddPeer creates a DHT client on host. validate selects the BEP-5
// validation discipline (the paper measured ~98.7% compliance).
func (s *Swarm) AddPeer(host *simnet.Host, asn uint32, lanID string, validate bool) *Peer {
	sock := host.Open(netaddr.UDP, DHTPort)
	var id krpc.NodeID
	s.rng.Read(id[:])
	node := dht.NewNode(dht.Config{ID: id, Validate: validate, Seed: s.rng.Int63()},
		sockSender{sock})
	sock.OnRecv(node.HandlePacket)
	p := &Peer{Host: host, Sock: sock, Node: node, ASN: asn, LanID: lanID}
	s.Peers = append(s.Peers, p)
	return p
}

// Bootstrap connects every peer to the bootstrap node and announces it to
// the tracker, opening the NAT mappings that make peers reachable.
func (s *Swarm) Bootstrap() {
	for _, p := range s.Peers {
		p.Node.Ping(s.BootstrapEP)
		// Tracker announce: a ping from the DHT socket.
		p.Sock.Send(s.TrackerEP(), krpc.EncodePing([]byte{0xfe, 0xff}, p.Node.ID()))
	}
}

// ExternalEndpoint returns the tracker-observed endpoint of a peer (its
// post-translation address), if it announced.
func (s *Swarm) ExternalEndpoint(p *Peer) (netaddr.Endpoint, bool) {
	ep, ok := s.announced[p.Node.ID()]
	return ep, ok
}

// SeedLANs performs local peer discovery: peers sharing a LanID learn
// each other's internal endpoints directly (multicast), then validate
// them with real pings.
func (s *Swarm) SeedLANs() {
	byLAN := make(map[string][]*Peer)
	for _, p := range s.Peers {
		if p.LanID != "" {
			byLAN[p.LanID] = append(byLAN[p.LanID], p)
		}
	}
	// Iterate LANs in sorted order: discovery order drives packet order,
	// which drives NAT port assignment — map order would make two runs of
	// the same seed diverge.
	lans := make([]string, 0, len(byLAN))
	for id := range byLAN {
		lans = append(lans, id)
	}
	sort.Strings(lans)
	for _, id := range lans {
		peers := byLAN[id]
		for _, a := range peers {
			for _, b := range peers {
				if a != b {
					a.Node.AddCandidate(b.LocalEndpoint())
				}
			}
		}
	}
}

// peersByASN groups peers by AS and returns the ASNs sorted. Callers
// consume the swarm RNG per peer, so iteration order must not depend on
// map order or same-seed runs would diverge.
func (s *Swarm) peersByASN() (map[uint32][]*Peer, []uint32) {
	byASN := make(map[uint32][]*Peer)
	for _, p := range s.Peers {
		byASN[p.ASN] = append(byASN[p.ASN], p)
	}
	asns := make([]uint32, 0, len(byASN))
	for asn := range byASN {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	return byASN, asns
}

// SeedLocality hands each peer up to k tracker-learned external endpoints
// of same-AS peers — the swarm-locality effect of sharing torrents with
// nearby peers. Contacts still undergo validation through the real
// network: behind a hairpinning CGN the validation happens via the
// internal path, and the observed (internal) endpoint is what spreads.
func (s *Swarm) SeedLocality(k int) {
	byASN, asns := s.peersByASN()
	for _, asn := range asns {
		peers := byASN[asn]
		if len(peers) < 2 {
			continue
		}
		for _, p := range peers {
			for i := 0; i < k; i++ {
				other := peers[s.rng.Intn(len(peers))]
				if other == p {
					continue
				}
				if ep, ok := s.ExternalEndpoint(other); ok {
					p.Node.AddCandidate(ep)
				}
			}
		}
	}
}

// ChatterConfig tunes background DHT activity.
type ChatterConfig struct {
	// Rounds of chatter to run.
	Rounds int
	// LookupProb is the per-round probability a peer performs a random
	// lookup.
	LookupProb float64
	// CrawlerEP, when set, is pinged by peers with CrawlerPingProb per
	// round — organic discovery of a long-running, heavily-querying
	// crawler, which opens the peers' NAT mappings toward it.
	CrawlerEP       netaddr.Endpoint
	CrawlerPingProb float64
}

// Chatter runs background DHT traffic.
func (s *Swarm) Chatter(cfg ChatterConfig) {
	for round := 0; round < cfg.Rounds; round++ {
		for _, p := range s.Peers {
			if s.rng.Float64() < cfg.LookupProb {
				p.Node.LookupRandom()
			}
			if !cfg.CrawlerEP.IsZero() && s.rng.Float64() < cfg.CrawlerPingProb {
				p.Node.Ping(cfg.CrawlerEP)
			}
		}
		for _, p := range s.Peers {
			p.Node.PrunePending()
		}
	}
}

// AssignTorrents hands out swarm memberships: localPerAS torrents per AS
// whose members are that AS's peers (regional content draws regional
// swarms — the locality that makes same-CGN peers meet), plus
// globalCount Internet-wide torrents joined with globalProb. Info-hashes
// derive deterministically from the AS number and torrent index.
func (s *Swarm) AssignTorrents(localPerAS, globalCount int, globalProb float64) {
	globals := make([]krpc.NodeID, globalCount)
	for i := range globals {
		globals[i] = torrentID(0, i)
	}
	byASN, asns := s.peersByASN()
	for _, asn := range asns {
		peers := byASN[asn]
		for _, p := range peers {
			p.Torrents = p.Torrents[:0]
			if localPerAS > 0 {
				p.Torrents = append(p.Torrents, torrentID(asn, s.rng.Intn(localPerAS)))
			}
			for _, g := range globals {
				if s.rng.Float64() < globalProb {
					p.Torrents = append(p.Torrents, g)
				}
			}
		}
	}
}

// torrentID derives a deterministic info-hash for (asn, idx); asn 0 is
// the global namespace.
func torrentID(asn uint32, idx int) krpc.NodeID {
	var id krpc.NodeID
	id[0] = 0xbe // fixed prefix marks synthetic torrent identities
	id[1] = byte(asn >> 24)
	id[2] = byte(asn >> 16)
	id[3] = byte(asn >> 8)
	id[4] = byte(asn)
	id[5] = byte(idx >> 8)
	id[6] = byte(idx)
	for i := 7; i < len(id); i++ {
		id[i] = byte(i) * id[4]
	}
	return id
}

// AnnounceRound drives one round of swarm participation: every peer
// announces to each of its torrents and treats discovered members as
// contact candidates, exactly as BitTorrent clients do. Discovered
// endpoints flow through the real network: external ones hairpin at the
// CGN, internal ones validate only inside the same realm.
func (s *Swarm) AnnounceRound() {
	for _, p := range s.Peers {
		for _, ih := range p.Torrents {
			for _, member := range p.Node.Announce(ih) {
				if member != p.LocalEndpoint() {
					p.Node.AddCandidate(member)
				}
			}
		}
	}
	for _, p := range s.Peers {
		p.Node.PrunePending()
	}
}

// Mingle interleaves swarm participation, locality seeding and chatter.
// Two passes matter for restricted NATs: the first pass's hairpin pings
// are filtered until both sides have contacted each other's external
// endpoints; the second pass then succeeds and spreads internal
// endpoints.
func (s *Swarm) Mingle(localityK, rounds int, chatter ChatterConfig) {
	chatter.Rounds = 1
	for i := 0; i < rounds; i++ {
		s.AnnounceRound()
		s.SeedLocality(localityK)
		s.Chatter(chatter)
	}
}

// InternalContacts counts contacts with reserved addresses across all
// peers' routing tables — the leakage potential the crawler can harvest.
func (s *Swarm) InternalContacts() int {
	n := 0
	for _, p := range s.Peers {
		for _, c := range p.Node.Contacts() {
			if netaddr.IsReserved(c.EP.Addr) {
				n++
			}
		}
	}
	return n
}
