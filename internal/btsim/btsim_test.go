package btsim

import (
	"math/rand"
	"testing"
	"time"

	"cgn/internal/crawler"
	"cgn/internal/nat"
	"cgn/internal/netaddr"
	"cgn/internal/routing"
	"cgn/internal/simnet"
)

func addr(s string) netaddr.Addr { return netaddr.MustParseAddr(s) }

// world wires a miniature Internet with ground truth:
//
//	AS 65001: CGN ISP (full cone, hairpin preserve-source), bare peers
//	AS 65002: CGN ISP (port restricted, hairpin preserve-source)
//	AS 65003: non-CGN ISP, homes with two peers per LAN behind CPEs
type world struct {
	net    *simnet.Network
	swarm  *Swarm
	global *routing.Global
	crawlH *simnet.Host
	cr     *crawler.Crawler
}

func pool(prefix string, n int) []netaddr.Addr {
	base := netaddr.MustParseAddr(prefix)
	out := make([]netaddr.Addr, n)
	for i := range out {
		out[i] = base + netaddr.Addr(i)
	}
	return out
}

func cgnConfig(typ nat.MappingType, ips []netaddr.Addr, seed int64) nat.Config {
	return nat.Config{
		Type:             typ,
		PortAlloc:        nat.Random,
		Pooling:          nat.Paired,
		ExternalIPs:      ips,
		UDPTimeout:       2 * time.Minute,
		RefreshOnInbound: true,
		Hairpin:          nat.HairpinPreserveSource,
		Seed:             seed,
	}
}

func buildWorld(t *testing.T) *world {
	t.Helper()
	w := &world{net: simnet.New()}
	rng := rand.New(rand.NewSource(21))
	pub := w.net.Public()
	w.global = w.net.Global()

	w.swarm = NewSwarm(w.net, addr("203.0.113.1"), addr("203.0.113.2"), 42)
	w.crawlH = w.net.NewHost("crawler", pub, addr("203.0.113.3"), 1, rng)

	// AS 65001: full-cone CGN, 14 bare subscribers on 100.64/10.
	w.global.Announce(netaddr.MustParsePrefix("198.51.100.0/28"), 65001)
	isp1 := w.net.NewRealm("as65001", 1)
	w.net.AttachNAT("cgn1", isp1, pub, cgnConfig(nat.FullCone, pool("198.51.100.1", 6), 1), 2, 1)
	for i := 0; i < 14; i++ {
		h := w.net.NewHost("p1", isp1, addr("100.64.0.0")+netaddr.Addr(i+10), 0, rng)
		w.swarm.AddPeer(h, 65001, "", true)
	}

	// AS 65002: port-restricted CGN, 14 bare subscribers on 10/8.
	w.global.Announce(netaddr.MustParsePrefix("198.51.101.0/28"), 65002)
	isp2 := w.net.NewRealm("as65002", 1)
	w.net.AttachNAT("cgn2", isp2, pub, cgnConfig(nat.PortRestricted, pool("198.51.101.1", 6), 2), 2, 1)
	for i := 0; i < 14; i++ {
		h := w.net.NewHost("p2", isp2, addr("10.0.0.0")+netaddr.Addr(i+10), 0, rng)
		w.swarm.AddPeer(h, 65002, "", true)
	}

	// AS 65003: no CGN; 5 homes, each with a CPE holding a public IP and
	// two peers on the LAN.
	w.global.Announce(netaddr.MustParsePrefix("198.51.102.0/24"), 65003)
	for home := 0; home < 5; home++ {
		lan := w.net.NewRealm("lan65003", 0)
		wan := addr("198.51.102.10") + netaddr.Addr(home)
		w.net.AttachNAT("cpe", lan, pub, nat.Config{
			Type:             nat.PortRestricted,
			PortAlloc:        nat.Preservation,
			Pooling:          nat.Paired,
			ExternalIPs:      []netaddr.Addr{wan},
			UDPTimeout:       2 * time.Minute,
			RefreshOnInbound: true,
			Hairpin:          nat.HairpinTranslate,
			Seed:             int64(100 + home),
		}, 0, 2)
		lanID := "home-" + wan.String()
		for d := 0; d < 2; d++ {
			h := w.net.NewHost("p3", lan, addr("192.168.1.2")+netaddr.Addr(d), 0, rng)
			w.swarm.AddPeer(h, 65003, lanID, true)
		}
	}
	return w
}

func (w *world) prepare() {
	w.swarm.Bootstrap()
	w.swarm.SeedLANs()
	cr := crawler.New(w.crawlH, w.global, crawler.DefaultConfig())
	w.swarm.Mingle(4, 3, ChatterConfig{
		LookupProb:      0.8,
		CrawlerEP:       cr.Endpoint(),
		CrawlerPingProb: 0.9,
	})
	w.cr = cr
}

func TestSwarmProducesInternalContacts(t *testing.T) {
	w := buildWorld(t)
	w.prepare()
	if got := w.swarm.InternalContacts(); got < 10 {
		t.Errorf("internal contacts = %d, want a healthy population", got)
	}
}

func TestCrawlHarvestsLeaks(t *testing.T) {
	w := buildWorld(t)
	w.prepare()
	cr := w.cr
	cr.Seed(w.swarm.BootstrapEP)
	ds := cr.Run()

	if len(ds.Queried) < 10 {
		t.Fatalf("queried %d peers, want most of the population", len(ds.Queried))
	}
	if len(ds.Learned) <= len(ds.Queried) {
		t.Errorf("learned %d <= queried %d", len(ds.Learned), len(ds.Queried))
	}
	if len(ds.Leaks) == 0 {
		t.Fatal("no internal peers leaked")
	}

	// Group leaks per AS: both CGN ASes must show clustered leakage
	// (multiple leaker IPs sharing internal peers), the home-NAT AS only
	// isolated per-household leakage.
	type asStat struct {
		leakerIPs    map[netaddr.Addr]bool
		internals    map[crawler.PeerKey]map[netaddr.Addr]bool
		internalAddr map[netaddr.Addr]bool
	}
	stats := map[uint32]*asStat{}
	for _, l := range ds.Leaks {
		st := stats[l.LeakerASN]
		if st == nil {
			st = &asStat{
				leakerIPs:    map[netaddr.Addr]bool{},
				internals:    map[crawler.PeerKey]map[netaddr.Addr]bool{},
				internalAddr: map[netaddr.Addr]bool{},
			}
			stats[l.LeakerASN] = st
		}
		st.leakerIPs[l.Leaker.EP.Addr] = true
		if st.internals[l.Internal] == nil {
			st.internals[l.Internal] = map[netaddr.Addr]bool{}
		}
		st.internals[l.Internal][l.Leaker.EP.Addr] = true
		st.internalAddr[l.Internal.EP.Addr] = true
	}

	for _, asn := range []uint32{65001, 65002} {
		st := stats[asn]
		if st == nil {
			t.Fatalf("AS%d: no leaks harvested", asn)
		}
		if len(st.leakerIPs) < 2 {
			t.Errorf("AS%d: leaks from %d external IPs, want pooling evidence", asn, len(st.leakerIPs))
		}
		shared := 0
		for _, leakers := range st.internals {
			if len(leakers) >= 2 {
				shared++
			}
		}
		if shared == 0 {
			t.Errorf("AS%d: no internal peer leaked by multiple external IPs", asn)
		}
	}
	// Range sanity: AS 65001 leaks 100X space, AS 65002 leaks 10X space.
	for a := range stats[65001].internalAddr {
		if netaddr.ClassifyRange(a) != netaddr.Range100 {
			t.Errorf("AS65001 leaked %v outside 100X", a)
		}
	}
	for a := range stats[65002].internalAddr {
		if netaddr.ClassifyRange(a) != netaddr.Range10 {
			t.Errorf("AS65002 leaked %v outside 10X", a)
		}
	}

	// Home-NAT AS: every internal peer is leaked by exactly one external
	// IP (its own household), and the addresses are 192X.
	if st := stats[65003]; st != nil {
		for key, leakers := range st.internals {
			if len(leakers) != 1 {
				t.Errorf("AS65003: internal peer %v leaked by %d IPs, want 1", key.EP, len(leakers))
			}
			if netaddr.ClassifyRange(key.EP.Addr) != netaddr.Range192 {
				t.Errorf("AS65003 leaked %v outside 192X", key.EP)
			}
		}
	}
}

func TestPingValidationCounts(t *testing.T) {
	w := buildWorld(t)
	w.prepare()
	cr := w.cr
	cr.Seed(w.swarm.BootstrapEP)
	ds := cr.Run()
	if len(ds.PingResponded) == 0 {
		t.Fatal("no peers responded to bt_ping")
	}
	if len(ds.PingResponded) > len(ds.Learned) {
		t.Error("responded set cannot exceed learned set")
	}
}

func TestTrackerRecordsExternalEndpoints(t *testing.T) {
	w := buildWorld(t)
	w.swarm.Bootstrap()
	// Every peer should have announced; CGN subscribers announce their
	// pool addresses.
	for _, p := range w.swarm.Peers {
		ep, ok := w.swarm.ExternalEndpoint(p)
		if !ok {
			t.Fatalf("peer %v did not announce", p.LocalEndpoint())
		}
		if netaddr.IsReserved(ep.Addr) {
			t.Errorf("tracker saw reserved address %v", ep)
		}
	}
}

func TestTorrentSwarmDiscovery(t *testing.T) {
	w := buildWorld(t)
	w.swarm.Bootstrap()
	w.swarm.AssignTorrents(1, 0, 0)
	for _, p := range w.swarm.Peers {
		if len(p.Torrents) != 1 {
			t.Fatalf("peer has %d torrents, want 1", len(p.Torrents))
		}
	}
	before := 0
	for _, p := range w.swarm.Peers {
		before += p.Node.NumContacts()
	}
	// Two announce rounds: the first registers members, the second
	// discovers them.
	w.swarm.AnnounceRound()
	w.swarm.AnnounceRound()
	after := 0
	for _, p := range w.swarm.Peers {
		after += p.Node.NumContacts()
	}
	if after <= before {
		t.Errorf("announce rounds grew no contacts: %d -> %d", before, after)
	}
	// Same-AS peers share local torrents, so some bootstrap-stored swarm
	// membership must exist somewhere in the population.
	members := 0
	for _, p := range w.swarm.Peers {
		for _, ih := range p.Torrents {
			members += len(p.Node.SwarmPeers(ih))
		}
	}
	if members == 0 {
		t.Error("no swarm membership stored anywhere")
	}
}

func TestTorrentIDDeterministic(t *testing.T) {
	if torrentID(65001, 1) != torrentID(65001, 1) {
		t.Error("torrent IDs must be deterministic")
	}
	if torrentID(65001, 1) == torrentID(65001, 2) || torrentID(65001, 1) == torrentID(65002, 1) {
		t.Error("distinct (asn, idx) must give distinct IDs")
	}
}

func TestNonValidatingPeer(t *testing.T) {
	// A non-validating peer inserts unvalidated contacts; used by the A02
	// ablation. Here just ensure the knob plumbs through.
	w := buildWorld(t)
	rng := rand.New(rand.NewSource(77))
	h := w.net.NewHost("sloppy", w.net.Public(), addr("203.0.113.77"), 0, rng)
	p := w.swarm.AddPeer(h, 65099, "", false)
	w.swarm.Bootstrap()
	if p.Node.NumContacts() == 0 {
		t.Error("sloppy peer should at least know the bootstrap node")
	}
}
