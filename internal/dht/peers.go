package dht

import (
	"crypto/sha1"
	"encoding/binary"

	"cgn/internal/krpc"
	"cgn/internal/netaddr"
)

// peerStore holds announced swarm membership: info-hash -> endpoints.
// Entries store the endpoint as observed (post-translation on the path to
// this node), which is how swarm membership inside a private realm
// naturally records internal addresses.
type peerStore struct {
	byHash map[krpc.NodeID]map[netaddr.Endpoint]bool
	// maxPerHash bounds each swarm's stored membership.
	maxPerHash int
}

func newPeerStore(maxPerHash int) *peerStore {
	return &peerStore{
		byHash:     make(map[krpc.NodeID]map[netaddr.Endpoint]bool),
		maxPerHash: maxPerHash,
	}
}

func (s *peerStore) add(infoHash krpc.NodeID, ep netaddr.Endpoint) {
	set := s.byHash[infoHash]
	if set == nil {
		set = make(map[netaddr.Endpoint]bool)
		s.byHash[infoHash] = set
	}
	if len(set) >= s.maxPerHash && !set[ep] {
		return
	}
	set[ep] = true
}

func (s *peerStore) get(infoHash krpc.NodeID, limit int) []netaddr.Endpoint {
	set := s.byHash[infoHash]
	if len(set) == 0 {
		return nil
	}
	out := make([]netaddr.Endpoint, 0, len(set))
	for ep := range set {
		out = append(out, ep)
	}
	// Deterministic order for reproducible simulations.
	sortEndpoints(out)
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

func sortEndpoints(eps []netaddr.Endpoint) {
	for i := 1; i < len(eps); i++ {
		for j := i; j > 0 && less(eps[j], eps[j-1]); j-- {
			eps[j], eps[j-1] = eps[j-1], eps[j]
		}
	}
}

func less(a, b netaddr.Endpoint) bool {
	if a.Addr != b.Addr {
		return a.Addr < b.Addr
	}
	return a.Port < b.Port
}

// token derives the write token a node hands out to ep: announce_peer
// must echo a token recently issued to the same endpoint, which proves
// the announcer can receive at the address it claims (BEP-5's anti-
// spoofing measure).
func (n *Node) token(ep netaddr.Endpoint) []byte {
	var buf [14]byte
	binary.BigEndian.PutUint32(buf[0:4], uint32(ep.Addr))
	binary.BigEndian.PutUint16(buf[4:6], ep.Port)
	binary.BigEndian.PutUint64(buf[6:14], n.tokenSecret)
	sum := sha1.Sum(buf[:])
	return sum[:8]
}

func (n *Node) validToken(ep netaddr.Endpoint, token []byte) bool {
	want := n.token(ep)
	if len(token) != len(want) {
		return false
	}
	ok := byte(0)
	for i := range want {
		ok |= token[i] ^ want[i]
	}
	return ok == 0
}

// handleGetPeers answers a get_peers query: stored peers when the swarm
// is known, closest contacts otherwise, always with a write token.
func (n *Node) handleGetPeers(from netaddr.Endpoint, m *krpc.Message) {
	peers := n.peers.get(m.Target, K)
	var nodes []krpc.NodeInfo
	if len(peers) == 0 {
		nodes = n.table.closest(m.Target, K)
	}
	n.send.Send(from, krpc.EncodeGetPeersResponse(m.TID, n.cfg.ID, n.token(from), peers, nodes))
}

// handleAnnounce stores an announcing peer. The stored endpoint is the
// observed source address with either the announced port or, for implied-
// port announces (the NAT-friendly mode), the observed source port.
func (n *Node) handleAnnounce(from netaddr.Endpoint, m *krpc.Message) {
	if !n.validToken(from, m.Token) {
		n.send.Send(from, krpc.EncodeError(m.TID, 203, "Bad token"))
		return
	}
	ep := netaddr.EndpointOf(from.Addr, m.Port)
	if m.ImpliedPort {
		ep.Port = from.Port
	}
	n.peers.add(m.Target, ep)
	n.send.Send(from, krpc.EncodePingResponse(m.TID, n.cfg.ID))
}

// SwarmPeers exposes this node's stored membership for an info-hash.
func (n *Node) SwarmPeers(infoHash krpc.NodeID) []netaddr.Endpoint {
	return n.peers.get(infoHash, 1<<30)
}

// GetPeersResult accumulates one swarm lookup's findings.
type GetPeersResult struct {
	// Peers are swarm member endpoints gathered from values responses.
	Peers []netaddr.Endpoint
	// Tokens maps each responding node's endpoint to the write token it
	// issued, as needed for announce_peer.
	Tokens map[netaddr.Endpoint][]byte
}

// GetPeers performs one round of a swarm lookup: it queries the K known
// contacts closest to infoHash and collects peers and write tokens from
// their responses. Like Lookup, one call is one iteration.
func (n *Node) GetPeers(infoHash krpc.NodeID) *GetPeersResult {
	res := &GetPeersResult{Tokens: make(map[netaddr.Endpoint][]byte)}
	n.currentGetPeers = res
	defer func() { n.currentGetPeers = nil }()
	for _, c := range n.table.closest(infoHash, K) {
		tid := n.newTID()
		if !n.track(tid, pendingOp{kind: pendingGetPeers, ep: c.EP}) {
			break
		}
		n.send.Send(c.EP, krpc.EncodeGetPeers(tid, n.cfg.ID, infoHash))
	}
	return res
}

// Announce joins a swarm: it looks up the info-hash and announces (with
// the implied-port NAT-friendly mode) to every node that issued a token.
// It returns the membership discovered during the lookup.
func (n *Node) Announce(infoHash krpc.NodeID) []netaddr.Endpoint {
	res := n.GetPeers(infoHash)
	// Deterministic announce order keeps simulations reproducible.
	targets := make([]netaddr.Endpoint, 0, len(res.Tokens))
	for ep := range res.Tokens {
		targets = append(targets, ep)
	}
	sortEndpoints(targets)
	for _, ep := range targets {
		tid := n.newTID()
		if !n.track(tid, pendingOp{kind: pendingAnnounce, ep: ep}) {
			break
		}
		n.send.Send(ep, krpc.EncodeAnnouncePeer(tid, n.cfg.ID, infoHash, 0, true, res.Tokens[ep]))
	}
	return res.Peers
}
