package dht

import (
	"testing"

	"cgn/internal/krpc"
	"cgn/internal/netaddr"
)

func ih(b byte) krpc.NodeID { return nid(b) }

func TestAnnounceAndGetPeers(t *testing.T) {
	w := newPipeWorld()
	store := w.attach(ep("1.0.0.1:6881"), Config{ID: nid(1), Validate: true, Seed: 1})
	a := w.attach(ep("1.0.0.2:6881"), Config{ID: nid(2), Validate: true, Seed: 2})
	b := w.attach(ep("1.0.0.3:6881"), Config{ID: nid(3), Validate: true, Seed: 3})
	_ = store

	// Both learn the storing node, then A announces to the swarm.
	a.AddCandidate(ep("1.0.0.1:6881"))
	b.AddCandidate(ep("1.0.0.1:6881"))
	hash := ih(0x77)
	if got := a.Announce(hash); len(got) != 0 {
		t.Errorf("first announcer found peers: %v", got)
	}
	// The storing node recorded A's observed endpoint (implied port).
	if got := store.SwarmPeers(hash); len(got) != 1 || got[0] != ep("1.0.0.2:6881") {
		t.Fatalf("stored peers = %v", got)
	}
	// B's lookup now discovers A.
	res := b.GetPeers(hash)
	if len(res.Peers) != 1 || res.Peers[0] != ep("1.0.0.2:6881") {
		t.Errorf("B discovered %v, want A's endpoint", res.Peers)
	}
}

func TestAnnounceRequiresValidToken(t *testing.T) {
	w := newPipeWorld()
	store := w.attach(ep("1.0.0.1:6881"), Config{ID: nid(1), Validate: true, Seed: 1})
	// Forge an announce without a get_peers first: the token is garbage.
	forged := krpc.EncodeAnnouncePeer([]byte("xx"), nid(9), ih(0x55), 6881, false, []byte("bogus"))
	store.HandlePacket(ep("6.6.6.6:6881"), forged)
	if got := store.SwarmPeers(ih(0x55)); len(got) != 0 {
		t.Errorf("forged announce stored peers: %v", got)
	}
}

func TestTokenBoundToEndpoint(t *testing.T) {
	n := NewNode(Config{ID: nid(1), Seed: 4}, SenderFunc(func(netaddr.Endpoint, []byte) {}))
	e1, e2 := ep("1.1.1.1:1000"), ep("1.1.1.1:1001")
	if n.validToken(e2, n.token(e1)) {
		t.Error("token issued to e1 must not validate for e2")
	}
	if !n.validToken(e1, n.token(e1)) {
		t.Error("token must validate for its own endpoint")
	}
}

func TestGetPeersFallsBackToNodes(t *testing.T) {
	w := newPipeWorld()
	store := w.attach(ep("1.0.0.1:6881"), Config{ID: nid(1), Validate: true, Seed: 1})
	w.attach(ep("1.0.0.4:6881"), Config{ID: nid(4), Validate: true, Seed: 4})
	store.AddCandidate(ep("1.0.0.4:6881"))

	a := w.attach(ep("1.0.0.2:6881"), Config{ID: nid(2), Validate: true, Seed: 2})
	a.AddCandidate(ep("1.0.0.1:6881"))
	res := a.GetPeers(ih(0x66)) // unknown swarm
	if len(res.Peers) != 0 {
		t.Errorf("unknown swarm returned peers: %v", res.Peers)
	}
	if len(res.Tokens) == 0 {
		t.Error("lookup must still gather write tokens")
	}
	// The nodes fallback feeds the routing table: A should now know node 4.
	found := false
	for _, c := range a.Contacts() {
		if c.ID == nid(4) {
			found = true
		}
	}
	if !found {
		t.Error("get_peers nodes fallback did not populate the table")
	}
}

func TestExplicitPortAnnounce(t *testing.T) {
	w := newPipeWorld()
	store := w.attach(ep("1.0.0.1:6881"), Config{ID: nid(1), Validate: true, Seed: 1})
	a := w.attach(ep("1.0.0.2:6881"), Config{ID: nid(2), Validate: true, Seed: 2})
	a.AddCandidate(ep("1.0.0.1:6881"))
	res := a.GetPeers(ih(0x88))
	token := res.Tokens[ep("1.0.0.1:6881")]
	if token == nil {
		t.Fatal("no token gathered")
	}
	// Announce an explicit, different port.
	wire := krpc.EncodeAnnouncePeer([]byte("yy"), a.ID(), ih(0x88), 51413, false, token)
	a.send.Send(ep("1.0.0.1:6881"), wire)
	got := store.SwarmPeers(ih(0x88))
	if len(got) != 1 || got[0] != ep("1.0.0.2:51413") {
		t.Errorf("stored = %v, want explicit port 51413", got)
	}
}

func TestPeerStoreCap(t *testing.T) {
	s := newPeerStore(3)
	hash := ih(0x99)
	for i := 0; i < 10; i++ {
		s.add(hash, netaddr.EndpointOf(netaddr.AddrFrom4(1, 1, 1, byte(i+1)), 6881))
	}
	if got := len(s.get(hash, 100)); got != 3 {
		t.Errorf("store kept %d entries, cap is 3", got)
	}
	// Re-adding an existing entry at cap is fine.
	s.add(hash, netaddr.EndpointOf(netaddr.AddrFrom4(1, 1, 1, 1), 6881))
	if got := len(s.get(hash, 100)); got != 3 {
		t.Errorf("re-add changed size to %d", got)
	}
}

func TestGetPeersLimit(t *testing.T) {
	s := newPeerStore(64)
	hash := ih(0x9a)
	for i := 0; i < 20; i++ {
		s.add(hash, netaddr.EndpointOf(netaddr.AddrFrom4(1, 1, 1, byte(i+1)), 6881))
	}
	if got := len(s.get(hash, 8)); got != 8 {
		t.Errorf("limit ignored: %d", got)
	}
	// Deterministic order.
	a := s.get(hash, 8)
	b := s.get(hash, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("peer order not deterministic")
		}
	}
}
