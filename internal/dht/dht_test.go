package dht

import (
	"math/rand"
	"testing"

	"cgn/internal/krpc"
	"cgn/internal/netaddr"
)

func nid(b byte) krpc.NodeID {
	var out krpc.NodeID
	for i := range out {
		out[i] = b
	}
	return out
}

// pipeWorld wires nodes together with an in-memory loss-free fabric so the
// protocol logic can be tested without the full simulator.
type pipeWorld struct {
	nodes map[netaddr.Endpoint]*Node
}

func newPipeWorld() *pipeWorld {
	return &pipeWorld{nodes: make(map[netaddr.Endpoint]*Node)}
}

// attach creates a node reachable at ep.
func (w *pipeWorld) attach(ep netaddr.Endpoint, cfg Config) *Node {
	var n *Node
	send := SenderFunc(func(dst netaddr.Endpoint, payload []byte) {
		if peer, ok := w.nodes[dst]; ok {
			peer.HandlePacket(ep, payload)
		}
	})
	n = NewNode(cfg, send)
	w.nodes[ep] = n
	return n
}

func ep(s string) netaddr.Endpoint { return netaddr.MustParseEndpoint(s) }

func TestPingPongValidatesContact(t *testing.T) {
	w := newPipeWorld()
	a := w.attach(ep("1.0.0.1:6881"), Config{ID: nid(1), Validate: true, Seed: 1})
	b := w.attach(ep("1.0.0.2:6881"), Config{ID: nid(2), Validate: true, Seed: 2})
	_ = b

	a.AddCandidate(ep("1.0.0.2:6881"))
	contacts := a.Contacts()
	if len(contacts) != 1 {
		t.Fatalf("contacts = %d, want 1 after validated ping", len(contacts))
	}
	if contacts[0].ID != nid(2) || contacts[0].EP != ep("1.0.0.2:6881") {
		t.Errorf("contact = %+v", contacts[0])
	}
}

func TestUnreachableCandidateNotInserted(t *testing.T) {
	w := newPipeWorld()
	a := w.attach(ep("1.0.0.1:6881"), Config{ID: nid(1), Validate: true, Seed: 1})
	a.AddCandidate(ep("9.9.9.9:6881")) // nobody there
	if got := a.NumContacts(); got != 0 {
		t.Errorf("contacts = %d, want 0 for unreachable candidate", got)
	}
}

func TestQuerierIsValidatedAndInserted(t *testing.T) {
	w := newPipeWorld()
	a := w.attach(ep("1.0.0.1:6881"), Config{ID: nid(1), Validate: true, Seed: 1})
	b := w.attach(ep("1.0.0.2:6881"), Config{ID: nid(2), Validate: true, Seed: 2})

	// B pings A: A answers and, per the validation discipline, pings B
	// back before inserting it. Everything resolves synchronously, so
	// both ends know each other afterwards.
	b.AddCandidate(ep("1.0.0.1:6881"))
	if a.NumContacts() != 1 || b.NumContacts() != 1 {
		t.Errorf("contacts: a=%d b=%d, want 1 and 1", a.NumContacts(), b.NumContacts())
	}
	if a.QueriesSeen == 0 {
		t.Error("A should have counted the inbound query")
	}
}

func TestFindNodeReturnsClosest(t *testing.T) {
	w := newPipeWorld()
	hub := w.attach(ep("1.0.0.1:6881"), Config{ID: nid(0x80), Validate: true, Seed: 1})
	// Give the hub 12 contacts; find_node must return the 8 closest.
	for i := 0; i < 12; i++ {
		addr := netaddr.EndpointOf(netaddr.AddrFrom4(2, 0, 0, byte(i+1)), 6881)
		w.attach(addr, Config{ID: nid(byte(i + 1)), Validate: true, Seed: int64(i + 10)})
		hub.AddCandidate(addr)
	}
	// All 12 contact IDs land in the hub's top bucket (their high bit
	// differs from the hub's), so the bucket cap K bounds the table.
	if hub.NumContacts() != K {
		t.Fatalf("hub contacts = %d, want %d (bucket cap)", hub.NumContacts(), K)
	}

	crawler := w.attach(ep("3.0.0.1:9999"), Config{ID: nid(0xfe), Validate: true, Seed: 99})
	crawler.AddCandidate(ep("1.0.0.1:6881"))
	// One lookup round toward target nid(1): hub answers with its 8
	// closest to the target, which the crawler then validates and inserts.
	crawler.Lookup(nid(1))
	// Crawler should now know hub + up to 8 returned contacts.
	if got := crawler.NumContacts(); got < 9 {
		t.Errorf("crawler contacts after lookup = %d, want >= 9", got)
	}
}

func TestNonValidatingNodeInsertsImmediately(t *testing.T) {
	w := newPipeWorld()
	sloppy := w.attach(ep("1.0.0.1:6881"), Config{ID: nid(1), Validate: false, Seed: 1})
	// A query arrives from an endpoint that cannot be pinged back (not
	// attached). The sloppy node inserts the claimed contact anyway.
	q := krpc.EncodePing([]byte("aa"), nid(0x77))
	sloppy.HandlePacket(ep("6.6.6.6:6881"), q)
	if sloppy.NumContacts() != 1 {
		t.Fatalf("contacts = %d, want 1 for non-validating node", sloppy.NumContacts())
	}
	if sloppy.Contacts()[0].ID != nid(0x77) {
		t.Errorf("contact = %+v", sloppy.Contacts()[0])
	}
}

func TestValidatingNodeRefusesUnreachableQuerier(t *testing.T) {
	w := newPipeWorld()
	strict := w.attach(ep("1.0.0.1:6881"), Config{ID: nid(1), Validate: true, Seed: 1})
	q := krpc.EncodePing([]byte("aa"), nid(0x77))
	strict.HandlePacket(ep("6.6.6.6:6881"), q)
	if strict.NumContacts() != 0 {
		t.Errorf("contacts = %d, want 0: validation ping cannot complete", strict.NumContacts())
	}
}

func TestEndpointUpdatedOnReobservation(t *testing.T) {
	w := newPipeWorld()
	a := w.attach(ep("1.0.0.1:6881"), Config{ID: nid(1), Validate: true, Seed: 1})
	w.attach(ep("1.0.0.2:6881"), Config{ID: nid(2), Validate: true, Seed: 2})
	a.AddCandidate(ep("1.0.0.2:6881"))

	// The same node is later reachable at a different (say, internal)
	// endpoint; the contact address must follow the latest validation.
	w.nodes[ep("10.0.0.2:6881")] = w.nodes[ep("1.0.0.2:6881")]
	a.AddCandidate(ep("10.0.0.2:6881"))
	contacts := a.Contacts()
	if len(contacts) != 1 {
		t.Fatalf("contacts = %d, want 1 (same node ID)", len(contacts))
	}
	if contacts[0].EP != ep("10.0.0.2:6881") {
		t.Errorf("contact endpoint = %v, want updated", contacts[0].EP)
	}
}

func TestBucketCapacity(t *testing.T) {
	tab := newTable(nid(0))
	// All these contacts share the top bucket relative to nid(0) when the
	// high bit differs; use IDs 0x80..0x8b -> same bucket index 159.
	for i := 0; i < 12; i++ {
		var id krpc.NodeID
		id[0] = 0x80
		id[19] = byte(i)
		tab.insert(krpc.NodeInfo{ID: id, EP: netaddr.EndpointOf(netaddr.AddrFrom4(1, 1, 1, byte(i+1)), 1)})
	}
	if tab.size != K {
		t.Errorf("bucket accepted %d contacts, want %d", tab.size, K)
	}
}

func TestTableIgnoresSelfAndZeroEndpoint(t *testing.T) {
	tab := newTable(nid(7))
	tab.insert(krpc.NodeInfo{ID: nid(7), EP: ep("1.1.1.1:1")})
	tab.insert(krpc.NodeInfo{ID: nid(8)}) // zero endpoint
	if tab.size != 0 {
		t.Errorf("table size = %d, want 0", tab.size)
	}
}

func TestClosestOrdering(t *testing.T) {
	tab := newTable(nid(0))
	var ids []krpc.NodeID
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 40; i++ {
		var id krpc.NodeID
		rng.Read(id[:])
		ids = append(ids, id)
		tab.insert(krpc.NodeInfo{ID: id, EP: netaddr.EndpointOf(netaddr.Addr(rng.Uint32()|1), 6881)})
	}
	var target krpc.NodeID
	rng.Read(target[:])
	got := tab.closest(target, K)
	if len(got) != K {
		t.Fatalf("closest returned %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].ID.XOR(target).Less(got[i-1].ID.XOR(target)) {
			t.Fatal("closest not ordered by XOR distance")
		}
	}
	// Verify against brute force: the nearest of all inserted IDs must be
	// first.
	best := ids[0]
	for _, id := range ids[1:] {
		if id.XOR(target).Less(best.XOR(target)) {
			best = id
		}
	}
	if got[0].ID != best {
		t.Errorf("closest[0] = %v, brute force %v", got[0].ID, best)
	}
}

func TestUnknownMethodGetsError(t *testing.T) {
	var sent [][]byte
	n := NewNode(Config{ID: nid(1), Seed: 1}, SenderFunc(func(_ netaddr.Endpoint, p []byte) {
		sent = append(sent, p)
	}))
	// "vote" is not a BEP-5 method; the node must answer with a KRPC
	// "Method Unknown" error.
	id := nid(2)
	q := []byte("d1:ad2:id20:" + string(id[:]) + "e1:q4:vote1:t2:aa1:y1:qe")
	n.HandlePacket(ep("1.1.1.1:1"), q)
	if len(sent) != 1 {
		t.Fatalf("sent %d messages", len(sent))
	}
	parsed, err := krpc.Parse(sent[0])
	if err != nil || parsed.Kind != krpc.Error {
		t.Errorf("reply = %+v, %v; want KRPC error", parsed, err)
	}
}

func TestGarbageIgnored(t *testing.T) {
	n := NewNode(Config{ID: nid(1), Seed: 1}, SenderFunc(func(netaddr.Endpoint, []byte) {
		t.Error("node must not respond to garbage")
	}))
	n.HandlePacket(ep("1.1.1.1:1"), []byte("not bencode"))
	n.HandlePacket(ep("1.1.1.1:1"), nil)
}

func TestUnsolicitedResponseIgnored(t *testing.T) {
	n := NewNode(Config{ID: nid(1), Validate: true, Seed: 1}, SenderFunc(func(netaddr.Endpoint, []byte) {}))
	pong := krpc.EncodePingResponse([]byte("zz"), nid(9))
	n.HandlePacket(ep("1.1.1.1:1"), pong)
	if n.NumContacts() != 0 {
		t.Error("unsolicited pong must not insert a contact")
	}
}

// Iterative lookups over several rounds must converge: after enough
// chatter, a node's closest-known contacts to its own ID should include
// the actually-closest nodes in the population.
func TestIterativeLookupConvergence(t *testing.T) {
	w := newPipeWorld()
	rng := rand.New(rand.NewSource(31))
	const n = 60
	type member struct {
		id krpc.NodeID
		ep netaddr.Endpoint
	}
	var members []member
	var nodes []*Node
	for i := 0; i < n; i++ {
		var id krpc.NodeID
		rng.Read(id[:])
		addr := netaddr.EndpointOf(netaddr.AddrFrom4(5, 0, byte(i/250), byte(i%250+1)), 6881)
		node := w.attach(addr, Config{ID: id, Validate: true, Seed: int64(i + 1)})
		members = append(members, member{id, addr})
		nodes = append(nodes, node)
	}
	// Everyone knows node 0 (the bootstrap); then several lookup rounds.
	for i := 1; i < n; i++ {
		nodes[i].AddCandidate(members[0].ep)
	}
	for round := 0; round < 5; round++ {
		for _, node := range nodes {
			node.Lookup(node.ID())
			node.PrunePending()
		}
	}
	// For a sample of nodes, the true nearest neighbor must be known.
	misses := 0
	for i := 0; i < 10; i++ {
		self := members[i]
		best := members[(i+1)%n]
		for _, m := range members {
			if m.id == self.id {
				continue
			}
			if m.id.XOR(self.id).Less(best.id.XOR(self.id)) {
				best = m
			}
		}
		found := false
		for _, c := range nodes[i].Contacts() {
			if c.ID == best.id {
				found = true
				break
			}
		}
		if !found {
			misses++
		}
	}
	if misses > 2 {
		t.Errorf("%d of 10 sampled nodes missing their true nearest neighbor after convergence", misses)
	}
}

func TestPendingBound(t *testing.T) {
	n := NewNode(Config{ID: nid(1), Validate: true, MaxPending: 4, Seed: 1},
		SenderFunc(func(netaddr.Endpoint, []byte) {}))
	for i := 0; i < 20; i++ {
		n.AddCandidate(netaddr.EndpointOf(netaddr.AddrFrom4(9, 9, 9, byte(i+1)), 6881))
	}
	if len(n.pending) > 4 {
		t.Errorf("pending = %d, want <= 4", len(n.pending))
	}
}
