// Package dht implements a BitTorrent mainline-DHT node (BEP-5 subset:
// ping and find_node) with a Kademlia k-bucket routing table.
//
// Two behaviors matter for the paper's methodology and are modeled
// faithfully (§4.1 "DHT Data Calibration"):
//
//  1. Validation discipline: a well-behaved node only inserts a contact
//     into its routing table — and therefore only propagates it to others —
//     after validating reachability with a ping/pong exchange it performed
//     itself. The paper measured ~1.3% of real peers violating this; the
//     Validate flag reproduces both behaviors for the A02 ablation.
//  2. Endpoint observation: contacts are stored with the source endpoint
//     as observed. Hosts behind the same NAT (or on the same LAN) observe
//     each other's *internal* endpoints, which is precisely the information
//     that later leaks to the crawler via find_node responses.
//
// The node is transport-agnostic: it sends through a Sender and receives
// via HandlePacket, so the same code runs over the deterministic simulator
// and over a real UDP socket.
package dht

import (
	"encoding/binary"
	"math/rand"
	"sort"

	"cgn/internal/krpc"
	"cgn/internal/netaddr"
)

// K is the Kademlia bucket size and the maximum number of contacts
// returned by find_node, per BEP-5.
const K = 8

// Sender transmits one datagram. Implementations: simnet sockets and real
// UDP conns. Send is best-effort; delivery failure is silence, as with UDP.
type Sender interface {
	Send(dst netaddr.Endpoint, payload []byte)
}

// SenderFunc adapts a function to Sender.
type SenderFunc func(dst netaddr.Endpoint, payload []byte)

// Send implements Sender.
func (f SenderFunc) Send(dst netaddr.Endpoint, payload []byte) { f(dst, payload) }

// Config parameterizes a node.
type Config struct {
	// ID is the node's self-chosen identifier.
	ID krpc.NodeID
	// Validate gates routing-table insertion on a successful ping/pong
	// round trip (the spec-compliant behavior). Disabling it reproduces
	// the small population of non-validating peers.
	Validate bool
	// MaxPending bounds outstanding validation pings.
	MaxPending int
	// Seed drives transaction-ID generation.
	Seed int64
}

// Node is one DHT participant.
type Node struct {
	cfg  Config
	send Sender

	table *table

	// pending maps in-flight transaction IDs to their purpose.
	pending map[string]pendingOp
	// validating tracks endpoints with an in-flight validation ping, so a
	// peer's symmetric validation of us cannot recurse into an infinite
	// mutual ping exchange.
	validating map[netaddr.Endpoint]bool
	tidSeq     uint32
	rng        *rand.Rand

	// peers stores announced swarm membership (get_peers/announce_peer).
	peers       *peerStore
	tokenSecret uint64
	// currentGetPeers collects the in-flight swarm lookup's findings
	// (safe because the simulator resolves sends synchronously).
	currentGetPeers *GetPeersResult

	// QueriesSeen counts inbound queries, for population statistics.
	QueriesSeen int
}

type pendingOp struct {
	kind pendingKind
	ep   netaddr.Endpoint
}

type pendingKind uint8

const (
	pendingValidate pendingKind = iota
	pendingLookup
	pendingGetPeers
	pendingAnnounce
)

// NewNode builds a node that transmits through send.
func NewNode(cfg Config, send Sender) *Node {
	if cfg.MaxPending == 0 {
		cfg.MaxPending = 256
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &Node{
		cfg:         cfg,
		send:        send,
		table:       newTable(cfg.ID),
		pending:     make(map[string]pendingOp),
		validating:  make(map[netaddr.Endpoint]bool),
		rng:         rng,
		peers:       newPeerStore(64),
		tokenSecret: rng.Uint64(),
	}
}

// ID returns the node's identifier.
func (n *Node) ID() krpc.NodeID { return n.cfg.ID }

// Contacts returns a snapshot of the routing table.
func (n *Node) Contacts() []krpc.NodeInfo { return n.table.all() }

// NumContacts returns the routing table size.
func (n *Node) NumContacts() int { return n.table.size }

// newTID mints a fresh transaction ID.
func (n *Node) newTID() []byte {
	n.tidSeq++
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], n.tidSeq^n.rng.Uint32())
	return b[:]
}

func (n *Node) track(tid []byte, op pendingOp) bool {
	if len(n.pending) >= n.cfg.MaxPending {
		return false
	}
	n.pending[string(tid)] = op
	return true
}

// AddCandidate considers a contact endpoint for the routing table. Under
// the validation discipline this sends a ping and defers insertion to the
// pong; otherwise nothing happens until the peer is heard from (an
// endpoint alone has no node ID to store). Endpoints already known or
// already being validated are skipped.
func (n *Node) AddCandidate(ep netaddr.Endpoint) {
	if n.table.knowsEP(ep) || n.validating[ep] {
		return
	}
	tid := n.newTID()
	if !n.track(tid, pendingOp{kind: pendingValidate, ep: ep}) {
		return
	}
	n.validating[ep] = true
	n.send.Send(ep, krpc.EncodePing(tid, n.cfg.ID))
}

// PrunePending abandons all outstanding queries, modeling query timeouts.
// Population drivers call it between chatter rounds so unanswered
// validations do not pin the pending table forever.
func (n *Node) PrunePending() {
	clear(n.pending)
	clear(n.validating)
}

// Lookup sends find_node(target) queries to the K known contacts closest
// to target; any contacts returned become candidates. One call is one
// round of the iterative lookup — callers drive as many rounds as they
// want ticks of chatter.
func (n *Node) Lookup(target krpc.NodeID) {
	for _, c := range n.table.closest(target, K) {
		tid := n.newTID()
		if !n.track(tid, pendingOp{kind: pendingLookup, ep: c.EP}) {
			return
		}
		n.send.Send(c.EP, krpc.EncodeFindNode(tid, n.cfg.ID, target))
	}
}

// LookupRandom performs a lookup toward a random target — the background
// chatter that keeps real DHT routing tables fresh.
func (n *Node) LookupRandom() {
	var target krpc.NodeID
	n.rng.Read(target[:])
	n.Lookup(target)
}

// Ping sends a standalone ping to ep (used by bootstrap and keepalive
// chatter). The pong, if any, validates and inserts the contact.
func (n *Node) Ping(ep netaddr.Endpoint) { n.AddCandidate(ep) }

// InsertContact stores a contact without validation, bypassing the
// discipline. Population drivers use it to model out-of-band contact
// learning that no packet exchange can explain — e.g. peers sharing a VPN
// tunnel, the noise source the paper's exclusive-leak filter removes.
func (n *Node) InsertContact(c krpc.NodeInfo) { n.table.insert(c) }

// HandlePacket processes one received datagram. from is the source
// endpoint as observed at this host — post-translation, which is exactly
// how internal endpoints enter routing tables.
func (n *Node) HandlePacket(from netaddr.Endpoint, data []byte) {
	m, err := krpc.Parse(data)
	if err != nil {
		return // silently ignore garbage, like real nodes
	}
	switch m.Kind {
	case krpc.Query:
		n.QueriesSeen++
		n.handleQuery(from, m)
	case krpc.Response:
		n.handleResponse(from, m)
	case krpc.Error:
		delete(n.pending, string(m.TID))
	}
}

func (n *Node) handleQuery(from netaddr.Endpoint, m *krpc.Message) {
	switch m.Method {
	case krpc.MethodPing:
		n.send.Send(from, krpc.EncodePingResponse(m.TID, n.cfg.ID))
	case krpc.MethodFindNode:
		closest := n.table.closest(m.Target, K)
		n.send.Send(from, krpc.EncodeFindNodeResponse(m.TID, n.cfg.ID, closest))
	case krpc.MethodGetPeers:
		n.handleGetPeers(from, m)
	case krpc.MethodAnnouncePeer:
		n.handleAnnounce(from, m)
	default:
		n.send.Send(from, krpc.EncodeError(m.TID, 204, "Method Unknown"))
		return
	}
	// The querier is itself a fresh liveness signal: consider it for the
	// table. Spec-compliant nodes validate with their own ping first —
	// but only when the contact's bucket has room, otherwise the
	// validated contact would be dropped anyway and two full-table nodes
	// would validate each other forever. Non-validating nodes insert the
	// claimed (ID, endpoint) immediately.
	if n.cfg.Validate {
		if n.table.hasRoom(m.ID) {
			n.AddCandidate(from)
		}
	} else {
		n.table.insert(krpc.NodeInfo{ID: m.ID, EP: from})
	}
}

func (n *Node) handleResponse(from netaddr.Endpoint, m *krpc.Message) {
	op, ok := n.pending[string(m.TID)]
	if !ok {
		return // unsolicited response
	}
	delete(n.pending, string(m.TID))
	switch op.kind {
	case pendingValidate:
		// The round trip to op.ep succeeded: the contact is validated.
		// Store it under the endpoint we reached it at.
		delete(n.validating, op.ep)
		n.table.insert(krpc.NodeInfo{ID: m.ID, EP: op.ep})
	case pendingLookup:
		// The responder proved itself live too.
		n.table.insert(krpc.NodeInfo{ID: m.ID, EP: op.ep})
		for _, cand := range m.Nodes {
			if cand.ID == n.cfg.ID {
				continue
			}
			if n.cfg.Validate {
				if n.table.hasRoom(cand.ID) {
					n.AddCandidate(cand.EP)
				}
			} else {
				n.table.insert(cand)
			}
		}
	case pendingGetPeers:
		n.table.insert(krpc.NodeInfo{ID: m.ID, EP: op.ep})
		if res := n.currentGetPeers; res != nil {
			res.Peers = append(res.Peers, m.Values...)
			if len(m.Token) > 0 {
				res.Tokens[op.ep] = m.Token
			}
		}
		// The nodes fallback feeds the iterative lookup like find_node.
		for _, cand := range m.Nodes {
			if cand.ID == n.cfg.ID {
				continue
			}
			if n.cfg.Validate {
				if n.table.hasRoom(cand.ID) {
					n.AddCandidate(cand.EP)
				}
			} else {
				n.table.insert(cand)
			}
		}
	case pendingAnnounce:
		n.table.insert(krpc.NodeInfo{ID: m.ID, EP: op.ep})
	}
}

// table is a Kademlia routing table: 160 buckets of up to K contacts,
// bucketed by XOR distance from the owner's ID, with a reverse index of
// known endpoints.
type table struct {
	self    krpc.NodeID
	buckets [160][]krpc.NodeInfo
	size    int
	byEP    map[netaddr.Endpoint]krpc.NodeID
}

func newTable(self krpc.NodeID) *table {
	return &table{self: self, byEP: make(map[netaddr.Endpoint]krpc.NodeID)}
}

// knowsEP reports whether some contact is stored under this endpoint.
func (t *table) knowsEP(ep netaddr.Endpoint) bool {
	_, ok := t.byEP[ep]
	return ok
}

// hasRoom reports whether a contact with this ID could be stored: either
// it is already present (its endpoint would be refreshed) or its bucket
// has a free slot.
func (t *table) hasRoom(id krpc.NodeID) bool {
	idx := t.self.BucketIndex(id)
	if idx < 0 {
		return false
	}
	b := t.buckets[idx]
	if len(b) < K {
		return true
	}
	for i := range b {
		if b[i].ID == id {
			return true
		}
	}
	return false
}

// insert adds or refreshes a contact. A contact with a known ID has its
// endpoint updated to the latest observation; full buckets drop newcomers
// (classic Kademlia prefers long-lived contacts).
func (t *table) insert(c krpc.NodeInfo) {
	if c.ID == t.self || c.EP.IsZero() {
		return
	}
	idx := t.self.BucketIndex(c.ID)
	if idx < 0 {
		return
	}
	b := t.buckets[idx]
	for i := range b {
		if b[i].ID == c.ID {
			if b[i].EP != c.EP {
				delete(t.byEP, b[i].EP)
				b[i].EP = c.EP
				t.byEP[c.EP] = c.ID
			}
			return
		}
	}
	if len(b) >= K {
		return
	}
	t.buckets[idx] = append(b, c)
	t.byEP[c.EP] = c.ID
	t.size++
}

// all returns every contact.
func (t *table) all() []krpc.NodeInfo {
	out := make([]krpc.NodeInfo, 0, t.size)
	for _, b := range t.buckets {
		out = append(out, b...)
	}
	return out
}

// closest returns up to k contacts ordered by XOR distance to target. The
// distance keys are computed once up front: recomputing two XORs inside
// the comparator dominated find_node handling at campaign scale.
func (t *table) closest(target krpc.NodeID, k int) []krpc.NodeInfo {
	type distNode struct {
		key krpc.NodeID
		c   krpc.NodeInfo
	}
	nodes := make([]distNode, 0, t.size)
	for _, b := range t.buckets {
		for _, c := range b {
			nodes = append(nodes, distNode{c.ID.XOR(target), c})
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		return nodes[i].key.Less(nodes[j].key)
	})
	if len(nodes) > k {
		nodes = nodes[:k]
	}
	out := make([]krpc.NodeInfo, len(nodes))
	for i, n := range nodes {
		out[i] = n.c
	}
	return out
}
