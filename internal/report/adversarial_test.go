package report

import (
	"reflect"
	"strings"
	"testing"

	"cgn/internal/internet"
)

// TestE19Disabled: a scenario without adversarial load renders the
// disabled notice and leaves the dataset zero.
func TestE19Disabled(t *testing.T) {
	b := bundle(t)
	if b.Adversarial.Enabled {
		t.Fatalf("small scenario has no adversaries but E19 ran: %+v", b.Adversarial)
	}
	if out := b.E19(); !strings.Contains(out, "adversarial engine disabled") {
		t.Errorf("disabled E19 rendered unexpectedly:\n%s", out)
	}
}

// TestE19Matrix is the acceptance run: on the flood-attack world the
// undefended cell must show legitimate allocation failures, the
// token-bucket cell must recover measurably, and the whole matrix must
// be deterministic across worker counts.
func TestE19Matrix(t *testing.T) {
	sc, err := internet.Lookup("flood-attack")
	if err != nil {
		t.Fatal(err)
	}
	// The replay population is the campaign-exercised one (like E18),
	// so the matrix needs a collected bundle, not just a built world.
	w := internet.Build(sc)
	ar := CollectWith(w, CollectOptions{TrafficWorkers: 4}).Adversarial
	if !ar.Enabled || len(ar.Cells) != 5 {
		t.Fatalf("matrix incomplete: %+v", ar)
	}
	base := ar.Cell("baseline (no attack)")
	und := ar.Cell("flood undefended")
	tb := ar.Cell("flood + token-bucket")
	ev := ar.Cell("flood + evict-oldest")
	if base == nil || und == nil || tb == nil || ev == nil {
		t.Fatalf("missing matrix cells: %+v", ar.Cells)
	}
	if base.Adv.Enabled || base.Adv.AttackerAttempts != 0 {
		t.Fatalf("baseline cell ran adversaries: %+v", base.Adv)
	}
	if und.LegitFailRate <= 0 {
		t.Fatalf("undefended flood caused no legit collateral: %+v", und)
	}
	if und.LegitFailRate <= base.LegitFailRate {
		t.Errorf("flood did not worsen the baseline failure rate: %.4f vs %.4f",
			und.LegitFailRate, base.LegitFailRate)
	}
	if tb.Adv.RateLimited == 0 || tb.LegitFailRate >= und.LegitFailRate {
		t.Errorf("token bucket did not recover: defended %.4f (rate-limited %d) vs undefended %.4f",
			tb.LegitFailRate, tb.Adv.RateLimited, und.LegitFailRate)
	}
	if ev.Adv.Evictions == 0 {
		t.Errorf("eviction cell never evicted: %+v", ev.Adv)
	}
	if und.Adv.ScannerProbes == 0 || und.Adv.ScannerBlocked == 0 {
		t.Errorf("scanner idle in undefended cell: %+v", und.Adv)
	}

	if again := AnalyzeAdversarial(w, 1, 0); !reflect.DeepEqual(ar, again) {
		t.Fatal("E19 matrix differs across worker counts")
	}

	b := &Bundle{Adversarial: ar}
	out := b.E19()
	for _, want := range []string{"flood undefended", "flood + token-bucket", "recovery: token bucket"} {
		if !strings.Contains(out, want) {
			t.Errorf("E19 render missing %q:\n%s", want, out)
		}
	}
	p := ar.Pressure()
	if !p.Enabled || p.UndefendedLegitFailRate != und.LegitFailRate || p.DefendedLegitFailRate != tb.LegitFailRate {
		t.Errorf("pressure summary inconsistent: %+v", p)
	}
}
