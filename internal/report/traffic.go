package report

import (
	"fmt"
	"sort"
	"strings"

	"cgn/internal/internet"
	"cgn/internal/traffic"
)

// TrafficLoad is the E18 dataset: the traffic engine's run over replicas
// of every carrier NAT in the world.
type TrafficLoad struct {
	Res *traffic.Result
}

// AnalyzeTraffic runs the E18 replay with the realms on the calling
// goroutine; AnalyzeTrafficWorkers spreads them over a worker pool.
func AnalyzeTraffic(w *internet.World) *TrafficLoad { return AnalyzeTrafficWorkers(w, 0) }

// AnalyzeTrafficWorkers is AnalyzeTrafficOpts on the legacy
// (unsharded) NAT engine.
func AnalyzeTrafficWorkers(w *internet.World, workers int) *TrafficLoad {
	return AnalyzeTrafficOpts(w, workers, 0)
}

// AnalyzeTrafficOpts drives the scenario's traffic profile through a
// fresh replica of every carrier NAT: each realm's configuration
// (including its device seed) is replayed into a new NAT engine, so the
// campaign's own translation state — which E17 snapshots — is never
// touched, and the analysis stays a pure, stage-parallel function of the
// world. The subscriber population per realm is the one the campaign
// actually exercised (PortStats().Subscribers). workers is the traffic
// engine's realm worker-pool size; every value — 0 or 1 meaning
// sequential — produces the identical result, so it is purely a
// resource knob. shards selects the engine: 0 replays on the legacy
// single-table engine (the goldens' universe), and any value >= 1
// replays on the intra-realm sharded engine, whose results are
// identical at every shard count but deliberately distinct from the
// legacy engine's (see traffic.Config.Shards).
func AnalyzeTrafficOpts(w *internet.World, workers, shards int) *TrafficLoad {
	p := w.Scenario.Traffic
	if !p.Enabled() {
		return &TrafficLoad{Res: &traffic.Result{}}
	}
	specs := make([]traffic.RealmSpec, 0, len(w.CGNs))
	for _, d := range w.CGNs {
		specs = append(specs, traffic.RealmSpec{
			ID:          fmt.Sprintf("AS%d/%d", d.ASN, d.Realm),
			Cellular:    d.Cellular,
			NAT:         d.Dev.NAT.Config(),
			Subscribers: d.Dev.NAT.PortStats().Subscribers,
		})
	}
	res := traffic.Run(traffic.Config{
		Seed:    w.Scenario.Seed ^ 0x7AFF1C0DE,
		Profile: p,
		Realms:  specs,
		Workers: workers,
		Shards:  shards,
	})
	return &TrafficLoad{Res: res}
}

// TrafficPressure is the scalar E18 summary sweep aggregation carries
// per world.
type TrafficPressure struct {
	Enabled bool
	// MedianPorts / P99Ports / MaxPorts summarize per-subscriber
	// concurrent port usage over every (subscriber, tick) sample.
	MedianPorts, P99Ports, MaxPorts int
	// PeakUtilization is the highest mean-across-realms instantaneous
	// port-space utilization of the run.
	PeakUtilization float64
	// FailureRate is allocation failures over allocation attempts.
	FailureRate float64
}

// Pressure folds the engine result into the sweep summary.
func (tl *TrafficLoad) Pressure() TrafficPressure {
	r := tl.Res
	if !r.Enabled() {
		return TrafficPressure{}
	}
	tp := TrafficPressure{
		Enabled:         true,
		MedianPorts:     r.All.Median,
		P99Ports:        r.All.P99,
		MaxPorts:        r.All.Max,
		PeakUtilization: r.PeakUtil,
	}
	if total := r.Created + r.Failures; total > 0 {
		tp.FailureRate = float64(r.Failures) / float64(total)
	}
	return tp
}

// utilRamp maps a share of the run's peak utilization to a density glyph
// for the time-series sparkline.
func utilRamp(v, peak float64) byte {
	if peak <= 0 {
		return ' '
	}
	i := int(v / peak * 8)
	if i > 8 {
		i = 8
	}
	if i < 0 {
		i = 0
	}
	return " .:-=+*#@"[i]
}

// E18 renders the temporal port-usage analysis: per-subscriber
// concurrent ports per rate class over the simulated span, the
// Figure 8 ordering line (max ≫ p99 ≫ median), the diurnal realm
// utilization series and the busiest realms.
func (b *Bundle) E18() string {
	r := b.Traffic.Res
	var sb strings.Builder
	sb.WriteString("E18 / Figure 8 — per-subscriber concurrent ports over simulated time\n")
	if !r.Enabled() {
		sb.WriteString("  (traffic engine disabled: Scenario.Traffic.Ticks = 0, or no loaded CGN realms)\n")
		return sb.String()
	}
	p := r.Profile
	sb.WriteString(fmt.Sprintf("  engine: %d ticks x %v (%.1f diurnal periods of %d ticks), %d realms, %d subscribers\n",
		p.Ticks, p.TickStep, p.Days(), p.DayTicks, len(r.Realms), r.Subscribers))
	sb.WriteString(fmt.Sprintf("  flows: %d mappings created, %d expired, %d refreshes, %d allocation failures\n",
		r.Created, r.Expired, r.Refreshes, r.Failures))

	sb.WriteString("  concurrent ports per subscriber (all (subscriber, tick) samples):\n")
	sb.WriteString("  class   subscribers  median  p99  max\n")
	for _, cs := range r.ByClass {
		sb.WriteString(fmt.Sprintf("  %-7s %11d  %6d  %3d  %3d\n",
			cs.Class, cs.Subscribers, cs.Median, cs.P99, cs.Max))
	}
	sb.WriteString(fmt.Sprintf("  %-7s %11d  %6d  %3d  %3d\n",
		"all", r.All.Subscribers, r.All.Median, r.All.P99, r.All.Max))
	sb.WriteString(fmt.Sprintf("  ordering: max=%d >> p99=%d >> median=%d (paper Fig 8: peaks far above the median)\n",
		r.All.Max, r.All.P99, r.All.Median))

	// Diurnal utilization sparkline: one row per simulated day, 24
	// columns per row, each column the mean over its slice of the day,
	// scaled to the run's peak.
	sb.WriteString(fmt.Sprintf("  realm utilization over time (mean across realms; peak %.2f%% at tick %d; ramp \" .:-=+*#@\" scaled to peak):\n",
		100*r.PeakUtil, r.PeakTick))
	days := (p.Ticks + p.DayTicks - 1) / p.DayTicks
	// One glyph per day slice, at most 24; a short diurnal period gets one
	// column per tick so no slice is ever empty.
	cols := 24
	if p.DayTicks < cols {
		cols = p.DayTicks
	}
	for d := 0; d < days; d++ {
		row := make([]byte, 0, cols)
		for c := 0; c < cols; c++ {
			lo := d*p.DayTicks + c*p.DayTicks/cols
			hi := d*p.DayTicks + (c+1)*p.DayTicks/cols
			if lo >= p.Ticks {
				break
			}
			if hi > p.Ticks {
				hi = p.Ticks
			}
			sum := 0.0
			for t := lo; t < hi; t++ {
				sum += r.MeanUtil[t]
			}
			row = append(row, utilRamp(sum/float64(hi-lo), r.PeakUtil))
		}
		sb.WriteString(fmt.Sprintf("  day %d |%s|\n", d+1, row))
	}

	// The busiest realms, by peak utilization then failures.
	busiest := make([]traffic.RealmStat, len(r.Realms))
	copy(busiest, r.Realms)
	sort.SliceStable(busiest, func(i, j int) bool {
		if busiest[i].PeakUtil != busiest[j].PeakUtil {
			return busiest[i].PeakUtil > busiest[j].PeakUtil
		}
		return busiest[i].Failures > busiest[j].Failures
	})
	for i, rs := range busiest {
		if i == 3 {
			break
		}
		kind := "eyeball"
		if rs.Cellular {
			kind = "cellular"
		}
		sb.WriteString(fmt.Sprintf("  busiest: %s (%s): %d subscribers, peak util %.2f%%, %d created, %d expired, %d failures\n",
			rs.ID, kind, rs.Subscribers, 100*rs.PeakUtil, rs.Created, rs.Expired, rs.Failures))
	}
	return sb.String()
}
