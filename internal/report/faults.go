package report

import (
	"fmt"
	"strings"
	"time"

	"cgn/internal/internet"
	"cgn/internal/traffic"
)

// FaultRun is the E22 dataset: degradation-and-recovery curves under
// scheduled infrastructure faults. Every cell replays the same carrier-
// NAT replica set and the same traffic profile, varying only the fault
// schedule — a severity grid of pool outages (fraction of the pool lost
// × outage duration) plus one whole-engine restart — so the columns
// measure exactly what the fault costs: the legitimate allocation-
// failure rate during the degraded window, the flows disrupted by the
// transitions, and the virtual time until the failure rate returns to
// its pre-fault baseline after restoration.
type FaultRun struct {
	Enabled bool
	// Profile echoes the traffic profile (defaults applied); Realms is
	// the replayed carrier realm count.
	Profile traffic.Profile
	Realms  int
	// Start is the fault onset tick; PortSpan the replay-only port-span
	// narrowing (0 none); Shards the sharded-engine shard count used.
	Start    int
	PortSpan int
	Shards   int
	Cells    []FaultCell
}

// FaultCell is one cell of the severity grid (or the baseline /
// restart row).
type FaultCell struct {
	// Name labels the cell; LaneFrac and OutageTicks are zero on the
	// baseline and restart rows, Restart true only on the restart row.
	Name        string
	LaneFrac    float64
	OutageTicks int
	Restart     bool
	// BaselineRate is the legitimate allocation-failure rate before the
	// fault onset; DegradedRate the rate inside the degraded window
	// (the outage, or the restart tick's re-establishment surge). The
	// baseline row reports its whole-run rate under BaselineRate.
	BaselineRate float64
	DegradedRate float64
	// RecoveryTicks is how many ticks after restoration the windowed
	// failure rate needs to return to the recovery threshold
	// (1.5×baseline + 0.5pp); 0 means immediate, -1 means it never
	// recovered within the run.
	RecoveryTicks int
	// Disrupted counts live mappings torn down by fault transitions;
	// FaultEvents the applied transitions, both summed over realms.
	Disrupted   uint64
	FaultEvents int
	// Deg is the cell's full per-tick degradation series (zero on the
	// baseline row, whose run schedules no faults).
	Deg traffic.DegradationStats
}

// recoveryThreshold is the steady-state bar: recovered means the
// windowed failure rate is back within 1.5× the pre-fault baseline
// plus half a percentage point of slack for idle-tick noise.
func recoveryThreshold(baseline float64) float64 { return baseline*1.5 + 0.005 }

// rateOver returns failures over attempts across ticks [lo, hi).
func rateOver(d traffic.DegradationStats, lo, hi int) float64 {
	var att, fail uint64
	for t := lo; t < hi && t < len(d.Attempts); t++ {
		att += d.Attempts[t]
		fail += d.Failures[t]
	}
	if att == 0 {
		return 0
	}
	return float64(fail) / float64(att)
}

// recoveryTicks scans forward from the restoration tick for the first
// tick whose trailing window of win ticks is back under the threshold,
// and returns the distance in ticks (-1 if the run ends first).
func recoveryTicks(d traffic.DegradationStats, restore, win, ticks int, threshold float64) int {
	for t := restore; t+win <= ticks; t++ {
		if rateOver(d, t, t+win) <= threshold {
			return t - restore
		}
	}
	return -1
}

// AnalyzeFaults runs the E22 fault-injection replay over replicas of
// every carrier NAT, exactly like E18's replay (same population, a
// distinct seed stream). It only runs when the scenario schedules
// faults and offers traffic; otherwise the result is disabled and every
// prior experiment is untouched. The replay always uses the intra-realm
// sharded NAT engine — the pool lane is the fault's unit — so a shards
// value of 0 is promoted to 1; within the sharded engine, workers and
// shards are pure resource knobs (byte-identical results at any value).
func AnalyzeFaults(w *internet.World, workers, shards int) *FaultRun {
	p := w.Scenario.Traffic
	spec := w.Scenario.Faults
	if !p.Enabled() || !spec.Enabled() {
		return &FaultRun{}
	}
	if shards < 1 {
		shards = 1
	}
	specs := make([]traffic.RealmSpec, 0, len(w.CGNs))
	for _, d := range w.CGNs {
		cfg := d.Dev.NAT.Config()
		if span := spec.PortSpan; span > 0 {
			cfg.PortLo = 1024
			cfg.PortHi = uint16(1024 + span - 1)
			// Same guard as world generation: a chunk wider than half the
			// narrowed span leaves no aligned chunk inside the range.
			for cfg.ChunkSize > span/2 && cfg.ChunkSize > 1 {
				cfg.ChunkSize /= 2
			}
		}
		specs = append(specs, traffic.RealmSpec{
			ID:          fmt.Sprintf("AS%d/%d", d.ASN, d.Realm),
			Cellular:    d.Cellular,
			NAT:         cfg,
			Subscribers: d.Dev.NAT.PortStats().Subscribers,
		})
	}
	if len(specs) == 0 {
		return &FaultRun{}
	}
	pd := p.WithDefaults()
	startFrac := spec.StartFrac
	if startFrac == 0 {
		startFrac = 0.25
	}
	start := int(startFrac * float64(pd.Ticks))
	run := &FaultRun{
		Enabled:  true,
		Profile:  pd,
		Realms:   len(specs),
		Start:    start,
		PortSpan: spec.PortSpan,
		Shards:   shards,
	}

	type plan struct {
		name        string
		laneFrac    float64
		outageTicks int
		restart     bool
		faults      traffic.FaultPlan
	}
	plans := []plan{{name: "baseline (no faults)"}}
	for _, lf := range spec.LaneFracs {
		for _, of := range spec.OutageFracs {
			dur := int(of * float64(pd.Ticks))
			if dur < 1 {
				dur = 1
			}
			plans = append(plans, plan{
				name:        fmt.Sprintf("outage %.0f%% pool x %dt", 100*lf, dur),
				laneFrac:    lf,
				outageTicks: dur,
				faults: traffic.FaultPlan{
					Outages: []traffic.Outage{{Start: start, Ticks: dur, LaneFrac: lf}},
				},
			})
		}
	}
	if spec.Restart {
		plans = append(plans, plan{
			name:    "engine restart (reboot)",
			restart: true,
			faults:  traffic.FaultPlan{Restarts: []int{start}},
		})
	}

	// The recovery window: long enough to smooth single-tick noise,
	// short against the diurnal period so it cannot hide a slow return.
	win := pd.DayTicks / 48
	if win < 1 {
		win = 1
	}
	for _, pl := range plans {
		res := traffic.Run(traffic.Config{
			Seed:    w.Scenario.Seed ^ 0x0E22_5EED,
			Profile: p,
			Realms:  specs,
			Workers: workers,
			Shards:  shards,
			Faults:  pl.faults,
		})
		c := FaultCell{
			Name:        pl.name,
			LaneFrac:    pl.laneFrac,
			OutageTicks: pl.outageTicks,
			Restart:     pl.restart,
		}
		if !pl.faults.Enabled() {
			// The baseline row has no per-tick series; its whole-run rate
			// is the reference the fault rows' pre-onset rates should sit
			// near.
			if total := res.Created + res.Failures; total > 0 {
				c.BaselineRate = float64(res.Failures) / float64(total)
			}
		} else {
			d := res.Degradation
			c.Deg = d
			c.Disrupted = d.Disrupted
			c.FaultEvents = d.FaultEvents
			c.BaselineRate = rateOver(d, 0, start)
			restore := start + pl.outageTicks
			if pl.restart {
				// The restart's degraded window is the re-establishment
				// surge right after the reboot; recovery is measured from
				// the reboot tick itself.
				restore = start
				c.DegradedRate = rateOver(d, start, start+win)
			} else {
				c.DegradedRate = rateOver(d, start, restore)
			}
			c.RecoveryTicks = recoveryTicks(d, restore, win, pd.Ticks, recoveryThreshold(c.BaselineRate))
		}
		run.Cells = append(run.Cells, c)
	}
	return run
}

// Cell returns the named grid cell, nil when absent.
func (fr *FaultRun) Cell(name string) *FaultCell {
	for i := range fr.Cells {
		if fr.Cells[i].Name == name {
			return &fr.Cells[i]
		}
	}
	return nil
}

// Harshest returns the most severe outage cell (the grid ascends, so
// the last non-restart fault row), or nil when disabled.
func (fr *FaultRun) Harshest() *FaultCell {
	var h *FaultCell
	for i := range fr.Cells {
		if c := &fr.Cells[i]; c.OutageTicks > 0 {
			h = c
		}
	}
	return h
}

// FaultPressure is the scalar E22 summary sweep aggregation carries per
// world, taken from the harshest outage cell.
type FaultPressure struct {
	Enabled bool
	// BaselineFailRate / OutageFailRate bracket the degradation: the
	// legitimate allocation-failure rate before the fault and inside
	// the outage window.
	BaselineFailRate float64
	OutageFailRate   float64
	// RecoveryTicks is the return-to-baseline time after restoration
	// (-1: never within the run); Disrupted totals torn-down mappings
	// over every fault cell.
	RecoveryTicks int
	Disrupted     uint64
}

// Pressure folds the run into the sweep summary.
func (fr *FaultRun) Pressure() FaultPressure {
	h := fr.Harshest()
	if !fr.Enabled || h == nil {
		return FaultPressure{}
	}
	fp := FaultPressure{
		Enabled:          true,
		BaselineFailRate: h.BaselineRate,
		OutageFailRate:   h.DegradedRate,
		RecoveryTicks:    h.RecoveryTicks,
	}
	for _, c := range fr.Cells {
		fp.Disrupted += c.Disrupted
	}
	return fp
}

// E22 renders the fault-injection analysis: the severity grid's
// degradation rows (failure rate before, during and after each fault),
// the disruption counts, and the harshest cell's per-tick failure-rate
// curve showing degradation and monotone recovery.
func (b *Bundle) E22() string {
	fr := b.Faults
	var sb strings.Builder
	sb.WriteString("E22 — fault injection: pool outages, engine restarts, degradation and recovery\n")
	if !fr.Enabled {
		sb.WriteString("  (fault engine disabled: Scenario.Faults schedules nothing, or no traffic profile)\n")
		return sb.String()
	}
	p := fr.Profile
	span := "each realm's own port span"
	if fr.PortSpan > 0 {
		span = fmt.Sprintf("replay port span narrowed to %d", fr.PortSpan)
	}
	sb.WriteString(fmt.Sprintf("  faults: onset tick %d of %d (x %v); %d realms on the sharded engine (shards=%d); %s\n",
		fr.Start, p.Ticks, p.TickStep, fr.Realms, fr.Shards, span))
	sb.WriteString("  cell                      lanes-lost  outage  fail-rate pre  during  recovery      disrupted  events\n")
	for _, c := range fr.Cells {
		lanes, outage, during, rec, disr, ev := "-", "-", "-", "-", "-", "-"
		if c.OutageTicks > 0 || c.Restart {
			if c.OutageTicks > 0 {
				lanes = fmt.Sprintf("%.0f%%", 100*c.LaneFrac)
				outage = fmt.Sprintf("%dt", c.OutageTicks)
			} else {
				lanes = "state"
			}
			during = fmt.Sprintf("%.2f%%", 100*c.DegradedRate)
			switch {
			case c.RecoveryTicks < 0:
				rec = "never"
			case c.RecoveryTicks == 0:
				rec = "immediate"
			default:
				rec = fmt.Sprintf("%dt (%v)", c.RecoveryTicks, virtualTime(c.RecoveryTicks, p))
			}
			disr = fmt.Sprintf("%d", c.Disrupted)
			ev = fmt.Sprintf("%d", c.FaultEvents)
		}
		sb.WriteString(fmt.Sprintf("  %-25s %-11s %-7s %-14s %-7s %-13s %-10s %s\n",
			c.Name, lanes, outage, fmt.Sprintf("%.2f%%", 100*c.BaselineRate), during, rec, disr, ev))
	}

	// The harshest cell's failure-rate curve: one glyph per slice of the
	// run, scaled to the curve's peak, with the outage window marked.
	if h := fr.Harshest(); h != nil && len(h.Deg.Attempts) > 0 {
		cols := 48
		if p.Ticks < cols {
			cols = p.Ticks
		}
		peak := 0.0
		for t := 0; t < p.Ticks; t++ {
			if r := h.Deg.FailRate(t); r > peak {
				peak = r
			}
		}
		row := make([]byte, 0, cols)
		for c := 0; c < cols; c++ {
			lo, hi := c*p.Ticks/cols, (c+1)*p.Ticks/cols
			if hi <= lo {
				hi = lo + 1
			}
			row = append(row, utilRamp(rateOver(h.Deg, lo, hi), peak))
		}
		restore := fr.Start + h.OutageTicks
		sb.WriteString(fmt.Sprintf("  failure rate over time, harshest cell (%s; peak %.2f%%; ramp \" .:-=+*#@\" scaled to peak):\n",
			h.Name, 100*peak))
		sb.WriteString(fmt.Sprintf("  |%s|\n", row))
		sb.WriteString(fmt.Sprintf("  outage window ticks [%d, %d); recovery threshold %.2f%% (1.5x baseline + 0.5pp)\n",
			fr.Start, restore, 100*recoveryThreshold(h.BaselineRate)))
		switch {
		case h.RecoveryTicks < 0:
			sb.WriteString("  recovery: failure rate never returned to baseline within the run\n")
		default:
			sb.WriteString(fmt.Sprintf("  recovery: degraded %.2f%% -> back under threshold %dt (%v) after lane restoration; post-recovery rate %.2f%%\n",
				100*h.DegradedRate, h.RecoveryTicks, virtualTime(h.RecoveryTicks, p),
				100*rateOver(h.Deg, restore+h.RecoveryTicks, p.Ticks)))
		}
	}
	return sb.String()
}

// virtualTime converts a tick count to virtual time under the profile.
func virtualTime(ticks int, p traffic.Profile) time.Duration {
	return time.Duration(ticks) * p.TickStep
}
