package report

import (
	"fmt"
	"strings"

	"cgn/internal/internet"
	"cgn/internal/nat"
	"cgn/internal/traffic"
)

// AdversarialRun is the E19 dataset: the attack × defense matrix. Every
// cell replays the same carrier-NAT replica set and the same adversarial
// traffic profile, varying only the defense configuration, so the
// columns are directly comparable: what the undefended flood costs
// legitimate subscribers, and how much of it each defense claws back.
type AdversarialRun struct {
	Enabled bool
	// Profile echoes the adversarial profile (defaults applied).
	Profile traffic.Profile
	// Realms is the replayed carrier realm count; Rate/Burst the token
	// bucket the defended cells arm.
	Realms int
	Rate   float64
	Burst  int
	Cells  []AdversarialCell
}

// AdversarialCell is one (attack, defense) matrix cell.
type AdversarialCell struct {
	// Name labels the cell; Attack is false only for the no-adversary
	// baseline row, RateLimit / Evict mark the armed defenses.
	Name      string
	Attack    bool
	RateLimit bool
	Evict     bool
	// LegitFailRate is the legitimate allocation-failure rate: refused
	// new-flow attempts over offered ones. The baseline row computes it
	// over all flows (with no adversaries every flow is legitimate);
	// attack rows use the engine's per-side books.
	LegitFailRate float64
	// AttackerFailRate is the flood's failure rate — a working defense
	// pushes this up while LegitFailRate comes back down.
	AttackerFailRate float64
	// LegitP99 / AttackerP99 split the per-subscriber concurrent-port
	// p99 by side; attacker inflation over the legit column is the
	// occupancy the flood holds hostage.
	LegitP99, AttackerP99 int
	// Adv is the cell's full adversarial dataset (zero on the baseline
	// row, whose run has no adversaries).
	Adv traffic.AdversarialStats
}

// AnalyzeAdversarial runs the E19 attack × defense matrix over replicas
// of every carrier NAT, exactly like E18's replay (same population, a
// distinct seed stream). It only runs when the scenario's traffic
// profile offers adversarial load; otherwise the result is disabled and
// every prior experiment is untouched. The defended cells arm the
// scenario's own CGNAllocRatePerSec/CGNAllocBurst when set and a
// documented default otherwise, so an undefended attack scenario still
// yields a full matrix. workers and shards are the traffic engine's
// resource knobs (byte-identical results at any value).
func AnalyzeAdversarial(w *internet.World, workers, shards int) *AdversarialRun {
	p := w.Scenario.Traffic
	if !p.Enabled() || !p.AttacksEnabled() {
		return &AdversarialRun{}
	}
	specs := make([]traffic.RealmSpec, 0, len(w.CGNs))
	for _, d := range w.CGNs {
		specs = append(specs, traffic.RealmSpec{
			ID:          fmt.Sprintf("AS%d/%d", d.ASN, d.Realm),
			Cellular:    d.Cellular,
			NAT:         d.Dev.NAT.Config(),
			Subscribers: d.Dev.NAT.PortStats().Subscribers,
		})
	}
	if len(specs) == 0 {
		return &AdversarialRun{}
	}
	rate, burst := w.Scenario.CGNAllocRatePerSec, w.Scenario.CGNAllocBurst
	if rate <= 0 {
		// Matrix default: above a legit median subscriber's ceiling
		// (FlowsPerTick x (1+DiurnalAmp) per tick), far under any flood
		// worth the name.
		rate, burst = 0.06, 8
	}
	run := &AdversarialRun{
		Enabled: true,
		Profile: p.WithDefaults(),
		Realms:  len(specs),
		Rate:    rate,
		Burst:   burst,
	}
	baseline := p
	baseline.AttackerFrac = 0
	baseline.AttackerFlowsPerTick = 0
	baseline.ScannerProbesPerTick = 0
	for _, c := range []AdversarialCell{
		{Name: "baseline (no attack)"},
		{Name: "flood undefended", Attack: true},
		{Name: "flood + token-bucket", Attack: true, RateLimit: true},
		{Name: "flood + evict-oldest", Attack: true, Evict: true},
		{Name: "flood + both", Attack: true, RateLimit: true, Evict: true},
	} {
		prof := p
		if !c.Attack {
			prof = baseline
		}
		cellSpecs := make([]traffic.RealmSpec, len(specs))
		copy(cellSpecs, specs)
		for i := range cellSpecs {
			cfg := cellSpecs[i].NAT
			cfg.AllocRatePerSec, cfg.AllocBurst = 0, 0
			cfg.Eviction = nat.EvictNone
			if c.RateLimit {
				cfg.AllocRatePerSec, cfg.AllocBurst = rate, burst
			}
			if c.Evict {
				cfg.Eviction = nat.EvictOldestIdle
			}
			cellSpecs[i].NAT = cfg
		}
		res := traffic.Run(traffic.Config{
			Seed:    w.Scenario.Seed ^ 0x0E19_5EED,
			Profile: prof,
			Realms:  cellSpecs,
			Workers: workers,
			Shards:  shards,
		})
		c.LegitP99 = res.All.P99
		if c.Attack {
			c.Adv = res.Adversarial
			c.LegitFailRate = res.Adversarial.LegitFailRate()
			c.AttackerFailRate = res.Adversarial.AttackerFailRate()
			c.AttackerP99 = res.Adversarial.AttackerPorts.P99
		} else if total := res.Created + res.Failures; total > 0 {
			c.LegitFailRate = float64(res.Failures) / float64(total)
		}
		run.Cells = append(run.Cells, c)
	}
	return run
}

// Cell returns the named matrix cell, or nil.
func (ar *AdversarialRun) Cell(name string) *AdversarialCell {
	for i := range ar.Cells {
		if ar.Cells[i].Name == name {
			return &ar.Cells[i]
		}
	}
	return nil
}

// AdversarialPressure is the scalar E19 summary sweep aggregation
// carries per world.
type AdversarialPressure struct {
	Enabled bool
	// Attackers is the flooder population of the attack cells.
	Attackers int
	// UndefendedLegitFailRate / DefendedLegitFailRate compare the
	// legitimate failure rate without defenses and with the token
	// bucket armed; BaselineLegitFailRate is the no-adversary floor.
	BaselineLegitFailRate   float64
	UndefendedLegitFailRate float64
	DefendedLegitFailRate   float64
	// RateLimited / Evictions total the defense counters over the
	// defended cells.
	RateLimited, Evictions uint64
}

// Pressure folds the matrix into the sweep summary.
func (ar *AdversarialRun) Pressure() AdversarialPressure {
	if !ar.Enabled {
		return AdversarialPressure{}
	}
	ap := AdversarialPressure{Enabled: true}
	if c := ar.Cell("baseline (no attack)"); c != nil {
		ap.BaselineLegitFailRate = c.LegitFailRate
	}
	if c := ar.Cell("flood undefended"); c != nil {
		ap.UndefendedLegitFailRate = c.LegitFailRate
		ap.Attackers = c.Adv.Attackers
	}
	if c := ar.Cell("flood + token-bucket"); c != nil {
		ap.DefendedLegitFailRate = c.LegitFailRate
	}
	for _, c := range ar.Cells {
		ap.RateLimited += c.Adv.RateLimited
		ap.Evictions += c.Adv.Evictions
	}
	return ap
}

// E19 renders the adversarial matrix: per-cell legitimate and attacker
// failure rates, the p99 concurrent-port split, and the defense
// counters, over the same realms and adversarial load per cell.
func (b *Bundle) E19() string {
	ar := b.Adversarial
	var sb strings.Builder
	sb.WriteString("E19 — adversarial traffic x defense matrix (collateral damage on legitimate subscribers)\n")
	if !ar.Enabled {
		sb.WriteString("  (adversarial engine disabled: Scenario.Traffic has no attacker or scanner load)\n")
		return sb.String()
	}
	p := ar.Profile
	sb.WriteString(fmt.Sprintf("  attack: %.0f%% of subscribers flooding %.1f flows/tick (never refreshed); scanner %.1f probes/IP/tick\n",
		100*p.AttackerFrac, p.AttackerFlowsPerTick, p.ScannerProbesPerTick))
	sb.WriteString(fmt.Sprintf("  defended cells: token bucket %.3f allocs/s (burst %d); eviction evict-oldest-idle; %d realms, %d ticks per cell\n",
		ar.Rate, ar.Burst, ar.Realms, p.Ticks))
	sb.WriteString("  cell                   legit-fail  atk-fail  legit-p99  atk-p99  rate-limited  evicted  quota  noports  scan-blocked\n")
	for _, c := range ar.Cells {
		atkFail, atkP99 := "-", "-"
		if c.Attack {
			atkFail = fmt.Sprintf("%.2f%%", 100*c.AttackerFailRate)
			atkP99 = fmt.Sprintf("%d", c.AttackerP99)
		}
		scanBlocked := "-"
		if c.Adv.ScannerProbes > 0 {
			scanBlocked = fmt.Sprintf("%d/%d", c.Adv.ScannerBlocked, c.Adv.ScannerProbes)
		}
		sb.WriteString(fmt.Sprintf("  %-22s %-11s %-9s %-10d %-8s %-13d %-8d %-6d %-8d %s\n",
			c.Name, fmt.Sprintf("%.2f%%", 100*c.LegitFailRate), atkFail,
			c.LegitP99, atkP99, c.Adv.RateLimited, c.Adv.Evictions,
			c.Adv.QuotaDrops, c.Adv.NoPorts, scanBlocked))
	}
	if u, d := ar.Cell("flood undefended"), ar.Cell("flood + token-bucket"); u != nil && d != nil && u.LegitFailRate > 0 {
		sb.WriteString(fmt.Sprintf("  recovery: token bucket cuts the legit failure rate %.2f%% -> %.2f%% (%.1fx); undefended flood holds legit p99 at %d vs attacker %d\n",
			100*u.LegitFailRate, 100*d.LegitFailRate,
			u.LegitFailRate/maxF(d.LegitFailRate, 1e-9), u.LegitP99, u.AttackerP99))
	}
	return sb.String()
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
