package report

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"cgn/internal/detect"
	"cgn/internal/netaddr"
	"cgn/internal/props"
	"cgn/internal/stats"
	"cgn/internal/stun"
	"cgn/internal/survey"
)

// WriteCSVs exports every figure's data series as CSV files into dir
// (created if needed), one file per plot, and returns the paths written.
// These are the figure-regeneration artifacts: feed them to any plotting
// tool to redraw the paper's graphics from this repository's measurements.
func (b *Bundle) WriteCSVs(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	write := func(name string, header []string, rows [][]string) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w := csv.NewWriter(f)
		if err := w.Write(header); err != nil {
			return err
		}
		if err := w.WriteAll(rows); err != nil {
			return err
		}
		w.Flush()
		if err := w.Error(); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}

	if err := write("e01_survey.csv",
		[]string{"question", "answer", "count"}, b.csvSurvey()); err != nil {
		return written, err
	}
	if err := write("e03_ranges.csv",
		[]string{"range", "internal_peers", "internal_ips", "leaking_peers", "leaking_ips", "ases"},
		b.csvRanges()); err != nil {
		return written, err
	}
	if err := write("e05_clusters.csv",
		[]string{"asn", "range", "leaker_ips", "internal_ips", "positive"},
		b.csvClusters()); err != nil {
		return written, err
	}
	if err := write("e06_categories.csv",
		[]string{"population", "category", "count"}, b.csvCategories()); err != nil {
		return written, err
	}
	if err := write("e07_funnel.csv",
		[]string{"asn", "sessions", "candidates", "cpe_blocks", "cgn"},
		b.csvFunnel()); err != nil {
		return written, err
	}
	if err := write("e08_coverage.csv",
		[]string{"method", "population", "pop_size", "covered", "positive"},
		b.csvCoverage()); err != nil {
		return written, err
	}
	if err := write("e09_regions.csv",
		[]string{"region", "eyeball_total", "eyeball_covered", "eyeball_positive", "cellular_covered", "cellular_positive"},
		b.csvRegions()); err != nil {
		return written, err
	}
	if err := write("e10_space.csv",
		[]string{"population", "use", "ases"}, b.csvSpace()); err != nil {
		return written, err
	}
	if err := write("e11a_port_hist.csv",
		[]string{"bin_center", "preserved", "translated"}, b.csvPortHist()); err != nil {
		return written, err
	}
	if err := write("e11b_cpe_models.csv",
		[]string{"model", "sessions", "preserving"}, b.csvModels()); err != nil {
		return written, err
	}
	if err := write("e12_strategies.csv",
		[]string{"asn", "cellular", "preservation", "sequential", "random", "chunk_size"},
		b.csvStrategies()); err != nil {
		return written, err
	}
	if err := write("e13_quadrants.csv",
		[]string{"expired", "mismatch", "sessions"}, b.csvQuadrants()); err != nil {
		return written, err
	}
	if err := write("e14_distance.csv",
		[]string{"class", "hop", "ases"}, b.csvDistance()); err != nil {
		return written, err
	}
	if err := write("e15_timeouts.csv",
		[]string{"group", "seconds"}, b.csvTimeouts()); err != nil {
		return written, err
	}
	if err := write("e16_stun.csv",
		[]string{"population", "class", "count"}, b.csvSTUN()); err != nil {
		return written, err
	}
	return written, nil
}

func itoa(n int) string { return strconv.Itoa(n) }

func (b *Bundle) csvSurvey() [][]string {
	var rows [][]string
	for _, s := range []survey.CGNStatus{survey.CGNDeployed, survey.CGNConsidering, survey.CGNNoPlans} {
		rows = append(rows, []string{"cgn", s.String(), itoa(b.Survey.CGN[s])})
	}
	for _, s := range []survey.IPv6Status{survey.IPv6MostSubscribers, survey.IPv6SomeSubscribers, survey.IPv6PlansSoon, survey.IPv6NoPlans} {
		rows = append(rows, []string{"ipv6", s.String(), itoa(b.Survey.IPv6[s])})
	}
	return rows
}

func (b *Bundle) csvRanges() [][]string {
	type stat struct {
		internal, leaking       map[string]bool
		internalIPs, leakingIPs map[netaddr.Addr]bool
		ases                    map[uint32]bool
	}
	per := map[netaddr.Range]*stat{}
	for _, r := range netaddr.ReservedRanges {
		per[r] = &stat{
			internal: map[string]bool{}, leaking: map[string]bool{},
			internalIPs: map[netaddr.Addr]bool{}, leakingIPs: map[netaddr.Addr]bool{},
			ases: map[uint32]bool{},
		}
	}
	for _, l := range b.Crawl.Leaks {
		st, ok := per[netaddr.ClassifyRange(l.Internal.EP.Addr)]
		if !ok {
			continue
		}
		st.internal[l.Internal.EP.String()+l.Internal.ID.String()] = true
		st.leaking[l.Leaker.EP.String()+l.Leaker.ID.String()] = true
		st.internalIPs[l.Internal.EP.Addr] = true
		st.leakingIPs[l.Leaker.EP.Addr] = true
		st.ases[l.LeakerASN] = true
	}
	var rows [][]string
	for _, r := range netaddr.ReservedRanges {
		st := per[r]
		rows = append(rows, []string{r.String(), itoa(len(st.internal)), itoa(len(st.internalIPs)),
			itoa(len(st.leaking)), itoa(len(st.leakingIPs)), itoa(len(st.ases))})
	}
	return rows
}

func (b *Bundle) csvClusters() [][]string {
	var rows [][]string
	asns := sortedASNs(b.BT.PerAS)
	for _, asn := range asns {
		as := b.BT.PerAS[asn]
		for _, r := range netaddr.ReservedRanges {
			cs, ok := as.Clusters[r]
			if !ok || cs.LeakerIPs == 0 {
				continue
			}
			rows = append(rows, []string{itoa(int(asn)), r.String(),
				itoa(cs.LeakerIPs), itoa(cs.InternalIPs),
				strconv.FormatBool(cs.Positive(b.BT.Cfg))})
		}
	}
	return rows
}

func (b *Bundle) csvCategories() [][]string {
	var rows [][]string
	cats := []netaddr.Category{netaddr.CatPrivate, netaddr.CatUnrouted, netaddr.CatRoutedMatch, netaddr.CatRoutedMismatch}
	add := func(pop string, f stats.Freq[netaddr.Category]) {
		for _, c := range cats {
			rows = append(rows, []string{pop, c.String(), itoa(f[c])})
		}
	}
	add("cellular_ipdev", b.Cellular.DevCategories)
	add("noncellular_ipdev", b.NonCell.DevCategories)
	add("noncellular_ipcpe", b.NonCell.CPECategories)
	return rows
}

func (b *Bundle) csvFunnel() [][]string {
	var rows [][]string
	for _, asn := range sortedASNs(b.NonCell.PerAS) {
		as := b.NonCell.PerAS[asn]
		rows = append(rows, []string{itoa(int(asn)), itoa(as.Sessions),
			itoa(as.Candidates), itoa(as.CPEBlocks), strconv.FormatBool(as.CGN)})
	}
	return rows
}

func (b *Bundle) csvCoverage() [][]string {
	db := b.World.DB
	var rows [][]string
	for _, v := range []detect.MethodView{b.BTV, b.NonCellV, b.UnionV, b.CellV} {
		for _, pop := range []string{"routed", "pbl", "apnic"} {
			var mc detect.MethodCoverage
			switch pop {
			case "routed":
				mc = v.Against(db.RoutedPopulation())
			case "pbl":
				mc = v.Against(db.PBLPopulation())
			case "apnic":
				mc = v.Against(db.APNICPopulation())
			}
			rows = append(rows, []string{v.Name, pop, itoa(mc.PopSize), itoa(mc.Covered), itoa(mc.Positive)})
		}
	}
	return rows
}

func (b *Bundle) csvRegions() [][]string {
	var rows [][]string
	for _, st := range detect.ByRegion(b.World.DB, b.UnionV, b.CellV) {
		rows = append(rows, []string{st.Region.String(), itoa(st.EyeballTotal),
			itoa(st.EyeballCovered), itoa(st.EyeballPositive),
			itoa(st.CellularCovered), itoa(st.CellularPositive)})
	}
	return rows
}

func (b *Bundle) csvSpace() [][]string {
	var rows [][]string
	uses := []props.InternalUse{props.Use192, props.Use172, props.Use10, props.Use100, props.UseMultiple, props.UseRoutable}
	for _, u := range uses {
		rows = append(rows, []string{"cellular", u.String(), itoa(b.Space.CellularUse[u])})
	}
	for _, u := range uses {
		rows = append(rows, []string{"noncellular", u.String(), itoa(b.Space.NonCellularUse[u])})
	}
	return rows
}

func (b *Bundle) csvPortHist() [][]string {
	var rows [][]string
	for i := range b.Ports.HistPreserved.Bins {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", b.Ports.HistPreserved.BinCenter(i)),
			itoa(b.Ports.HistPreserved.Bins[i]),
			itoa(b.Ports.HistTranslated.Bins[i]),
		})
	}
	return rows
}

func (b *Bundle) csvModels() [][]string {
	models := make([]string, 0, len(b.Ports.CPEModels))
	for m := range b.Ports.CPEModels {
		models = append(models, m)
	}
	sort.Strings(models)
	var rows [][]string
	for _, m := range models {
		ms := b.Ports.CPEModels[m]
		rows = append(rows, []string{m, itoa(ms.Sessions), itoa(ms.Preserving)})
	}
	return rows
}

func (b *Bundle) csvStrategies() [][]string {
	var rows [][]string
	for _, asn := range sortedASNs(b.Ports.PerAS) {
		as := b.Ports.PerAS[asn]
		rows = append(rows, []string{itoa(int(asn)), strconv.FormatBool(as.Cellular),
			itoa(as.Strategies[props.StrategyPreservation]),
			itoa(as.Strategies[props.StrategySequential]),
			itoa(as.Strategies[props.StrategyRandom]),
			itoa(as.ChunkSize)})
	}
	return rows
}

func (b *Bundle) csvQuadrants() [][]string {
	q := b.TTLQuad
	return [][]string{
		{"true", "true", itoa(q.DetectedMismatch)},
		{"true", "false", itoa(q.DetectedMatch)},
		{"false", "true", itoa(q.UndetectedMismatch)},
		{"false", "false", itoa(q.UndetectedMatch)},
	}
}

func (b *Bundle) csvDistance() [][]string {
	var rows [][]string
	for _, cls := range []props.NetClass{props.NonCellularNoCGN, props.NonCellularCGN, props.CellularCGN} {
		f := b.Distance.PerClass[cls]
		for hop := 1; hop <= props.DistanceBucketMax; hop++ {
			if f[hop] > 0 {
				rows = append(rows, []string{cls.String(), itoa(hop), itoa(f[hop])})
			}
		}
	}
	return rows
}

func (b *Bundle) csvTimeouts() [][]string {
	var rows [][]string
	add := func(group string, xs []float64) {
		for _, v := range xs {
			rows = append(rows, []string{group, fmt.Sprintf("%.0f", v)})
		}
	}
	add("cellular_cgn_per_as", b.Timeouts.CellularPerAS)
	add("noncellular_cgn_per_as", b.Timeouts.NonCellularPerAS)
	add("cpe_per_session", b.Timeouts.CPEPerSession)
	return rows
}

func (b *Bundle) csvSTUN() [][]string {
	var rows [][]string
	order := []stun.NATClass{stun.ClassSymmetric, stun.ClassPortRestricted, stun.ClassAddressRestricted, stun.ClassFullCone}
	add := func(pop string, f stats.Freq[stun.NATClass]) {
		for _, c := range order {
			rows = append(rows, []string{pop, c.String(), itoa(f[c])})
		}
	}
	add("cpe_sessions", b.STUN.CPESessions)
	add("cellular_cgn_ases", b.STUN.CellularASes)
	add("noncellular_cgn_ases", b.STUN.NonCellularASes)
	return rows
}

func sortedASNs[V any](m map[uint32]V) []uint32 {
	out := make([]uint32, 0, len(m))
	for asn := range m {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
