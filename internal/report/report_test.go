package report

import (
	"strings"
	"testing"

	"cgn/internal/internet"
)

// collectSmall runs one campaign over the Small scenario, shared across
// the renderer tests.
var cached *Bundle

func bundle(t *testing.T) *Bundle {
	t.Helper()
	if cached == nil {
		cached = Collect(internet.Build(internet.Small()))
	}
	return cached
}

func TestAllRendersEveryExperiment(t *testing.T) {
	out := bundle(t).All()
	for _, want := range []string{
		"E01 / Figure 1", "E02 / Table 2", "E03 / Table 3", "E04 / Figure 3",
		"E05 / Figure 4", "E06 / Table 4", "E07 / Figure 5", "E08 / Table 5",
		"E09 / Figure 6", "E10 / Figure 7", "E11 / Figure 8", "E12 / Figure 9",
		"E13 / Table 7", "E14 / Figure 11", "E15 / Figure 12", "E16 / Figure 13",
		"E17 / beyond the paper", "E18 / Figure 8",
		"E19 — adversarial traffic x defense matrix", "Ground truth scoring",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("All() output missing %q", want)
		}
	}
}

func TestE01MatchesSurveyMarginals(t *testing.T) {
	out := bundle(t).E01()
	// 28 deployed of 75 = 37.3%.
	if !strings.Contains(out, "37.3%") {
		t.Errorf("E01 missing CGN-deployed share:\n%s", out)
	}
}

func TestE02HasCounts(t *testing.T) {
	b := bundle(t)
	out := b.E02()
	if !strings.Contains(out, "Queried") || !strings.Contains(out, "Learned") {
		t.Errorf("E02 malformed:\n%s", out)
	}
	if len(b.Crawl.Queried) == 0 {
		t.Error("empty crawl dataset")
	}
}

func TestE08CoverageShape(t *testing.T) {
	b := bundle(t)
	// Cellular detection rate among covered cellular ASes should be
	// high, like the paper's >90%.
	mc := b.CellV.Against(b.World.DB.CellularPopulation())
	if mc.Covered == 0 {
		t.Fatal("no cellular coverage")
	}
	if mc.PositiveFrac() < 0.5 {
		t.Errorf("cellular positive rate = %.2f, want the high-rate shape", mc.PositiveFrac())
	}
}

func TestScoresPrecision(t *testing.T) {
	b := bundle(t)
	truth := b.World.CGNTruth()
	s := b.UnionV.ScoreAgainstTruth(truth)
	if s.TruePositive == 0 {
		t.Error("union found no true CGNs")
	}
	if s.Precision() < 0.8 {
		t.Errorf("union precision = %.2f (fp=%d)", s.Precision(), s.FalsePositive)
	}
}

func TestRenderersNonEmpty(t *testing.T) {
	b := bundle(t)
	for name, fn := range map[string]func() string{
		"E03": b.E03, "E04": b.E04, "E05": b.E05, "E06": b.E06, "E07": b.E07,
		"E09": b.E09, "E10": b.E10, "E11": b.E11, "E12": b.E12, "E13": b.E13,
		"E14": b.E14, "E15": b.E15, "E16": b.E16, "E17": b.E17, "E18": b.E18,
	} {
		if out := fn(); len(out) < 20 {
			t.Errorf("%s output suspiciously short: %q", name, out)
		}
	}
}

// TestE17PortPressure checks both regimes: the default Small world is
// provisioned generously (no allocation failures, low utilization), while
// the port-starved scenario must saturate — nonzero failures and realms
// riding their port-space ceiling.
func TestE17PortPressure(t *testing.T) {
	b := bundle(t)
	p := b.Load.Pressure()
	if p.Realms == 0 {
		t.Fatal("no CGN realms analyzed")
	}
	if p.AllocFailureRate != 0 {
		t.Errorf("well-provisioned world has failure rate %v", p.AllocFailureRate)
	}

	sc, err := internet.Lookup("port-starved")
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 2
	starved := Collect(internet.Build(sc))
	sp := starved.Load.Pressure()
	if sp.AllocFailureRate == 0 || sp.Saturated == 0 {
		t.Errorf("port-starved world shows no exhaustion: %+v", sp)
	}
	if sp.MeanUtilization <= p.MeanUtilization {
		t.Errorf("starved utilization %.3f not above default %.3f", sp.MeanUtilization, p.MeanUtilization)
	}
	out := starved.E17()
	if !strings.Contains(out, "worst: AS") {
		t.Errorf("E17 missing saturated-realm rows:\n%s", out)
	}
}

// TestE18TrafficShape checks the temporal analysis end to end on the
// diurnal-week scenario: the engine must run over the world's realms,
// and the per-subscriber concurrent-port distribution must reproduce
// Figure 8's ordering (max ≫ p99 ≫ median).
func TestE18TrafficShape(t *testing.T) {
	sc, err := internet.Lookup("diurnal-week")
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 1
	b := Collect(internet.Build(sc))
	r := b.Traffic.Res
	if !r.Enabled() {
		t.Fatal("diurnal-week did not run the traffic engine")
	}
	if r.All.Max <= r.All.P99 || r.All.P99 <= r.All.Median || r.All.Median == 0 {
		t.Fatalf("Figure 8 ordering violated: max=%d p99=%d median=%d",
			r.All.Max, r.All.P99, r.All.Median)
	}
	tp := b.Traffic.Pressure()
	if !tp.Enabled || tp.MaxPorts != r.All.Max {
		t.Errorf("Pressure() summary inconsistent: %+v vs %+v", tp, r.All)
	}
	out := b.E18()
	for _, want := range []string{"ordering: max=", "day 7", "busiest: AS"} {
		if !strings.Contains(out, want) {
			t.Errorf("E18 missing %q:\n%s", want, out)
		}
	}

	// The default Small bundle runs one diurnal period and must carry a
	// nonzero E18 too (the scenario enables the engine by default).
	if !bundle(t).Traffic.Res.Enabled() {
		t.Error("Small scenario's default traffic profile did not run")
	}
}

// TestCollectMatchesSequential pins the stage-concurrency refactor: the
// parallel analysis stages must render byte-identically to a fully
// sequential pass over a fresh world of the same seed.
func TestCollectMatchesSequential(t *testing.T) {
	build := func() *internet.World {
		sc := internet.Small()
		sc.Seed = 11
		return internet.Build(sc)
	}
	par := Collect(build()).All()
	seq := CollectSequential(build()).All()
	if par != seq {
		t.Error("Collect and CollectSequential render different reports for the same seed")
	}
}
