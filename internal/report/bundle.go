// Package report regenerates every table and figure of the paper's
// evaluation from a measurement campaign over a generated world. Each
// experiment has a renderer (E01..E16 — see DESIGN.md for the index);
// Collect runs the full campaign once and the renderers format its
// results, so one invocation reproduces the entire evaluation section.
package report

import (
	"cgn/internal/crawler"
	"cgn/internal/detect"
	"cgn/internal/internet"
	"cgn/internal/netalyzr"
	"cgn/internal/props"
	"cgn/internal/survey"
)

// Bundle holds one campaign's datasets and analyses.
type Bundle struct {
	World    *internet.World
	Survey   survey.Aggregate
	Crawl    *crawler.Dataset
	BT       *detect.BTResult
	Sessions []netalyzr.Session
	Cellular *detect.CellularResult
	NonCell  *detect.NonCellularResult

	// Views and the union for coverage accounting.
	BTV, CellV, NonCellV, UnionV detect.MethodView

	// Property analyses.
	Ports    *props.PortResult
	Space    *props.InternalSpaceResult
	Distance *props.DistanceResult
	Timeouts *props.TimeoutResult
	TTLQuad  props.TTLQuadrants
	STUN     *props.STUNResult
}

// Collect runs the full measurement campaign and all analyses.
func Collect(w *internet.World) *Bundle {
	b := &Bundle{World: w}
	b.Survey = survey.AggregateCorpus(survey.Corpus(w.Scenario.Seed))

	b.Crawl = w.RunCrawl(internet.DefaultCrawlOptions())
	b.BT = detect.AnalyzeBitTorrent(b.Crawl, w.BTDetectConfig())

	b.Sessions = w.RunNetalyzr()
	b.Cellular = detect.AnalyzeCellular(b.Sessions, w.Net.Global(), detect.NLConfig{})
	b.NonCell = detect.AnalyzeNonCellular(b.Sessions, w.Net.Global(), detect.NLConfig{})

	b.BTV = detect.BTView(b.BT)
	b.CellV = detect.CellularView(b.Cellular)
	b.NonCellV = detect.NonCellularView(b.NonCell)
	b.UnionV = detect.Union("BitTorrent ∪ Netalyzr", b.BTV, b.NonCellV)

	cgn := b.combinedCGNView()
	filtered := props.FilterNetworks(b.Sessions, cgn, props.MinSessionsPerNetwork)
	b.Ports = props.AnalyzePorts(b.Sessions, cgn, props.PortConfig{})
	b.Space = props.AnalyzeInternalSpace(b.Sessions, b.BT, cgn, w.Net.Global(), b.NonCell.TopCPEBlocks)
	b.Distance = props.AnalyzeDistance(filtered, cgn)
	b.Timeouts = props.AnalyzeTimeouts(filtered, cgn)
	b.TTLQuad = props.AnalyzeTTLDetection(b.Sessions)
	b.STUN = props.AnalyzeSTUN(filtered, cgn)
	return b
}

// combinedCGNView merges all three methods' positives — the verdict the
// §6 property analyses condition on.
func (b *Bundle) combinedCGNView() map[uint32]bool {
	all := detect.Union("all", b.BTV, b.CellV, b.NonCellV)
	return all.Positive
}
