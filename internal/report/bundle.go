// Package report regenerates every table and figure of the paper's
// evaluation from a measurement campaign over a generated world. Each
// experiment has a renderer (E01..E16 — see README.md for the index);
// Collect runs the full campaign once and the renderers format its
// results, so one invocation reproduces the entire evaluation section.
package report

import (
	"sync"

	"cgn/internal/crawler"
	"cgn/internal/detect"
	"cgn/internal/internet"
	"cgn/internal/netalyzr"
	"cgn/internal/props"
	"cgn/internal/survey"
)

// Bundle holds one campaign's datasets and analyses.
type Bundle struct {
	World    *internet.World
	Survey   survey.Aggregate
	Crawl    *crawler.Dataset
	BT       *detect.BTResult
	Sessions []netalyzr.Session
	Cellular *detect.CellularResult
	NonCell  *detect.NonCellularResult

	// Views and the union for coverage accounting.
	BTV, CellV, NonCellV, UnionV detect.MethodView

	// Property analyses.
	Ports    *props.PortResult
	Space    *props.InternalSpaceResult
	Distance *props.DistanceResult
	Timeouts *props.TimeoutResult
	TTLQuad  props.TTLQuadrants
	STUN     *props.STUNResult

	// Load is the E17 port-pressure snapshot of every carrier NAT.
	Load *PortLoad
	// Traffic is the E18 temporal port-usage analysis: the traffic
	// engine's run over replicas of every carrier NAT.
	Traffic *TrafficLoad
	// Adversarial is the E19 attack x defense matrix; disabled unless
	// the scenario's traffic profile offers adversarial load.
	Adversarial *AdversarialRun
	// Observe is the E21 longitudinal observation analysis: the fleet
	// engine's evolving-carrier run scored per observation window.
	Observe *ObservationRun
	// Faults is the E22 fault-injection analysis: degradation-and-
	// recovery curves under scheduled pool outages and engine restarts;
	// disabled unless the scenario schedules faults.
	Faults *FaultRun
}

// Collect runs the full measurement campaign and all analyses. The
// measurement stages execute sequentially — the crawl and the Netalyzr
// sessions translate through the same CGN devices, so interleaving them
// would race on NAT binding state and destroy the same-seed determinism
// the campaign engine depends on — but the analysis stages, which are
// pure functions over the collected datasets, run concurrently.
// CollectSequential produces a byte-identical Bundle on one goroutine.
func Collect(w *internet.World) *Bundle { return collect(w, true, CollectOptions{}) }

// CollectOptions tunes how the analyses execute.
type CollectOptions struct {
	// TrafficWorkers is the worker-pool size for the E18 traffic
	// engine's realm-parallel replay; 0 or 1 runs it sequentially.
	// Results are byte-identical at any value (the engine's determinism
	// contract), so this only trades goroutines for wall time.
	TrafficWorkers int
	// TrafficShards selects the E18 NAT engine: 0 (the default) replays
	// on the legacy single-table engine — the universe every committed
	// golden was recorded in — and any value >= 1 replays on the
	// intra-realm sharded engine. Shard counts are a pure resource knob
	// within the sharded engine (identical results at 1, 2, N), but the
	// two engines are distinct deterministic universes, so flipping
	// between 0 and >= 1 legitimately changes E18 numbers.
	TrafficShards int
}

// CollectWith is Collect with explicit resource options.
func CollectWith(w *internet.World, opts CollectOptions) *Bundle { return collect(w, true, opts) }

// CollectSequential runs the identical campaign with every stage on the
// calling goroutine. Determinism tests diff its results against
// Collect's; it is also friendlier to execution tracing.
func CollectSequential(w *internet.World) *Bundle { return collect(w, false, CollectOptions{}) }

// stages runs the given independent analysis stages, concurrently or not.
// Each stage writes only its own Bundle fields.
func stages(parallel bool, fns ...func()) {
	if !parallel {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}

func collect(w *internet.World, parallel bool, opts CollectOptions) *Bundle {
	b := &Bundle{World: w}

	// Measurement phase: single-threaded packet-level simulation.
	b.Crawl = w.RunCrawl(internet.DefaultCrawlOptions())
	b.Sessions = w.RunNetalyzr()

	// Detection phase: the survey aggregation, the BitTorrent pipeline
	// and the two Netalyzr pipelines are independent of one another.
	stages(parallel,
		func() { b.Survey = survey.AggregateCorpus(survey.Corpus(w.Scenario.Seed)) },
		func() {
			b.BT = detect.AnalyzeBitTorrent(b.Crawl, w.BTDetectConfig())
			b.BTV = detect.BTView(b.BT)
		},
		func() {
			b.Cellular = detect.AnalyzeCellular(b.Sessions, w.Net.Global(), detect.NLConfig{})
			b.CellV = detect.CellularView(b.Cellular)
		},
		func() {
			b.NonCell = detect.AnalyzeNonCellular(b.Sessions, w.Net.Global(), detect.NLConfig{})
			b.NonCellV = detect.NonCellularView(b.NonCell)
		},
	)
	b.UnionV = detect.Union("BitTorrent ∪ Netalyzr", b.BTV, b.NonCellV)

	// Property phase: every §6 analysis conditions on the combined CGN
	// verdict but is otherwise independent.
	cgn := b.combinedCGNView()
	filtered := props.FilterNetworks(b.Sessions, cgn, props.MinSessionsPerNetwork)
	stages(parallel,
		func() { b.Ports = props.AnalyzePorts(b.Sessions, cgn, props.PortConfig{}) },
		func() {
			b.Space = props.AnalyzeInternalSpace(b.Sessions, b.BT, cgn, w.Net.Global(), b.NonCell.TopCPEBlocks)
		},
		func() { b.Distance = props.AnalyzeDistance(filtered, cgn) },
		func() { b.Timeouts = props.AnalyzeTimeouts(filtered, cgn) },
		func() { b.TTLQuad = props.AnalyzeTTLDetection(b.Sessions) },
		func() { b.STUN = props.AnalyzeSTUN(filtered, cgn) },
		func() { b.Load = AnalyzePortLoad(w) },
		func() { b.Traffic = AnalyzeTrafficOpts(w, opts.TrafficWorkers, opts.TrafficShards) },
		func() { b.Adversarial = AnalyzeAdversarial(w, opts.TrafficWorkers, opts.TrafficShards) },
		func() { b.Observe = AnalyzeObservation(w, opts.TrafficWorkers) },
		func() { b.Faults = AnalyzeFaults(w, opts.TrafficWorkers, opts.TrafficShards) },
	)
	return b
}

// combinedCGNView merges all three methods' positives — the verdict the
// §6 property analyses condition on.
func (b *Bundle) combinedCGNView() map[uint32]bool {
	all := detect.Union("all", b.BTV, b.CellV, b.NonCellV)
	return all.Positive
}
