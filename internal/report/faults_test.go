package report

import (
	"reflect"
	"strings"
	"testing"

	"cgn/internal/internet"
)

// TestE22Disabled: a scenario that schedules no faults renders the
// disabled notice and leaves the dataset zero, so zero-fault worlds are
// untouched by the feature.
func TestE22Disabled(t *testing.T) {
	b := bundle(t)
	if b.Faults.Enabled {
		t.Fatalf("small scenario schedules no faults but E22 ran: %+v", b.Faults)
	}
	if out := b.E22(); !strings.Contains(out, "fault engine disabled") {
		t.Errorf("disabled E22 rendered unexpectedly:\n%s", out)
	}
	if p := b.Faults.Pressure(); p.Enabled {
		t.Errorf("disabled run produced pressure: %+v", p)
	}
}

// TestE22DegradationAndRecovery is the acceptance run: on the
// pool-outage world the severity grid must show a failure rate during
// the outage at or above the pre-fault baseline, recovery within the
// run after restoration, disrupted flows on the fault transitions, and
// byte-identical results at any workers x shards.
func TestE22DegradationAndRecovery(t *testing.T) {
	sc, err := internet.Lookup("pool-outage")
	if err != nil {
		t.Fatal(err)
	}
	w := internet.Build(sc)
	fr := CollectWith(w, internetFaultOpts()).Faults
	// baseline + LaneFracs x OutageFracs grid + restart row.
	wantCells := 1 + len(sc.Faults.LaneFracs)*len(sc.Faults.OutageFracs) + 1
	if !fr.Enabled || len(fr.Cells) != wantCells {
		t.Fatalf("fault grid incomplete (want %d cells): %+v", wantCells, fr)
	}
	base := fr.Cell("baseline (no faults)")
	if base == nil || base.FaultEvents != 0 || len(base.Deg.Attempts) != 0 {
		t.Fatalf("baseline row ran faults: %+v", base)
	}

	h := fr.Harshest()
	if h == nil || h.OutageTicks == 0 {
		t.Fatalf("no harshest outage cell: %+v", fr.Cells)
	}
	for _, c := range fr.Cells[1:] {
		if c.FaultEvents == 0 {
			t.Errorf("fault row %q applied no transitions: %+v", c.Name, c)
		}
		if c.DegradedRate < c.BaselineRate {
			t.Errorf("fault row %q degraded below its baseline: %.4f vs %.4f",
				c.Name, c.DegradedRate, c.BaselineRate)
		}
	}
	if h.DegradedRate <= h.BaselineRate {
		t.Errorf("harshest outage did not degrade: during %.4f vs pre %.4f",
			h.DegradedRate, h.BaselineRate)
	}
	if h.RecoveryTicks < 0 {
		t.Errorf("harshest cell never recovered within the run: %+v", h)
	}
	var disrupted uint64
	for _, c := range fr.Cells {
		disrupted += c.Disrupted
	}
	if disrupted == 0 {
		t.Error("no flows disrupted by any fault transition")
	}
	if rs := fr.Cell("engine restart (reboot)"); rs == nil || !rs.Restart {
		t.Errorf("restart row missing: %+v", fr.Cells)
	}

	// Workers and shards are pure resource knobs: everything but the
	// recorded shard count must be identical at any combination.
	for _, alt := range []struct{ workers, shards int }{{1, 1}, {3, 5}} {
		again := AnalyzeFaults(w, alt.workers, alt.shards)
		norm, again2 := *fr, *again
		norm.Shards, again2.Shards = 0, 0
		if !reflect.DeepEqual(norm, again2) {
			t.Fatalf("E22 differs at workers=%d shards=%d", alt.workers, alt.shards)
		}
	}

	b := &Bundle{Faults: fr}
	out := b.E22()
	for _, want := range []string{
		"baseline (no faults)", "engine restart (reboot)",
		"outage window ticks", "recovery threshold",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("E22 render missing %q:\n%s", want, out)
		}
	}

	p := fr.Pressure()
	if !p.Enabled || p.BaselineFailRate != h.BaselineRate ||
		p.OutageFailRate != h.DegradedRate || p.RecoveryTicks != h.RecoveryTicks ||
		p.Disrupted != disrupted {
		t.Errorf("pressure summary inconsistent with harshest cell: %+v vs %+v", p, h)
	}
}

// internetFaultOpts is the collected-run option set the acceptance test
// replays under: a parallel realm pool on the sharded engine.
func internetFaultOpts() CollectOptions {
	return CollectOptions{TrafficWorkers: 4, TrafficShards: 2}
}
