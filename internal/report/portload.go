package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"cgn/internal/internet"
	"cgn/internal/nat"
	"cgn/internal/stats"
)

// PortLoadRow is one CGN realm's port-resource outcome after the campaign.
type PortLoadRow struct {
	ASN      uint32
	Cellular bool
	Realm    int
	Stats    nat.PortStats
	// CustomersPerIP is the realm's subscriber-to-external-IP ratio, the
	// multiplexing axis of §6.2.
	CustomersPerIP float64
}

// PortLoadBucket aggregates realms whose customers-per-external-IP ratio
// falls in (previous bound, UpTo].
type PortLoadBucket struct {
	UpTo            int
	Realms          int
	MeanUtilization float64
	MeanFailRate    float64
	Failures        uint64
}

// PortLoad is the E17 dataset: per-realm rows plus the bucketed
// utilization/failure curves versus customers per external IP.
type PortLoad struct {
	Rows    []PortLoadRow
	Buckets []PortLoadBucket
}

// portLoadBounds are the inclusive customers-per-IP bucket upper bounds;
// the last bucket is open-ended.
var portLoadBounds = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 1 << 30}

// AnalyzePortLoad snapshots every carrier NAT's port-resource state. It
// walks w.CGNs in build order, so output is deterministic for a seed.
func AnalyzePortLoad(w *internet.World) *PortLoad {
	pl := &PortLoad{}
	type acc struct {
		realms   int
		util     float64
		failRate float64
		failures uint64
	}
	accs := make([]acc, len(portLoadBounds))
	for _, d := range w.CGNs {
		st := d.Dev.NAT.PortStats()
		row := PortLoadRow{ASN: d.ASN, Cellular: d.Cellular, Realm: d.Realm, Stats: st}
		if st.ExternalIPs > 0 {
			row.CustomersPerIP = float64(st.Subscribers) / float64(st.ExternalIPs)
		}
		pl.Rows = append(pl.Rows, row)
		for i, bound := range portLoadBounds {
			if row.CustomersPerIP <= float64(bound) {
				accs[i].realms++
				accs[i].util += st.Utilization()
				accs[i].failRate += st.FailureRate()
				accs[i].failures += st.Failures()
				break
			}
		}
	}
	for i, a := range accs {
		if a.realms == 0 {
			continue
		}
		pl.Buckets = append(pl.Buckets, PortLoadBucket{
			UpTo:            portLoadBounds[i],
			Realms:          a.realms,
			MeanUtilization: a.util / float64(a.realms),
			MeanFailRate:    a.failRate / float64(a.realms),
			Failures:        a.failures,
		})
	}
	return pl
}

// PortPressure is the scalar summary sweep aggregation carries per world.
type PortPressure struct {
	// Realms is the carrier NAT count; Saturated counts realms with at
	// least one allocation failure.
	Realms    int
	Saturated int
	// MeanUtilization averages peak port-space utilization over realms.
	MeanUtilization float64
	// AllocFailureRate is global: all failures over all attempts.
	AllocFailureRate float64
}

// Pressure folds the per-realm rows into the sweep summary.
func (pl *PortLoad) Pressure() PortPressure {
	var p PortPressure
	var util float64
	var allocs, failures uint64
	for _, r := range pl.Rows {
		p.Realms++
		util += r.Stats.Utilization()
		allocs += r.Stats.Allocs
		failures += r.Stats.Failures()
		if r.Stats.Failures() > 0 {
			p.Saturated++
		}
	}
	if p.Realms > 0 {
		p.MeanUtilization = util / float64(p.Realms)
	}
	if total := allocs + failures; total > 0 {
		p.AllocFailureRate = float64(failures) / float64(total)
	}
	return p
}

// E17 renders the port-pressure analysis: utilization and
// allocation-failure curves versus customers per external IP. The paper
// derives this trade-off analytically (§6.2: users per IP versus chunk
// size); the simulator measures it, including the exhaustion regime no
// vantage point could ethically probe on a production CGN.
func (b *Bundle) E17() string {
	pl := b.Load
	var sb strings.Builder
	sb.WriteString("E17 / beyond the paper — port pressure vs customers per external IP\n")
	if len(pl.Rows) == 0 {
		sb.WriteString("  (no CGN realms in this world)\n")
		return sb.String()
	}
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "cust/IP\trealms\tpeak util\t\tfail rate\t\tfailures")
		for _, bk := range pl.Buckets {
			label := fmt.Sprintf("<=%d", bk.UpTo)
			if bk.UpTo >= 1<<30 {
				label = ">256"
			}
			fmt.Fprintf(w, "%s\t%d\t%.1f%%\t%s\t%.1f%%\t%s\t%d\n",
				label, bk.Realms,
				100*bk.MeanUtilization, stats.Bar(bk.MeanUtilization, 20),
				100*bk.MeanFailRate, stats.Bar(bk.MeanFailRate, 20),
				bk.Failures)
		}
	}))

	p := pl.Pressure()
	sb.WriteString(fmt.Sprintf("  realms: %d (%d saturated)  mean peak utilization: %.1f%%  allocation-failure rate: %.2f%%\n",
		p.Realms, p.Saturated, 100*p.MeanUtilization, 100*p.AllocFailureRate))

	// The most saturated realms, for the exhaustion narrative.
	worst := make([]PortLoadRow, len(pl.Rows))
	copy(worst, pl.Rows)
	sort.SliceStable(worst, func(i, j int) bool {
		return worst[i].Stats.FailureRate() > worst[j].Stats.FailureRate()
	})
	shown := 0
	for _, r := range worst {
		if r.Stats.Failures() == 0 || shown == 3 {
			break
		}
		kind := "eyeball"
		if r.Cellular {
			kind = "cellular"
		}
		sb.WriteString(fmt.Sprintf("  worst: AS%d realm %d (%s): %d subs on %d IPs, util %.1f%%, %d no-port + %d quota drops (fail rate %.1f%%)\n",
			r.ASN, r.Realm, kind, r.Stats.Subscribers, r.Stats.ExternalIPs,
			100*r.Stats.Utilization(), r.Stats.NoPorts, r.Stats.QuotaDrops,
			100*r.Stats.FailureRate()))
		shown++
	}
	return sb.String()
}
