package report

import (
	"fmt"
	"strings"

	"cgn/internal/fleet"
	"cgn/internal/internet"
	"cgn/internal/traffic"
)

// ObservationRun is the E21 dataset: a longitudinal fleet run over the
// world's carrier NATs — plus latent carriers that may deploy CGN
// mid-run — scored by a windowed observer at several observation
// durations.
type ObservationRun struct {
	Res *fleet.Result
	// CGNCarriers / LatentCarriers split the fleet: replicas of the
	// world's deployed CGNs (enabled at day zero) and carriers without,
	// most of which the scripted timeline enables mid-run.
	CGNCarriers    int
	LatentCarriers int
	Obs            fleet.ObservationConfig
	Err            error
}

// Enabled reports whether the experiment ran.
func (o *ObservationRun) Enabled() bool { return o.Res != nil && o.Res.Days > 0 }

// AnalyzeObservation runs the E21 longitudinal fleet simulation: every
// deployed carrier NAT of the world is replayed (configuration and
// device seed, capped population) as a day-zero CGN carrier, joined by
// latent carriers without CGN; a deterministic scripted timeline then
// evolves the fleet — late-onset enables, disables, pool
// re-provisionings, growth, churn — over the scenario's observation
// horizon, and the fleet's windowed observer scores detection
// precision/recall per observation duration. Like E18 this is a pure
// stage-parallel function of the world: fresh engines, campaign state
// untouched. workers sizes the fleet's realm pool and never affects
// results.
func AnalyzeObservation(w *internet.World, workers int) *ObservationRun {
	spec := w.Scenario.Observation
	if !spec.Enabled() {
		return &ObservationRun{}
	}
	subCap := spec.SubscribersPerRealm
	if subCap == 0 {
		subCap = 16
	}
	var carriers []fleet.CarrierSpec
	for _, d := range w.CGNs {
		subs := d.Dev.NAT.PortStats().Subscribers
		if subs > subCap {
			subs = subCap
		}
		if subs < 4 {
			subs = 4
		}
		carriers = append(carriers, fleet.CarrierSpec{
			ID:          fmt.Sprintf("AS%d/%d", d.ASN, d.Realm),
			Cellular:    d.Cellular,
			NAT:         d.Dev.NAT.Config(),
			Subscribers: subs,
			CGNEnabled:  true,
		})
	}
	nCGN := len(carriers)
	seed := w.Scenario.Seed ^ 0x0E21_0B5E_12F1
	latent := spec.LatentCarriers
	if latent == 0 {
		latent = nCGN/2 + 4
	}
	// Latent carriers get synthetic NAT templates — they have no device
	// in the world; the template only matters once the timeline enables
	// them.
	for i, s := range fleet.SyntheticFleet(seed, latent, subCap) {
		s.ID = fmt.Sprintf("latent%02d", i)
		s.CGNEnabled = false
		carriers = append(carriers, s)
	}
	dayTicks := spec.DayTicks
	if dayTicks == 0 {
		dayTicks = 48
	}
	cfg := fleet.Config{
		Seed:     seed,
		Days:     spec.Days,
		Profile:  traffic.Profile{DayTicks: dayTicks},
		Carriers: carriers,
		Timeline: fleet.ScriptTimeline(seed, carriers, spec.Days),
		Obs: fleet.ObservationConfig{
			Windows:      spec.Windows,
			VantageProb:  spec.VantageProb,
			NoiseProb:    spec.NoiseProb,
			ThresholdPer: spec.ThresholdPer,
		},
		Workers: workers,
	}
	res, err := fleet.Run(cfg)
	return &ObservationRun{
		Res:            res,
		CGNCarriers:    nCGN,
		LatentCarriers: latent,
		Obs:            cfg.Obs.WithDefaults(),
		Err:            err,
	}
}

// ObservePressure is the scalar E21 summary the sweep aggregation
// carries per world: detection quality at the shortest and longest
// scored windows.
type ObservePressure struct {
	Enabled                 bool
	ShortWindow, LongWindow int
	ShortRecall, LongRecall float64
	ShortPrec, LongPrec     float64
}

// Pressure folds the fleet result into the sweep summary.
func (o *ObservationRun) Pressure() ObservePressure {
	if !o.Enabled() || len(o.Res.Windows) == 0 {
		return ObservePressure{}
	}
	first, last := o.Res.Windows[0], o.Res.Windows[len(o.Res.Windows)-1]
	return ObservePressure{
		Enabled:     true,
		ShortWindow: first.Days, LongWindow: last.Days,
		ShortRecall: first.Recall, LongRecall: last.Recall,
		ShortPrec: first.Precision, LongPrec: last.Precision,
	}
}

// E21 renders detection precision/recall as a function of observation
// duration: the evolving-fleet run's shape, the per-window confusion
// table, and the longitudinal finding — recall grows with watching
// time, because late-onset deployments and sparsely sampled vantage
// points only accumulate evidence over weeks.
func (b *Bundle) E21() string {
	o := b.Observe
	var sb strings.Builder
	sb.WriteString("E21 — detection precision/recall vs observation duration\n")
	if o.Err != nil {
		sb.WriteString(fmt.Sprintf("  (fleet run failed: %v)\n", o.Err))
		return sb.String()
	}
	if !o.Enabled() {
		sb.WriteString("  (longitudinal observation disabled: Scenario.Observation.Days = 0)\n")
		return sb.String()
	}
	r := o.Res
	sb.WriteString(fmt.Sprintf("  fleet: %d carriers (%d CGN at day 0, %d latent), %d virtual days, %d timeline events applied\n",
		r.Carriers, o.CGNCarriers, o.LatentCarriers, r.Days, r.EventsApplied))
	sb.WriteString(fmt.Sprintf("  flows: %d mappings created, %d expired, %d refreshes, %d allocation failures; %d subscribers at end\n",
		r.Created, r.Expired, r.Refreshes, r.Failures, r.SubscribersEnd))
	sb.WriteString(fmt.Sprintf("  observer: vantage hit %.0f%%/day on active CGN, noise %.1f%%/day; declare CGN at >= max(1, W/%d) positive days in the last W\n",
		100*o.Obs.VantageProb, 100*o.Obs.NoiseProb, o.Obs.ThresholdPer))
	sb.WriteString("  window  threshold    tp    fp    fn    tn  precision  recall     f1\n")
	for _, w := range r.Windows {
		sb.WriteString(fmt.Sprintf("  %4dd  %9d  %4d  %4d  %4d  %4d      %.3f   %.3f  %.3f\n",
			w.Days, w.Threshold, w.TP, w.FP, w.FN, w.TN, w.Precision, w.Recall, w.F1))
	}
	if n := len(r.Windows); n > 0 {
		first, last := r.Windows[0], r.Windows[n-1]
		sb.WriteString(fmt.Sprintf("  finding: recall %.3f after %d day(s) -> %.3f after %d days (precision %.3f -> %.3f)\n",
			first.Recall, first.Days, last.Recall, last.Days, first.Precision, last.Precision))
		sb.WriteString("  a snapshot misses late-onset and sparsely-sampled deployments that weeks of watching accumulate\n")
	}
	return sb.String()
}
