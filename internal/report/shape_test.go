package report

import (
	"testing"

	"cgn/internal/detect"
	"cgn/internal/internet"
	"cgn/internal/props"
	"cgn/internal/stun"
)

// TestPaperShapeInvariants runs the full Paper-scenario campaign and
// asserts the qualitative claims the reproduction stands on — the shapes
// EXPERIMENTS.md documents. Thresholds are deliberately loose: they
// protect the findings, not exact numbers.
func TestPaperShapeInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper campaign in -short mode")
	}
	b := Collect(internet.Build(internet.Paper()))
	db := b.World.DB
	truth := b.World.CGNTruth()

	// §5 / Table 5: cellular CGN penetration is very high among covered
	// cellular ASes; eyeball penetration sits in the tens of percent;
	// the union detects more than either single method.
	cell := b.CellV.Against(db.CellularPopulation())
	if cell.PositiveFrac() < 0.75 {
		t.Errorf("cellular positive rate = %.2f, want the >90%%-like shape", cell.PositiveFrac())
	}
	pbl := db.PBLPopulation()
	bt := b.BTV.Against(pbl)
	union := b.UnionV.Against(pbl)
	if union.Positive <= bt.Positive {
		t.Errorf("union positives (%d) must exceed BitTorrent alone (%d)", union.Positive, bt.Positive)
	}
	if f := union.PositiveFrac(); f < 0.10 || f > 0.40 {
		t.Errorf("eyeball union positive rate = %.2f, want the 17%%-like band", f)
	}

	// Detection soundness: the paper chose conservative thresholds to
	// favor precision; ground truth lets us verify that directly.
	for _, v := range []struct {
		name string
		s    float64
	}{
		{"BitTorrent", b.BTV.ScoreAgainstTruth(truth).Precision()},
		{"cellular", b.CellV.ScoreAgainstTruth(truth).Precision()},
		{"non-cellular", b.NonCellV.ScoreAgainstTruth(truth).Precision()},
	} {
		if v.s < 0.9 {
			t.Errorf("%s precision = %.2f, conservativeness violated", v.name, v.s)
		}
	}

	// Fig 6: APNIC+RIPE eyeball penetration exceeds the other regions'.
	regions := b.regionsByName(t)
	hi := regions["APNIC"].rate + regions["RIPE"].rate
	lo := regions["ARIN"].rate + regions["LACNIC"].rate + regions["AFRINIC"].rate
	if hi/2 <= lo/3 {
		t.Errorf("scarcity-region penetration (%.2f avg) should exceed the rest (%.2f avg)", hi/2, lo/3)
	}

	// Table 7: detected-with-mismatch dominates; stateful-without-
	// translation stays marginal.
	q := b.TTLQuad
	if q.DetectedMismatch <= q.UndetectedMismatch {
		t.Errorf("quadrants inverted: %d detected vs %d undetected mismatches",
			q.DetectedMismatch, q.UndetectedMismatch)
	}
	if q.DetectedMatch*20 > q.Total() {
		t.Errorf("stateful-without-translation = %d of %d, should be marginal", q.DetectedMatch, q.Total())
	}

	// Fig 11: home-ISP NATs sit at hop 1; CGNs sit deeper.
	noCGN := b.Distance.PerClass[props.NonCellularNoCGN]
	if n := b.Distance.ASCount[props.NonCellularNoCGN]; n == 0 || float64(noCGN[1])/float64(n) < 0.8 {
		t.Errorf("no-CGN hop-1 share = %d/%d, want the 92%%-like shape", noCGN[1], n)
	}

	// Fig 12: non-cellular CGN timeouts sit below cellular ones.
	cellTO := median(b.Timeouts.CellularPerAS)
	nonTO := median(b.Timeouts.NonCellularPerAS)
	if !(nonTO < cellTO) {
		t.Errorf("timeout medians: non-cellular %.0f vs cellular %.0f, want non-cellular lower", nonTO, cellTO)
	}

	// Fig 13: symmetric CPEs are rare; symmetric CGNs are not.
	cpe := b.STUN.CPESessions
	if frac := float64(cpe[stun.ClassSymmetric]) / float64(cpe.Total()); frac > 0.10 {
		t.Errorf("symmetric CPE session share = %.2f, want rare", frac)
	}
	cgnSym := b.STUN.CellularASes[stun.ClassSymmetric] + b.STUN.NonCellularASes[stun.ClassSymmetric]
	if cgnSym == 0 {
		t.Error("no symmetric CGN ASes observed; the restrictive tail is missing")
	}

	// Fig 8 / Table 6: chunk-based allocators exist and are a minority.
	chunked := len(b.Ports.ChunkASes())
	if chunked == 0 {
		t.Error("no chunk-based ASes detected")
	}
	if chunked*2 > len(b.Ports.PerAS) {
		t.Errorf("chunked ASes = %d of %d, should be a minority", chunked, len(b.Ports.PerAS))
	}
}

type regionRate struct{ rate float64 }

func (b *Bundle) regionsByName(t *testing.T) map[string]regionRate {
	t.Helper()
	out := map[string]regionRate{}
	for _, st := range detect.ByRegion(b.World.DB, b.UnionV, b.CellV) {
		rate := 0.0
		if st.EyeballCovered > 0 {
			rate = float64(st.EyeballPositive) / float64(st.EyeballCovered)
		}
		out[st.Region.String()] = regionRate{rate: rate}
	}
	return out
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
