package report

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return rows
}

func TestWriteCSVs(t *testing.T) {
	b := bundle(t)
	dir := t.TempDir()
	paths, err := b.WriteCSVs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 15 {
		t.Errorf("wrote %d files, want 15", len(paths))
	}

	// Every file parses as CSV with a header and at least one data row.
	for _, p := range paths {
		rows := readCSV(t, p)
		if len(rows) < 2 {
			t.Errorf("%s: only %d rows", filepath.Base(p), len(rows))
		}
	}

	// Spot-check semantic integrity of a few series.
	survey := readCSV(t, filepath.Join(dir, "e01_survey.csv"))
	cgnTotal := 0
	for _, r := range survey[1:] {
		if r[0] == "cgn" {
			n, _ := strconv.Atoi(r[2])
			cgnTotal += n
		}
	}
	if cgnTotal != 75 {
		t.Errorf("survey CGN answers sum to %d, want 75", cgnTotal)
	}

	hist := readCSV(t, filepath.Join(dir, "e11a_port_hist.csv"))
	if len(hist) != 65 { // header + 64 bins
		t.Errorf("port histogram rows = %d, want 65", len(hist))
	}
	preserved := 0
	for _, r := range hist[1:] {
		n, _ := strconv.Atoi(r[1])
		preserved += n
	}
	if preserved != b.Ports.HistPreserved.Total-b.Ports.HistPreserved.Under-b.Ports.HistPreserved.Over {
		t.Errorf("histogram CSV loses samples: %d", preserved)
	}

	quad := readCSV(t, filepath.Join(dir, "e13_quadrants.csv"))
	total := 0
	for _, r := range quad[1:] {
		n, _ := strconv.Atoi(r[2])
		total += n
	}
	if total != b.TTLQuad.Total() {
		t.Errorf("quadrant CSV total = %d, want %d", total, b.TTLQuad.Total())
	}

	cov := readCSV(t, filepath.Join(dir, "e08_coverage.csv"))
	if len(cov) != 1+4*3 {
		t.Errorf("coverage rows = %d, want 13", len(cov))
	}
}

func TestWriteCSVsBadDir(t *testing.T) {
	b := bundle(t)
	if _, err := b.WriteCSVs("/proc/definitely/not/writable"); err == nil {
		t.Error("expected error for unwritable directory")
	}
}
