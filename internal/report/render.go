package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"cgn/internal/asdb"
	"cgn/internal/crawler"
	"cgn/internal/detect"
	"cgn/internal/netaddr"
	"cgn/internal/props"
	"cgn/internal/stats"
	"cgn/internal/stun"
	"cgn/internal/survey"
)

func table(fill func(w *tabwriter.Writer)) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fill(w)
	w.Flush()
	return sb.String()
}

func pct(n, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
}

// E01 renders Figure 1: survey CGN and IPv6 deployment shares.
func (b *Bundle) E01() string {
	a := b.Survey
	var sb strings.Builder
	sb.WriteString("E01 / Figure 1 — ISP survey (N=75)\n")
	sb.WriteString("(a) Carrier-Grade NAT deployment\n")
	for _, s := range []survey.CGNStatus{survey.CGNDeployed, survey.CGNConsidering, survey.CGNNoPlans} {
		sb.WriteString(fmt.Sprintf("  %-26s %3d  %s  %s\n", s, a.CGN[s], pct(a.CGN[s], a.N), stats.Bar(a.CGN.Share(s), 30)))
	}
	sb.WriteString("(b) IPv6 deployment\n")
	for _, s := range []survey.IPv6Status{survey.IPv6MostSubscribers, survey.IPv6SomeSubscribers, survey.IPv6PlansSoon, survey.IPv6NoPlans} {
		sb.WriteString(fmt.Sprintf("  %-26s %3d  %s  %s\n", s, a.IPv6[s], pct(a.IPv6[s], a.N), stats.Bar(a.IPv6.Share(s), 30)))
	}
	sb.WriteString(fmt.Sprintf("§2 scarcity: %s face scarcity, %s looming, %d report internal-space scarcity\n",
		pct(a.Scarcity, a.N), pct(a.Looming, a.N), a.InternalSc))
	sb.WriteString(fmt.Sprintf("§2 market: %d bought, %d considered; concerns: price %s, pollution %s, ownership %s\n",
		a.Bought, a.Considered, pct(a.ConcernPrice, a.N), pct(a.ConcernPollution, a.N), pct(a.ConcernOwnership, a.N)))
	return sb.String()
}

// E02 renders Table 2: crawl volume.
func (b *Bundle) E02() string {
	ds := b.Crawl
	learnedASes := map[uint32]bool{}
	for _, l := range ds.Leaks {
		learnedASes[l.LeakerASN] = true
	}
	return "E02 / Table 2 — BitTorrent DHT crawl\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "\tPeers\tUnique IPs\tASes")
		fmt.Fprintf(w, "Queried\t%d\t%d\t%d\n", len(ds.Queried), crawler.UniqueIPs(ds.Queried), ds.ASes())
		fmt.Fprintf(w, "Learned\t%d\t%d\t\n", len(ds.Learned), crawler.UniqueIPs(ds.Learned))
		fmt.Fprintf(w, "Ping-responded\t%d\t%d\t\n", len(ds.PingResponded), crawler.UniqueIPs(ds.PingResponded))
	})
}

// E03 renders Table 3: internal peers and leaking peers per range.
func (b *Bundle) E03() string {
	type rangeStat struct {
		internalTotal int
		internalIPs   map[netaddr.Addr]bool
		leakTotal     map[crawler.PeerKey]bool
		leakIPs       map[netaddr.Addr]bool
		leakASes      map[uint32]bool
	}
	per := map[netaddr.Range]*rangeStat{}
	for _, r := range netaddr.ReservedRanges {
		per[r] = &rangeStat{
			internalIPs: map[netaddr.Addr]bool{},
			leakTotal:   map[crawler.PeerKey]bool{},
			leakIPs:     map[netaddr.Addr]bool{},
			leakASes:    map[uint32]bool{},
		}
	}
	internalSeen := map[crawler.PeerKey]bool{}
	for _, l := range b.Crawl.Leaks {
		rng := netaddr.ClassifyRange(l.Internal.EP.Addr)
		st, ok := per[rng]
		if !ok {
			continue
		}
		if !internalSeen[l.Internal] {
			internalSeen[l.Internal] = true
			st.internalTotal++
		}
		st.internalIPs[l.Internal.EP.Addr] = true
		st.leakTotal[l.Leaker] = true
		st.leakIPs[l.Leaker.EP.Addr] = true
		st.leakASes[l.LeakerASN] = true
	}
	return "E03 / Table 3 — internal peers (left) and leaking peers (right)\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Range\tInternal total\tUnique IPs\tLeaking peers\tUnique IPs\tASes")
		for _, r := range netaddr.ReservedRanges {
			st := per[r]
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\n", r,
				st.internalTotal, len(st.internalIPs), len(st.leakTotal), len(st.leakIPs), len(st.leakASes))
		}
	})
}

// E04 renders Figure 3: isolated vs clustered leak structure, using the
// most extreme AS of each kind as the exemplars.
func (b *Bundle) E04() string {
	// Walk ASes in ASN order: exemplar selection breaks ties by first
	// match, and map iteration order would make same-seed reports differ.
	asns := make([]uint32, 0, len(b.BT.PerAS))
	for asn := range b.BT.PerAS {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	var isolated, clustered *detect.BTAS
	for _, asn := range asns {
		as := b.BT.PerAS[asn]
		for _, cs := range as.Clusters {
			if as.CGN {
				if clustered == nil || cs.LeakerIPs > maxLeaker(clustered) {
					clustered = as
				}
			} else if cs.LeakerIPs > 0 {
				if isolated == nil {
					isolated = as
				}
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("E04 / Figure 3 — leak graph structure\n")
	describe := func(label string, as *detect.BTAS) {
		if as == nil {
			sb.WriteString(fmt.Sprintf("  (%s exemplar: none found)\n", label))
			return
		}
		sb.WriteString(fmt.Sprintf("  %s exemplar AS%d:\n", label, as.ASN))
		for _, r := range netaddr.ReservedRanges {
			if cs, ok := as.Clusters[r]; ok {
				sb.WriteString(fmt.Sprintf("    %-5s largest cluster: %d leaker IPs x %d internal IPs\n",
					r, cs.LeakerIPs, cs.InternalIPs))
			}
		}
	}
	describe("isolated (home NAT)", isolated)
	describe("clustered (CGN)", clustered)
	return sb.String()
}

func maxLeaker(as *detect.BTAS) int {
	m := 0
	for _, cs := range as.Clusters {
		if cs.LeakerIPs > m {
			m = cs.LeakerIPs
		}
	}
	return m
}

// E05 renders Figure 4: largest-cluster sizes per AS and range, against
// the 5x5 detection boundary.
func (b *Bundle) E05() string {
	var sb strings.Builder
	sb.WriteString("E05 / Figure 4 — largest cluster per AS per range (boundary: >=5 x >=5)\n")
	for _, r := range netaddr.ReservedRanges {
		above, below := 0, 0
		maxL, maxI := 0, 0
		for _, as := range b.BT.PerAS {
			cs, ok := as.Clusters[r]
			if !ok || cs.LeakerIPs == 0 {
				continue
			}
			if cs.Positive(b.BT.Cfg) {
				above++
			} else {
				below++
			}
			if cs.LeakerIPs > maxL {
				maxL = cs.LeakerIPs
			}
			if cs.InternalIPs > maxI {
				maxI = cs.InternalIPs
			}
		}
		sb.WriteString(fmt.Sprintf("  %-5s ASes above boundary: %3d   below: %3d   max cluster: %d x %d\n",
			r, above, below, maxL, maxI))
	}
	sb.WriteString(fmt.Sprintf("  VPN-excluded internal peers: %d\n", b.BT.ExcludedVPN))
	return sb.String()
}

// E06 renders Table 4: address categories for IPdev and IPcpe.
func (b *Bundle) E06() string {
	cats := []netaddr.Category{netaddr.CatPrivate, netaddr.CatUnrouted, netaddr.CatRoutedMatch, netaddr.CatRoutedMismatch}
	cell := b.Cellular.DevCategories
	dev := b.NonCell.DevCategories
	cpe := b.NonCell.CPECategories
	return "E06 / Table 4 — address categories\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "Category\tcellular IPdev (N=%d)\tnon-cell IPdev (N=%d)\tnon-cell IPcpe (N=%d)\n",
			cell.Total(), dev.Total(), cpe.Total())
		for _, c := range cats {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", c,
				pct(cell[c], cell.Total()), pct(dev[c], dev.Total()), pct(cpe[c], cpe.Total()))
		}
	})
}

// E07 renders Figure 5: the non-cellular candidate scatter and cutoff.
func (b *Bundle) E07() string {
	var sb strings.Builder
	sb.WriteString("E07 / Figure 5 — Netalyzr non-cellular funnel (cutoff: N>=10 candidates, /24s >= 0.4N)\n")
	detected, belowDiversity, belowN := 0, 0, 0
	for _, as := range b.NonCell.PerAS {
		switch {
		case as.CGN:
			detected++
		case as.Candidates >= b.NonCell.Cfg.MinNonCellularSessions:
			belowDiversity++
		case as.Candidates > 0:
			belowN++
		}
	}
	sb.WriteString(fmt.Sprintf("  detected: %d ASes; enough candidates but low diversity: %d; too few candidates: %d\n",
		detected, belowDiversity, belowN))
	sb.WriteString(fmt.Sprintf("  sessions filtered by top-%d CPE blocks: %d\n",
		b.NonCell.Cfg.CPEBlockTopN, b.NonCell.FilteredByBlock))
	sb.WriteString("  top CPE /24 blocks: ")
	for i, p := range b.NonCell.TopCPEBlocks {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	sb.WriteString("\n")
	return sb.String()
}

// E08 renders Table 5: coverage and detection per method per population.
func (b *Bundle) E08() string {
	db := b.World.DB
	pops := []asdb.Population{db.RoutedPopulation(), db.PBLPopulation(), db.APNICPopulation()}
	views := []detect.MethodView{b.BTV, b.NonCellV, b.UnionV, b.CellV}
	return "E08 / Table 5 — coverage and CGN-positive rates\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprint(w, "Method")
		for _, p := range pops {
			fmt.Fprintf(w, "\t%s covered\tpositive", p.Name)
		}
		fmt.Fprintln(w)
		for _, v := range views {
			fmt.Fprint(w, v.Name)
			for _, p := range pops {
				mc := v.Against(p)
				fmt.Fprintf(w, "\t%d (%s)\t%d (%s)", mc.Covered, pct(mc.Covered, mc.PopSize), mc.Positive, pct(mc.Positive, mc.Covered))
			}
			fmt.Fprintln(w)
		}
	})
}

// E09 renders Figure 6: per-RIR coverage and penetration.
func (b *Bundle) E09() string {
	regions := detect.ByRegion(b.World.DB, b.UnionV, b.CellV)
	return "E09 / Figure 6 — per-RIR eyeball coverage and CGN penetration\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "RIR\teyeball covered\teyeball CGN-positive\tcellular CGN-positive")
		for _, st := range regions {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", st.Region,
				pct(st.EyeballCovered, st.EyeballTotal),
				pct(st.EyeballPositive, st.EyeballCovered),
				pct(st.CellularPositive, st.CellularCovered))
		}
	})
}

// E10 renders Figure 7: internal address space usage.
func (b *Bundle) E10() string {
	var sb strings.Builder
	sb.WriteString("E10 / Figure 7(a) — internal address space per CGN AS\n")
	uses := []props.InternalUse{props.Use192, props.Use172, props.Use10, props.Use100, props.UseMultiple, props.UseRoutable}
	row := func(label string, f stats.Freq[props.InternalUse]) {
		sb.WriteString(fmt.Sprintf("  %-12s", label))
		for _, u := range uses {
			sb.WriteString(fmt.Sprintf("  %s=%s", u, pct(f[u], f.Total())))
		}
		sb.WriteString("\n")
	}
	row("cellular", b.Space.CellularUse)
	row("non-cellular", b.Space.NonCellularUse)
	sb.WriteString("E10 / Figure 7(b) — ASes using routable space internally\n")
	for _, ru := range b.Space.RoutableASes {
		blocks := make([]string, len(ru.Blocks))
		for i, p := range ru.Blocks {
			blocks[i] = p.String()
		}
		flag := ""
		if ru.Routed {
			flag = "  [block routed by another AS]"
		}
		sb.WriteString(fmt.Sprintf("  AS%d: %s%s\n", ru.ASN, strings.Join(blocks, ", "), flag))
	}
	return sb.String()
}

// E11 renders Figure 8: port allocation properties.
func (b *Bundle) E11() string {
	var sb strings.Builder
	sb.WriteString("E11 / Figure 8(a) — ephemeral ports seen by the server (normalized, 16 bands)\n")
	renderHist := func(label string, h *stats.Histogram) {
		norm := h.Normalized()
		// Fold 64 bins into 16 display bands.
		sb.WriteString(fmt.Sprintf("  %-22s ", label))
		for band := 0; band < 16; band++ {
			v := 0.0
			for k := 0; k < 4; k++ {
				if norm[band*4+k] > v {
					v = norm[band*4+k]
				}
			}
			sb.WriteByte(" .:-=+*#@"[int(v*8)])
		}
		sb.WriteString(fmt.Sprintf("  (N=%d)\n", h.Total))
	}
	renderHist("OS ephemeral ports", b.Ports.HistPreserved)
	renderHist("CGN port renumbering", b.Ports.HistTranslated)

	sb.WriteString("E11 / Figure 8(b) — CPE port preservation by model\n")
	models := make([]string, 0, len(b.Ports.CPEModels))
	for m := range b.Ports.CPEModels {
		models = append(models, m)
	}
	sort.Strings(models)
	preservingSessions, totalSessions := 0, 0
	for _, m := range models {
		ms := b.Ports.CPEModels[m]
		sb.WriteString(fmt.Sprintf("  %-18s sessions=%4d preserving=%4d (%s)\n",
			m, ms.Sessions, ms.Preserving, pct(ms.Preserving, ms.Sessions)))
		preservingSessions += ms.Preserving
		totalSessions += ms.Sessions
	}
	sb.WriteString(fmt.Sprintf("  overall preserving sessions: %s (paper: 92%%)\n", pct(preservingSessions, totalSessions)))

	sb.WriteString("E11 / Figure 8(c) — chunk-based allocation example\n")
	if chunked := b.Ports.ChunkASes(); len(chunked) > 0 {
		as := chunked[0]
		bands := props.ChunkExample(b.Sessions, as.ASN)
		if len(bands) > 12 {
			bands = bands[:12]
		}
		sb.WriteString(fmt.Sprintf("  AS%d (estimated chunk %d ports):\n", as.ASN, as.ChunkSize))
		for i, band := range bands {
			sb.WriteString(fmt.Sprintf("    session %2d: ports %5d..%5d\n", i+1, band.Lo, band.Hi))
		}
	} else {
		sb.WriteString("  (no chunk-based AS detected)\n")
	}
	return sb.String()
}

// E12 renders Figure 9 and Table 6: port allocation strategies per AS.
func (b *Bundle) E12() string {
	var sb strings.Builder
	sb.WriteString("E12 / Figure 9 — per-AS strategy mixes\n")
	for _, cellular := range []bool{false, true} {
		pure, mixed := 0, 0
		for _, as := range b.Ports.PerAS {
			if as.Cellular != cellular {
				continue
			}
			if as.Pure() {
				pure++
			} else {
				mixed++
			}
		}
		label := "non-cellular"
		if cellular {
			label = "cellular"
		}
		sb.WriteString(fmt.Sprintf("  %-12s pure-strategy ASes: %d, mixed: %d (%s pure)\n",
			label, pure, mixed, pct(pure, pure+mixed)))
	}
	sb.WriteString("E12 / Table 6 — dominant strategy per AS\n")
	sb.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Strategy\tNon-cellular\tCellular")
		non := b.Ports.DominantShares(false)
		cel := b.Ports.DominantShares(true)
		for _, s := range []props.PortStrategy{props.StrategyPreservation, props.StrategySequential, props.StrategyRandom} {
			fmt.Fprintf(w, "%s\t%s\t%s\n", s, pct(non[s], non.Total()), pct(cel[s], cel.Total()))
		}
	}))
	chunked := b.Ports.ChunkASes()
	buckets := map[string]int{}
	for _, as := range chunked {
		switch {
		case as.ChunkSize <= 1024:
			buckets["CS <= 1K"]++
		case as.ChunkSize <= 4096:
			buckets["1K < CS <= 4K"]++
		default:
			buckets["4K < CS <= 16K"]++
		}
	}
	sb.WriteString(fmt.Sprintf("  chunk-based ASes: %d;  CS<=1K: %d,  1K<CS<=4K: %d,  4K<CS<=16K: %d\n",
		len(chunked), buckets["CS <= 1K"], buckets["1K < CS <= 4K"], buckets["4K < CS <= 16K"]))
	arbitrary := 0
	for _, as := range b.Ports.PerAS {
		if as.ArbitraryPoolingFrac() > props.PoolingArbitraryFrac {
			arbitrary++
		}
	}
	sb.WriteString(fmt.Sprintf("  arbitrary pooling: %d of %d CGN ASes (%s; paper: 21%%)\n",
		arbitrary, len(b.Ports.PerAS), pct(arbitrary, len(b.Ports.PerAS))))
	return sb.String()
}

// E13 renders Table 7: TTL enumeration detection quadrants.
func (b *Bundle) E13() string {
	q := b.TTLQuad
	return "E13 / Table 7 — TTL-driven NAT enumeration outcomes\n" + table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "\tNAT state expired\tno expiry observed")
		fmt.Fprintf(w, "IP mismatch\t%s\t%s\n", pct(q.DetectedMismatch, q.Total()), pct(q.UndetectedMismatch, q.Total()))
		fmt.Fprintf(w, "IP match\t%s\t%s\n", pct(q.DetectedMatch, q.Total()), pct(q.UndetectedMatch, q.Total()))
	})
}

// E14 renders Figure 11: most distant NAT per AS.
func (b *Bundle) E14() string {
	var sb strings.Builder
	sb.WriteString("E14 / Figure 11 — most distant NAT from the subscriber (fraction of ASes)\n")
	classes := []props.NetClass{props.NonCellularNoCGN, props.NonCellularCGN, props.CellularCGN}
	for _, cls := range classes {
		f := b.Distance.PerClass[cls]
		n := b.Distance.ASCount[cls]
		sb.WriteString(fmt.Sprintf("  %-22s (n=%d): ", cls, n))
		for hop := 1; hop <= props.DistanceBucketMax; hop++ {
			if f[hop] > 0 {
				label := fmt.Sprintf("%d", hop)
				if hop == props.DistanceBucketMax {
					label = ">=10"
				}
				sb.WriteString(fmt.Sprintf("hop%s=%s ", label, pct(f[hop], n)))
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// E15 renders Figure 12: UDP mapping timeout boxplots.
func (b *Bundle) E15() string {
	var sb strings.Builder
	sb.WriteString("E15 / Figure 12 — UDP mapping timeouts (seconds)\n")
	box := func(label string, xs []float64) {
		s := stats.Summarize(xs)
		if s.N == 0 {
			sb.WriteString(fmt.Sprintf("  %-24s (no samples)\n", label))
			return
		}
		lo, hi := s.Whiskers()
		sb.WriteString(fmt.Sprintf("  %-24s n=%-4d min=%-5.0f p25=%-5.0f median=%-5.0f p75=%-5.0f max=%-5.0f whiskers=[%.0f,%.0f]\n",
			label, s.N, s.Min, s.P25, s.Median, s.P75, s.Max, lo, hi))
	}
	box("cellular CGN (per AS)", b.Timeouts.CellularPerAS)
	box("non-cellular CGN (per AS)", b.Timeouts.NonCellularPerAS)
	box("CPE (per session)", b.Timeouts.CPEPerSession)
	return sb.String()
}

// E16 renders Figure 13: STUN mapping types.
func (b *Bundle) E16() string {
	var sb strings.Builder
	order := []stun.NATClass{stun.ClassSymmetric, stun.ClassPortRestricted, stun.ClassAddressRestricted, stun.ClassFullCone}
	render := func(label string, f stats.Freq[stun.NATClass]) {
		sb.WriteString(fmt.Sprintf("  %-24s", label))
		for _, c := range order {
			sb.WriteString(fmt.Sprintf("  %s=%s", c, pct(f[c], f.Total())))
		}
		sb.WriteString(fmt.Sprintf("  (n=%d)\n", f.Total()))
	}
	sb.WriteString("E16 / Figure 13(a) — CPE session mapping types\n")
	render("non-cellular no CGN", b.STUN.CPESessions)
	sb.WriteString("E16 / Figure 13(b) — most permissive type per CGN AS\n")
	render("cellular CGN", b.STUN.CellularASes)
	render("non-cellular CGN", b.STUN.NonCellularASes)
	return sb.String()
}

// Scores renders the ground-truth evaluation the paper could not do.
func (b *Bundle) Scores() string {
	truth := b.World.CGNTruth()
	var sb strings.Builder
	sb.WriteString("Ground truth scoring (precision/recall over covered ASes)\n")
	for _, v := range []detect.MethodView{b.BTV, b.CellV, b.NonCellV, b.UnionV} {
		s := v.ScoreAgainstTruth(truth)
		sb.WriteString(fmt.Sprintf("  %-24s tp=%-4d fp=%-3d fn=%-4d precision=%.2f recall=%.2f\n",
			v.Name, s.TruePositive, s.FalsePositive, s.FalseNegative, s.Precision(), s.Recall()))
	}
	return sb.String()
}

// All renders every experiment in order.
func (b *Bundle) All() string {
	parts := []string{
		b.E01(), b.E02(), b.E03(), b.E04(), b.E05(), b.E06(), b.E07(), b.E08(),
		b.E09(), b.E10(), b.E11(), b.E12(), b.E13(), b.E14(), b.E15(), b.E16(),
		b.E17(), b.E18(), b.E19(), b.E21(), b.E22(), b.Scores(),
	}
	return strings.Join(parts, "\n")
}
