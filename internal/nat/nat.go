// Package nat implements a behavioral model of IPv4 network address
// translators covering the full configuration space the paper measures
// (§3, §6): mapping/filtering types (symmetric, port-address restricted,
// address restricted, full cone), port allocation strategies (preservation,
// sequential, random, chunk-based random), external IP pooling (paired and
// arbitrary), mapping timeouts, hairpinning (with or without source
// rewriting), per-subscriber session limits and port quotas.
//
// The port-resource engine is built for scale: external ports live in
// per-(IP, protocol) bitmaps with free counters (O(1) take/free, word-wide
// collision scans, O(1) failure on exhausted segments), and idle-timeout
// processing runs off a deadline-bucketed expiry schedule so Sweep touches
// only entries whose recorded deadline has passed — never the full table.
// Mapping structs are slab-allocated and recycled through a freelist with
// generation-guarded handles, so steady-state churn does not allocate;
// TranslateOutRef/Refresh give flow-keepalive callers (the traffic
// engine) an O(1) refresh path that skips the table probe entirely.
// PortStats exposes utilization high-water marks and exhaustion counts
// for the port-pressure analyses.
//
// A NAT is a pure state machine: it never touches the clock or the network.
// Callers (the network simulator, or a userspace dataplane) pass the current
// time into every translation call, which keeps tests deterministic and lets
// virtual-time experiments expire mappings instantly.
package nat

import (
	"fmt"
	"math/rand"
	"time"

	"cgn/internal/metrics"
	"cgn/internal/netaddr"
)

// MappingType describes mapping reuse and inbound filtering behavior,
// ordered from most restrictive to most permissive (§3 "Mapping Types").
type MappingType uint8

// Mapping types per §3 of the paper (RFC 3489 taxonomy).
const (
	// Symmetric NATs create a distinct mapping per (source, destination)
	// pair and only accept inbound traffic from that exact destination.
	Symmetric MappingType = iota
	// PortRestricted NATs reuse one mapping per source across destinations
	// but require inbound packets to come from an IP:port the source
	// previously contacted.
	PortRestricted
	// AddressRestricted NATs require inbound packets to come from an IP the
	// source previously contacted; any port is acceptable.
	AddressRestricted
	// FullCone NATs accept inbound packets from anyone once a mapping
	// exists.
	FullCone
)

// String names the mapping type as in Figure 13.
func (m MappingType) String() string {
	switch m {
	case Symmetric:
		return "symmetric"
	case PortRestricted:
		return "port-address restricted"
	case AddressRestricted:
		return "address restricted"
	case FullCone:
		return "full cone"
	default:
		return fmt.Sprintf("MappingType(%d)", m)
	}
}

// PortAlloc selects the external port allocation strategy (§6.2).
type PortAlloc uint8

// Port allocation strategies per §6.2 of the paper.
const (
	// Preservation attempts portext == portint, falling back to the nearest
	// free higher port on collision.
	Preservation PortAlloc = iota
	// Sequential allocates ports in increasing order per external IP.
	Sequential
	// Random allocates uniformly random free ports.
	Random
	// RandomChunk assigns each subscriber a fixed contiguous port block and
	// allocates randomly within it ("chunk-based random", Fig 8c).
	RandomChunk
)

// String names the strategy as in Table 6.
func (p PortAlloc) String() string {
	switch p {
	case Preservation:
		return "preservation"
	case Sequential:
		return "sequential"
	case Random:
		return "random"
	case RandomChunk:
		return "random-chunk"
	default:
		return fmt.Sprintf("PortAlloc(%d)", p)
	}
}

// Pooling selects how external IPs are assigned to subscribers (§3).
type Pooling uint8

// Pooling behaviors per §3 of the paper.
const (
	// Paired pooling pins each internal IP to one external IP.
	Paired Pooling = iota
	// Arbitrary pooling may pick a different external IP per mapping.
	Arbitrary
)

// String names the pooling mode.
func (p Pooling) String() string {
	switch p {
	case Paired:
		return "paired"
	case Arbitrary:
		return "arbitrary"
	default:
		return fmt.Sprintf("Pooling(%d)", p)
	}
}

// EvictionPolicy selects what a NAT does when a new mapping needs a
// port and allocation fails: refuse the packet (the default, and the
// only pre-defense behavior), or reclaim the longest-idle mapping and
// retry once. Eviction is the "induced mapping drop" defense/failure
// trade-off ReDAN-style flooding forces: refusing starves the attacker
// and the victim alike, evicting keeps allocations flowing at the cost
// of cutting short whoever has been quiet longest.
type EvictionPolicy uint8

// Eviction policies.
const (
	// EvictNone refuses the allocation (DropNoPorts).
	EvictNone EvictionPolicy = iota
	// EvictOldestIdle drops the live mapping with the earliest expiry
	// deadline (the longest-idle one, timeout-adjusted) and retries the
	// allocation once.
	EvictOldestIdle
)

// String names the eviction policy.
func (p EvictionPolicy) String() string {
	switch p {
	case EvictNone:
		return "refuse"
	case EvictOldestIdle:
		return "evict-oldest-idle"
	default:
		return fmt.Sprintf("EvictionPolicy(%d)", p)
	}
}

// HairpinMode controls how packets addressed from inside to the NAT's own
// external addresses are handled (§3 "Hairpinning").
type HairpinMode uint8

// Hairpin modes.
const (
	// HairpinOff drops inside-to-external-pool packets.
	HairpinOff HairpinMode = iota
	// HairpinTranslate forwards them with the source rewritten to the
	// sender's external mapping (the RFC-recommended behavior).
	HairpinTranslate
	// HairpinPreserveSource forwards them with the internal source left in
	// place. This is the behavior that lets hosts behind the same NAT learn
	// each other's internal endpoints, which the paper's BitTorrent
	// methodology depends on (§4.1 calibration).
	HairpinPreserveSource
)

// String names the hairpin mode.
func (h HairpinMode) String() string {
	switch h {
	case HairpinOff:
		return "off"
	case HairpinTranslate:
		return "translate"
	case HairpinPreserveSource:
		return "preserve-source"
	default:
		return fmt.Sprintf("HairpinMode(%d)", h)
	}
}

// Config parameterizes a NAT instance.
type Config struct {
	// Name labels the NAT in logs and metrics (e.g. "AS65001-cgn").
	Name string

	// Type is the mapping/filtering behavior.
	Type MappingType

	// PortAlloc is the external port selection strategy.
	PortAlloc PortAlloc

	// ChunkSize is the per-subscriber port block size for RandomChunk
	// (e.g. 512, 1024, 4096). Must be a power of two.
	ChunkSize int

	// Pooling selects paired or arbitrary external IP use.
	Pooling Pooling

	// ExternalIPs is the public address pool. Must be non-empty.
	ExternalIPs []netaddr.Addr

	// UDPTimeout and TCPTimeout bound mapping idle lifetimes. The paper
	// observes UDP timeouts of 10–200+ seconds (Fig 12); RFC minimums are
	// 120 s UDP and 2 h TCP.
	UDPTimeout time.Duration
	TCPTimeout time.Duration

	// RefreshOnInbound extends mappings when inbound packets traverse them
	// (outbound always refreshes). Most deployed NATs do both.
	RefreshOnInbound bool

	// Hairpin controls same-NAT host-to-host traffic.
	Hairpin HairpinMode

	// MaxSessionsPerSubscriber caps concurrent mappings per internal IP;
	// 0 means unlimited. The survey reports limits as low as 512 (§2).
	MaxSessionsPerSubscriber int

	// PortQuotaPerSubscriber caps the distinct external port numbers one
	// internal IP may hold concurrently; 0 means unlimited. This models
	// the per-subscriber port-block provisioning of §6.2 (and the quotas
	// "Tracking the Big NAT" observes): unlike the session limit — an
	// abuse bound on the translation table — the quota is a resource
	// reservation, so a UDP and a TCP mapping sharing one port number
	// consume one unit of it, and exceeding it yields the distinct
	// DropPortQuota exhaustion verdict that the port-pressure reports
	// account separately.
	PortQuotaPerSubscriber int

	// PortLo and PortHi bound the allocatable external port range,
	// inclusive. Zero values default to 1024 and 65535. CGNs translating
	// ports use the whole space, which is the Fig 8(a) signal.
	PortLo, PortHi uint16

	// AllocRatePerSec, when positive, rate-limits mapping creation per
	// subscriber through a token bucket: a subscriber earns
	// AllocRatePerSec tokens per (virtual) second up to AllocBurst, and
	// every new-mapping attempt spends one. Exhausted buckets yield
	// DropRateLimited. This is the flood defense: a port-allocation
	// flood runs orders of magnitude above legitimate arrival rates, so
	// a bucket sized above the legitimate rate caps the attacker's port
	// consumption without touching well-behaved subscribers. Bucket
	// state rides the subscriber table and is captured by Snapshot, so
	// checkpoint/restore cuts stay byte-identical.
	AllocRatePerSec float64

	// AllocBurst is the token-bucket depth; 0 defaults to 16 when the
	// limiter is enabled.
	AllocBurst int

	// Eviction selects the behavior when port allocation fails: refuse
	// (EvictNone, the default) or evict the longest-idle mapping and
	// retry once (EvictOldestIdle).
	Eviction EvictionPolicy

	// Seed makes the NAT's random choices reproducible.
	Seed int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.PortLo == 0 {
		out.PortLo = 1024
	}
	if out.PortHi == 0 {
		out.PortHi = 65535
	}
	if out.UDPTimeout == 0 {
		out.UDPTimeout = 2 * time.Minute
	}
	if out.TCPTimeout == 0 {
		out.TCPTimeout = 2 * time.Hour
	}
	if out.ChunkSize == 0 {
		out.ChunkSize = 2048
	}
	if out.AllocRatePerSec > 0 && out.AllocBurst == 0 {
		out.AllocBurst = 16
	}
	return out
}

// Verdict is the outcome of a translation attempt.
type Verdict uint8

// Translation verdicts.
const (
	// Ok: the packet was translated and may be forwarded.
	Ok Verdict = iota
	// DropNoMapping: inbound packet with no matching mapping.
	DropNoMapping
	// DropFiltered: inbound packet rejected by the filtering policy.
	DropFiltered
	// DropNoPorts: outbound packet could not be allocated an external port.
	DropNoPorts
	// DropSessionLimit: subscriber exceeded MaxSessionsPerSubscriber.
	DropSessionLimit
	// DropHairpin: hairpin traffic with hairpinning disabled.
	DropHairpin
	// DropPortQuota: outbound packet rejected because the subscriber
	// exhausted its per-subscriber port quota.
	DropPortQuota
	// DropRateLimited: outbound packet rejected because the subscriber's
	// allocation token bucket (AllocRatePerSec) is empty.
	DropRateLimited
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Ok:
		return "ok"
	case DropNoMapping:
		return "drop-no-mapping"
	case DropFiltered:
		return "drop-filtered"
	case DropNoPorts:
		return "drop-no-ports"
	case DropSessionLimit:
		return "drop-session-limit"
	case DropHairpin:
		return "drop-hairpin"
	case DropPortQuota:
		return "drop-port-quota"
	case DropRateLimited:
		return "drop-rate-limited"
	default:
		return fmt.Sprintf("Verdict(%d)", v)
	}
}

// Mapping is one translation table entry. Field order is deliberate:
// the first cache line holds everything the per-packet paths touch —
// the memo checks (dead, key), the keepalive fast path and the sweep
// (dead, gen, lastActive, Proto), and drop's teardown (key, Int, Ext) —
// so a refresh or an expiry costs one line fill, not three.
type Mapping struct {
	// dead marks a mapping already removed from the tables; the expiry
	// schedule skips its stale entry lazily instead of searching for it.
	dead  bool
	Proto netaddr.Proto
	// subGen/subSlot memoize the owner's subscriber-table slot (valid
	// while subGen matches the table's growth counter), so teardown
	// reaches the session count without re-probing. They pack into what
	// would otherwise be struct padding.
	subGen  uint16
	subSlot uint32
	// gen counts this struct's incarnations: drop bumps it, so a stale
	// expiry-schedule entry or MappingRef from before a recycle can never
	// be mistaken for the struct's current tenant.
	gen uint64
	// lastActive drives expiry, as Unix nanoseconds: the expiry math is
	// pure int64 arithmetic on the hot path, and the stamps cost 8 bytes
	// each in the slab instead of time.Time's 24.
	lastActive int64
	// key is the byInt index this mapping lives under.
	key intKey
	// Int is the internal (subscriber-side) endpoint.
	Int netaddr.Endpoint
	// Ext is the allocated external endpoint.
	Ext netaddr.Endpoint
	// inByExt marks the mapping as actually inserted into the inbound
	// index (see extLog); teardown skips the byExt delete otherwise. It
	// rides in the hot header's tail padding so drop stays a one-line
	// read.
	inByExt bool
	// --- cold from here: creation stamp and the destination set. ---
	created int64
	// dst0 is the first remote endpoint this mapping sent to; extraDsts,
	// allocated only when a second distinct destination appears, holds the
	// rest. The restricted filtering policies consult the set. Almost
	// every mapping only ever contacts one destination (symmetric NATs by
	// construction), so keeping the first inline makes mapping creation
	// allocation-free.
	dst0      netaddr.Endpoint
	extraDsts map[netaddr.Endpoint]bool
	// lastDst memoizes the most recent destination: steady flows revisit
	// one destination, and an Endpoint compare is far cheaper than the
	// destination-set probe on every packet.
	lastDst netaddr.Endpoint
}

// CreatedNano returns the mapping's creation time in Unix nanoseconds.
func (m *Mapping) CreatedNano() int64 { return m.created }

// LastActiveNano returns the mapping's last-activity time in Unix
// nanoseconds; LastActiveNano plus the protocol timeout is the expiry
// deadline.
func (m *Mapping) LastActiveNano() int64 { return m.lastActive }

// SentTo reports whether the mapping has contacted remote endpoint e.
func (m *Mapping) SentTo(e netaddr.Endpoint) bool { return e == m.dst0 || m.extraDsts[e] }

// SentToAddr reports whether the mapping has contacted address a on any port.
func (m *Mapping) SentToAddr(a netaddr.Addr) bool {
	if m.dst0.Addr == a {
		return true
	}
	for d := range m.extraDsts {
		if d.Addr == a {
			return true
		}
	}
	return false
}

// noteDst records d as a contacted destination. Steady flows revisit one
// destination, so the common case is a single compare; the set only
// grows (and extraDsts only allocates) on a genuinely new destination.
func (m *Mapping) noteDst(d netaddr.Endpoint) {
	if d == m.lastDst {
		return
	}
	if d != m.dst0 && !m.extraDsts[d] {
		if m.extraDsts == nil {
			m.extraDsts = make(map[netaddr.Endpoint]bool, 2)
		}
		m.extraDsts[d] = true
	}
	m.lastDst = d
}

// intKey indexes byInt. The translation tables are probed, inserted and
// deleted on every mapping lifecycle event, so keys are bit-packed: an
// (addr, port) endpoint is 48 bits and the protocol one more, which
// fits (proto, endpoint) in one word. A two-word struct hashes in a
// single AES block where the unpacked five-field struct walked the
// generic hash path.
type intKey struct {
	// lo packs the protocol (bits 48+) and the internal source endpoint
	// (addr<<16 | port).
	lo uint64
	// hi packs the destination endpoint, set only for symmetric NATs,
	// which key mappings by destination as well.
	hi uint64
}

// extKeyFor packs (proto, external endpoint) into the one-word byExt
// key, hitting the runtime's fast64 map routines.
func extKeyFor(p netaddr.Proto, ext netaddr.Endpoint) uint64 {
	return uint64(p)<<48 | uint64(ext.Addr)<<16 | uint64(ext.Port)
}

// extLogEntry is one deferred byExt insertion. gen pins the entry to the
// mapping incarnation that was created: drop bumps the struct's gen, so
// a stale entry can never resurrect a dead (or recycled) mapping.
type extLogEntry struct {
	m   *Mapping
	gen uint64
}

// NAT is one translator instance.
type NAT struct {
	cfg Config
	// rng draws through rngSrc, a counting pass-through over the seeded
	// source: the draw counts are what make the engine's random state
	// snapshotable (see rng.go and snapshot.go).
	rng    *rand.Rand
	rngSrc *countingSource

	// byInt and byExt are the translation tables, open-addressing hash
	// tables specialized for the packed key shapes (table.go). byInt is
	// authoritative — every live mapping is in it. byExt, the inbound
	// index, is maintained lazily: creations append to extLog, and the
	// index catches up only when an inbound-side consumer (TranslateIn,
	// LookupByExternal) actually probes it. Outbound-only workloads —
	// the traffic engine's entire life — therefore never pay the
	// inbound index's put/del on the mapping-churn hot path.
	byInt intTable
	byExt extTable

	// extLog holds mappings created since the last byExt flush, as
	// (struct, generation) pairs: a dropped or recycled mapping's entry
	// goes stale by generation mismatch and is skipped at flush, so drop
	// never searches the log. Compaction keeps the log from outgrowing
	// the live population.
	extLog []extLogEntry

	// rrNext rotates pool members for Arbitrary pooling and initial
	// Paired assignment.
	rrNext int

	ports  *portSpace
	chunks *chunkTable

	// capacity is the allocatable (protocol, port) slot count across the
	// whole pool — immutable once constructed, so PortStats never
	// recomputes it.
	capacity int

	// exp is the expiry schedule: one entry per live mapping, bucketed
	// on the deadline recorded when the entry was pushed. Refreshes do
	// not touch it; Sweep re-buckets stale entries lazily, so
	// idle-timeout processing never walks the full table.
	exp expQueue

	// subs is the per-subscriber table: live session counts (for the
	// session limit and the port quota), the ever-mapped flag, and the
	// Paired-pooling IP pin, one probe for all three.
	subs subTable

	// lastOut and lastIn memoize the most recently translated mapping in
	// each direction: consecutive packets of one flow (an exchange, a
	// burst) skip the table probe. Entries invalidate through the dead
	// flag plus a key compare, so the memos never change behavior. (A
	// recycled struct passes the compares only when it is again the live
	// mapping registered under that very key, in which case the hit is
	// correct.)
	lastOut *Mapping
	lastIn  *Mapping

	// slab and freeMaps make mapping creation allocation-free at steady
	// state: structs are carved from slabs in batches and dropped
	// mappings are recycled through the freelist, with Mapping.gen
	// guarding every stale reference.
	slab     []Mapping
	freeMaps []*Mapping

	// onCreate and onExpire, when set, are called on every mapping
	// creation and removal. The traffic engine uses them to maintain
	// per-subscriber live-port counts incrementally instead of probing
	// the sessions map for every subscriber every tick.
	onCreate, onExpire func(m *Mapping)

	Metrics *metrics.Set
	// Counters below are hoisted out of Metrics at construction: the
	// translation hot path increments one or two per packet, and the
	// by-name lookup (a mutex plus a string-map access) costs more than
	// the translation itself at forwarding-engine speeds.
	cPktsOut, cPktsIn, cHairpin            *metrics.Counter
	cMapCreated, cMapExpired               *metrics.Counter
	cDropSession, cDropQuota, cDropNoPorts *metrics.Counter
	cDropNoMapping, cDropFiltered          *metrics.Counter
	cDropHairpin                           *metrics.Counter
	cDropRateLimited, cEvicted             *metrics.Counter
	gLive                                  *metrics.Gauge
}

// expEntry schedules one mapping for expiry at the deadline its bucket
// is keyed on. A refresh leaves the entry in place: when its bucket
// drains, Sweep re-buckets the entry at the mapping's true deadline.
// gen pins the entry to the mapping incarnation it was pushed for — a
// recycled struct's stale entries skip lazily, exactly like a dead
// mapping's.
type expEntry struct {
	m   *Mapping
	gen uint64
}

// expQueue is the expiry schedule: entries bucketed by their exact
// deadline (Unix nanoseconds), plus a small min-heap of the distinct
// deadlines present. Deadlines repeat massively — every mapping
// refreshed at one instant earns the same deadline, and tick-driven
// workloads touch thousands of mappings per instant — so the heap holds
// a handful of timestamps where an entry-per-mapping heap held
// thousands, and scheduling or lazily re-keying a mapping is an O(1)
// bucket append instead of an O(log n) sift. Buckets live in a small
// open-addressing index keyed by deadline (the same probing scheme as
// the translation tables, with backward-shift deletion when a bucket
// drains); drained bucket slices are recycled through free, keeping
// steady-state churn allocation-free.
type expQueue struct {
	slots []expSlot
	n     int
	times timeHeap
	free  [][]expEntry
}

// expSlot is one bucket-index slot: the deadline key and the entries
// scheduled for it.
type expSlot struct {
	at      int64
	used    bool
	entries []expEntry
}

func (q *expQueue) init() {
	q.slots = make([]expSlot, tableMinSlots)
}

func (q *expQueue) push(at int64, m *Mapping, gen uint64) {
	if (q.n+1)*4 > len(q.slots)*3 {
		q.grow()
	}
	mask := uint64(len(q.slots) - 1)
	i := mix64(uint64(at)) & mask
	for q.slots[i].used && q.slots[i].at != at {
		i = (i + 1) & mask
	}
	s := &q.slots[i]
	if !s.used {
		s.used = true
		s.at = at
		q.n++
		q.times.push(at)
		if k := len(q.free) - 1; k >= 0 {
			s.entries = q.free[k]
			q.free[k] = nil
			q.free = q.free[:k]
		}
	}
	s.entries = append(s.entries, expEntry{m: m, gen: gen})
}

func (q *expQueue) grow() {
	old := q.slots
	q.slots = make([]expSlot, 2*len(old))
	mask := uint64(len(q.slots) - 1)
	for i := range old {
		if !old[i].used {
			continue
		}
		j := mix64(uint64(old[i].at)) & mask
		for q.slots[j].used {
			j = (j + 1) & mask
		}
		q.slots[j] = old[i]
	}
}

// takeBucket removes and returns the earliest bucket; the caller owns
// the slice and must hand it back via release.
func (q *expQueue) takeBucket() []expEntry {
	at := q.times.pop()
	mask := uint64(len(q.slots) - 1)
	i := mix64(uint64(at)) & mask
	for !q.slots[i].used || q.slots[i].at != at {
		i = (i + 1) & mask
	}
	b := q.slots[i].entries
	// Backward-shift deletion, as in the translation tables.
	j := i
	for {
		j = (j + 1) & mask
		if !q.slots[j].used {
			break
		}
		if h := mix64(uint64(q.slots[j].at)) & mask; (j-h)&mask >= (j-i)&mask {
			q.slots[i] = q.slots[j]
			i = j
		}
	}
	q.slots[i] = expSlot{}
	q.n--
	return b
}

// release recycles a drained bucket's backing array.
func (q *expQueue) release(b []expEntry) {
	for i := range b {
		b[i] = expEntry{} // drop the *Mapping references
	}
	q.free = append(q.free, b[:0])
}

// timeHeap is a 4-ary min-heap of deadlines, hand-rolled so push/pop
// stay inlineable and allocation-free.
type timeHeap []int64

func (h *timeHeap) push(at int64) {
	*h = append(*h, at)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if s[i] >= s[parent] {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *timeHeap) pop() int64 {
	s := *h
	top := s[0]
	last := len(s) - 1
	e := s[last]
	s = s[:last]
	*h = s
	// Floyd's hole scheme: promote the smaller child until e fits.
	i := 0
	for {
		c := 4*i + 1
		if c >= len(s) {
			break
		}
		min := c
		end := c + 4
		if end > len(s) {
			end = len(s)
		}
		for c++; c < end; c++ {
			if s[c] < s[min] {
				min = c
			}
		}
		if e <= s[min] {
			break
		}
		s[i] = s[min]
		i = min
	}
	if last > 0 {
		s[i] = e
	}
	return top
}

// New builds a NAT from cfg. It panics if the configuration is unusable
// (no external IPs, bad chunk size): configs come from the world generator
// or test code, where a bad config is a programming error.
func New(cfg Config) *NAT {
	c := cfg.withDefaults()
	if len(c.ExternalIPs) == 0 {
		panic("nat: config needs at least one external IP")
	}
	if c.PortLo >= c.PortHi {
		panic(fmt.Sprintf("nat: invalid port range [%d,%d]", c.PortLo, c.PortHi))
	}
	if c.PortAlloc == RandomChunk && (c.ChunkSize&(c.ChunkSize-1)) != 0 {
		panic(fmt.Sprintf("nat: chunk size %d is not a power of two", c.ChunkSize))
	}
	src := newCountingSource(c.Seed)
	n := &NAT{
		cfg:     c,
		rng:     rand.New(src),
		rngSrc:  src,
		Metrics: metrics.NewSet(),
	}
	n.byInt.init()
	n.byExt.init()
	n.subs.init()
	n.exp.init()
	n.cPktsOut = n.Metrics.Counter("pkts_out")
	n.cPktsIn = n.Metrics.Counter("pkts_in")
	n.cHairpin = n.Metrics.Counter("pkts_hairpin")
	n.cMapCreated = n.Metrics.Counter("mappings_created")
	n.cMapExpired = n.Metrics.Counter("mappings_expired")
	n.cDropSession = n.Metrics.Counter("drop_session_limit")
	n.cDropQuota = n.Metrics.Counter("drop_port_quota")
	n.cDropNoPorts = n.Metrics.Counter("drop_no_ports")
	n.cDropNoMapping = n.Metrics.Counter("drop_no_mapping")
	n.cDropFiltered = n.Metrics.Counter("drop_filtered")
	n.cDropHairpin = n.Metrics.Counter("drop_hairpin")
	n.cDropRateLimited = n.Metrics.Counter("drop_rate_limited")
	n.cEvicted = n.Metrics.Counter("mappings_evicted")
	n.gLive = n.Metrics.Gauge("mappings_live")
	n.ports = newPortSpace(c.PortLo, c.PortHi)
	// Two transport protocols (UDP, TCP) each carry a full port range per
	// external IP; InUse/Peak count across every (IP, proto) segment.
	n.capacity = 2 * n.ports.size() * len(c.ExternalIPs)
	if c.PortAlloc == RandomChunk {
		n.chunks = newChunkTable(c.PortLo, c.PortHi, uint16(c.ChunkSize))
	}
	return n
}

// Config returns the NAT's effective configuration (defaults applied).
func (n *NAT) Config() Config { return n.cfg }

// IsExternal reports whether a belongs to the NAT's external pool; the
// simulator uses it to detect hairpin traffic.
func (n *NAT) IsExternal(a netaddr.Addr) bool {
	for _, ip := range n.cfg.ExternalIPs {
		if ip == a {
			return true
		}
	}
	return false
}

// NumMappings returns the number of live entries (including any that have
// expired but not yet been swept).
func (n *NAT) NumMappings() int { return n.byInt.n }

func (n *NAT) timeout(p netaddr.Proto) time.Duration {
	if p == netaddr.TCP {
		return n.cfg.TCPTimeout
	}
	return n.cfg.UDPTimeout
}

func (n *NAT) expiredAt(m *Mapping, nowNano int64) bool {
	return nowNano-m.lastActive > int64(n.timeout(m.Proto))
}

func (n *NAT) intKeyFor(f netaddr.Flow) intKey {
	k := intKey{lo: uint64(f.Proto)<<48 | uint64(f.Src.Addr)<<16 | uint64(f.Src.Port)}
	if n.cfg.Type == Symmetric {
		k.hi = uint64(f.Dst.Addr)<<16 | uint64(f.Dst.Port)
	}
	return k
}

func (n *NAT) drop(m *Mapping) {
	// The hook sees the mapping fully intact, before any teardown.
	if n.onExpire != nil {
		n.onExpire(m)
	}
	m.dead = true
	m.gen++
	if m.inByExt {
		n.byExt.del(extKeyFor(m.Proto, m.Ext))
	}
	n.byInt.del(m.key)
	n.ports.free(m.Ext, m.Proto)
	// A live mapping implies the subscriber entry exists; the memoized
	// slot shortcuts the probe unless the table grew since creation
	// (entries only move on growth, so a matching gen proves the slot).
	var e *subEntry
	if m.subGen == n.subs.gen {
		e = &n.subs.slots[m.subSlot]
	} else {
		e = n.subs.get(m.Int.Addr)
	}
	e.sessions--
	if e.sessions == 0 {
		n.subs.live--
	}
	n.notePortFreed(e, m.Ext.Port)
	n.cMapExpired.Inc()
	n.gLive.Set(int64(n.byInt.n))
	n.freeMaps = append(n.freeMaps, m)
}

// flushExtLog brings the inbound index up to date: every live logged
// mapping is inserted, stale entries (generation mismatch — the mapping
// was dropped, possibly recycled, since logging) are skipped, and the
// log drains. Inbound-side consumers call it before probing byExt.
func (n *NAT) flushExtLog() {
	for _, e := range n.extLog {
		if e.m.gen == e.gen {
			n.byExt.put(extKeyFor(e.m.Proto, e.m.Ext), e.m)
			e.m.inByExt = true
		}
	}
	n.extLog = n.extLog[:0]
}

// compactExtLog drops stale entries in place, keeping creation order.
// Called when the log outgrows the live population, which bounds its
// footprint at O(live) with amortized O(1) work per creation.
func (n *NAT) compactExtLog() {
	w := 0
	for _, e := range n.extLog {
		if e.m.gen == e.gen {
			n.extLog[w] = e
			w++
		}
	}
	n.extLog = n.extLog[:w]
}

// mappingSlab is how many Mapping structs newMapping carves per heap
// allocation once the freelist is dry.
const mappingSlab = 256

// newMapping returns a zeroed Mapping, recycling dropped structs through
// the freelist (gen survives the reset — it is what invalidates stale
// heap entries and MappingRefs from the previous tenant) and carving
// fresh ones from slabs so steady-state churn never allocates.
func (n *NAT) newMapping() *Mapping {
	if k := len(n.freeMaps) - 1; k >= 0 {
		m := n.freeMaps[k]
		n.freeMaps[k] = nil
		n.freeMaps = n.freeMaps[:k]
		// Targeted reset: the create path overwrites every other field
		// (endpoints, key, stamps, subscriber memo), so recycling only
		// clears the two lifecycle flags and the destination overflow —
		// not the whole struct. gen survives by design.
		m.dead = false
		m.inByExt = false
		if m.extraDsts != nil {
			clear(m.extraDsts)
		}
		return m
	}
	if len(n.slab) == 0 {
		n.slab = make([]Mapping, mappingSlab)
	}
	m := &n.slab[0]
	n.slab = n.slab[1:]
	return m
}

// SetMappingHooks registers callbacks fired on every mapping creation
// and every removal (idle-timeout sweep, or expiry discovered during a
// translation). The hooks run synchronously on the goroutine driving the
// NAT, see the mapping fully intact, and must not mutate the NAT. The
// traffic engine registers them on its per-realm replicas to maintain
// per-subscriber live-port counts incrementally.
func (n *NAT) SetMappingHooks(onCreate, onExpire func(m *Mapping)) {
	n.onCreate = onCreate
	n.onExpire = onExpire
}

// TranslateOut translates an inside-to-outside packet flow. On Ok the
// returned flow carries the external source endpoint and the original
// destination.
func (n *NAT) TranslateOut(f netaddr.Flow, now time.Time) (netaddr.Flow, Verdict) {
	m, v := n.translateOut(f, now)
	if v != Ok {
		return netaddr.Flow{}, v
	}
	return netaddr.Flow{Proto: f.Proto, Src: m.Ext, Dst: f.Dst}, Ok
}

// MappingRef is a stable handle to a mapping, for callers that drive
// many flows through one NAT and want to skip the table probe on every
// keepalive (the traffic engine's per-tick refresh). The generation
// pins the handle to one incarnation: once the mapping is dropped — even
// if its struct is recycled for a new mapping — the ref goes stale and
// Refresh reports false.
type MappingRef struct {
	m   *Mapping
	gen uint64
}

// TranslateOutRef is TranslateOut returning, additionally, a stable
// handle to the flow's mapping for later Refresh calls.
func (n *NAT) TranslateOutRef(f netaddr.Flow, now time.Time) (netaddr.Flow, MappingRef, Verdict) {
	m, v := n.translateOut(f, now)
	if v != Ok {
		return netaddr.Flow{}, MappingRef{}, v
	}
	return netaddr.Flow{Proto: f.Proto, Src: m.Ext, Dst: f.Dst}, MappingRef{m: m, gen: m.gen}, Ok
}

// Refresh is the keepalive fast path: for a live handle it records dst,
// bumps LastActive and counts the packet — exactly what TranslateOut
// does for a flow whose mapping already exists — without the key
// construction, table probe or verdict machinery. The expiry schedule is
// left untouched; Sweep re-keys the mapping's entry lazily when it pops,
// so a refresh is O(1). It returns false when the handle no longer names
// a live mapping: the ref predates a drop or recycle, or the mapping
// idled out (in which case it is dropped here, like any translation
// finding an expired entry). Callers then fall back to TranslateOut,
// which re-creates the mapping through the full allocation path.
func (n *NAT) Refresh(r MappingRef, dst netaddr.Endpoint, now time.Time) bool {
	m := r.m
	if m == nil || m.dead || m.gen != r.gen {
		return false
	}
	nowNano := now.UnixNano()
	if n.expiredAt(m, nowNano) {
		n.drop(m)
		return false
	}
	// A symmetric mapping has exactly one destination by construction —
	// TranslateOut keys per (source, destination), so a different dst
	// could never reach this mapping through translation. Recording it
	// here would let inbound filtering admit traffic a symmetric NAT
	// must drop, so the destination set is left alone and only the
	// cone types track the (possibly new) destination.
	if n.cfg.Type != Symmetric {
		m.noteDst(dst)
	}
	m.lastActive = nowNano
	n.cPktsOut.Inc()
	return true
}

// translateOut is the shared outbound body: find-or-create the mapping
// for f and refresh it.
func (n *NAT) translateOut(f netaddr.Flow, now time.Time) (*Mapping, Verdict) {
	k := n.intKeyFor(f)
	nowNano := now.UnixNano()
	// One-entry memo: consecutive packets of one flow skip the byInt
	// probe. The dead flag (set by drop) and the full key compare keep
	// the shortcut exact.
	m := n.lastOut
	if m == nil || m.dead || m.key != k {
		m = n.byInt.get(k)
	}
	if m != nil && n.expiredAt(m, nowNano) {
		n.drop(m)
		m = nil
	}
	if m == nil {
		// One probe resolves everything per-subscriber: session count for
		// the limit and quota checks, the seen flag, the pooling pin, the
		// token bucket.
		e, eSlot := n.subs.ensure(f.Src.Addr)
		if lim := n.cfg.MaxSessionsPerSubscriber; lim > 0 && int(e.sessions) >= lim {
			n.cDropSession.Inc()
			return nil, DropSessionLimit
		}
		if n.cfg.AllocRatePerSec > 0 && !n.tbAllow(e, nowNano) {
			n.cDropRateLimited.Inc()
			return nil, DropRateLimited
		}
		var ext netaddr.Endpoint
		var ok bool
		if q := n.cfg.PortQuotaPerSubscriber; q > 0 && int(e.heldPorts) >= q {
			// At quota, one side-effect-free escape remains: under port
			// preservation, reusing a port number the subscriber already
			// holds (on the other protocol) reserves nothing new, so it
			// is granted when the external IP is determined without a
			// draw and the slot is free. Anything else is a refusal.
			if ip, pinned := n.pinnedExternalIP(e); pinned &&
				n.cfg.PortAlloc == Preservation &&
				e.portRefs[f.Src.Port] > 0 &&
				n.ports.isFree(ip, f.Proto, f.Src.Port) {
				n.ports.take(ip, f.Proto, f.Src.Port)
				ext, ok = netaddr.EndpointOf(ip, f.Src.Port), true
			} else {
				n.cDropQuota.Inc()
				return nil, DropPortQuota
			}
		} else {
			ext, ok = n.allocate(f, e)
			if !ok && n.cfg.Eviction == EvictOldestIdle && n.evictOldest() {
				ext, ok = n.allocate(f, e)
			}
			if !ok {
				// Counted once, after any eviction retry: an eviction
				// followed by a successful retry is not a failure.
				n.cDropNoPorts.Inc()
				return nil, DropNoPorts
			}
		}
		m = n.newMapping()
		m.Proto, m.Int, m.Ext = f.Proto, f.Src, ext
		m.dst0, m.lastDst = f.Dst, f.Dst
		m.key = k
		m.created = nowNano
		m.subGen, m.subSlot = n.subs.gen, eSlot
		n.byInt.put(k, m)
		n.extLog = append(n.extLog, extLogEntry{m, m.gen})
		if len(n.extLog) >= 64 && len(n.extLog) > 2*n.byInt.n {
			n.compactExtLog()
		}
		e.sessions++
		if e.sessions == 1 {
			n.subs.live++
		}
		n.notePortHeld(e, ext.Port)
		if !e.seen {
			e.seen = true
			n.subs.seen++
		}
		n.exp.push(nowNano+int64(n.timeout(f.Proto)), m, m.gen)
		n.cMapCreated.Inc()
		n.gLive.Set(int64(n.byInt.n))
		if n.onCreate != nil {
			n.onCreate(m)
		}
	}
	m.noteDst(f.Dst)
	m.lastActive = nowNano
	n.lastOut = m
	n.cPktsOut.Inc()
	return m, Ok
}

// TranslateIn translates an outside-to-inside packet flow addressed to one
// of the NAT's external endpoints. On Ok the returned flow carries the
// original source and the internal destination endpoint.
func (n *NAT) TranslateIn(f netaddr.Flow, now time.Time) (netaddr.Flow, Verdict) {
	// One-entry memo, mirroring TranslateOut's.
	m := n.lastIn
	if m == nil || m.dead || m.Proto != f.Proto || m.Ext != f.Dst {
		n.flushExtLog()
		m = n.byExt.get(extKeyFor(f.Proto, f.Dst))
	}
	if m != nil && n.expiredAt(m, now.UnixNano()) {
		n.drop(m)
		m = nil
	}
	if m == nil {
		n.cDropNoMapping.Inc()
		return netaddr.Flow{}, DropNoMapping
	}
	if !n.allowInbound(m, f.Src) {
		n.cDropFiltered.Inc()
		return netaddr.Flow{}, DropFiltered
	}
	if n.cfg.RefreshOnInbound {
		m.lastActive = now.UnixNano()
	}
	n.lastIn = m
	n.cPktsIn.Inc()
	return netaddr.Flow{Proto: f.Proto, Src: f.Src, Dst: m.Int}, Ok
}

func (n *NAT) allowInbound(m *Mapping, from netaddr.Endpoint) bool {
	switch n.cfg.Type {
	case FullCone:
		return true
	case AddressRestricted:
		return m.SentToAddr(from.Addr)
	case PortRestricted, Symmetric:
		// A symmetric mapping has exactly one destination, so the
		// port-restricted check degenerates to "is this the destination".
		return m.SentTo(from)
	default:
		return false
	}
}

// HairpinResult describes the two half-translations of a hairpinned packet.
type HairpinResult struct {
	// Flow is the packet as delivered to the inside destination.
	Flow netaddr.Flow
	// SourcePreserved reports that the internal source endpoint survived
	// (HairpinPreserveSource), i.e. the receiver learns an internal address.
	SourcePreserved bool
}

// Hairpin handles a packet from an inside host addressed to one of the
// NAT's external endpoints. It performs the outbound half (allocating or
// refreshing the sender's mapping), then the inbound half toward the mapped
// internal destination, applying the configured hairpin source behavior.
func (n *NAT) Hairpin(f netaddr.Flow, now time.Time) (HairpinResult, Verdict) {
	if n.cfg.Hairpin == HairpinOff {
		n.cDropHairpin.Inc()
		return HairpinResult{}, DropHairpin
	}
	out, v := n.TranslateOut(f, now)
	if v != Ok {
		return HairpinResult{}, v
	}
	// Inbound half: find the destination mapping.
	in, v := n.TranslateIn(out, now)
	if v != Ok {
		return HairpinResult{}, v
	}
	res := HairpinResult{Flow: in}
	if n.cfg.Hairpin == HairpinPreserveSource {
		res.Flow.Src = f.Src
		res.SourcePreserved = true
	}
	n.cHairpin.Inc()
	return res, Ok
}

// allocate chooses an external endpoint for a new mapping of flow f.
// e is the flow's subscriber entry, already probed by the caller.
func (n *NAT) allocate(f netaddr.Flow, e *subEntry) (netaddr.Endpoint, bool) {
	ip := n.chooseExternalIP(e)
	switch n.cfg.PortAlloc {
	case Preservation:
		if port, ok := n.ports.takePreferred(ip, f.Proto, f.Src.Port, n.rng); ok {
			return netaddr.EndpointOf(ip, port), true
		}
	case Sequential:
		seedSequentialMidCycle(n.ports, n.cfg.PortLo, ip, f.Proto, n.rng)
		if port, ok := n.ports.takeSequential(ip, f.Proto); ok {
			return netaddr.EndpointOf(ip, port), true
		}
	case Random:
		if port, ok := n.ports.takeRandom(ip, f.Proto, n.rng); ok {
			return netaddr.EndpointOf(ip, port), true
		}
	case RandomChunk:
		lo, hi, ok := n.chunks.chunkFor(ip, f.Src.Addr, n.rng)
		if !ok {
			return netaddr.Endpoint{}, false
		}
		if port, ok := n.ports.takeRandomIn(ip, f.Proto, lo, hi, n.rng); ok {
			return netaddr.EndpointOf(ip, port), true
		}
	}
	return netaddr.Endpoint{}, false
}

// notePortHeld and notePortFreed maintain the subscriber's distinct
// held-port-number refcounts — the quantity PortQuotaPerSubscriber
// bounds. A quota-less NAT skips the map entirely.
func (n *NAT) notePortHeld(e *subEntry, port uint16) {
	if n.cfg.PortQuotaPerSubscriber <= 0 {
		return
	}
	if e.portRefs == nil {
		e.portRefs = make(map[uint16]uint16, 4)
	}
	e.portRefs[port]++
	if e.portRefs[port] == 1 {
		e.heldPorts++
	}
}

func (n *NAT) notePortFreed(e *subEntry, port uint16) {
	if n.cfg.PortQuotaPerSubscriber <= 0 {
		return
	}
	if c := e.portRefs[port]; c > 1 {
		e.portRefs[port] = c - 1
	} else if c == 1 {
		delete(e.portRefs, port)
		e.heldPorts--
	}
}

// tbAllow refills the subscriber's allocation token bucket to nowNano
// and spends one token, reporting whether one was available. Pure
// virtual-time arithmetic on per-subscriber state: deterministic at any
// engine partition, and snapshot/restore-exact.
func (n *NAT) tbAllow(e *subEntry, nowNano int64) bool {
	burst := float64(n.cfg.AllocBurst)
	if !e.tbInit {
		e.tbInit = true
		e.tbTokens = burst
		e.tbLast = nowNano
	}
	if dt := nowNano - e.tbLast; dt > 0 {
		e.tbTokens += float64(dt) * n.cfg.AllocRatePerSec / 1e9
		if e.tbTokens > burst {
			e.tbTokens = burst
		}
	}
	e.tbLast = nowNano
	if e.tbTokens < 1 {
		return false
	}
	e.tbTokens--
	return true
}

// pinnedExternalIP resolves the external IP a new mapping for e would
// use, but only when that resolution has no side effects — a one-IP
// pool, or a Paired subscriber already pinned. Arbitrary pooling and
// first-contact Paired assignment draw state and report false.
func (n *NAT) pinnedExternalIP(e *subEntry) (netaddr.Addr, bool) {
	if pool := n.cfg.ExternalIPs; len(pool) == 1 {
		return pool[0], true
	}
	if n.cfg.Pooling == Paired && e.hasPaired {
		return e.paired, true
	}
	return 0, false
}

// evictOldest drops the live mapping with the earliest expiry deadline
// — the longest-idle one, timeout-adjusted — and reports whether a
// victim was found. It drains the expiry schedule in deadline order,
// exactly like Sweep: an entry's bucket key never exceeds its mapping's
// true deadline, so the first live entry found sitting at its own
// bucket key is a global minimum. Entries passed over re-bucket at
// their true deadlines, which is where lazy re-keying would have moved
// them anyway.
func (n *NAT) evictOldest() bool {
	for len(n.exp.times) > 0 {
		at := n.exp.times[0]
		bucket := n.exp.takeBucket()
		victim := -1
		for i, e := range bucket {
			if e.m.dead || e.m.gen != e.gen {
				continue
			}
			deadline := e.m.lastActive + int64(n.timeout(e.m.Proto))
			if deadline > at {
				// Refreshed since its entry was pushed.
				n.exp.push(deadline, e.m, e.gen)
				continue
			}
			// Equal-deadline candidates tie-break on the canonical
			// external-endpoint key, not bucket position: snapshot
			// restore rebuilds the schedule in mapping-table order, so
			// insertion order is not resume-stable but the key is.
			if victim < 0 || evictionKey(e.m) < evictionKey(bucket[victim].m) {
				if victim >= 0 {
					v := bucket[victim]
					n.exp.push(v.m.lastActive+int64(n.timeout(v.m.Proto)), v.m, v.gen)
				}
				victim = i
			} else {
				n.exp.push(deadline, e.m, e.gen)
			}
		}
		if victim >= 0 {
			m := bucket[victim].m
			n.exp.release(bucket)
			n.drop(m)
			n.cEvicted.Inc()
			return true
		}
		n.exp.release(bucket)
	}
	return false
}

// evictionKey orders equal-deadline eviction candidates. The external
// (proto, IP, port) triple is unique among live mappings, so the key is
// total — and it is pure mapping state, independent of how the expiry
// schedule was populated.
func evictionKey(m *Mapping) uint64 {
	return uint64(m.Ext.Addr)<<24 | uint64(m.Ext.Port)<<8 | uint64(m.Proto)
}

func (n *NAT) chooseExternalIP(e *subEntry) netaddr.Addr {
	pool := n.cfg.ExternalIPs
	if len(pool) == 1 {
		return pool[0]
	}
	if n.cfg.Pooling == Paired {
		if e.hasPaired {
			return e.paired
		}
		ip := pool[n.rrNext%len(pool)]
		n.rrNext++
		e.paired, e.hasPaired = ip, true
		return ip
	}
	// Arbitrary pooling: pick a random pool member per mapping.
	return pool[n.rng.Intn(len(pool))]
}

// Sweep removes all mappings idle past their timeout, returning how many
// were removed. The simulator calls it when virtual time jumps.
//
// Cost is O(entries whose recorded deadline has passed): whole buckets
// drain at once and only they are touched. An entry's deadline can lag
// its mapping's (a refresh bumps LastActive without touching the
// schedule), never lead it, so an entry draining before its mapping's
// true deadline is simply re-bucketed at the deadline its refreshes
// earned it — an O(1) append.
func (n *NAT) Sweep(now time.Time) int {
	removed := 0
	nowNano := now.UnixNano()
	for len(n.exp.times) > 0 && n.exp.times[0] < nowNano {
		bucket := n.exp.takeBucket()
		for _, e := range bucket {
			// A generation mismatch means the entry outlived its
			// mapping: the mapping was dropped (and its struct possibly
			// recycled for a new one, which pushed its own entry).
			if e.m.dead || e.m.gen != e.gen {
				continue
			}
			deadline := e.m.lastActive + int64(n.timeout(e.m.Proto))
			if nowNano > deadline {
				n.drop(e.m)
				removed++
				continue
			}
			// Refreshed since its entry was pushed: re-bucket at the
			// true deadline.
			n.exp.push(deadline, e.m, e.gen)
		}
		n.exp.release(bucket)
	}
	return removed
}

// PortStats is a point-in-time snapshot of the port-resource engine; the
// port-pressure reports (E17) and sweep aggregates consume it.
type PortStats struct {
	// ExternalIPs is the pool size; Capacity is the allocatable (protocol,
	// port) slots across the whole pool — UDP and TCP each contribute a
	// full port range per external IP, matching how InUse/Peak count.
	ExternalIPs int
	Capacity    int
	// InUse and Peak count taken ports across every (IP, protocol)
	// segment; Peak is the campaign's high-water mark.
	InUse int
	Peak  int
	// Subscribers counts distinct internal IPs that ever held a mapping.
	Subscribers int
	// Allocs is successful mapping creations; NoPorts and QuotaDrops are
	// the two exhaustion outcomes, RateLimited the token-bucket refusal.
	Allocs      uint64
	NoPorts     uint64
	QuotaDrops  uint64
	RateLimited uint64
	// Evictions counts mappings reclaimed by the EvictOldestIdle policy
	// to make room for a new allocation. An eviction is not a failure —
	// the retried allocation usually succeeds — but it is collateral
	// damage on whoever held the evicted mapping.
	Evictions uint64
}

// Failures returns all allocation failures: space and quota exhaustion
// plus token-bucket refusals.
func (s PortStats) Failures() uint64 { return s.NoPorts + s.QuotaDrops + s.RateLimited }

// FailureRate returns failed / attempted allocations, 0 when idle.
func (s PortStats) FailureRate() float64 {
	total := s.Allocs + s.Failures()
	if total == 0 {
		return 0
	}
	return float64(s.Failures()) / float64(total)
}

// Utilization returns the peak share of the port space ever in use.
func (s PortStats) Utilization() float64 {
	if s.Capacity == 0 {
		return 0
	}
	return float64(s.Peak) / float64(s.Capacity)
}

// PortStats snapshots the NAT's port-resource state. Capacity is cached
// at construction (the pool and port range are immutable) and the
// counters are the hoisted hot-path cells, so a snapshot costs a few
// loads — the traffic engine takes one per realm per tick.
func (n *NAT) PortStats() PortStats {
	return PortStats{
		ExternalIPs: len(n.cfg.ExternalIPs),
		Capacity:    n.capacity,
		InUse:       n.ports.inUse,
		Peak:        n.ports.peak,
		Subscribers: n.subs.seen,
		Allocs:      n.cMapCreated.Value(),
		NoPorts:     n.cDropNoPorts.Value(),
		QuotaDrops:  n.cDropQuota.Value(),
		RateLimited: n.cDropRateLimited.Value(),
		Evictions:   n.cEvicted.Value(),
	}
}

// InUsePorts returns the ports currently held — PortStats().InUse as a
// single O(1) load. The sharded traffic engine folds it per lane per
// tick instead of assembling a full PortStats per tick.
func (n *NAT) InUsePorts() int { return n.ports.inUse }

// Sessions returns the live mapping count — equivalently, the external
// ports currently held — for internal IP a, including mappings idle past
// their deadline that no Sweep or translation has dropped yet. The
// traffic engine samples it per subscriber per tick for the E18
// concurrent-port-usage analysis.
func (n *NAT) Sessions(a netaddr.Addr) int {
	if e := n.subs.get(a); e != nil {
		return int(e.sessions)
	}
	return 0
}

// forEachSession calls fn for every subscriber currently holding at
// least one live mapping, in unspecified order. The digest and the
// invariant tests consume it.
func (n *NAT) forEachSession(fn func(a netaddr.Addr, count int)) {
	n.subs.forEach(func(e *subEntry) {
		if e.sessions > 0 {
			fn(e.addr, int(e.sessions))
		}
	})
}

// liveSubscribers counts subscribers currently holding at least one live
// mapping — the size the old per-subscriber session map would have had.
func (n *NAT) liveSubscribers() int { return n.subs.live }

// subTableSlots reports the subscriber table's slot-array size; the
// footprint regression tests pin it across churn.
func (n *NAT) subTableSlots() int { return len(n.subs.slots) }

// ForEachMapping calls fn for every mapping currently in the table, in
// unspecified order. Callers that need determinism must sort what they
// collect; fn must not mutate the NAT. The traffic engine's property
// tests use it as the naive reference model: recounting the table from
// scratch and diffing against the engine's incremental counters.
func (n *NAT) ForEachMapping(fn func(m *Mapping)) {
	n.byInt.forEach(fn)
}

// DropMatching removes every live mapping the predicate selects (a nil
// predicate selects all), firing the expiry hook for each exactly as an
// idle timeout would, and returns the number removed. The fault layer
// uses it to model state loss: a pool IP going dark drops its whole
// table, a subscriber re-pinned away from a lane drops its leftovers.
// Doomed mappings are collected first and dropped after the walk, so
// the table is never mutated mid-iteration; observable state afterwards
// depends only on the set removed, never the (unspecified) walk order —
// hooks fire once per mapping, port frees are bitmap clears and quota
// releases are refcount decrements, all commutative.
func (n *NAT) DropMatching(pred func(m *Mapping) bool) int {
	doomed := make([]*Mapping, 0, n.byInt.n)
	n.byInt.forEach(func(m *Mapping) {
		if pred == nil || pred(m) {
			doomed = append(doomed, m)
		}
	})
	for _, m := range doomed {
		n.drop(m)
	}
	return len(doomed)
}

// LookupByExternal returns the live mapping behind an external endpoint.
func (n *NAT) LookupByExternal(p netaddr.Proto, ext netaddr.Endpoint, now time.Time) (*Mapping, bool) {
	n.flushExtLog()
	m := n.byExt.get(extKeyFor(p, ext))
	if m == nil || n.expiredAt(m, now.UnixNano()) {
		return nil, false
	}
	return m, true
}

// ExternalFor returns the external endpoint a (proto, internal src, dst)
// would currently map to, without creating state. Test helpers use it to
// assert pooling and preservation behavior.
func (n *NAT) ExternalFor(f netaddr.Flow, now time.Time) (netaddr.Endpoint, bool) {
	m := n.byInt.get(n.intKeyFor(f))
	if m == nil || n.expiredAt(m, now.UnixNano()) {
		return netaddr.Endpoint{}, false
	}
	return m.Ext, true
}

// View is the read-only introspection surface shared by the sequential
// *NAT and the sharded façade (*Sharded): everything an observer —
// the traffic engine's Observer hook, the reports, the differential
// tests — needs without caring how the state is partitioned.
type View interface {
	Config() Config
	NumMappings() int
	Sessions(a netaddr.Addr) int
	ForEachMapping(fn func(m *Mapping))
	PortStats() PortStats
	StateDigest() string
}

var (
	_ View = (*NAT)(nil)
	_ View = (*Sharded)(nil)
)
