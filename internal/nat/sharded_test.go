package nat

import (
	"testing"
	"time"

	"cgn/internal/netaddr"
)

func shardedConfig(ips int) Config {
	pool := make([]netaddr.Addr, ips)
	base := netaddr.MustParseAddr("203.0.113.10")
	for i := range pool {
		pool[i] = base + netaddr.Addr(i)
	}
	return Config{
		Name:        "sharded-test",
		Type:        PortRestricted,
		PortAlloc:   Random,
		Pooling:     Paired,
		ExternalIPs: pool,
		UDPTimeout:  60 * time.Second,
		PortLo:      1024,
		PortHi:      2047,
		Seed:        7,
	}
}

func subAddr(i int) netaddr.Addr {
	return netaddr.MustParseAddr("100.64.0.1") + netaddr.Addr(i)
}

func TestShardedLaneRouting(t *testing.T) {
	cfg := shardedConfig(4)
	s := NewSharded(cfg, 2)
	if s.NumLanes() != 4 || s.NumShards() != 2 {
		t.Fatalf("lanes=%d shards=%d, want 4/2", s.NumLanes(), s.NumShards())
	}
	for i := 0; i < 64; i++ {
		src := netaddr.EndpointOf(subAddr(i), uint16(4000+i))
		lane := s.LaneFor(src.Addr)
		out, v := s.TranslateOut(flowUDP(src, dstEP), t0)
		if v != Ok {
			t.Fatalf("sub %d: verdict %v", i, v)
		}
		// Outbound lands on the owning lane's external IP — the sharded
		// analogue of Paired pooling.
		if out.Src.Addr != cfg.ExternalIPs[lane] {
			t.Fatalf("sub %d: external %v, want lane %d IP %v", i, out.Src.Addr, lane, cfg.ExternalIPs[lane])
		}
		// The reply routes back through the pool IP to the subscriber.
		reply := flowUDP(dstEP, out.Src)
		in, v := s.TranslateIn(reply, t0)
		if v != Ok || in.Dst != src {
			t.Fatalf("sub %d: reply verdict %v dst %v, want Ok %v", i, v, in.Dst, src)
		}
		if got := s.Sessions(src.Addr); got != 1 {
			t.Fatalf("sub %d: sessions %d, want 1", i, got)
		}
	}
	// A destination outside the pool has no mapping anywhere.
	if _, v := s.TranslateIn(flowUDP(dstEP, netaddr.MustParseEndpoint("198.18.0.1:1234")), t0); v != DropNoMapping {
		t.Fatalf("off-pool inbound verdict %v, want DropNoMapping", v)
	}
}

func TestShardedLaneForStableAcrossShardCounts(t *testing.T) {
	cfg := shardedConfig(4)
	a := NewSharded(cfg, 1)
	b := NewSharded(cfg, 4)
	for i := 0; i < 256; i++ {
		addr := subAddr(i)
		la, lb := a.LaneFor(addr), b.LaneFor(addr)
		if la != lb {
			t.Fatalf("addr %v: lane %d at shards=1 vs %d at shards=4", addr, la, lb)
		}
		if la < 0 || la >= a.NumLanes() {
			t.Fatalf("addr %v: lane %d out of range", addr, la)
		}
		if want := la % b.NumShards(); b.ShardOf(la) != want {
			t.Fatalf("lane %d: shard %d, want %d", la, b.ShardOf(la), want)
		}
	}
}

// driveSharded runs a deterministic churn script — creations across many
// subscribers, refreshes, partial expiry, a second wave — entirely
// through the façade's routing methods.
func driveSharded(t *testing.T, s *Sharded) {
	t.Helper()
	now := t0
	refs := make([]MappingRef, 0, 128)
	for i := 0; i < 128; i++ {
		src := netaddr.EndpointOf(subAddr(i%48), uint16(5000+i))
		dst := netaddr.EndpointOf(netaddr.MustParseAddr("8.8.0.1")+netaddr.Addr(i%7), 443)
		_, r, v := s.TranslateOutRef(flowUDP(src, dst), now)
		if v != Ok {
			t.Fatalf("flow %d: verdict %v", i, v)
		}
		refs = append(refs, r)
		now = now.Add(200 * time.Millisecond)
	}
	// Keep every third mapping alive across the timeout horizon.
	now = now.Add(30 * time.Second)
	for i, r := range refs {
		if i%3 == 0 && !s.Refresh(r, netaddr.Endpoint{}, now) {
			t.Fatalf("refresh %d reported stale", i)
		}
	}
	now = now.Add(45 * time.Second)
	s.Sweep(now)
	// Second wave after the purge.
	for i := 0; i < 64; i++ {
		src := netaddr.EndpointOf(subAddr(i%48), uint16(7000+i))
		if _, v := s.TranslateOut(flowUDP(src, dstEP2), now); v != Ok {
			t.Fatalf("wave-2 flow %d: verdict %v", i, v)
		}
	}
}

// TestShardedShardCountStateIdentity is the façade-level determinism
// contract: the same script at every shard count yields byte-identical
// digests and aggregates (the traffic-engine differential covers the
// same property end to end; this pins it at the NAT layer).
func TestShardedShardCountStateIdentity(t *testing.T) {
	cfg := shardedConfig(4)
	base := NewSharded(cfg, 1)
	driveSharded(t, base)
	wantDigest := base.StateDigest()
	wantStats := base.PortStats()
	wantN := base.NumMappings()
	for _, shards := range []int{2, 3, 4, 9} {
		s := NewSharded(cfg, shards)
		driveSharded(t, s)
		if d := s.StateDigest(); d != wantDigest {
			t.Errorf("shards=%d: digest %s, want %s", shards, d, wantDigest)
		}
		if ps := s.PortStats(); ps != wantStats {
			t.Errorf("shards=%d: PortStats %+v, want %+v", shards, ps, wantStats)
		}
		if n := s.NumMappings(); n != wantN {
			t.Errorf("shards=%d: NumMappings %d, want %d", shards, n, wantN)
		}
	}
}

func TestShardedSweepShardPartition(t *testing.T) {
	cfg := shardedConfig(4)
	s := NewSharded(cfg, 3)
	for i := 0; i < 96; i++ {
		src := netaddr.EndpointOf(subAddr(i), uint16(5000+i))
		if _, v := s.TranslateOut(flowUDP(src, dstEP), t0); v != Ok {
			t.Fatalf("flow %d: verdict %v", i, v)
		}
	}
	live := s.NumMappings()
	if live != 96 {
		t.Fatalf("NumMappings = %d, want 96", live)
	}
	later := t0.Add(2 * cfg.UDPTimeout)
	removed := 0
	for shard := 0; shard < s.NumShards(); shard++ {
		removed += s.SweepShard(shard, later)
	}
	if removed != live || s.NumMappings() != 0 {
		t.Fatalf("shard sweeps removed %d of %d, %d left", removed, live, s.NumMappings())
	}
	if expired := s.CounterTotal("mappings_expired"); expired != uint64(live) {
		t.Fatalf("mappings_expired total %d, want %d", expired, live)
	}
}

func TestShardedHairpinCrossesLanes(t *testing.T) {
	cfg := shardedConfig(4)
	cfg.Type = FullCone
	cfg.Hairpin = HairpinTranslate
	s := NewSharded(cfg, 2)
	// Find two subscribers pinned to different lanes.
	a := subAddr(0)
	b := a
	for i := 1; ; i++ {
		if s.LaneFor(subAddr(i)) != s.LaneFor(a) {
			b = subAddr(i)
			break
		}
	}
	// b opens a mapping; a hairpins to its external endpoint.
	srcB := netaddr.EndpointOf(b, 4000)
	out, v := s.TranslateOut(flowUDP(srcB, dstEP), t0)
	if v != Ok {
		t.Fatalf("b outbound verdict %v", v)
	}
	res, v := s.Hairpin(flowUDP(netaddr.EndpointOf(a, 4001), out.Src), t0)
	if v != Ok {
		t.Fatalf("hairpin verdict %v", v)
	}
	if res.Flow.Dst != srcB {
		t.Fatalf("hairpin delivered to %v, want %v", res.Flow.Dst, srcB)
	}
}

// TestSubscriberChurnFootprintStable is the sessions-leak regression
// test: churning a population's mappings all the way to zero must leave
// zero live subscribers and must not grow the subscriber table without
// bound — entries persist (Paired pooling needs them) but the slot
// array reaches its population-determined size once and stays there
// through any number of churn cycles.
func TestSubscriberChurnFootprintStable(t *testing.T) {
	n := New(baseConfig())
	const subs = 200
	churn := func(portBase int) {
		now := t0
		for i := 0; i < subs; i++ {
			src := netaddr.EndpointOf(subAddr(i), uint16(portBase+i))
			if _, v := n.TranslateOut(flowUDP(src, dstEP), now); v != Ok {
				t.Fatalf("sub %d: verdict %v", i, v)
			}
		}
		if got := n.liveSubscribers(); got != subs {
			t.Fatalf("live subscribers = %d, want %d", got, subs)
		}
		n.Sweep(now.Add(2 * n.Config().UDPTimeout))
		if got := n.liveSubscribers(); got != 0 {
			t.Fatalf("after full expiry: live subscribers = %d, want 0", got)
		}
		if got := n.NumMappings(); got != 0 {
			t.Fatalf("after full expiry: %d mappings left", got)
		}
	}
	churn(4000)
	slots := n.subTableSlots()
	for cycle := 0; cycle < 20; cycle++ {
		churn(4000 + (cycle+1)*211)
		if got := n.subTableSlots(); got != slots {
			t.Fatalf("cycle %d: subscriber table grew %d -> %d slots under steady churn", cycle, slots, got)
		}
	}
}

// TestPortStatsCapacityStable pins satellite behaviour: Capacity is a
// pure function of the immutable pool and port range, cached at
// construction — identical before, during and after churn, and equal to
// the documented formula (two protocols x port range x pool size).
func TestPortStatsCapacityStable(t *testing.T) {
	cfg := shardedConfig(3)
	n := New(cfg)
	want := 2 * (int(cfg.PortHi) - int(cfg.PortLo) + 1) * len(cfg.ExternalIPs)
	if got := n.PortStats().Capacity; got != want {
		t.Fatalf("fresh Capacity = %d, want %d", got, want)
	}
	now := t0
	for cycle := 0; cycle < 5; cycle++ {
		for i := 0; i < 300; i++ {
			src := netaddr.EndpointOf(subAddr(i), uint16(4000+i))
			n.TranslateOut(flowUDP(src, dstEP), now)
		}
		if got := n.PortStats().Capacity; got != want {
			t.Fatalf("cycle %d loaded: Capacity = %d, want %d", cycle, got, want)
		}
		now = now.Add(2 * cfg.UDPTimeout)
		n.Sweep(now)
		if got := n.PortStats().Capacity; got != want {
			t.Fatalf("cycle %d drained: Capacity = %d, want %d", cycle, got, want)
		}
	}
	// The sharded façade's summed capacity matches the same formula.
	if got := NewSharded(cfg, 2).PortStats().Capacity; got != want {
		t.Fatalf("sharded Capacity = %d, want %d", got, want)
	}
}
