package nat

import (
	"fmt"
	"time"

	"cgn/internal/netaddr"
)

// Sharded is a carrier NAT partitioned for parallel execution. The unit
// of partition is the lane: one external pool IP with its own complete
// engine — bitmap port allocators, deadline-bucketed expiry queue,
// mapping slab and freelist, subscriber table, RNG stream — so lanes
// share no mutable state whatsoever. Subscribers map to lanes by a hash
// of their internal address (the sharded analogue of Paired pooling:
// every subscriber is pinned to one external IP, so chooseExternalIP is
// stable by construction), and inbound packets route by their external
// destination IP, which names the owning lane directly.
//
// Shards are an execution grouping on top: shard s owns lanes l with
// l % Shards == s, and a shard's lanes are always driven in ascending
// lane order. Because every mapping's lifecycle — allocation RNG draws,
// port-space counters, expiry buckets — is confined to its lane, and
// lane state is independent of which shard drives it, the complete
// state (and every aggregate this type reports) is byte-identical at
// any shard count. That is the determinism contract the traffic
// engine's two-level parallelism rests on: realm workers × NAT shards,
// both free to vary, one result.
//
// Concurrency: distinct shards may be driven from distinct goroutines
// (route calls touch only the lane they resolve to). The aggregation
// methods (PortStats, StateDigest, Sweep, ForEachMapping, ...) touch
// every lane and must only run while no shard worker is active — the
// traffic engine calls them between tick barriers.
type Sharded struct {
	cfg    Config
	lanes  []*NAT
	shards int
	// extLaneKeys/extLaneVals map an external pool IP to its owning lane
	// index, linear-scanned like portSpace's segment index: pool sizes
	// are a handful of entries.
	extLaneKeys []netaddr.Addr
	extLaneVals []int
	// down marks lanes taken offline by fault injection (nil until the
	// first outage, so a fault-free run carries no extra state); numDown
	// counts them, gating the failover hash out of every hot path.
	down    []bool
	numDown int
}

// shardedLaneSeedMix decorrelates per-lane RNG streams from each other
// (and from the traffic engine's realm-seed mixing, which uses a
// different odd constant).
const shardedLaneSeedMix int64 = 0x2545F4914F6CDD1D

// NewSharded builds a sharded NAT from cfg with the given shard count,
// clamped to [1, len(ExternalIPs)] — a lane is one external IP, so a
// single-IP realm cannot split further. Like New it panics on an
// unusable configuration.
//
// A Sharded is its own deterministic universe: results are identical
// across every shard count, but not to an unsharded New(cfg) — the
// single engine draws allocation randomness from one RNG stream and
// assigns Paired IPs by first-appearance round-robin, where lanes draw
// per-lane streams and pin subscribers by address hash. Callers choose
// an engine per run, not per measurement.
func NewSharded(cfg Config, shards int) *Sharded {
	c := cfg.withDefaults()
	if len(c.ExternalIPs) == 0 {
		panic("nat: config needs at least one external IP")
	}
	lanes := len(c.ExternalIPs)
	if shards < 1 {
		shards = 1
	}
	if shards > lanes {
		shards = lanes
	}
	s := &Sharded{
		cfg:         c,
		lanes:       make([]*NAT, lanes),
		shards:      shards,
		extLaneKeys: make([]netaddr.Addr, lanes),
		extLaneVals: make([]int, lanes),
	}
	for l := 0; l < lanes; l++ {
		laneCfg := c
		laneCfg.Name = fmt.Sprintf("%s/lane%d", c.Name, l)
		laneCfg.ExternalIPs = []netaddr.Addr{c.ExternalIPs[l]}
		laneCfg.Seed = c.Seed + int64(l+1)*shardedLaneSeedMix
		s.lanes[l] = New(laneCfg)
		s.extLaneKeys[l] = c.ExternalIPs[l]
		s.extLaneVals[l] = l
	}
	return s
}

// Config returns the effective configuration (defaults applied, full
// external pool).
func (s *Sharded) Config() Config { return s.cfg }

// NumShards returns the effective (clamped) shard count.
func (s *Sharded) NumShards() int { return s.shards }

// NumLanes returns the lane count — the external pool size.
func (s *Sharded) NumLanes() int { return len(s.lanes) }

// Lane returns lane l's engine. Shard workers drive their owned lanes
// through it directly; lane l belongs to shard l % NumShards, and only
// that shard's goroutine may touch it while workers run.
func (s *Sharded) Lane(l int) *NAT { return s.lanes[l] }

// LaneFor returns the lane owning internal address a. The hash depends
// only on the address and the pool size, never on the shard count.
func (s *Sharded) LaneFor(a netaddr.Addr) int {
	return int(mix64(uint64(a)) % uint64(len(s.lanes)))
}

// ShardOf returns the shard that drives lane l.
func (s *Sharded) ShardOf(l int) int { return l % s.shards }

// failoverSalt decorrelates the failover probe start from the primary
// lane hash, so an outage spreads one lane's subscribers across every
// surviving lane instead of dumping them all on one neighbor.
const failoverSalt = 0x9E6C_63D0_5443_2671

// ActiveLaneFor returns the lane currently serving internal address a:
// the primary hash lane when it is up (always, in a fault-free run),
// otherwise a deterministic failover lane — a second hash picks the
// probe start and the scan walks forward to the first lane still up.
// SetLaneDown never takes the last lane, so the probe always lands.
func (s *Sharded) ActiveLaneFor(a netaddr.Addr) int {
	l := s.LaneFor(a)
	if s.numDown == 0 || !s.down[l] {
		return l
	}
	n := len(s.lanes)
	start := int(mix64(uint64(a)^failoverSalt) % uint64(n))
	for k := 0; k < n; k++ {
		if cand := (start + k) % n; !s.down[cand] {
			return cand
		}
	}
	return l // unreachable: numDown < len(lanes) is invariant
}

// SetLaneDown takes lane l offline — the fault model for one external
// pool IP going dark. Every mapping on the lane drops (expiry hooks
// fire; flows re-establish elsewhere through the usual refresh
// fallback) and ActiveLaneFor re-pins the lane's subscribers to
// survivors until SetLaneUp. Returns the number of mappings dropped and
// whether the lane went down: the last lane standing refuses (false) —
// a carrier with its whole pool dark is a disabled carrier, which the
// caller models by other means. Aggregation-phase only, like Sweep.
func (s *Sharded) SetLaneDown(l int) (dropped int, ok bool) {
	if s.down == nil {
		s.down = make([]bool, len(s.lanes))
	}
	if s.down[l] {
		return 0, true
	}
	if s.numDown == len(s.lanes)-1 {
		return 0, false
	}
	s.down[l] = true
	s.numDown++
	return s.lanes[l].DropMatching(nil), true
}

// SetLaneUp restores lane l. The lane comes back empty (its table
// dropped when it went down) and ActiveLaneFor routes its subscribers
// home again; mappings they acquired on failover lanes live out their
// idle timeout there, reachable through Refresh's external-IP routing.
func (s *Sharded) SetLaneUp(l int) {
	if s.down != nil && s.down[l] {
		s.down[l] = false
		s.numDown--
	}
}

// LaneDown reports whether lane l is currently offline.
func (s *Sharded) LaneDown(l int) bool { return s.down != nil && s.down[l] }

// LanesDown counts lanes currently offline.
func (s *Sharded) LanesDown() int { return s.numDown }

// DownLanes returns a copy of the per-lane offline flags, or nil when
// every lane is up — the checkpoint shape, cheap to reapply through
// SetLaneDown (a restored down lane holds no mappings, so nothing
// drops).
func (s *Sharded) DownLanes() []bool {
	if s.numDown == 0 {
		return nil
	}
	out := make([]bool, len(s.down))
	copy(out, s.down)
	return out
}

// laneOfExt resolves the lane owning external pool IP a, or nil.
func (s *Sharded) laneOfExt(a netaddr.Addr) *NAT {
	for i, ip := range s.extLaneKeys {
		if ip == a {
			return s.lanes[s.extLaneVals[i]]
		}
	}
	return nil
}

// IsExternal reports whether a belongs to the external pool.
func (s *Sharded) IsExternal(a netaddr.Addr) bool { return s.laneOfExt(a) != nil }

// TranslateOut routes an outbound flow to the subscriber's active lane
// (the hash lane, or its failover while that lane is down).
func (s *Sharded) TranslateOut(f netaddr.Flow, now time.Time) (netaddr.Flow, Verdict) {
	return s.lanes[s.ActiveLaneFor(f.Src.Addr)].TranslateOut(f, now)
}

// TranslateOutRef is TranslateOut returning a stable mapping handle;
// the handle stays valid on the owning lane (Refresh re-routes by the
// mapping's external IP, so callers need not remember the lane).
func (s *Sharded) TranslateOutRef(f netaddr.Flow, now time.Time) (netaddr.Flow, MappingRef, Verdict) {
	return s.lanes[s.ActiveLaneFor(f.Src.Addr)].TranslateOutRef(f, now)
}

// TranslateIn routes an inbound flow to the lane owning its external
// destination IP. A destination outside the pool has no mapping
// anywhere, by construction.
func (s *Sharded) TranslateIn(f netaddr.Flow, now time.Time) (netaddr.Flow, Verdict) {
	lane := s.laneOfExt(f.Dst.Addr)
	if lane == nil {
		return netaddr.Flow{}, DropNoMapping
	}
	return lane.TranslateIn(f, now)
}

// Refresh routes the keepalive to the mapping's owning lane (named by
// its external IP). Stale handles report false exactly as on *NAT.
func (s *Sharded) Refresh(r MappingRef, dst netaddr.Endpoint, now time.Time) bool {
	m := r.m
	if m == nil || m.dead || m.gen != r.gen {
		return false
	}
	// A live handle's external IP always names a pool lane.
	return s.laneOfExt(m.Ext.Addr).Refresh(r, dst, now)
}

// Hairpin handles inside-to-pool traffic: the outbound half runs on the
// sender's lane, the inbound half on the lane owning the target external
// IP — lanes being one NAT's partitions, hairpinning crosses them
// freely.
func (s *Sharded) Hairpin(f netaddr.Flow, now time.Time) (HairpinResult, Verdict) {
	src := s.lanes[s.ActiveLaneFor(f.Src.Addr)]
	if s.cfg.Hairpin == HairpinOff {
		src.cDropHairpin.Inc()
		return HairpinResult{}, DropHairpin
	}
	out, v := src.TranslateOut(f, now)
	if v != Ok {
		return HairpinResult{}, v
	}
	dstLane := s.laneOfExt(out.Dst.Addr)
	if dstLane == nil {
		src.cDropNoMapping.Inc()
		return HairpinResult{}, DropNoMapping
	}
	in, v := dstLane.TranslateIn(out, now)
	if v != Ok {
		return HairpinResult{}, v
	}
	res := HairpinResult{Flow: in}
	if s.cfg.Hairpin == HairpinPreserveSource {
		res.Flow.Src = f.Src
		res.SourcePreserved = true
	}
	src.cHairpin.Inc()
	return res, Ok
}

// Sweep expires idle mappings on every lane, in lane order.
func (s *Sharded) Sweep(now time.Time) int {
	removed := 0
	for _, lane := range s.lanes {
		removed += lane.Sweep(now)
	}
	return removed
}

// SweepShard expires idle mappings on the lanes shard owns, in lane
// order. Shard workers call it concurrently — one shard, one goroutine.
func (s *Sharded) SweepShard(shard int, now time.Time) int {
	removed := 0
	for l := shard; l < len(s.lanes); l += s.shards {
		removed += s.lanes[l].Sweep(now)
	}
	return removed
}

// SetMappingHooks fans the hooks out to every lane. A hook fires on the
// goroutine driving the lane whose mapping changed; hook state must be
// partitioned accordingly (the traffic engine keys it by subscriber,
// which lanes partition).
func (s *Sharded) SetMappingHooks(onCreate, onExpire func(m *Mapping)) {
	for _, lane := range s.lanes {
		lane.SetMappingHooks(onCreate, onExpire)
	}
}

// NumMappings sums live entries across lanes.
func (s *Sharded) NumMappings() int {
	total := 0
	for _, lane := range s.lanes {
		total += lane.NumMappings()
	}
	return total
}

// Sessions returns the live mapping count for internal IP a, summed
// across lanes: normally all of a subscriber's mappings sit on its hash
// lane, but around an outage they can straddle the primary and a
// failover lane (failover allocations outliving the restoration), and
// the count must see both.
func (s *Sharded) Sessions(a netaddr.Addr) int {
	total := 0
	for _, lane := range s.lanes {
		total += lane.Sessions(a)
	}
	return total
}

// ForEachMapping walks every lane's table in lane order (order within a
// lane is unspecified, as on *NAT).
func (s *Sharded) ForEachMapping(fn func(m *Mapping)) {
	for _, lane := range s.lanes {
		lane.ForEachMapping(fn)
	}
}

// LookupByExternal resolves an external endpoint on its owning lane.
func (s *Sharded) LookupByExternal(p netaddr.Proto, ext netaddr.Endpoint, now time.Time) (*Mapping, bool) {
	lane := s.laneOfExt(ext.Addr)
	if lane == nil {
		return nil, false
	}
	return lane.LookupByExternal(p, ext, now)
}

// ExternalFor resolves a flow's current external endpoint without
// creating state. The active lane almost always holds the mapping; on a
// miss the other lanes are probed, because a flow established on a
// failover lane can outlive the primary's restoration.
func (s *Sharded) ExternalFor(f netaddr.Flow, now time.Time) (netaddr.Endpoint, bool) {
	al := s.ActiveLaneFor(f.Src.Addr)
	if ep, ok := s.lanes[al].ExternalFor(f, now); ok {
		return ep, true
	}
	for l, lane := range s.lanes {
		if l == al {
			continue
		}
		if ep, ok := lane.ExternalFor(f, now); ok {
			return ep, true
		}
	}
	return netaddr.Endpoint{}, false
}

// PortStats aggregates the lanes' snapshots: capacities, occupancy and
// counters are sums (lane state is disjoint). Peak is the sum of
// per-lane high-water marks — each lane peaks on its own schedule, so
// the sum bounds (and at shards=anything equals itself, keeping the
// digest shard-invariant) the instantaneous global peak.
func (s *Sharded) PortStats() PortStats {
	out := PortStats{ExternalIPs: len(s.lanes)}
	for _, lane := range s.lanes {
		ps := lane.PortStats()
		out.Capacity += ps.Capacity
		out.InUse += ps.InUse
		out.Peak += ps.Peak
		out.Subscribers += ps.Subscribers
		out.Allocs += ps.Allocs
		out.NoPorts += ps.NoPorts
		out.QuotaDrops += ps.QuotaDrops
		out.RateLimited += ps.RateLimited
		out.Evictions += ps.Evictions
	}
	return out
}

// CounterTotal sums a named metric counter across lanes (e.g.
// "mappings_expired"); unknown names sum fresh zero counters.
func (s *Sharded) CounterTotal(name string) uint64 {
	var total uint64
	for _, lane := range s.lanes {
		total += lane.Metrics.Counter(name).Value()
	}
	return total
}

// StateDigest hashes the union of every lane's state lines under the
// summed port-space footer. Lane states are disjoint — each lane owns
// its external IP's mappings and its hash-assigned subscribers — so the
// union is exactly the line set one table holding all lanes' mappings
// would emit, and the digest is identical at any shard count.
func (s *Sharded) StateDigest() string {
	var lines []string
	inUse, peak, seen := 0, 0, 0
	for _, lane := range s.lanes {
		lines = lane.appendDigestLines(lines)
		inUse += lane.ports.inUse
		peak += lane.ports.peak
		seen += lane.subs.seen
	}
	return digestOf(lines, inUse, peak, seen)
}
