package nat

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"cgn/internal/netaddr"
)

// StateDigest returns a deterministic SHA-256 over the NAT's complete
// translation state: every live mapping (internal and external endpoint,
// creation and last-activity times, the destination set the filtering
// policies consult) plus the per-subscriber session counts and the
// port-space occupancy. Two NATs that translated the same packet
// sequence digest identically; the forwarding engine's differential
// tests rely on exactly that to pin the compiled fast path to the
// reference walk.
func (n *NAT) StateDigest() string {
	lines := n.appendDigestLines(make([]string, 0, n.byInt.n+n.subs.live))
	return digestOf(lines, n.ports.inUse, n.ports.peak, n.subs.seen)
}

// appendDigestLines appends one line per live mapping and one per
// subscriber with live sessions, unsorted. The sharded façade collects
// lines across every lane before sorting, which is why the digest body
// is line-oriented: lane states are disjoint (each lane owns its
// external IPs and its subscribers), so the union of lane lines is
// exactly the line set an equivalent single table would emit.
func (n *NAT) appendDigestLines(lines []string) []string {
	n.byInt.forEach(func(m *Mapping) {
		dsts := make([]string, 0, 1+len(m.extraDsts))
		dsts = append(dsts, m.dst0.String())
		for d := range m.extraDsts {
			dsts = append(dsts, d.String())
		}
		sort.Strings(dsts)
		lines = append(lines, fmt.Sprintf("map %v %v->%v created=%d active=%d dsts=%s",
			m.Proto, m.Int, m.Ext, m.created, m.lastActive,
			strings.Join(dsts, ",")))
	})
	n.forEachSession(func(a netaddr.Addr, c int) {
		lines = append(lines, fmt.Sprintf("sessions %v=%d", a, c))
	})
	return lines
}

// digestOf sorts the state lines and hashes them with the port-space
// footer.
func digestOf(lines []string, inUse, peak, subscribers int) string {
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	fmt.Fprintf(h, "ports inuse=%d peak=%d subscribers=%d\n", inUse, peak, subscribers)
	return hex.EncodeToString(h.Sum(nil))
}
