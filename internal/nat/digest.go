package nat

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// StateDigest returns a deterministic SHA-256 over the NAT's complete
// translation state: every live mapping (internal and external endpoint,
// creation and last-activity times, the destination set the filtering
// policies consult) plus the per-subscriber session counts and the
// port-space occupancy. Two NATs that translated the same packet
// sequence digest identically; the forwarding engine's differential
// tests rely on exactly that to pin the compiled fast path to the
// reference walk.
func (n *NAT) StateDigest() string {
	lines := make([]string, 0, len(n.byExt)+len(n.sessions))
	for _, m := range n.byExt {
		dsts := make([]string, 0, 1+len(m.extraDsts))
		dsts = append(dsts, m.dst0.String())
		for d := range m.extraDsts {
			dsts = append(dsts, d.String())
		}
		sort.Strings(dsts)
		lines = append(lines, fmt.Sprintf("map %v %v->%v created=%d active=%d dsts=%s",
			m.Proto, m.Int, m.Ext, m.Created.UnixNano(), m.LastActive.UnixNano(),
			strings.Join(dsts, ",")))
	}
	for addr, c := range n.sessions {
		lines = append(lines, fmt.Sprintf("sessions %v=%d", addr, c))
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	fmt.Fprintf(h, "ports inuse=%d peak=%d subscribers=%d\n", n.ports.inUse, n.ports.peak, len(n.subsSeen))
	return hex.EncodeToString(h.Sum(nil))
}
