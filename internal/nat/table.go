package nat

import "cgn/internal/netaddr"

// This file holds the NAT's translation-table storage: open-addressing
// hash tables specialized per key shape. The Go runtime map is a fine
// general-purpose structure, but the translation hot path probes,
// inserts and deletes tables on every mapping lifecycle event, and at
// metro scale the generic machinery (group matching, hash interface
// calls, tombstone bookkeeping) dominated the engine's profile. These
// tables do exactly what the engine needs and nothing else: power-of-two
// slot arrays, linear probing, backward-shift deletion (no tombstones,
// so load factor never degrades under churn), and nil-value slots as the
// emptiness marker so no key value is reserved.

// mix64 is the SplitMix64 finalizer — a full-avalanche bijection that
// turns the engine's structured keys (packed endpoints, deadlines,
// addresses) into uniformly distributed slot indices.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// tableMinSlots is the initial slot-array size; tables grow by doubling
// past a 3/4 load factor.
const tableMinSlots = 16

// extTable maps packed (proto, external endpoint) keys — extKeyFor — to
// live mappings: the byExt index.
type extTable struct {
	keys []uint64
	vals []*Mapping
	n    int
}

func (t *extTable) init() {
	t.keys = make([]uint64, tableMinSlots)
	t.vals = make([]*Mapping, tableMinSlots)
}

func (t *extTable) get(k uint64) *Mapping {
	mask := uint64(len(t.keys) - 1)
	for i := mix64(k) & mask; ; i = (i + 1) & mask {
		v := t.vals[i]
		if v == nil || t.keys[i] == k {
			return v
		}
	}
}

func (t *extTable) put(k uint64, m *Mapping) {
	if (t.n+1)*4 > len(t.keys)*3 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := mix64(k) & mask
	for t.vals[i] != nil && t.keys[i] != k {
		i = (i + 1) & mask
	}
	if t.vals[i] == nil {
		t.n++
	}
	t.keys[i], t.vals[i] = k, m
}

func (t *extTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]uint64, 2*len(oldKeys))
	t.vals = make([]*Mapping, 2*len(oldVals))
	mask := uint64(len(t.keys) - 1)
	for i, v := range oldVals {
		if v == nil {
			continue
		}
		k := oldKeys[i]
		j := mix64(k) & mask
		for t.vals[j] != nil {
			j = (j + 1) & mask
		}
		t.keys[j], t.vals[j] = k, v
	}
}

// del removes k with backward-shift deletion: the hole chases displaced
// entries back toward their home slots, so probe chains stay tight and
// no tombstones accumulate however hard the table churns.
func (t *extTable) del(k uint64) {
	mask := uint64(len(t.keys) - 1)
	i := mix64(k) & mask
	for {
		if t.vals[i] == nil {
			return
		}
		if t.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if t.vals[j] == nil {
			break
		}
		// The entry at j may fill the hole at i only if its home slot is
		// cyclically outside (i, j] — otherwise moving it would strand it
		// before its home.
		if h := mix64(t.keys[j]) & mask; (j-h)&mask >= (j-i)&mask {
			t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
			i = j
		}
	}
	t.vals[i] = nil
	t.n--
}

func (t *extTable) forEach(fn func(m *Mapping)) {
	for _, v := range t.vals {
		if v != nil {
			fn(v)
		}
	}
}

// intTable maps two-word internal keys — intKey — to live mappings: the
// byInt index.
type intTable struct {
	keys []intKey
	vals []*Mapping
	n    int
}

func (t *intTable) init() {
	t.keys = make([]intKey, tableMinSlots)
	t.vals = make([]*Mapping, tableMinSlots)
}

func hashIntKey(k intKey) uint64 {
	return mix64(k.lo ^ k.hi*0x9e3779b97f4a7c15)
}

func (t *intTable) get(k intKey) *Mapping {
	mask := uint64(len(t.keys) - 1)
	for i := hashIntKey(k) & mask; ; i = (i + 1) & mask {
		v := t.vals[i]
		if v == nil || t.keys[i] == k {
			return v
		}
	}
}

func (t *intTable) put(k intKey, m *Mapping) {
	if (t.n+1)*4 > len(t.keys)*3 {
		t.grow()
	}
	mask := uint64(len(t.keys) - 1)
	i := hashIntKey(k) & mask
	for t.vals[i] != nil && t.keys[i] != k {
		i = (i + 1) & mask
	}
	if t.vals[i] == nil {
		t.n++
	}
	t.keys[i], t.vals[i] = k, m
}

func (t *intTable) grow() {
	oldKeys, oldVals := t.keys, t.vals
	t.keys = make([]intKey, 2*len(oldKeys))
	t.vals = make([]*Mapping, 2*len(oldVals))
	mask := uint64(len(t.keys) - 1)
	for i, v := range oldVals {
		if v == nil {
			continue
		}
		k := oldKeys[i]
		j := hashIntKey(k) & mask
		for t.vals[j] != nil {
			j = (j + 1) & mask
		}
		t.keys[j], t.vals[j] = k, v
	}
}

func (t *intTable) forEach(fn func(m *Mapping)) {
	for _, v := range t.vals {
		if v != nil {
			fn(v)
		}
	}
}

func (t *intTable) del(k intKey) {
	mask := uint64(len(t.keys) - 1)
	i := hashIntKey(k) & mask
	for {
		if t.vals[i] == nil {
			return
		}
		if t.keys[i] == k {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		if t.vals[j] == nil {
			break
		}
		if h := hashIntKey(t.keys[j]) & mask; (j-h)&mask >= (j-i)&mask {
			t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
			i = j
		}
	}
	t.vals[i] = nil
	t.n--
}

// subEntry is everything the NAT tracks per internal IP, merged from
// what used to be three separate maps (sessions, subsSeen, pairedExt)
// so the translation path resolves a subscriber with one probe.
type subEntry struct {
	addr netaddr.Addr
	used bool
	// seen marks subscribers that ever held a mapping (PortStats).
	seen bool
	// hasPaired/paired pin the subscriber to a pool member under Paired
	// pooling.
	hasPaired bool
	paired    netaddr.Addr
	// sessions counts live mappings, for the session limit. Unlike the
	// old map the entry survives at zero — the subscriber's paired IP
	// must persist across idle periods — so observable "live subscriber"
	// counts derive from sessions > 0.
	sessions int32
	// heldPorts counts the distinct external port numbers the
	// subscriber's live mappings hold, and portRefs refcounts them: a
	// UDP and a TCP mapping on the same number are one held port, which
	// is what the port quota reserves. Maintained only when
	// PortQuotaPerSubscriber is enabled; rebuilt from the mapping list
	// on snapshot restore.
	heldPorts int32
	portRefs  map[uint16]uint16
	// Token-bucket state for the AllocRatePerSec limiter, initialized
	// lazily on the subscriber's first allocation attempt. tbLast is the
	// last refill stamp in Unix nanoseconds; the state is virtual-time
	// arithmetic only, so it snapshots and restores exactly.
	tbInit   bool
	tbTokens float64
	tbLast   int64
}

// subTable maps internal IPs to their subEntry. Entries are never
// deleted: a realm's subscriber population is bounded and each record
// is a few words.
type subTable struct {
	slots []subEntry
	n     int
	// seen counts entries with seen set; live counts entries with
	// sessions > 0. Both are maintained by the NAT on state transitions.
	seen int
	live int
	// gen counts growths. A (slot index, gen) pair is a stable handle:
	// entries never move between growths, so a handle whose gen matches
	// still names its entry. Mappings carry one so teardown skips the
	// table probe.
	gen uint16
}

func (t *subTable) init() {
	t.slots = make([]subEntry, tableMinSlots)
}

// get returns the subscriber's entry, or nil if the address was never
// touched. The pointer is valid until the next ensure call.
func (t *subTable) get(a netaddr.Addr) *subEntry {
	mask := uint64(len(t.slots) - 1)
	for i := mix64(uint64(a)) & mask; ; i = (i + 1) & mask {
		e := &t.slots[i]
		if !e.used {
			return nil
		}
		if e.addr == a {
			return e
		}
	}
}

// ensure returns the subscriber's entry and its slot index, creating the
// entry if needed. The pointer is valid until the next ensure call
// (growth moves entries); the index plus the table's current gen form a
// handle that survives growths never happening.
func (t *subTable) ensure(a netaddr.Addr) (*subEntry, uint32) {
	if (t.n+1)*4 > len(t.slots)*3 {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	i := mix64(uint64(a)) & mask
	for t.slots[i].used && t.slots[i].addr != a {
		i = (i + 1) & mask
	}
	e := &t.slots[i]
	if !e.used {
		e.used = true
		e.addr = a
		t.n++
	}
	return e, uint32(i)
}

func (t *subTable) grow() {
	old := t.slots
	t.slots = make([]subEntry, 2*len(old))
	t.gen++
	mask := uint64(len(t.slots) - 1)
	for i := range old {
		if !old[i].used {
			continue
		}
		j := mix64(uint64(old[i].addr)) & mask
		for t.slots[j].used {
			j = (j + 1) & mask
		}
		t.slots[j] = old[i]
	}
}

func (t *subTable) forEach(fn func(e *subEntry)) {
	for i := range t.slots {
		if t.slots[i].used {
			fn(&t.slots[i])
		}
	}
}
