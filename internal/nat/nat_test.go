package nat

import (
	"testing"
	"testing/quick"
	"time"

	"cgn/internal/netaddr"
)

var (
	t0     = time.Unix(0, 0)
	extIP  = netaddr.MustParseAddr("203.0.113.1")
	extIP2 = netaddr.MustParseAddr("203.0.113.2")
	intEP  = netaddr.MustParseEndpoint("100.64.0.5:4000")
	dstEP  = netaddr.MustParseEndpoint("8.8.8.8:53")
	dstEP2 = netaddr.MustParseEndpoint("9.9.9.9:443")
)

func baseConfig() Config {
	return Config{
		Name:        "test",
		Type:        PortRestricted,
		PortAlloc:   Preservation,
		Pooling:     Paired,
		ExternalIPs: []netaddr.Addr{extIP},
		UDPTimeout:  60 * time.Second,
		Seed:        1,
	}
}

func flowUDP(src, dst netaddr.Endpoint) netaddr.Flow {
	return netaddr.FlowOf(netaddr.UDP, src, dst)
}

func TestTranslateOutCreatesMapping(t *testing.T) {
	n := New(baseConfig())
	out, v := n.TranslateOut(flowUDP(intEP, dstEP), t0)
	if v != Ok {
		t.Fatalf("verdict = %v", v)
	}
	if out.Src.Addr != extIP {
		t.Errorf("external addr = %v, want %v", out.Src.Addr, extIP)
	}
	if out.Dst != dstEP {
		t.Errorf("destination changed: %v", out.Dst)
	}
	if n.NumMappings() != 1 {
		t.Errorf("NumMappings = %d", n.NumMappings())
	}
}

func TestPortPreservation(t *testing.T) {
	n := New(baseConfig())
	out, _ := n.TranslateOut(flowUDP(intEP, dstEP), t0)
	if out.Src.Port != intEP.Port {
		t.Errorf("port not preserved: got %d, want %d", out.Src.Port, intEP.Port)
	}
	// A second subscriber using the same local port collides and must get
	// the next free port.
	other := netaddr.MustParseEndpoint("100.64.0.6:4000")
	out2, _ := n.TranslateOut(flowUDP(other, dstEP), t0)
	if out2.Src.Port == intEP.Port {
		t.Error("collision not detected")
	}
	if out2.Src.Port != intEP.Port+1 {
		t.Errorf("fallback port = %d, want %d", out2.Src.Port, intEP.Port+1)
	}
}

func TestMappingReuseAcrossDestinations(t *testing.T) {
	n := New(baseConfig()) // port-restricted: endpoint-independent mapping
	out1, _ := n.TranslateOut(flowUDP(intEP, dstEP), t0)
	out2, _ := n.TranslateOut(flowUDP(intEP, dstEP2), t0)
	if out1.Src != out2.Src {
		t.Errorf("non-symmetric NAT must reuse mapping: %v vs %v", out1.Src, out2.Src)
	}
	if n.NumMappings() != 1 {
		t.Errorf("NumMappings = %d, want 1", n.NumMappings())
	}
}

func TestSymmetricCreatesPerDestinationMappings(t *testing.T) {
	cfg := baseConfig()
	cfg.Type = Symmetric
	cfg.PortAlloc = Random
	n := New(cfg)
	out1, _ := n.TranslateOut(flowUDP(intEP, dstEP), t0)
	out2, _ := n.TranslateOut(flowUDP(intEP, dstEP2), t0)
	if out1.Src == out2.Src {
		t.Error("symmetric NAT must allocate distinct mappings per destination")
	}
	if n.NumMappings() != 2 {
		t.Errorf("NumMappings = %d, want 2", n.NumMappings())
	}
}

func TestInboundRequiresMapping(t *testing.T) {
	n := New(baseConfig())
	in := flowUDP(dstEP, netaddr.EndpointOf(extIP, 4000))
	if _, v := n.TranslateIn(in, t0); v != DropNoMapping {
		t.Errorf("verdict = %v, want DropNoMapping", v)
	}
}

func TestInboundFullCone(t *testing.T) {
	cfg := baseConfig()
	cfg.Type = FullCone
	n := New(cfg)
	out, _ := n.TranslateOut(flowUDP(intEP, dstEP), t0)
	// Anyone may reach a full-cone mapping.
	stranger := netaddr.MustParseEndpoint("198.51.100.9:9999")
	in, v := n.TranslateIn(flowUDP(stranger, out.Src), t0)
	if v != Ok {
		t.Fatalf("full cone rejected stranger: %v", v)
	}
	if in.Dst != intEP {
		t.Errorf("inbound delivered to %v, want %v", in.Dst, intEP)
	}
}

func TestInboundAddressRestricted(t *testing.T) {
	cfg := baseConfig()
	cfg.Type = AddressRestricted
	n := New(cfg)
	out, _ := n.TranslateOut(flowUDP(intEP, dstEP), t0)

	// Same address, different port: allowed.
	altPort := netaddr.EndpointOf(dstEP.Addr, 9999)
	if _, v := n.TranslateIn(flowUDP(altPort, out.Src), t0); v != Ok {
		t.Errorf("same-addr different-port = %v, want Ok", v)
	}
	// Different address: filtered.
	stranger := netaddr.MustParseEndpoint("198.51.100.9:53")
	if _, v := n.TranslateIn(flowUDP(stranger, out.Src), t0); v != DropFiltered {
		t.Errorf("stranger = %v, want DropFiltered", v)
	}
}

func TestInboundPortRestricted(t *testing.T) {
	n := New(baseConfig()) // PortRestricted
	out, _ := n.TranslateOut(flowUDP(intEP, dstEP), t0)

	// Exact contacted endpoint: allowed.
	if _, v := n.TranslateIn(flowUDP(dstEP, out.Src), t0); v != Ok {
		t.Errorf("contacted endpoint = %v, want Ok", v)
	}
	// Same address, different port: filtered.
	altPort := netaddr.EndpointOf(dstEP.Addr, 9999)
	if _, v := n.TranslateIn(flowUDP(altPort, out.Src), t0); v != DropFiltered {
		t.Errorf("different port = %v, want DropFiltered", v)
	}
}

func TestInboundSymmetric(t *testing.T) {
	cfg := baseConfig()
	cfg.Type = Symmetric
	n := New(cfg)
	out, _ := n.TranslateOut(flowUDP(intEP, dstEP), t0)
	if _, v := n.TranslateIn(flowUDP(dstEP, out.Src), t0); v != Ok {
		t.Errorf("own destination = %v, want Ok", v)
	}
	other := netaddr.MustParseEndpoint("8.8.8.8:54") // same host, other port
	if _, v := n.TranslateIn(flowUDP(other, out.Src), t0); v != DropFiltered {
		t.Errorf("other port = %v, want DropFiltered", v)
	}
}

func TestMappingExpiry(t *testing.T) {
	n := New(baseConfig()) // 60s UDP timeout
	out, _ := n.TranslateOut(flowUDP(intEP, dstEP), t0)

	// Just before the timeout the mapping is alive.
	tAlive := t0.Add(59 * time.Second)
	if _, v := n.TranslateIn(flowUDP(dstEP, out.Src), tAlive); v != Ok {
		t.Errorf("pre-expiry inbound = %v, want Ok", v)
	}
	// RefreshOnInbound is false, so LastActive is still t0; past the
	// timeout the mapping must be gone.
	tDead := t0.Add(61 * time.Second)
	if _, v := n.TranslateIn(flowUDP(dstEP, out.Src), tDead); v != DropNoMapping {
		t.Errorf("post-expiry inbound = %v, want DropNoMapping", v)
	}
	if n.NumMappings() != 0 {
		t.Errorf("expired mapping not removed: %d live", n.NumMappings())
	}
}

func TestOutboundRefreshesMapping(t *testing.T) {
	n := New(baseConfig())
	n.TranslateOut(flowUDP(intEP, dstEP), t0)
	// Keepalives every 50 s keep the 60 s mapping alive indefinitely.
	now := t0
	for i := 0; i < 5; i++ {
		now = now.Add(50 * time.Second)
		if _, v := n.TranslateOut(flowUDP(intEP, dstEP), now); v != Ok {
			t.Fatalf("keepalive %d rejected: %v", i, v)
		}
	}
	if n.NumMappings() != 1 {
		t.Errorf("NumMappings = %d, want the same refreshed mapping", n.NumMappings())
	}
}

func TestRefreshOnInbound(t *testing.T) {
	cfg := baseConfig()
	cfg.RefreshOnInbound = true
	n := New(cfg)
	out, _ := n.TranslateOut(flowUDP(intEP, dstEP), t0)
	// Inbound at t+50 refreshes; a probe at t+100 must still pass.
	if _, v := n.TranslateIn(flowUDP(dstEP, out.Src), t0.Add(50*time.Second)); v != Ok {
		t.Fatal("inbound refresh packet dropped")
	}
	if _, v := n.TranslateIn(flowUDP(dstEP, out.Src), t0.Add(100*time.Second)); v != Ok {
		t.Error("mapping should have been refreshed by inbound packet")
	}
}

func TestExpiredMappingPortIsReusable(t *testing.T) {
	n := New(baseConfig())
	out1, _ := n.TranslateOut(flowUDP(intEP, dstEP), t0)
	// After expiry another subscriber can claim the same port.
	later := t0.Add(2 * time.Minute)
	n.Sweep(later)
	other := netaddr.MustParseEndpoint("100.64.0.7:4000")
	out2, v := n.TranslateOut(flowUDP(other, dstEP), later)
	if v != Ok || out2.Src != out1.Src {
		t.Errorf("port not reclaimed: %v (verdict %v), want %v", out2.Src, v, out1.Src)
	}
}

func TestSweep(t *testing.T) {
	n := New(baseConfig())
	for i := 0; i < 10; i++ {
		src := netaddr.EndpointOf(netaddr.AddrFrom4(100, 64, 0, byte(i)), 5000)
		n.TranslateOut(flowUDP(src, dstEP), t0)
	}
	if got := n.Sweep(t0.Add(30 * time.Second)); got != 0 {
		t.Errorf("early Sweep removed %d", got)
	}
	if got := n.Sweep(t0.Add(2 * time.Minute)); got != 10 {
		t.Errorf("Sweep removed %d, want 10", got)
	}
	if n.NumMappings() != 0 {
		t.Errorf("NumMappings after sweep = %d", n.NumMappings())
	}
}

func TestSessionLimit(t *testing.T) {
	cfg := baseConfig()
	cfg.Type = Symmetric // per-destination mappings consume sessions
	cfg.PortAlloc = Random
	cfg.MaxSessionsPerSubscriber = 3
	n := New(cfg)
	for i := 0; i < 3; i++ {
		dst := netaddr.EndpointOf(netaddr.AddrFrom4(8, 8, 8, byte(i+1)), 53)
		if _, v := n.TranslateOut(flowUDP(intEP, dst), t0); v != Ok {
			t.Fatalf("session %d rejected: %v", i, v)
		}
	}
	dst := netaddr.MustParseEndpoint("8.8.9.9:53")
	if _, v := n.TranslateOut(flowUDP(intEP, dst), t0); v != DropSessionLimit {
		t.Errorf("verdict = %v, want DropSessionLimit", v)
	}
	// Another subscriber is unaffected.
	other := netaddr.MustParseEndpoint("100.64.0.9:4000")
	if _, v := n.TranslateOut(flowUDP(other, dst), t0); v != Ok {
		t.Errorf("other subscriber rejected: %v", v)
	}
}

func TestPairedPooling(t *testing.T) {
	cfg := baseConfig()
	cfg.ExternalIPs = []netaddr.Addr{extIP, extIP2}
	cfg.Type = Symmetric // multiple mappings per subscriber
	cfg.PortAlloc = Random
	n := New(cfg)
	var ips = map[netaddr.Addr]bool{}
	for i := 0; i < 20; i++ {
		dst := netaddr.EndpointOf(netaddr.AddrFrom4(8, 8, 0, byte(i+1)), 53)
		out, _ := n.TranslateOut(flowUDP(intEP, dst), t0)
		ips[out.Src.Addr] = true
	}
	if len(ips) != 1 {
		t.Errorf("paired pooling used %d external IPs, want 1", len(ips))
	}
}

func TestArbitraryPooling(t *testing.T) {
	cfg := baseConfig()
	cfg.ExternalIPs = []netaddr.Addr{extIP, extIP2}
	cfg.Pooling = Arbitrary
	cfg.Type = Symmetric
	cfg.PortAlloc = Random
	n := New(cfg)
	ips := map[netaddr.Addr]bool{}
	for i := 0; i < 40; i++ {
		dst := netaddr.EndpointOf(netaddr.AddrFrom4(8, 8, 0, byte(i+1)), 53)
		out, _ := n.TranslateOut(flowUDP(intEP, dst), t0)
		ips[out.Src.Addr] = true
	}
	if len(ips) != 2 {
		t.Errorf("arbitrary pooling used %d external IPs, want 2", len(ips))
	}
}

func TestHairpinOff(t *testing.T) {
	n := New(baseConfig())
	f := flowUDP(intEP, netaddr.EndpointOf(extIP, 5000))
	if _, v := n.Hairpin(f, t0); v != DropHairpin {
		t.Errorf("verdict = %v, want DropHairpin", v)
	}
}

func TestHairpinTranslate(t *testing.T) {
	cfg := baseConfig()
	cfg.Type = FullCone
	cfg.Hairpin = HairpinTranslate
	n := New(cfg)
	// B creates a mapping first so A can reach it.
	bInt := netaddr.MustParseEndpoint("100.64.0.8:7000")
	bOut, _ := n.TranslateOut(flowUDP(bInt, dstEP), t0)

	aInt := netaddr.MustParseEndpoint("100.64.0.9:7001")
	res, v := n.Hairpin(flowUDP(aInt, bOut.Src), t0)
	if v != Ok {
		t.Fatalf("hairpin verdict = %v", v)
	}
	if res.Flow.Dst != bInt {
		t.Errorf("hairpin delivered to %v, want %v", res.Flow.Dst, bInt)
	}
	if res.SourcePreserved {
		t.Error("translate mode must not preserve source")
	}
	// Source must be A's external mapping, not A's internal address.
	if res.Flow.Src.Addr != extIP {
		t.Errorf("hairpin source = %v, want translated", res.Flow.Src)
	}
}

func TestHairpinPreserveSource(t *testing.T) {
	cfg := baseConfig()
	cfg.Type = FullCone
	cfg.Hairpin = HairpinPreserveSource
	n := New(cfg)
	bInt := netaddr.MustParseEndpoint("100.64.0.8:7000")
	bOut, _ := n.TranslateOut(flowUDP(bInt, dstEP), t0)

	aInt := netaddr.MustParseEndpoint("100.64.0.9:7001")
	res, v := n.Hairpin(flowUDP(aInt, bOut.Src), t0)
	if v != Ok {
		t.Fatalf("hairpin verdict = %v", v)
	}
	if !res.SourcePreserved || res.Flow.Src != aInt {
		t.Errorf("source not preserved: %+v", res)
	}
	if res.Flow.Dst != bInt {
		t.Errorf("hairpin delivered to %v, want %v", res.Flow.Dst, bInt)
	}
}

func TestHairpinToExpiredMapping(t *testing.T) {
	cfg := baseConfig()
	cfg.Hairpin = HairpinTranslate
	n := New(cfg)
	aInt := netaddr.MustParseEndpoint("100.64.0.9:7001")
	// Nothing maps to extIP:1234.
	if _, v := n.Hairpin(flowUDP(aInt, netaddr.EndpointOf(extIP, 1234)), t0); v != DropNoMapping {
		t.Errorf("verdict = %v, want DropNoMapping", v)
	}
}

func TestLookupByExternal(t *testing.T) {
	n := New(baseConfig())
	out, _ := n.TranslateOut(flowUDP(intEP, dstEP), t0)
	m, ok := n.LookupByExternal(netaddr.UDP, out.Src, t0)
	if !ok || m.Int != intEP {
		t.Errorf("LookupByExternal = %+v, %v", m, ok)
	}
	if _, ok := n.LookupByExternal(netaddr.UDP, out.Src, t0.Add(5*time.Minute)); ok {
		t.Error("expired mapping should not be returned")
	}
	if _, ok := n.LookupByExternal(netaddr.TCP, out.Src, t0); ok {
		t.Error("protocol must be part of the mapping key")
	}
}

func TestExternalFor(t *testing.T) {
	n := New(baseConfig())
	f := flowUDP(intEP, dstEP)
	if _, ok := n.ExternalFor(f, t0); ok {
		t.Error("ExternalFor before any traffic should miss")
	}
	out, _ := n.TranslateOut(f, t0)
	got, ok := n.ExternalFor(f, t0)
	if !ok || got != out.Src {
		t.Errorf("ExternalFor = %v, %v; want %v", got, ok, out.Src)
	}
}

func TestTCPAndUDPIndependent(t *testing.T) {
	n := New(baseConfig())
	u, _ := n.TranslateOut(netaddr.FlowOf(netaddr.UDP, intEP, dstEP), t0)
	tc, _ := n.TranslateOut(netaddr.FlowOf(netaddr.TCP, intEP, dstEP), t0)
	if n.NumMappings() != 2 {
		t.Errorf("NumMappings = %d, want separate UDP and TCP entries", n.NumMappings())
	}
	// Both may preserve the same port number on the same IP: different
	// protocol spaces must not collide.
	if u.Src != tc.Src {
		t.Errorf("both protocols should preserve the port: %v vs %v", u.Src, tc.Src)
	}
}

func TestTCPTimeoutLongerThanUDP(t *testing.T) {
	cfg := baseConfig()
	cfg.TCPTimeout = 2 * time.Hour
	n := New(cfg)
	out, _ := n.TranslateOut(netaddr.FlowOf(netaddr.TCP, intEP, dstEP), t0)
	// Past the UDP timeout, the TCP mapping survives.
	later := t0.Add(30 * time.Minute)
	if _, v := n.TranslateIn(netaddr.FlowOf(netaddr.TCP, dstEP, out.Src), later); v != Ok {
		t.Errorf("TCP mapping expired too early: %v", v)
	}
}

func TestIsExternal(t *testing.T) {
	n := New(baseConfig())
	if !n.IsExternal(extIP) {
		t.Error("pool member not recognized")
	}
	if n.IsExternal(extIP2) {
		t.Error("non-member recognized as external")
	}
}

func TestConfigValidation(t *testing.T) {
	assertPanics := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: New should panic", name)
			}
		}()
		New(cfg)
	}
	cfg := baseConfig()
	cfg.ExternalIPs = nil
	assertPanics("no external IPs", cfg)

	cfg = baseConfig()
	cfg.PortLo, cfg.PortHi = 5000, 4000
	assertPanics("inverted port range", cfg)

	cfg = baseConfig()
	cfg.PortAlloc = RandomChunk
	cfg.ChunkSize = 1000 // not a power of two
	assertPanics("bad chunk size", cfg)
}

func TestMetricsCounters(t *testing.T) {
	n := New(baseConfig())
	out, _ := n.TranslateOut(flowUDP(intEP, dstEP), t0)
	n.TranslateIn(flowUDP(dstEP, out.Src), t0)
	stranger := netaddr.MustParseEndpoint("198.51.100.1:1")
	n.TranslateIn(flowUDP(stranger, out.Src), t0)
	snap := n.Metrics.Snapshot()
	if snap["mappings_created"] != 1 || snap["pkts_out"] != 1 ||
		snap["pkts_in"] != 1 || snap["drop_filtered"] != 1 {
		t.Errorf("metrics = %v", snap)
	}
}

// Property: for any flow translated outbound, the remote's reply to the
// external endpoint translates back to exactly the original internal
// endpoint — across all mapping types and allocation strategies.
func TestReplySymmetryProperty(t *testing.T) {
	f := func(srcIP, dstIP uint32, srcPort, dstPort uint16, typRaw, allocRaw uint8) bool {
		typ := MappingType(typRaw % 4)
		alloc := PortAlloc(allocRaw % 4)
		cfg := baseConfig()
		cfg.Type = typ
		cfg.PortAlloc = alloc
		cfg.ChunkSize = 2048
		n := New(cfg)
		src := netaddr.EndpointOf(netaddr.Addr(srcIP), srcPort)
		dst := netaddr.EndpointOf(netaddr.Addr(dstIP|1), dstPort|1)
		out, v := n.TranslateOut(flowUDP(src, dst), t0)
		if v != Ok {
			return true // allocation failures are legal, not asymmetry
		}
		in, v := n.TranslateIn(flowUDP(dst, out.Src), t0)
		return v == Ok && in.Dst == src && in.Src == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{ExternalIPs: []netaddr.Addr{extIP}}
	n := New(cfg)
	got := n.Config()
	if got.PortLo != 1024 || got.PortHi != 65535 {
		t.Errorf("default port range = [%d,%d]", got.PortLo, got.PortHi)
	}
	if got.UDPTimeout != 2*time.Minute || got.TCPTimeout != 2*time.Hour {
		t.Errorf("default timeouts = %v, %v", got.UDPTimeout, got.TCPTimeout)
	}
}
