package nat

import (
	"math/rand"
	"testing"
	"time"

	"cgn/internal/netaddr"
)

func TestSequentialAllocationOrder(t *testing.T) {
	cfg := baseConfig()
	cfg.Type = Symmetric // one mapping per destination -> many allocations
	cfg.PortAlloc = Sequential
	cfg.PortLo, cfg.PortHi = 10000, 10010
	n := New(cfg)
	var ports []uint16
	for i := 0; i < 5; i++ {
		dst := netaddr.EndpointOf(netaddr.AddrFrom4(8, 8, 0, byte(i+1)), 53)
		out, v := n.TranslateOut(flowUDP(intEP, dst), t0)
		if v != Ok {
			t.Fatalf("alloc %d: %v", i, v)
		}
		ports = append(ports, out.Src.Port)
	}
	// The cursor starts at a random position (a long-running NAT is
	// mid-cycle); from there allocations are strictly sequential,
	// wrapping at the top of the range.
	for i := 1; i < len(ports); i++ {
		want := ports[i-1] + 1
		if ports[i-1] == 10010 {
			want = 10000
		}
		if ports[i] != want {
			t.Errorf("ports[%d] = %d, want %d (sequence %v)", i, ports[i], want, ports)
		}
	}
	for _, p := range ports {
		if p < 10000 || p > 10010 {
			t.Errorf("port %d outside range", p)
		}
	}
}

func TestSequentialWrapsAndSkipsBusy(t *testing.T) {
	s := newPortSpace(100, 102)
	ip := extIP
	p1, _ := s.takeSequential(ip, netaddr.UDP)
	p2, _ := s.takeSequential(ip, netaddr.UDP)
	s.free(netaddr.EndpointOf(ip, p1), netaddr.UDP)
	p3, _ := s.takeSequential(ip, netaddr.UDP)
	p4, _ := s.takeSequential(ip, netaddr.UDP) // wraps, skips busy p2/p3
	if p1 != 100 || p2 != 101 || p3 != 102 || p4 != 100 {
		t.Errorf("sequence = %d,%d,%d,%d", p1, p2, p3, p4)
	}
	if _, ok := s.takeSequential(ip, netaddr.UDP); ok {
		t.Error("exhausted space should fail")
	}
}

func TestRandomAllocationUsesWholeSpace(t *testing.T) {
	cfg := baseConfig()
	cfg.Type = Symmetric
	cfg.PortAlloc = Random
	cfg.PortLo, cfg.PortHi = 1024, 65535
	n := New(cfg)
	lowHalf, highHalf := 0, 0
	for i := 0; i < 200; i++ {
		dst := netaddr.EndpointOf(netaddr.AddrFrom4(8, byte(i/250), byte(i%250), 1), 53)
		out, _ := n.TranslateOut(flowUDP(intEP, dst), t0)
		if out.Src.Port < 32768 {
			lowHalf++
		} else {
			highHalf++
		}
	}
	// The paper's Fig 8(a) signal: CGN-translated ports cover the whole
	// space, unlike OS ephemeral ranges. Both halves must be hit.
	if lowHalf == 0 || highHalf == 0 {
		t.Errorf("random allocation skewed: %d low, %d high", lowHalf, highHalf)
	}
}

func TestRandomInDegradedScan(t *testing.T) {
	s := newPortSpace(200, 203)
	rng := rand.New(rand.NewSource(1))
	got := map[uint16]bool{}
	for i := 0; i < 4; i++ {
		p, ok := s.takeRandomIn(extIP, netaddr.UDP, 200, 203, rng)
		if !ok {
			t.Fatalf("allocation %d failed", i)
		}
		if got[p] {
			t.Fatalf("port %d allocated twice", p)
		}
		got[p] = true
	}
	if _, ok := s.takeRandomIn(extIP, netaddr.UDP, 200, 203, rng); ok {
		t.Error("full range should fail")
	}
}

func TestRandomInClampsBounds(t *testing.T) {
	s := newPortSpace(1000, 2000)
	rng := rand.New(rand.NewSource(1))
	p, ok := s.takeRandomIn(extIP, netaddr.UDP, 0, 65535, rng)
	if !ok || p < 1000 || p > 2000 {
		t.Errorf("clamped alloc = %d, %v", p, ok)
	}
	if _, ok := s.takeRandomIn(extIP, netaddr.UDP, 3000, 4000, rng); ok {
		t.Error("disjoint range should fail")
	}
}

func TestPreservationOutOfRangeFallsBack(t *testing.T) {
	cfg := baseConfig()
	cfg.PortLo, cfg.PortHi = 10000, 20000
	n := New(cfg)
	src := netaddr.MustParseEndpoint("100.64.0.5:80") // below PortLo
	out, v := n.TranslateOut(flowUDP(src, dstEP), t0)
	if v != Ok {
		t.Fatalf("verdict = %v", v)
	}
	if out.Src.Port < 10000 || out.Src.Port > 20000 {
		t.Errorf("fallback port %d outside range", out.Src.Port)
	}
}

func TestChunkAllocationConfinesSubscriber(t *testing.T) {
	cfg := baseConfig()
	cfg.Type = Symmetric
	cfg.PortAlloc = RandomChunk
	cfg.ChunkSize = 4096
	n := New(cfg)
	var lo, hi uint16 = 65535, 0
	for i := 0; i < 50; i++ {
		dst := netaddr.EndpointOf(netaddr.AddrFrom4(8, 8, byte(i), 1), 53)
		out, v := n.TranslateOut(flowUDP(intEP, dst), t0)
		if v != Ok {
			t.Fatalf("alloc %d: %v", i, v)
		}
		if out.Src.Port < lo {
			lo = out.Src.Port
		}
		if out.Src.Port > hi {
			hi = out.Src.Port
		}
	}
	// All ports must fall within one 4K-aligned chunk (Fig 8c).
	if int(hi)-int(lo) >= 4096 {
		t.Errorf("ports span %d..%d, exceeds chunk size", lo, hi)
	}
	if lo/4096 != hi/4096 {
		t.Errorf("ports cross chunk boundary: %d..%d", lo, hi)
	}
}

func TestChunkDistinctPerSubscriber(t *testing.T) {
	cfg := baseConfig()
	cfg.PortAlloc = RandomChunk
	cfg.ChunkSize = 1024
	n := New(cfg)
	chunkOf := func(sub netaddr.Endpoint) uint16 {
		out, v := n.TranslateOut(flowUDP(sub, dstEP), t0)
		if v != Ok {
			t.Fatalf("alloc for %v: %v", sub, v)
		}
		return out.Src.Port / 1024
	}
	seen := map[uint16]netaddr.Endpoint{}
	for i := 0; i < 20; i++ {
		sub := netaddr.EndpointOf(netaddr.AddrFrom4(100, 64, 1, byte(i)), 6881)
		c := chunkOf(sub)
		if prev, dup := seen[c]; dup {
			t.Fatalf("subscribers %v and %v share chunk %d", prev, sub, c)
		}
		seen[c] = sub
	}
}

func TestChunkStableAcrossFlows(t *testing.T) {
	cfg := baseConfig()
	cfg.Type = Symmetric
	cfg.PortAlloc = RandomChunk
	cfg.ChunkSize = 512
	n := New(cfg)
	first, _ := n.TranslateOut(flowUDP(intEP, dstEP), t0)
	second, _ := n.TranslateOut(flowUDP(intEP, dstEP2), t0)
	if first.Src.Port/512 != second.Src.Port/512 {
		t.Errorf("subscriber moved chunks: %d vs %d", first.Src.Port, second.Src.Port)
	}
}

func TestChunkExhaustion(t *testing.T) {
	// Port range 1024..5119 with 1024-chunks -> exactly 4 chunks.
	cfg := baseConfig()
	cfg.PortAlloc = RandomChunk
	cfg.ChunkSize = 1024
	cfg.PortLo, cfg.PortHi = 1024, 5119
	n := New(cfg)
	for i := 0; i < 4; i++ {
		sub := netaddr.EndpointOf(netaddr.AddrFrom4(100, 64, 2, byte(i)), 6881)
		if _, v := n.TranslateOut(flowUDP(sub, dstEP), t0); v != Ok {
			t.Fatalf("subscriber %d rejected: %v", i, v)
		}
	}
	sub := netaddr.MustParseEndpoint("100.64.2.99:6881")
	if _, v := n.TranslateOut(flowUDP(sub, dstEP), t0); v != DropNoPorts {
		t.Errorf("fifth subscriber verdict = %v, want DropNoPorts", v)
	}
}

func TestChunkMaxSubscribersPerIP(t *testing.T) {
	// 1K chunks over 1024..65535 yield 63 aligned chunks; the paper
	// derives 64 subscribers per IP for 1K chunks over the full space.
	tab := newChunkTable(1024, 65535, 1024)
	if got := len(tab.bases()); got != 63 {
		t.Errorf("1K chunks available = %d, want 63", got)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 63; i++ {
		sub := netaddr.AddrFrom4(100, 64, 3, byte(i))
		if _, _, ok := tab.chunkFor(extIP, sub, rng); !ok {
			t.Fatalf("subscriber %d rejected", i)
		}
	}
	if tab.numSubscribers(extIP) != 63 {
		t.Errorf("numSubscribers = %d", tab.numSubscribers(extIP))
	}
}

func TestPortExhaustionVerdict(t *testing.T) {
	cfg := baseConfig()
	cfg.Type = Symmetric
	cfg.PortAlloc = Sequential
	cfg.PortLo, cfg.PortHi = 30000, 30004 // 5 ports
	n := New(cfg)
	for i := 0; i < 5; i++ {
		dst := netaddr.EndpointOf(netaddr.AddrFrom4(8, 8, 8, byte(i+1)), 53)
		if _, v := n.TranslateOut(flowUDP(intEP, dst), t0); v != Ok {
			t.Fatalf("alloc %d: %v", i, v)
		}
	}
	dst := netaddr.MustParseEndpoint("8.8.9.1:53")
	if _, v := n.TranslateOut(flowUDP(intEP, dst), t0); v != DropNoPorts {
		t.Errorf("verdict = %v, want DropNoPorts", v)
	}
}

func TestPreservationFullSpace(t *testing.T) {
	s := newPortSpace(100, 101)
	rng := rand.New(rand.NewSource(1))
	s.take(extIP, netaddr.UDP, 100)
	s.take(extIP, netaddr.UDP, 101)
	if _, ok := s.takePreferred(extIP, netaddr.UDP, 100, rng); ok {
		t.Error("full space should fail")
	}
}

func TestPortSpacesPerIPIndependent(t *testing.T) {
	s := newPortSpace(1024, 65535)
	rng := rand.New(rand.NewSource(1))
	p1, _ := s.takePreferred(extIP, netaddr.UDP, 5000, rng)
	p2, ok := s.takePreferred(extIP2, netaddr.UDP, 5000, rng)
	if !ok || p1 != 5000 || p2 != 5000 {
		t.Errorf("same port on different IPs should both preserve: %d, %d", p1, p2)
	}
}

func TestStringers(t *testing.T) {
	if Symmetric.String() != "symmetric" || FullCone.String() != "full cone" ||
		PortRestricted.String() != "port-address restricted" ||
		AddressRestricted.String() != "address restricted" {
		t.Error("MappingType names")
	}
	if Preservation.String() != "preservation" || Sequential.String() != "sequential" ||
		Random.String() != "random" || RandomChunk.String() != "random-chunk" {
		t.Error("PortAlloc names")
	}
	if Paired.String() != "paired" || Arbitrary.String() != "arbitrary" {
		t.Error("Pooling names")
	}
	if HairpinOff.String() != "off" || HairpinTranslate.String() != "translate" ||
		HairpinPreserveSource.String() != "preserve-source" {
		t.Error("HairpinMode names")
	}
	for _, v := range []Verdict{Ok, DropNoMapping, DropFiltered, DropNoPorts, DropSessionLimit, DropHairpin} {
		if v.String() == "" {
			t.Error("verdict must render")
		}
	}
}

// Invariant check across a random workload: external endpoints are unique
// among live mappings, ports are within range, and session accounting
// matches live mapping counts.
func TestRandomWorkloadInvariants(t *testing.T) {
	cfg := baseConfig()
	cfg.Type = Symmetric
	cfg.PortAlloc = Random
	cfg.ExternalIPs = []netaddr.Addr{extIP, extIP2}
	cfg.UDPTimeout = 30 * time.Second
	n := New(cfg)
	rng := rand.New(rand.NewSource(42))
	now := t0
	for i := 0; i < 3000; i++ {
		src := netaddr.EndpointOf(netaddr.AddrFrom4(100, 64, byte(rng.Intn(4)), byte(rng.Intn(30))), uint16(1024+rng.Intn(60000)))
		dst := netaddr.EndpointOf(netaddr.AddrFrom4(8, byte(rng.Intn(4)), byte(rng.Intn(10)), 1), 53)
		n.TranslateOut(flowUDP(src, dst), now)
		if rng.Intn(10) == 0 {
			now = now.Add(time.Duration(rng.Intn(20)) * time.Second)
		}
		if rng.Intn(50) == 0 {
			n.Sweep(now)
		}
	}
	// Validate invariants over remaining live mappings.
	seen := map[netaddr.Endpoint]bool{}
	sessions := map[netaddr.Addr]int{}
	n.ForEachMapping(func(m *Mapping) {
		if seen[m.Ext] {
			t.Fatalf("duplicate external endpoint %v", m.Ext)
		}
		seen[m.Ext] = true
		if m.Ext.Port < 1024 {
			t.Fatalf("port %d below range", m.Ext.Port)
		}
		if m.Ext.Addr != extIP && m.Ext.Addr != extIP2 {
			t.Fatalf("external IP %v not in pool", m.Ext.Addr)
		}
		sessions[m.Int.Addr]++
	})
	for a, want := range sessions {
		if got := n.Sessions(a); got != want {
			t.Fatalf("session count for %v = %d, want %d", a, got, want)
		}
	}
	live := 0
	n.forEachSession(func(a netaddr.Addr, got int) {
		live++
		if want := sessions[a]; got != want {
			t.Fatalf("stale session count for %v = %d, want %d", a, got, want)
		}
	})
	if live != len(sessions) {
		t.Fatalf("table reports %d live subscribers, recount says %d", live, len(sessions))
	}
}
