package nat_test

import (
	"fmt"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
)

// A chunk-allocating carrier-grade NAT confines each subscriber to a
// fixed block of the external port space — the behavior Figure 8(c) of
// the paper exposes and §7 warns about.
func ExampleNAT_TranslateOut() {
	cgn := nat.New(nat.Config{
		Type:        nat.PortRestricted,
		PortAlloc:   nat.RandomChunk,
		ChunkSize:   2048,
		Pooling:     nat.Paired,
		ExternalIPs: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.1")},
		UDPTimeout:  2 * time.Minute,
		Seed:        7,
	})
	now := time.Unix(0, 0)
	sub := netaddr.MustParseAddr("100.64.0.9")
	dst := netaddr.MustParseEndpoint("203.0.113.9:443")

	var lo, hi uint16 = 65535, 0
	for port := uint16(5000); port < 5040; port++ {
		out, v := cgn.TranslateOut(netaddr.FlowOf(netaddr.UDP, netaddr.EndpointOf(sub, port), dst), now)
		if v != nat.Ok {
			fmt.Println("translation failed:", v)
			return
		}
		if out.Src.Port < lo {
			lo = out.Src.Port
		}
		if out.Src.Port > hi {
			hi = out.Src.Port
		}
	}
	fmt.Printf("40 flows stayed within one %d-port chunk: %v\n",
		2048, hi/2048 == lo/2048)
	// Output:
	// 40 flows stayed within one 2048-port chunk: true
}

// Inbound filtering is what STUN classifies: a port-restricted mapping
// accepts only remote endpoints the subscriber already contacted.
func ExampleNAT_TranslateIn() {
	n := nat.New(nat.Config{
		Type:        nat.PortRestricted,
		PortAlloc:   nat.Preservation,
		Pooling:     nat.Paired,
		ExternalIPs: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.1")},
		Seed:        1,
	})
	now := time.Unix(0, 0)
	sub := netaddr.MustParseEndpoint("10.0.0.5:7000")
	server := netaddr.MustParseEndpoint("203.0.113.9:443")
	out, _ := n.TranslateOut(netaddr.FlowOf(netaddr.UDP, sub, server), now)

	_, v1 := n.TranslateIn(netaddr.FlowOf(netaddr.UDP, server, out.Src), now)
	stranger := netaddr.MustParseEndpoint("198.51.100.99:53")
	_, v2 := n.TranslateIn(netaddr.FlowOf(netaddr.UDP, stranger, out.Src), now)
	fmt.Println("contacted server:", v1)
	fmt.Println("stranger:", v2)
	// Output:
	// contacted server: ok
	// stranger: drop-filtered
}
