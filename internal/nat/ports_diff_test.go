package nat

import (
	"math/bits"
	"math/rand"
	"testing"
	"time"

	"cgn/internal/netaddr"
)

// checkSpace asserts the bitmap allocator's counters agree with its bits:
// every segment's free counter matches its popcount, and the global inUse
// matches the sum of taken bits.
func checkSpace(t *testing.T, s *portSpace) {
	t.Helper()
	taken := 0
	for i, g := range s.segVals {
		pop := 0
		for _, w := range g.words {
			pop += bits.OnesCount64(w)
		}
		if g.free != s.size()-pop {
			t.Fatalf("segment %#x: free = %d, popcount says %d", s.segKeys[i], g.free, s.size()-pop)
		}
		taken += pop
	}
	if s.inUse != taken {
		t.Fatalf("inUse = %d, bits say %d", s.inUse, taken)
	}
	if s.peak < s.inUse {
		t.Fatalf("peak %d below inUse %d", s.peak, s.inUse)
	}
}

// TestBitmapMatchesMapReference drives the bitmap allocator and the
// original map-based reference through an identical randomized op stream
// (paired RNGs, one seed) and requires decision-for-decision agreement:
// same ports, same failures, same cursor behavior.
func TestBitmapMatchesMapReference(t *testing.T) {
	ranges := []struct {
		name   string
		lo, hi uint16
	}{
		{"narrow", 1000, 1127},
		{"offset", 40000, 41033},
		{"unaligned", 1029, 1157},
	}
	ips := []netaddr.Addr{extIP, extIP2}
	for _, tc := range ranges {
		t.Run(tc.name, func(t *testing.T) {
			bm := newPortSpace(tc.lo, tc.hi)
			ref := newMapPortSpace(tc.lo, tc.hi)
			rngB := rand.New(rand.NewSource(7))
			rngR := rand.New(rand.NewSource(7))
			ops := rand.New(rand.NewSource(99))

			type held struct {
				ip   netaddr.Addr
				p    netaddr.Proto
				port uint16
			}
			var live []held
			span := int(tc.hi) - int(tc.lo) + 1
			for i := 0; i < 5000; i++ {
				ip := ips[ops.Intn(len(ips))]
				p := netaddr.Proto(ops.Intn(2))
				var pb, pr uint16
				var okB, okR bool
				op := ops.Intn(10)
				switch {
				case op < 3: // preferred, in and out of range
					want := uint16(ops.Intn(65536))
					if ops.Intn(2) == 0 {
						want = tc.lo + uint16(ops.Intn(span))
					}
					pb, okB = bm.takePreferred(ip, p, want, rngB)
					pr, okR = ref.takePreferred(ip, p, want, rngR)
				case op < 5:
					pb, okB = bm.takeSequential(ip, p)
					pr, okR = ref.takeSequential(ip, p)
				case op < 7:
					pb, okB = bm.takeRandom(ip, p, rngB)
					pr, okR = ref.takeRandom(ip, p, rngR)
				case op < 9: // random sub-range (the chunk path)
					a := tc.lo + uint16(ops.Intn(span))
					c := tc.lo + uint16(ops.Intn(span))
					if a > c {
						a, c = c, a
					}
					pb, okB = bm.takeRandomIn(ip, p, a, c, rngB)
					pr, okR = ref.takeRandomIn(ip, p, a, c, rngR)
				default: // free a random live port
					if len(live) == 0 {
						continue
					}
					j := ops.Intn(len(live))
					h := live[j]
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
					bm.free(netaddr.EndpointOf(h.ip, h.port), h.p)
					ref.free(netaddr.EndpointOf(h.ip, h.port), h.p)
					continue
				}
				if okB != okR || pb != pr {
					t.Fatalf("op %d: bitmap (%d, %v) != reference (%d, %v)", i, pb, okB, pr, okR)
				}
				if okB {
					live = append(live, held{ip, p, pb})
				}
				if probe := tc.lo + uint16(ops.Intn(span)); bm.isFree(ip, p, probe) != ref.isFree(ip, p, probe) {
					t.Fatalf("op %d: isFree(%d) disagrees", i, probe)
				}
			}
			checkSpace(t, bm)
			if bm.inUse != len(live) {
				t.Fatalf("inUse = %d, held %d", bm.inUse, len(live))
			}
		})
	}
}

// TestTakePreferredFallbackSeedsCursor is the regression test for the
// unseeded-fallback bug: a want outside the allocatable range must seed
// the sequential cursor mid-cycle, not start handing out ports from the
// bottom of the range.
func TestTakePreferredFallbackSeedsCursor(t *testing.T) {
	const lo, hi = 10000, 20000
	s := newPortSpace(lo, hi)
	rng := rand.New(rand.NewSource(1))
	want := lo + uint16(rand.New(rand.NewSource(1)).Intn(s.size()))
	if want == lo {
		t.Skip("seed lands on the range bottom; pick another seed")
	}
	p1, ok := s.takePreferred(extIP, netaddr.UDP, 80, rng) // 80 < lo
	if !ok || p1 != want {
		t.Fatalf("first fallback port = %d (ok=%v), want mid-cycle %d", p1, ok, want)
	}
	// Subsequent fallbacks continue sequentially from the seeded cursor.
	p2, _ := s.takePreferred(extIP, netaddr.UDP, 80, rng)
	if p2 != p1+1 {
		t.Errorf("second fallback port = %d, want %d", p2, p1+1)
	}
}

// TestPreservationFallbackMidCycleNAT asserts the same through the NAT
// engine: the first out-of-range preservation fallback must not land at
// PortLo.
func TestPreservationFallbackMidCycleNAT(t *testing.T) {
	cfg := baseConfig()
	cfg.PortLo, cfg.PortHi = 10000, 20000
	cfg.Seed = 5
	n := New(cfg)
	want := cfg.PortLo + uint16(rand.New(rand.NewSource(cfg.Seed)).Intn(int(cfg.PortHi-cfg.PortLo)+1))
	src := netaddr.MustParseEndpoint("100.64.0.5:80") // below PortLo
	out, v := n.TranslateOut(flowUDP(src, dstEP), t0)
	if v != Ok {
		t.Fatalf("verdict = %v", v)
	}
	if out.Src.Port != want {
		t.Errorf("fallback port = %d, want seeded cursor %d", out.Src.Port, want)
	}
	src2 := netaddr.MustParseEndpoint("100.64.0.6:81")
	out2, _ := n.TranslateOut(flowUDP(src2, dstEP), t0)
	if out2.Src.Port != want+1 {
		t.Errorf("second fallback port = %d, want %d", out2.Src.Port, want+1)
	}
}

// TestPortRecyclingUnderExhaustion fills a small pool to exhaustion,
// expires everything, and asserts the freed ports are fully reallocatable
// with consistent free counters — across all four allocation policies.
func TestPortRecyclingUnderExhaustion(t *testing.T) {
	for _, alloc := range []PortAlloc{Preservation, Sequential, Random, RandomChunk} {
		t.Run(alloc.String(), func(t *testing.T) {
			cfg := baseConfig()
			cfg.Type = Symmetric // one mapping per destination
			cfg.PortAlloc = alloc
			cfg.ChunkSize = 64
			cfg.PortLo, cfg.PortHi = 1024, 1151 // 128 ports, 2 chunks
			n := New(cfg)

			fill := func(now time.Time) int {
				got := 0
				for i := 0; i < 256; i++ {
					dst := netaddr.EndpointOf(netaddr.AddrFrom4(8, 8, byte(i/250), byte(i%250+1)), 53)
					_, v := n.TranslateOut(flowUDP(intEP, dst), now)
					switch v {
					case Ok:
						got++
					case DropNoPorts:
						return got
					default:
						t.Fatalf("alloc %d: unexpected verdict %v", i, v)
					}
				}
				t.Fatal("pool never exhausted")
				return got
			}

			first := fill(t0)
			want := 128
			if alloc == RandomChunk {
				want = 64 // one subscriber is confined to its chunk
			}
			if first != want {
				t.Fatalf("filled %d ports, want %d", first, want)
			}
			st := n.PortStats()
			if st.InUse != first || st.NoPorts == 0 {
				t.Fatalf("after fill: InUse=%d NoPorts=%d, want %d and >0", st.InUse, st.NoPorts, first)
			}
			checkSpace(t, n.ports)

			later := t0.Add(3 * time.Minute)
			if swept := n.Sweep(later); swept != first {
				t.Fatalf("Sweep removed %d, want %d", swept, first)
			}
			if st := n.PortStats(); st.InUse != 0 {
				t.Fatalf("InUse after sweep = %d", st.InUse)
			}
			checkSpace(t, n.ports)

			// Freed ports must all be reallocatable.
			if second := fill(later); second != first {
				t.Fatalf("recycled %d ports, want %d", second, first)
			}
			if st := n.PortStats(); st.InUse != first || st.Peak != first {
				t.Fatalf("after refill: InUse=%d Peak=%d, want %d", st.InUse, st.Peak, first)
			}
			checkSpace(t, n.ports)
		})
	}
}

// TestSweepRefreshedMappingRescheduled pins the lazy-heap behavior: a
// refresh moves a mapping's true deadline past its heap entry, and Sweep
// must re-key the entry instead of dropping the mapping.
func TestSweepRefreshedMappingRescheduled(t *testing.T) {
	n := New(baseConfig()) // 60 s UDP timeout
	n.TranslateOut(flowUDP(intEP, dstEP), t0)
	// Refresh at t+50: deadline moves to t+110, heap entry still says t+60.
	n.TranslateOut(flowUDP(intEP, dstEP), t0.Add(50*time.Second))
	if got := n.Sweep(t0.Add(70 * time.Second)); got != 0 {
		t.Fatalf("Sweep dropped %d refreshed mappings", got)
	}
	if n.NumMappings() != 1 {
		t.Fatal("refreshed mapping lost")
	}
	if got := n.Sweep(t0.Add(111 * time.Second)); got != 1 {
		t.Fatalf("Sweep after true deadline removed %d, want 1", got)
	}
}

// TestSweepSkipsDeadEntries: mappings dropped inline (expired on lookup)
// leave stale heap entries; Sweep must skip them without double-freeing.
func TestSweepSkipsDeadEntries(t *testing.T) {
	n := New(baseConfig())
	out, _ := n.TranslateOut(flowUDP(intEP, dstEP), t0)
	// Inline expiry via TranslateIn at t+2m drops the mapping.
	if _, v := n.TranslateIn(flowUDP(dstEP, out.Src), t0.Add(2*time.Minute)); v != DropNoMapping {
		t.Fatalf("verdict = %v", v)
	}
	if got := n.Sweep(t0.Add(3 * time.Minute)); got != 0 {
		t.Fatalf("Sweep re-removed %d dead mappings", got)
	}
	if st := n.PortStats(); st.InUse != 0 {
		t.Fatalf("InUse = %d after dead-entry sweep", st.InUse)
	}
}

// TestSweepBoundary: a mapping is not expired at exactly
// LastActive+timeout (expired() is strict), and Sweep must agree.
func TestSweepBoundary(t *testing.T) {
	n := New(baseConfig()) // 60 s
	n.TranslateOut(flowUDP(intEP, dstEP), t0)
	if got := n.Sweep(t0.Add(60 * time.Second)); got != 0 {
		t.Errorf("Sweep at the exact deadline removed %d", got)
	}
	if got := n.Sweep(t0.Add(60*time.Second + time.Nanosecond)); got != 1 {
		t.Errorf("Sweep past the deadline removed %d, want 1", got)
	}
}

// TestPortQuota exercises the per-subscriber port quota: the distinct
// DropPortQuota verdict, independence across subscribers, and recycling
// after expiry.
func TestPortQuota(t *testing.T) {
	cfg := baseConfig()
	cfg.Type = Symmetric
	cfg.PortAlloc = Random
	cfg.PortQuotaPerSubscriber = 2
	n := New(cfg)
	for i := 0; i < 2; i++ {
		dst := netaddr.EndpointOf(netaddr.AddrFrom4(8, 8, 8, byte(i+1)), 53)
		if _, v := n.TranslateOut(flowUDP(intEP, dst), t0); v != Ok {
			t.Fatalf("alloc %d: %v", i, v)
		}
	}
	dst := netaddr.MustParseEndpoint("8.8.9.1:53")
	if _, v := n.TranslateOut(flowUDP(intEP, dst), t0); v != DropPortQuota {
		t.Fatalf("verdict = %v, want DropPortQuota", v)
	}
	// Another subscriber has its own quota.
	other := netaddr.MustParseEndpoint("100.64.0.9:4000")
	if _, v := n.TranslateOut(flowUDP(other, dst), t0); v != Ok {
		t.Fatalf("other subscriber blocked: %v", v)
	}
	if st := n.PortStats(); st.QuotaDrops != 1 || st.Failures() != 1 {
		t.Errorf("stats = %+v, want 1 quota drop", st)
	}
	// Expiry releases quota.
	later := t0.Add(2 * time.Minute)
	n.Sweep(later)
	if _, v := n.TranslateOut(flowUDP(intEP, dst), later); v != Ok {
		t.Errorf("post-expiry alloc blocked: %v", v)
	}
}

// TestPortStatsSnapshot covers the remaining PortStats accounting.
func TestPortStatsSnapshot(t *testing.T) {
	cfg := baseConfig()
	cfg.ExternalIPs = []netaddr.Addr{extIP, extIP2}
	cfg.PortLo, cfg.PortHi = 1024, 2047
	n := New(cfg)
	for i := 0; i < 3; i++ {
		src := netaddr.EndpointOf(netaddr.AddrFrom4(100, 64, 0, byte(i+1)), 5000)
		n.TranslateOut(flowUDP(src, dstEP), t0)
	}
	st := n.PortStats()
	// 1024 ports x 2 IPs x 2 transport protocols (UDP, TCP).
	if st.ExternalIPs != 2 || st.Capacity != 4096 {
		t.Errorf("pool shape = %d IPs / %d capacity", st.ExternalIPs, st.Capacity)
	}
	if st.Subscribers != 3 || st.InUse != 3 || st.Peak != 3 || st.Allocs != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.FailureRate() != 0 {
		t.Errorf("failure rate = %v, want 0", st.FailureRate())
	}
	n.Sweep(t0.Add(3 * time.Minute))
	st = n.PortStats()
	if st.InUse != 0 || st.Peak != 3 || st.Subscribers != 3 {
		t.Errorf("post-sweep stats = %+v: peak and subscribers must persist", st)
	}
	if got := st.Utilization(); got != 3.0/4096 {
		t.Errorf("utilization = %v", got)
	}
}
