package nat

import (
	"math/rand"
	"testing"
	"time"

	"cgn/internal/netaddr"
)

func refreshTestConfig(typ MappingType) Config {
	return Config{
		Type:        typ,
		PortAlloc:   Random,
		Pooling:     Paired,
		ExternalIPs: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.9")},
		UDPTimeout:  40 * time.Second,
		Seed:        3,
	}
}

// TestRefreshMatchesTranslateOut is the fast path's differential: two
// NATs with identical configs are driven through the same randomized
// flow schedule, one refreshing through TranslateOut (the pre-fast-path
// way), the other through TranslateOutRef handles with the documented
// TranslateOut fallback. State digests, port stats and packet counters
// must agree at every step — the fast path may skip the table probe,
// never an observable effect.
func TestRefreshMatchesTranslateOut(t *testing.T) {
	for _, typ := range []MappingType{Symmetric, PortRestricted, FullCone} {
		a, b := New(refreshTestConfig(typ)), New(refreshTestConfig(typ))
		rng := rand.New(rand.NewSource(77))
		now := time.Unix(0, 0)

		type liveFlow struct {
			f   netaddr.Flow
			ref MappingRef
		}
		var flows []liveFlow
		for step := 0; step < 400; step++ {
			now = now.Add(time.Duration(1+rng.Intn(20)) * time.Second)
			a.Sweep(now)
			b.Sweep(now)

			// Sometimes open a new flow on both.
			if rng.Intn(3) > 0 {
				f := netaddr.FlowOf(netaddr.UDP,
					netaddr.EndpointOf(netaddr.MustParseAddr("100.64.0.1")+netaddr.Addr(rng.Intn(8)), uint16(2000+rng.Intn(500))),
					netaddr.EndpointOf(netaddr.MustParseAddr("8.1.0.0")+netaddr.Addr(rng.Intn(64)), 443))
				_, va := a.TranslateOut(f, now)
				_, ref, vb := b.TranslateOutRef(f, now)
				if va != vb {
					t.Fatalf("step %d: verdicts diverge: %v vs %v", step, va, vb)
				}
				if va == Ok {
					flows = append(flows, liveFlow{f: f, ref: ref})
				}
			}
			// Refresh every tracked flow: A through the full translation,
			// B through the handle with fallback.
			keep := flows[:0]
			for _, lf := range flows {
				_, va := a.TranslateOut(lf.f, now)
				okB := b.Refresh(lf.ref, lf.f.Dst, now)
				if !okB {
					var vb Verdict
					_, lf.ref, vb = b.TranslateOutRef(lf.f, now)
					okB = vb == Ok
				}
				if (va == Ok) != okB {
					t.Fatalf("step %d: refresh outcomes diverge: %v vs %v", step, va, okB)
				}
				if okB && rng.Intn(8) > 0 {
					keep = append(keep, lf)
				}
			}
			flows = keep

			if da, db := a.StateDigest(), b.StateDigest(); da != db {
				t.Fatalf("step %d: state digests diverge\n%s\nvs\n%s", step, da, db)
			}
		}
		sa, sb := a.PortStats(), b.PortStats()
		if sa != sb {
			t.Fatalf("%v: port stats diverge: %+v vs %+v", typ, sa, sb)
		}
		pa := a.Metrics.Counter("pkts_out").Value()
		pb := b.Metrics.Counter("pkts_out").Value()
		if pa != pb || pa == 0 {
			t.Fatalf("%v: pkts_out diverge: %d vs %d", typ, pa, pb)
		}
	}
}

// TestRefreshStaleRef: a ref goes permanently stale when its mapping is
// dropped — even after the struct is recycled for a new mapping.
func TestRefreshStaleRef(t *testing.T) {
	n := New(refreshTestConfig(Symmetric))
	now := time.Unix(0, 0)
	f := netaddr.FlowOf(netaddr.UDP,
		netaddr.MustParseEndpoint("100.64.0.5:4000"),
		netaddr.MustParseEndpoint("8.8.8.8:443"))
	_, ref, v := n.TranslateOutRef(f, now)
	if v != Ok {
		t.Fatal(v)
	}
	if !n.Refresh(ref, f.Dst, now.Add(time.Second)) {
		t.Fatal("fresh ref did not refresh")
	}

	// Idle the mapping out; the ref must report stale, and the refresh
	// attempt itself must have dropped the expired mapping.
	late := now.Add(5 * time.Minute)
	if n.Refresh(ref, f.Dst, late) {
		t.Fatal("refresh succeeded past the idle timeout")
	}
	if n.NumMappings() != 0 {
		t.Fatalf("expired mapping not dropped by Refresh: %d live", n.NumMappings())
	}
	if n.Refresh(ref, f.Dst, late) {
		t.Fatal("stale ref refreshed after drop")
	}

	// Recreate the same flow: the freelist hands back the same struct,
	// but the generation guard keeps the old ref dead.
	_, ref2, v := n.TranslateOutRef(f, late)
	if v != Ok {
		t.Fatal(v)
	}
	if n.Refresh(ref, f.Dst, late.Add(time.Second)) {
		t.Fatal("pre-recycle ref refreshed the recycled struct's new mapping")
	}
	if !n.Refresh(ref2, f.Dst, late.Add(time.Second)) {
		t.Fatal("current ref did not refresh")
	}
}

// TestRefreshKeepsSymmetricSingleDestination: a symmetric mapping has
// exactly one destination by construction, and Refresh must not let a
// misbehaving caller widen it (which would open the inbound filter).
func TestRefreshKeepsSymmetricSingleDestination(t *testing.T) {
	n := New(refreshTestConfig(Symmetric))
	now := time.Unix(0, 0)
	f := netaddr.FlowOf(netaddr.UDP,
		netaddr.MustParseEndpoint("100.64.0.5:4000"),
		netaddr.MustParseEndpoint("8.8.8.8:443"))
	out, ref, v := n.TranslateOutRef(f, now)
	if v != Ok {
		t.Fatal(v)
	}
	other := netaddr.MustParseEndpoint("9.9.9.9:53")
	if !n.Refresh(ref, other, now.Add(time.Second)) {
		t.Fatal("refresh failed")
	}
	m, ok := n.LookupByExternal(netaddr.UDP, out.Src, now.Add(time.Second))
	if !ok {
		t.Fatal("mapping lost")
	}
	if m.SentTo(other) {
		t.Error("Refresh recorded a second destination on a symmetric mapping")
	}
	if _, v := n.TranslateIn(netaddr.FlowOf(netaddr.UDP, other, out.Src), now.Add(time.Second)); v != DropFiltered {
		t.Errorf("inbound from the foreign destination: %v, want DropFiltered", v)
	}
}

// TestMappingRecycle: dropped Mapping structs are reused, and a stale
// expiry entry for the previous tenant can neither drop nor reschedule
// the new one.
func TestMappingRecycle(t *testing.T) {
	n := New(refreshTestConfig(Symmetric))
	var created []*Mapping
	n.SetMappingHooks(func(m *Mapping) { created = append(created, m) }, nil)

	now := time.Unix(0, 0)
	f := netaddr.FlowOf(netaddr.UDP,
		netaddr.MustParseEndpoint("100.64.0.5:4000"),
		netaddr.MustParseEndpoint("8.8.8.8:443"))
	if _, v := n.TranslateOut(f, now); v != Ok {
		t.Fatal(v)
	}
	now = now.Add(time.Hour) // expire it
	if removed := n.Sweep(now); removed != 1 {
		t.Fatalf("Sweep removed %d, want 1", removed)
	}
	g := netaddr.FlowOf(netaddr.UDP,
		netaddr.MustParseEndpoint("100.64.0.6:5000"),
		netaddr.MustParseEndpoint("8.8.4.4:443"))
	if _, v := n.TranslateOut(g, now); v != Ok {
		t.Fatal(v)
	}
	if len(created) != 2 {
		t.Fatalf("create hook fired %d times, want 2", len(created))
	}
	if created[0] != created[1] {
		t.Error("dropped Mapping struct was not recycled for the next creation")
	}
	// The recycled struct must carry only the new mapping's state.
	m := created[1]
	if m.Int != g.Src || !m.SentTo(g.Dst) || m.SentTo(f.Dst) {
		t.Errorf("recycled mapping leaked previous state: %+v", m)
	}
	// Drive time forward through many sweeps: the stale entry for the
	// first tenant must never drop the live second mapping (which is
	// kept alive by refreshes).
	for i := 0; i < 50; i++ {
		now = now.Add(10 * time.Second)
		n.Sweep(now)
		if _, v := n.TranslateOut(g, now); v != Ok {
			t.Fatalf("sweep %d: live mapping lost: %v", i, v)
		}
	}
	if n.NumMappings() != 1 {
		t.Fatalf("want exactly the refreshed mapping live, have %d", n.NumMappings())
	}
}

// TestMappingHooks: the create/expire hooks mirror the NAT's own
// counters and per-subscriber session counts exactly, under churn
// across every allocation policy.
func TestMappingHooks(t *testing.T) {
	cfg := refreshTestConfig(Symmetric)
	cfg.UDPTimeout = 25 * time.Second
	n := New(cfg)

	var creates, expires uint64
	live := map[netaddr.Addr]int{}
	n.SetMappingHooks(
		func(m *Mapping) { creates++; live[m.Int.Addr]++ },
		func(m *Mapping) { expires++; live[m.Int.Addr]-- },
	)

	rng := rand.New(rand.NewSource(5))
	now := time.Unix(0, 0)
	for i := 0; i < 3000; i++ {
		src := netaddr.EndpointOf(netaddr.MustParseAddr("100.64.0.1")+netaddr.Addr(rng.Intn(6)), uint16(1024+rng.Intn(2000)))
		dst := netaddr.EndpointOf(netaddr.Addr(0x08000000+uint32(i)), 443)
		n.TranslateOut(netaddr.FlowOf(netaddr.UDP, src, dst), now)
		now = now.Add(time.Duration(rng.Intn(3)) * time.Second)
		if i%64 == 63 {
			n.Sweep(now)
			for addr, c := range live {
				if got := n.Sessions(addr); got != c {
					t.Fatalf("i=%d: hook count for %v = %d, Sessions = %d", i, addr, c, got)
				}
			}
		}
	}
	if creates != n.Metrics.Counter("mappings_created").Value() {
		t.Errorf("create hook fired %d times, counter says %d", creates, n.Metrics.Counter("mappings_created").Value())
	}
	if expires != n.Metrics.Counter("mappings_expired").Value() {
		t.Errorf("expire hook fired %d times, counter says %d", expires, n.Metrics.Counter("mappings_expired").Value())
	}
	if int(creates-expires) != n.NumMappings() {
		t.Errorf("hooks say %d live, table holds %d", creates-expires, n.NumMappings())
	}
}

// TestMultiDestinationMapping: the inline-first destination set must
// behave exactly like the old per-mapping map for the restricted
// filtering policies.
func TestMultiDestinationMapping(t *testing.T) {
	n := New(refreshTestConfig(PortRestricted))
	now := time.Unix(0, 0)
	src := netaddr.MustParseEndpoint("100.64.0.5:4000")
	dsts := []netaddr.Endpoint{
		netaddr.MustParseEndpoint("8.8.8.8:443"),
		netaddr.MustParseEndpoint("8.8.4.4:53"),
		netaddr.MustParseEndpoint("9.9.9.9:123"),
	}
	var out netaddr.Flow
	for _, d := range dsts {
		var v Verdict
		out, v = n.TranslateOut(netaddr.FlowOf(netaddr.UDP, src, d), now)
		if v != Ok {
			t.Fatal(v)
		}
	}
	m, ok := n.LookupByExternal(netaddr.UDP, out.Src, now)
	if !ok {
		t.Fatal("mapping lost")
	}
	for _, d := range dsts {
		if !m.SentTo(d) {
			t.Errorf("SentTo(%v) = false after contact", d)
		}
		if !m.SentToAddr(d.Addr) {
			t.Errorf("SentToAddr(%v) = false after contact", d.Addr)
		}
		// Inbound from every contacted endpoint passes port-restricted
		// filtering; an uncontacted one is filtered.
		if _, v := n.TranslateIn(netaddr.FlowOf(netaddr.UDP, d, out.Src), now); v != Ok {
			t.Errorf("inbound from contacted %v: %v", d, v)
		}
	}
	if m.SentTo(netaddr.MustParseEndpoint("1.1.1.1:80")) || m.SentToAddr(netaddr.MustParseAddr("1.1.1.1")) {
		t.Error("uncontacted destination reported as sent-to")
	}
	if _, v := n.TranslateIn(netaddr.FlowOf(netaddr.UDP, netaddr.MustParseEndpoint("1.1.1.1:80"), out.Src), now); v != DropFiltered {
		t.Errorf("inbound from stranger: %v, want DropFiltered", v)
	}
}
