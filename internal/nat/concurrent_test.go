package nat

import (
	"sync"
	"testing"
	"time"

	"cgn/internal/netaddr"
)

// TestConcurrentNATInstances drives independent NAT instances from
// parallel goroutines — the campaign engine's usage pattern, where each
// worker owns one world's NATs. The test exists for the race detector: it
// fails the -race CI step if any state (package-level tables, shared
// allocator internals, metrics registries) accidentally leaks across
// instances.
func TestConcurrentNATInstances(t *testing.T) {
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, alloc := range []PortAlloc{Preservation, Sequential, Random, RandomChunk} {
				cfg := baseConfig()
				cfg.Type = Symmetric
				cfg.PortAlloc = alloc
				cfg.ChunkSize = 512
				cfg.PortLo, cfg.PortHi = 1024, 9215
				cfg.PortQuotaPerSubscriber = 64
				cfg.UDPTimeout = 30 * time.Second
				cfg.Seed = int64(w + 1)
				n := New(cfg)
				now := t0
				for i := 0; i < 1500; i++ {
					src := netaddr.EndpointOf(netaddr.AddrFrom4(100, 64, byte(w), byte(i%40)), uint16(2000+i%50))
					dst := netaddr.EndpointOf(netaddr.AddrFrom4(8, 8, byte(i%5), byte(i%250+1)), 53)
					out, v := n.TranslateOut(flowUDP(src, dst), now)
					if v == Ok {
						n.TranslateIn(flowUDP(dst, out.Src), now)
					}
					if i%7 == 0 {
						now = now.Add(3 * time.Second)
					}
					if i%100 == 0 {
						n.Sweep(now)
					}
				}
				st := n.PortStats()
				if st.InUse != n.NumMappings() {
					t.Errorf("worker %d %v: InUse=%d, mappings=%d", w, alloc, st.InUse, n.NumMappings())
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestConcurrentShardedFacade drives one Sharded NAT from a goroutine
// per shard — the traffic engine's shard-phase pattern, where each
// worker sweeps, refreshes and translates only on the lanes its shard
// owns. Like TestConcurrentNATInstances it exists for the race
// detector: lanes must share no mutable state, and the aggregation
// methods must be clean once workers have joined the barrier. It also
// re-checks shard-count invariance under real concurrency by digesting
// against a sequentially driven shards=1 twin fed the same schedule.
func TestConcurrentShardedFacade(t *testing.T) {
	cfg := shardedConfig(8)
	cfg.Type = Symmetric
	cfg.PortQuotaPerSubscriber = 64
	const subsPerLane = 24
	const ticks = 40

	run := func(shards int) *Sharded {
		s := NewSharded(cfg, shards)
		// Partition subscribers by owning lane up front so every engine
		// call below touches exactly one shard's lanes.
		laneSubs := make([][]netaddr.Addr, s.NumLanes())
		for i := 0; len(laneSubs[s.NumLanes()-1]) < subsPerLane; i++ {
			a := subAddr(i)
			l := s.LaneFor(a)
			if len(laneSubs[l]) < subsPerLane {
				laneSubs[l] = append(laneSubs[l], a)
			}
		}
		shardTick := func(shard, tick int, now time.Time) {
			s.SweepShard(shard, now)
			for l := shard; l < s.NumLanes(); l += s.NumShards() {
				lane := s.Lane(l)
				for j, a := range laneSubs[l] {
					src := netaddr.EndpointOf(a, uint16(3000+tick*7+j))
					dst := netaddr.EndpointOf(netaddr.AddrFrom4(8, 8, byte(tick%5), byte(j+1)), 443)
					out, r, v := lane.TranslateOutRef(flowUDP(src, dst), now)
					if v != Ok {
						continue
					}
					lane.TranslateIn(flowUDP(dst, out.Src), now)
					if tick%3 == j%3 {
						lane.Refresh(r, netaddr.Endpoint{}, now)
					}
				}
			}
		}
		now := t0
		for tick := 0; tick < ticks; tick++ {
			if shards == 1 {
				shardTick(0, tick, now)
			} else {
				var wg sync.WaitGroup
				for shard := 1; shard < s.NumShards(); shard++ {
					wg.Add(1)
					go func(shard int) {
						defer wg.Done()
						shardTick(shard, tick, now)
					}(shard)
				}
				shardTick(0, tick, now)
				wg.Wait()
			}
			// Aggregation between barriers, as the traffic engine does.
			if st := s.PortStats(); st.InUse != s.NumMappings() {
				t.Errorf("shards=%d tick %d: InUse=%d, mappings=%d", shards, tick, st.InUse, s.NumMappings())
			}
			now = now.Add(5 * time.Second)
		}
		return s
	}

	seq := run(1)
	for _, shards := range []int{2, 4, 8} {
		par := run(shards)
		if got, want := par.StateDigest(), seq.StateDigest(); got != want {
			t.Errorf("shards=%d digest %s, want shards=1 digest %s", shards, got, want)
		}
	}
}
