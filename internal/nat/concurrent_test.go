package nat

import (
	"sync"
	"testing"
	"time"

	"cgn/internal/netaddr"
)

// TestConcurrentNATInstances drives independent NAT instances from
// parallel goroutines — the campaign engine's usage pattern, where each
// worker owns one world's NATs. The test exists for the race detector: it
// fails the -race CI step if any state (package-level tables, shared
// allocator internals, metrics registries) accidentally leaks across
// instances.
func TestConcurrentNATInstances(t *testing.T) {
	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, alloc := range []PortAlloc{Preservation, Sequential, Random, RandomChunk} {
				cfg := baseConfig()
				cfg.Type = Symmetric
				cfg.PortAlloc = alloc
				cfg.ChunkSize = 512
				cfg.PortLo, cfg.PortHi = 1024, 9215
				cfg.PortQuotaPerSubscriber = 64
				cfg.UDPTimeout = 30 * time.Second
				cfg.Seed = int64(w + 1)
				n := New(cfg)
				now := t0
				for i := 0; i < 1500; i++ {
					src := netaddr.EndpointOf(netaddr.AddrFrom4(100, 64, byte(w), byte(i%40)), uint16(2000+i%50))
					dst := netaddr.EndpointOf(netaddr.AddrFrom4(8, 8, byte(i%5), byte(i%250+1)), 53)
					out, v := n.TranslateOut(flowUDP(src, dst), now)
					if v == Ok {
						n.TranslateIn(flowUDP(dst, out.Src), now)
					}
					if i%7 == 0 {
						now = now.Add(3 * time.Second)
					}
					if i%100 == 0 {
						n.Sweep(now)
					}
				}
				st := n.PortStats()
				if st.InUse != n.NumMappings() {
					t.Errorf("worker %d %v: InUse=%d, mappings=%d", w, alloc, st.InUse, n.NumMappings())
				}
			}
		}(w)
	}
	wg.Wait()
}
