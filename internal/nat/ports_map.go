package nat

import (
	"math/rand"

	"cgn/internal/netaddr"
)

// mapPortSpace is the original map-of-used-ports allocator, kept as the
// reference implementation: the differential tests assert that the bitmap
// engine makes draw-for-draw identical decisions, and the allocator
// benchmarks measure the bitmap's speedup against it. It is not used on
// any production path — per-allocation cost degrades to O(range) map
// probes as the pool fills.
type mapPortSpace struct {
	lo, hi uint16
	used   map[portKey]bool
	// seqNext holds the next candidate port for Sequential allocation;
	// seqSeeded marks cursors the engine positioned explicitly.
	seqNext   map[seqKey]uint16
	seqSeeded map[seqKey]bool
	// freeCnt mirrors the bitmap engine's per-segment free counters so
	// both implementations short-circuit exhausted full-range allocations
	// without consuming the RNG — a draw-for-draw parity requirement of
	// the differential tests.
	freeCnt map[seqKey]int
}

type portKey struct {
	ip    netaddr.Addr
	proto netaddr.Proto
	port  uint16
}

// seqKey keys the reference allocator's per-(IP, protocol) maps. (The
// bitmap engine packs the pair into one word instead — see segKey.)
type seqKey struct {
	ip    netaddr.Addr
	proto netaddr.Proto
}

func newMapPortSpace(lo, hi uint16) *mapPortSpace {
	return &mapPortSpace{
		lo: lo, hi: hi,
		used:      make(map[portKey]bool),
		seqNext:   make(map[seqKey]uint16),
		seqSeeded: make(map[seqKey]bool),
		freeCnt:   make(map[seqKey]int),
	}
}

// segFree returns the free-port count for (ip, proto), lazily initialized
// to the full range.
func (s *mapPortSpace) segFree(ip netaddr.Addr, p netaddr.Proto) int {
	k := seqKey{ip, p}
	n, ok := s.freeCnt[k]
	if !ok {
		n = s.size()
		s.freeCnt[k] = n
	}
	return n
}

func (s *mapPortSpace) size() int { return int(s.hi) - int(s.lo) + 1 }

func (s *mapPortSpace) isFree(ip netaddr.Addr, p netaddr.Proto, port uint16) bool {
	return !s.used[portKey{ip, p, port}]
}

func (s *mapPortSpace) take(ip netaddr.Addr, p netaddr.Proto, port uint16) {
	k := portKey{ip, p, port}
	if s.used[k] {
		return
	}
	s.used[k] = true
	s.freeCnt[seqKey{ip, p}] = s.segFree(ip, p) - 1
}

func (s *mapPortSpace) free(e netaddr.Endpoint, p netaddr.Proto) {
	k := portKey{e.Addr, p, e.Port}
	if !s.used[k] {
		return
	}
	delete(s.used, k)
	s.freeCnt[seqKey{e.Addr, p}]++
}

func (s *mapPortSpace) takePreferred(ip netaddr.Addr, p netaddr.Proto, want uint16, rng *rand.Rand) (uint16, bool) {
	if want < s.lo || want > s.hi {
		seedSequentialMidCycle(s, s.lo, ip, p, rng)
		return s.takeSequential(ip, p)
	}
	port := want
	for i := 0; i < s.size(); i++ {
		if s.isFree(ip, p, port) {
			s.take(ip, p, port)
			return port, true
		}
		if port == s.hi {
			port = s.lo
		} else {
			port++
		}
	}
	return 0, false
}

func (s *mapPortSpace) seedSequential(ip netaddr.Addr, p netaddr.Proto, start uint16) {
	k := seqKey{ip, p}
	if !s.seqSeeded[k] && start >= s.lo && start <= s.hi {
		s.seqNext[k] = start
		s.seqSeeded[k] = true
	}
}

func (s *mapPortSpace) sequentialSeeded(ip netaddr.Addr, p netaddr.Proto) bool {
	return s.seqSeeded[seqKey{ip, p}]
}

func (s *mapPortSpace) takeSequential(ip netaddr.Addr, p netaddr.Proto) (uint16, bool) {
	k := seqKey{ip, p}
	start, ok := s.seqNext[k]
	if !ok || start < s.lo || start > s.hi {
		start = s.lo
	}
	port := start
	for i := 0; i < s.size(); i++ {
		if s.isFree(ip, p, port) {
			s.take(ip, p, port)
			next := port + 1
			if next > s.hi || next < s.lo {
				next = s.lo
			}
			s.seqNext[k] = next
			s.seqSeeded[k] = true
			return port, true
		}
		if port == s.hi {
			port = s.lo
		} else {
			port++
		}
	}
	return 0, false
}

func (s *mapPortSpace) takeRandom(ip netaddr.Addr, p netaddr.Proto, rng *rand.Rand) (uint16, bool) {
	return s.takeRandomIn(ip, p, s.lo, s.hi, rng)
}

func (s *mapPortSpace) takeRandomIn(ip netaddr.Addr, p netaddr.Proto, lo, hi uint16, rng *rand.Rand) (uint16, bool) {
	if lo < s.lo {
		lo = s.lo
	}
	if hi > s.hi {
		hi = s.hi
	}
	if lo > hi {
		return 0, false
	}
	if lo == s.lo && hi == s.hi && s.segFree(ip, p) == 0 {
		return 0, false
	}
	span := int(hi) - int(lo) + 1
	for i := 0; i < 32; i++ {
		port := lo + uint16(rng.Intn(span))
		if s.isFree(ip, p, port) {
			s.take(ip, p, port)
			return port, true
		}
	}
	offset := rng.Intn(span)
	for i := 0; i < span; i++ {
		port := lo + uint16((offset+i)%span)
		if s.isFree(ip, p, port) {
			s.take(ip, p, port)
			return port, true
		}
	}
	return 0, false
}
