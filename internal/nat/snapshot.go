package nat

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"cgn/internal/netaddr"
)

// Snapshot is a complete serialization of one NAT engine's mutable
// state: every live mapping with its destination set and activity
// stamps, every subscriber's seen flag and pooling pin, the port-space
// high-water mark and sequential cursors, the chunk-allocation table,
// the metric counters, the Paired round-robin position and the random
// stream position (as draw counts — see countingSource). All fields are
// exported so the struct gob-encodes; the checkpoint codec on top adds
// versioning, checksums and atomic writes.
//
// A NAT restored from its snapshot under the same Config continues
// byte-identically to the original: same allocation draws (the RNG is
// replayed to position), same verdicts, same StateDigest now and after
// any further traffic. Incidental layout — hash-table probe chains,
// slab/freelist recycling order, expiry-bucket grouping — is not
// captured because it is unobservable: the expiry schedule, for
// instance, is rebuilt by scheduling every mapping at its true deadline
// (lastActive + timeout), which is exactly where lazy re-bucketing
// would have placed it before the mapping's next state change.
type Snapshot struct {
	// ConfigSig fingerprints the effective (defaults-applied) Config the
	// snapshot was taken under; restore refuses a mismatch rather than
	// silently diverging.
	ConfigSig string
	// Rand63/Rand64 position the engine's random stream: how many Int63
	// and Uint64 draws the seeded source has served.
	Rand63, Rand64 uint64
	// RRNext is the Paired/Arbitrary pooling round-robin cursor.
	RRNext int
	// PortPeak is the port-space high-water mark (PortStats.Peak).
	PortPeak    int
	Mappings    []MappingState
	Subscribers []SubscriberState
	Cursors     []SeqCursorState
	Chunks      []ChunkState
	Counters    map[string]uint64
}

// MappingState serializes one live mapping. The byInt key is not stored:
// it is recomputed from (Proto, Int, Dst0), which is how translateOut
// derived it (for symmetric NATs the key's destination half is the
// creating flow's destination — by definition Dst0).
type MappingState struct {
	Proto               netaddr.Proto
	Int, Ext            netaddr.Endpoint
	Created, LastActive int64
	Dst0                netaddr.Endpoint
	ExtraDsts           []netaddr.Endpoint
}

// SubscriberState serializes one subscriber-table entry that carries
// state beyond its existence: the ever-mapped flag, the Paired pool
// pin and the allocation token bucket. Session and held-port counts
// are not stored — they are reconstructed exactly by replaying the
// mapping list.
type SubscriberState struct {
	Addr      netaddr.Addr
	Seen      bool
	HasPaired bool
	Paired    netaddr.Addr
	// TBInit/TBTokens/TBLast carry the AllocRatePerSec token bucket; all
	// zero when the limiter is off or the subscriber never allocated.
	TBInit   bool
	TBTokens float64
	TBLast   int64
}

// SeqCursorState serializes one (external IP, protocol) sequential-
// allocation cursor, including cursors whose segment currently holds no
// ports (the position still determines the next draw).
type SeqCursorState struct {
	IP     netaddr.Addr
	Proto  netaddr.Proto
	Seq    int
	Seeded bool
}

// ChunkState serializes one chunk-table assignment: subscriber Sub owns
// the chunk based at Base on external IP.
type ChunkState struct {
	IP, Sub netaddr.Addr
	Base    uint16
}

// configSig fingerprints the effective configuration. %#v over Config is
// deterministic — the struct holds only value types and one slice.
func configSig(c Config) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", c)))
	return hex.EncodeToString(sum[:8])
}

// Snapshot captures the engine's complete mutable state. The caller
// must not be concurrently translating (same rule as StateDigest).
func (n *NAT) Snapshot() *Snapshot {
	s := &Snapshot{
		ConfigSig: configSig(n.cfg),
		Rand63:    n.rngSrc.n63,
		Rand64:    n.rngSrc.n64,
		RRNext:    n.rrNext,
		PortPeak:  n.ports.peak,
		Counters:  n.Metrics.Counters(),
	}
	n.byInt.forEach(func(m *Mapping) {
		ms := MappingState{
			Proto:      m.Proto,
			Int:        m.Int,
			Ext:        m.Ext,
			Created:    m.created,
			LastActive: m.lastActive,
			Dst0:       m.dst0,
		}
		if len(m.extraDsts) > 0 {
			ms.ExtraDsts = make([]netaddr.Endpoint, 0, len(m.extraDsts))
			for d := range m.extraDsts {
				ms.ExtraDsts = append(ms.ExtraDsts, d)
			}
		}
		s.Mappings = append(s.Mappings, ms)
	})
	n.subs.forEach(func(e *subEntry) {
		if !e.seen && !e.hasPaired && !e.tbInit {
			// The entry exists only because a translation attempt probed
			// it before being dropped; it carries no observable state.
			return
		}
		s.Subscribers = append(s.Subscribers, SubscriberState{
			Addr: e.addr, Seen: e.seen, HasPaired: e.hasPaired, Paired: e.paired,
			TBInit: e.tbInit, TBTokens: e.tbTokens, TBLast: e.tbLast,
		})
	})
	for i, k := range n.ports.segKeys {
		g := n.ports.segVals[i]
		if !g.seeded {
			continue
		}
		s.Cursors = append(s.Cursors, SeqCursorState{
			IP:    netaddr.Addr(k >> 8),
			Proto: netaddr.Proto(k & 0xff),
			Seq:   g.seq, Seeded: true,
		})
	}
	if n.chunks != nil {
		for k, base := range n.chunks.assigned {
			s.Chunks = append(s.Chunks, ChunkState{IP: k.ip, Sub: k.sub, Base: base})
		}
	}
	return s
}

// NewFromSnapshot rebuilds an engine from a snapshot taken under the
// same configuration. Every error return names what is inconsistent; a
// malformed snapshot never panics the restore.
func NewFromSnapshot(cfg Config, s *Snapshot) (*NAT, error) {
	if s == nil {
		return nil, fmt.Errorf("nat: restore: nil snapshot")
	}
	n := New(cfg)
	if sig := configSig(n.cfg); sig != s.ConfigSig {
		return nil, fmt.Errorf("nat: restore: config signature %s does not match snapshot %s (the snapshot was taken under a different configuration)", sig, s.ConfigSig)
	}
	n.rngSrc.replay(s.Rand63, s.Rand64)
	n.rrNext = s.RRNext

	for _, ss := range s.Subscribers {
		e, _ := n.subs.ensure(ss.Addr)
		if ss.Seen && !e.seen {
			e.seen = true
			n.subs.seen++
		}
		e.hasPaired, e.paired = ss.HasPaired, ss.Paired
		e.tbInit, e.tbTokens, e.tbLast = ss.TBInit, ss.TBTokens, ss.TBLast
	}
	if n.chunks != nil {
		for _, cs := range s.Chunks {
			k := chunkKey{cs.IP, cs.Sub}
			if _, dup := n.chunks.assigned[k]; dup {
				return nil, fmt.Errorf("nat: restore: duplicate chunk assignment for %v on %v", cs.Sub, cs.IP)
			}
			n.chunks.assigned[k] = cs.Base
			n.chunks.taken[baseKey{cs.IP, cs.Base}] = true
		}
	} else if len(s.Chunks) > 0 {
		return nil, fmt.Errorf("nat: restore: snapshot has chunk assignments but the configuration is not chunk-allocated")
	}

	for _, ms := range s.Mappings {
		e, eSlot := n.subs.ensure(ms.Int.Addr)
		if !e.seen {
			return nil, fmt.Errorf("nat: restore: mapping for subscriber %v not in the subscriber list", ms.Int.Addr)
		}
		k := n.intKeyFor(netaddr.Flow{Proto: ms.Proto, Src: ms.Int, Dst: ms.Dst0})
		if n.byInt.get(k) != nil {
			return nil, fmt.Errorf("nat: restore: duplicate mapping key for %v %v", ms.Proto, ms.Int)
		}
		if !n.ports.isFree(ms.Ext.Addr, ms.Proto, ms.Ext.Port) {
			return nil, fmt.Errorf("nat: restore: external endpoint %v/%v claimed twice", ms.Ext, ms.Proto)
		}
		m := n.newMapping()
		m.Proto, m.Int, m.Ext = ms.Proto, ms.Int, ms.Ext
		m.dst0, m.lastDst = ms.Dst0, ms.Dst0
		m.created, m.lastActive = ms.Created, ms.LastActive
		m.key = k
		m.subGen, m.subSlot = n.subs.gen, eSlot
		for _, d := range ms.ExtraDsts {
			if m.extraDsts == nil {
				m.extraDsts = make(map[netaddr.Endpoint]bool, len(ms.ExtraDsts))
			}
			m.extraDsts[d] = true
		}
		n.byInt.put(k, m)
		n.extLog = append(n.extLog, extLogEntry{m, m.gen})
		n.ports.take(ms.Ext.Addr, ms.Proto, ms.Ext.Port)
		e.sessions++
		if e.sessions == 1 {
			n.subs.live++
		}
		n.notePortHeld(e, ms.Ext.Port)
		n.exp.push(ms.LastActive+int64(n.timeout(ms.Proto)), m, m.gen)
	}

	if s.PortPeak < n.ports.inUse {
		return nil, fmt.Errorf("nat: restore: port peak %d below restored occupancy %d", s.PortPeak, n.ports.inUse)
	}
	n.ports.peak = s.PortPeak
	for _, cs := range s.Cursors {
		if cs.Seq < 0 || cs.Seq >= n.ports.size() {
			return nil, fmt.Errorf("nat: restore: sequential cursor %d outside port range", cs.Seq)
		}
		g := n.ports.seg(cs.IP, cs.Proto)
		g.seq, g.seeded = cs.Seq, cs.Seeded
	}
	for name, v := range s.Counters {
		n.Metrics.Counter(name).Store(v)
	}
	n.gLive.Set(int64(n.byInt.n))
	return n, nil
}

// RefForFlow returns a stable handle to the live mapping outbound flow f
// currently translates through, without creating state, counting a
// packet, or refreshing activity. It exists for checkpoint restore: a
// driver holding MappingRefs across a serialize/rebuild boundary relinks
// them by flow. A missing or expired-but-unswept mapping reports false —
// the caller falls back to TranslateOutRef exactly as for any stale ref.
func (n *NAT) RefForFlow(f netaddr.Flow) (MappingRef, bool) {
	m := n.byInt.get(n.intKeyFor(f))
	if m == nil || m.dead {
		return MappingRef{}, false
	}
	return MappingRef{m: m, gen: m.gen}, true
}

// RefForFlow resolves the handle on the subscriber's active lane, then
// on the remaining lanes: a flow opened against a failover lane keeps
// its mapping there after the primary is restored, and relink must find
// it wherever it lives. A flow's mapping exists on at most one lane, so
// the first hit is the answer; a full-scan miss (the mapping expired) is
// rare and pool sizes are a handful of lanes.
func (s *Sharded) RefForFlow(f netaddr.Flow) (MappingRef, bool) {
	al := s.ActiveLaneFor(f.Src.Addr)
	if r, ok := s.lanes[al].RefForFlow(f); ok {
		return r, true
	}
	for l, lane := range s.lanes {
		if l == al {
			continue
		}
		if r, ok := lane.RefForFlow(f); ok {
			return r, true
		}
	}
	return MappingRef{}, false
}

// Snapshot serializes every lane's engine, in lane order. Lane state is
// disjoint, so the slice is the sharded NAT's complete state.
func (s *Sharded) Snapshot() []*Snapshot {
	out := make([]*Snapshot, len(s.lanes))
	for l, lane := range s.lanes {
		out[l] = lane.Snapshot()
	}
	return out
}

// NewShardedFromSnapshot rebuilds a sharded NAT from per-lane snapshots
// taken under the same configuration. The shard count is an execution
// grouping, not state: any value restores any snapshot, and the restored
// engine is byte-identical to the original at every shard count.
func NewShardedFromSnapshot(cfg Config, shards int, lanes []*Snapshot) (*Sharded, error) {
	c := cfg.withDefaults()
	if len(lanes) != len(c.ExternalIPs) {
		return nil, fmt.Errorf("nat: restore: %d lane snapshots for a %d-IP pool", len(lanes), len(c.ExternalIPs))
	}
	if shards < 1 {
		shards = 1
	}
	if shards > len(c.ExternalIPs) {
		shards = len(c.ExternalIPs)
	}
	s := &Sharded{
		cfg:         c,
		lanes:       make([]*NAT, len(c.ExternalIPs)),
		shards:      shards,
		extLaneKeys: make([]netaddr.Addr, len(c.ExternalIPs)),
		extLaneVals: make([]int, len(c.ExternalIPs)),
	}
	for l := range s.lanes {
		laneCfg := c
		laneCfg.Name = fmt.Sprintf("%s/lane%d", c.Name, l)
		laneCfg.ExternalIPs = []netaddr.Addr{c.ExternalIPs[l]}
		laneCfg.Seed = c.Seed + int64(l+1)*shardedLaneSeedMix
		lane, err := NewFromSnapshot(laneCfg, lanes[l])
		if err != nil {
			return nil, fmt.Errorf("lane %d: %w", l, err)
		}
		s.lanes[l] = lane
		s.extLaneKeys[l] = c.ExternalIPs[l]
		s.extLaneVals[l] = l
	}
	return s, nil
}
