package nat

import (
	"math/rand"
	"testing"
	"time"

	"cgn/internal/netaddr"
)

// benchChurn measures steady-state allocation at a fixed occupancy: the
// space is pre-filled to `active` live ports, then every iteration frees
// one pseudo-random port and allocates a replacement under the given
// policy. This is the CGN regime the paper's §6 provisioning analysis
// cares about — tens of thousands of live mappings churning — and the
// regime where the map-based reference degrades to O(range) scans.
func benchChurn(b *testing.B, s portAllocator, alloc PortAlloc, active int) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	ops := rand.New(rand.NewSource(2))
	live := make([]uint16, 0, active+1)
	for len(live) < active {
		p, ok := s.takeSequential(extIP, netaddr.UDP)
		if !ok {
			b.Fatal("pre-fill exhausted the space")
		}
		live = append(live, p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := ops.Intn(len(live))
		s.free(netaddr.EndpointOf(extIP, live[j]), netaddr.UDP)
		var p uint16
		var ok bool
		switch alloc {
		case Preservation:
			want := 1024 + uint16(ops.Intn(64512))
			p, ok = s.takePreferred(extIP, netaddr.UDP, want, rng)
		case Sequential:
			p, ok = s.takeSequential(extIP, netaddr.UDP)
		default:
			p, ok = s.takeRandom(extIP, netaddr.UDP, rng)
		}
		if !ok {
			b.Fatal("allocation failed with free ports available")
		}
		live[j] = p
	}
}

// BenchmarkPortAllocator compares the bitmap engine against the map-based
// reference at 50k active mappings (~78% occupancy of one external IP).
// The bitmap/map ratio per policy is the allocator speedup; CI uploads
// this output as the perf baseline.
func BenchmarkPortAllocator(b *testing.B) {
	impls := []struct {
		name string
		mk   func() portAllocator
	}{
		{"bitmap", func() portAllocator { return newPortSpace(1024, 65535) }},
		{"map", func() portAllocator { return newMapPortSpace(1024, 65535) }},
	}
	for _, impl := range impls {
		for _, alloc := range []PortAlloc{Sequential, Random, Preservation} {
			b.Run(impl.name+"/"+alloc.String()+"/active=50k", func(b *testing.B) {
				benchChurn(b, impl.mk(), alloc, 50000)
			})
		}
	}
}

// BenchmarkSweep measures heap-based expiry at depth: 50k mappings with
// staggered deadlines, each iteration sweeping one 1-second slice of
// expirations (~500 mappings) — the virtual-time jumps the simulator
// performs.
func BenchmarkSweep(b *testing.B) {
	cfg := Config{
		Type:        Symmetric,
		PortAlloc:   Sequential,
		Pooling:     Paired,
		ExternalIPs: []netaddr.Addr{extIP},
		UDPTimeout:  100 * time.Second,
		Seed:        1,
	}
	now := t0
	var n *NAT
	i := 0
	refill := func() {
		n = New(cfg)
		for j := 0; j < 50000; j++ {
			dst := netaddr.EndpointOf(netaddr.AddrFrom4(8, byte(j>>16), byte(j>>8), byte(j)), 53)
			src := netaddr.EndpointOf(netaddr.AddrFrom4(100, 64, byte(j>>8), byte(j)), 4000)
			if _, v := n.TranslateOut(flowUDP(src, dst), now.Add(time.Duration(j%100)*time.Second)); v != Ok {
				b.Fatal(v)
			}
		}
	}
	refill()
	sweepAt := now.Add(101 * time.Second)
	b.ResetTimer()
	for ; i < b.N; i++ {
		n.Sweep(sweepAt)
		sweepAt = sweepAt.Add(time.Second)
		if n.NumMappings() == 0 {
			b.StopTimer()
			sweepAt = now.Add(101 * time.Second)
			refill()
			b.StartTimer()
		}
	}
}
