package nat

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
	"time"

	"cgn/internal/netaddr"
)

// snapOp is one scripted driver action; precomputing the script lets the
// continuation tests replay ticks k..T against a restored engine with
// exactly the traffic the uninterrupted engine saw.
type snapOp struct {
	f      netaddr.Flow
	atTick int
}

// scriptOps builds a deterministic traffic script: subscribers opening
// flows to a revisited destination set (exercising the destination-set
// and memo paths), plus inbound probes at previously-seen external
// endpoints via round-trips.
func scriptOps(seed int64, subs, ticks, perTick int) []snapOp {
	rng := rand.New(rand.NewSource(seed))
	var ops []snapOp
	for t := 0; t < ticks; t++ {
		for i := 0; i < perTick; i++ {
			sub := netaddr.Addr(0x0A400001 + uint32(rng.Intn(subs)))
			f := netaddr.Flow{
				Proto: netaddr.UDP,
				Src:   netaddr.Endpoint{Addr: sub, Port: uint16(1024 + rng.Intn(2000))},
				Dst:   netaddr.Endpoint{Addr: netaddr.Addr(0x08080000 + uint32(rng.Intn(64))), Port: 443},
			}
			if rng.Intn(8) == 0 {
				f.Proto = netaddr.TCP
			}
			ops = append(ops, snapOp{f: f, atTick: t})
		}
	}
	return ops
}

// driveOps applies ops whose tick is in [fromTick, toTick), sweeping at
// every tick boundary, and returns a per-op verdict trace.
func driveOps(n interface {
	TranslateOut(f netaddr.Flow, now time.Time) (netaddr.Flow, Verdict)
	Sweep(now time.Time) int
}, ops []snapOp, fromTick, toTick int) []Verdict {
	base := time.Unix(0, 0)
	var verdicts []Verdict
	tick := fromTick
	now := base.Add(time.Duration(tick) * 10 * time.Second)
	n.Sweep(now)
	for _, op := range ops {
		if op.atTick < fromTick || op.atTick >= toTick {
			continue
		}
		for op.atTick > tick {
			tick++
			now = base.Add(time.Duration(tick) * 10 * time.Second)
			n.Sweep(now)
		}
		_, v := n.TranslateOut(op.f, now)
		verdicts = append(verdicts, v)
	}
	return verdicts
}

func snapshotConfigs() map[string]Config {
	pool := []netaddr.Addr{
		netaddr.MustParseAddr("192.0.2.1"),
		netaddr.MustParseAddr("192.0.2.2"),
		netaddr.MustParseAddr("192.0.2.3"),
	}
	return map[string]Config{
		"preservation-paired": {
			Name: "snap-a", Type: PortRestricted, PortAlloc: Preservation,
			Pooling: Paired, ExternalIPs: pool,
			PortLo: 2048, PortHi: 4095, UDPTimeout: 30 * time.Second, Seed: 11,
		},
		"sequential-arbitrary": {
			Name: "snap-b", Type: FullCone, PortAlloc: Sequential,
			Pooling: Arbitrary, ExternalIPs: pool,
			PortLo: 2048, PortHi: 2303, UDPTimeout: 25 * time.Second, Seed: 12,
			MaxSessionsPerSubscriber: 24,
		},
		"random-symmetric": {
			Name: "snap-c", Type: Symmetric, PortAlloc: Random,
			Pooling: Paired, ExternalIPs: pool[:2],
			PortLo: 2048, PortHi: 2175, UDPTimeout: 40 * time.Second, Seed: 13,
			PortQuotaPerSubscriber: 12,
		},
		"chunk": {
			Name: "snap-d", Type: PortRestricted, PortAlloc: RandomChunk,
			ChunkSize: 64, Pooling: Paired, ExternalIPs: pool,
			PortLo: 2048, PortHi: 4095, UDPTimeout: 35 * time.Second, Seed: 14,
		},
	}
}

// TestSnapshotContinuation is the core restore contract: serialize an
// engine mid-run (through a gob round-trip, as the checkpoint codec
// does), rebuild it, drive both engines through identical remaining
// traffic, and require identical verdicts and an identical StateDigest
// at every configuration.
func TestSnapshotContinuation(t *testing.T) {
	for name, cfg := range snapshotConfigs() {
		t.Run(name, func(t *testing.T) {
			ops := scriptOps(99, 40, 24, 30)
			const cut = 12

			ref := New(cfg)
			driveOps(ref, ops, 0, cut)

			snap := ref.Snapshot()
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
				t.Fatalf("gob encode: %v", err)
			}
			var decoded Snapshot
			if err := gob.NewDecoder(&buf).Decode(&decoded); err != nil {
				t.Fatalf("gob decode: %v", err)
			}
			restored, err := NewFromSnapshot(cfg, &decoded)
			if err != nil {
				t.Fatalf("NewFromSnapshot: %v", err)
			}
			if got, want := restored.StateDigest(), ref.StateDigest(); got != want {
				t.Fatalf("digest diverges immediately after restore:\n got %s\nwant %s", got, want)
			}

			vRef := driveOps(ref, ops, cut, 24)
			vRes := driveOps(restored, ops, cut, 24)
			if len(vRef) != len(vRes) {
				t.Fatalf("verdict trace lengths differ: %d vs %d", len(vRef), len(vRes))
			}
			for i := range vRef {
				if vRef[i] != vRes[i] {
					t.Fatalf("verdict %d diverges: uninterrupted %v, restored %v", i, vRef[i], vRes[i])
				}
			}
			if got, want := restored.StateDigest(), ref.StateDigest(); got != want {
				t.Fatalf("digest diverges after continuation:\n got %s\nwant %s", got, want)
			}
			if got, want := restored.PortStats(), ref.PortStats(); got != want {
				t.Fatalf("port stats diverge: %+v vs %+v", got, want)
			}
			if got, want := restored.Metrics.Counters(), ref.Metrics.Counters(); len(got) != len(want) {
				t.Fatalf("counter sets diverge: %v vs %v", got, want)
			} else {
				for k, v := range want {
					if got[k] != v {
						t.Fatalf("counter %s diverges: %d vs %d", k, got[k], v)
					}
				}
			}
		})
	}
}

// TestSnapshotShardedContinuation is the same contract for the sharded
// engine, restored at a different shard count than it was snapshotted
// under — shards are execution grouping, not state.
func TestSnapshotShardedContinuation(t *testing.T) {
	cfg := snapshotConfigs()["preservation-paired"]
	ops := scriptOps(7, 48, 24, 40)
	const cut = 10

	ref := NewSharded(cfg, 3)
	driveOps(ref, ops, 0, cut)
	snap := ref.Snapshot()
	restored, err := NewShardedFromSnapshot(cfg, 2, snap)
	if err != nil {
		t.Fatalf("NewShardedFromSnapshot: %v", err)
	}
	driveOps(ref, ops, cut, 24)
	driveOps(restored, ops, cut, 24)
	if got, want := restored.StateDigest(), ref.StateDigest(); got != want {
		t.Fatalf("sharded digest diverges after continuation:\n got %s\nwant %s", got, want)
	}
}

// TestSnapshotRejectsMismatchedConfig pins the signature check: a
// snapshot restored under any materially different configuration is an
// error, not silent divergence.
func TestSnapshotRejectsMismatchedConfig(t *testing.T) {
	cfg := snapshotConfigs()["sequential-arbitrary"]
	n := New(cfg)
	driveOps(n, scriptOps(3, 8, 4, 6), 0, 4)
	snap := n.Snapshot()

	bad := cfg
	bad.Seed++
	if _, err := NewFromSnapshot(bad, snap); err == nil {
		t.Fatal("restore under a different seed did not fail")
	}
	bad = cfg
	bad.PortHi = 3000
	if _, err := NewFromSnapshot(bad, snap); err == nil {
		t.Fatal("restore under a different port range did not fail")
	}
	if _, err := NewFromSnapshot(cfg, nil); err == nil {
		t.Fatal("restore from a nil snapshot did not fail")
	}
}

// TestSnapshotRejectsCorruptState pins the internal-consistency checks:
// duplicated external endpoints, mappings for unknown subscribers and
// impossible high-water marks are all refused with errors.
func TestSnapshotRejectsCorruptState(t *testing.T) {
	cfg := snapshotConfigs()["sequential-arbitrary"]
	n := New(cfg)
	driveOps(n, scriptOps(3, 8, 4, 6), 0, 4)

	snap := n.Snapshot()
	if len(snap.Mappings) < 2 {
		t.Fatalf("test script created only %d mappings", len(snap.Mappings))
	}

	dup := *n.Snapshot()
	dup.Mappings[1].Ext = dup.Mappings[0].Ext
	dup.Mappings[1].Proto = dup.Mappings[0].Proto
	if _, err := NewFromSnapshot(cfg, &dup); err == nil {
		t.Fatal("duplicate external endpoint accepted")
	}

	orphan := *n.Snapshot()
	orphan.Subscribers = nil
	if _, err := NewFromSnapshot(cfg, &orphan); err == nil {
		t.Fatal("mapping without its subscriber accepted")
	}

	peak := *n.Snapshot()
	peak.PortPeak = 0
	if _, err := NewFromSnapshot(cfg, &peak); err == nil && len(peak.Mappings) > 0 {
		t.Fatal("peak below occupancy accepted")
	}

	cursor := *n.Snapshot()
	cursor.Cursors = append(cursor.Cursors, SeqCursorState{
		IP: cfg.ExternalIPs[0], Proto: netaddr.UDP, Seq: 1 << 20, Seeded: true,
	})
	if _, err := NewFromSnapshot(cfg, &cursor); err == nil {
		t.Fatal("out-of-range sequential cursor accepted")
	}
}

// TestCountingSourceTransparent pins the pass-through property the
// golden digests depend on: an engine drawing through countingSource
// produces exactly the stream a bare math/rand source would.
func TestCountingSourceTransparent(t *testing.T) {
	plain := rand.New(rand.NewSource(42))
	counted := rand.New(newCountingSource(42))
	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0:
			if a, b := plain.Int63(), counted.Int63(); a != b {
				t.Fatalf("Int63 draw %d: %d vs %d", i, a, b)
			}
		case 1:
			if a, b := plain.Intn(997), counted.Intn(997); a != b {
				t.Fatalf("Intn draw %d: %d vs %d", i, a, b)
			}
		case 2:
			if a, b := plain.Float64(), counted.Float64(); a != b {
				t.Fatalf("Float64 draw %d: %g vs %g", i, a, b)
			}
		case 3:
			if a, b := plain.Uint64(), counted.Uint64(); a != b {
				t.Fatalf("Uint64 draw %d: %d vs %d", i, a, b)
			}
		}
	}
}

// TestCountingSourceReplay pins the replay property restore depends on:
// a fresh source replayed to a recorded position continues with exactly
// the draws the original source would have produced next, regardless of
// how Int63 and Uint64 calls interleaved before the snapshot.
func TestCountingSourceReplay(t *testing.T) {
	src := newCountingSource(7)
	r := rand.New(src)
	for i := 0; i < 500; i++ {
		if i%3 == 0 {
			r.Uint64()
		} else {
			r.Intn(100 + i)
		}
	}
	n63, n64 := src.n63, src.n64

	replayed := newCountingSource(7)
	replayed.replay(n63, n64)
	r2 := rand.New(replayed)
	for i := 0; i < 100; i++ {
		if a, b := r.Int63(), r2.Int63(); a != b {
			t.Fatalf("draw %d after replay: %d vs %d", i, a, b)
		}
	}
}

// TestSnapshotRefRelink pins RefForFlow, the handle-relink primitive the
// fleet checkpoint uses: a handle resolved on the restored engine
// refreshes the same mapping the original handle did.
func TestSnapshotRefRelink(t *testing.T) {
	cfg := snapshotConfigs()["preservation-paired"]
	n := New(cfg)
	now := time.Unix(100, 0)
	f := netaddr.Flow{
		Proto: netaddr.UDP,
		Src:   netaddr.Endpoint{Addr: netaddr.MustParseAddr("10.64.0.9"), Port: 5000},
		Dst:   netaddr.Endpoint{Addr: netaddr.MustParseAddr("8.8.8.8"), Port: 443},
	}
	out, _, v := n.TranslateOutRef(f, now)
	if v != Ok {
		t.Fatalf("translate: %v", v)
	}

	restored, err := NewFromSnapshot(cfg, n.Snapshot())
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	ref, ok := restored.RefForFlow(f)
	if !ok {
		t.Fatal("RefForFlow missed the restored mapping")
	}
	if !restored.Refresh(ref, f.Dst, now.Add(time.Second)) {
		t.Fatal("relinked ref did not refresh")
	}
	out2, _, v := restored.TranslateOutRef(f, now.Add(2*time.Second))
	if v != Ok || out2 != out {
		t.Fatalf("restored translation %v/%v, want %v/Ok", out2, v, out)
	}

	if _, ok := restored.RefForFlow(netaddr.Flow{
		Proto: netaddr.UDP,
		Src:   netaddr.Endpoint{Addr: netaddr.MustParseAddr("10.64.0.200"), Port: 1}, Dst: f.Dst,
	}); ok {
		t.Fatal("RefForFlow resolved a never-mapped flow")
	}
}
