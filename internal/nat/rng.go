package nat

import "math/rand"

// countingSource wraps the engine's seeded random source and counts how
// many values each interface method has drawn. It is a pure pass-through
// — every value comes verbatim from the wrapped source, so the engine's
// draw stream (and with it every golden digest) is unchanged — but the
// counts make the otherwise-opaque math/rand state serializable: a
// snapshot records (seed, draws) and a restore replays that many draws
// against a fresh source, leaving the stream positioned exactly where
// the snapshot was taken.
//
// Int63 and Uint64 are counted separately because they consume the
// underlying generator at different rates (math/rand's rngSource yields
// one value per Int63 and two per Uint64); replaying a call count per
// method reproduces the exact stream position regardless of how the
// calls interleaved, since consumption is positional.
type countingSource struct {
	src      rand.Source64
	n63, n64 uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.n63++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.n64++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n63, s.n64 = 0, 0
}

// replay advances a fresh source to a recorded position by issuing the
// counted number of draws and discarding the values.
func (s *countingSource) replay(n63, n64 uint64) {
	for i := uint64(0); i < n63; i++ {
		s.Int63()
	}
	for i := uint64(0); i < n64; i++ {
		s.Uint64()
	}
}
