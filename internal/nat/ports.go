package nat

import (
	"math/rand"

	"cgn/internal/netaddr"
)

// portSpace tracks allocated external ports per (external IP, protocol) and
// implements the search policies behind the allocation strategies.
type portSpace struct {
	lo, hi uint16
	used   map[portKey]bool
	// seqNext holds the next candidate port for Sequential allocation.
	seqNext map[seqKey]uint16
}

type portKey struct {
	ip    netaddr.Addr
	proto netaddr.Proto
	port  uint16
}

type seqKey struct {
	ip    netaddr.Addr
	proto netaddr.Proto
}

func newPortSpace(lo, hi uint16) *portSpace {
	return &portSpace{
		lo: lo, hi: hi,
		used:    make(map[portKey]bool),
		seqNext: make(map[seqKey]uint16),
	}
}

func (s *portSpace) size() int { return int(s.hi) - int(s.lo) + 1 }

func (s *portSpace) isFree(ip netaddr.Addr, p netaddr.Proto, port uint16) bool {
	return !s.used[portKey{ip, p, port}]
}

func (s *portSpace) take(ip netaddr.Addr, p netaddr.Proto, port uint16) {
	s.used[portKey{ip, p, port}] = true
}

func (s *portSpace) free(e netaddr.Endpoint, p netaddr.Proto) {
	delete(s.used, portKey{e.Addr, p, e.Port})
}

// takePreferred implements port preservation: use want if free; otherwise
// scan upward (wrapping) for the nearest free port, which yields the
// near-sequential fallback pattern real NATs exhibit under collision.
func (s *portSpace) takePreferred(ip netaddr.Addr, p netaddr.Proto, want uint16) (uint16, bool) {
	if want < s.lo || want > s.hi {
		// The internal source port is outside the NAT's allocatable range;
		// fall back to a sequential pick.
		return s.takeSequential(ip, p)
	}
	port := want
	for i := 0; i < s.size(); i++ {
		if s.isFree(ip, p, port) {
			s.take(ip, p, port)
			return port, true
		}
		if port == s.hi {
			port = s.lo
		} else {
			port++
		}
	}
	return 0, false
}

// seedSequential positions the sequential cursor for (ip, proto) if it
// has no position yet. The NAT engine seeds a random start so a freshly
// constructed NAT behaves like the long-running device it models — mid-
// cycle, not at the bottom of the port range.
func (s *portSpace) seedSequential(ip netaddr.Addr, p netaddr.Proto, start uint16) {
	k := seqKey{ip, p}
	if _, ok := s.seqNext[k]; !ok && start >= s.lo && start <= s.hi {
		s.seqNext[k] = start
	}
}

// takeSequential hands out ports in increasing order per (ip, proto),
// skipping ports still held by live mappings and wrapping at the top.
func (s *portSpace) takeSequential(ip netaddr.Addr, p netaddr.Proto) (uint16, bool) {
	k := seqKey{ip, p}
	start, ok := s.seqNext[k]
	if !ok || start < s.lo || start > s.hi {
		start = s.lo
	}
	port := start
	for i := 0; i < s.size(); i++ {
		if s.isFree(ip, p, port) {
			s.take(ip, p, port)
			next := port + 1
			if next > s.hi || next < s.lo {
				next = s.lo
			}
			s.seqNext[k] = next
			return port, true
		}
		if port == s.hi {
			port = s.lo
		} else {
			port++
		}
	}
	return 0, false
}

// takeRandom picks a uniformly random free port in the full range.
func (s *portSpace) takeRandom(ip netaddr.Addr, p netaddr.Proto, rng *rand.Rand) (uint16, bool) {
	return s.takeRandomIn(ip, p, s.lo, s.hi, rng)
}

// takeRandomIn picks a uniformly random free port in [lo, hi]. It tries
// random probes first and degrades to a linear scan from a random offset so
// allocation stays correct even when the range is nearly full.
func (s *portSpace) takeRandomIn(ip netaddr.Addr, p netaddr.Proto, lo, hi uint16, rng *rand.Rand) (uint16, bool) {
	if lo < s.lo {
		lo = s.lo
	}
	if hi > s.hi {
		hi = s.hi
	}
	if lo > hi {
		return 0, false
	}
	span := int(hi) - int(lo) + 1
	for i := 0; i < 32; i++ {
		port := lo + uint16(rng.Intn(span))
		if s.isFree(ip, p, port) {
			s.take(ip, p, port)
			return port, true
		}
	}
	offset := rng.Intn(span)
	for i := 0; i < span; i++ {
		port := lo + uint16((offset+i)%span)
		if s.isFree(ip, p, port) {
			s.take(ip, p, port)
			return port, true
		}
	}
	return 0, false
}

// chunkTable assigns each subscriber (internal IP) a fixed, contiguous
// block of the external port space on one external IP — the "chunk-based"
// allocation of §6.2 / Fig 8(c). Chunk size must be a power of two; the
// first chunk starts at the first multiple of the chunk size at or above
// the low port bound, matching vendor descriptions of block allocation.
type chunkTable struct {
	lo, hi uint16
	size   uint16
	// assigned maps (external IP, subscriber) to the chunk base port.
	assigned map[chunkKey]uint16
	// taken marks chunk bases in use per external IP.
	taken map[baseKey]bool
}

type chunkKey struct {
	ip  netaddr.Addr
	sub netaddr.Addr
}

type baseKey struct {
	ip   netaddr.Addr
	base uint16
}

func newChunkTable(lo, hi, size uint16) *chunkTable {
	return &chunkTable{
		lo: lo, hi: hi, size: size,
		assigned: make(map[chunkKey]uint16),
		taken:    make(map[baseKey]bool),
	}
}

// bases enumerates all chunk base ports.
func (t *chunkTable) bases() []uint16 {
	var out []uint16
	start := (t.lo + t.size - 1) / t.size * t.size
	for base := start; base+(t.size-1) <= t.hi; base += t.size {
		out = append(out, base)
		if base+t.size < base { // wrapped
			break
		}
	}
	return out
}

// chunkFor returns the [lo, hi] port bounds of the subscriber's chunk on
// ip, assigning a random free chunk on first use.
func (t *chunkTable) chunkFor(ip, subscriber netaddr.Addr, rng *rand.Rand) (uint16, uint16, bool) {
	k := chunkKey{ip, subscriber}
	if base, ok := t.assigned[k]; ok {
		return base, base + t.size - 1, true
	}
	bases := t.bases()
	var free []uint16
	for _, b := range bases {
		if !t.taken[baseKey{ip, b}] {
			free = append(free, b)
		}
	}
	if len(free) == 0 {
		return 0, 0, false
	}
	base := free[rng.Intn(len(free))]
	t.assigned[k] = base
	t.taken[baseKey{ip, base}] = true
	return base, base + t.size - 1, true
}

// NumSubscribers returns how many subscribers hold a chunk on ip; the
// maximum is the paper's "users per public IP" figure (e.g. 64 at 1K
// chunks).
func (t *chunkTable) numSubscribers(ip netaddr.Addr) int {
	n := 0
	for k := range t.assigned {
		if k.ip == ip {
			n++
		}
	}
	return n
}
