package nat

import (
	"math/bits"
	"math/rand"

	"cgn/internal/netaddr"
)

// portAllocator is the contract between the NAT engine and a port-space
// implementation. Two implementations exist: the bitmap-based portSpace
// (the production engine) and mapPortSpace, the original map-of-used-ports
// reference that the differential tests and the speedup benchmarks compare
// against.
type portAllocator interface {
	size() int
	isFree(ip netaddr.Addr, p netaddr.Proto, port uint16) bool
	take(ip netaddr.Addr, p netaddr.Proto, port uint16)
	free(e netaddr.Endpoint, p netaddr.Proto)
	takePreferred(ip netaddr.Addr, p netaddr.Proto, want uint16, rng *rand.Rand) (uint16, bool)
	takeSequential(ip netaddr.Addr, p netaddr.Proto) (uint16, bool)
	takeRandom(ip netaddr.Addr, p netaddr.Proto, rng *rand.Rand) (uint16, bool)
	takeRandomIn(ip netaddr.Addr, p netaddr.Proto, lo, hi uint16, rng *rand.Rand) (uint16, bool)
	seedSequential(ip netaddr.Addr, p netaddr.Proto, start uint16)
	sequentialSeeded(ip netaddr.Addr, p netaddr.Proto) bool
}

// portSpace tracks allocated external ports per (external IP, protocol) as
// bitmaps with free-counters. Every policy bottoms out in word-wide scans
// (64 ports per probe) instead of per-port map lookups, so allocation cost
// stays flat as the pool fills: take/free are O(1), the collision scans are
// O(range/64) worst case, and a fully exhausted segment fails in O(1) via
// its free counter.
type portSpace struct {
	lo, hi uint16
	// Segments are stored as parallel packed-key/value slices scanned
	// linearly: a space holds one segment per (external IP, protocol)
	// actually used — two for a single-IP NAT, a dozen for a pooled CGN —
	// so a scan over a cache line or two of packed keys beats a map
	// probe, and the allocation hot path hits the front entries.
	segKeys []uint64
	segVals []*portSeg

	// inUse / peak count taken ports across all segments; peak is the
	// high-water mark the utilization reports use.
	inUse, peak int
}

// portSeg is one (external IP, protocol) bit-space. Bit i covers port
// lo+i; a set bit means taken.
type portSeg struct {
	words []uint64
	// free counts clear bits, for O(1) exhaustion verdicts on full-range
	// allocations.
	free int
	// seq is the Sequential cursor (a bit index); seeded marks whether the
	// engine has positioned it. A long-running NAT allocates mid-cycle,
	// not from the bottom of the range.
	seq    int
	seeded bool
}

// segKey packs (external IP, protocol) into one comparable word.
func segKey(ip netaddr.Addr, p netaddr.Proto) uint64 {
	return uint64(ip)<<8 | uint64(p)
}

func newPortSpace(lo, hi uint16) *portSpace {
	return &portSpace{lo: lo, hi: hi}
}

// seedSequentialMidCycle positions the (ip, proto) sequential cursor
// uniformly in the allocatable range if it has none yet — a long-running
// NAT allocates mid-cycle, not from the bottom of the range. Both the
// Sequential policy and the Preservation out-of-range fallback seed
// through here, on either allocator implementation, so the draw cannot
// drift between the paths.
func seedSequentialMidCycle(a portAllocator, lo uint16, ip netaddr.Addr, p netaddr.Proto, rng *rand.Rand) {
	if !a.sequentialSeeded(ip, p) {
		a.seedSequential(ip, p, lo+uint16(rng.Intn(a.size())))
	}
}

func (s *portSpace) size() int { return int(s.hi) - int(s.lo) + 1 }

// lookup returns the (ip, proto) segment, or nil if it was never used.
func (s *portSpace) lookup(ip netaddr.Addr, p netaddr.Proto) *portSeg {
	k := segKey(ip, p)
	for i, kk := range s.segKeys {
		if kk == k {
			return s.segVals[i]
		}
	}
	return nil
}

// seg returns the (ip, proto) segment, creating it on first use.
func (s *portSpace) seg(ip netaddr.Addr, p netaddr.Proto) *portSeg {
	g := s.lookup(ip, p)
	if g == nil {
		n := s.size()
		g = &portSeg{words: make([]uint64, (n+63)/64), free: n}
		s.segKeys = append(s.segKeys, segKey(ip, p))
		s.segVals = append(s.segVals, g)
	}
	return g
}

func (s *portSpace) isFree(ip netaddr.Addr, p netaddr.Proto, port uint16) bool {
	g := s.lookup(ip, p)
	if g == nil {
		return true
	}
	idx := int(port) - int(s.lo)
	if idx < 0 || idx >= s.size() {
		return true // out-of-range ports are never tracked, matching mapPortSpace
	}
	return g.words[idx>>6]&(1<<(uint(idx)&63)) == 0
}

func (s *portSpace) take(ip netaddr.Addr, p netaddr.Proto, port uint16) {
	g := s.seg(ip, p)
	idx := int(port) - int(s.lo)
	if idx < 0 || idx >= s.size() {
		return
	}
	if g.words[idx>>6]&(1<<(uint(idx)&63)) != 0 {
		return // already taken; keep the free counter honest
	}
	s.takeAt(g, idx)
}

func (s *portSpace) free(e netaddr.Endpoint, p netaddr.Proto) {
	g := s.lookup(e.Addr, p)
	if g == nil {
		return
	}
	idx := int(e.Port) - int(s.lo)
	if idx < 0 || idx >= s.size() {
		return
	}
	w, bit := idx>>6, uint64(1)<<(uint(idx)&63)
	if g.words[w]&bit == 0 {
		return
	}
	g.words[w] &^= bit
	g.free++
	s.inUse--
}

// scan returns the first clear bit index in [from, to], or ok=false.
func (g *portSeg) scan(from, to int) (int, bool) {
	w, last := from>>6, to>>6
	word := ^g.words[w] &^ ((1 << (uint(from) & 63)) - 1)
	for {
		if w == last {
			if k := uint(to) & 63; k != 63 {
				word &= (uint64(1) << (k + 1)) - 1
			}
		}
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word), true
		}
		if w == last {
			return 0, false
		}
		w++
		word = ^g.words[w]
	}
}

// nextFree returns the first clear bit at or after from within [lo, hi],
// wrapping to lo when the upper part is full.
func (g *portSeg) nextFree(from, lo, hi int) (int, bool) {
	if idx, ok := g.scan(from, hi); ok {
		return idx, true
	}
	if lo < from {
		return g.scan(lo, from-1)
	}
	return 0, false
}

// takeAt marks bit idx taken and maintains the counters.
func (s *portSpace) takeAt(g *portSeg, idx int) uint16 {
	g.words[idx>>6] |= 1 << (uint(idx) & 63)
	g.free--
	s.inUse++
	if s.inUse > s.peak {
		s.peak = s.inUse
	}
	return s.lo + uint16(idx)
}

// takePreferred implements port preservation: use want if free; otherwise
// scan upward (wrapping) for the nearest free port, which yields the
// near-sequential fallback pattern real NATs exhibit under collision. A
// want outside the allocatable range falls back to the sequential policy,
// seeding its cursor mid-cycle first (a long-running NAT is not at the
// bottom of its range).
func (s *portSpace) takePreferred(ip netaddr.Addr, p netaddr.Proto, want uint16, rng *rand.Rand) (uint16, bool) {
	if want < s.lo || want > s.hi {
		seedSequentialMidCycle(s, s.lo, ip, p, rng)
		return s.takeSequential(ip, p)
	}
	g := s.seg(ip, p)
	if g.free == 0 {
		return 0, false
	}
	idx, ok := g.nextFree(int(want)-int(s.lo), 0, s.size()-1)
	if !ok {
		return 0, false
	}
	return s.takeAt(g, idx), true
}

// seedSequential positions the sequential cursor for (ip, proto) if it has
// no position yet.
func (s *portSpace) seedSequential(ip netaddr.Addr, p netaddr.Proto, start uint16) {
	if start < s.lo || start > s.hi {
		return
	}
	g := s.seg(ip, p)
	if !g.seeded {
		g.seq = int(start) - int(s.lo)
		g.seeded = true
	}
}

// sequentialSeeded reports whether the (ip, proto) cursor has a position.
func (s *portSpace) sequentialSeeded(ip netaddr.Addr, p netaddr.Proto) bool {
	g := s.lookup(ip, p)
	return g != nil && g.seeded
}

// takeSequential hands out ports in increasing order per (ip, proto),
// skipping ports still held by live mappings and wrapping at the top.
func (s *portSpace) takeSequential(ip netaddr.Addr, p netaddr.Proto) (uint16, bool) {
	g := s.seg(ip, p)
	if g.free == 0 {
		return 0, false
	}
	from := 0
	if g.seeded {
		from = g.seq
	}
	idx, ok := g.nextFree(from, 0, s.size()-1)
	if !ok {
		return 0, false
	}
	g.seq = idx + 1
	if g.seq >= s.size() {
		g.seq = 0
	}
	g.seeded = true
	return s.takeAt(g, idx), true
}

// takeRandom picks a uniformly random free port in the full range.
func (s *portSpace) takeRandom(ip netaddr.Addr, p netaddr.Proto, rng *rand.Rand) (uint16, bool) {
	return s.takeRandomIn(ip, p, s.lo, s.hi, rng)
}

// takeRandomIn picks a uniformly random free port in [lo, hi]. It tries
// random probes first and degrades to a scan from a random offset so
// allocation stays correct even when the range is nearly full. The probe
// schedule consumes the RNG exactly like the reference implementation, so
// both allocators stay draw-for-draw comparable under one seed.
func (s *portSpace) takeRandomIn(ip netaddr.Addr, p netaddr.Proto, lo, hi uint16, rng *rand.Rand) (uint16, bool) {
	if lo < s.lo {
		lo = s.lo
	}
	if hi > s.hi {
		hi = s.hi
	}
	if lo > hi {
		return 0, false
	}
	g := s.seg(ip, p)
	if lo == s.lo && hi == s.hi && g.free == 0 {
		return 0, false
	}
	span := int(hi) - int(lo) + 1
	base := int(lo) - int(s.lo)
	for i := 0; i < 32; i++ {
		idx := base + rng.Intn(span)
		if g.words[idx>>6]&(1<<(uint(idx)&63)) == 0 {
			return s.takeAt(g, idx), true
		}
	}
	offset := rng.Intn(span)
	idx, ok := g.nextFree(base+offset, base, base+span-1)
	if !ok {
		return 0, false
	}
	return s.takeAt(g, idx), true
}

// chunkTable assigns each subscriber (internal IP) a fixed, contiguous
// block of the external port space on one external IP — the "chunk-based"
// allocation of §6.2 / Fig 8(c). Chunk size must be a power of two; the
// first chunk starts at the first multiple of the chunk size at or above
// the low port bound, matching vendor descriptions of block allocation.
type chunkTable struct {
	lo, hi uint16
	size   uint16
	// assigned maps (external IP, subscriber) to the chunk base port.
	assigned map[chunkKey]uint16
	// taken marks chunk bases in use per external IP.
	taken map[baseKey]bool
}

type chunkKey struct {
	ip  netaddr.Addr
	sub netaddr.Addr
}

type baseKey struct {
	ip   netaddr.Addr
	base uint16
}

func newChunkTable(lo, hi, size uint16) *chunkTable {
	return &chunkTable{
		lo: lo, hi: hi, size: size,
		assigned: make(map[chunkKey]uint16),
		taken:    make(map[baseKey]bool),
	}
}

// bases enumerates all chunk base ports.
func (t *chunkTable) bases() []uint16 {
	var out []uint16
	start := (t.lo + t.size - 1) / t.size * t.size
	for base := start; base+(t.size-1) <= t.hi; base += t.size {
		out = append(out, base)
		if base+t.size < base { // wrapped
			break
		}
	}
	return out
}

// chunkFor returns the [lo, hi] port bounds of the subscriber's chunk on
// ip, assigning a random free chunk on first use.
func (t *chunkTable) chunkFor(ip, subscriber netaddr.Addr, rng *rand.Rand) (uint16, uint16, bool) {
	k := chunkKey{ip, subscriber}
	if base, ok := t.assigned[k]; ok {
		return base, base + t.size - 1, true
	}
	bases := t.bases()
	var free []uint16
	for _, b := range bases {
		if !t.taken[baseKey{ip, b}] {
			free = append(free, b)
		}
	}
	if len(free) == 0 {
		return 0, 0, false
	}
	base := free[rng.Intn(len(free))]
	t.assigned[k] = base
	t.taken[baseKey{ip, base}] = true
	return base, base + t.size - 1, true
}

// NumSubscribers returns how many subscribers hold a chunk on ip; the
// maximum is the paper's "users per public IP" figure (e.g. 64 at 1K
// chunks).
func (t *chunkTable) numSubscribers(ip netaddr.Addr) int {
	n := 0
	for k := range t.assigned {
		if k.ip == ip {
			n++
		}
	}
	return n
}
