package nat

import (
	"fmt"
	"testing"
	"time"

	"cgn/internal/netaddr"
)

func flowTCP(src, dst netaddr.Endpoint) netaddr.Flow {
	return netaddr.FlowOf(netaddr.TCP, src, dst)
}

func ep(addr string, port uint16) netaddr.Endpoint {
	return netaddr.EndpointOf(netaddr.MustParseAddr(addr), port)
}

// TestQuotaCountsDistinctPorts is the quota-semantics regression test:
// PortQuotaPerSubscriber reserves distinct external port numbers, so a
// TCP mapping reusing a port number the subscriber already holds on UDP
// consumes nothing, while a fresh number at the quota boundary is
// refused. The old check compared the live-mapping count, which charged
// the UDP/TCP twin a second quota unit.
func TestQuotaCountsDistinctPorts(t *testing.T) {
	cfg := baseConfig()
	cfg.PortQuotaPerSubscriber = 2
	n := New(cfg)

	if _, v := n.TranslateOut(flowUDP(ep("100.64.0.5", 5000), dstEP), t0); v != Ok {
		t.Fatalf("first UDP alloc: %v", v)
	}
	if _, v := n.TranslateOut(flowUDP(ep("100.64.0.5", 6000), dstEP), t0); v != Ok {
		t.Fatalf("second UDP alloc: %v", v)
	}
	// At quota: a third distinct number is refused...
	if _, v := n.TranslateOut(flowUDP(ep("100.64.0.5", 7000), dstEP), t0); v != DropPortQuota {
		t.Fatalf("third UDP number: %v, want %v", v, DropPortQuota)
	}
	// ...but the TCP twin of a held number reserves nothing new.
	out, v := n.TranslateOut(flowTCP(ep("100.64.0.5", 5000), dstEP), t0)
	if v != Ok {
		t.Fatalf("TCP twin of held port: %v, want %v", v, Ok)
	}
	if out.Src.Port != 5000 {
		t.Fatalf("TCP twin port = %d, want 5000", out.Src.Port)
	}
	// A fresh TCP number at the boundary is still a refusal.
	if _, v := n.TranslateOut(flowTCP(ep("100.64.0.5", 7000), dstEP), t0); v != DropPortQuota {
		t.Fatalf("fresh TCP number at quota: %v, want %v", v, DropPortQuota)
	}
	// Multi-destination fan-out rides the existing mappings: no new
	// allocation, no quota charge, however many destinations.
	for i := 0; i < 8; i++ {
		dst := ep("9.9.9.9", uint16(1000+i))
		if _, v := n.TranslateOut(flowUDP(ep("100.64.0.5", 5000), dst), t0); v != Ok {
			t.Fatalf("fan-out dst %d: %v", i, v)
		}
	}
	if got := n.NumMappings(); got != 3 {
		t.Fatalf("NumMappings = %d, want 3", got)
	}
	if got := n.PortStats().QuotaDrops; got != 2 {
		t.Fatalf("QuotaDrops = %d, want 2", got)
	}

	// Expiry releases the quota: after the UDP mappings idle out, the
	// subscriber can allocate fresh numbers again.
	later := t0.Add(10 * time.Minute)
	n.Sweep(later)
	if _, v := n.TranslateOut(flowUDP(ep("100.64.0.5", 7000), dstEP), later); v != Ok {
		t.Fatalf("post-expiry alloc: %v, want %v", v, Ok)
	}
}

// TestQuotaTwinReleaseOrder pins the refcount bookkeeping: dropping one
// protocol twin keeps the number charged until both are gone.
func TestQuotaTwinReleaseOrder(t *testing.T) {
	cfg := baseConfig()
	cfg.PortQuotaPerSubscriber = 1
	cfg.TCPTimeout = 10 * time.Minute
	n := New(cfg)

	if _, v := n.TranslateOut(flowUDP(ep("100.64.0.5", 5000), dstEP), t0); v != Ok {
		t.Fatalf("UDP alloc: %v", v)
	}
	if _, v := n.TranslateOut(flowTCP(ep("100.64.0.5", 5000), dstEP), t0); v != Ok {
		t.Fatalf("TCP twin: %v", v)
	}
	// UDP (60 s) expires first; the TCP twin still holds the number, so
	// a fresh number remains over quota.
	mid := t0.Add(5 * time.Minute)
	n.Sweep(mid)
	if _, v := n.TranslateOut(flowUDP(ep("100.64.0.5", 6000), dstEP), mid); v != DropPortQuota {
		t.Fatalf("with TCP twin live: %v, want %v", v, DropPortQuota)
	}
	// Once the TCP twin expires too, the quota frees.
	end := t0.Add(30 * time.Minute)
	n.Sweep(end)
	if _, v := n.TranslateOut(flowUDP(ep("100.64.0.5", 6000), dstEP), end); v != Ok {
		t.Fatalf("after both twins expired: %v, want %v", v, Ok)
	}
}

// TestAllocRateLimiter drives the token bucket through burst exhaustion
// and refill.
func TestAllocRateLimiter(t *testing.T) {
	cfg := baseConfig()
	cfg.AllocRatePerSec = 1
	cfg.AllocBurst = 2
	n := New(cfg)

	sub := func(port uint16) netaddr.Endpoint { return ep("100.64.0.5", port) }
	for i := uint16(0); i < 2; i++ {
		if _, v := n.TranslateOut(flowUDP(sub(5000+i), dstEP), t0); v != Ok {
			t.Fatalf("burst alloc %d: %v", i, v)
		}
	}
	if _, v := n.TranslateOut(flowUDP(sub(5002), dstEP), t0); v != DropRateLimited {
		t.Fatalf("over burst: %v, want %v", v, DropRateLimited)
	}
	// One virtual second refills one token.
	t1 := t0.Add(time.Second)
	if _, v := n.TranslateOut(flowUDP(sub(5003), dstEP), t1); v != Ok {
		t.Fatalf("after refill: %v", v)
	}
	if _, v := n.TranslateOut(flowUDP(sub(5004), dstEP), t1); v != DropRateLimited {
		t.Fatalf("refill spent: %v, want %v", v, DropRateLimited)
	}
	// Existing mappings refresh without spending tokens: the limiter
	// gates creation, not traffic.
	if _, v := n.TranslateOut(flowUDP(sub(5000), dstEP), t1); v != Ok {
		t.Fatalf("refresh of live mapping rate-limited: %v", v)
	}
	ps := n.PortStats()
	if ps.RateLimited != 2 {
		t.Fatalf("RateLimited = %d, want 2", ps.RateLimited)
	}
	if ps.Failures() != 2 {
		t.Fatalf("Failures = %d, want 2", ps.Failures())
	}
	// A second subscriber owns its own bucket.
	if _, v := n.TranslateOut(flowUDP(ep("100.64.0.6", 5000), dstEP), t1); v != Ok {
		t.Fatalf("second subscriber: %v", v)
	}
}

// TestEvictOldestIdle exhausts a two-port space and checks the eviction
// policy reclaims the mapping with the earliest expiry deadline — and
// that a refused-then-retried allocation is never double-counted as a
// failure.
func TestEvictOldestIdle(t *testing.T) {
	cfg := baseConfig()
	cfg.PortAlloc = Sequential
	cfg.PortLo, cfg.PortHi = 1024, 1025
	cfg.Eviction = EvictOldestIdle
	n := New(cfg)

	subA, subB, subC := ep("100.64.0.5", 4000), ep("100.64.0.6", 4000), ep("100.64.0.7", 4000)
	_, refA, v := n.TranslateOutRef(flowUDP(subA, dstEP), t0)
	if v != Ok {
		t.Fatalf("A: %v", v)
	}
	t1 := t0.Add(10 * time.Second)
	if _, v := n.TranslateOut(flowUDP(subB, dstEP), t1); v != Ok {
		t.Fatalf("B: %v", v)
	}
	// Refresh A at t2 so B becomes the oldest-idle mapping.
	t2 := t0.Add(20 * time.Second)
	if !n.Refresh(refA, dstEP, t2) {
		t.Fatal("refresh A failed")
	}
	t3 := t0.Add(30 * time.Second)
	if _, v := n.TranslateOut(flowUDP(subC, dstEP), t3); v != Ok {
		t.Fatalf("C with eviction: %v", v)
	}
	if n.Sessions(subB.Addr) != 0 {
		t.Error("B not evicted")
	}
	if n.Sessions(subA.Addr) != 1 {
		t.Error("A evicted despite refresh")
	}
	ps := n.PortStats()
	if ps.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", ps.Evictions)
	}
	if ps.NoPorts != 0 {
		t.Errorf("NoPorts = %d, want 0: a successful eviction retry is not a failure", ps.NoPorts)
	}
	if n.NumMappings() != 2 {
		t.Errorf("NumMappings = %d, want 2", n.NumMappings())
	}

	// The refusal policy, same sequence: C is refused and counted once.
	cfg.Eviction = EvictNone
	r := New(cfg)
	r.TranslateOut(flowUDP(subA, dstEP), t0)
	r.TranslateOut(flowUDP(subB, dstEP), t1)
	if _, v := r.TranslateOut(flowUDP(subC, dstEP), t3); v != DropNoPorts {
		t.Fatalf("refusal policy: %v, want %v", v, DropNoPorts)
	}
	if ps := r.PortStats(); ps.NoPorts != 1 || ps.Evictions != 0 {
		t.Errorf("refusal stats = %+v", ps)
	}
}

// TestDefenseSnapshotRoundTrip pins the defense state's serialization:
// an engine with the token bucket, quota and eviction active restores
// from its snapshot and continues byte-identically — same digests, same
// verdicts — through further traffic, including rate-limit refusals
// whose outcome depends on restored token counts.
func TestDefenseSnapshotRoundTrip(t *testing.T) {
	cfg := baseConfig()
	cfg.PortQuotaPerSubscriber = 3
	cfg.AllocRatePerSec = 0.5
	cfg.AllocBurst = 4
	cfg.Eviction = EvictOldestIdle
	cfg.PortLo, cfg.PortHi = 1024, 1039
	n := New(cfg)

	drive := func(eng *NAT, from, to int) []Verdict {
		var out []Verdict
		for i := from; i < to; i++ {
			now := t0.Add(time.Duration(i) * 5 * time.Second)
			eng.Sweep(now)
			for s := 0; s < 4; s++ {
				src := ep(fmt.Sprintf("100.64.0.%d", 5+s), uint16(4000+i*7+s*131))
				_, v := eng.TranslateOut(flowUDP(src, dstEP), now)
				out = append(out, v)
			}
		}
		return out
	}
	drive(n, 0, 12)

	r, err := NewFromSnapshot(cfg, n.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.StateDigest(), n.StateDigest(); got != want {
		t.Fatalf("restored digest differs:\n%s\nvs\n%s", got, want)
	}
	va, vb := drive(n, 12, 24), drive(r, 12, 24)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("verdict %d diverged after restore: %v vs %v", i, va[i], vb[i])
		}
	}
	if got, want := r.StateDigest(), n.StateDigest(); got != want {
		t.Fatal("digests diverged after post-restore traffic")
	}
	pa, pb := n.PortStats(), r.PortStats()
	if pa.RateLimited != pb.RateLimited || pa.Evictions != pb.Evictions || pa.QuotaDrops != pb.QuotaDrops {
		t.Fatalf("failure counters diverged: %+v vs %+v", pa, pb)
	}
}

// TestShardedFailureLaneSum is the lane-sum differential: under flood
// pressure with every defense active, the sharded façade's PortStats is
// exactly the field-wise sum of its lanes' — no double counting when a
// failed allocation retries after an eviction — and the metric counters
// agree with the stats.
func TestShardedFailureLaneSum(t *testing.T) {
	cfg := Config{
		Name:      "lanesum",
		Type:      PortRestricted,
		PortAlloc: Sequential,
		Pooling:   Paired,
		ExternalIPs: []netaddr.Addr{
			extIP, extIP2,
			netaddr.MustParseAddr("203.0.113.3"),
			netaddr.MustParseAddr("203.0.113.4"),
		},
		UDPTimeout:             60 * time.Second,
		PortLo:                 1024,
		PortHi:                 1031,
		PortQuotaPerSubscriber: 2,
		AllocRatePerSec:        0.1,
		AllocBurst:             4,
		Eviction:               EvictOldestIdle,
		Seed:                   7,
	}
	sn := NewSharded(cfg, 3)
	for i := 0; i < 40; i++ {
		now := t0.Add(time.Duration(i) * 5 * time.Second)
		sn.Sweep(now)
		for s := 0; s < 24; s++ {
			for k := 0; k < 3; k++ {
				src := ep(fmt.Sprintf("100.64.1.%d", s), uint16(2000+i*13+s*17+k*41))
				sn.TranslateOut(flowUDP(src, dstEP), now)
			}
		}
	}
	got := sn.PortStats()
	var want PortStats
	want.ExternalIPs = sn.NumLanes()
	for l := 0; l < sn.NumLanes(); l++ {
		ps := sn.Lane(l).PortStats()
		want.Capacity += ps.Capacity
		want.InUse += ps.InUse
		want.Peak += ps.Peak
		want.Subscribers += ps.Subscribers
		want.Allocs += ps.Allocs
		want.NoPorts += ps.NoPorts
		want.QuotaDrops += ps.QuotaDrops
		want.RateLimited += ps.RateLimited
		want.Evictions += ps.Evictions
	}
	if got != want {
		t.Fatalf("facade PortStats %+v != lane sum %+v", got, want)
	}
	if got.Failures() != got.NoPorts+got.QuotaDrops+got.RateLimited {
		t.Fatalf("Failures() = %d inconsistent with %+v", got.Failures(), got)
	}
	// The stress must actually exercise the machinery it audits.
	if got.Evictions == 0 || got.RateLimited == 0 || got.QuotaDrops == 0 {
		t.Fatalf("stress too weak to audit: %+v", got)
	}
	if ct := sn.CounterTotal("mappings_evicted"); ct != got.Evictions {
		t.Fatalf("CounterTotal(mappings_evicted) = %d, want %d", ct, got.Evictions)
	}
	if ct := sn.CounterTotal("drop_rate_limited"); ct != got.RateLimited {
		t.Fatalf("CounterTotal(drop_rate_limited) = %d, want %d", ct, got.RateLimited)
	}
}
