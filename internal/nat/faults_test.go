package nat

import (
	"testing"
	"time"

	"cgn/internal/netaddr"
)

// pinnedSub finds a subscriber whose primary hash lane is l.
func pinnedSub(t *testing.T, s *Sharded, l int) netaddr.Addr {
	t.Helper()
	for i := 0; i < 4096; i++ {
		if a := subAddr(i); s.LaneFor(a) == l {
			return a
		}
	}
	t.Fatalf("no subscriber hashes to lane %d", l)
	return 0
}

func TestActiveLaneForMatchesLaneForWhenAllUp(t *testing.T) {
	s := NewSharded(shardedConfig(5), 2)
	for i := 0; i < 512; i++ {
		a := subAddr(i)
		if got, want := s.ActiveLaneFor(a), s.LaneFor(a); got != want {
			t.Fatalf("addr %v: ActiveLaneFor %d != LaneFor %d with all lanes up", a, got, want)
		}
	}
	if s.LanesDown() != 0 || s.DownLanes() != nil {
		t.Fatalf("fresh engine reports LanesDown=%d DownLanes=%v", s.LanesDown(), s.DownLanes())
	}
}

func TestSetLaneDownDropsMappingsAndFailsOver(t *testing.T) {
	cfg := shardedConfig(4)
	s := NewSharded(cfg, 2)
	var expired int
	s.SetMappingHooks(nil, func(m *Mapping) { expired++ })

	// Load every lane with traffic, remembering which subscribers landed
	// on the lane we are about to kill.
	const victim = 1
	victims := []netaddr.Addr{}
	for i := 0; i < 96; i++ {
		a := subAddr(i)
		src := netaddr.EndpointOf(a, uint16(4000+i))
		if _, v := s.TranslateOut(flowUDP(src, dstEP), t0); v != Ok {
			t.Fatalf("sub %d: verdict %v", i, v)
		}
		if s.LaneFor(a) == victim {
			victims = append(victims, a)
		}
	}
	if len(victims) == 0 {
		t.Fatal("no subscribers hash to the victim lane; widen the population")
	}
	before := s.NumMappings()
	onVictim := s.Lane(victim).NumMappings()
	if onVictim == 0 {
		t.Fatal("victim lane holds no mappings")
	}

	dropped, ok := s.SetLaneDown(victim)
	if !ok || dropped != onVictim {
		t.Fatalf("SetLaneDown = (%d, %v), want (%d, true)", dropped, ok, onVictim)
	}
	if expired != onVictim {
		t.Fatalf("expiry hooks fired %d times, want %d", expired, onVictim)
	}
	if s.NumMappings() != before-onVictim {
		t.Fatalf("NumMappings %d after outage, want %d", s.NumMappings(), before-onVictim)
	}
	if !s.LaneDown(victim) || s.LanesDown() != 1 {
		t.Fatalf("LaneDown=%v LanesDown=%d after outage", s.LaneDown(victim), s.LanesDown())
	}
	if dl := s.DownLanes(); len(dl) != 4 || !dl[victim] {
		t.Fatalf("DownLanes = %v", dl)
	}
	// Downing an already-down lane is a no-op, not an error.
	if d, ok := s.SetLaneDown(victim); d != 0 || !ok {
		t.Fatalf("re-down = (%d, %v), want (0, true)", d, ok)
	}

	// Displaced subscribers re-pin deterministically to a surviving lane,
	// and their traffic lands on that lane's external IP.
	for _, a := range victims {
		fl := s.ActiveLaneFor(a)
		if fl == victim {
			t.Fatalf("sub %v still routed to the downed lane", a)
		}
		out, v := s.TranslateOut(flowUDP(netaddr.EndpointOf(a, 9000), dstEP2), t0)
		if v != Ok {
			t.Fatalf("failover translate for %v: verdict %v", a, v)
		}
		if out.Src.Addr != cfg.ExternalIPs[fl] {
			t.Fatalf("failover external %v, want lane %d IP %v", out.Src.Addr, fl, cfg.ExternalIPs[fl])
		}
	}

	// Restoration routes everyone home; failover mappings stay live on
	// the survivor lane and both Sessions and RefForFlow still see them.
	s.SetLaneUp(victim)
	if s.LanesDown() != 0 || s.DownLanes() != nil {
		t.Fatalf("after restore: LanesDown=%d DownLanes=%v", s.LanesDown(), s.DownLanes())
	}
	a := victims[0]
	if got, want := s.ActiveLaneFor(a), victim; got != want {
		t.Fatalf("restored sub routed to lane %d, want %d", got, want)
	}
	f := flowUDP(netaddr.EndpointOf(a, 9000), dstEP2)
	if n := s.Sessions(a); n != 1 {
		t.Fatalf("Sessions(%v) = %d, want 1 (failover mapping alive)", a, n)
	}
	r, ok := s.RefForFlow(f)
	if !ok {
		t.Fatal("RefForFlow missed the surviving failover mapping")
	}
	if !s.Refresh(r, netaddr.Endpoint{}, t0.Add(time.Second)) {
		t.Fatal("Refresh reported the failover mapping stale")
	}
	if ep, ok := s.ExternalFor(f, t0.Add(time.Second)); !ok || ep.Addr == cfg.ExternalIPs[victim] {
		t.Fatalf("ExternalFor = (%v, %v), want the failover lane's IP", ep, ok)
	}
}

func TestSetLaneDownRefusesLastLane(t *testing.T) {
	s := NewSharded(shardedConfig(3), 1)
	for l := 0; l < 2; l++ {
		if _, ok := s.SetLaneDown(l); !ok {
			t.Fatalf("lane %d refused with %d lanes still up", l, 3-l)
		}
	}
	if _, ok := s.SetLaneDown(2); ok {
		t.Fatal("last standing lane went down")
	}
	if s.LanesDown() != 2 {
		t.Fatalf("LanesDown = %d, want 2", s.LanesDown())
	}
	// With one lane left, every subscriber converges on it.
	for i := 0; i < 64; i++ {
		if l := s.ActiveLaneFor(subAddr(i)); l != 2 {
			t.Fatalf("sub %d routed to downed lane %d", i, l)
		}
	}
}

func TestFailoverDeterministicAndSpread(t *testing.T) {
	cfg := shardedConfig(6)
	a := NewSharded(cfg, 1)
	b := NewSharded(cfg, 3)
	const victim = 4
	a.SetLaneDown(victim)
	b.SetLaneDown(victim)
	hit := make(map[int]int)
	for i := 0; i < 512; i++ {
		addr := subAddr(i)
		la, lb := a.ActiveLaneFor(addr), b.ActiveLaneFor(addr)
		if la != lb {
			t.Fatalf("addr %v: failover lane %d at shards=1 vs %d at shards=3", addr, la, lb)
		}
		if a.LaneFor(addr) == victim {
			hit[la]++
		}
	}
	// The salted probe start spreads one lane's subscribers across the
	// survivors rather than dumping them on a single neighbor.
	if len(hit) < 2 {
		t.Fatalf("all displaced subscribers landed on one lane: %v", hit)
	}
}

func TestDropMatching(t *testing.T) {
	n := New(baseConfig())
	var expired []netaddr.Addr
	n.SetMappingHooks(nil, func(m *Mapping) { expired = append(expired, m.Int.Addr) })
	odd := netaddr.MustParseAddr("100.64.0.1")
	even := netaddr.MustParseAddr("100.64.0.2")
	for p := 0; p < 4; p++ {
		for _, a := range []netaddr.Addr{odd, even} {
			if _, v := n.TranslateOut(flowUDP(netaddr.EndpointOf(a, uint16(4000+p)), dstEP), t0); v != Ok {
				t.Fatalf("verdict %v", v)
			}
		}
	}
	got := n.DropMatching(func(m *Mapping) bool { return m.Int.Addr == odd })
	if got != 4 || n.NumMappings() != 4 {
		t.Fatalf("DropMatching removed %d (left %d), want 4 (left 4)", got, n.NumMappings())
	}
	for _, a := range expired {
		if a != odd {
			t.Fatalf("expiry hook fired for %v", a)
		}
	}
	if n.Sessions(odd) != 0 || n.Sessions(even) != 4 {
		t.Fatalf("sessions odd=%d even=%d, want 0/4", n.Sessions(odd), n.Sessions(even))
	}
	// nil predicate clears the table; freed ports are reallocatable.
	if got := n.DropMatching(nil); got != 4 || n.NumMappings() != 0 {
		t.Fatalf("DropMatching(nil) removed %d (left %d), want 4 (left 0)", got, n.NumMappings())
	}
	if ps := n.PortStats(); ps.InUse != 0 {
		t.Fatalf("InUse = %d after full drop", ps.InUse)
	}
	if _, v := n.TranslateOut(flowUDP(netaddr.EndpointOf(odd, 4000), dstEP), t0); v != Ok {
		t.Fatalf("post-drop allocation verdict %v", v)
	}
}

// TestLaneOutageDigestShardInvariant pins the determinism contract under
// faults: the same outage script at different shard counts yields
// byte-identical state digests and aggregates.
func TestLaneOutageDigestShardInvariant(t *testing.T) {
	cfg := shardedConfig(4)
	script := func(s *Sharded) {
		now := t0
		for i := 0; i < 80; i++ {
			src := netaddr.EndpointOf(subAddr(i), uint16(4000+i))
			if _, v := s.TranslateOut(flowUDP(src, dstEP), now); v != Ok {
				t.Fatalf("flow %d: verdict %v", i, v)
			}
			now = now.Add(100 * time.Millisecond)
		}
		s.SetLaneDown(2)
		for i := 0; i < 80; i++ {
			src := netaddr.EndpointOf(subAddr(i), uint16(6000+i))
			if _, v := s.TranslateOut(flowUDP(src, dstEP2), now); v != Ok {
				t.Fatalf("outage flow %d: verdict %v", i, v)
			}
			now = now.Add(100 * time.Millisecond)
		}
		s.SetLaneUp(2)
		for i := 0; i < 40; i++ {
			src := netaddr.EndpointOf(subAddr(i), uint16(8000+i))
			if _, v := s.TranslateOut(flowUDP(src, dstEP), now); v != Ok {
				t.Fatalf("recovery flow %d: verdict %v", i, v)
			}
		}
	}
	base := NewSharded(cfg, 1)
	script(base)
	wantDigest, wantStats := base.StateDigest(), base.PortStats()
	for _, shards := range []int{2, 4} {
		s := NewSharded(cfg, shards)
		script(s)
		if d := s.StateDigest(); d != wantDigest {
			t.Errorf("shards=%d: digest %s, want %s", shards, d, wantDigest)
		}
		if ps := s.PortStats(); ps != wantStats {
			t.Errorf("shards=%d: PortStats %+v, want %+v", shards, ps, wantStats)
		}
	}
}
