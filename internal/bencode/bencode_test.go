package bencode

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func mustEncode(t *testing.T, v any) []byte {
	t.Helper()
	b, err := Encode(v)
	if err != nil {
		t.Fatalf("Encode(%v): %v", v, err)
	}
	return b
}

func TestEncodeBasics(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{42, "i42e"},
		{int64(-7), "i-7e"},
		{0, "i0e"},
		{"spam", "4:spam"},
		{[]byte{}, "0:"},
		{[]any{int64(1), "a"}, "li1e1:ae"},
		{map[string]any{"b": int64(2), "a": int64(1)}, "d1:ai1e1:bi2ee"},
		{map[string]any{}, "de"},
		{[]any{}, "le"},
	}
	for _, c := range cases {
		if got := string(mustEncode(t, c.in)); got != c.want {
			t.Errorf("Encode(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEncodeUnsupportedType(t *testing.T) {
	if _, err := Encode(3.14); err == nil {
		t.Error("Encode(float) should fail")
	}
	if _, err := Encode([]any{3.14}); err == nil {
		t.Error("nested unsupported type should fail")
	}
}

func TestDecodeBasics(t *testing.T) {
	v, err := Decode([]byte("d1:ad2:id20:aaaaaaaaaaaaaaaaaaaae1:q9:find_node1:t2:xy1:y1:qe"))
	if err != nil {
		t.Fatal(err)
	}
	d, ok := AsDict(v)
	if !ok {
		t.Fatal("not a dict")
	}
	if q, _ := d.Str("q"); q != "find_node" {
		t.Errorf("q = %q", q)
	}
	a, ok := d.Dict("a")
	if !ok {
		t.Fatal("no args dict")
	}
	if id, _ := a.Bytes("id"); len(id) != 20 {
		t.Errorf("id len = %d", len(id))
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantErr error
	}{
		{"", ErrTruncated},
		{"i42", ErrTruncated},
		{"4:spa", ErrTruncated},
		{"l", ErrTruncated},
		{"d", ErrTruncated},
		{"d1:a", ErrTruncated},
		{"x", ErrSyntax},
		{"i42ei1e", ErrTrailing},
		{"ie", ErrSyntax},
		{"i042e", ErrSyntax},
		{"i-0e", ErrSyntax},
		{"i--1e", ErrSyntax},
		{"i+0e", ErrSyntax}, // found by FuzzDecode: ParseInt tolerates '+'
		{"i+1e", ErrSyntax},
		{"i-e", ErrSyntax},
		{"i1-e", ErrSyntax},
		{"01:a", ErrSyntax},
		{"d1:bi1e1:ai2ee", ErrSyntax}, // unsorted keys
		{"d1:ai1e1:ai2ee", ErrSyntax}, // duplicate keys
	}
	for _, c := range cases {
		_, err := Decode([]byte(c.in))
		if err == nil {
			t.Errorf("Decode(%q) succeeded, want error", c.in)
			continue
		}
		if !errors.Is(err, c.wantErr) {
			t.Errorf("Decode(%q) error = %v, want %v", c.in, err, c.wantErr)
		}
	}
}

func TestDecodeDepthLimit(t *testing.T) {
	deep := bytes.Repeat([]byte("l"), 100)
	deep = append(deep, bytes.Repeat([]byte("e"), 100)...)
	if _, err := Decode(deep); !errors.Is(err, ErrSyntax) {
		t.Errorf("deep nesting error = %v, want syntax error", err)
	}
}

func TestDecodePrefix(t *testing.T) {
	v, rest, err := DecodePrefix([]byte("i42eXYZ"))
	if err != nil || v.(int64) != 42 || string(rest) != "XYZ" {
		t.Errorf("DecodePrefix = %v, %q, %v", v, rest, err)
	}
}

func TestDecodeDoesNotAliasInput(t *testing.T) {
	data := []byte("4:spam")
	v, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	data[2] = 'X'
	if string(v.([]byte)) != "spam" {
		t.Error("decoded string aliases input buffer")
	}
}

// randomValue builds a random value from the encodable subset.
func randomValue(rng *rand.Rand, depth int) any {
	if depth <= 0 {
		if rng.Intn(2) == 0 {
			return rng.Int63n(1000) - 500
		}
		b := make([]byte, rng.Intn(12))
		rng.Read(b)
		return b
	}
	switch rng.Intn(4) {
	case 0:
		return rng.Int63n(100000) - 50000
	case 1:
		b := make([]byte, rng.Intn(20))
		rng.Read(b)
		return b
	case 2:
		n := rng.Intn(4)
		l := make([]any, n)
		for i := range l {
			l[i] = randomValue(rng, depth-1)
		}
		return l
	default:
		n := rng.Intn(4)
		m := map[string]any{}
		for i := 0; i < n; i++ {
			key := make([]byte, 1+rng.Intn(6))
			rng.Read(key)
			m[string(key)] = randomValue(rng, depth-1)
		}
		return m
	}
}

// normalize converts int to int64 and strings to []byte so decoded values
// compare equal to their sources.
func normalize(v any) any {
	switch x := v.(type) {
	case int:
		return int64(x)
	case string:
		return []byte(x)
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = normalize(e)
		}
		return out
	case map[string]any:
		out := map[string]any{}
		for k, e := range x {
			out[k] = normalize(e)
		}
		return out
	default:
		return v
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		v := randomValue(rng, 3)
		enc, err := Encode(v)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%q): %v", enc, err)
		}
		if !reflect.DeepEqual(normalize(v), dec) {
			t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", v, dec)
		}
		// Re-encoding the decoded value must be byte-identical (canonical
		// encoding).
		enc2, err := Encode(dec)
		if err != nil {
			t.Fatalf("re-Encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding violated: %q vs %q", enc, enc2)
		}
	}
}

// Decoding random garbage must never panic and must reject or round-trip.
func TestDecodeRandomGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	alphabet := []byte("ilde0123456789:-abc")
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(30))
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		v, err := Decode(b)
		if err != nil {
			continue
		}
		enc, err := Encode(v)
		if err != nil {
			t.Fatalf("decoded garbage %q but cannot re-encode: %v", b, err)
		}
		if !bytes.Equal(enc, b) {
			t.Fatalf("accepted non-canonical input %q -> %q", b, enc)
		}
	}
}

func TestDictAccessors(t *testing.T) {
	// Build via encode to avoid hand-writing offsets.
	enc := mustEncode(t, map[string]any{
		"i": int64(7),
		"l": []any{int64(1)},
		"s": "abc",
		"d": map[string]any{"x": int64(1)},
	})
	vv, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := AsDict(vv)
	if n, ok := d.Int("i"); !ok || n != 7 {
		t.Error("Int accessor")
	}
	if s, ok := d.Str("s"); !ok || s != "abc" {
		t.Error("Str accessor")
	}
	if b, ok := d.Bytes("s"); !ok || string(b) != "abc" {
		t.Error("Bytes accessor")
	}
	if l, ok := d.List("l"); !ok || len(l) != 1 {
		t.Error("List accessor")
	}
	if sub, ok := d.Dict("d"); !ok {
		t.Error("Dict accessor")
	} else if n, ok := sub.Int("x"); !ok || n != 1 {
		t.Error("nested Int accessor")
	}
	// Misses and type mismatches.
	if _, ok := d.Int("s"); ok {
		t.Error("Int on string should miss")
	}
	if _, ok := d.Str("missing"); ok {
		t.Error("missing key should miss")
	}
}
