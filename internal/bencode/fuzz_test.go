package bencode

import (
	"bytes"
	"testing"
)

// FuzzDecode drives the decoder with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode byte-identically (the
// canonical-form invariant the DHT relies on).
func FuzzDecode(f *testing.F) {
	seeds := [][]byte{
		[]byte("i42e"),
		[]byte("4:spam"),
		[]byte("li1e4:spame"),
		[]byte("d1:ad2:id20:aaaaaaaaaaaaaaaaaaaae1:q9:find_node1:t2:xy1:y1:qe"),
		[]byte("de"),
		[]byte("le"),
		[]byte("i-1e"),
		[]byte("0:"),
		[]byte("d1:a"),
		[]byte("i042e"),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := Encode(v)
		if err != nil {
			t.Fatalf("decoded %q but cannot re-encode: %v", data, err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("non-canonical accept: %q -> %q", data, enc)
		}
		// Round trip again for idempotence.
		v2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		enc2, _ := Encode(v2)
		if !bytes.Equal(enc, enc2) {
			t.Fatal("encode not idempotent")
		}
	})
}
