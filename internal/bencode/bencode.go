// Package bencode implements the BitTorrent bencoding wire format
// (BEP-3): integers, byte strings, lists and dictionaries. The KRPC
// messages of the DHT protocol (BEP-5) are bencoded dictionaries; package
// krpc builds on this codec.
//
// The decoder maps bencoded values onto Go types:
//
//	integer    -> int64
//	string     -> []byte
//	list       -> []any
//	dictionary -> map[string]any
//
// Dictionaries keys are encoded in sorted order as the format requires, so
// Encode(Decode(x)) == x for every valid input.
package bencode

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
)

// Errors returned by the decoder.
var (
	ErrTruncated = errors.New("bencode: truncated input")
	ErrSyntax    = errors.New("bencode: syntax error")
	ErrTrailing  = errors.New("bencode: trailing data after value")
)

// maxDepth bounds nesting to keep hostile inputs from exhausting the
// stack; DHT messages are at most a few levels deep.
const maxDepth = 32

// Encode renders v into bencoded form. Supported types: int, int64,
// string, []byte, []any, map[string]any. It returns an error for anything
// else — the caller constructs messages, so unsupported types are bugs,
// but the error form composes better with fuzzing round-trips.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := encodeTo(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeTo(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case int:
		return encodeInt(buf, int64(x))
	case int64:
		return encodeInt(buf, x)
	case string:
		return encodeBytes(buf, []byte(x))
	case []byte:
		return encodeBytes(buf, x)
	case []any:
		buf.WriteByte('l')
		for _, e := range x {
			if err := encodeTo(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte('e')
		return nil
	case map[string]any:
		buf.WriteByte('d')
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := encodeBytes(buf, []byte(k)); err != nil {
				return err
			}
			if err := encodeTo(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('e')
		return nil
	default:
		return fmt.Errorf("bencode: cannot encode %T", v)
	}
}

func encodeInt(buf *bytes.Buffer, n int64) error {
	buf.WriteByte('i')
	buf.WriteString(strconv.FormatInt(n, 10))
	buf.WriteByte('e')
	return nil
}

func encodeBytes(buf *bytes.Buffer, b []byte) error {
	buf.WriteString(strconv.Itoa(len(b)))
	buf.WriteByte(':')
	buf.Write(b)
	return nil
}

// Decode parses exactly one bencoded value occupying all of data.
func Decode(data []byte) (any, error) {
	v, rest, err := decode(data, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrTrailing
	}
	return v, nil
}

// DecodePrefix parses one bencoded value from the front of data and also
// returns the unconsumed remainder.
func DecodePrefix(data []byte) (any, []byte, error) {
	return decode(data, 0)
}

func decode(data []byte, depth int) (any, []byte, error) {
	if depth > maxDepth {
		return nil, nil, fmt.Errorf("%w: nesting deeper than %d", ErrSyntax, maxDepth)
	}
	if len(data) == 0 {
		return nil, nil, ErrTruncated
	}
	switch c := data[0]; {
	case c == 'i':
		return decodeInt(data)
	case c >= '0' && c <= '9':
		return decodeString(data)
	case c == 'l':
		rest := data[1:]
		list := []any{}
		for {
			if len(rest) == 0 {
				return nil, nil, ErrTruncated
			}
			if rest[0] == 'e' {
				return list, rest[1:], nil
			}
			var (
				v   any
				err error
			)
			v, rest, err = decode(rest, depth+1)
			if err != nil {
				return nil, nil, err
			}
			list = append(list, v)
		}
	case c == 'd':
		rest := data[1:]
		dict := map[string]any{}
		lastKey := ""
		first := true
		for {
			if len(rest) == 0 {
				return nil, nil, ErrTruncated
			}
			if rest[0] == 'e' {
				return dict, rest[1:], nil
			}
			var (
				kv  any
				err error
			)
			kv, rest, err = decodeString(rest)
			if err != nil {
				return nil, nil, err
			}
			key := string(kv.([]byte))
			if !first && key <= lastKey {
				return nil, nil, fmt.Errorf("%w: dictionary keys not strictly sorted", ErrSyntax)
			}
			first, lastKey = false, key
			var v any
			v, rest, err = decode(rest, depth+1)
			if err != nil {
				return nil, nil, err
			}
			dict[key] = v
		}
	default:
		return nil, nil, fmt.Errorf("%w: unexpected byte %q", ErrSyntax, c)
	}
}

func decodeInt(data []byte) (any, []byte, error) {
	end := bytes.IndexByte(data, 'e')
	if end < 0 {
		return nil, nil, ErrTruncated
	}
	body := string(data[1:end])
	if body == "" {
		return nil, nil, fmt.Errorf("%w: empty integer", ErrSyntax)
	}
	// Only digits with an optional leading '-' are legal; ParseInt alone
	// would also admit a leading '+', which the format forbids.
	for i := 0; i < len(body); i++ {
		if body[i] >= '0' && body[i] <= '9' {
			continue
		}
		if i == 0 && body[i] == '-' && len(body) > 1 {
			continue
		}
		return nil, nil, fmt.Errorf("%w: bad integer %q", ErrSyntax, body)
	}
	// Reject non-canonical forms the spec forbids: leading zeros and "-0".
	if body != "0" && (body[0] == '0' || (len(body) > 1 && body[0] == '-' && body[1] == '0')) {
		return nil, nil, fmt.Errorf("%w: non-canonical integer %q", ErrSyntax, body)
	}
	n, err := strconv.ParseInt(body, 10, 64)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: bad integer %q", ErrSyntax, body)
	}
	return n, data[end+1:], nil
}

func decodeString(data []byte) (any, []byte, error) {
	colon := bytes.IndexByte(data, ':')
	if colon < 0 {
		return nil, nil, ErrTruncated
	}
	// Parse the length inline rather than through strconv: the decoder
	// runs per packet in simulated campaigns and the intermediate string
	// allocation is measurable. Digits only, no redundant leading zeros,
	// int32 range. This is deliberately stricter than the ParseInt path
	// it replaced, which admitted sign-prefixed lengths ("+5", "-0") —
	// non-canonical forms whose acceptance violated the decoder's own
	// round-trip invariant (FuzzDecode: accepted input must re-encode
	// byte-identically).
	lenBytes := data[:colon]
	if len(lenBytes) == 0 || (lenBytes[0] == '0' && len(lenBytes) > 1) {
		return nil, nil, fmt.Errorf("%w: bad string length %q", ErrSyntax, lenBytes)
	}
	var n int64
	for _, c := range lenBytes {
		if c < '0' || c > '9' {
			return nil, nil, fmt.Errorf("%w: bad string length %q", ErrSyntax, lenBytes)
		}
		n = n*10 + int64(c-'0')
		if n > 1<<31-1 {
			return nil, nil, fmt.Errorf("%w: bad string length %q", ErrSyntax, lenBytes)
		}
	}
	body := data[colon+1:]
	if int64(len(body)) < n {
		return nil, nil, ErrTruncated
	}
	out := make([]byte, n)
	copy(out, body[:n])
	return out, body[n:], nil
}

// Dict is a convenience accessor around a decoded dictionary.
type Dict map[string]any

// AsDict converts a decoded value to a Dict.
func AsDict(v any) (Dict, bool) {
	m, ok := v.(map[string]any)
	return Dict(m), ok
}

// Bytes fetches a byte-string entry.
func (d Dict) Bytes(key string) ([]byte, bool) {
	b, ok := d[key].([]byte)
	return b, ok
}

// Str fetches a byte-string entry as a string.
func (d Dict) Str(key string) (string, bool) {
	b, ok := d[key].([]byte)
	return string(b), ok
}

// Int fetches an integer entry.
func (d Dict) Int(key string) (int64, bool) {
	n, ok := d[key].(int64)
	return n, ok
}

// Dict fetches a nested dictionary entry.
func (d Dict) Dict(key string) (Dict, bool) {
	m, ok := d[key].(map[string]any)
	return Dict(m), ok
}

// List fetches a list entry.
func (d Dict) List(key string) ([]any, bool) {
	l, ok := d[key].([]any)
	return l, ok
}
