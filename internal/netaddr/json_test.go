package netaddr

import (
	"encoding/json"
	"testing"
)

func TestAddrJSONRoundTrip(t *testing.T) {
	in := MustParseAddr("100.64.3.7")
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"100.64.3.7"` {
		t.Errorf("marshal = %s", b)
	}
	var out Addr
	if err := json.Unmarshal(b, &out); err != nil || out != in {
		t.Errorf("unmarshal = %v, %v", out, err)
	}
}

func TestAddrAsMapKey(t *testing.T) {
	in := map[Addr]int{MustParseAddr("10.0.0.1"): 7}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out map[Addr]int
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out[MustParseAddr("10.0.0.1")] != 7 {
		t.Errorf("map round trip = %v", out)
	}
}

func TestPrefixEndpointProtoJSON(t *testing.T) {
	type payload struct {
		P  Prefix
		E  Endpoint
		Pr Proto
	}
	in := payload{
		P:  MustParsePrefix("100.64.0.0/10"),
		E:  MustParseEndpoint("198.51.100.2:6881"),
		Pr: TCP,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	var a Addr
	if err := json.Unmarshal([]byte(`"bogus"`), &a); err == nil {
		t.Error("bad addr accepted")
	}
	var p Proto
	if err := json.Unmarshal([]byte(`"icmp"`), &p); err == nil {
		t.Error("bad proto accepted")
	}
	if _, err := Proto(9).MarshalText(); err == nil {
		t.Error("unknown proto marshaled")
	}
}
