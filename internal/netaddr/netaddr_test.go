package netaddr

import (
	"testing"
	"testing/quick"
)

func TestAddrFrom4(t *testing.T) {
	a := AddrFrom4(192, 168, 1, 42)
	if got := a.String(); got != "192.168.1.42" {
		t.Errorf("String() = %q, want 192.168.1.42", got)
	}
	o1, o2, o3, o4 := a.Octets()
	if o1 != 192 || o2 != 168 || o3 != 1 || o4 != 42 {
		t.Errorf("Octets() = %d.%d.%d.%d", o1, o2, o3, o4)
	}
}

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", Addr(0xffffffff), true},
		{"10.0.0.1", AddrFrom4(10, 0, 0, 1), true},
		{"100.64.3.7", AddrFrom4(100, 64, 3, 7), true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.1.1.1", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1.2.3.-4", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAddr(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", c.in)
		}
	}
}

func TestAddrStringParseRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrBytesRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, ok := AddrFromBytes(a.Bytes())
		return ok && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrFromBytesWrongLength(t *testing.T) {
	if _, ok := AddrFromBytes([]byte{1, 2, 3}); ok {
		t.Error("AddrFromBytes accepted 3 bytes")
	}
	if _, ok := AddrFromBytes([]byte{1, 2, 3, 4, 5}); ok {
		t.Error("AddrFromBytes accepted 5 bytes")
	}
}

func TestBlock24(t *testing.T) {
	a := MustParseAddr("10.20.30.40")
	if got, want := a.Block24().String(), "10.20.30.0/24"; got != want {
		t.Errorf("Block24 = %q, want %q", got, want)
	}
	// All addresses in a /24 share the same Block24 key.
	b := MustParseAddr("10.20.30.255")
	if a.Block24() != b.Block24() {
		t.Error("Block24 keys differ within a /24")
	}
	c := MustParseAddr("10.20.31.0")
	if a.Block24() == c.Block24() {
		t.Error("Block24 keys equal across /24 boundary")
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("100.64.0.0/10")
	if !p.Contains(MustParseAddr("100.64.0.0")) {
		t.Error("should contain network address")
	}
	if !p.Contains(MustParseAddr("100.127.255.255")) {
		t.Error("should contain broadcast end")
	}
	if p.Contains(MustParseAddr("100.128.0.0")) {
		t.Error("should not contain next block")
	}
	if p.Contains(MustParseAddr("100.63.255.255")) {
		t.Error("should not contain prior block")
	}
}

func TestPrefixCanonicalized(t *testing.T) {
	p := PrefixFrom(MustParseAddr("10.1.2.3"), 8)
	if got := p.String(); got != "10.0.0.0/8" {
		t.Errorf("canonicalized prefix = %q, want 10.0.0.0/8", got)
	}
	// Two prefixes built from different member addresses must compare equal.
	q := PrefixFrom(MustParseAddr("10.200.0.99"), 8)
	if p != q {
		t.Error("canonical prefixes should be comparable-equal")
	}
}

func TestPrefixZeroBits(t *testing.T) {
	p := PrefixFrom(MustParseAddr("1.2.3.4"), 0)
	if !p.Contains(MustParseAddr("255.255.255.255")) || !p.Contains(0) {
		t.Error("/0 must contain everything")
	}
	if p.NumAddrs() != 1<<32 {
		t.Errorf("/0 NumAddrs = %d", p.NumAddrs())
	}
}

func TestPrefixClamping(t *testing.T) {
	p := PrefixFrom(MustParseAddr("1.2.3.4"), 40)
	if p.Bits() != 32 {
		t.Errorf("bits clamped to %d, want 32", p.Bits())
	}
	q := PrefixFrom(MustParseAddr("1.2.3.4"), -1)
	if q.Bits() != 0 {
		t.Errorf("bits clamped to %d, want 0", q.Bits())
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, s := range []string{"10.0.0.0", "10.0.0.0/33", "10.0.0.0/x", "bogus/8"} {
		if _, err := ParsePrefix(s); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", s)
		}
	}
}

func TestPrefixOverlaps(t *testing.T) {
	ten := MustParsePrefix("10.0.0.0/8")
	sub := MustParsePrefix("10.5.0.0/16")
	other := MustParsePrefix("11.0.0.0/8")
	if !ten.Overlaps(sub) || !sub.Overlaps(ten) {
		t.Error("nested prefixes must overlap symmetrically")
	}
	if ten.Overlaps(other) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestPrefixNthSubnet(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if got := p.Nth(256).String(); got != "10.0.1.0" {
		t.Errorf("Nth(256) = %s", got)
	}
	s := p.Subnet(16, 3)
	if got := s.String(); got != "10.3.0.0/16" {
		t.Errorf("Subnet(16,3) = %s", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Nth out of range should panic")
		}
	}()
	MustParsePrefix("10.0.0.0/30").Nth(4)
}

func TestEndpointParseString(t *testing.T) {
	e := MustParseEndpoint("100.64.1.2:6881")
	if e.Addr != MustParseAddr("100.64.1.2") || e.Port != 6881 {
		t.Errorf("parsed endpoint = %+v", e)
	}
	if got := e.String(); got != "100.64.1.2:6881" {
		t.Errorf("String = %q", got)
	}
	for _, s := range []string{"1.2.3.4", "1.2.3.4:99999", "1.2.3:80"} {
		if _, err := ParseEndpoint(s); err == nil {
			t.Errorf("ParseEndpoint(%q) succeeded, want error", s)
		}
	}
}

func TestFlowReverse(t *testing.T) {
	f := FlowOf(UDP, MustParseEndpoint("10.0.0.1:1000"), MustParseEndpoint("8.8.8.8:53"))
	r := f.Reverse()
	if r.Src != f.Dst || r.Dst != f.Src || r.Proto != f.Proto {
		t.Errorf("Reverse = %v", r)
	}
	if r.Reverse() != f {
		t.Error("double Reverse must be identity")
	}
}

func TestFlowReverseProperty(t *testing.T) {
	f := func(sa, da uint32, sp, dp uint16, proto bool) bool {
		p := UDP
		if proto {
			p = TCP
		}
		fl := FlowOf(p, EndpointOf(Addr(sa), sp), EndpointOf(Addr(da), dp))
		return fl.Reverse().Reverse() == fl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlowAsMapKey(t *testing.T) {
	m := map[Flow]int{}
	f1 := FlowOf(TCP, MustParseEndpoint("10.0.0.1:1000"), MustParseEndpoint("8.8.8.8:80"))
	f2 := FlowOf(TCP, MustParseEndpoint("10.0.0.1:1000"), MustParseEndpoint("8.8.8.8:80"))
	m[f1] = 7
	if m[f2] != 7 {
		t.Error("identical flows must hash to the same key")
	}
}

func TestProtoString(t *testing.T) {
	if UDP.String() != "udp" || TCP.String() != "tcp" {
		t.Error("proto names")
	}
	if Proto(9).String() == "" {
		t.Error("unknown proto should still render")
	}
}
