package netaddr

import "fmt"

// MarshalText implements encoding.TextMarshaler; Addr values serialize as
// dotted quads, which also makes them usable as JSON object keys.
func (a Addr) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (a *Addr) UnmarshalText(b []byte) error {
	v, err := ParseAddr(string(b))
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// MarshalText implements encoding.TextMarshaler (CIDR notation).
func (p Prefix) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *Prefix) UnmarshalText(b []byte) error {
	v, err := ParsePrefix(string(b))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// MarshalText implements encoding.TextMarshaler ("addr:port").
func (e Endpoint) MarshalText() ([]byte, error) { return []byte(e.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (e *Endpoint) UnmarshalText(b []byte) error {
	v, err := ParseEndpoint(string(b))
	if err != nil {
		return err
	}
	*e = v
	return nil
}

// MarshalText implements encoding.TextMarshaler ("udp"/"tcp").
func (p Proto) MarshalText() ([]byte, error) {
	switch p {
	case UDP, TCP:
		return []byte(p.String()), nil
	default:
		return nil, fmt.Errorf("netaddr: cannot marshal %v", p)
	}
}

// UnmarshalText implements encoding.TextUnmarshaler.
func (p *Proto) UnmarshalText(b []byte) error {
	switch string(b) {
	case "udp":
		*p = UDP
	case "tcp":
		*p = TCP
	default:
		return fmt.Errorf("netaddr: unknown protocol %q", b)
	}
	return nil
}
