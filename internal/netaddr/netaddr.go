// Package netaddr provides compact IPv4 value types used throughout the
// repository: addresses, prefixes, transport endpoints and flows.
//
// All types are comparable values suitable as map keys, following the
// Endpoint/Flow idiom popularized by gopacket: NAT mapping tables, leak
// graphs and deduplication sets are then plain Go maps. The paper's entire
// methodology is IPv4-only (CGNs are an IPv4 scarcity coping mechanism), so
// no IPv6 representation is needed.
package netaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address stored in host byte order (a.b.c.d where a is the
// most significant byte). The zero value is 0.0.0.0, which the package treats
// as "unspecified".
type Addr uint32

// AddrFrom4 assembles an Addr from its four dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// AddrFromBytes parses the 4-byte big-endian wire representation used by the
// compact peer encodings in BitTorrent and STUN. It returns false if b does
// not hold exactly four bytes.
func AddrFromBytes(b []byte) (Addr, bool) {
	if len(b) != 4 {
		return 0, false
	}
	return AddrFrom4(b[0], b[1], b[2], b[3]), true
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (Addr, error) {
	var octets [4]uint32
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("netaddr: invalid IPv4 address %q", s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		v, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("netaddr: invalid IPv4 address %q", s)
		}
		octets[i] = uint32(v)
	}
	return Addr(octets[0]<<24 | octets[1]<<16 | octets[2]<<8 | octets[3]), nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and tables.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Octets returns the four dotted-quad octets of a.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// Bytes returns the 4-byte big-endian wire representation of a.
func (a Addr) Bytes() []byte {
	return []byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// AppendBytes appends the 4-byte big-endian wire representation of a to dst.
func (a Addr) AppendBytes(dst []byte) []byte {
	return append(dst, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// IsUnspecified reports whether a is 0.0.0.0.
func (a Addr) IsUnspecified() bool { return a == 0 }

// Block24 returns the /24 block containing a. The paper's non-cellular
// Netalyzr heuristic (§4.2) counts distinct /24 blocks of CPE addresses.
func (a Addr) Block24() Prefix { return Prefix{addr: a &^ 0xff, bits: 24} }

// String returns the dotted-quad form of a.
func (a Addr) String() string {
	b := make([]byte, 0, 15)
	b = strconv.AppendUint(b, uint64(a>>24), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a>>16&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a>>8&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a&0xff), 10)
	return string(b)
}

// Prefix is an IPv4 CIDR prefix. The address is stored canonicalized: bits
// beyond the prefix length are zero.
type Prefix struct {
	addr Addr
	bits uint8
}

// PrefixFrom returns the prefix of the given length containing addr,
// canonicalizing the address. Lengths above 32 are clamped to 32.
func PrefixFrom(addr Addr, bits int) Prefix {
	if bits < 0 {
		bits = 0
	}
	if bits > 32 {
		bits = 32
	}
	return Prefix{addr: addr & mask(bits), bits: uint8(bits)}
}

// ParsePrefix parses "a.b.c.d/len" CIDR notation.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netaddr: invalid prefix %q: no '/'", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.ParseUint(s[slash+1:], 10, 8)
	if err != nil || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: invalid prefix length in %q", s)
	}
	return PrefixFrom(a, int(bits)), nil
}

// MustParsePrefix is ParsePrefix that panics on error; for tests and tables.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func mask(bits int) Addr {
	if bits <= 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - uint(bits)))
}

// Addr returns the canonical (lowest) address of the prefix.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// Contains reports whether a is inside p.
func (p Prefix) Contains(a Addr) bool {
	return a&mask(int(p.bits)) == p.addr
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// NumAddrs returns the number of addresses covered by the prefix.
func (p Prefix) NumAddrs() uint64 { return 1 << (32 - uint(p.bits)) }

// Nth returns the i-th address within the prefix. It panics if i is out of
// range; world generators use it to carve deterministic sub-allocations.
func (p Prefix) Nth(i uint64) Addr {
	if i >= p.NumAddrs() {
		panic(fmt.Sprintf("netaddr: Nth(%d) out of range for %v", i, p))
	}
	return p.addr + Addr(i)
}

// Subnet returns the i-th sub-prefix of the given length within p.
func (p Prefix) Subnet(bits int, i uint64) Prefix {
	if bits < p.Bits() || bits > 32 {
		panic(fmt.Sprintf("netaddr: invalid subnet length %d of %v", bits, p))
	}
	count := uint64(1) << (uint(bits) - uint(p.bits))
	if i >= count {
		panic(fmt.Sprintf("netaddr: Subnet(%d, %d) out of range for %v", bits, i, p))
	}
	return Prefix{addr: p.addr + Addr(i<<(32-uint(bits))), bits: uint8(bits)}
}

// String returns CIDR notation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// Proto identifies a transport protocol. Only UDP and TCP appear in the
// paper's measurements.
type Proto uint8

// Transport protocols.
const (
	UDP Proto = iota
	TCP
)

// String returns "udp" or "tcp".
func (p Proto) String() string {
	switch p {
	case UDP:
		return "udp"
	case TCP:
		return "tcp"
	default:
		return "proto(" + strconv.Itoa(int(p)) + ")"
	}
}

// Endpoint is a transport endpoint: an address and a port.
type Endpoint struct {
	Addr Addr
	Port uint16
}

// EndpointOf builds an Endpoint.
func EndpointOf(a Addr, port uint16) Endpoint { return Endpoint{Addr: a, Port: port} }

// ParseEndpoint parses "a.b.c.d:port".
func ParseEndpoint(s string) (Endpoint, error) {
	colon := strings.LastIndexByte(s, ':')
	if colon < 0 {
		return Endpoint{}, fmt.Errorf("netaddr: invalid endpoint %q: no ':'", s)
	}
	a, err := ParseAddr(s[:colon])
	if err != nil {
		return Endpoint{}, err
	}
	port, err := strconv.ParseUint(s[colon+1:], 10, 16)
	if err != nil {
		return Endpoint{}, fmt.Errorf("netaddr: invalid port in %q", s)
	}
	return Endpoint{Addr: a, Port: uint16(port)}, nil
}

// MustParseEndpoint is ParseEndpoint that panics on error.
func MustParseEndpoint(s string) Endpoint {
	e, err := ParseEndpoint(s)
	if err != nil {
		panic(err)
	}
	return e
}

// IsZero reports whether e is the zero Endpoint.
func (e Endpoint) IsZero() bool { return e == Endpoint{} }

// String returns "addr:port".
func (e Endpoint) String() string {
	return e.Addr.String() + ":" + strconv.Itoa(int(e.Port))
}

// Flow is a transport 5-tuple minus the protocol-internal state: protocol,
// source endpoint and destination endpoint. Flows are the keys of NAT
// mapping tables.
type Flow struct {
	Proto Proto
	Src   Endpoint
	Dst   Endpoint
}

// FlowOf builds a Flow.
func FlowOf(p Proto, src, dst Endpoint) Flow { return Flow{Proto: p, Src: src, Dst: dst} }

// Reverse returns the flow with source and destination swapped, i.e. the
// flow of reply packets.
func (f Flow) Reverse() Flow { return Flow{Proto: f.Proto, Src: f.Dst, Dst: f.Src} }

// String renders "udp src -> dst".
func (f Flow) String() string {
	return f.Proto.String() + " " + f.Src.String() + " -> " + f.Dst.String()
}
