package netaddr

// Range identifies which reserved (or not) address range an address falls
// in, using the paper's shorthand taxonomy (Table 1). The four reserved
// ranges are the signal the BitTorrent leak detection keys on; everything
// else is classified relative to the routing table by package routing.
type Range uint8

// Reserved ranges per Table 1 of the paper, plus Public for everything else.
const (
	// RangePublic is any address outside the reserved blocks below.
	RangePublic Range = iota
	// Range192 is 192.168.0.0/16 (RFC 1918), the block commonly used by CPE.
	Range192
	// Range172 is 172.16.0.0/12 (RFC 1918).
	Range172
	// Range10 is 10.0.0.0/8 (RFC 1918), the largest private block.
	Range10
	// Range100 is 100.64.0.0/10 (RFC 6598), allocated for CGN deployments.
	Range100
	// RangeLoopback is 127.0.0.0/8; excluded from all analyses.
	RangeLoopback
	// RangeLinkLocal is 169.254.0.0/16; excluded from all analyses.
	RangeLinkLocal
)

var rangePrefixes = map[Range]Prefix{
	Range192:       MustParsePrefix("192.168.0.0/16"),
	Range172:       MustParsePrefix("172.16.0.0/12"),
	Range10:        MustParsePrefix("10.0.0.0/8"),
	Range100:       MustParsePrefix("100.64.0.0/10"),
	RangeLoopback:  MustParsePrefix("127.0.0.0/8"),
	RangeLinkLocal: MustParsePrefix("169.254.0.0/16"),
}

// ReservedRanges lists the four internal-use ranges from Table 1 in the
// order the paper presents them: 192X, 172X, 10X, 100X.
var ReservedRanges = []Range{Range192, Range172, Range10, Range100}

// RangePrefix returns the CIDR block of a reserved range. It panics for
// RangePublic, which is not a block.
func RangePrefix(r Range) Prefix {
	p, ok := rangePrefixes[r]
	if !ok {
		panic("netaddr: RangePrefix of non-reserved range")
	}
	return p
}

// ClassifyRange returns which reserved range a falls in, or RangePublic.
func ClassifyRange(a Addr) Range {
	switch {
	case rangePrefixes[Range10].Contains(a):
		return Range10
	case rangePrefixes[Range100].Contains(a):
		return Range100
	case rangePrefixes[Range172].Contains(a):
		return Range172
	case rangePrefixes[Range192].Contains(a):
		return Range192
	case rangePrefixes[RangeLoopback].Contains(a):
		return RangeLoopback
	case rangePrefixes[RangeLinkLocal].Contains(a):
		return RangeLinkLocal
	default:
		return RangePublic
	}
}

// IsReserved reports whether a falls in one of the four internal-use ranges
// of Table 1 (the paper's "reserved" definition: should not be announced to
// the global routing table but used behind NATs).
func IsReserved(a Addr) bool {
	switch ClassifyRange(a) {
	case Range192, Range172, Range10, Range100:
		return true
	default:
		return false
	}
}

// String returns the paper's shorthand for the range.
func (r Range) String() string {
	switch r {
	case RangePublic:
		return "public"
	case Range192:
		return "192X"
	case Range172:
		return "172X"
	case Range10:
		return "10X"
	case Range100:
		return "100X"
	case RangeLoopback:
		return "loopback"
	case RangeLinkLocal:
		return "linklocal"
	default:
		return "range(?)"
	}
}

// Category classifies an observed address the way §4.2 of the paper buckets
// IPdev and IPcpe: reserved/private, unrouted public, routed matching the
// public address seen by the server, or routed but mismatching it.
type Category uint8

// Address categories per Table 4 of the paper.
const (
	// CatPrivate: address inside a reserved block.
	CatPrivate Category = iota
	// CatUnrouted: nominally public but absent from the routing table.
	CatUnrouted
	// CatRoutedMatch: routable, in the routing table, equal to the public
	// address observed by the measurement server (the no-NAT case).
	CatRoutedMatch
	// CatRoutedMismatch: routable and routed but different from the public
	// address observed by the server (translation by a NAT using routable
	// internal space).
	CatRoutedMismatch
)

// String names the category as in Table 4.
func (c Category) String() string {
	switch c {
	case CatPrivate:
		return "private"
	case CatUnrouted:
		return "unrouted"
	case CatRoutedMatch:
		return "routed match"
	case CatRoutedMismatch:
		return "routed mismatch"
	default:
		return "category(?)"
	}
}

// Categorize buckets addr per the §4.2 taxonomy. routed reports whether the
// address appears in the (simulated) global routing table; pub is the public
// address the measurement server observed for the same session.
func Categorize(addr Addr, routed bool, pub Addr) Category {
	if IsReserved(addr) {
		return CatPrivate
	}
	if !routed {
		return CatUnrouted
	}
	if addr == pub {
		return CatRoutedMatch
	}
	return CatRoutedMismatch
}
