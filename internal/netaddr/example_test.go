package netaddr_test

import (
	"fmt"

	"cgn/internal/netaddr"
)

// The reserved-range taxonomy of Table 1 drives the BitTorrent leak
// detection: a DHT contact inside any of these blocks is an "internal
// peer".
func ExampleClassifyRange() {
	for _, s := range []string{"192.168.1.7", "10.44.0.9", "100.64.12.1", "203.0.113.9"} {
		a := netaddr.MustParseAddr(s)
		fmt.Printf("%-14s %-6s reserved=%v\n", a, netaddr.ClassifyRange(a), netaddr.IsReserved(a))
	}
	// Output:
	// 192.168.1.7    192X   reserved=true
	// 10.44.0.9      10X    reserved=true
	// 100.64.12.1    100X   reserved=true
	// 203.0.113.9    public reserved=false
}

// Categorize buckets observed addresses the way §4.2 classifies IPdev and
// IPcpe against the address the measurement server saw.
func ExampleCategorize() {
	pub := netaddr.MustParseAddr("203.0.113.7")
	fmt.Println(netaddr.Categorize(netaddr.MustParseAddr("100.64.0.5"), false, pub))
	fmt.Println(netaddr.Categorize(netaddr.MustParseAddr("25.1.2.3"), false, pub))
	fmt.Println(netaddr.Categorize(pub, true, pub))
	fmt.Println(netaddr.Categorize(netaddr.MustParseAddr("198.51.100.9"), true, pub))
	// Output:
	// private
	// unrouted
	// routed match
	// routed mismatch
}

// Flows are comparable values, so NAT mapping tables are plain maps.
func ExampleFlow_Reverse() {
	f := netaddr.FlowOf(netaddr.UDP,
		netaddr.MustParseEndpoint("10.0.0.1:6881"),
		netaddr.MustParseEndpoint("203.0.113.9:3478"))
	fmt.Println(f)
	fmt.Println(f.Reverse())
	// Output:
	// udp 10.0.0.1:6881 -> 203.0.113.9:3478
	// udp 203.0.113.9:3478 -> 10.0.0.1:6881
}
