package netaddr

import (
	"testing"
	"testing/quick"
)

func TestClassifyRange(t *testing.T) {
	cases := []struct {
		addr string
		want Range
	}{
		{"192.168.0.1", Range192},
		{"192.168.255.255", Range192},
		{"192.169.0.0", RangePublic},
		{"192.167.255.255", RangePublic},
		{"172.16.0.0", Range172},
		{"172.31.255.255", Range172},
		{"172.32.0.0", RangePublic},
		{"172.15.255.255", RangePublic},
		{"10.0.0.0", Range10},
		{"10.255.255.255", Range10},
		{"11.0.0.0", RangePublic},
		{"9.255.255.255", RangePublic},
		{"100.64.0.0", Range100},
		{"100.127.255.255", Range100},
		{"100.128.0.0", RangePublic},
		{"100.63.255.255", RangePublic},
		{"127.0.0.1", RangeLoopback},
		{"169.254.1.1", RangeLinkLocal},
		{"8.8.8.8", RangePublic},
		{"1.0.0.1", RangePublic},
	}
	for _, c := range cases {
		if got := ClassifyRange(MustParseAddr(c.addr)); got != c.want {
			t.Errorf("ClassifyRange(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestIsReserved(t *testing.T) {
	for _, s := range []string{"10.1.2.3", "100.64.0.1", "172.20.0.1", "192.168.5.5"} {
		if !IsReserved(MustParseAddr(s)) {
			t.Errorf("IsReserved(%s) = false", s)
		}
	}
	// Loopback and link-local are excluded from the paper's reserved set.
	for _, s := range []string{"127.0.0.1", "169.254.0.1", "8.8.8.8", "25.1.1.1"} {
		if IsReserved(MustParseAddr(s)) {
			t.Errorf("IsReserved(%s) = true", s)
		}
	}
}

// Classification must agree with prefix membership for every address.
func TestClassifyRangeMatchesPrefixes(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		r := ClassifyRange(a)
		if r == RangePublic {
			for rr, p := range rangePrefixes {
				if p.Contains(a) && rr != RangePublic {
					return false
				}
			}
			return true
		}
		return RangePrefix(r).Contains(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReservedRangesOrder(t *testing.T) {
	want := []string{"192X", "172X", "10X", "100X"}
	for i, r := range ReservedRanges {
		if r.String() != want[i] {
			t.Errorf("ReservedRanges[%d] = %s, want %s", i, r, want[i])
		}
	}
}

func TestRangePrefixPanicsOnPublic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RangePrefix(RangePublic) should panic")
		}
	}()
	RangePrefix(RangePublic)
}

func TestCategorize(t *testing.T) {
	pub := MustParseAddr("203.0.113.7")
	cases := []struct {
		addr   string
		routed bool
		want   Category
	}{
		{"10.1.1.1", false, CatPrivate},
		{"100.64.0.9", true, CatPrivate}, // reserved wins even if "routed"
		{"25.0.0.1", false, CatUnrouted},
		{"203.0.113.7", true, CatRoutedMatch},
		{"198.51.100.2", true, CatRoutedMismatch},
	}
	for _, c := range cases {
		got := Categorize(MustParseAddr(c.addr), c.routed, pub)
		if got != c.want {
			t.Errorf("Categorize(%s, routed=%v) = %v, want %v", c.addr, c.routed, got, c.want)
		}
	}
}

func TestRangeStrings(t *testing.T) {
	pairs := map[Range]string{
		RangePublic: "public", Range192: "192X", Range172: "172X",
		Range10: "10X", Range100: "100X",
		RangeLoopback: "loopback", RangeLinkLocal: "linklocal",
	}
	for r, want := range pairs {
		if r.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(r), r.String(), want)
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	pairs := map[Category]string{
		CatPrivate: "private", CatUnrouted: "unrouted",
		CatRoutedMatch: "routed match", CatRoutedMismatch: "routed mismatch",
	}
	for c, want := range pairs {
		if c.String() != want {
			t.Errorf("Category(%d).String() = %q, want %q", int(c), c.String(), want)
		}
	}
}
