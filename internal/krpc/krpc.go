// Package krpc implements the KRPC message layer of the BitTorrent DHT
// protocol (BEP-5): bencoded query/response/error dictionaries carried over
// UDP, plus the compact node-info encoding that find_node responses use.
// The paper's crawler (§4.1) speaks exactly this dialect: ping ("bt_ping")
// and find_node.
package krpc

import (
	"bytes"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"

	"cgn/internal/bencode"
	"cgn/internal/netaddr"
)

// NodeID is a 160-bit DHT node identifier. Nodes choose their own IDs at
// random; closeness between IDs is the XOR metric (Kademlia).
type NodeID [20]byte

// NodeIDFromBytes copies a 20-byte slice into a NodeID.
func NodeIDFromBytes(b []byte) (NodeID, bool) {
	var id NodeID
	if len(b) != len(id) {
		return id, false
	}
	copy(id[:], b)
	return id, true
}

// String renders the ID as hex.
func (id NodeID) String() string { return hex.EncodeToString(id[:]) }

// XOR returns the Kademlia distance between two IDs.
func (id NodeID) XOR(other NodeID) NodeID {
	var out NodeID
	for i := range id {
		out[i] = id[i] ^ other[i]
	}
	return out
}

// Less compares distances (big-endian byte order), so sorting by
// id.XOR(target) orders nodes by closeness to target.
func (id NodeID) Less(other NodeID) bool {
	return bytes.Compare(id[:], other[:]) < 0
}

// BucketIndex returns the index of the highest set bit of the XOR distance
// (0..159), or -1 for identical IDs; Kademlia routing tables bucket
// contacts by this index.
func (id NodeID) BucketIndex(other NodeID) int {
	d := id.XOR(other)
	for i, b := range d {
		if b == 0 {
			continue
		}
		for j := 7; j >= 0; j-- {
			if b&(1<<uint(j)) != 0 {
				return (len(d)-1-i)*8 + j
			}
		}
	}
	return -1
}

// NodeInfo is a DHT contact: an ID plus a transport endpoint. This is the
// unit of information the paper's crawler harvests; a contact whose
// endpoint address is reserved is an "internal peer".
type NodeInfo struct {
	ID NodeID
	EP netaddr.Endpoint
}

// compactNodeLen is the wire size of one compact node-info entry.
const compactNodeLen = 26

// AppendCompact appends the 26-byte compact encoding (BEP-5) of n to dst.
func (n NodeInfo) AppendCompact(dst []byte) []byte {
	dst = append(dst, n.ID[:]...)
	dst = n.EP.Addr.AppendBytes(dst)
	return append(dst, byte(n.EP.Port>>8), byte(n.EP.Port))
}

// EncodeCompactNodes renders a node list in compact form.
func EncodeCompactNodes(nodes []NodeInfo) []byte {
	out := make([]byte, 0, len(nodes)*compactNodeLen)
	for _, n := range nodes {
		out = n.AppendCompact(out)
	}
	return out
}

// DecodeCompactNodes parses a compact node list. It rejects data whose
// length is not a multiple of 26.
func DecodeCompactNodes(data []byte) ([]NodeInfo, error) {
	if len(data)%compactNodeLen != 0 {
		return nil, fmt.Errorf("krpc: compact node data length %d not a multiple of %d", len(data), compactNodeLen)
	}
	out := make([]NodeInfo, 0, len(data)/compactNodeLen)
	for i := 0; i < len(data); i += compactNodeLen {
		chunk := data[i : i+compactNodeLen]
		id, _ := NodeIDFromBytes(chunk[:20])
		addr, _ := netaddr.AddrFromBytes(chunk[20:24])
		port := uint16(chunk[24])<<8 | uint16(chunk[25])
		out = append(out, NodeInfo{ID: id, EP: netaddr.EndpointOf(addr, port)})
	}
	return out, nil
}

// MsgKind distinguishes the three KRPC message classes.
type MsgKind uint8

// KRPC message kinds.
const (
	Query MsgKind = iota
	Response
	Error
)

// Query method names used by the crawler and the simulated peers.
const (
	MethodPing         = "ping"
	MethodFindNode     = "find_node"
	MethodGetPeers     = "get_peers"
	MethodAnnouncePeer = "announce_peer"
)

// compactPeerLen is the wire size of one compact peer entry (IP + port).
const compactPeerLen = 6

// EncodeCompactPeers renders transport endpoints in the 6-byte compact
// form get_peers responses use.
func EncodeCompactPeers(peers []netaddr.Endpoint) [][]byte {
	out := make([][]byte, 0, len(peers))
	for _, p := range peers {
		b := p.Addr.AppendBytes(make([]byte, 0, compactPeerLen))
		out = append(out, append(b, byte(p.Port>>8), byte(p.Port)))
	}
	return out
}

// DecodeCompactPeer parses one 6-byte compact peer entry.
func DecodeCompactPeer(b []byte) (netaddr.Endpoint, bool) {
	if len(b) != compactPeerLen {
		return netaddr.Endpoint{}, false
	}
	addr, _ := netaddr.AddrFromBytes(b[:4])
	return netaddr.EndpointOf(addr, uint16(b[4])<<8|uint16(b[5])), true
}

// Message is one parsed KRPC message.
type Message struct {
	Kind MsgKind
	// TID is the transaction ID correlating responses to queries.
	TID []byte
	// Method is the query name (Query only).
	Method string
	// ID is the sender's node ID (queries and responses).
	ID NodeID
	// Target is the find_node target / get_peers info-hash / announced
	// info-hash, depending on Method.
	Target NodeID
	// Nodes is the compact node list (find_node and get_peers responses).
	Nodes []NodeInfo
	// Values carries the peer endpoints of a get_peers response.
	Values []netaddr.Endpoint
	// Token is the write token of get_peers responses and announce_peer
	// queries.
	Token []byte
	// Port is the announced peer port; ImpliedPort asks the storing node
	// to use the observed source port instead (the NAT-friendly mode).
	Port        uint16
	ImpliedPort bool
	// Code and Msg carry error details (Error only).
	Code int64
	Msg  string
}

// Errors returned by Parse.
var ErrMalformed = errors.New("krpc: malformed message")

// The Encode* builders below write the bencoded bytes directly, with the
// dictionary keys laid out in the sorted order the format mandates. This
// is byte-identical to encoding a map[string]any through bencode.Encode
// (TestEncodersMatchGenericBencode proves it) but skips the map
// construction and key sort on what is the hottest path of a simulated
// campaign: every DHT packet passes through one of these.

// appendStr appends one bencoded byte string.
func appendStr(dst []byte, s string) []byte {
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, ':')
	return append(dst, s...)
}

// appendBytes appends one bencoded byte string.
func appendBytes(dst, b []byte) []byte {
	dst = strconv.AppendInt(dst, int64(len(b)), 10)
	dst = append(dst, ':')
	return append(dst, b...)
}

// appendInt appends one bencoded integer.
func appendInt(dst []byte, n int64) []byte {
	dst = append(dst, 'i')
	dst = strconv.AppendInt(dst, n, 10)
	return append(dst, 'e')
}

// queryHeader opens a query dictionary up to the start of the "a" args
// dict; queryFooter closes args and appends the q/t/y entries. Key order:
// a < q < t < y.
func queryFooter(dst []byte, method string, tid []byte) []byte {
	dst = append(dst, 'e')
	dst = appendStr(dst, "q")
	dst = appendStr(dst, method)
	dst = appendStr(dst, "t")
	dst = appendBytes(dst, tid)
	dst = appendStr(dst, "y")
	dst = appendStr(dst, "q")
	return append(dst, 'e')
}

// EncodePing renders a ping query.
func EncodePing(tid []byte, self NodeID) []byte {
	b := make([]byte, 0, 64+len(tid))
	b = append(b, 'd')
	b = appendStr(b, "a")
	b = append(b, 'd')
	b = appendStr(b, "id")
	b = appendBytes(b, self[:])
	return queryFooter(b, MethodPing, tid)
}

// EncodeFindNode renders a find_node query.
func EncodeFindNode(tid []byte, self, target NodeID) []byte {
	b := make([]byte, 0, 96+len(tid))
	b = append(b, 'd')
	b = appendStr(b, "a")
	b = append(b, 'd')
	b = appendStr(b, "id")
	b = appendBytes(b, self[:])
	b = appendStr(b, "target")
	b = appendBytes(b, target[:])
	return queryFooter(b, MethodFindNode, tid)
}

// responseFooter appends the t/y entries closing a response dictionary.
func responseFooter(dst, tid []byte) []byte {
	dst = appendStr(dst, "t")
	dst = appendBytes(dst, tid)
	dst = appendStr(dst, "y")
	dst = appendStr(dst, "r")
	return append(dst, 'e')
}

// EncodePingResponse renders a response to ping.
func EncodePingResponse(tid []byte, self NodeID) []byte {
	b := make([]byte, 0, 64+len(tid))
	b = append(b, 'd')
	b = appendStr(b, "r")
	b = append(b, 'd')
	b = appendStr(b, "id")
	b = appendBytes(b, self[:])
	b = append(b, 'e')
	return responseFooter(b, tid)
}

// EncodeFindNodeResponse renders a response to find_node carrying up to
// eight compact contacts.
func EncodeFindNodeResponse(tid []byte, self NodeID, nodes []NodeInfo) []byte {
	b := make([]byte, 0, 96+len(tid)+len(nodes)*compactNodeLen)
	b = append(b, 'd')
	b = appendStr(b, "r")
	b = append(b, 'd')
	b = appendStr(b, "id")
	b = appendBytes(b, self[:])
	b = appendStr(b, "nodes")
	b = strconv.AppendInt(b, int64(len(nodes)*compactNodeLen), 10)
	b = append(b, ':')
	for _, n := range nodes {
		b = n.AppendCompact(b)
	}
	b = append(b, 'e')
	return responseFooter(b, tid)
}

// EncodeGetPeers renders a get_peers query for an info-hash.
func EncodeGetPeers(tid []byte, self, infoHash NodeID) []byte {
	b := make([]byte, 0, 96+len(tid))
	b = append(b, 'd')
	b = appendStr(b, "a")
	b = append(b, 'd')
	b = appendStr(b, "id")
	b = appendBytes(b, self[:])
	b = appendStr(b, "info_hash")
	b = appendBytes(b, infoHash[:])
	return queryFooter(b, MethodGetPeers, tid)
}

// EncodeGetPeersResponse renders a get_peers response carrying known
// peers (values), fallback contacts (nodes), and a write token.
func EncodeGetPeersResponse(tid []byte, self NodeID, token []byte, peers []netaddr.Endpoint, nodes []NodeInfo) []byte {
	b := make([]byte, 0, 128+len(tid)+len(token)+len(peers)*compactPeerLen+len(nodes)*compactNodeLen)
	b = append(b, 'd')
	b = appendStr(b, "r")
	b = append(b, 'd')
	b = appendStr(b, "id")
	b = appendBytes(b, self[:])
	if len(peers) > 0 {
		// Key order: id < token < values.
		b = appendStr(b, "token")
		b = appendBytes(b, token)
		b = appendStr(b, "values")
		b = append(b, 'l')
		for _, p := range peers {
			b = append(b, '6', ':')
			b = p.Addr.AppendBytes(b)
			b = append(b, byte(p.Port>>8), byte(p.Port))
		}
		b = append(b, 'e')
	} else {
		// Key order: id < nodes < token.
		b = appendStr(b, "nodes")
		b = strconv.AppendInt(b, int64(len(nodes)*compactNodeLen), 10)
		b = append(b, ':')
		for _, n := range nodes {
			b = n.AppendCompact(b)
		}
		b = appendStr(b, "token")
		b = appendBytes(b, token)
	}
	b = append(b, 'e')
	return responseFooter(b, tid)
}

// EncodeAnnouncePeer renders an announce_peer query.
func EncodeAnnouncePeer(tid []byte, self, infoHash NodeID, port uint16, impliedPort bool, token []byte) []byte {
	implied := int64(0)
	if impliedPort {
		implied = 1
	}
	b := make([]byte, 0, 160+len(tid)+len(token))
	b = append(b, 'd')
	b = appendStr(b, "a")
	b = append(b, 'd')
	// Key order: id < implied_port < info_hash < port < token.
	b = appendStr(b, "id")
	b = appendBytes(b, self[:])
	b = appendStr(b, "implied_port")
	b = appendInt(b, implied)
	b = appendStr(b, "info_hash")
	b = appendBytes(b, infoHash[:])
	b = appendStr(b, "port")
	b = appendInt(b, int64(port))
	b = appendStr(b, "token")
	b = appendBytes(b, token)
	return queryFooter(b, MethodAnnouncePeer, tid)
}

// EncodeError renders a KRPC error message.
func EncodeError(tid []byte, code int64, msg string) []byte {
	b := make([]byte, 0, 64+len(tid)+len(msg))
	b = append(b, 'd')
	b = appendStr(b, "e")
	b = append(b, 'l')
	b = appendInt(b, code)
	b = appendStr(b, msg)
	b = append(b, 'e')
	b = appendStr(b, "t")
	b = appendBytes(b, tid)
	b = appendStr(b, "y")
	b = appendStr(b, "e")
	return append(b, 'e')
}

// parseGeneric decodes one KRPC message through the generic bencode
// decoder. It is the reference implementation for Parse (parse.go),
// which scans the wire directly: FuzzParseMatchesGeneric pins the two
// to identical accept/reject decisions and identical Messages.
func parseGeneric(data []byte) (*Message, error) {
	v, err := bencode.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	d, ok := bencode.AsDict(v)
	if !ok {
		return nil, fmt.Errorf("%w: not a dictionary", ErrMalformed)
	}
	tid, ok := d.Bytes("t")
	if !ok {
		return nil, fmt.Errorf("%w: missing transaction id", ErrMalformed)
	}
	y, _ := d.Str("y")
	m := &Message{TID: tid}
	switch y {
	case "q":
		m.Kind = Query
		m.Method, ok = d.Str("q")
		if !ok {
			return nil, fmt.Errorf("%w: query without method", ErrMalformed)
		}
		args, ok := d.Dict("a")
		if !ok {
			return nil, fmt.Errorf("%w: query without args", ErrMalformed)
		}
		idb, ok := args.Bytes("id")
		if !ok {
			return nil, fmt.Errorf("%w: query without id", ErrMalformed)
		}
		if m.ID, ok = NodeIDFromBytes(idb); !ok {
			return nil, fmt.Errorf("%w: bad node id length", ErrMalformed)
		}
		switch m.Method {
		case MethodFindNode:
			tb, ok := args.Bytes("target")
			if !ok {
				return nil, fmt.Errorf("%w: find_node without target", ErrMalformed)
			}
			if m.Target, ok = NodeIDFromBytes(tb); !ok {
				return nil, fmt.Errorf("%w: bad target length", ErrMalformed)
			}
		case MethodGetPeers, MethodAnnouncePeer:
			hb, ok := args.Bytes("info_hash")
			if !ok {
				return nil, fmt.Errorf("%w: %s without info_hash", ErrMalformed, m.Method)
			}
			if m.Target, ok = NodeIDFromBytes(hb); !ok {
				return nil, fmt.Errorf("%w: bad info_hash length", ErrMalformed)
			}
			if m.Method == MethodAnnouncePeer {
				port, ok := args.Int("port")
				if !ok || port < 0 || port > 65535 {
					return nil, fmt.Errorf("%w: bad announce port", ErrMalformed)
				}
				m.Port = uint16(port)
				if implied, ok := args.Int("implied_port"); ok && implied != 0 {
					m.ImpliedPort = true
				}
				m.Token, ok = args.Bytes("token")
				if !ok {
					return nil, fmt.Errorf("%w: announce without token", ErrMalformed)
				}
			}
		}
	case "r":
		m.Kind = Response
		r, ok := d.Dict("r")
		if !ok {
			return nil, fmt.Errorf("%w: response without body", ErrMalformed)
		}
		idb, ok := r.Bytes("id")
		if !ok {
			return nil, fmt.Errorf("%w: response without id", ErrMalformed)
		}
		if m.ID, ok = NodeIDFromBytes(idb); !ok {
			return nil, fmt.Errorf("%w: bad node id length", ErrMalformed)
		}
		if nb, ok := r.Bytes("nodes"); ok {
			nodes, err := DecodeCompactNodes(nb)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
			}
			m.Nodes = nodes
		}
		if tok, ok := r.Bytes("token"); ok {
			m.Token = tok
		}
		if vals, ok := r.List("values"); ok {
			for _, v := range vals {
				raw, ok := v.([]byte)
				if !ok {
					return nil, fmt.Errorf("%w: non-string peer value", ErrMalformed)
				}
				ep, ok := DecodeCompactPeer(raw)
				if !ok {
					return nil, fmt.Errorf("%w: bad compact peer length %d", ErrMalformed, len(raw))
				}
				m.Values = append(m.Values, ep)
			}
		}
	case "e":
		m.Kind = Error
		e, ok := d.List("e")
		if !ok || len(e) < 2 {
			return nil, fmt.Errorf("%w: bad error body", ErrMalformed)
		}
		code, ok := e[0].(int64)
		if !ok {
			return nil, fmt.Errorf("%w: bad error code", ErrMalformed)
		}
		msg, ok := e[1].([]byte)
		if !ok {
			return nil, fmt.Errorf("%w: bad error string", ErrMalformed)
		}
		m.Code, m.Msg = code, string(msg)
	default:
		return nil, fmt.Errorf("%w: unknown message type %q", ErrMalformed, y)
	}
	return m, nil
}
