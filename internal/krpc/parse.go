package krpc

import (
	"bytes"
	"fmt"
)

// This file is the direct KRPC wire parser. parseGeneric (krpc.go)
// decodes through the generic bencode codec, which materializes every
// message as maps, lists and copied byte strings — ~26 allocations per
// find_node response, and the DHT crawl parses one message per packet,
// millions of times per campaign. The scanner below validates the exact
// same grammar (strictly sorted dictionary keys, canonical integers,
// bounded nesting, no trailing bytes) while touching the wire bytes in
// place, allocating only the Message itself and the few fields that
// must outlive the buffer. FuzzParseMatchesGeneric pins both parsers to
// identical accept/reject decisions and identical decoded Messages.

// parseMaxDepth mirrors bencode.maxDepth: values nested deeper are
// rejected, keeping hostile inputs from exhausting the stack.
const parseMaxDepth = 32

// scanner is a cursor over one bencoded message.
type scanner struct {
	data []byte
	pos  int
}

func (s *scanner) truncated() error {
	return fmt.Errorf("%w: truncated", ErrMalformed)
}

func (s *scanner) syntax(what string) error {
	return fmt.Errorf("%w: %s at offset %d", ErrMalformed, what, s.pos)
}

// readStringRef parses "<len>:<bytes>" and returns the body as a
// subslice of the input (no copy). Length must be canonical: digits
// only, no redundant leading zeros, int32 range.
func (s *scanner) readStringRef() ([]byte, error) {
	data, i := s.data, s.pos
	start := i
	var n int64
	for ; i < len(data); i++ {
		c := data[i]
		if c == ':' {
			if i == start {
				return nil, s.syntax("empty string length")
			}
			if data[start] == '0' && i-start > 1 {
				return nil, s.syntax("non-canonical string length")
			}
			body := data[i+1:]
			if int64(len(body)) < n {
				return nil, s.truncated()
			}
			s.pos = i + 1 + int(n)
			return body[:n:n], nil
		}
		if c < '0' || c > '9' {
			return nil, s.syntax("bad string length")
		}
		n = n*10 + int64(c-'0')
		if n > 1<<31-1 {
			return nil, s.syntax("string length overflow")
		}
	}
	return nil, s.truncated()
}

// readInt parses "i<digits>e" with the canonical-form rules of the
// generic decoder: optional leading '-', no leading zeros, no "-0", and
// the value must fit int64.
func (s *scanner) readInt() (int64, error) {
	data := s.data
	i := s.pos + 1 // skip 'i'
	neg := false
	if i < len(data) && data[i] == '-' {
		neg = true
		i++
	}
	digits := i
	var n uint64
	for ; i < len(data); i++ {
		c := data[i]
		if c == 'e' {
			break
		}
		if c < '0' || c > '9' {
			return 0, s.syntax("bad integer")
		}
		// Overflow guard before accumulating: the value may reach
		// exactly 2^63 (math.MinInt64 negated) but never beyond.
		d := uint64(c - '0')
		if n > (1<<63)/10 || (n == (1<<63)/10 && d > 8) {
			return 0, s.syntax("integer overflow")
		}
		n = n*10 + d
	}
	if i >= len(data) {
		return 0, s.truncated()
	}
	if i == digits {
		return 0, s.syntax("empty integer")
	}
	// Canonical form: no leading zeros ("03"), no "-0".
	if data[digits] == '0' && (i-digits > 1 || neg) {
		return 0, s.syntax("non-canonical integer")
	}
	if !neg && n > 1<<63-1 {
		return 0, s.syntax("integer overflow")
	}
	s.pos = i + 1
	if neg {
		return -int64(n), nil
	}
	return int64(n), nil
}

// skipValue validates and steps over one value of any type, enforcing
// the same grammar the generic decoder enforces.
func (s *scanner) skipValue(depth int) error {
	if depth > parseMaxDepth {
		return s.syntax("nesting too deep")
	}
	if s.pos >= len(s.data) {
		return s.truncated()
	}
	switch c := s.data[s.pos]; {
	case c == 'i':
		_, err := s.readInt()
		return err
	case c >= '0' && c <= '9':
		_, err := s.readStringRef()
		return err
	case c == 'l':
		s.pos++
		for {
			if s.pos >= len(s.data) {
				return s.truncated()
			}
			if s.data[s.pos] == 'e' {
				s.pos++
				return nil
			}
			if err := s.skipValue(depth + 1); err != nil {
				return err
			}
		}
	case c == 'd':
		s.pos++
		var last []byte
		first := true
		for {
			if s.pos >= len(s.data) {
				return s.truncated()
			}
			if s.data[s.pos] == 'e' {
				s.pos++
				return nil
			}
			key, err := s.readStringRef()
			if err != nil {
				return err
			}
			if !first && bytes.Compare(key, last) <= 0 {
				return s.syntax("dictionary keys not strictly sorted")
			}
			first, last = false, key
			if err := s.skipValue(depth + 1); err != nil {
				return err
			}
		}
	default:
		return s.syntax("unexpected byte")
	}
}

// stringOrSkip returns the value at the cursor when it is a byte
// string, or validates and skips it otherwise (nil, matching the
// generic parser's "wrong type reads as absent" behavior).
func (s *scanner) stringOrSkip(depth int) ([]byte, error) {
	if s.pos < len(s.data) && s.data[s.pos] >= '0' && s.data[s.pos] <= '9' {
		return s.readStringRef()
	}
	return nil, s.skipValue(depth)
}

// span captures the raw bytes of one value for a second, extracting
// pass after the whole message has validated.
func (s *scanner) spanOrSkip(kind byte, depth int) ([]byte, error) {
	if s.pos < len(s.data) && s.data[s.pos] == kind {
		start := s.pos
		if err := s.skipValue(depth); err != nil {
			return nil, err
		}
		return s.data[start:s.pos], nil
	}
	return nil, s.skipValue(depth)
}

// walkDict iterates the entries of an already-validated dictionary at
// the cursor. fn sees each key with the cursor on the value and must
// consume it.
func (s *scanner) walkDict(fn func(key []byte) error) error {
	s.pos++ // 'd'
	for s.data[s.pos] != 'e' {
		key, err := s.readStringRef()
		if err != nil {
			return err
		}
		if err := fn(key); err != nil {
			return err
		}
	}
	s.pos++
	return nil
}

// Parse decodes one KRPC message from wire bytes.
func Parse(data []byte) (*Message, error) {
	s := scanner{data: data}
	if len(data) == 0 || data[0] != 'd' {
		// The generic decoder rejects a non-dict top value (or accepts
		// it and fails the dictionary check); either way it is
		// malformed, but the value must still parse for the trailing
		// check to report the same class of error.
		if err := s.skipValue(0); err != nil {
			return nil, err
		}
		if s.pos != len(data) {
			return nil, fmt.Errorf("%w: trailing data after value", ErrMalformed)
		}
		return nil, fmt.Errorf("%w: not a dictionary", ErrMalformed)
	}

	// First pass: validate the whole message and note the fields of
	// interest — y, t, q as strings, the a/r/e sections as raw spans.
	var (
		tRef, yRef, qRef    []byte
		aSpan, rSpan, eSpan []byte
	)
	s.pos = 1
	var last []byte
	first := true
	for {
		if s.pos >= len(data) {
			return nil, s.truncated()
		}
		if data[s.pos] == 'e' {
			s.pos++
			break
		}
		key, err := s.readStringRef()
		if err != nil {
			return nil, err
		}
		if !first && bytes.Compare(key, last) <= 0 {
			return nil, s.syntax("dictionary keys not strictly sorted")
		}
		first, last = false, key
		switch {
		case len(key) == 1 && key[0] == 't':
			tRef, err = s.stringOrSkip(1)
		case len(key) == 1 && key[0] == 'y':
			yRef, err = s.stringOrSkip(1)
		case len(key) == 1 && key[0] == 'q':
			qRef, err = s.stringOrSkip(1)
		case len(key) == 1 && key[0] == 'a':
			aSpan, err = s.spanOrSkip('d', 1)
		case len(key) == 1 && key[0] == 'r':
			rSpan, err = s.spanOrSkip('d', 1)
		case len(key) == 1 && key[0] == 'e':
			eSpan, err = s.spanOrSkip('l', 1)
		default:
			err = s.skipValue(1)
		}
		if err != nil {
			return nil, err
		}
	}
	if s.pos != len(data) {
		return nil, fmt.Errorf("%w: trailing data after value", ErrMalformed)
	}

	if tRef == nil {
		return nil, fmt.Errorf("%w: missing transaction id", ErrMalformed)
	}
	m := &Message{TID: append([]byte(nil), tRef...)}
	switch {
	case len(yRef) == 1 && yRef[0] == 'q':
		m.Kind = Query
		if qRef == nil {
			return nil, fmt.Errorf("%w: query without method", ErrMalformed)
		}
		m.Method = internMethod(qRef)
		if aSpan == nil {
			return nil, fmt.Errorf("%w: query without args", ErrMalformed)
		}
		if err := parseArgs(aSpan, m); err != nil {
			return nil, err
		}
	case len(yRef) == 1 && yRef[0] == 'r':
		m.Kind = Response
		if rSpan == nil {
			return nil, fmt.Errorf("%w: response without body", ErrMalformed)
		}
		if err := parseResponse(rSpan, m); err != nil {
			return nil, err
		}
	case len(yRef) == 1 && yRef[0] == 'e':
		m.Kind = Error
		if err := parseError(eSpan, m); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown message type %q", ErrMalformed, string(yRef))
	}
	return m, nil
}

// internMethod maps the method bytes onto the package constants so the
// common methods cost no allocation.
func internMethod(b []byte) string {
	switch {
	case bytes.Equal(b, []byte(MethodPing)):
		return MethodPing
	case bytes.Equal(b, []byte(MethodFindNode)):
		return MethodFindNode
	case bytes.Equal(b, []byte(MethodGetPeers)):
		return MethodGetPeers
	case bytes.Equal(b, []byte(MethodAnnouncePeer)):
		return MethodAnnouncePeer
	default:
		return string(b)
	}
}

// parseArgs extracts a query's argument dictionary from its validated
// span.
func parseArgs(span []byte, m *Message) error {
	s := scanner{data: span}
	var idRef, targetRef, hashRef, tokenRef []byte
	var port, implied int64
	havePort := false
	err := s.walkDict(func(key []byte) error {
		var err error
		switch string(key) { // does not allocate: compiler-recognized pattern
		case "id":
			idRef, err = s.stringOrSkip(2)
		case "target":
			targetRef, err = s.stringOrSkip(2)
		case "info_hash":
			hashRef, err = s.stringOrSkip(2)
		case "token":
			tokenRef, err = s.stringOrSkip(2)
		case "port":
			if s.data[s.pos] == 'i' {
				port, err = s.readInt()
				havePort = true
			} else {
				err = s.skipValue(2)
			}
		case "implied_port":
			if s.data[s.pos] == 'i' {
				implied, err = s.readInt()
			} else {
				err = s.skipValue(2)
			}
		default:
			err = s.skipValue(2)
		}
		return err
	})
	if err != nil {
		return err
	}
	if idRef == nil {
		return fmt.Errorf("%w: query without id", ErrMalformed)
	}
	var ok bool
	if m.ID, ok = NodeIDFromBytes(idRef); !ok {
		return fmt.Errorf("%w: bad node id length", ErrMalformed)
	}
	switch m.Method {
	case MethodFindNode:
		if targetRef == nil {
			return fmt.Errorf("%w: find_node without target", ErrMalformed)
		}
		if m.Target, ok = NodeIDFromBytes(targetRef); !ok {
			return fmt.Errorf("%w: bad target length", ErrMalformed)
		}
	case MethodGetPeers, MethodAnnouncePeer:
		if hashRef == nil {
			return fmt.Errorf("%w: %s without info_hash", ErrMalformed, m.Method)
		}
		if m.Target, ok = NodeIDFromBytes(hashRef); !ok {
			return fmt.Errorf("%w: bad info_hash length", ErrMalformed)
		}
		if m.Method == MethodAnnouncePeer {
			if !havePort || port < 0 || port > 65535 {
				return fmt.Errorf("%w: bad announce port", ErrMalformed)
			}
			m.Port = uint16(port)
			m.ImpliedPort = implied != 0
			if tokenRef == nil {
				return fmt.Errorf("%w: announce without token", ErrMalformed)
			}
			m.Token = append([]byte(nil), tokenRef...)
		}
	}
	return nil
}

// parseResponse extracts a response body from its validated span.
func parseResponse(span []byte, m *Message) error {
	s := scanner{data: span}
	var idRef, nodesRef, tokenRef, valuesSpan []byte
	err := s.walkDict(func(key []byte) error {
		var err error
		switch string(key) {
		case "id":
			idRef, err = s.stringOrSkip(2)
		case "nodes":
			nodesRef, err = s.stringOrSkip(2)
		case "token":
			tokenRef, err = s.stringOrSkip(2)
		case "values":
			valuesSpan, err = s.spanOrSkip('l', 2)
		default:
			err = s.skipValue(2)
		}
		return err
	})
	if err != nil {
		return err
	}
	if idRef == nil {
		return fmt.Errorf("%w: response without id", ErrMalformed)
	}
	var ok bool
	if m.ID, ok = NodeIDFromBytes(idRef); !ok {
		return fmt.Errorf("%w: bad node id length", ErrMalformed)
	}
	if nodesRef != nil {
		nodes, err := DecodeCompactNodes(nodesRef)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		m.Nodes = nodes
	}
	if tokenRef != nil {
		m.Token = append([]byte(nil), tokenRef...)
	}
	if valuesSpan != nil {
		vs := scanner{data: valuesSpan}
		vs.pos = 1 // 'l'
		for vs.data[vs.pos] != 'e' {
			if c := vs.data[vs.pos]; c < '0' || c > '9' {
				return fmt.Errorf("%w: non-string peer value", ErrMalformed)
			}
			raw, err := vs.readStringRef()
			if err != nil {
				return err
			}
			ep, ok := DecodeCompactPeer(raw)
			if !ok {
				return fmt.Errorf("%w: bad compact peer length %d", ErrMalformed, len(raw))
			}
			m.Values = append(m.Values, ep)
		}
	}
	return nil
}

// parseError extracts an error body ([code, message, ...]) from its
// validated span.
func parseError(span []byte, m *Message) error {
	if span == nil {
		return fmt.Errorf("%w: bad error body", ErrMalformed)
	}
	s := scanner{data: span}
	s.pos = 1 // 'l'
	if s.data[s.pos] == 'e' {
		return fmt.Errorf("%w: bad error body", ErrMalformed)
	}
	if s.data[s.pos] != 'i' {
		return fmt.Errorf("%w: bad error code", ErrMalformed)
	}
	code, err := s.readInt()
	if err != nil {
		return err
	}
	if s.data[s.pos] == 'e' {
		return fmt.Errorf("%w: bad error body", ErrMalformed)
	}
	if c := s.data[s.pos]; c < '0' || c > '9' {
		return fmt.Errorf("%w: bad error string", ErrMalformed)
	}
	msg, err := s.readStringRef()
	if err != nil {
		return err
	}
	m.Code, m.Msg = code, string(msg)
	return nil
}
