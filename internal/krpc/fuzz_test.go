package krpc

import (
	"testing"

	"cgn/internal/netaddr"
)

// FuzzParse feeds the KRPC parser arbitrary bytes: no panics, and every
// accepted message must re-encode into a parseable form.
func FuzzParse(f *testing.F) {
	var id NodeID
	f.Add(EncodePing([]byte("aa"), id))
	f.Add(EncodeFindNode([]byte("ab"), id, id))
	f.Add(EncodePingResponse([]byte("ac"), id))
	f.Add(EncodeFindNodeResponse([]byte("ad"), id, []NodeInfo{
		{ID: id, EP: netaddr.MustParseEndpoint("1.2.3.4:6881")},
	}))
	f.Add(EncodeError([]byte("ae"), 203, "Protocol Error"))
	f.Add([]byte("d1:t2:aa1:y1:qe"))
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		// Accepted messages can be re-encoded through the typed builders.
		var wire []byte
		switch m.Kind {
		case Query:
			switch m.Method {
			case MethodPing:
				wire = EncodePing(m.TID, m.ID)
			case MethodFindNode:
				wire = EncodeFindNode(m.TID, m.ID, m.Target)
			default:
				return // foreign methods parse but have no builder
			}
		case Response:
			if m.Nodes != nil {
				wire = EncodeFindNodeResponse(m.TID, m.ID, m.Nodes)
			} else {
				wire = EncodePingResponse(m.TID, m.ID)
			}
		case Error:
			wire = EncodeError(m.TID, m.Code, m.Msg)
		}
		if _, err := Parse(wire); err != nil {
			t.Fatalf("re-encoded message unparseable: %v", err)
		}
	})
}

// FuzzDecodeCompactNodes checks the compact node codec against arbitrary
// input.
func FuzzDecodeCompactNodes(f *testing.F) {
	f.Add(make([]byte, 26))
	f.Add(make([]byte, 52))
	f.Add(make([]byte, 25))
	f.Fuzz(func(t *testing.T, data []byte) {
		nodes, err := DecodeCompactNodes(data)
		if err != nil {
			return
		}
		enc := EncodeCompactNodes(nodes)
		if len(enc) != len(data) {
			t.Fatalf("length changed: %d -> %d", len(data), len(enc))
		}
		for i := range enc {
			if enc[i] != data[i] {
				t.Fatal("compact round trip not identity")
			}
		}
	})
}
