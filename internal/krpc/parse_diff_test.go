package krpc

import (
	"math/rand"
	"reflect"
	"testing"

	"cgn/internal/netaddr"
)

// corpusMessages builds one wire message of every kind the encoders can
// produce.
func corpusMessages() [][]byte {
	rng := rand.New(rand.NewSource(42))
	var id, target NodeID
	rng.Read(id[:])
	rng.Read(target[:])
	nodes := make([]NodeInfo, 8)
	for i := range nodes {
		rng.Read(nodes[i].ID[:])
		nodes[i].EP = netaddr.EndpointOf(netaddr.Addr(rng.Uint32()), uint16(1024+i))
	}
	return [][]byte{
		EncodePing([]byte("aa"), id),
		EncodePingResponse([]byte("aa"), id),
		EncodeFindNode([]byte("ab"), id, target),
		EncodeFindNodeResponse([]byte("ab"), id, nodes),
		EncodeGetPeers([]byte("ac"), id, target),
		EncodeGetPeersResponse([]byte("ac"), id, []byte("tok"), nil, nodes),
		EncodeGetPeersResponse([]byte("ac"), id, []byte("tok"),
			[]netaddr.Endpoint{netaddr.MustParseEndpoint("1.2.3.4:80"), netaddr.MustParseEndpoint("10.0.0.9:6881")}, nil),
		EncodeAnnouncePeer([]byte("ad"), id, target, 6881, true, []byte("tok")),
		EncodeError([]byte("ae"), 201, "Generic Error"),
		// Hand-built edge cases.
		[]byte("d1:t2:aa1:y1:qe"),                      // query without method
		[]byte("d1:ad2:id3:xyze1:q4:ping1:t0:1:y1:qe"), // bad id length
		[]byte("d1:t2:aa1:y1:re"),                      // response without body
		[]byte("d1:eli201e5:oops!e1:t2:aa1:y1:ee"),     // error message
		[]byte("d1:eli201ee1:t2:aa1:y1:ee"),            // short error body
		[]byte("d1:t2:aa1:y1:xe"),                      // unknown type
		[]byte("d1:y1:qe"),                             // missing tid
		[]byte("de"),                                   // empty dict
		[]byte("le"),                                   // not a dict
		[]byte("i42e"),                                 // not a dict
		[]byte(""),                                     // empty
		[]byte("d1:t2:aa1:y1:qeX"),                     // trailing garbage
		[]byte("d1:ti5e1:y1:qe"),                       // tid wrong type
		[]byte("d1:al1:xe1:q4:ping1:t2:aa1:y1:qe"),     // args wrong type
		[]byte("d1:rd2:id20:aaaaaaaaaaaaaaaaaaaa6:valuesl6:abcdefi5eee1:t2:aa1:y1:re"), // non-string peer value
	}
}

// TestParseMatchesGenericCorpus pins the direct parser to the generic
// reference over every encoder output and the edge-case corpus.
func TestParseMatchesGenericCorpus(t *testing.T) {
	for i, wire := range corpusMessages() {
		got, gotErr := Parse(wire)
		want, wantErr := parseGeneric(wire)
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("case %d (%q): accept/reject mismatch: direct err=%v, generic err=%v",
				i, wire, gotErr, wantErr)
			continue
		}
		if gotErr == nil && !reflect.DeepEqual(got, want) {
			t.Errorf("case %d (%q): messages differ:\n direct:  %+v\n generic: %+v", i, wire, got, want)
		}
	}
}

// FuzzParseMatchesGeneric fuzzes the equivalence: both parsers must make
// the same accept/reject decision and produce identical Messages.
func FuzzParseMatchesGeneric(f *testing.F) {
	for _, wire := range corpusMessages() {
		f.Add(wire)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		got, gotErr := Parse(data)
		want, wantErr := parseGeneric(data)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("accept/reject mismatch on %q: direct err=%v, generic err=%v", data, gotErr, wantErr)
		}
		if gotErr == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("messages differ on %q:\n direct:  %+v\n generic: %+v", data, got, want)
		}
	})
}
