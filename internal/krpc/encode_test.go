package krpc

import (
	"bytes"
	"testing"

	"cgn/internal/bencode"
	"cgn/internal/netaddr"
)

// TestEncodersMatchGenericBencode pins the hand-rolled encoders to the
// generic map-based bencoding they replaced: for every message shape the
// direct byte construction must be identical to building the equivalent
// map[string]any and encoding it, which is how the wire format defines
// canonical (sorted-key) form.
func TestEncodersMatchGenericBencode(t *testing.T) {
	tid := []byte("ab")
	var self, target NodeID
	for i := range self {
		self[i] = byte(i)
		target[i] = byte(0xff - i)
	}
	nodes := []NodeInfo{
		{ID: self, EP: netaddr.MustParseEndpoint("1.2.3.4:6881")},
		{ID: target, EP: netaddr.MustParseEndpoint("10.0.0.9:51413")},
	}
	peers := []netaddr.Endpoint{
		netaddr.MustParseEndpoint("192.0.2.7:1024"),
		netaddr.MustParseEndpoint("198.51.100.3:65535"),
	}
	token := []byte("tok")

	generic := func(v any) []byte {
		b, err := bencode.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	peerVals := func() []any {
		vals := make([]any, 0, len(peers))
		for _, v := range EncodeCompactPeers(peers) {
			vals = append(vals, v)
		}
		return vals
	}

	cases := []struct {
		name string
		fast []byte
		want []byte
	}{
		{"ping", EncodePing(tid, self), generic(map[string]any{
			"t": tid, "y": "q", "q": MethodPing,
			"a": map[string]any{"id": self[:]},
		})},
		{"find_node", EncodeFindNode(tid, self, target), generic(map[string]any{
			"t": tid, "y": "q", "q": MethodFindNode,
			"a": map[string]any{"id": self[:], "target": target[:]},
		})},
		{"ping_response", EncodePingResponse(tid, self), generic(map[string]any{
			"t": tid, "y": "r",
			"r": map[string]any{"id": self[:]},
		})},
		{"find_node_response", EncodeFindNodeResponse(tid, self, nodes), generic(map[string]any{
			"t": tid, "y": "r",
			"r": map[string]any{"id": self[:], "nodes": EncodeCompactNodes(nodes)},
		})},
		{"find_node_response_empty", EncodeFindNodeResponse(tid, self, nil), generic(map[string]any{
			"t": tid, "y": "r",
			"r": map[string]any{"id": self[:], "nodes": []byte{}},
		})},
		{"get_peers", EncodeGetPeers(tid, self, target), generic(map[string]any{
			"t": tid, "y": "q", "q": MethodGetPeers,
			"a": map[string]any{"id": self[:], "info_hash": target[:]},
		})},
		{"get_peers_response_values", EncodeGetPeersResponse(tid, self, token, peers, nil), generic(map[string]any{
			"t": tid, "y": "r",
			"r": map[string]any{"id": self[:], "token": token, "values": peerVals()},
		})},
		{"get_peers_response_nodes", EncodeGetPeersResponse(tid, self, token, nil, nodes), generic(map[string]any{
			"t": tid, "y": "r",
			"r": map[string]any{"id": self[:], "token": token, "nodes": EncodeCompactNodes(nodes)},
		})},
		{"announce_peer", EncodeAnnouncePeer(tid, self, target, 6881, true, token), generic(map[string]any{
			"t": tid, "y": "q", "q": MethodAnnouncePeer,
			"a": map[string]any{
				"id": self[:], "info_hash": target[:],
				"port": int64(6881), "implied_port": int64(1), "token": token,
			},
		})},
		{"announce_peer_no_implied", EncodeAnnouncePeer(tid, self, target, 80, false, token), generic(map[string]any{
			"t": tid, "y": "q", "q": MethodAnnouncePeer,
			"a": map[string]any{
				"id": self[:], "info_hash": target[:],
				"port": int64(80), "implied_port": int64(0), "token": token,
			},
		})},
		{"error", EncodeError(tid, 203, "Protocol Error"), generic(map[string]any{
			"t": tid, "y": "e",
			"e": []any{int64(203), "Protocol Error"},
		})},
	}
	for _, c := range cases {
		if !bytes.Equal(c.fast, c.want) {
			t.Errorf("%s:\n fast    %q\n generic %q", c.name, c.fast, c.want)
		}
		if _, err := Parse(c.fast); err != nil {
			t.Errorf("%s: fast encoding does not parse: %v", c.name, err)
		}
	}
}
