package krpc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"cgn/internal/netaddr"
)

func id(b byte) NodeID {
	var out NodeID
	for i := range out {
		out[i] = b
	}
	return out
}

func randomID(rng *rand.Rand) NodeID {
	var out NodeID
	rng.Read(out[:])
	return out
}

func TestNodeIDFromBytes(t *testing.T) {
	if _, ok := NodeIDFromBytes(make([]byte, 19)); ok {
		t.Error("19 bytes accepted")
	}
	got, ok := NodeIDFromBytes(bytes.Repeat([]byte{0xab}, 20))
	if !ok || got != id(0xab) {
		t.Errorf("NodeIDFromBytes = %v, %v", got, ok)
	}
}

func TestXORProperties(t *testing.T) {
	f := func(a, b [20]byte) bool {
		x, y := NodeID(a), NodeID(b)
		d := x.XOR(y)
		// Symmetric, and self-distance is zero.
		return d == y.XOR(x) && x.XOR(x) == NodeID{} && d.XOR(y) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketIndex(t *testing.T) {
	a := NodeID{}
	if got := a.BucketIndex(a); got != -1 {
		t.Errorf("self bucket = %d, want -1", got)
	}
	var b NodeID
	b[19] = 1 // lowest bit set -> bucket 0
	if got := a.BucketIndex(b); got != 0 {
		t.Errorf("lowest-bit bucket = %d, want 0", got)
	}
	var c NodeID
	c[0] = 0x80 // highest bit -> bucket 159
	if got := a.BucketIndex(c); got != 159 {
		t.Errorf("highest-bit bucket = %d, want 159", got)
	}
}

func TestCompactNodesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(9)
		in := make([]NodeInfo, n)
		for i := range in {
			in[i] = NodeInfo{
				ID: randomID(rng),
				EP: netaddr.EndpointOf(netaddr.Addr(rng.Uint32()), uint16(rng.Intn(65536))),
			}
		}
		enc := EncodeCompactNodes(in)
		if len(enc) != n*26 {
			t.Fatalf("compact length = %d, want %d", len(enc), n*26)
		}
		out, err := DecodeCompactNodes(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != n {
			t.Fatalf("decoded %d nodes, want %d", len(out), n)
		}
		for i := range in {
			if in[i] != out[i] {
				t.Fatalf("node %d mismatch: %v vs %v", i, in[i], out[i])
			}
		}
	}
}

func TestCompactNodesBadLength(t *testing.T) {
	if _, err := DecodeCompactNodes(make([]byte, 27)); err == nil {
		t.Error("length 27 accepted")
	}
}

func TestPingRoundTrip(t *testing.T) {
	self := id(0x11)
	wire := EncodePing([]byte("aa"), self)
	m, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != Query || m.Method != MethodPing || m.ID != self || string(m.TID) != "aa" {
		t.Errorf("parsed = %+v", m)
	}
}

func TestFindNodeRoundTrip(t *testing.T) {
	self, target := id(0x11), id(0x22)
	m, err := Parse(EncodeFindNode([]byte("xy"), self, target))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != Query || m.Method != MethodFindNode || m.ID != self || m.Target != target {
		t.Errorf("parsed = %+v", m)
	}
}

func TestPingResponseRoundTrip(t *testing.T) {
	m, err := Parse(EncodePingResponse([]byte("aa"), id(0x33)))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != Response || m.ID != id(0x33) || len(m.Nodes) != 0 {
		t.Errorf("parsed = %+v", m)
	}
}

func TestFindNodeResponseRoundTrip(t *testing.T) {
	nodes := []NodeInfo{
		{ID: id(0x44), EP: netaddr.MustParseEndpoint("10.0.0.1:6881")},
		{ID: id(0x55), EP: netaddr.MustParseEndpoint("100.64.3.9:51413")},
	}
	m, err := Parse(EncodeFindNodeResponse([]byte("zz"), id(0x33), nodes))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != Response || len(m.Nodes) != 2 {
		t.Fatalf("parsed = %+v", m)
	}
	for i := range nodes {
		if m.Nodes[i] != nodes[i] {
			t.Errorf("node %d = %v, want %v", i, m.Nodes[i], nodes[i])
		}
	}
}

func TestErrorRoundTrip(t *testing.T) {
	m, err := Parse(EncodeError([]byte("e1"), 203, "Protocol Error"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != Error || m.Code != 203 || m.Msg != "Protocol Error" {
		t.Errorf("parsed = %+v", m)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		[]byte("garbage"),
		[]byte("i42e"),                      // not a dict
		[]byte("d1:y1:qe"),                  // no tid
		[]byte("d1:t2:aa1:y1:qe"),           // query without method
		[]byte("d1:q4:ping1:t2:aa1:y1:qe"),  // query without args
		[]byte("d1:t2:aa1:y1:xe"),           // unknown type
		[]byte("d1:e2:ab1:t2:aa1:y1:ee"),    // error body not a list
		[]byte("d1:eli201ee1:t2:aa1:y1:ee"), // error list too short
	}
	for _, b := range bad {
		if _, err := Parse(b); !errors.Is(err, ErrMalformed) {
			t.Errorf("Parse(%q) error = %v, want ErrMalformed", b, err)
		}
	}
}

func TestParseRejectsShortIDs(t *testing.T) {
	// Hand-build a ping with a 5-byte id.
	wire := []byte("d1:ad2:id5:aaaaae1:q4:ping1:t2:aa1:y1:qe")
	if _, err := Parse(wire); !errors.Is(err, ErrMalformed) {
		t.Errorf("short id error = %v", err)
	}
	// find_node without target.
	wire = EncodePing([]byte("aa"), id(1))
	wire = bytes.Replace(wire, []byte("4:ping"), []byte("9:find_node"), 1)
	if _, err := Parse(wire); !errors.Is(err, ErrMalformed) {
		t.Errorf("find_node without target error = %v", err)
	}
}

func TestParseResponseWithBadNodes(t *testing.T) {
	// nodes blob of length 25 (not a multiple of 26).
	wire := []byte("d1:rd2:id20:aaaaaaaaaaaaaaaaaaaa5:nodes25:" +
		"bbbbbbbbbbbbbbbbbbbbbbbbb" + "e1:t2:aa1:y1:re")
	if _, err := Parse(wire); !errors.Is(err, ErrMalformed) {
		t.Errorf("bad nodes error = %v", err)
	}
}

func TestGetPeersRoundTrip(t *testing.T) {
	m, err := Parse(EncodeGetPeers([]byte("gp"), id(0x11), id(0x22)))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != Query || m.Method != MethodGetPeers || m.Target != id(0x22) {
		t.Errorf("parsed = %+v", m)
	}
}

func TestGetPeersResponseWithValues(t *testing.T) {
	peers := []netaddr.Endpoint{
		netaddr.MustParseEndpoint("10.0.0.5:6881"),
		netaddr.MustParseEndpoint("198.51.100.9:51413"),
	}
	wire := EncodeGetPeersResponse([]byte("gp"), id(0x33), []byte("tok"), peers, nil)
	m, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != Response || string(m.Token) != "tok" {
		t.Fatalf("parsed = %+v", m)
	}
	if len(m.Values) != 2 || m.Values[0] != peers[0] || m.Values[1] != peers[1] {
		t.Errorf("values = %v", m.Values)
	}
	if len(m.Nodes) != 0 {
		t.Error("values response must not carry nodes")
	}
}

func TestGetPeersResponseWithNodes(t *testing.T) {
	nodes := []NodeInfo{{ID: id(0x44), EP: netaddr.MustParseEndpoint("9.9.9.9:6881")}}
	m, err := Parse(EncodeGetPeersResponse([]byte("gp"), id(0x33), []byte("t2"), nil, nodes))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Nodes) != 1 || m.Nodes[0] != nodes[0] || len(m.Values) != 0 {
		t.Errorf("parsed = %+v", m)
	}
}

func TestAnnouncePeerRoundTrip(t *testing.T) {
	wire := EncodeAnnouncePeer([]byte("an"), id(0x11), id(0x22), 6881, true, []byte("tok"))
	m, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.Method != MethodAnnouncePeer || m.Target != id(0x22) ||
		m.Port != 6881 || !m.ImpliedPort || string(m.Token) != "tok" {
		t.Errorf("parsed = %+v", m)
	}
	// Explicit-port variant.
	m, err = Parse(EncodeAnnouncePeer([]byte("an"), id(0x11), id(0x22), 9999, false, []byte("t")))
	if err != nil || m.ImpliedPort || m.Port != 9999 {
		t.Errorf("explicit-port parse = %+v, %v", m, err)
	}
}

func TestAnnounceRejectsMissingToken(t *testing.T) {
	// Hand-build an announce without a token.
	self := id(1)
	ih := id(2)
	wire := []byte("d1:ad2:id20:" + string(self[:]) + "9:info_hash20:" + string(ih[:]) +
		"4:porti6881ee1:q13:announce_peer1:t2:aa1:y1:qe")
	if _, err := Parse(wire); !errors.Is(err, ErrMalformed) {
		t.Errorf("tokenless announce error = %v", err)
	}
}

func TestCompactPeerRoundTrip(t *testing.T) {
	in := netaddr.MustParseEndpoint("100.64.3.9:51413")
	enc := EncodeCompactPeers([]netaddr.Endpoint{in})
	if len(enc) != 1 || len(enc[0]) != 6 {
		t.Fatalf("encoded = %v", enc)
	}
	out, ok := DecodeCompactPeer(enc[0])
	if !ok || out != in {
		t.Errorf("round trip = %v, %v", out, ok)
	}
	if _, ok := DecodeCompactPeer(enc[0][:5]); ok {
		t.Error("short compact peer accepted")
	}
}

func TestSortByXORDistance(t *testing.T) {
	target := id(0x00)
	near := NodeID{}
	near[19] = 1
	far := NodeID{}
	far[0] = 0xff
	if !near.XOR(target).Less(far.XOR(target)) {
		t.Error("near node should sort before far node")
	}
}
