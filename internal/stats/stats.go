// Package stats provides the small statistical toolkit the evaluation
// needs: summaries (quantiles, boxplots), histograms, frequency counts and
// mode extraction. The paper reports distributions as histograms (Fig 8a),
// boxplots (Fig 12), per-category shares (Figs 1, 6, 7, 9, 13) and scatter
// plots (Figs 4, 5); package report renders those from these primitives.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N                   int
	Min, Max            float64
	Mean                float64
	P25, Median, P75    float64
	P10, P90            float64
	Mode                float64
	ModeCount           int
	StdDev              float64
	lowWhisk, highWhisk float64
}

// Summarize computes order statistics of xs. It returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	var sq float64
	for _, v := range s {
		d := v - mean
		sq += d * d
	}
	mode, modeCount := Mode(s)
	sm := Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   mean,
		P10:    Quantile(s, 0.10),
		P25:    Quantile(s, 0.25),
		Median: Quantile(s, 0.50),
		P75:    Quantile(s, 0.75),
		P90:    Quantile(s, 0.90),
		Mode:   mode, ModeCount: modeCount,
		StdDev: math.Sqrt(sq / float64(len(s))),
	}
	iqr := sm.P75 - sm.P25
	sm.lowWhisk = math.Max(sm.Min, sm.P25-1.5*iqr)
	sm.highWhisk = math.Min(sm.Max, sm.P75+1.5*iqr)
	return sm
}

// Whiskers returns Tukey boxplot whisker positions (1.5 IQR, clamped to the
// observed range).
func (s Summary) Whiskers() (low, high float64) { return s.lowWhisk, s.highWhisk }

// Quantile returns the q-quantile (0..1) of an ascending-sorted sample,
// with linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mode returns the most frequent value of a sorted sample and its count.
// Ties resolve to the smallest value, keeping reports deterministic.
func Mode(sorted []float64) (float64, int) {
	if len(sorted) == 0 {
		return math.NaN(), 0
	}
	best, bestN := sorted[0], 1
	cur, curN := sorted[0], 1
	for _, v := range sorted[1:] {
		if v == cur {
			curN++
		} else {
			cur, curN = v, 1
		}
		if curN > bestN {
			best, bestN = cur, curN
		}
	}
	return best, bestN
}

// MeanCI is a sample mean with its spread and a normal-approximation 95%
// confidence interval — the cross-replicate aggregate the campaign
// engine reports, where each replicate world contributes one observation.
type MeanCI struct {
	N    int
	Mean float64
	// StdDev is the sample (Bessel-corrected) standard deviation; zero
	// for fewer than two observations.
	StdDev float64
	// Half is the 95% CI half-width, 1.96·StdDev/√N; the interval is
	// Mean ± Half. Zero for fewer than two observations.
	Half float64
}

// MeanConfidence computes the mean, sample standard deviation and 95%
// confidence half-width of xs. It returns a zero MeanCI for an empty
// sample.
func MeanConfidence(xs []float64) MeanCI {
	if len(xs) == 0 {
		return MeanCI{}
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	m := MeanCI{N: len(xs), Mean: sum / float64(len(xs))}
	if len(xs) < 2 {
		return m
	}
	var sq float64
	for _, v := range xs {
		d := v - m.Mean
		sq += d * d
	}
	m.StdDev = math.Sqrt(sq / float64(len(xs)-1))
	m.Half = 1.96 * m.StdDev / math.Sqrt(float64(len(xs)))
	return m
}

// String renders "mean ± half" with two decimals.
func (m MeanCI) String() string {
	return fmt.Sprintf("%.2f ± %.2f", m.Mean, m.Half)
}

// Histogram is a fixed-width binned histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
	Total  int
}

// NewHistogram creates a histogram with n equal bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) with %d bins", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.Total++
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		i := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i >= len(h.Bins) { // guard against float edge
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + w*(float64(i)+0.5)
}

// Normalized returns the bins scaled so the maximum is 1; used for the
// "normalized frequency" axis of Fig 8(a). A histogram with no in-range
// samples yields all zeros.
func (h *Histogram) Normalized() []float64 {
	max := 0
	for _, b := range h.Bins {
		if b > max {
			max = b
		}
	}
	out := make([]float64, len(h.Bins))
	if max == 0 {
		return out
	}
	for i, b := range h.Bins {
		out[i] = float64(b) / float64(max)
	}
	return out
}

// Freq counts occurrences of comparable values.
type Freq[K comparable] map[K]int

// Add increments the count of k.
func (f Freq[K]) Add(k K) { f[k]++ }

// AddN increments the count of k by n.
func (f Freq[K]) AddN(k K, n int) { f[k] += n }

// Total returns the sum of all counts.
func (f Freq[K]) Total() int {
	n := 0
	for _, c := range f {
		n += c
	}
	return n
}

// Share returns the fraction of the total attributed to k (0 if empty).
func (f Freq[K]) Share(k K) float64 {
	t := f.Total()
	if t == 0 {
		return 0
	}
	return float64(f[k]) / float64(t)
}

// Pair is a key with its count, for sorted enumeration of a Freq.
type Pair[K comparable] struct {
	Key   K
	Count int
}

// SortedByCount returns entries ordered by descending count; ties break by
// the render order of the key to keep output deterministic.
func (f Freq[K]) SortedByCount() []Pair[K] {
	out := make([]Pair[K], 0, len(f))
	for k, c := range f {
		out = append(out, Pair[K]{k, c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return fmt.Sprint(out[i].Key) < fmt.Sprint(out[j].Key)
	})
	return out
}

// TopN returns the n most frequent keys.
func (f Freq[K]) TopN(n int) []K {
	pairs := f.SortedByCount()
	if n > len(pairs) {
		n = len(pairs)
	}
	out := make([]K, n)
	for i := 0; i < n; i++ {
		out[i] = pairs[i].Key
	}
	return out
}

// Bar renders a crude ASCII bar of width proportional to frac (0..1) out of
// total width w; report uses it for distribution figures.
func Bar(frac float64, w int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(math.Round(frac * float64(w)))
	return strings.Repeat("#", n) + strings.Repeat(".", w-n)
}

// Percent formats a fraction as "12.3%".
func Percent(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}
