package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.P25 != 2 || s.P75 != 4 {
		t.Errorf("quartiles = %v, %v", s.P25, s.P75)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("Summarize mutated its input")
	}
}

func TestMode(t *testing.T) {
	xs := []float64{1, 2, 2, 2, 3, 3}
	sort.Float64s(xs)
	m, n := Mode(xs)
	if m != 2 || n != 3 {
		t.Errorf("Mode = %v x%d, want 2 x3", m, n)
	}
	// Tie resolves to smallest value.
	ys := []float64{5, 5, 7, 7}
	m, n = Mode(ys)
	if m != 5 || n != 2 {
		t.Errorf("tie Mode = %v x%d, want 5 x2", m, n)
	}
	if m, n := Mode(nil); !math.IsNaN(m) || n != 0 {
		t.Error("Mode of empty sample should be NaN, 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20},
	}
	for _, c := range cases {
		got := Quantile(xs, c.q)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-sample quantile = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("quantile of empty sample should be NaN")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, b := Quantile(xs, q1), Quantile(xs, q2)
		return a <= b && a >= xs[0] && b <= xs[len(xs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWhiskersWithinRange(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 100})
	lo, hi := s.Whiskers()
	if lo < s.Min || hi > s.Max || lo > hi {
		t.Errorf("whiskers [%v, %v] outside [%v, %v]", lo, hi, s.Min, s.Max)
	}
	// The outlier at 100 must be beyond the high whisker.
	if hi >= 100 {
		t.Errorf("high whisker %v should exclude outlier", hi)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for _, v := range []float64{5, 15, 15, 99.9, -1, 100, 250} {
		h.Add(v)
	}
	if h.Bins[0] != 1 || h.Bins[1] != 2 || h.Bins[9] != 1 {
		t.Errorf("Bins = %v", h.Bins)
	}
	if h.Under != 1 || h.Over != 2 || h.Total != 7 {
		t.Errorf("Under=%d Over=%d Total=%d", h.Under, h.Over, h.Total)
	}
	if c := h.BinCenter(0); c != 5 {
		t.Errorf("BinCenter(0) = %v", c)
	}
}

func TestHistogramNormalized(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Add(1)
	h.Add(1)
	h.Add(6)
	n := h.Normalized()
	if n[0] != 1 || n[1] != 0.5 {
		t.Errorf("Normalized = %v", n)
	}
	empty := NewHistogram(0, 10, 2).Normalized()
	if empty[0] != 0 || empty[1] != 0 {
		t.Error("empty histogram should normalize to zeros")
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for hi <= lo")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestFreq(t *testing.T) {
	f := Freq[string]{}
	f.Add("a")
	f.Add("a")
	f.Add("b")
	f.AddN("c", 5)
	if f.Total() != 8 {
		t.Errorf("Total = %d", f.Total())
	}
	if f.Share("a") != 0.25 {
		t.Errorf("Share(a) = %v", f.Share("a"))
	}
	pairs := f.SortedByCount()
	if pairs[0].Key != "c" || pairs[0].Count != 5 {
		t.Errorf("SortedByCount[0] = %+v", pairs[0])
	}
	top := f.TopN(2)
	if len(top) != 2 || top[0] != "c" || top[1] != "a" {
		t.Errorf("TopN = %v", top)
	}
	if got := f.TopN(99); len(got) != 3 {
		t.Errorf("TopN clamped = %v", got)
	}
}

func TestFreqShareEmpty(t *testing.T) {
	f := Freq[int]{}
	if f.Share(1) != 0 {
		t.Error("Share on empty Freq should be 0")
	}
}

func TestFreqSortDeterministicTies(t *testing.T) {
	f := Freq[string]{"x": 2, "y": 2, "z": 2}
	p := f.SortedByCount()
	if p[0].Key != "x" || p[1].Key != "y" || p[2].Key != "z" {
		t.Errorf("tie order = %v", p)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "#####....." {
		t.Errorf("Bar(0.5,10) = %q", got)
	}
	if got := Bar(-1, 4); got != "...." {
		t.Errorf("Bar(-1) = %q", got)
	}
	if got := Bar(2, 4); got != "####" {
		t.Errorf("Bar(2) = %q", got)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.173); got != "17.3%" {
		t.Errorf("Percent = %q", got)
	}
}

func TestMeanConfidence(t *testing.T) {
	// Hand-computed: xs = {1,2,3,4} has mean 2.5, sample stddev
	// sqrt(5/3) ≈ 1.29099, and 95% half-width 1.96·sd/√4 ≈ 1.26517.
	m := MeanConfidence([]float64{1, 2, 3, 4})
	if m.N != 4 || math.Abs(m.Mean-2.5) > 1e-9 {
		t.Errorf("mean = %v (n=%d), want 2.5 (n=4)", m.Mean, m.N)
	}
	wantSD := math.Sqrt(5.0 / 3.0)
	if math.Abs(m.StdDev-wantSD) > 1e-9 {
		t.Errorf("stddev = %v, want %v", m.StdDev, wantSD)
	}
	if math.Abs(m.Half-1.96*wantSD/2) > 1e-9 {
		t.Errorf("half = %v, want %v", m.Half, 1.96*wantSD/2)
	}

	if m := MeanConfidence(nil); m.N != 0 || m.Mean != 0 || m.Half != 0 {
		t.Errorf("empty sample = %+v, want zero", m)
	}
	if m := MeanConfidence([]float64{7}); m.N != 1 || m.Mean != 7 || m.StdDev != 0 || m.Half != 0 {
		t.Errorf("single sample = %+v, want mean 7 with zero spread", m)
	}
	if got := MeanConfidence([]float64{1, 2}).String(); got != "1.50 ± 0.98" {
		t.Errorf("String() = %q, want \"1.50 ± 0.98\"", got)
	}
}
