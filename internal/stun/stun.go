// Package stun implements the subset of STUN (RFC 5389 wire format, with
// the RFC 3489 CHANGE-REQUEST/CHANGED-ADDRESS extensions) that the paper's
// Netalyzr STUN test uses (§6.3): binding requests against a server with
// two IP addresses and two ports, and the classic mapping-type
// classification — full cone, address restricted, port-address restricted,
// symmetric (§3 "Mapping Types", Figure 13).
//
// The client is transport-agnostic (RoundTripper), so the same
// classification code runs over the deterministic simulator in tests and
// over a real UDP socket in cmd/stunprobe.
package stun

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"cgn/internal/netaddr"
)

// MagicCookie is the fixed RFC 5389 magic cookie.
const MagicCookie = 0x2112A442

// Message types.
const (
	TypeBindingRequest  = 0x0001
	TypeBindingResponse = 0x0101
	TypeBindingError    = 0x0111
)

// Attribute types.
const (
	attrMappedAddress    = 0x0001
	attrChangeRequest    = 0x0003
	attrChangedAddress   = 0x0005
	attrXORMappedAddress = 0x0020
	attrResponseOrigin   = 0x802b
)

// CHANGE-REQUEST flag bits.
const (
	changeIPFlag   = 0x04
	changePortFlag = 0x02
)

// headerLen is the fixed STUN header size.
const headerLen = 20

// Message is a parsed STUN message carrying the attributes this
// implementation uses.
type Message struct {
	Type uint16
	TID  [12]byte

	// Mapped is the reflexive transport address (XOR-MAPPED-ADDRESS,
	// falling back to MAPPED-ADDRESS).
	Mapped netaddr.Endpoint
	// Changed is the server's alternate address advertisement
	// (CHANGED-ADDRESS).
	Changed netaddr.Endpoint
	// Origin is the address the response was sent from (RESPONSE-ORIGIN).
	Origin netaddr.Endpoint
	// ChangeIP / ChangePort are the CHANGE-REQUEST flags (requests only).
	ChangeIP, ChangePort bool

	hasMapped, hasXORMapped, hasChanged, hasOrigin, hasChangeReq bool
}

// NewTID fills a random transaction ID.
func NewTID(rng *rand.Rand) [12]byte {
	var tid [12]byte
	rng.Read(tid[:])
	return tid
}

// Encode renders the message to wire format.
func Encode(m *Message) []byte {
	var attrs []byte
	if m.hasChangeReq || m.ChangeIP || m.ChangePort {
		var flags uint32
		if m.ChangeIP {
			flags |= changeIPFlag
		}
		if m.ChangePort {
			flags |= changePortFlag
		}
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], flags)
		attrs = appendAttr(attrs, attrChangeRequest, v[:])
	}
	if !m.Mapped.IsZero() {
		attrs = appendAttr(attrs, attrMappedAddress, encodeAddress(m.Mapped, false, m.TID))
		attrs = appendAttr(attrs, attrXORMappedAddress, encodeAddress(m.Mapped, true, m.TID))
	}
	if !m.Changed.IsZero() {
		attrs = appendAttr(attrs, attrChangedAddress, encodeAddress(m.Changed, false, m.TID))
	}
	if !m.Origin.IsZero() {
		attrs = appendAttr(attrs, attrResponseOrigin, encodeAddress(m.Origin, false, m.TID))
	}
	out := make([]byte, headerLen, headerLen+len(attrs))
	binary.BigEndian.PutUint16(out[0:2], m.Type)
	binary.BigEndian.PutUint16(out[2:4], uint16(len(attrs)))
	binary.BigEndian.PutUint32(out[4:8], MagicCookie)
	copy(out[8:20], m.TID[:])
	return append(out, attrs...)
}

func appendAttr(dst []byte, typ uint16, value []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], typ)
	binary.BigEndian.PutUint16(hdr[2:4], uint16(len(value)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, value...)
	for len(value)%4 != 0 {
		dst = append(dst, 0)
		value = append(value, 0)
	}
	return dst
}

// encodeAddress renders a MAPPED-ADDRESS-family value (family 0x01, IPv4),
// XORing with the magic cookie when xored is set.
func encodeAddress(ep netaddr.Endpoint, xored bool, tid [12]byte) []byte {
	v := make([]byte, 8)
	v[1] = 0x01 // family IPv4
	port := ep.Port
	addr := uint32(ep.Addr)
	if xored {
		port ^= uint16(MagicCookie >> 16)
		addr ^= MagicCookie
	}
	binary.BigEndian.PutUint16(v[2:4], port)
	binary.BigEndian.PutUint32(v[4:8], addr)
	return v
}

func decodeAddress(v []byte, xored bool) (netaddr.Endpoint, error) {
	if len(v) < 8 || v[1] != 0x01 {
		return netaddr.Endpoint{}, errors.New("stun: bad address attribute")
	}
	port := binary.BigEndian.Uint16(v[2:4])
	addr := binary.BigEndian.Uint32(v[4:8])
	if xored {
		port ^= uint16(MagicCookie >> 16)
		addr ^= MagicCookie
	}
	return netaddr.EndpointOf(netaddr.Addr(addr), port), nil
}

// Errors returned by Parse.
var ErrNotSTUN = errors.New("stun: not a STUN message")

// Parse decodes a wire-format STUN message. Unknown attributes are
// skipped, per the RFC's comprehension rules for the ranges we use.
func Parse(data []byte) (*Message, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: short header", ErrNotSTUN)
	}
	if binary.BigEndian.Uint32(data[4:8]) != MagicCookie {
		return nil, fmt.Errorf("%w: bad magic cookie", ErrNotSTUN)
	}
	m := &Message{Type: binary.BigEndian.Uint16(data[0:2])}
	length := int(binary.BigEndian.Uint16(data[2:4]))
	copy(m.TID[:], data[8:20])
	body := data[headerLen:]
	if len(body) < length {
		return nil, fmt.Errorf("%w: truncated body", ErrNotSTUN)
	}
	body = body[:length]
	for len(body) > 0 {
		if len(body) < 4 {
			return nil, fmt.Errorf("%w: truncated attribute", ErrNotSTUN)
		}
		typ := binary.BigEndian.Uint16(body[0:2])
		alen := int(binary.BigEndian.Uint16(body[2:4]))
		body = body[4:]
		if len(body) < alen {
			return nil, fmt.Errorf("%w: truncated attribute value", ErrNotSTUN)
		}
		value := body[:alen]
		padded := (alen + 3) &^ 3
		if padded > len(body) {
			padded = len(body)
		}
		body = body[padded:]
		switch typ {
		case attrMappedAddress:
			ep, err := decodeAddress(value, false)
			if err != nil {
				return nil, err
			}
			if !m.hasXORMapped {
				m.Mapped = ep
			}
			m.hasMapped = true
		case attrXORMappedAddress:
			ep, err := decodeAddress(value, true)
			if err != nil {
				return nil, err
			}
			m.Mapped = ep
			m.hasXORMapped = true
		case attrChangedAddress:
			ep, err := decodeAddress(value, false)
			if err != nil {
				return nil, err
			}
			m.Changed = ep
			m.hasChanged = true
		case attrResponseOrigin:
			ep, err := decodeAddress(value, false)
			if err != nil {
				return nil, err
			}
			m.Origin = ep
			m.hasOrigin = true
		case attrChangeRequest:
			if len(value) < 4 {
				return nil, fmt.Errorf("%w: short change-request", ErrNotSTUN)
			}
			flags := binary.BigEndian.Uint32(value)
			m.ChangeIP = flags&changeIPFlag != 0
			m.ChangePort = flags&changePortFlag != 0
			m.hasChangeReq = true
		}
	}
	return m, nil
}

// Request builds a binding request with the given CHANGE-REQUEST flags.
func Request(tid [12]byte, changeIP, changePort bool) []byte {
	return Encode(&Message{
		Type: TypeBindingRequest, TID: tid,
		ChangeIP: changeIP, ChangePort: changePort,
		hasChangeReq: changeIP || changePort,
	})
}
