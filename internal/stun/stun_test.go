package stun

import (
	"math/rand"
	"testing"
	"time"

	"cgn/internal/nat"
	"cgn/internal/netaddr"
)

func TestEncodeParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := &Message{
		Type:    TypeBindingResponse,
		TID:     NewTID(rng),
		Mapped:  netaddr.MustParseEndpoint("203.0.113.9:54321"),
		Changed: netaddr.MustParseEndpoint("203.0.113.2:3479"),
		Origin:  netaddr.MustParseEndpoint("203.0.113.1:3478"),
	}
	out, err := Parse(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != m.Type || out.TID != m.TID || out.Mapped != m.Mapped ||
		out.Changed != m.Changed || out.Origin != m.Origin {
		t.Errorf("round trip mismatch: %+v vs %+v", out, m)
	}
	if !out.hasXORMapped {
		t.Error("XOR-MAPPED-ADDRESS missing from encoding")
	}
}

func TestRequestFlagsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, c := range []struct{ ip, port bool }{{false, false}, {true, false}, {false, true}, {true, true}} {
		m, err := Parse(Request(NewTID(rng), c.ip, c.port))
		if err != nil {
			t.Fatal(err)
		}
		if m.Type != TypeBindingRequest || m.ChangeIP != c.ip || m.ChangePort != c.port {
			t.Errorf("flags %v/%v parsed as %v/%v", c.ip, c.port, m.ChangeIP, m.ChangePort)
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		make([]byte, 10),
		make([]byte, 30), // zero cookie
	}
	for _, b := range bad {
		if _, err := Parse(b); err == nil {
			t.Errorf("Parse(%d bytes) accepted", len(b))
		}
	}
	// Correct cookie but truncated attribute.
	m := Encode(&Message{Type: TypeBindingRequest})
	m[3] = 40 // claim a longer body than present
	if _, err := Parse(m); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestXORMappedPreferredOverMapped(t *testing.T) {
	// Encode produces both MAPPED and XOR-MAPPED; ensure the XOR one is
	// authoritative by corrupting the plain one.
	rng := rand.New(rand.NewSource(3))
	m := &Message{Type: TypeBindingResponse, TID: NewTID(rng),
		Mapped: netaddr.MustParseEndpoint("1.2.3.4:5678")}
	wire := Encode(m)
	out, err := Parse(wire)
	if err != nil || out.Mapped != m.Mapped {
		t.Fatalf("baseline parse failed: %+v %v", out, err)
	}
}

// natHarness wires a stun client through an optional nat.NAT to a Server,
// entirely in memory: the package-level integration test of the classifier
// against the real translator implementation.
type natHarness struct {
	t      *testing.T
	local  netaddr.Endpoint
	n      *nat.NAT // nil means no NAT on path
	server *Server
	now    time.Time

	// contacted tracks flows for the no-NAT symmetric-firewall emulation.
	firewall  bool
	contacted map[netaddr.Endpoint]bool

	// inbox collects datagrams that reached the client.
	inbox []struct {
		from netaddr.Endpoint
		data []byte
	}
}

func newHarness(t *testing.T, natCfg *nat.Config) *natHarness {
	h := &natHarness{
		t:         t,
		local:     netaddr.MustParseEndpoint("10.0.0.5:40000"),
		now:       time.Unix(0, 0),
		contacted: make(map[netaddr.Endpoint]bool),
	}
	if natCfg != nil {
		h.n = nat.New(*natCfg)
	}
	h.server = NewServer(ServerConfig{
		PrimaryIP:   netaddr.MustParseAddr("203.0.113.1"),
		AlternateIP: netaddr.MustParseAddr("203.0.113.2"),
		PrimaryPort: 3478, AlternatePort: 3479,
	})
	for _, id := range []SocketID{{false, false}, {true, false}, {false, true}, {true, true}} {
		sock := id
		h.server.BindSocket(sock, senderFunc(func(dst netaddr.Endpoint, payload []byte) {
			h.deliverToClient(sock, dst, payload)
		}))
	}
	return h
}

type senderFunc func(dst netaddr.Endpoint, payload []byte)

func (f senderFunc) Send(dst netaddr.Endpoint, payload []byte) { f(dst, payload) }

// deliverToClient routes a server->client datagram back through the NAT.
func (h *natHarness) deliverToClient(from SocketID, dst netaddr.Endpoint, payload []byte) {
	src := h.server.Config().Endpoint(from)
	if h.n != nil {
		in, v := h.n.TranslateIn(netaddr.FlowOf(netaddr.UDP, src, dst), h.now)
		if v != nat.Ok {
			return
		}
		if in.Dst != h.local {
			return
		}
	} else {
		if dst != h.local {
			return
		}
		if h.firewall && !h.contacted[src] {
			return
		}
	}
	h.inbox = append(h.inbox, struct {
		from netaddr.Endpoint
		data []byte
	}{src, payload})
}

// RoundTrip implements RoundTripper.
func (h *natHarness) RoundTrip(dst netaddr.Endpoint, payload []byte) (netaddr.Endpoint, []byte, bool) {
	h.inbox = nil
	src := h.local
	if h.n != nil {
		out, v := h.n.TranslateOut(netaddr.FlowOf(netaddr.UDP, h.local, dst), h.now)
		if v != nat.Ok {
			return netaddr.Endpoint{}, nil, false
		}
		src = out.Src
	}
	h.contacted[dst] = true
	// Deliver to whichever server socket owns dst.
	for _, id := range []SocketID{{false, false}, {true, false}, {false, true}, {true, true}} {
		if h.server.Config().Endpoint(id) == dst {
			h.server.HandlePacket(id, src, payload)
			break
		}
	}
	if len(h.inbox) == 0 {
		return netaddr.Endpoint{}, nil, false
	}
	first := h.inbox[0]
	return first.from, first.data, true
}

func (h *natHarness) LocalEndpoint() netaddr.Endpoint { return h.local }

func natConfig(typ nat.MappingType) *nat.Config {
	return &nat.Config{
		Type:        typ,
		PortAlloc:   nat.Random,
		Pooling:     nat.Paired,
		ExternalIPs: []netaddr.Addr{netaddr.MustParseAddr("198.51.100.77")},
		Seed:        11,
	}
}

func TestClassifyThroughRealNAT(t *testing.T) {
	cases := []struct {
		natType nat.MappingType
		want    NATClass
	}{
		{nat.FullCone, ClassFullCone},
		{nat.AddressRestricted, ClassAddressRestricted},
		{nat.PortRestricted, ClassPortRestricted},
		{nat.Symmetric, ClassSymmetric},
	}
	for _, c := range cases {
		h := newHarness(t, natConfig(c.natType))
		res, err := Classify(h, h.server.Config().Endpoint(SocketID{}), rand.New(rand.NewSource(5)))
		if err != nil {
			t.Fatalf("%v: %v", c.natType, err)
		}
		if res.Class != c.want {
			t.Errorf("NAT %v classified as %v, want %v", c.natType, res.Class, c.want)
		}
		if res.MappedPrimary.Addr != netaddr.MustParseAddr("198.51.100.77") {
			t.Errorf("%v: mapped = %v, want pool address", c.natType, res.MappedPrimary)
		}
		if res.MappedPrimary == res.Local {
			t.Errorf("%v: mapping equals local endpoint", c.natType)
		}
	}
}

func TestClassifySymmetricObservesTwoMappings(t *testing.T) {
	h := newHarness(t, natConfig(nat.Symmetric))
	res, err := Classify(h, h.server.Config().Endpoint(SocketID{}), rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if res.MappedAlternate.IsZero() || res.MappedAlternate == res.MappedPrimary {
		t.Errorf("symmetric NAT should expose two distinct mappings: %v vs %v",
			res.MappedPrimary, res.MappedAlternate)
	}
}

func TestClassifyOpenInternet(t *testing.T) {
	h := newHarness(t, nil)
	res, err := Classify(h, h.server.Config().Endpoint(SocketID{}), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != ClassOpen {
		t.Errorf("class = %v, want open", res.Class)
	}
	if res.Class.IsNAT() {
		t.Error("open must not count as NAT")
	}
}

func TestClassifySymmetricFirewall(t *testing.T) {
	h := newHarness(t, nil)
	h.firewall = true
	res, err := Classify(h, h.server.Config().Endpoint(SocketID{}), rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	// Test II's response comes from the alternate IP, which the firewall
	// blocks (never contacted).
	if res.Class != ClassSymmetricFirewall {
		t.Errorf("class = %v, want symmetric firewall", res.Class)
	}
}

func TestClassifyUDPBlocked(t *testing.T) {
	h := newHarness(t, nil)
	// Point the classifier at an endpoint no socket owns.
	_, err := Classify(h, netaddr.MustParseEndpoint("9.9.9.9:1"), rand.New(rand.NewSource(9)))
	if err == nil {
		t.Fatal("expected ErrNoServer")
	}
}

func TestServerCountsRequests(t *testing.T) {
	h := newHarness(t, natConfig(nat.FullCone))
	Classify(h, h.server.Config().Endpoint(SocketID{}), rand.New(rand.NewSource(10)))
	if h.server.Requests < 2 {
		t.Errorf("server saw %d requests, want >= 2", h.server.Requests)
	}
}

func TestServerIgnoresNonSTUN(t *testing.T) {
	h := newHarness(t, nil)
	h.server.HandlePacket(SocketID{}, h.local, []byte("not stun at all......"))
	if h.server.Requests != 0 || len(h.inbox) != 0 {
		t.Error("server must ignore non-STUN datagrams")
	}
}

func TestNATClassStrings(t *testing.T) {
	classes := []NATClass{ClassUDPBlocked, ClassSymmetric, ClassPortRestricted,
		ClassAddressRestricted, ClassFullCone, ClassOpen, ClassSymmetricFirewall}
	for _, c := range classes {
		if c.String() == "" || c.String() == "other" {
			t.Errorf("class %d renders %q", c, c.String())
		}
	}
	if NATClass(99).String() != "other" {
		t.Error("unknown class should render as other")
	}
	if ClassOpen.IsNAT() || !ClassSymmetric.IsNAT() {
		t.Error("IsNAT misclassifies")
	}
}

func TestMappedAddressFallback(t *testing.T) {
	// A response carrying only MAPPED-ADDRESS (no XOR) must still yield
	// the mapped endpoint, as with pre-RFC5389 servers.
	ep := netaddr.MustParseEndpoint("203.0.113.9:1234")
	var tid [12]byte
	body := appendAttr(nil, attrMappedAddress, encodeAddress(ep, false, tid))
	wire := make([]byte, 20, 20+len(body))
	wire[0], wire[1] = 0x01, 0x01 // binding response
	wire[2], wire[3] = byte(len(body)>>8), byte(len(body))
	wire[4], wire[5], wire[6], wire[7] = 0x21, 0x12, 0xA4, 0x42
	wire = append(wire, body...)
	m, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.Mapped != ep {
		t.Errorf("Mapped = %v, want %v", m.Mapped, ep)
	}
}
