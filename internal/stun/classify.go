package stun

import (
	"errors"
	"math/rand"

	"cgn/internal/netaddr"
)

// NATClass is the outcome of the RFC 3489 classification algorithm,
// ordered from most restrictive to most permissive as in Figure 13.
type NATClass uint8

// Classification outcomes.
const (
	// ClassUDPBlocked: no response to the initial binding request.
	ClassUDPBlocked NATClass = iota
	// ClassSymmetric: different server endpoints observe different
	// mappings.
	ClassSymmetric
	// ClassPortRestricted: inbound requires a previously contacted
	// IP:port.
	ClassPortRestricted
	// ClassAddressRestricted: inbound requires a previously contacted IP.
	ClassAddressRestricted
	// ClassFullCone: inbound from anywhere reaches the mapping.
	ClassFullCone
	// ClassOpen: no address translation observed.
	ClassOpen
	// ClassSymmetricFirewall: no translation, but unsolicited inbound is
	// blocked.
	ClassSymmetricFirewall
)

// String names the class as in the paper's Figure 13 categories.
func (c NATClass) String() string {
	switch c {
	case ClassUDPBlocked:
		return "udp-blocked"
	case ClassSymmetric:
		return "symmetric"
	case ClassPortRestricted:
		return "port-address restricted"
	case ClassAddressRestricted:
		return "address restricted"
	case ClassFullCone:
		return "full cone"
	case ClassOpen:
		return "open"
	case ClassSymmetricFirewall:
		return "symmetric firewall"
	default:
		return "other"
	}
}

// IsNAT reports whether the class indicates address translation.
func (c NATClass) IsNAT() bool {
	switch c {
	case ClassSymmetric, ClassPortRestricted, ClassAddressRestricted, ClassFullCone:
		return true
	default:
		return false
	}
}

// RoundTripper performs one request/response exchange from the client's
// single local socket. Implementations back this with a simulated socket
// (synchronous) or a real UDP socket (send + deadline read).
type RoundTripper interface {
	// RoundTrip sends payload to dst and returns the first datagram that
	// comes back, with the endpoint it came from. ok is false on timeout.
	RoundTrip(dst netaddr.Endpoint, payload []byte) (from netaddr.Endpoint, resp []byte, ok bool)
	// LocalEndpoint is the client's local (pre-NAT) view of its socket.
	LocalEndpoint() netaddr.Endpoint
}

// Result carries the classification and the raw observations behind it.
type Result struct {
	Class NATClass
	// MappedPrimary is the reflexive address observed via the primary
	// server endpoint (Test I).
	MappedPrimary netaddr.Endpoint
	// MappedAlternate is the reflexive address observed via the alternate
	// server endpoint (Test I'), zero if that test did not run or failed.
	MappedAlternate netaddr.Endpoint
	// Local is the client's own view of its endpoint.
	Local netaddr.Endpoint
}

// ErrNoServer is returned when the initial binding request gets no answer.
var ErrNoServer = errors.New("stun: no response from server (udp blocked?)")

// Classify runs the RFC 3489 test battery against a four-socket server
// reachable at primary. When multiple NATs cascade on the path, the
// result reflects the most restrictive composite behavior, which is
// exactly the property §6.5 of the paper leans on.
func Classify(rt RoundTripper, primary netaddr.Endpoint, rng *rand.Rand) (Result, error) {
	res := Result{Local: rt.LocalEndpoint()}

	// Test I: plain binding request to the primary endpoint.
	m1, ok := exchange(rt, primary, false, false, rng)
	if !ok {
		res.Class = ClassUDPBlocked
		return res, ErrNoServer
	}
	res.MappedPrimary = m1.Mapped

	if m1.Mapped == res.Local {
		// No translation. Test II decides open vs symmetric firewall:
		// can the server's alternate socket reach us unsolicited?
		if _, ok := exchange(rt, primary, true, true, rng); ok {
			res.Class = ClassOpen
		} else {
			res.Class = ClassSymmetricFirewall
		}
		return res, nil
	}

	// Translation present. Test II: request responses from the fully
	// alternate socket; success means anyone can reach the mapping.
	if _, ok := exchange(rt, primary, true, true, rng); ok {
		res.Class = ClassFullCone
		return res, nil
	}

	// Test I': binding request to the alternate endpoint; a different
	// mapping betrays a symmetric NAT.
	alt := m1.Changed
	if alt.IsZero() {
		// Server did not advertise an alternate; classification cannot
		// proceed past this point.
		res.Class = ClassPortRestricted
		return res, nil
	}
	m2, ok := exchange(rt, alt, false, false, rng)
	if ok {
		res.MappedAlternate = m2.Mapped
		if m2.Mapped != m1.Mapped {
			res.Class = ClassSymmetric
			return res, nil
		}
	}

	// Test III: change port only; success means only the address needs to
	// have been contacted.
	if _, ok := exchange(rt, primary, false, true, rng); ok {
		res.Class = ClassAddressRestricted
	} else {
		res.Class = ClassPortRestricted
	}
	return res, nil
}

func exchange(rt RoundTripper, dst netaddr.Endpoint, changeIP, changePort bool, rng *rand.Rand) (*Message, bool) {
	tid := NewTID(rng)
	from, resp, ok := rt.RoundTrip(dst, Request(tid, changeIP, changePort))
	if !ok {
		return nil, false
	}
	_ = from
	m, err := Parse(resp)
	if err != nil || m.Type != TypeBindingResponse || m.TID != tid {
		return nil, false
	}
	return m, true
}
