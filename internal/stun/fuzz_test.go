package stun

import (
	"math/rand"
	"testing"

	"cgn/internal/netaddr"
)

// FuzzParse drives the STUN parser with arbitrary bytes: no panics, and
// accepted messages survive an encode/parse round trip on the fields this
// implementation uses.
func FuzzParse(f *testing.F) {
	rng := rand.New(rand.NewSource(1))
	resp := &Message{
		Type:    TypeBindingResponse,
		TID:     NewTID(rng),
		Mapped:  netaddr.MustParseEndpoint("203.0.113.9:54321"),
		Changed: netaddr.MustParseEndpoint("203.0.113.2:3479"),
		Origin:  netaddr.MustParseEndpoint("203.0.113.1:3478"),
	}
	f.Add(Encode(resp))
	f.Add(Request(NewTID(rng), true, false))
	f.Add(Request(NewTID(rng), false, true))
	f.Add(make([]byte, 20))
	f.Add([]byte("definitely not stun"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Parse(data)
		if err != nil {
			return
		}
		out, err := Parse(Encode(m))
		if err != nil {
			t.Fatalf("re-encoded message unparseable: %v", err)
		}
		if out.Type != m.Type || out.TID != m.TID || out.Mapped != m.Mapped ||
			out.Changed != m.Changed {
			t.Fatal("round trip lost fields")
		}
	})
}
