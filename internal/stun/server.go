package stun

import (
	"cgn/internal/netaddr"
)

// Sender transmits one datagram from a specific server socket.
type Sender interface {
	Send(dst netaddr.Endpoint, payload []byte)
}

// ServerConfig describes the classic four-socket STUN server layout: two
// IP addresses times two ports.
type ServerConfig struct {
	PrimaryIP, AlternateIP     netaddr.Addr
	PrimaryPort, AlternatePort uint16
}

// SocketID selects one of the server's four sockets.
type SocketID struct {
	// AltIP / AltPort select the alternate IP / port.
	AltIP, AltPort bool
}

// Endpoint returns the transport endpoint of socket id.
func (c ServerConfig) Endpoint(id SocketID) netaddr.Endpoint {
	ip := c.PrimaryIP
	if id.AltIP {
		ip = c.AlternateIP
	}
	port := c.PrimaryPort
	if id.AltPort {
		port = c.AlternatePort
	}
	return netaddr.EndpointOf(ip, port)
}

// Server is a four-socket STUN server. The owner binds each socket's
// transport (simulated or real) and routes inbound datagrams to
// HandlePacket with the socket it arrived on.
type Server struct {
	cfg     ServerConfig
	senders map[SocketID]Sender
	// Requests counts binding requests served.
	Requests int
}

// NewServer builds a server for the given four-endpoint layout.
func NewServer(cfg ServerConfig) *Server {
	return &Server{cfg: cfg, senders: make(map[SocketID]Sender)}
}

// Config returns the server layout.
func (s *Server) Config() ServerConfig { return s.cfg }

// BindSocket attaches the transport for one of the four sockets.
func (s *Server) BindSocket(id SocketID, sender Sender) { s.senders[id] = sender }

// HandlePacket processes a datagram that arrived on socket `on` from
// `from`. Non-STUN and non-request packets are ignored.
func (s *Server) HandlePacket(on SocketID, from netaddr.Endpoint, data []byte) {
	m, err := Parse(data)
	if err != nil || m.Type != TypeBindingRequest {
		return
	}
	s.Requests++
	// CHANGE-REQUEST selects the responding socket relative to the one
	// the request arrived on.
	respSock := SocketID{
		AltIP:   on.AltIP != m.ChangeIP,
		AltPort: on.AltPort != m.ChangePort,
	}
	sender := s.senders[respSock]
	if sender == nil {
		return // socket not bound; the response is simply lost
	}
	resp := &Message{
		Type:   TypeBindingResponse,
		TID:    m.TID,
		Mapped: from,
		// CHANGED-ADDRESS advertises the fully alternate socket relative
		// to the receiving one.
		Changed:   s.cfg.Endpoint(SocketID{AltIP: !on.AltIP, AltPort: !on.AltPort}),
		Origin:    s.cfg.Endpoint(respSock),
		hasOrigin: true,
	}
	sender.Send(from, Encode(resp))
}
