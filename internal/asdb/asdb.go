// Package asdb models the AS-level metadata the paper's evaluation slices
// by: the Regional Internet Registry (RIR) an AS belongs to, whether it is
// an "eyeball" AS per the Spamhaus PBL and APNIC population heuristics, and
// whether it is a cellular network. The simulated world generator populates
// a DB; the detection pipelines read it to compute Table 5 and Figure 6.
package asdb

import (
	"fmt"
	"sort"

	"cgn/internal/netaddr"
)

// RIR identifies one of the five Regional Internet Registries.
type RIR uint8

// The five RIRs, ordered as the paper's Figure 6 x-axis.
const (
	AFRINIC RIR = iota
	APNIC
	ARIN
	LACNIC
	RIPE
)

// RIRs lists all regions in Figure 6 order.
var RIRs = []RIR{AFRINIC, APNIC, ARIN, LACNIC, RIPE}

// String returns the registry name.
func (r RIR) String() string {
	switch r {
	case AFRINIC:
		return "AFRINIC"
	case APNIC:
		return "APNIC"
	case ARIN:
		return "ARIN"
	case LACNIC:
		return "LACNIC"
	case RIPE:
		return "RIPE"
	default:
		return fmt.Sprintf("RIR(%d)", r)
	}
}

// Kind is the coarse business type of an AS.
type Kind uint8

// AS kinds. Only Eyeball and Cellular ASes host the vantage points the
// paper's methods observe; Transit and Content ASes pad the "all routed
// ASes" population of Table 5.
const (
	Eyeball Kind = iota
	Cellular
	Transit
	Content
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Eyeball:
		return "eyeball"
	case Cellular:
		return "cellular"
	case Transit:
		return "transit"
	case Content:
		return "content"
	default:
		return fmt.Sprintf("Kind(%d)", k)
	}
}

// AS describes one autonomous system.
type AS struct {
	ASN    uint32
	Name   string
	Region RIR
	Kind   Kind

	// Allocations are the public prefixes allocated to (and announced by)
	// this AS.
	Allocations []netaddr.Prefix

	// PBLEndUserAddrs is the number of addresses the (simulated) Spamhaus
	// Policy Block List marks as "end user" space in this AS. The paper
	// counts an AS as an eyeball AS if this is >= 2048.
	PBLEndUserAddrs int

	// APNICSamples is the (simulated) APNIC Labs ad-based population sample
	// count. The paper counts an AS as an eyeball AS if this is >= 1000.
	APNICSamples int
}

// Thresholds for eyeball AS population membership, per §5 of the paper.
const (
	PBLEyeballMinAddrs     = 2048
	APNICEyeballMinSamples = 1000
)

// InPBLEyeballList reports membership in the PBL-derived eyeball population.
func (a *AS) InPBLEyeballList() bool { return a.PBLEndUserAddrs >= PBLEyeballMinAddrs }

// InAPNICEyeballList reports membership in the APNIC-derived population.
func (a *AS) InAPNICEyeballList() bool { return a.APNICSamples >= APNICEyeballMinSamples }

// DB is a registry of ASes indexed by ASN.
type DB struct {
	byASN map[uint32]*AS
	order []uint32 // insertion order for deterministic iteration
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{byASN: make(map[uint32]*AS)}
}

// Add registers an AS. It panics on duplicate ASNs: the world generator
// owns ASN assignment and a duplicate is a bug, not an input error.
func (db *DB) Add(as *AS) {
	if _, dup := db.byASN[as.ASN]; dup {
		panic(fmt.Sprintf("asdb: duplicate ASN %d", as.ASN))
	}
	db.byASN[as.ASN] = as
	db.order = append(db.order, as.ASN)
}

// Get returns the AS with the given ASN, or nil.
func (db *DB) Get(asn uint32) *AS { return db.byASN[asn] }

// Len returns the number of registered ASes.
func (db *DB) Len() int { return len(db.order) }

// All returns all ASes in insertion order.
func (db *DB) All() []*AS {
	out := make([]*AS, len(db.order))
	for i, asn := range db.order {
		out[i] = db.byASN[asn]
	}
	return out
}

// Select returns ASes matching the filter, in insertion order.
func (db *DB) Select(keep func(*AS) bool) []*AS {
	var out []*AS
	for _, asn := range db.order {
		if as := db.byASN[asn]; keep(as) {
			out = append(out, as)
		}
	}
	return out
}

// Population is a named set of ASNs against which coverage and detection
// rates are computed (the three big columns of Table 5).
type Population struct {
	Name string
	ASNs map[uint32]bool
}

// Contains reports membership.
func (p Population) Contains(asn uint32) bool { return p.ASNs[asn] }

// Size returns the population size.
func (p Population) Size() int { return len(p.ASNs) }

// Sorted returns the member ASNs in ascending order.
func (p Population) Sorted() []uint32 {
	out := make([]uint32, 0, len(p.ASNs))
	for asn := range p.ASNs {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RoutedPopulation returns all ASes (the "routed ASes" column of Table 5).
func (db *DB) RoutedPopulation() Population {
	p := Population{Name: "routed ASes", ASNs: make(map[uint32]bool, db.Len())}
	for _, asn := range db.order {
		p.ASNs[asn] = true
	}
	return p
}

// PBLPopulation returns the PBL-derived eyeball AS population.
func (db *DB) PBLPopulation() Population {
	p := Population{Name: "eyeball ASes, PBL", ASNs: make(map[uint32]bool)}
	for _, asn := range db.order {
		if db.byASN[asn].InPBLEyeballList() {
			p.ASNs[asn] = true
		}
	}
	return p
}

// APNICPopulation returns the APNIC-derived eyeball AS population.
func (db *DB) APNICPopulation() Population {
	p := Population{Name: "eyeball ASes, APNIC", ASNs: make(map[uint32]bool)}
	for _, asn := range db.order {
		if db.byASN[asn].InAPNICEyeballList() {
			p.ASNs[asn] = true
		}
	}
	return p
}

// CellularPopulation returns all cellular ASes.
func (db *DB) CellularPopulation() Population {
	p := Population{Name: "cellular ASes", ASNs: make(map[uint32]bool)}
	for _, asn := range db.order {
		if db.byASN[asn].Kind == Cellular {
			p.ASNs[asn] = true
		}
	}
	return p
}
