package asdb

import (
	"testing"

	"cgn/internal/netaddr"
)

func newAS(asn uint32, kind Kind, region RIR, pbl, apnic int) *AS {
	return &AS{
		ASN: asn, Name: "test", Region: region, Kind: kind,
		Allocations:     []netaddr.Prefix{netaddr.MustParsePrefix("203.0.0.0/16")},
		PBLEndUserAddrs: pbl, APNICSamples: apnic,
	}
}

func TestAddGet(t *testing.T) {
	db := NewDB()
	db.Add(newAS(65001, Eyeball, RIPE, 4096, 2000))
	if got := db.Get(65001); got == nil || got.ASN != 65001 {
		t.Fatalf("Get = %+v", got)
	}
	if db.Get(65002) != nil {
		t.Error("Get of absent ASN should be nil")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	db := NewDB()
	db.Add(newAS(1, Eyeball, RIPE, 0, 0))
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add should panic")
		}
	}()
	db.Add(newAS(1, Eyeball, RIPE, 0, 0))
}

func TestAllInsertionOrder(t *testing.T) {
	db := NewDB()
	for _, asn := range []uint32{30, 10, 20} {
		db.Add(newAS(asn, Eyeball, ARIN, 0, 0))
	}
	all := db.All()
	if all[0].ASN != 30 || all[1].ASN != 10 || all[2].ASN != 20 {
		t.Errorf("All order = %v,%v,%v", all[0].ASN, all[1].ASN, all[2].ASN)
	}
}

func TestSelect(t *testing.T) {
	db := NewDB()
	db.Add(newAS(1, Eyeball, RIPE, 0, 0))
	db.Add(newAS(2, Cellular, APNIC, 0, 0))
	db.Add(newAS(3, Transit, ARIN, 0, 0))
	cell := db.Select(func(a *AS) bool { return a.Kind == Cellular })
	if len(cell) != 1 || cell[0].ASN != 2 {
		t.Errorf("Select cellular = %v", cell)
	}
}

func TestEyeballThresholds(t *testing.T) {
	cases := []struct {
		pbl, apnic   int
		inPBL, inAPN bool
	}{
		{2048, 1000, true, true},
		{2047, 999, false, false},
		{0, 5000, false, true},
		{99999, 0, true, false},
	}
	for _, c := range cases {
		as := newAS(1, Eyeball, RIPE, c.pbl, c.apnic)
		if as.InPBLEyeballList() != c.inPBL {
			t.Errorf("pbl=%d: InPBLEyeballList = %v", c.pbl, as.InPBLEyeballList())
		}
		if as.InAPNICEyeballList() != c.inAPN {
			t.Errorf("apnic=%d: InAPNICEyeballList = %v", c.apnic, as.InAPNICEyeballList())
		}
	}
}

func TestPopulations(t *testing.T) {
	db := NewDB()
	db.Add(newAS(1, Eyeball, RIPE, 4096, 0))      // PBL only
	db.Add(newAS(2, Eyeball, APNIC, 0, 1500))     // APNIC only
	db.Add(newAS(3, Cellular, APNIC, 4096, 1500)) // both + cellular
	db.Add(newAS(4, Transit, ARIN, 0, 0))         // neither

	if p := db.RoutedPopulation(); p.Size() != 4 || !p.Contains(4) {
		t.Errorf("routed population = %v", p.ASNs)
	}
	if p := db.PBLPopulation(); p.Size() != 2 || !p.Contains(1) || !p.Contains(3) {
		t.Errorf("PBL population = %v", p.ASNs)
	}
	if p := db.APNICPopulation(); p.Size() != 2 || !p.Contains(2) || !p.Contains(3) {
		t.Errorf("APNIC population = %v", p.ASNs)
	}
	if p := db.CellularPopulation(); p.Size() != 1 || !p.Contains(3) {
		t.Errorf("cellular population = %v", p.ASNs)
	}
}

func TestPopulationSorted(t *testing.T) {
	p := Population{ASNs: map[uint32]bool{5: true, 1: true, 3: true}}
	got := p.Sorted()
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("Sorted = %v", got)
	}
}

func TestStringers(t *testing.T) {
	if AFRINIC.String() != "AFRINIC" || RIPE.String() != "RIPE" {
		t.Error("RIR names")
	}
	if len(RIRs) != 5 {
		t.Error("five RIRs expected")
	}
	if Eyeball.String() != "eyeball" || Cellular.String() != "cellular" ||
		Transit.String() != "transit" || Content.String() != "content" {
		t.Error("Kind names")
	}
	if RIR(99).String() == "" || Kind(99).String() == "" {
		t.Error("unknown values should still render")
	}
}
