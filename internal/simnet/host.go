package simnet

import (
	"fmt"
	"math/rand"

	"cgn/internal/netaddr"
)

// Host is an endpoint attached to one realm: a subscriber device, a
// measurement server, the DHT crawler. Hosts bind handlers to transport
// ports and send packets through the network.
type Host struct {
	name  string
	realm *Realm
	addr  netaddr.Addr
	net   *Network

	handlers map[hostPort]Handler

	// ephemeral port state models OS source port selection: a sequential
	// counter starting at a random position inside the OS ephemeral range
	// (Linux-style), which produces the "OS ephemeral ports" histogram
	// shape of Fig 8(a).
	ephNext uint16
	// extraHops is the router distance between the realm fabric and this
	// host (e.g. data-center hops in front of a measurement server).
	extraHops int

	// One-entry route memo: hosts typically send bursts toward a single
	// destination (an echo exchange, a DHT peer), so the common case
	// skips even the network-level route map lookup.
	memoDst   netaddr.Addr
	memoRoute *route
	// One-entry handler-dispatch memo, invalidated by Bind/Unbind:
	// steady traffic lands on one port, and the key compare is cheaper
	// than the handlers map probe.
	memoHP hostPort
	memoFn Handler
}

func (h *Host) isAttachment() {}

type hostPort struct {
	proto netaddr.Proto
	port  uint16
}

// Handler receives a delivered packet. from is the source endpoint as
// visible at this host (post-translation); to is the local endpoint the
// packet was addressed to (pre-local-delivery, i.e. this host's view).
type Handler func(from netaddr.Endpoint, to netaddr.Endpoint, proto netaddr.Proto, payload []byte)

// OS ephemeral port range (Linux default).
const (
	EphemeralLo = 32768
	EphemeralHi = 60999
)

// NewHost attaches a host with the given address to a realm. extraHops is
// the router distance between the realm fabric and the host.
func (n *Network) NewHost(name string, r *Realm, addr netaddr.Addr, extraHops int, rng *rand.Rand) *Host {
	h := &Host{
		name:      name,
		realm:     r,
		addr:      addr,
		net:       n,
		handlers:  make(map[hostPort]Handler),
		ephNext:   uint16(EphemeralLo + rng.Intn(EphemeralHi-EphemeralLo+1)),
		extraHops: extraHops,
	}
	r.register(addr, h)
	r.hosts = append(r.hosts, h)
	return h
}

// Name returns the host's label.
func (h *Host) Name() string { return h.name }

// Addr returns the host's locally configured address — the paper's IPdev.
func (h *Host) Addr() netaddr.Addr { return h.addr }

// Realm returns the realm the host attaches to.
func (h *Host) Realm() *Realm { return h.realm }

// Network returns the owning network.
func (h *Host) Network() *Network { return h.net }

// Bind installs a handler for a local transport port. It panics if the
// port is taken: port assignment is under test control, collisions are
// bugs.
func (h *Host) Bind(proto netaddr.Proto, port uint16, fn Handler) {
	k := hostPort{proto, port}
	if _, dup := h.handlers[k]; dup {
		panic(fmt.Sprintf("simnet: %s: port %d/%v already bound", h.name, port, proto))
	}
	h.handlers[k] = fn
	h.memoFn = nil
}

// Unbind removes a handler.
func (h *Host) Unbind(proto netaddr.Proto, port uint16) {
	delete(h.handlers, hostPort{proto, port})
	h.memoFn = nil
}

// handlerFor dispatches through the one-entry memo.
func (h *Host) handlerFor(k hostPort) (Handler, bool) {
	if h.memoFn != nil && h.memoHP == k {
		return h.memoFn, true
	}
	fn, ok := h.handlers[k]
	if ok && fn != nil {
		h.memoHP, h.memoFn = k, fn
	}
	return fn, ok
}

// EphemeralPort returns the next OS-chosen source port: sequential within
// the OS ephemeral range, wrapping at the top.
func (h *Host) EphemeralPort() uint16 {
	p := h.ephNext
	if h.ephNext == EphemeralHi {
		h.ephNext = EphemeralLo
	} else {
		h.ephNext++
	}
	return p
}

// Send transmits a packet with the default TTL.
func (h *Host) Send(proto netaddr.Proto, srcPort uint16, dst netaddr.Endpoint, payload []byte) Result {
	return h.SendTTL(proto, srcPort, dst, DefaultTTL, payload)
}

// SendTTL transmits a packet with an explicit initial TTL, the primitive
// behind the TTL-limited keepalives of §6.3.
func (h *Host) SendTTL(proto netaddr.Proto, srcPort uint16, dst netaddr.Endpoint, ttl int, payload []byte) Result {
	f := netaddr.FlowOf(proto, netaddr.EndpointOf(h.addr, srcPort), dst)
	// Compiled path. Non-positive TTLs keep the reference walker's exact
	// degenerate semantics (zero-hop consumes succeed unconditionally),
	// so they fall through to the slow path below.
	if n := h.net; ttl > 0 && n.fastOK() {
		if r := h.routeTo(f.Dst.Addr); r != nil {
			if ttl <= h.extraHops {
				// Died leaving the access network: not counted as sent.
				return n.fastExpire(ttl)
			}
			n.cSent.Inc()
			return n.fastWalk(f, r, ttl, h.extraHops, payload)
		}
	}
	// Leaving the host's own access network costs extraHops.
	w := &walker{ttl: ttl, net: h.net}
	if !w.consume(h.extraHops, "router:", h.name, "-access") {
		return h.net.dropTTL(w)
	}
	r := h.net.send(h, f, w.ttl, payload)
	r.Hops += w.hops
	return r
}

// routeTo resolves the compiled route toward dst through the host's
// one-entry memo. nil means the route cannot be compiled (the caller
// takes the reference walk).
func (h *Host) routeTo(dst netaddr.Addr) *route {
	if h.memoRoute != nil && h.memoDst == dst && h.memoRoute.gen == h.net.topoGen {
		return h.memoRoute
	}
	r := h.net.routeFor(h.realm, dst)
	h.memoDst, h.memoRoute = dst, r
	return r
}

// deliver hands a packet to the bound handler, charging the host's access
// hops first.
func (h *Host) deliver(f netaddr.Flow, payload []byte, w *walker, n *Network) Result {
	if !w.consume(h.extraHops, "router:", h.name, "-access") {
		return n.dropTTL(w)
	}
	if w.trace != nil {
		w.record("host:" + h.name)
	}
	if w.traceOnly {
		// Diagnostics stop short of the application layer.
		return Result{Reason: Delivered, Hops: w.hops}
	}
	fn, ok := h.handlerFor(hostPort{f.Proto, f.Dst.Port})
	if !ok {
		n.cNoListener.Inc()
		return Result{Reason: DropNoPort, Hops: w.hops}
	}
	n.cDelivered.Inc()
	fn(f.Src, f.Dst, f.Proto, payload)
	return Result{Reason: Delivered, Hops: w.hops}
}

// Socket is a convenience wrapper binding one local port with a
// settable receive callback. Protocol implementations (DHT, STUN) are
// written against this shape so the same code drives simulated and real
// sockets.
type Socket struct {
	h     *Host
	proto netaddr.Proto
	port  uint16
	onRx  func(from netaddr.Endpoint, payload []byte)
}

// Open binds a socket on the given port. A port of 0 picks an OS
// ephemeral port.
func (h *Host) Open(proto netaddr.Proto, port uint16) *Socket {
	if port == 0 {
		port = h.EphemeralPort()
	}
	s := &Socket{h: h, proto: proto, port: port}
	h.Bind(proto, port, func(from, _ netaddr.Endpoint, _ netaddr.Proto, payload []byte) {
		if s.onRx != nil {
			s.onRx(from, payload)
		}
	})
	return s
}

// OnRecv sets the receive callback.
func (s *Socket) OnRecv(fn func(from netaddr.Endpoint, payload []byte)) { s.onRx = fn }

// Send transmits from the socket's bound port.
func (s *Socket) Send(dst netaddr.Endpoint, payload []byte) Result {
	return s.h.Send(s.proto, s.port, dst, payload)
}

// SendTTL transmits with an explicit TTL.
func (s *Socket) SendTTL(dst netaddr.Endpoint, ttl int, payload []byte) Result {
	return s.h.SendTTL(s.proto, s.port, dst, ttl, payload)
}

// LocalEndpoint returns the socket's bound endpoint — the host-local view,
// before any translation.
func (s *Socket) LocalEndpoint() netaddr.Endpoint {
	return netaddr.EndpointOf(s.h.addr, s.port)
}

// Close unbinds the socket.
func (s *Socket) Close() { s.h.Unbind(s.proto, s.port) }
