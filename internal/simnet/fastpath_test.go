package simnet

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"cgn/internal/netaddr"
)

// buildSlowWorld builds the canonical test world with the compiled-path
// engine disabled, so every packet takes the reference walk. buildWorld
// is fully deterministic (fixed seeds), so a fast and a slow world are
// identical except for the engine.
func buildSlowWorld(t *testing.T) *world {
	w := buildWorld(t)
	w.net.SetFastPath(false)
	return w
}

// script drives one deterministic traffic mix over a world — every
// forwarding outcome the engine distinguishes: direct delivery, NAT44,
// NAT444, replies, hairpins at CGN and CPE, intra-realm traffic,
// unreachables, missing listeners, TTL sweeps across every boundary,
// mapping expiry under clock advances, and traces. It returns a full
// transcript; the differential test asserts transcripts, metrics and NAT
// state digests are byte-identical across engines.
func script(w *world) []string {
	var log []string
	record := func(tag string, res Result) {
		log = append(log, fmt.Sprintf("%s: %+v", tag, res))
	}
	echoOn(w.server, 7)
	send := func(tag string, h *Host, port uint16, dst netaddr.Endpoint, ttl int) {
		record(tag, h.SendTTL(netaddr.UDP, port, dst, ttl, nil))
	}
	trace := func(tag string, h *Host, port uint16, dst netaddr.Endpoint) {
		steps, res := w.net.TracePath(h, netaddr.UDP, port, dst)
		log = append(log, fmt.Sprintf("%s: %v %+v", tag, steps, res))
	}

	srv := netaddr.EndpointOf(w.server.Addr(), 7)
	for i, h := range []*Host{w.a, w.b, w.c, w.d} {
		// Full-TTL exchange (handlers echo back through the same engine).
		send(fmt.Sprintf("send%d", i), h, uint16(5000+i), srv, DefaultTTL)
		// TTL sweep across every hop boundary of every topology class.
		for ttl := 1; ttl <= 12; ttl++ {
			send(fmt.Sprintf("ttl%d-%d", i, ttl), h, uint16(5100+10*i+ttl), srv, ttl)
		}
		trace(fmt.Sprintf("trace%d", i), h, uint16(5200+i), srv)
	}

	// Intra-realm: stays inside the ISP, no NAT touched.
	send("intra", w.b, 6881, netaddr.EndpointOf(w.d.Addr(), 6881), DefaultTTL)

	// Hairpin at the CGN (preserve-source): D opens a mapping, B sends to
	// D's external endpoint.
	w.d.Bind(netaddr.UDP, 6881, func(netaddr.Endpoint, netaddr.Endpoint, netaddr.Proto, []byte) {})
	send("d-open", w.d, 6881, srv, DefaultTTL)
	f := netaddr.FlowOf(netaddr.UDP, netaddr.EndpointOf(w.d.Addr(), 6881), srv)
	if ext, ok := w.cgn.NAT.ExternalFor(f, w.net.Clock().Now()); ok {
		for ttl := 1; ttl <= 10; ttl++ {
			send(fmt.Sprintf("hairpin-ttl%d", ttl), w.b, uint16(7000+ttl), ext, ttl)
		}
		send("hairpin", w.b, 7100, ext, DefaultTTL)
		trace("hairpin-trace", w.b, 7101, ext)
	}

	// Hairpin at the CPE (translate mode): C toward its own WAN-side
	// external endpoint.
	w.c.Bind(netaddr.UDP, 5000, func(netaddr.Endpoint, netaddr.Endpoint, netaddr.Proto, []byte) {})
	send("cpe-hairpin-open", w.c, 5000, srv, DefaultTTL)
	if ext, ok := w.cpeC.NAT.ExternalFor(netaddr.FlowOf(netaddr.UDP, netaddr.EndpointOf(w.c.Addr(), 5000), srv), w.net.Clock().Now()); ok {
		send("cpe-hairpin", w.c, 5001, ext, DefaultTTL)
		trace("cpe-hairpin-trace", w.c, 5002, ext)
	}

	// Unreachables: internal space from outside, unrouted public space,
	// and a dead CGN external port (inbound filtering).
	send("unreach-int", w.server, 7, ep("100.64.0.2:6881"), DefaultTTL)
	send("unreach-pub", w.b, 5300, ep("1.2.3.4:80"), DefaultTTL)
	send("nomapping", w.server, 7, ep("198.51.100.50:12345"), DefaultTTL)
	send("nolistener", w.b, 5301, netaddr.EndpointOf(w.server.Addr(), 9999), DefaultTTL)
	trace("unreach-trace", w.server, 7, ep("100.64.0.2:6881"))

	// Expiry: advance past the CGN's 60s UDP timeout, then re-exchange so
	// mappings are recreated on fresh ports.
	w.net.Clock().Advance(61 * time.Second)
	send("post-expiry-in", w.server, 7, ep("198.51.100.50:12345"), DefaultTTL)
	send("post-expiry-out", w.b, 5302, srv, DefaultTTL)

	return log
}

// TestFastSlowDifferential pins the compiled path to the reference walk:
// identical Results, traces, network metrics and NAT state digests over
// the full scripted traffic mix.
func TestFastSlowDifferential(t *testing.T) {
	fast, slow := buildWorld(t), buildSlowWorld(t)
	if !fast.net.FastPathEnabled() || slow.net.FastPathEnabled() {
		t.Fatal("engine toggles not in expected states")
	}
	fastLog, slowLog := script(fast), script(slow)
	if len(fastLog) != len(slowLog) {
		t.Fatalf("transcript lengths differ: fast %d, slow %d", len(fastLog), len(slowLog))
	}
	for i := range fastLog {
		if fastLog[i] != slowLog[i] {
			t.Errorf("transcript diverges at %d:\n fast: %s\n slow: %s", i, fastLog[i], slowLog[i])
		}
	}
	if f, s := fast.net.Metrics.Snapshot(), slow.net.Metrics.Snapshot(); !reflect.DeepEqual(f, s) {
		t.Errorf("network metrics diverge:\n fast: %v\n slow: %v", f, s)
	}
	fd, sd := fast.net.Devices(), slow.net.Devices()
	if len(fd) != len(sd) || len(fd) == 0 {
		t.Fatalf("device lists differ: %d vs %d", len(fd), len(sd))
	}
	for i := range fd {
		if fd[i].Name != sd[i].Name {
			t.Fatalf("device order differs at %d: %s vs %s", i, fd[i].Name, sd[i].Name)
		}
		if f, s := fd[i].NAT.StateDigest(), sd[i].NAT.StateDigest(); f != s {
			t.Errorf("NAT %s state digests diverge:\n fast: %s\n slow: %s", fd[i].Name, f, s)
		}
		if f, s := fd[i].NAT.Metrics.Snapshot(), sd[i].NAT.Metrics.Snapshot(); !reflect.DeepEqual(f, s) {
			t.Errorf("NAT %s metrics diverge:\n fast: %v\n slow: %v", fd[i].Name, f, s)
		}
	}
}

// TestFastPathLossFallsBackToReferenceWalk: with loss enabled both
// engines must run the reference walk (the Bernoulli stream is consumed
// per hop), so transcripts stay identical draw for draw.
func TestFastPathLossFallsBackToReferenceWalk(t *testing.T) {
	fast, slow := buildWorld(t), buildSlowWorld(t)
	fast.net.SetLoss(0.3, 42)
	slow.net.SetLoss(0.3, 42)
	echoOn(fast.server, 7)
	echoOn(slow.server, 7)
	for i := 0; i < 300; i++ {
		dst := netaddr.EndpointOf(fast.server.Addr(), 7)
		rf := fast.b.Send(netaddr.UDP, uint16(10000+i), dst, nil)
		rs := slow.b.Send(netaddr.UDP, uint16(10000+i), netaddr.EndpointOf(slow.server.Addr(), 7), nil)
		if rf != rs {
			t.Fatalf("send %d diverges under loss: fast %+v, slow %+v", i, rf, rs)
		}
	}
	if f, s := fast.net.Metrics.Snapshot(), slow.net.Metrics.Snapshot(); !reflect.DeepEqual(f, s) {
		t.Errorf("loss metrics diverge:\n fast: %v\n slow: %v", f, s)
	}
}

// TestRouteCacheInvalidation: a cached unreachable route must recompile
// once the topology grows the missing attachment.
func TestRouteCacheInvalidation(t *testing.T) {
	w := buildWorld(t)
	dst := ep("192.168.1.77:9000")
	if res := w.a.Send(netaddr.UDP, 4000, dst, nil); res.Reason != DropUnreachable {
		t.Fatalf("pre-attach send = %+v, want unreachable", res)
	}
	h := w.net.NewHost("late", w.a.Realm(), addr("192.168.1.77"), 0, rng())
	h.Bind(netaddr.UDP, 9000, func(netaddr.Endpoint, netaddr.Endpoint, netaddr.Proto, []byte) {})
	if res := w.a.Send(netaddr.UDP, 4000, dst, nil); !res.Delivered() {
		t.Fatalf("post-attach send = %+v, want delivered", res)
	}
}

// TestDescendTailInvalidation: the per-(NATDev, translated dst) descend
// cache must revalidate against the topology generation too. The CGN's
// inbound resolution for a translated destination changes when a host
// attaches inside the ISP realm after the first packet cached a miss.
func TestDescendTailInvalidation(t *testing.T) {
	w := buildWorld(t)
	echoOn(w.server, 7)
	// B opens a CGN mapping; reach-back caches the descend tail for B's
	// internal address.
	w.b.Bind(netaddr.UDP, 5000, func(netaddr.Endpoint, netaddr.Endpoint, netaddr.Proto, []byte) {})
	w.b.Send(netaddr.UDP, 5000, netaddr.EndpointOf(w.server.Addr(), 7), nil)
	bExt := externalOf(t, w, w.b, 5000)
	if res := w.server.Send(netaddr.UDP, 7, bExt, nil); !res.Delivered() {
		t.Fatalf("reach-back = %+v", res)
	}
	// Topology changes: a new host joins the ISP realm. The tail for B is
	// untouched semantically, but the generation bump must not break it.
	w.net.NewHost("late-isp", w.isp, addr("100.64.9.9"), 0, rng())
	if res := w.server.Send(netaddr.UDP, 7, bExt, nil); !res.Delivered() {
		t.Fatalf("reach-back after topology change = %+v", res)
	}
}

// TestTracePathFastHairpin pins the fast-path hairpin trace label
// sequence against the reference walker's.
func TestTracePathFastHairpin(t *testing.T) {
	fast, slow := buildWorld(t), buildSlowWorld(t)
	for _, w := range []*world{fast, slow} {
		echoOn(w.server, 7)
		w.d.Bind(netaddr.UDP, 6881, func(netaddr.Endpoint, netaddr.Endpoint, netaddr.Proto, []byte) {})
		w.d.Send(netaddr.UDP, 6881, netaddr.EndpointOf(w.server.Addr(), 7), nil)
	}
	fExt := externalOf(t, fast, fast.d, 6881)
	sExt := externalOf(t, slow, slow.d, 6881)
	if fExt != sExt {
		t.Fatalf("external endpoints diverge: %v vs %v", fExt, sExt)
	}
	fSteps, fRes := fast.net.TracePath(fast.b, netaddr.UDP, 7000, fExt)
	sSteps, sRes := slow.net.TracePath(slow.b, netaddr.UDP, 7000, sExt)
	if !reflect.DeepEqual(fSteps, sSteps) || fRes != sRes {
		t.Fatalf("hairpin traces diverge:\n fast: %v %+v\n slow: %v %+v", fSteps, fRes, sSteps, sRes)
	}
	// The hairpin turn must be labeled as such, once.
	want := "nat:cgn (hairpin)"
	found := 0
	for _, s := range fSteps {
		if s == want {
			found++
		}
	}
	if found != 1 {
		t.Errorf("trace %v: want exactly one %q", fSteps, want)
	}
	if !fRes.Delivered() {
		t.Errorf("hairpin trace result = %+v", fRes)
	}
}

// TestTracePathFastTTLExpiryAtNAT builds a topology whose CGN sits
// exactly at the probe's TTL horizon: the trace must die at the NAT
// *after* creating translation state, on both engines, with identical
// labels.
func TestTracePathFastTTLExpiryAtNAT(t *testing.T) {
	build := func(fastOn bool) (*Network, *Host, *NATDev, netaddr.Endpoint) {
		net := New()
		net.SetFastPath(fastOn)
		r := rng()
		server := net.NewHost("server", net.Public(), addr("203.0.113.10"), 2, r)
		server.Bind(netaddr.UDP, 7, func(netaddr.Endpoint, netaddr.Endpoint, netaddr.Proto, []byte) {})
		isp := net.NewRealm("isp", 1)
		// The NAT hop itself is hop DefaultTTL: innerHops consumes
		// 1..DefaultTTL-1, translation state is created on receipt, and
		// the TTL dies on the NAT's own hop.
		dev := net.AttachNAT("deepcgn", isp, net.Public(), cgnCfg("198.51.100.80"), DefaultTTL-1, 1)
		sub := net.NewHost("sub", isp, addr("100.64.0.9"), 0, r)
		return net, sub, dev, netaddr.EndpointOf(server.Addr(), 7)
	}
	fNet, fSub, fDev, fDst := build(true)
	sNet, sSub, sDev, sDst := build(false)
	fSteps, fRes := fNet.TracePath(fSub, netaddr.UDP, 6000, fDst)
	sSteps, sRes := sNet.TracePath(sSub, netaddr.UDP, 6000, sDst)
	if !reflect.DeepEqual(fSteps, sSteps) || fRes != sRes {
		t.Fatalf("traces diverge:\n fast: %d steps %+v\n slow: %d steps %+v", len(fSteps), fRes, len(sSteps), sRes)
	}
	if fRes.Reason != DropTTLExpired || fRes.Hops != DefaultTTL {
		t.Errorf("result = %+v, want TTL death after %d hops", fRes, DefaultTTL)
	}
	if fSteps[len(fSteps)-1] != "nat:deepcgn" {
		t.Errorf("trace must end on the NAT hop, got %q", fSteps[len(fSteps)-1])
	}
	if fDev.NAT.NumMappings() != 1 || sDev.NAT.NumMappings() != 1 {
		t.Errorf("mappings fast=%d slow=%d, want 1 each: state is created before the TTL check",
			fDev.NAT.NumMappings(), sDev.NAT.NumMappings())
	}
	if d1, d2 := fDev.NAT.StateDigest(), sDev.NAT.StateDigest(); d1 != d2 {
		t.Errorf("NAT digests diverge after TTL-limited trace:\n fast: %s\n slow: %s", d1, d2)
	}
}

// TestFastPathZeroTTLMatchesReference: non-positive TTLs take the
// reference walk's degenerate semantics (zero-hop consumes succeed), so
// a ttl-0 packet on an all-zero-hop path still delivers.
func TestFastPathZeroTTLMatchesReference(t *testing.T) {
	fast, slow := buildWorld(t), buildSlowWorld(t)
	for _, w := range []*world{fast, slow} {
		a2 := w.net.NewHost("A2", w.a.Realm(), addr("192.168.1.3"), 0, rng())
		a2.Bind(netaddr.UDP, 6881, func(netaddr.Endpoint, netaddr.Endpoint, netaddr.Proto, []byte) {})
	}
	for _, ttl := range []int{0, -1, 1} {
		rf := fast.a.SendTTL(netaddr.UDP, 6881, ep("192.168.1.3:6881"), ttl, nil)
		rs := slow.a.SendTTL(netaddr.UDP, 6881, ep("192.168.1.3:6881"), ttl, nil)
		if rf != rs {
			t.Errorf("ttl %d diverges: fast %+v, slow %+v", ttl, rf, rs)
		}
	}
}

// TestPrecompileRoutes warms the cache and checks warmed routes behave
// identically to lazily compiled ones.
func TestPrecompileRoutes(t *testing.T) {
	w := buildWorld(t)
	compiled := w.net.PrecompileRoutes(w.server.Addr(), addr("100.64.0.2"))
	if compiled == 0 {
		t.Fatal("no routes compiled")
	}
	echoOn(w.server, 7)
	if res := w.c.Send(netaddr.UDP, 5000, netaddr.EndpointOf(w.server.Addr(), 7), nil); !res.Delivered() {
		t.Fatalf("send over precompiled route = %+v", res)
	}
}
